#!/usr/bin/env python3
"""One-command reproduction: regenerate every paper artifact into RESULTS.md.

Runs the same generators as the benchmark suite (without timing) and writes
a self-contained markdown report:

    python scripts/reproduce.py [--out RESULTS.md]

Sections: Figure 4, Figure 5, Theorems 5-9, §5.1 regimes, Appendix A.1/A.2,
the global soundness sweep, and the model-fidelity ablations.
"""

from __future__ import annotations

import argparse
import sys
import time
from pathlib import Path

sys.path.insert(0, str(Path(__file__).resolve().parent.parent))

from benchmarks import conftest as bench_conftest  # noqa: E402

# route bench emit() into our collector
_sections: list[str] = []
bench_conftest.emit = lambda t: _sections.append(t)

from benchmarks.conftest import derivation_for  # noqa: E402
from benchmarks.test_bench_a1_tiled_mgs import _sweep as a1_sweep  # noqa: E402
from benchmarks.test_bench_a2_tiled_a2v import _sweep as a2_sweep  # noqa: E402
from benchmarks.test_bench_model_ablation import (  # noqa: E402
    _hierarchy_rows,
    _line_rows,
)
from benchmarks.test_bench_sec51_regimes import _regime_rows  # noqa: E402
from benchmarks.test_bench_thm5_mgs import _sandwich_rows  # noqa: E402
from benchmarks.test_bench_thm67_householder import _compare_rows  # noqa: E402
from benchmarks.test_bench_thm9_gehd2 import _split_rows  # noqa: E402
from benchmarks.test_bench_generic_tiling import _rows as ext_rows  # noqa: E402
from benchmarks.test_bench_validation import _sweep as valid_sweep  # noqa: E402
from repro import __version__  # noqa: E402
from repro.report import render_fig4, render_fig5, render_table  # noqa: E402


def block(title: str, table: str) -> str:
    return f"## {title}\n\n```\n{table}\n```\n"


def _engine_timing_rows() -> str:
    """Before/after timings for the fast trace engine (ISSUE 1 tentpole).

    Times the reference O(T·S) Belady against the heap engine on a 200k-event
    synthetic trace (the full 1M-event acceptance run lives in
    ``benchmarks/test_bench_trace_engine.py``), and the tuner's exhaustive /
    coarse / memo-warm sweeps on the Appendix A.1 point.
    """
    import tempfile

    from benchmarks.test_bench_trace_engine import _synthetic_events
    from repro.bounds import tune_block_size
    from repro.cache import MemoCache, simulate_belady
    from repro.cache import _reference as reference
    from repro.ir import TraceArrays
    from repro.kernels import TILED_MGS

    events = _synthetic_events(200_000)
    t = time.perf_counter()
    ref = reference.simulate_belady(events, 1024)
    t_ref = time.perf_counter() - t
    t = time.perf_counter()
    fast = simulate_belady(TraceArrays.from_events(events), 1024)
    t_fast = time.perf_counter() - t
    assert (fast.loads, fast.stores) == (ref.loads, ref.stores)

    params, s = {"M": 24, "N": 16}, 256
    t = time.perf_counter()
    tune_block_size(TILED_MGS, params, s)
    t_exh = time.perf_counter() - t
    t = time.perf_counter()
    tune_block_size(TILED_MGS, params, s, mode="coarse")
    t_coarse = time.perf_counter() - t
    with tempfile.TemporaryDirectory() as d:
        tune_block_size(TILED_MGS, params, s, memo=MemoCache(d))
        t = time.perf_counter()
        tune_block_size(TILED_MGS, params, s, memo=MemoCache(d))
        t_memo = time.perf_counter() - t

    return render_table(
        ["stage", "before (s)", "after (s)", "speedup"],
        [
            [
                "belady, 200k events, S=1024",
                f"{t_ref:.2f}",
                f"{t_fast:.2f}",
                f"{t_ref / t_fast:.1f}x",
            ],
            [
                "tuner sweep, MGS 24x16, S=256",
                f"{t_exh:.2f}",
                f"{t_coarse:.2f} (coarse)",
                f"{t_exh / t_coarse:.1f}x",
            ],
            [
                "tuner sweep, memo-warm",
                f"{t_exh:.2f}",
                f"{t_memo:.3f}",
                f"{t_exh / max(t_memo, 1e-9):.0f}x",
            ],
        ],
    )


def _phase_timing_rows() -> str:
    """Per-phase wall times of the derivation pipeline (ISSUE 3 tentpole).

    Profiles a fresh ``derive()`` of every hourglass kernel with
    :mod:`repro.obs` enabled and reports the span aggregates — the same
    numbers ``iolb derive <kernel> --profile`` prints to stderr.
    """
    from repro import obs
    from repro.bounds import derive
    from repro.kernels import PAPER_KERNELS, get_kernel

    phases = (
        ("frontend.program", "frontend"),
        ("polyhedral.projections", "projections"),
        ("bounds.classical", "classical"),
        ("bounds.hourglass", "hourglass"),
    )

    def ms(row) -> str:
        return f"{row['wall_us'] / 1e3:.1f}" if row else "-"

    rows = []
    for name in PAPER_KERNELS:
        obs.enable()
        try:
            derive(get_kernel(name))
            agg = obs.registry().aggregates()
        finally:
            obs.disable()
            obs.reset()
        by_leaf = {p.rsplit("/", 1)[-1]: r for p, r in agg.items()}
        rows.append(
            [name]
            + [ms(by_leaf.get(span)) for span, _ in phases]
            + [ms(by_leaf.get("bounds.derive"))]
        )
    return render_table(
        ["kernel"] + [label + " (ms)" for _, label in phases] + ["total (ms)"],
        rows,
    )


def main() -> int:
    ap = argparse.ArgumentParser()
    ap.add_argument("--out", default="RESULTS.md")
    args = ap.parse_args()

    t0 = time.time()
    parts = [
        "# RESULTS — full reproduction run",
        "",
        f"Generated by `scripts/reproduce.py` (repro v{__version__}).",
        "",
    ]

    parts.append(block("Figure 4 (asymptotic bounds)", render_fig4()))
    parts.append(block("Figure 5 (full formulas)", render_fig5()))
    parts.append(
        block(
            "Theorem 5 — MGS sandwich (M=16, N=12)",
            render_table(
                ["S", "thm5 main", "thm5 small", "tiled", "naive", "sound"],
                _sandwich_rows(16, 12),
            ),
        )
    )
    for which, kern, label in (
        ("thm6-a2v", "qr_a2v", "Theorem 6 — A2V vs engine"),
        ("thm7-v2q", "qr_v2q", "Theorem 7 — V2Q vs engine"),
    ):
        parts.append(
            block(
                label,
                render_table(
                    ["size", "S", "engine", "paper", "ratio"],
                    _compare_rows(which, kern),
                ),
            )
        )
    parts.append(
        block(
            "Theorem 9 — GEHD2 split bounds",
            render_table(
                ["N", "S", "split N/2", "split N-S-2", "thm9", "ratio"],
                _split_rows(),
            ),
        )
    )
    parts.append(
        block(
            "§5.1 — MGS regimes (M=10000, N=5000)",
            render_table(
                ["S", "thm5 main", "thm5 small", "old", "new/old"],
                _regime_rows(10_000, 5_000, (64, 1024, 16_384, 262_144)),
            ),
        )
    )
    parts.append(
        block(
            "Appendix A.1 — tiled MGS (M=24, N=16)",
            render_table(
                ["S", "B", "loads", "pred reads", "stores", "pred writes", "thm5", "ratio"],
                a1_sweep(24, 16, (64, 128, 256, 384)),
            ),
        )
    )
    parts.append(
        block(
            "Appendix A.2 — tiled A2V (M=24, N=12)",
            render_table(
                ["S", "B", "loads", "pred reads", "stores", "pred writes", "thm6", "ratio"],
                a2_sweep(24, 12, (64, 128, 256, 384)),
            ),
        )
    )
    parts.append(
        block(
            "Global soundness sweep",
            render_table(
                ["kernel", "S", "policy", "lower", "measured", "gap", "sound"],
                valid_sweep(),
            ),
        )
    )
    parts.append(
        block(
            "Exact-optimum hierarchy",
            render_table(
                ["kernel", "S", "lower", "exact", "belady", "ordered"],
                _hierarchy_rows(),
            ),
        )
    )
    parts.append(
        block(
            "Hardware-cache ablation (MGS 12x8, S=32)",
            render_table(
                ["line", "misses", "traffic", "bound/L", "holds"],
                _line_rows(12, 8, 32),
            ),
        )
    )
    parts.append(
        block(
            "Generic hourglass tiling (extension)",
            render_table(
                ["kernel", "S", "B", "naive", "generic", "bound", "ratio"],
                ext_rows(),
            ),
        )
    )
    from repro.bounds import regime_table
    from benchmarks.conftest import derivation_for as _dfor

    regs = regime_table(
        _dfor("mgs"), {"M": 10_000, "N": 5_000}, [1 << k for k in range(2, 23)]
    )
    parts.append(
        block(
            "MGS bound regimes (§5.1, M=10000 N=5000)",
            render_table(
                ["S range", "binding method", "Q >="],
                [[f"{r.s_lo}..{r.s_hi}", r.method, r.value_at_lo] for r in regs],
            ),
        )
    )

    parts.append(block("Trace engine before/after", _engine_timing_rows()))

    parts.append(
        block(
            "Per-phase derivation timings (iolb derive --profile)",
            _phase_timing_rows(),
        )
    )

    parts.append(f"\n_Total generation time: {time.time() - t0:.1f}s_\n")
    Path(args.out).write_text("\n".join(parts))
    print(f"wrote {args.out} ({time.time() - t0:.1f}s)")
    return 0


if __name__ == "__main__":
    sys.exit(main())
