#!/usr/bin/env python3
"""CI smoke gate for the derivation service (``iolb serve``).

Boots a real server — worker pool, sharded queues, content-addressed
result backend — fires a mixed derive/simulate burst whose requests
include identical concurrent twins, and asserts the serving invariants
that hold under *any* thread/worker interleaving:

* every request answered 200;
* exactly one execution per distinct request key;
* every other request accounted for as a backend hit or a coalesced wait
  (``backend_hits + coalesced == requests - executed``);
* engine work counters from the worker processes merged into the server
  registry (the cross-process counter-shipping path);
* ``GET /v1/metrics`` returns a valid ``iolb-metrics/1`` document carrying
  the operational gauges (latency percentiles, queue depth, hit rate).

The final metrics dump is written to ``--metrics-json`` for artifact
upload, pass or fail.  Exits non-zero with a diagnostic on any violation.
"""

from __future__ import annotations

import argparse
import json
import shutil
import sys
import tempfile

sys.path.insert(0, "src")

from repro.obs.stats import check_schema  # noqa: E402
from repro.serve import IolbServer, mixed_burst, run_load  # noqa: E402


def main(argv: list[str] | None = None) -> int:
    ap = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    ap.add_argument("--workers", type=int, default=2, help="worker processes (0 = inline)")
    ap.add_argument("--repeat", type=int, default=3, help="copies of each distinct request")
    ap.add_argument("--concurrency", type=int, default=6, help="client threads")
    ap.add_argument("--metrics-json", default=None, help="write the final metrics dump here")
    args = ap.parse_args(argv)

    failures: list[str] = []

    def check(cond: bool, what: str) -> None:
        if not cond:
            failures.append(what)

    burst = mixed_burst(repeat=args.repeat)
    distinct = len({json.dumps(r, sort_keys=True) for r in burst})
    tmp = tempfile.mkdtemp(prefix="iolb-serve-smoke-")
    try:
        with IolbServer(workers=args.workers, memo_dir=tmp) as srv:
            print(f"serve smoke: {srv.url} workers={args.workers}", flush=True)
            rep = run_load(srv.url, burst, concurrency=args.concurrency, timeout=300)
            print(f"serve smoke: {rep.summary()}", flush=True)

            check(rep.ok(), f"non-200 responses or transport errors: {rep.summary()}")
            c = srv.registry.counters()
            executed = c.get("serve.executed", 0)
            hits = c.get("serve.backend_hits", 0)
            coalesced = c.get("serve.coalesced", 0)
            check(
                c.get("serve.requests") == len(burst),
                f"serve.requests={c.get('serve.requests')} != {len(burst)}",
            )
            check(
                executed == distinct,
                f"serve.executed={executed} != {distinct} distinct keys",
            )
            check(
                hits + coalesced == len(burst) - distinct,
                f"hits({hits}) + coalesced({coalesced}) != {len(burst) - distinct}",
            )
            if args.workers > 0:
                check(
                    any(k.startswith(("pebble.", "ir.", "polyhedral.")) for k in c),
                    "no engine counters shipped back from worker processes",
                )

            metrics = srv.metrics()
            try:
                check_schema(metrics)
            except ValueError as e:
                check(False, f"metrics dump failed schema check: {e}")
            g = metrics.get("gauges", {})
            for gauge in (
                "serve.latency_p50_ms",
                "serve.latency_p99_ms",
                "serve.queue_depth",
                "serve.hit_rate",
            ):
                check(gauge in g, f"missing operational gauge {gauge}")
            check(g.get("serve.hit_rate", 0) > 0, "hit rate pinned at zero")

            if args.metrics_json:
                with open(args.metrics_json, "w") as fh:
                    json.dump(metrics, fh, indent=2, sort_keys=True)
                print(f"serve smoke: metrics written to {args.metrics_json}", flush=True)
    finally:
        shutil.rmtree(tmp, ignore_errors=True)

    if failures:
        for f in failures:
            print(f"serve smoke: FAIL: {f}", file=sys.stderr)
        return 1
    print(
        f"serve smoke: OK ({len(burst)} requests, {distinct} executed,"
        f" {len(burst) - distinct} deduplicated)"
    )
    return 0


if __name__ == "__main__":
    sys.exit(main())
