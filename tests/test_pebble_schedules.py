"""Tests for schedule generation + soundness over the schedule space."""

from __future__ import annotations

import random

import pytest

from repro.pebble import (
    play_schedule,
    priority_schedule,
    random_topological_schedule,
)
from tests.conftest import SMALL_PARAMS, cdag_for, derivation_for


class TestGeneration:
    @pytest.mark.parametrize("name", ["mgs", "qr_a2v", "gehd2"])
    def test_random_schedules_valid(self, name):
        g = cdag_for(name)
        rng = random.Random(5)
        for _ in range(5):
            sched = random_topological_schedule(g, rng)
            assert g.is_valid_schedule(sched)

    @pytest.mark.parametrize("prio", ["depth_first", "breadth_first"])
    @pytest.mark.parametrize("name", ["mgs", "matmul"])
    def test_priority_schedules_valid(self, name, prio):
        g = cdag_for(name)
        assert g.is_valid_schedule(priority_schedule(g, prio))

    def test_custom_priority(self):
        g = cdag_for("mgs")
        sched = priority_schedule(g, lambda n: hash(n) % 97)
        assert g.is_valid_schedule(sched)

    def test_unknown_priority(self):
        with pytest.raises(ValueError):
            priority_schedule(cdag_for("mgs"), "zigzag")

    def test_random_schedules_differ(self):
        g = cdag_for("mgs")
        s1 = random_topological_schedule(g, random.Random(1))
        s2 = random_topological_schedule(g, random.Random(2))
        assert s1 != s2

    def test_depth_first_lower_live_than_breadth_first(self):
        """Depth-first chases consumers: its Belady cost is <= the level
        order's on these kernels (at tight cache sizes)."""
        g = cdag_for("mgs")
        df = priority_schedule(g, "depth_first")
        bf = priority_schedule(g, "breadth_first")
        s = 8
        assert (
            play_schedule(g, df, s, "belady").loads
            <= play_schedule(g, bf, s, "belady").loads
        )


class TestSoundnessOverScheduleSpace:
    """The decisive property: bounds hold for *every* sampled schedule."""

    @pytest.mark.parametrize("name", sorted(SMALL_PARAMS))
    def test_bounds_hold_for_random_schedules(self, name):
        g = cdag_for(name)
        rep = derivation_for(name)
        params = SMALL_PARAMS[name]
        rng = random.Random(99)
        for trial in range(4):
            sched = random_topological_schedule(g, rng)
            for s in (6, 16):
                measured = play_schedule(g, sched, s, "belady").loads
                _, lb = rep.best({**params, "S": s})
                assert lb <= measured + 1e-9, (
                    f"{name} trial {trial} S={s}: {lb} > {measured}"
                )

    @pytest.mark.parametrize("name", ["mgs", "qr_a2v", "gehd2"])
    @pytest.mark.parametrize("prio", ["depth_first", "breadth_first"])
    def test_bounds_hold_for_priority_schedules(self, name, prio):
        g = cdag_for(name)
        rep = derivation_for(name)
        params = SMALL_PARAMS[name]
        sched = priority_schedule(g, prio)
        for s in (6, 16):
            measured = play_schedule(g, sched, s, "belady").loads
            _, lb = rep.best({**params, "S": s})
            assert lb <= measured + 1e-9
