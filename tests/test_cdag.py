"""Tests for CDAG structure, construction routes, and proof vocabulary."""

from __future__ import annotations

import pytest

from repro.cdag import (
    CDAG,
    INPUT,
    build_cdag,
    cdag_from_dataflow,
    cdag_from_program,
    cdag_from_trace,
    check_program_deps,
    compare_cdags,
)
from repro.ir import Tracer
from repro.kernels import KERNELS
from tests.conftest import SMALL_PARAMS, cdag_for, trace_for


def diamond() -> CDAG:
    """a -> b, a -> c, b -> d, c -> d."""
    g = CDAG()
    for u, v in [("a", "b"), ("a", "c"), ("b", "d"), ("c", "d")]:
        g.add_edge(u, v)
    return g


class TestGraphBasics:
    def test_add_node_idempotent(self):
        g = CDAG()
        g.add_node("x")
        g.add_node("x")
        assert len(g) == 1

    def test_sources_sinks(self):
        g = diamond()
        assert g.sources() == ["a"]
        assert g.sinks() == ["d"]

    def test_edges_count(self):
        assert diamond().n_edges() == 4

    def test_input_vs_compute_nodes(self):
        g = CDAG()
        g.add_edge((INPUT, ("A", (0,))), ("S", (0,)))
        assert g.input_nodes() == [(INPUT, ("A", (0,)))]
        assert g.compute_nodes() == [("S", (0,))]

    def test_topological_order(self):
        order = diamond().topological_order()
        pos = {n: idx for idx, n in enumerate(order)}
        assert pos["a"] < pos["b"] < pos["d"]
        assert pos["a"] < pos["c"] < pos["d"]

    def test_cycle_detected(self):
        g = CDAG()
        g.add_edge("a", "b")
        g.add_edge("b", "a")
        with pytest.raises(ValueError):
            g.topological_order()

    def test_is_valid_schedule(self):
        g = diamond()
        assert g.is_valid_schedule(["a", "b", "c", "d"])
        assert g.is_valid_schedule(["a", "c", "b", "d"])
        assert not g.is_valid_schedule(["b", "a", "c", "d"])
        assert not g.is_valid_schedule(["a", "b", "c"])  # missing node
        assert not g.is_valid_schedule(["a", "a", "b", "c", "d"])  # dup

    def test_has_path(self):
        g = diamond()
        assert g.has_path("a", "d")
        assert not g.has_path("b", "c")
        assert g.has_path("b", "b")

    def test_nodes_on_paths(self):
        g = diamond()
        assert g.nodes_on_paths("a", "d") == {"a", "b", "c", "d"}
        assert g.nodes_on_paths("b", "c") == set()


class TestProofVocabulary:
    def test_in_set(self):
        g = diamond()
        assert g.in_set({"d"}) == {"b", "c"}
        assert g.in_set({"b", "c", "d"}) == {"a"}
        assert g.in_set({"a"}) == set()

    def test_out_set(self):
        g = diamond()
        assert g.out_set({"a", "b"}) == {"a", "b"}
        assert g.out_set({"b", "c", "d"}) == set() or g.out_set({"b", "c", "d"}) == set()

    def test_out_set_with_outputs(self):
        g = diamond()
        g.outputs.add("d")
        assert "d" in g.out_set({"d"})

    def test_convexity(self):
        g = diamond()
        assert g.is_convex({"a", "b", "d"}) is False  # path a->c->d leaves/reenters
        assert g.is_convex({"a", "b", "c", "d"})
        assert g.is_convex({"b"})
        assert g.is_convex({"a", "b"})

    def test_convex_closure(self):
        g = diamond()
        assert g.convex_closure({"a", "d"}) == {"a", "b", "c", "d"}
        assert g.convex_closure({"b"}) == {"b"}

    def test_chain_convexity(self):
        g = CDAG()
        for x in range(4):
            g.add_edge(("s", (x,)), ("s", (x + 1,)))
        assert not g.is_convex({("s", (0,)), ("s", (3,))})
        assert g.convex_closure({("s", (0,)), ("s", (3,))}) == {
            ("s", (x,)) for x in range(4)
        }

    def test_to_networkx(self):
        nx_g = diamond().to_networkx()
        assert nx_g.number_of_nodes() == 4
        assert nx_g.number_of_edges() == 4


class TestConstructionRoutes:
    @pytest.mark.parametrize("name", sorted(KERNELS))
    def test_spec_cdag_equals_trace_cdag(self, name):
        """The headline validation: every kernel's spec-side CDAG equals the
        instrumented-runner CDAG edge-for-edge."""
        diff = check_program_deps(KERNELS[name].program, SMALL_PARAMS[name])
        assert diff.ok(), f"{name}: {diff.summary()}"

    def test_mgs_declared_deps_equal_dataflow(self):
        """MGS has a hand-written dependence list; it must agree with the
        automatic dataflow construction."""
        prog = KERNELS["mgs"].program
        params = SMALL_PARAMS["mgs"]
        declared = cdag_from_program(prog, params)
        auto = cdag_from_dataflow(prog, params)
        assert compare_cdags(declared, auto).ok()

    def test_build_cdag_dispatch(self):
        prog_with_deps = KERNELS["mgs"].program
        prog_without = KERNELS["qr_a2v"].program
        assert len(build_cdag(prog_with_deps, SMALL_PARAMS["mgs"])) > 0
        assert len(build_cdag(prog_without, SMALL_PARAMS["qr_a2v"])) > 0

    def test_outputs_marked(self):
        g = cdag_for("mgs")
        assert any(n[0] == "Sq" for n in g.outputs)  # Q writers are outputs

    def test_input_nodes_match_trace(self):
        g = cdag_for("mgs")
        t = trace_for("mgs")
        trace_inputs = {(INPUT, a) for a in t.input_elements}
        assert set(g.input_nodes()) == trace_inputs

    def test_diff_reports_discrepancies(self):
        g1 = diamond()
        g2 = diamond()
        g2.add_edge("a", "d")
        diff = compare_cdags(g1, g2)
        assert not diff.ok()
        assert ("a", "d") in diff.missing_edges
        assert "missing edges" in diff.summary()

    def test_tiled_schedules_are_valid_topological_orders(self):
        """Appendix A orderings execute the same CDAG (checked for both)."""
        from repro.kernels import TILED_A2V, TILED_MGS

        g = cdag_for("mgs")
        tr = TILED_MGS.run_traced({**SMALL_PARAMS["mgs"], "B": 2})
        assert g.is_valid_schedule(tr.schedule)
        assert compare_cdags(g, cdag_from_trace(tr)).ok()

        g2 = cdag_for("qr_a2v")
        tr2 = TILED_A2V.run_traced({**SMALL_PARAMS["qr_a2v"], "B": 2})
        assert g2.is_valid_schedule(tr2.schedule)
        assert compare_cdags(g2, cdag_from_trace(tr2)).ok()
