"""Tests for the structural control kernels (Cholesky, SYRK).

These pin down the *negative* behaviours of the engine: hourglass rejection
where the cycle is missing, and disjoint-inset auto-disabling where two
operands share an in-set part.
"""

from __future__ import annotations

import pytest

from repro import build_cdag, play_schedule
from repro.bounds import (
    HourglassDetectionError,
    derive,
    derive_projections,
    detect_hourglass,
)
from repro.ir import Tracer
from repro.kernels import CHOLESKY, SYRK
from tests.conftest import SMALL_PARAMS, derivation_for


class TestCholesky:
    def test_projections_shape(self):
        ps = derive_projections(CHOLESKY.program, "SU", SMALL_PARAMS["cholesky"])
        assert {p.dims for p in ps} == {
            frozenset("ij"),
            frozenset("ik"),
            frozenset("jk"),
        }

    def test_no_hourglass_despite_matching_projections(self):
        """Same projection shape as Householder, but Sv is pointwise: the
        reduction->broadcast cycle is missing and detection must fail on the
        path property (not earlier)."""
        ps = derive_projections(CHOLESKY.program, "SU", SMALL_PARAMS["cholesky"])
        with pytest.raises(HourglassDetectionError, match="path property"):
            detect_hourglass(
                CHOLESKY.program, "SU", SMALL_PARAMS["cholesky"], {"N": 1024}, ps
            )

    def test_disjointness_disabled_shared_producer(self):
        """A[i][k] and A[j][k] both come from Sv (and coincide when i = j):
        the refinement must auto-disable."""
        rep = derivation_for("cholesky")
        assert rep.classical.method == "classical"  # not classical-disjoint

    def test_classical_bound_sound(self):
        params = {"N": 7}
        g = build_cdag(CHOLESKY.program, params)
        t = Tracer()
        CHOLESKY.program.runner(dict(params), t)
        rep = derivation_for("cholesky")
        for s in (4, 8, 16):
            measured = play_schedule(g, t.schedule, s, "belady").loads
            _, lb = rep.best({**params, "S": s})
            assert lb <= measured + 1e-9

    def test_triangular_domain_count(self):
        su = CHOLESKY.program.statement("SU")
        # |SU| = sum_k sum_{j>k} (N-j) = N(N-1)(N+1)/6
        c = su.instance_count()
        for n in (3, 5, 8):
            brute = sum(
                1
                for kk in range(n)
                for jj in range(kk + 1, n)
                for ii in range(jj, n)
            )
            assert c.eval({"N": n}) == brute


class TestSyrk:
    def test_no_hourglass(self):
        ps = derive_projections(SYRK.program, "SC", SMALL_PARAMS["syrk"])
        with pytest.raises(HourglassDetectionError):
            detect_hourglass(
                SYRK.program, "SC", SMALL_PARAMS["syrk"], {"N": 512, "KP": 512}, ps
            )

    def test_disjointness_disabled(self):
        """Both A-operands are raw input:A — same in-set part."""
        rep = derivation_for("syrk")
        assert rep.classical.method == "classical"

    def test_classical_matches_presyrk_state_of_the_art(self):
        """Omega(K N^2 / sqrt(S)) — what the engine should report for SYRK
        absent the specialised argument of the paper's reference [4]."""
        rep = derivation_for("syrk")
        env = {"N": 512, "KP": 256, "S": 1024}
        val = rep.classical.evaluate(env)
        # |SC| = KP * N(N+1)/2; coeff 0.3849 (plain sigma=3/2 optimum)
        expected = 0.3849 * 256 * 512 * 513 / 2 / 32
        assert val == pytest.approx(expected, rel=0.001)

    def test_sound_on_instance(self):
        params = SMALL_PARAMS["syrk"]
        g = build_cdag(SYRK.program, params)
        t = Tracer()
        SYRK.program.runner(dict(params), t)
        rep = derivation_for("syrk")
        for s in (4, 8):
            measured = play_schedule(g, t.schedule, s, "belady").loads
            _, lb = rep.best({**params, "S": s})
            assert lb <= measured + 1e-9
