"""Unit + property tests for the polynomial layer (repro.symbolic.expr)."""

from __future__ import annotations

from fractions import Fraction

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.symbolic import Const, Monomial, Poly, Sym

M, N, S = Sym("M"), Sym("N"), Sym("S")


# ---------------------------------------------------------------------------
# Monomial
# ---------------------------------------------------------------------------


class TestMonomial:
    def test_empty_is_one(self):
        assert Monomial().is_one()
        assert Monomial().eval({}) == 1

    def test_zero_exponents_dropped(self):
        assert Monomial([("x", Fraction(0))]).is_one()

    def test_mul_adds_exponents(self):
        a = Monomial([("x", Fraction(2))])
        b = Monomial([("x", Fraction(3)), ("y", Fraction(1))])
        c = a * b
        assert c.exponent("x") == 5
        assert c.exponent("y") == 1

    def test_mul_cancels(self):
        a = Monomial([("x", Fraction(2))])
        b = Monomial([("x", Fraction(-2))])
        assert (a * b).is_one()

    def test_pow_fractional(self):
        a = Monomial([("x", Fraction(1))])
        assert (a ** Fraction(1, 2)).exponent("x") == Fraction(1, 2)

    def test_divides_and_gcd(self):
        a = Monomial([("x", Fraction(1))])
        b = Monomial([("x", Fraction(2)), ("y", Fraction(1))])
        assert a.divides(b)
        assert not b.divides(a)
        assert a.gcd(b) == a

    def test_eval_fractional_exponent_is_float(self):
        a = Monomial([("x", Fraction(1, 2))])
        assert a.eval({"x": 9}) == pytest.approx(3.0)

    def test_eval_integral_exponent_exact(self):
        a = Monomial([("x", Fraction(3))])
        assert a.eval({"x": Fraction(1, 2)}) == Fraction(1, 8)

    def test_eval_unbound_raises(self):
        with pytest.raises(KeyError):
            Monomial([("x", Fraction(1))]).eval({})

    def test_hash_consistency(self):
        a = Monomial([("x", Fraction(1)), ("y", Fraction(2))])
        b = Monomial([("y", Fraction(2)), ("x", Fraction(1))])
        assert a == b and hash(a) == hash(b)


# ---------------------------------------------------------------------------
# Poly basics
# ---------------------------------------------------------------------------


class TestPolyBasics:
    def test_const(self):
        assert Const(5).eval({}) == 5
        assert Const(0).is_zero()

    def test_symbol(self):
        assert M.eval({"M": 7}) == 7

    def test_add_collects_terms(self):
        p = M + M
        assert p.eval({"M": 3}) == 6
        assert len(p.terms) == 1

    def test_cancellation(self):
        assert (M - M).is_zero()

    def test_mul_distributes(self):
        p = (M + 1) * (M - 1)
        assert p == M**2 - 1

    def test_pow_binomial(self):
        assert (M + N) ** 2 == M**2 + 2 * M * N + N**2

    def test_pow_zero(self):
        assert (M + N) ** 0 == Const(1)

    def test_fractional_pow_monomial_only(self):
        assert (S ** Fraction(1, 2)).eval({"S": 16}) == pytest.approx(4.0)
        with pytest.raises(ValueError):
            (M + N) ** Fraction(1, 2)

    def test_fractional_pow_perfect_square_coeff(self):
        p = Const(4) * S
        r = p ** Fraction(1, 2)
        assert r.eval({"S": 9}) == pytest.approx(6.0)

    def test_fractional_pow_bad_coeff(self):
        with pytest.raises(ValueError):
            (Const(3) * S) ** Fraction(1, 2)

    def test_negative_pow_monomial(self):
        p = S ** (-1)
        assert p.eval({"S": 4}) == Fraction(1, 4)

    def test_degree(self):
        p = M**2 * N + N
        assert p.total_degree() == 3
        assert p.degree_in("M") == 2
        assert p.degree_in("N") == 1

    def test_symbols(self):
        assert (M * N + S).symbols() == frozenset({"M", "N", "S"})

    def test_const_value_raises_on_nonconst(self):
        with pytest.raises(ValueError):
            M.const_value()

    def test_content(self):
        p = Const(6) * M + Const(9) * N
        assert p.content() == 3
        p2 = M * Fraction(1, 2) + N * Fraction(3, 4)
        assert p2.content() == Fraction(1, 4)

    def test_monomial_gcd(self):
        p = M**2 * N + M * N**2
        g = p.monomial_gcd()
        assert g.exponent("M") == 1 and g.exponent("N") == 1

    def test_subs_poly(self):
        p = M**2 + N
        q = p.subs({"M": N + 1})
        assert q == N**2 + 3 * N + 1

    def test_subs_partial(self):
        p = M * N
        assert p.subs({"M": 2}) == 2 * N

    def test_subs_fractional_exponent_needs_monomial(self):
        p = S ** Fraction(1, 2)
        assert p.subs({"S": M}).degree_in("M") == Fraction(1, 2)
        with pytest.raises(ValueError):
            p.subs({"S": M + 1})

    def test_repr_roundtrip_smoke(self):
        # repr is for humans; just check stability on a known formula
        p = M**2 * N * Fraction(1, 8)
        assert "M**2" in repr(p) and "N" in repr(p)


# ---------------------------------------------------------------------------
# property-based: ring axioms and eval homomorphism
# ---------------------------------------------------------------------------

_vals = st.integers(min_value=-6, max_value=6)


@st.composite
def polys(draw, max_terms=4):
    terms = {}
    for _ in range(draw(st.integers(0, max_terms))):
        ex = draw(st.integers(0, 3))
        ey = draw(st.integers(0, 3))
        c = draw(st.integers(-5, 5))
        m = Monomial([("x", Fraction(ex)), ("y", Fraction(ey))])
        terms[m] = terms.get(m, Fraction(0)) + c
    return Poly({m: c for m, c in terms.items() if c})


@given(polys(), polys(), polys())
@settings(max_examples=60, deadline=None)
def test_ring_axioms(p, q, r):
    assert p + q == q + p
    assert p * q == q * p
    assert (p + q) + r == p + (q + r)
    assert (p * q) * r == p * (q * r)
    assert p * (q + r) == p * q + p * r
    assert p + Poly() == p
    assert p * Const(1) == p
    assert (p * Const(0)).is_zero()


@given(polys(), polys(), _vals, _vals)
@settings(max_examples=60, deadline=None)
def test_eval_is_homomorphism(p, q, x, y):
    env = {"x": x, "y": y}
    assert (p + q).eval(env) == p.eval(env) + q.eval(env)
    assert (p * q).eval(env) == p.eval(env) * q.eval(env)
    assert (-p).eval(env) == -p.eval(env)


@given(polys(), st.integers(0, 4), _vals, _vals)
@settings(max_examples=40, deadline=None)
def test_pow_matches_repeated_mul(p, k, x, y):
    env = {"x": x, "y": y}
    expected = Fraction(1)
    for _ in range(k):
        expected *= p.eval(env)
    assert (p**k).eval(env) == expected


@given(polys(), polys(), _vals, _vals)
@settings(max_examples=40, deadline=None)
def test_subs_then_eval_equals_eval_composed(p, q, x, y):
    env = {"x": x, "y": y}
    composed = p.subs({"x": q})
    direct = p.eval({"x": q.eval(env), "y": y})
    assert composed.eval(env) == direct
