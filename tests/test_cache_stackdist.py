"""Tests for the stack-distance miss-curve computation."""

from __future__ import annotations

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.cache import lru_miss_curve, simulate_lru, stack_distances
from repro.ir import Event


def ev(*addrs):
    return [Event("R", ("A", (a,))) for a in addrs]


class TestStackDistances:
    def test_cold_marked(self):
        assert stack_distances(ev(0, 1, 2)) == [-1, -1, -1]

    def test_immediate_reuse(self):
        assert stack_distances(ev(0, 0)) == [-1, 0]

    def test_classic_sequence(self):
        # a b c b a: b reused over {c} (dist 1), a over {b, c} (dist 2)
        assert stack_distances(ev(0, 1, 2, 1, 0)) == [-1, -1, -1, 1, 2]

    def test_repeated_touches_collapse(self):
        # a b b b a: distinct-in-between is just {b}
        assert stack_distances(ev(0, 1, 1, 1, 0)) == [-1, -1, 0, 0, 1]

    def test_writes_count_as_touches(self):
        events = [Event("W", ("A", (0,))), Event("R", ("A", (0,)))]
        assert stack_distances(events) == [-1, 0]


class TestMissCurve:
    def test_matches_simulator(self):
        trace = ev(0, 1, 2, 1, 0, 3, 2, 0, 1, 1, 4, 0)
        curve = lru_miss_curve(trace)
        for s in range(1, len(curve)):
            ref = simulate_lru(trace, s)
            assert curve[s] == ref.loads + ref.write_allocs, f"S={s}"

    def test_monotone(self):
        trace = ev(0, 1, 2, 0, 1, 2, 3, 0)
        curve = lru_miss_curve(trace)
        for s in range(2, len(curve)):
            assert curve[s] <= curve[s - 1]

    def test_reaches_cold_misses(self):
        trace = ev(0, 1, 2, 0, 1, 2)
        curve = lru_miss_curve(trace)
        assert curve[-1] == 3  # working set of 3 fits: only cold misses

    def test_max_s_truncation(self):
        trace = ev(*range(50), *range(50))
        curve = lru_miss_curve(trace, max_s=10)
        assert len(curve) == 11
        full = lru_miss_curve(trace)
        assert curve[1:] == full[1:11]

    def test_on_kernel_trace(self):
        from repro.ir import Tracer
        from repro.kernels import get_kernel

        t = Tracer()
        get_kernel("mgs").program.runner({"M": 8, "N": 6}, t)
        events = list(t.events)
        curve = lru_miss_curve(events, max_s=64)
        for s in (1, 5, 17, 42, 64):
            ref = simulate_lru(events, s)
            assert curve[s] == ref.loads + ref.write_allocs


@given(
    st.lists(
        st.tuples(st.sampled_from("RW"), st.integers(0, 8)),
        min_size=1,
        max_size=60,
    ),
    st.integers(1, 10),
)
@settings(max_examples=60, deadline=None)
def test_curve_equals_simulator_everywhere(ops, s):
    events = [Event(op, ("x", (a,))) for op, a in ops]
    curve = lru_miss_curve(events, max_s=12)
    ref = simulate_lru(events, s)
    assert curve[s] == ref.loads + ref.write_allocs


class TestMissCurveProperties:
    """Seeded properties: one histogram pass == direct LRU at *every* S."""

    @given(st.integers(0, 10_000))
    @settings(max_examples=25, deadline=None)
    def test_every_capacity_in_one_pass_random_trace(self, seed):
        import random

        rng = random.Random(seed)
        events = [
            Event(rng.choice("RW"), ("a", (rng.randint(0, 12),)))
            for _ in range(rng.randint(1, 80))
        ]
        curve = lru_miss_curve(events, max_s=15)
        for s in range(1, 16):
            ref = simulate_lru(events, s)
            assert curve[s] == ref.loads + ref.write_allocs, f"seed={seed} S={s}"

    def test_every_capacity_on_fuzz_program_traces(self):
        """Traces from the verify fuzzer exercise multi-array, multi-dim
        address patterns the scalar strategies above never produce."""
        import random

        from repro.ir import Tracer
        from repro.verify import random_fuzz_program

        for seed in range(4):
            fp = random_fuzz_program(seed)
            params = fp.sample_params(random.Random(seed))
            t = Tracer()
            fp.program.runner(params, t)
            curve = lru_miss_curve(t.events, max_s=20)
            for s in range(1, 21):
                ref = simulate_lru(t.events, s)
                assert curve[s] == ref.loads + ref.write_allocs

    @given(st.integers(0, 10_000))
    @settings(max_examples=25, deadline=None)
    def test_curve_monotone_and_bracketed(self, seed):
        """Curve is non-increasing and pinned between cold misses and the
        total access count."""
        import random

        rng = random.Random(seed)
        events = [
            Event("R", ("a", (rng.randint(0, 9),)))
            for _ in range(rng.randint(1, 60))
        ]
        curve = lru_miss_curve(events, max_s=12)
        cold = len({e.addr for e in events})
        for s in range(1, 13):
            assert cold <= curve[s] <= len(events)
            if s > 1:
                assert curve[s] <= curve[s - 1]
        assert curve[12] == cold  # working set of <= 10 fits in 12
