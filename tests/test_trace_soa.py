"""Tests for the structure-of-arrays trace representation (repro.ir.soatrace)."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.cache import cold_loads
from repro.cache import _reference as reference
from repro.ir import Event, Tracer, TraceArrays

_trace = st.lists(
    st.tuples(st.sampled_from("RW"), st.sampled_from("ABx"), st.integers(0, 9)),
    min_size=0,
    max_size=80,
)


def _events(ops) -> list[Event]:
    return [Event(op, (arr, (idx,))) for op, arr, idx in ops]


class TestRoundtrip:
    @given(_trace)
    @settings(max_examples=60, deadline=None)
    def test_roundtrip_exact(self, ops):
        evs = _events(ops)
        ta = TraceArrays.from_events(evs)
        assert ta.to_events() == evs
        assert len(ta) == len(evs)

    def test_first_appearance_ids(self):
        evs = _events([("R", "A", 3), ("W", "B", 0), ("R", "A", 3)])
        ta = TraceArrays.from_events(evs)
        assert ta.addr_ids.tolist() == [0, 1, 0]
        assert ta.is_write.tolist() == [False, True, False]
        assert ta.addrs == (("A", (3,)), ("B", (0,)))
        assert ta.n_addrs == 2

    def test_empty_trace(self):
        ta = TraceArrays.from_events([])
        assert len(ta) == 0 and ta.n_addrs == 0
        assert ta.to_events() == []
        assert cold_loads(ta) == 0

    def test_tracer_convenience(self):
        t = Tracer()
        t.stmt("S", 0)
        t.read("A", 0)
        t.write("A", 1)
        ta = t.trace_arrays()
        assert ta.to_events() == t.events


class TestNextUse:
    @given(_trace)
    @settings(max_examples=60, deadline=None)
    def test_next_use_matches_naive(self, ops):
        evs = _events(ops)
        ta = TraceArrays.from_events(evs)
        nxt = ta.next_use()
        ids = ta.addr_ids.tolist()
        for i, a in enumerate(ids):
            naive = next((j for j in range(i + 1, len(ids)) if ids[j] == a), len(ids))
            assert nxt[i] == naive

    def test_sentinel_is_length(self):
        ta = TraceArrays.from_events(_events([("R", "A", 0)]))
        assert ta.next_use().tolist() == [1]


class TestAddressRank:
    def test_rank_is_sorted_address_order(self):
        evs = _events([("R", "B", 1), ("R", "A", 2), ("R", "A", 0)])
        ta = TraceArrays.from_events(evs)
        rank = ta.address_rank()
        # sorted addresses: (A,(0,)) < (A,(2,)) < (B,(1,))
        by_rank = sorted(range(ta.n_addrs), key=lambda i: rank[i])
        assert [ta.addrs[i] for i in by_rank] == sorted(ta.addrs)

    def test_rank_cached(self):
        ta = TraceArrays.from_events(_events([("R", "A", 0), ("R", "B", 0)]))
        assert ta.address_rank() is ta.address_rank()


class TestColdLoads:
    @given(_trace)
    @settings(max_examples=60, deadline=None)
    def test_vectorized_matches_reference(self, ops):
        evs = _events(ops)
        assert cold_loads(evs) == reference.cold_loads(evs)
        assert cold_loads(TraceArrays.from_events(evs)) == reference.cold_loads(evs)
