"""Tests for front-end lowering and interpretation, incl. the full
figure-source integration (parsed CDAG == hand-built CDAG)."""

from __future__ import annotations

import numpy as np
import pytest

from repro.bounds import derive
from repro.cdag import (
    build_cdag,
    check_program_deps,
    check_spec_matches_runner,
    compare_cdags,
)
from repro.frontend import (
    InterpError,
    LowerError,
    compile_source,
    interpret,
    lower_program,
    parse,
)
from repro.frontend.sources import FIGURE_SHAPES, FIGURE_SOURCES
from repro.kernels import get_kernel, random_matrix, relative_error
from repro.kernels.common import Kernel
from repro.symbolic import Sym

PARSED_PARAMS = {
    "mgs": {"M": 5, "N": 4},
    "qr_a2v": {"M": 6, "N": 4},
    "qr_v2q": {"M": 6, "N": 4},
    "gehd2": {"N": 6},
    "gebd2": {"M": 7, "N": 5},
}


class TestLowering:
    def test_classification(self):
        prog = lower_program(parse("for (i = 0; i < N; i += 1) s += A[i];"))
        assert prog.params == ("N",)
        names = {a.name: a.ndim for a in prog.arrays}
        assert names == {"A": 1, "s": 0}

    def test_loop_bounds(self):
        prog = lower_program(parse("for (i = 2; i <= N; i += 1) X: s = A[i];"))
        st = prog.statement("X")
        assert st.domain().count({"N": 5}) == 4  # 2..5

    def test_reversed_loop_schedule(self):
        prog = lower_program(parse("for (k = N - 1; k > -1; k -= 1) X: s = A[k];"))
        st = prog.statement("X")
        assert "-k" in st.schedule
        assert st.domain().count({"N": 3}) == 3

    def test_guard_from_if(self):
        prog = lower_program(
            parse("for (k = 0; k < N; k += 1) if (k < N - 2) X: s = A[k];")
        )
        st = prog.statement("X")
        assert st.guards
        assert st.domain().count({"N": 5}) == 3

    def test_compound_assignment_reads_target_last(self):
        prog = lower_program(parse("X: A[0] += B[0];"))
        st = prog.statement("X")
        assert [r.array for r in st.reads] == ["B", "A"]

    def test_reads_deduplicated(self):
        prog = lower_program(parse("X: s = A[0] * A[0];"))
        assert len(prog.statement("X").reads) == 1

    def test_ternary_reads_both_arms(self):
        prog = lower_program(parse("X: s = (A[0] > 0) ? B[0] : C[0];"))
        assert {r.array for r in prog.statement("X").reads} == {"A", "B", "C"}

    def test_auto_names(self):
        prog = lower_program(parse("a = 1.0; b = 2.0;"))
        assert [s.name for s in prog.statements] == ["S0", "S1"]

    def test_duplicate_labels_rejected(self):
        with pytest.raises(LowerError):
            lower_program(parse("X: a = 1.0; X: b = 2.0;"))

    def test_nonaffine_index_rejected(self):
        with pytest.raises(LowerError):
            lower_program(parse("s = A[i * i];"))

    def test_nonaffine_bound_rejected(self):
        with pytest.raises(LowerError):
            lower_program(parse("for (i = 0; i < N * N2; i += 1) s = A[i];"))

    def test_inconsistent_rank_rejected(self):
        with pytest.raises(LowerError):
            lower_program(parse("s = A[0]; t = A[0][1];"))

    def test_scalar_in_index_rejected(self):
        # s is written, hence a scalar, hence not affine
        with pytest.raises(LowerError):
            lower_program(parse("s = 1.0; t = A[s];"))


class TestInterpreter:
    def test_basic_sum(self):
        src = "for (i = 0; i < N; i += 1) X: s += A[i];"
        prog, ast = compile_source(src)
        out = interpret(ast, prog, {"A": np.arange(4.0)}, {"N": 4})
        # s is a scalar; check via rerun with tracer count
        from repro.ir import Tracer

        t = Tracer()
        interpret(ast, prog, {"A": np.arange(4.0)}, {"N": 4}, t)
        assert len(t.schedule) == 4

    def test_array_update(self):
        src = "for (i = 0; i < N; i += 1) X: A[i] = A[i] * 2.0;"
        prog, ast = compile_source(src)
        out = interpret(ast, prog, {"A": np.ones(3)}, {"N": 3})
        assert np.allclose(out["A"], 2.0)

    def test_ternary_semantics(self):
        src = "X: A[0] = (A[0] > 0) ? 1.0 : (0.0 - 1.0);"
        prog, ast = compile_source(src)
        assert interpret(ast, prog, {"A": np.array([5.0])}, {})["A"][0] == 1.0
        assert interpret(ast, prog, {"A": np.array([-5.0])}, {})["A"][0] == -1.0

    def test_if_guard(self):
        src = "for (k = 0; k < N; k += 1) if (k >= 2) X: A[k] = 1.0;"
        prog, ast = compile_source(src)
        out = interpret(ast, prog, {"A": np.zeros(4)}, {"N": 4})
        assert list(out["A"]) == [0.0, 0.0, 1.0, 1.0]

    def test_sqrt_call(self):
        src = "X: A[0] = sqrt(A[0]);"
        prog, ast = compile_source(src)
        out = interpret(ast, prog, {"A": np.array([16.0])}, {})
        assert out["A"][0] == 4.0

    def test_unknown_function(self):
        prog, ast = compile_source("X: A[0] = frob(A[0]);")
        with pytest.raises(InterpError):
            interpret(ast, prog, {"A": np.zeros(1)}, {})

    def test_missing_array(self):
        prog, ast = compile_source("X: A[0] = B[0];")
        with pytest.raises(InterpError):
            interpret(ast, prog, {"A": np.zeros(1)}, {})

    def test_extraneous_array_rejected(self):
        prog, ast = compile_source("X: A[0] = 1.0;")
        with pytest.raises(InterpError):
            interpret(ast, prog, {"A": np.zeros(1), "Z": np.zeros(1)}, {})


class TestFigureSources:
    @pytest.mark.parametrize("name", sorted(FIGURE_SOURCES))
    def test_spec_matches_interpreter(self, name):
        prog, _ = compile_source(
            FIGURE_SOURCES[name], name + "_parsed", FIGURE_SHAPES[name]
        )
        ok, msg = check_spec_matches_runner(prog, PARSED_PARAMS[name])
        assert ok, msg

    @pytest.mark.parametrize("name", sorted(FIGURE_SOURCES))
    def test_cdag_check(self, name):
        prog, _ = compile_source(
            FIGURE_SOURCES[name], name + "_parsed", FIGURE_SHAPES[name]
        )
        assert check_program_deps(prog, PARSED_PARAMS[name]).ok()

    @pytest.mark.parametrize("name", sorted(FIGURE_SOURCES))
    def test_parsed_cdag_equals_hand_built(self, name):
        """The decisive agreement: figure source, front-end, and the manual
        transcription all produce the same computational DAG."""
        prog, _ = compile_source(
            FIGURE_SOURCES[name], name + "_parsed", FIGURE_SHAPES[name]
        )
        params = PARSED_PARAMS[name]
        g_parsed = build_cdag(prog, params)
        g_hand = build_cdag(get_kernel(name).program, params)
        assert compare_cdags(g_parsed, g_hand).ok()

    def test_parsed_mgs_numerically_correct(self):
        prog, ast = compile_source(
            FIGURE_SOURCES["mgs"], "mgs_parsed", FIGURE_SHAPES["mgs"]
        )
        m, n = 8, 5
        A0 = random_matrix(m, n, 0)
        out = interpret(
            ast,
            prog,
            {"A": A0, "Q": np.zeros((m, n)), "R": np.zeros((n, n))},
            {"M": m, "N": n},
        )
        assert relative_error(out["Q"] @ out["R"], A0) < 1e-9

    @pytest.mark.parametrize(
        "name,dominant",
        [
            ("mgs", "SU"),
            ("qr_a2v", "SU"),
            ("qr_v2q", "SU"),
            ("gebd2", "ScU"),
        ],
    )
    def test_parsed_hourglass_matches_hand_built(self, name, dominant):
        """Regression: detection must not depend on the textual read order
        (parsed compound assignments list the update operand last, hand
        specs list it first).  Classification and widths must agree."""
        from repro.bounds import derive_projections, detect_hourglass

        prog, _ = compile_source(
            FIGURE_SOURCES[name], name + "_parsed", FIGURE_SHAPES[name]
        )
        params = PARSED_PARAMS[name]
        sample = {k: v * 512 for k, v in params.items()}
        ps = derive_projections(prog, dominant, params)
        pat = detect_hourglass(prog, dominant, params, sample, ps)

        hand = get_kernel(name)
        ps_h = derive_projections(hand.program, hand.dominant, params)
        pat_h = detect_hourglass(hand.program, hand.dominant, params, sample, ps_h)
        assert pat.temporal == pat_h.temporal
        assert pat.reduction == pat_h.reduction
        assert pat.neutral == pat_h.neutral
        assert pat.width_min == pat_h.width_min

    def test_figure1_source_yields_theorem5(self):
        """Flagship integration: Figure 1's C code in, Theorem 5 out."""
        prog, _ = compile_source(
            FIGURE_SOURCES["mgs"], "mgs_parsed", FIGURE_SHAPES["mgs"]
        )
        kern = Kernel(program=prog, dominant="SU", default_params={"M": 5, "N": 4})
        rep = derive(
            kern,
            small_params={"M": 5, "N": 4},
            sample_params={"M": 4096, "N": 1024},
        )
        M, N, S = Sym("M"), Sym("N"), Sym("S")
        assert rep.hourglass.expr == M**2 * N * (N - 1) / (8 * (S + M))
        assert rep.hourglass_small_cache.expr == (M - S) * N * (N - 1) / 4
