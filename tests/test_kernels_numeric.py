"""Numeric validation of every kernel against linear-algebra ground truth."""

from __future__ import annotations

import numpy as np
import pytest

from repro.kernels import (
    KERNELS,
    TILED_A2V,
    TILED_MGS,
    default_block_size,
    householder_q,
    random_matrix,
    relative_error,
    run_mgs,
    run_qr_a2v,
    run_tiled_mgs,
)
from tests.conftest import NUMERIC_PARAMS


class TestKernelValidation:
    @pytest.mark.parametrize("name", sorted(KERNELS))
    def test_kernel_validates(self, name):
        KERNELS[name].validate(NUMERIC_PARAMS[name])

    @pytest.mark.parametrize("seed", [1, 2, 3])
    def test_mgs_multiple_seeds(self, seed):
        out = run_mgs({"M": 9, "N": 6}, None, seed=seed)
        A0 = random_matrix(9, 6, seed)
        assert relative_error(out["Q"] @ out["R"], A0) < 1e-9

    def test_mgs_r_upper_triangular(self):
        out = run_mgs({"M": 8, "N": 5}, None, seed=0)
        R = out["R"]
        assert np.allclose(np.tril(R, -1), 0.0)
        assert np.all(np.diag(R) > 0)

    def test_mgs_against_numpy_qr(self):
        m, n = 12, 7
        A0 = random_matrix(m, n, 0)
        out = run_mgs({"M": m, "N": n}, None, seed=0)
        q_np, r_np = np.linalg.qr(A0)
        # QR is unique up to column signs for full-rank A with positive diag
        signs = np.sign(np.diag(r_np))
        assert relative_error(out["Q"], q_np * signs) < 1e-8

    def test_a2v_r_matches_scipy(self):
        import scipy.linalg

        m, n = 10, 6
        A0 = random_matrix(m, n, 0)
        out = run_qr_a2v({"M": m, "N": n}, None, seed=0)
        r_ours = np.triu(out["A"][:n, :])
        _, r_sp = scipy.linalg.qr(A0, mode="economic")
        assert np.allclose(np.abs(r_ours), np.abs(r_sp), atol=1e-8)

    def test_a2v_q_orthogonal(self):
        m, n = 10, 6
        out = run_qr_a2v({"M": m, "N": n}, None, seed=0)
        Q = householder_q(out["A"], out["tau"], m)
        assert relative_error(Q.T @ Q, np.eye(m)) < 1e-9

    def test_a2v_rejects_square(self):
        with pytest.raises(ValueError):
            run_qr_a2v({"M": 5, "N": 5})

    def test_gehd2_rejects_tiny(self):
        with pytest.raises(ValueError):
            KERNELS["gehd2"].program.runner({"N": 2})

    def test_gehd2_hessenberg_structure(self):
        from repro.kernels import run_gehd2

        n = 9
        out = run_gehd2({"N": n}, None, seed=0)
        H = np.triu(out["A"], -1)
        # strictly-below-subdiagonal part of H is zero by construction;
        # the stored reflector entries must be nonzero (they carry v)
        assert np.any(np.abs(np.tril(out["A"], -2)) > 0)

    def test_gebd2_band_structure(self):
        from repro.kernels import run_gebd2

        m, n = 10, 6
        out = run_gebd2({"M": m, "N": n}, None, seed=0)
        B = np.zeros((n, n))
        for kk in range(n):
            B[kk, kk] = out["A"][kk, kk]
            if kk + 1 < n:
                B[kk, kk + 1] = out["A"][kk, kk + 1]
        # diagonal must be nonzero for a generic matrix
        assert np.all(np.abs(np.diag(B)) > 1e-12)


class TestTiledAlgorithms:
    @pytest.mark.parametrize("b", [1, 2, 3, 7, 100])
    def test_tiled_mgs_any_block_size(self, b):
        TILED_MGS.validate({"M": 9, "N": 7, "B": b})

    @pytest.mark.parametrize("b", [1, 2, 5, 100])
    def test_tiled_a2v_any_block_size(self, b):
        TILED_A2V.validate({"M": 10, "N": 6, "B": b})

    def test_tiled_mgs_bitwise_equals_untiled_r(self):
        """Same scalar ops => same floating-point results."""
        m, n = 8, 6
        ref = run_mgs({"M": m, "N": n}, None, seed=0)
        out = run_tiled_mgs({"M": m, "N": n, "B": 2}, None, seed=0)
        assert np.allclose(out["R"], ref["R"], rtol=1e-13, atol=1e-13)
        assert np.allclose(out["Q"], ref["Q"], rtol=1e-13, atol=1e-13)

    def test_block_size_rejected(self):
        with pytest.raises(ValueError):
            run_tiled_mgs({"M": 4, "N": 3, "B": 0})

    def test_default_block_size(self):
        assert default_block_size(10, 55) == 4  # floor(55/10) - 1
        assert default_block_size(100, 50) == 1  # clipped to >= 1


class TestRandomMatrix:
    def test_deterministic(self):
        a = random_matrix(5, 3, seed=7)
        b = random_matrix(5, 3, seed=7)
        assert np.array_equal(a, b)

    def test_well_conditioned(self):
        a = random_matrix(20, 10, seed=0)
        assert np.linalg.cond(a) < 1e3

    def test_relative_error_scale(self):
        a = np.ones((3, 3))
        assert relative_error(a, a) == 0.0
        assert relative_error(a + 1, a) > 0
