"""Tests for the two-level memory simulators (LRU / Belady)."""

from __future__ import annotations

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.cache import cold_loads, simulate, simulate_belady, simulate_lru
from repro.ir import Event
from tests.conftest import SMALL_PARAMS, trace_for


def ev(seq: str) -> list[Event]:
    """'Ra Wb Ra' -> events on one-letter addresses."""
    out = []
    for tok in seq.split():
        out.append(Event(tok[0], (tok[1:], ())))
    return out


class TestLRU:
    def test_cold_miss(self):
        st_ = simulate_lru(ev("Ra"), 2)
        assert st_.loads == 1 and st_.read_hits == 0

    def test_hit_after_load(self):
        st_ = simulate_lru(ev("Ra Ra"), 2)
        assert st_.loads == 1 and st_.read_hits == 1

    def test_eviction_order(self):
        # capacity 2: a, b fill; c evicts a; re-reading a misses
        st_ = simulate_lru(ev("Ra Rb Rc Ra"), 2)
        assert st_.loads == 4

    def test_touch_refreshes(self):
        # a b a c: b is LRU when c arrives; a survives
        st_ = simulate_lru(ev("Ra Rb Ra Rc Ra"), 2)
        assert st_.loads == 3

    def test_write_allocates_without_load(self):
        st_ = simulate_lru(ev("Wa Ra"), 2)
        assert st_.loads == 0
        assert st_.write_allocs == 1
        assert st_.read_hits == 1

    def test_dirty_eviction_store(self):
        st_ = simulate_lru(ev("Wa Rb Rc"), 2)
        assert st_.evict_stores == 1  # a was dirty and evicted

    def test_flush_stores(self):
        st_ = simulate_lru(ev("Wa Wb"), 4)
        assert st_.flush_stores == 2
        assert st_.stores == 2

    def test_write_hit(self):
        st_ = simulate_lru(ev("Ra Wa"), 2)
        assert st_.write_hits == 1

    def test_capacity_one(self):
        st_ = simulate_lru(ev("Ra Rb Ra"), 1)
        assert st_.loads == 3

    def test_invalid_capacity(self):
        with pytest.raises(ValueError):
            simulate_lru([], 0)


class TestBelady:
    def test_optimal_keeps_future_used(self):
        # capacity 2: 'a' used far later; LRU would evict it, OPT keeps what
        # pays.  trace: a b c b a  -> OPT evicts c or b optimally
        lru = simulate_lru(ev("Ra Rb Rc Rb Ra"), 2)
        opt = simulate_belady(ev("Ra Rb Rc Rb Ra"), 2)
        assert opt.loads <= lru.loads

    def test_dead_values_evicted_first(self):
        st_ = simulate_belady(ev("Ra Rb Rc Rb Rc"), 2)
        assert st_.loads == 3  # a never reused: evicted for free

    def test_same_as_lru_when_fits(self):
        trace = ev("Ra Rb Ra Rb Wa Rb")
        assert simulate_lru(trace, 8).loads == simulate_belady(trace, 8).loads

    def test_invalid_capacity(self):
        with pytest.raises(ValueError):
            simulate_belady([], 0)


class TestDispatchAndHelpers:
    def test_simulate_dispatch(self):
        t = ev("Ra Rb")
        assert simulate(t, 2, "lru").policy == "lru"
        assert simulate(t, 2, "belady").policy == "belady"
        with pytest.raises(ValueError):
            simulate(t, 2, "fifo")

    def test_cold_loads(self):
        assert cold_loads(ev("Ra Wb Rb Ra")) == 1  # only a is a cold read
        assert cold_loads(ev("Wa Ra")) == 0

    def test_total_io(self):
        st_ = simulate_lru(ev("Ra Wa"), 2)
        assert st_.total_io == st_.loads + st_.stores


class TestOnKernelTraces:
    @pytest.mark.parametrize("name", sorted(SMALL_PARAMS))
    def test_belady_beats_lru_on_kernels(self, name):
        events = list(trace_for(name).events)
        for s in (4, 16):
            assert simulate_belady(events, s).loads <= simulate_lru(events, s).loads

    @pytest.mark.parametrize("name", sorted(SMALL_PARAMS))
    def test_loads_floor_is_cold_misses(self, name):
        """With any capacity, loads >= compulsory loads; with huge capacity,
        equality."""
        events = list(trace_for(name).events)
        cold = cold_loads(events)
        assert simulate_lru(events, 10_000).loads == cold
        assert simulate_lru(events, 4).loads >= cold

    def test_monotone_in_capacity(self):
        events = list(trace_for("mgs").events)
        prev = None
        for s in (2, 4, 8, 16, 32, 64):
            cur = simulate_belady(events, s).loads
            if prev is not None:
                assert cur <= prev
            prev = cur


@given(
    st.lists(
        st.tuples(st.sampled_from("RW"), st.integers(0, 6)), min_size=1, max_size=60
    ),
    st.integers(1, 5),
)
@settings(max_examples=50, deadline=None)
def test_conservation_properties(ops, s):
    """loads + read_hits == reads; write_hits + write_allocs == writes;
    Belady <= LRU on any trace."""
    events = [Event(op, ("x", (addr,))) for op, addr in ops]
    lru = simulate_lru(events, s)
    opt = simulate_belady(events, s)
    n_reads = sum(1 for e in events if e.op == "R")
    n_writes = len(events) - n_reads
    for st_ in (lru, opt):
        assert st_.loads + st_.read_hits == n_reads
        assert st_.write_hits + st_.write_allocs == n_writes
        assert st_.accesses == len(events)
    assert opt.loads <= lru.loads
