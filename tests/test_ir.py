"""Tests for the program IR, tracing, and dataflow replay."""

from __future__ import annotations

import pytest

from repro.ir import (
    Access,
    Array,
    Program,
    Statement,
    Tracer,
    dataflow_trace,
    sequential_schedule,
)
from repro.polyhedral import var

i, j, N = var("i"), var("j"), var("N")


def tiny_program():
    """A two-statement producer/consumer chain: B[i] = A[i]; C[i] = B[i]."""
    return Program(
        name="tiny",
        params=("N",),
        arrays=(Array("A", 1), Array("B", 1), Array("C", 1)),
        statements=(
            Statement(
                "P",
                loops=(("i", 0, N - 1),),
                reads=(Access.to("A", i),),
                writes=(Access.to("B", i),),
                schedule=(0, "i", 0),
            ),
            Statement(
                "C",
                loops=(("i", 0, N - 1),),
                reads=(Access.to("B", i),),
                writes=(Access.to("C", i),),
                schedule=(1, "i", 0),
            ),
        ),
        outputs=("C",),
    )


class TestProgramStructure:
    def test_statement_lookup(self):
        p = tiny_program()
        assert p.statement("P").name == "P"
        with pytest.raises(KeyError):
            p.statement("nope")

    def test_duplicate_statement_names_rejected(self):
        st = Statement("X", loops=(("i", 0, 3),))
        with pytest.raises(ValueError):
            Program("bad", (), (), (st, st))

    def test_undeclared_array_rejected(self):
        st = Statement(
            "X", loops=(("i", 0, 3),), reads=(Access.to("Z", i),)
        )
        with pytest.raises(ValueError):
            Program("bad", (), (Array("A", 1),), (st,))

    def test_instance_count(self):
        p = tiny_program()
        assert p.statement("P").instance_count().eval({"N": 7}) == 7
        assert p.total_instances().eval({"N": 7}) == 14

    def test_instances_enumeration(self):
        p = tiny_program()
        inst = list(p.instances({"N": 2}))
        assert ("P", (0,)) in inst and ("C", (1,)) in inst
        assert len(inst) == 4

    def test_access_eval(self):
        a = Access.to("A", i + 1, 2 * j)
        assert a.eval({"i": 3, "j": 5}) == ("A", (4, 10))

    def test_access_dims_used(self):
        a = Access.to("A", i, N - 1)
        assert a.dims_used(("i", "j")) == frozenset({"i"})

    def test_guarded_statement_count_unsupported(self):
        from repro.polyhedral import Constraint

        st = Statement(
            "X", loops=(("i", 0, N - 1),), guards=(Constraint(i - 2, ">="),)
        )
        with pytest.raises(ValueError):
            st.instance_count()


class TestScheduleKeys:
    def test_forward(self):
        st = Statement("X", loops=(("i", 0, 9),), schedule=(0, "i", 2))
        assert st.schedule_key((5,)) == (0, 5, 2)

    def test_reversed_dim(self):
        st = Statement("X", loops=(("k", 0, 9),), schedule=(0, "-k", 1))
        assert st.schedule_key((3,)) == (0, -3, 1)
        # later iterations (smaller k) must sort after earlier ones
        assert st.schedule_key((7,)) < st.schedule_key((2,))

    def test_sequential_schedule_order(self):
        order = sequential_schedule(tiny_program(), {"N": 3})
        assert order == [
            ("P", (0,)), ("P", (1,)), ("P", (2,)),
            ("C", (0,)), ("C", (1,)), ("C", (2,)),
        ]

    def test_missing_schedule_raises(self):
        p = Program(
            "x",
            ("N",),
            (Array("A", 1),),
            (Statement("X", loops=(("i", 0, N - 1),), writes=(Access.to("A", i),)),),
        )
        with pytest.raises(ValueError):
            sequential_schedule(p, {"N": 2})


class TestTracer:
    def test_flow_edge_and_inputs(self):
        t = Tracer()
        t.stmt("P", 0)
        t.read("A", 0)
        t.write("B", 0)
        t.stmt("C", 0)
        t.read("B", 0)
        t.write("C", 0)
        assert (("P", (0,)), ("C", (0,)), ("B", (0,))) in t.flow_edges
        assert ("A", (0,)) in t.input_elements
        assert t.n_reads() == 2 and t.n_writes() == 2

    def test_input_edge_key(self):
        t = Tracer()
        t.stmt("X", 0)
        t.read("A", 5)
        producers = {p for p, _, _ in t.flow_edges}
        assert ("_input", ("A", (5,))) in producers

    def test_self_read_after_write_not_an_edge(self):
        t = Tracer()
        t.stmt("X", 0)
        t.write("A", 0)
        t.read("A", 0)
        assert not t.flow_edges  # producer == consumer is skipped

    def test_instance_index_unique(self):
        t = Tracer()
        t.stmt("X", 0)
        t.stmt("X", 0)
        with pytest.raises(ValueError):
            t.instance_index()

    def test_touched_elements(self):
        t = Tracer()
        t.stmt("X", 0)
        t.read("A", 1)
        t.write("B", 2)
        assert t.touched_elements() == {("A", (1,)), ("B", (2,))}


class TestDataflowReplay:
    def test_tiny_chain(self):
        t = dataflow_trace(tiny_program(), {"N": 2})
        assert (("P", (0,)), ("C", (0,)), ("B", (0,))) in t.flow_edges
        assert ("A", (0,)) in t.input_elements
        assert ("A", (1,)) in t.input_elements
        assert len(t.schedule) == 4

    def test_matches_runner_for_every_kernel(self):
        from repro.cdag import check_spec_matches_runner
        from repro.kernels import KERNELS
        from tests.conftest import SMALL_PARAMS

        for name, kern in KERNELS.items():
            ok, msg = check_spec_matches_runner(kern.program, SMALL_PARAMS[name])
            assert ok, f"{name}: {msg}"
