"""Tests for rational functions (repro.symbolic.rational)."""

from __future__ import annotations

from fractions import Fraction

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.symbolic import Const, Monomial, Poly, Rational, Sym, as_rational, ratio

M, N, S = Sym("M"), Sym("N"), Sym("S")


class TestConstruction:
    def test_zero_denominator_rejected(self):
        with pytest.raises(ZeroDivisionError):
            Rational(M, Poly())

    def test_zero_numerator_normalises(self):
        r = Rational(Poly(), M + S)
        assert r.is_zero()
        assert r.den == Const(1)

    def test_constant_denominator_folds(self):
        r = Rational(M, Const(2))
        assert r.is_poly()
        assert r.as_poly() == M * Fraction(1, 2)

    def test_monomial_gcd_cancelled(self):
        r = Rational(M**2 * N, M * S)
        assert r.num == M * N
        assert r.den == S

    def test_negative_denominator_sign_fixed(self):
        r = Rational(M, -S)
        assert r.eval({"M": 2, "S": 4}) == Fraction(-1, 2)

    def test_division_operator_builds_rational(self):
        r = M / (S + 1)
        assert isinstance(r, Rational)
        assert r.eval({"M": 10, "S": 4}) == 2

    def test_as_poly_raises_when_not_poly(self):
        with pytest.raises(ValueError):
            (M / (S + 1)).as_poly()


class TestArithmetic:
    def test_add_common_denominator(self):
        r = M / S + N / S
        assert r == (M + N) / S

    def test_paper_formula_mgs(self):
        # Theorem 5: M^2 N (N-1) / (8 (S+M))
        b = M**2 * N * (N - 1) / (8 * (S + M))
        assert b.eval({"M": 100, "N": 50, "S": 256}) == Fraction(
            100**2 * 50 * 49, 8 * 356
        )

    def test_mul_div_inverse(self):
        r = (M + 1) / (N + 2)
        assert (r / r).eval({"M": 3, "N": 4}) == 1

    def test_pow_negative(self):
        r = (M / N) ** (-2)
        assert r.eval({"M": 2, "N": 6}) == 9

    def test_sub(self):
        r = M / S - M / S
        assert r.is_zero()

    def test_rtruediv(self):
        r = 1 / (M / N)
        assert r.eval({"M": 2, "N": 8}) == 4

    def test_division_by_zero_rational(self):
        with pytest.raises(ZeroDivisionError):
            (M / N) / Rational(Poly())

    def test_eval_vanishing_denominator(self):
        r = M / (S - 4)
        with pytest.raises(ZeroDivisionError):
            r.eval({"M": 1, "S": 4})

    def test_subs(self):
        r = M / (S + M)
        r2 = r.subs({"M": Const(2) * S})
        assert r2.eval({"S": 5}) == Fraction(2, 3)

    def test_equality_cross_multiplies(self):
        a = (M * N) / (N * S)
        b = M / S
        assert a == b

    def test_symbols(self):
        assert (M / (S + N)).symbols() == frozenset({"M", "N", "S"})


@st.composite
def small_polys(draw):
    terms = {}
    for _ in range(draw(st.integers(0, 3))):
        e = draw(st.integers(0, 2))
        c = draw(st.integers(-4, 4))
        m = Monomial([("x", Fraction(e))])
        terms[m] = terms.get(m, Fraction(0)) + c
    return Poly({m: c for m, c in terms.items() if c})


@given(small_polys(), small_polys(), small_polys(), st.integers(1, 7))
@settings(max_examples=60, deadline=None)
def test_field_axioms_numeric(p, q, d, x):
    """Rational arithmetic agrees with Fraction arithmetic pointwise."""
    if d.is_zero():
        d = Const(1)
    env = {"x": x}
    dv = d.eval(env)
    if dv == 0:
        return
    a = Rational(p, d)
    b = Rational(q, d)
    pe, qe = p.eval(env), q.eval(env)
    assert (a + b).eval(env) == (pe + qe) / dv
    assert (a * b).eval(env) == (pe * qe) / (dv * dv)
    assert (a - b).eval(env) == (pe - qe) / dv
    if qe != 0:
        assert (a / b).eval(env) == Fraction(pe, qe) if isinstance(pe, Fraction) or isinstance(qe, Fraction) else (a / b).eval(env) == pe / qe
