"""Tests for parametric integer sets: enumeration, FM projection, slicing."""

from __future__ import annotations

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.polyhedral import Constraint, ISet, LinExpr, loop_nest_set, var

k, j, i, M, N = var("k"), var("j"), var("i"), var("M"), var("N")


def brute_triangle(m, n):
    return {
        (kk, jj, ii)
        for kk in range(n)
        for jj in range(kk + 1, n)
        for ii in range(m)
    }


class TestEnumeration:
    def test_box(self):
        dom = loop_nest_set([("i", 0, M - 1), ("j", 0, N - 1)])
        pts = set(dom.points({"M": 3, "N": 2}))
        assert pts == {(a, b) for a in range(3) for b in range(2)}

    def test_triangle_matches_brute_force(self):
        dom = loop_nest_set([("k", 0, N - 1), ("j", k + 1, N - 1), ("i", 0, M - 1)])
        assert set(dom.points({"M": 4, "N": 5})) == brute_triangle(4, 5)

    def test_empty_domain(self):
        dom = loop_nest_set([("i", 5, 3)])
        assert dom.is_empty({})
        assert dom.count({}) == 0

    def test_zero_dim_set(self):
        s = ISet((), (Constraint(M - 3, ">="),))
        assert list(s.points({"M": 5})) == [()]
        assert list(s.points({"M": 2})) == []

    def test_unbound_param_raises(self):
        dom = loop_nest_set([("i", 0, M - 1)])
        with pytest.raises(KeyError):
            list(dom.points({}))

    def test_unbounded_dim_raises(self):
        s = ISet(("i",), (Constraint(var("i"), ">="),))
        with pytest.raises(ValueError):
            list(s.points({}))

    def test_contains(self):
        dom = loop_nest_set([("k", 0, N - 1), ("j", k + 1, N - 1)])
        assert dom.contains((0, 1), {"N": 3})
        assert not dom.contains((1, 1), {"N": 3})
        assert not dom.contains((0, 5), {"N": 3})

    def test_contains_arity_check(self):
        dom = loop_nest_set([("i", 0, 3)])
        with pytest.raises(ValueError):
            dom.contains((1, 2), {})

    def test_equality_constraint(self):
        dom = loop_nest_set(
            [("i", 0, 9), ("j", 0, 9)],
            guards=(Constraint(var("i") - var("j"), "=="),),
        )
        pts = set(dom.points({}))
        assert pts == {(a, a) for a in range(10)}

    def test_count(self):
        dom = loop_nest_set([("k", 0, N - 1), ("j", k + 1, N - 1), ("i", 0, M - 1)])
        assert dom.count({"M": 4, "N": 5}) == len(brute_triangle(4, 5))


class TestSlicingAndAlgebra:
    def test_fix(self):
        dom = loop_nest_set([("k", 0, N - 1), ("j", k + 1, N - 1)])
        sl = dom.fix({"k": 1})
        assert set(sl.points({"N": 5})) == {(jj,) for jj in range(2, 5)}

    def test_intersect(self):
        a = loop_nest_set([("i", 0, 9)])
        b = loop_nest_set([("i", 5, 20)])
        both = a.intersect(b)
        assert set(both.points({})) == {(x,) for x in range(5, 10)}

    def test_intersect_dim_mismatch(self):
        a = loop_nest_set([("i", 0, 9)])
        b = loop_nest_set([("j", 0, 9)])
        with pytest.raises(ValueError):
            a.intersect(b)

    def test_with_constraints(self):
        dom = loop_nest_set([("i", 0, 9)])
        dom2 = dom.with_constraints([Constraint(var("i") - 7, ">=")])
        assert dom2.count({}) == 3

    def test_duplicate_dims_rejected(self):
        with pytest.raises(ValueError):
            ISet(("i", "i"), ())

    def test_params(self):
        dom = loop_nest_set([("i", 0, M - 1), ("j", var("i"), N - 1)])
        assert dom.params() == frozenset({"M", "N"})


class TestProjection:
    def test_eliminate_gives_shadow(self):
        dom = loop_nest_set([("k", 0, N - 1), ("j", k + 1, N - 1)])
        shadow = dom.eliminate("j")
        # k range should be 0..N-2 (j needs k+1 <= N-1)
        pts = {p[0] for p in shadow.points({"N": 5})}
        assert pts == set(range(4))

    def test_project_points_exact(self):
        dom = loop_nest_set([("k", 0, N - 1), ("j", k + 1, N - 1), ("i", 0, M - 1)])
        proj = dom.project_points(["k", "j"], {"M": 2, "N": 4})
        brute = {(kk, jj) for (kk, jj, ii) in brute_triangle(2, 4)}
        assert proj == brute

    def test_project_single_dim(self):
        dom = loop_nest_set([("k", 0, N - 1), ("i", k + 1, M - 1)])
        proj = dom.project_points(["i"], {"M": 6, "N": 3})
        assert proj == {(x,) for x in range(1, 6)}

    def test_eliminate_unknown_dim(self):
        dom = loop_nest_set([("i", 0, 3)])
        with pytest.raises(ValueError):
            dom.eliminate("zz")

    def test_eliminate_with_equality(self):
        dom = loop_nest_set(
            [("i", 0, 9), ("j", 0, 9)],
            guards=(Constraint(var("i") - var("j"), "=="),),
        )
        sh = dom.eliminate("j")
        assert {p[0] for p in sh.points({})} == set(range(10))

    def test_symbolic_param_projection(self):
        """FM with symbolic parameters: project the A2V SU domain onto k."""
        dom = loop_nest_set(
            [("k", 0, N - 1), ("j", k + 1, N - 1), ("i", k + 1, M - 1)]
        )
        shadow = dom
        for d in ("i", "j"):
            shadow = shadow.eliminate(d)
        # for M=9, N=5 the k-shadow must be 0..3 (k <= N-2)
        pts = {p[0] for p in shadow.points({"M": 9, "N": 5})}
        assert pts == {0, 1, 2, 3}


@given(st.integers(1, 6), st.integers(1, 6))
@settings(max_examples=30, deadline=None)
def test_loop_nest_enumeration_matches_python_loops(m, n):
    dom = loop_nest_set(
        [("k", 0, N - 1), ("j", k + 1, N - 1), ("i", k + 1, M - 1)]
    )
    brute = {
        (kk, jj, ii)
        for kk in range(n)
        for jj in range(kk + 1, n)
        for ii in range(kk + 1, m)
    }
    assert set(dom.points({"M": m, "N": n})) == brute
