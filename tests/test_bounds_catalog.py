"""Tests for the transcribed paper formulas (Figure 4, Figure 5, Theorems)."""

from __future__ import annotations

import math

import pytest

from repro.bounds import FIG4, FIG5_NEW, FIG5_OLD, THEOREMS, paper_bound
from repro.kernels import PAPER_KERNELS
from repro.report import default_regime
from repro.symbolic import classify, growth_exponent

ENV = {"M": 4000, "N": 1000, "S": 1024}
ENV_SQ = {"N": 1000, "S": 1024}


def env_for(kernel):
    return dict(ENV_SQ) if kernel == "gehd2" else dict(ENV)


class TestCatalogStructure:
    @pytest.mark.parametrize("name", PAPER_KERNELS)
    def test_all_entries_present(self, name):
        assert name in FIG4 and name in FIG5_OLD and name in FIG5_NEW

    @pytest.mark.parametrize("name", PAPER_KERNELS)
    def test_formulas_positive_at_reference_point(self, name):
        env = env_for(name)
        assert FIG4[name]["old"].evaluate(env) > 0
        assert FIG4[name]["new"].evaluate(env) > 0
        assert FIG5_OLD[name].evaluate(env) > 0
        assert FIG5_NEW[name].evaluate(env) > 0

    def test_paper_bound_lookup(self):
        assert paper_bound("mgs", "fig4-old") is FIG4["mgs"]["old"]
        assert paper_bound("mgs", "fig5-new") is FIG5_NEW["mgs"]
        assert paper_bound("mgs", "thm5-mgs-main") is THEOREMS["thm5-mgs-main"]
        with pytest.raises(KeyError):
            paper_bound("mgs", "nope")


class TestInternalConsistency:
    """Figure 5's full formulas must asymptotically match Figure 4's leading
    terms, and the theorems must match Figure 5's dominant fractions."""

    @pytest.mark.parametrize("name", PAPER_KERNELS)
    def test_fig5_new_same_order_as_fig4_new(self, name):
        regime = default_regime(name)
        assert (
            classify(FIG5_NEW[name].expr, FIG4[name]["new"].expr, regime)
            == "same-order"
        )

    @pytest.mark.parametrize("name", PAPER_KERNELS)
    def test_fig5_old_same_order_as_fig4_old(self, name):
        regime = default_regime(name)
        assert (
            classify(FIG5_OLD[name].expr, FIG4[name]["old"].expr, regime)
            == "same-order"
        )

    def test_thm5_main_is_fig5_new_leading_term(self):
        """MGS: Figure 5 new = M^2 N(N-1)/... wait, its numerator is
        N^2 M^2 + 2M^2 - 3NM^2 = M^2 (N-1)(N-2); lower order terms differ
        from Theorem 5 but the ratio tends to 1."""
        regime = default_regime("mgs")
        thm = THEOREMS["thm5-mgs-main"].expr
        fig = FIG5_NEW["mgs"].expr
        assert classify(fig, thm, regime) == "same-order"

    def test_thm6_vs_fig5_a2v_same_order(self):
        regime = default_regime("qr_a2v")
        assert (
            classify(FIG5_NEW["qr_a2v"].expr, THEOREMS["thm6-a2v"].expr, regime)
            == "same-order"
        )

    def test_thm9_vs_fig4_gehd2(self):
        regime = default_regime("gehd2")
        assert (
            classify(THEOREMS["thm9-gehd2"].expr, FIG4["gehd2"]["new"].expr, regime)
            == "same-order"
        )


class TestImprovementClaims:
    """Figure 4's headline: each new bound improves on the old by a
    parametric factor (in regimes where S grows sublinearly)."""

    @pytest.mark.parametrize("name", PAPER_KERNELS)
    def test_new_dominates_old(self, name):
        regime = default_regime(name)
        assert (
            classify(FIG4[name]["new"].expr, FIG4[name]["old"].expr, regime)
            == "dominates"
        )

    def test_mgs_improvement_exponent(self):
        """§5.1: for S << M the improvement factor is Theta(sqrt(S));
        with S = sqrt(t) that is t^{1/4}.  (The Theta(M/sqrt(S)) factor
        belongs to the M << S regime, tested below.)"""
        regime = default_regime("mgs")
        exp = growth_exponent(
            FIG4["mgs"]["new"].expr, FIG4["mgs"]["old"].expr, regime
        )
        assert exp == pytest.approx(0.25, abs=0.05)

    def test_mgs_improvement_large_cache_regime(self):
        """M << S: improvement Theta(M/sqrt(S)).  With M=t, S=t^{1.5} the
        factor is t / t^{0.75} = t^{1/4}."""
        import math

        from repro.symbolic import Regime

        regime = Regime(
            {"M": lambda t: t, "N": lambda t: t, "S": lambda t: t**1.5}
        )
        exp = growth_exponent(
            FIG4["mgs"]["new"].expr, FIG4["mgs"]["old"].expr, regime
        )
        assert exp == pytest.approx(0.25, abs=0.05)

    def test_gehd2_improvement_exponent(self):
        """N^4/(N+2S) vs N^3/sqrt(S): improvement ~ sqrt(S) = t^{1/4} when
        S = sqrt(t) << N."""
        regime = default_regime("gehd2")
        exp = growth_exponent(
            FIG4["gehd2"]["new"].expr, FIG4["gehd2"]["old"].expr, regime
        )
        assert exp == pytest.approx(0.25, abs=0.05)


class TestTheoremConditions:
    def test_thm5_small_requires_s_leq_m(self):
        b = THEOREMS["thm5-mgs-small"]
        assert b.evaluate({"M": 100, "N": 50, "S": 30}) > 0
        assert b.evaluate({"M": 100, "N": 50, "S": 200}) < 0  # out of regime

    def test_thm9_small_cache_limit(self):
        """N >> S: the N^3/24 specialisation."""
        big_n = {"N": 100_000, "S": 16}
        full = THEOREMS["thm9-gehd2"].evaluate(big_n)
        limit = THEOREMS["thm9-gehd2-small"].evaluate(big_n)
        assert full / limit == pytest.approx(2.0, rel=0.01)
        # paper: N^4/(12(N+2S)) -> N^3/12 when S << N; the N^3/24 form keeps
        # a factor-2 margin from the split's second half


class TestSection51Regimes:
    """The §5.1 asymptotic analysis of the MGS bound."""

    def test_small_s_regime(self):
        """S <= M/2 => Q >= M N^2 / 8 via the second bound."""
        m, n, s = 1000, 500, 400  # s <= m/2
        val = THEOREMS["thm5-mgs-small"].evaluate({"M": m, "N": n, "S": s})
        assert val >= m * n * (n - 1) / 8

    def test_large_s_regime(self):
        """M/2 <= S => Q >= M^2 N^2/(24 S) via the first bound."""
        m, n, s = 1000, 500, 2000
        val = THEOREMS["thm5-mgs-main"].evaluate({"M": m, "N": n, "S": s})
        assert val >= m * m * n * (n - 1) / (24 * s)

    def test_limit_constants(self):
        """S << M: bound -> MN^2/4;  M << S: bound -> M^2 N^2 / (8S)."""
        m, n = 10_000, 5_000
        tiny_s = THEOREMS["thm5-mgs-small"].evaluate({"M": m, "N": n, "S": 1})
        assert tiny_s == pytest.approx(m * n * (n - 1) / 4, rel=0.001)
        huge_s = THEOREMS["thm5-mgs-main"].evaluate({"M": m, "N": n, "S": m * 100})
        assert huge_s == pytest.approx(m * m * n * (n - 1) / (8 * 100 * m), rel=0.02)
