"""Tests for the classical K-partition bound derivation."""

from __future__ import annotations

import math
from fractions import Fraction

import pytest

from repro.bounds import classical_bound, derive_projections, optimize_T_numeric
from repro.kernels import KERNELS
from tests.conftest import SMALL_PARAMS, derivation_for


def _classical(name, **kw):
    kern = KERNELS[name]
    ps = derive_projections(kern.program, kern.dominant, SMALL_PARAMS[name])
    v = kern.program.statement(kern.dominant).instance_count()
    return classical_bound(name, kern.program.statement(kern.dominant).dims, ps, v, **kw)


class TestClassicalBound:
    def test_mgs_matches_fig5_old_leading_term(self):
        """The disjoint-refined classical bound reproduces Figure 5's old
        MGS leading term M N (N-1) / sqrt(S) exactly."""
        b = _classical("mgs")
        env = {"M": 100, "N": 50, "S": 256}
        assert b.evaluate(env) == pytest.approx(100 * 50 * 49 / 16, rel=1e-9)

    def test_matmul_reproduces_known_tight_constant(self):
        """2 m n k / sqrt(S): the known tight matmul leading term."""
        b = _classical("matmul")
        env = {"NI": 64, "NJ": 32, "NK": 16, "S": 1024}
        assert b.evaluate(env) == pytest.approx(
            2 * 64 * 32 * 16 / 32, rel=1e-9
        )

    def test_sigma_recorded(self):
        b = _classical("mgs")
        assert b.sigma == Fraction(3, 2)

    def test_disjoint_improves_constant(self):
        plain = _classical("mgs", disjoint=False)
        refined = _classical("mgs", disjoint=True)
        env = {"M": 100, "N": 50, "S": 256}
        assert refined.evaluate(env) > plain.evaluate(env)
        # the refinement is 3**1.5 * ... here: about 5.2x
        assert refined.evaluate(env) / plain.evaluate(env) == pytest.approx(
            3.0**1.5, rel=1e-6
        )

    def test_scaling_in_s(self):
        """Classical bound scales as S^{-1/2}."""
        b = _classical("qr_a2v")
        e1 = b.evaluate({"M": 200, "N": 50, "S": 100})
        e2 = b.evaluate({"M": 200, "N": 50, "S": 400})
        assert e1 / e2 == pytest.approx(2.0, rel=1e-9)

    @pytest.mark.parametrize("name", sorted(SMALL_PARAMS))
    def test_all_kernels_derive_classical(self, name):
        b = _classical(name)
        assert b.sigma == Fraction(3, 2)

    def test_uncovering_projections_rejected(self):
        from repro.bounds.projections import Projection

        with pytest.raises(ValueError):
            classical_bound(
                "x",
                ("i", "j"),
                [Projection(frozenset("i"))],
                KERNELS["mgs"].program.statement("SU").instance_count(),
            )


class TestOptimizeT:
    def test_floor_version_close_to_continuous(self):
        """Theorem 1 with floors, optimised numerically, lands within a small
        factor of the continuous formula at moderate sizes."""
        b = _classical("mgs")
        m, n, s = 64, 32, 64
        v = KERNELS["mgs"].program.statement("SU").instance_count().eval(
            {"M": m, "N": n}
        )

        def u_of_k(k):
            return (k / 3.0) ** 1.5  # disjoint-refined U for sigma=3/2

        t, exact = optimize_T_numeric(u_of_k, float(v), s)
        cont = b.evaluate({"M": m, "N": n, "S": s})
        assert exact > 0
        assert 0.3 * cont <= exact <= 1.7 * cont

    def test_returns_best_grid_point(self):
        t, v = optimize_T_numeric(lambda k: float(k), 1000.0, 10)
        # T*floor(1000/(10+T)) maximised around larger T on the grid
        assert v >= 10 * (1000 // 20)

    def test_degenerate_u(self):
        t, v = optimize_T_numeric(lambda k: 0.0, 100.0, 4)
        assert v == 0.0


class TestBoundResult:
    def test_repr_and_evaluate(self):
        b = _classical("mgs")
        assert "classical" in repr(b)
        assert b.evaluate({"M": 10, "N": 5, "S": 4}) > 0

    def test_coeff_applied(self):
        b = _classical("mgs", disjoint=False)
        env = {"M": 16, "N": 8, "S": 16}
        raw = float(b.expr.eval(env))
        assert b.evaluate(env) == pytest.approx(b.coeff * raw)
