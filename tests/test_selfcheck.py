"""Tests for the selfcheck battery."""

from __future__ import annotations

import pytest

from repro import selfcheck
from repro.kernels import KERNELS, get_kernel
from tests.conftest import SMALL_PARAMS


class TestSelfCheck:
    @pytest.mark.parametrize("name", sorted(KERNELS))
    def test_every_kernel_passes(self, name):
        rep = selfcheck(KERNELS[name], SMALL_PARAMS[name])
        assert rep.ok(), rep.summary()

    def test_report_structure(self):
        rep = selfcheck(get_kernel("mgs"), SMALL_PARAMS["mgs"])
        names = [c.name for c in rep.checks]
        assert names == [
            "static-validation",
            "numeric",
            "spec-vs-runner",
            "cdag",
            "counts",
            "bound-soundness",
            "verify",
            "obs-registry",
            "lint-builtin-kernels",
            "cert-roundtrip",
            "schedule-legality",
        ]
        assert "ALL PASS" in rep.summary()

    def test_broken_kernel_caught(self):
        """Failure injection: perturb an access in a copy of MGS — the
        battery must fail at spec-vs-runner, without raising."""
        import dataclasses

        from repro.ir import Access, Program, Statement
        from repro.kernels.common import Kernel
        from repro.polyhedral import var

        base = get_kernel("mgs").program
        i, kv = var("i"), var("k")
        stmts = []
        for st in base.statements:
            if st.name == "Sq":
                st = dataclasses.replace(
                    st, reads=(Access.to("A", i, kv + 0), Access.to("R", kv, kv + 0))
                )
                # perturb: read R[k][k] -> R[k][k] is same; instead flip A index
                st = dataclasses.replace(
                    st, reads=(Access.to("A", kv, i), Access.to("R", kv, kv))
                )
            stmts.append(st)
        broken = Program(
            name="mgs_broken",
            params=base.params,
            arrays=base.arrays,
            statements=tuple(stmts),
            outputs=base.outputs,
            runner=base.runner,
        )
        kern = Kernel(program=broken, dominant="SU", default_params={"M": 4, "N": 3})
        rep = selfcheck(kern, {"M": 4, "N": 3})
        assert not rep.ok()
        failed = {c.name for c in rep.checks if not c.passed}
        assert "spec-vs-runner" in failed
        # the battery keeps going after the failure: every check is recorded
        assert len(rep.checks) == 11

    def test_erroring_check_reported_not_raised(self):
        """A kernel whose runner explodes must not abort the battery: the
        trace-dependent checks are FAIL with the exception class and message
        in the detail, and the independent checks still run."""
        from repro.kernels.common import Kernel

        base = get_kernel("mgs")

        def bad_runner(params, tracer=None, seed=0):
            raise RuntimeError("deliberately broken stub")

        import dataclasses

        broken_prog = dataclasses.replace(base.program, runner=bad_runner)
        kern = Kernel(
            program=broken_prog,
            dominant=base.dominant,
            default_params={"M": 4, "N": 3},
        )
        rep = selfcheck(kern, {"M": 4, "N": 3})
        assert not rep.ok()
        by_name = {c.name: c for c in rep.checks}
        # all eleven checks ran despite the broken runner
        assert len(rep.checks) == 11
        # the trace check failed and names the exception
        assert not by_name["spec-vs-runner"].passed
        assert "RuntimeError" in by_name["spec-vs-runner"].detail
        assert "deliberately broken stub" in by_name["spec-vs-runner"].detail
        # runner-independent checks still passed
        assert by_name["static-validation"].passed
        assert by_name["counts"].passed

    def test_obs_check_flags_stale_registry(self):
        """A counter leaked while instrumentation is disabled is exactly the
        cross-test contamination the eighth check exists to catch."""
        from repro import obs

        obs.enable()
        obs.add("leaked.counter", 1)
        obs.disable()  # leave the value behind, disabled
        rep = selfcheck(get_kernel("mgs"), SMALL_PARAMS["mgs"])
        by_name = {c.name: c for c in rep.checks}
        assert not by_name["obs-registry"].passed
        assert "counters" in by_name["obs-registry"].detail
        obs.reset()

    def test_obs_check_skips_under_live_profiling(self):
        """``iolb selfcheck --profile`` runs the battery with obs enabled;
        the check must not wipe the caller's live registry."""
        from repro import obs

        obs.enable()
        obs.add("caller.data", 7)
        rep = selfcheck(get_kernel("mgs"), SMALL_PARAMS["mgs"])
        by_name = {c.name: c for c in rep.checks}
        assert by_name["obs-registry"].passed
        assert "skipped" in by_name["obs-registry"].detail
        assert obs.counters().get("caller.data") == 7  # untouched

    def test_cli_selfcheck(self, capsys):
        from repro.cli import main

        assert main(["selfcheck", "mgs", "--params", "M=5,N=4"]) == 0
        assert "ALL PASS" in capsys.readouterr().out
