"""Empirical verification of the paper's core lemmas on random convex sets.

The hourglass proof rests on structural claims about *every* convex
K-bounded set; these tests sample hundreds of random convex sets from real
kernel CDAGs (random seeds -> convex closure) and check the claims directly:

* **Lemma 3(1)**: per neutral-slice, the statement instances spanning >= 3
  temporal ticks form one connected component (all consecutive-tick pairs
  connected by dependence paths);
* **Lemma 3(2)**: interior temporal slices of such components are full-width
  (their reduction-dim projection covers the whole domain slice);
* **§4.4's set-size bound**: |E_SX| <= Wmax*K^2/Wmin^2 + 2K with K the
  *measured* in-set size of the sampled convex set;
* the flatness bound of §4.3 on the F part.

These are the statements the symbolic derivation encodes; checking them
against brute-forced sets closes the gap between "the formula is
transcribed correctly" and "the mathematics holds on this CDAG".
"""

from __future__ import annotations

import random

import pytest

from repro.bounds import derive_projections, detect_hourglass
from repro.cdag import build_cdag
from repro.kernels import get_kernel

CASES = {
    "mgs": {"M": 5, "N": 4},
    "qr_a2v": {"M": 6, "N": 4},
}
SAMPLE = {"mgs": {"M": 4096, "N": 1024}, "qr_a2v": {"M": 4096, "N": 1024}}


class TestLemmaCheckAPI:
    """The public wrapper in repro.bounds.lemmas bundles the checks below."""

    @pytest.mark.parametrize("name", ["mgs", "qr_a2v", "qr_v2q", "gebd2"])
    def test_check_passes_on_paper_kernels(self, name):
        from repro.bounds import check_hourglass_lemmas
        from tests.conftest import SMALL_PARAMS, derivation_for

        pat = derivation_for(name).hourglass_pattern
        res = check_hourglass_lemmas(
            get_kernel(name).program, pat, SMALL_PARAMS[name], n_sets=40
        )
        assert res.ok(), res.violations[:3]
        assert res.sets_checked == 40
        assert "ok" in res.summary()

    def test_wrong_pattern_caught(self):
        """Swapping reduction and neutral must produce Lemma-3 violations —
        the checker is a real gate, not a rubber stamp."""
        import dataclasses

        from repro.bounds import check_hourglass_lemmas
        from tests.conftest import derivation_for

        pat = derivation_for("mgs").hourglass_pattern
        wrong = dataclasses.replace(
            pat, reduction=pat.neutral, neutral=pat.reduction
        )
        res = check_hourglass_lemmas(
            get_kernel("mgs").program, wrong, CASES["mgs"], n_sets=60
        )
        assert not res.ok()


def _setup(name):
    kern = get_kernel(name)
    params = CASES[name]
    g = build_cdag(kern.program, params)
    ps = derive_projections(kern.program, kern.dominant, params)
    pat = detect_hourglass(kern.program, kern.dominant, params, SAMPLE[name], ps)
    stmt = kern.program.statement(kern.dominant)
    dims = stmt.dims
    t_idx = [dims.index(d) for d in pat.temporal]
    n_idx = [dims.index(d) for d in pat.neutral]
    r_idx = [dims.index(d) for d in pat.reduction]
    domain_pts = set(stmt.domain().points(params))
    return kern, params, g, pat, (t_idx, n_idx, r_idx), domain_pts


def _random_convex_sets(g, rng, n_sets=60, seed_size=3):
    nodes = sorted(g.compute_nodes(), key=repr)
    for _ in range(n_sets):
        seed = rng.sample(nodes, min(seed_size, len(nodes)))
        yield g.convex_closure(set(seed))


@pytest.mark.parametrize("name", sorted(CASES))
def test_lemma3_structure(name):
    """Components spanning >= 3 ticks: connectivity + full interior width."""
    kern, params, g, pat, (t_idx, n_idx, r_idx), domain_pts = _setup(name)
    rng = random.Random(7)
    checked_components = 0
    for E_full in _random_convex_sets(g, rng):
        sx = [n[1] for n in E_full if isinstance(n, tuple) and n[0] == pat.stmt]
        # group by neutral value
        by_j: dict[tuple, list] = {}
        for p in sx:
            by_j.setdefault(tuple(p[x] for x in n_idx), []).append(p)
        for jval, pts in by_j.items():
            ticks = sorted({tuple(p[x] for x in t_idx) for p in pts})
            if len(ticks) < 3:
                continue
            checked_components += 1
            # Lemma 3(1): consecutive ticks are path-connected
            by_tick = {}
            for p in pts:
                by_tick.setdefault(tuple(p[x] for x in t_idx), []).append(p)
            for a, b in zip(ticks, ticks[1:]):
                pa = (pat.stmt, by_tick[a][0])
                pb = (pat.stmt, by_tick[b][0])
                assert g.has_path(pa, pb) or g.has_path(pb, pa), (
                    f"{name}: slices {a}->{b} of j={jval} not connected"
                )
            # Lemma 3(2): interior ticks are full width
            for t in ticks[1:-1]:
                have = {
                    tuple(p[x] for x in r_idx) for p in by_tick[t]
                }
                full = {
                    tuple(p[x] for x in r_idx)
                    for p in domain_pts
                    if tuple(p[x] for x in t_idx) == t
                    and tuple(p[x] for x in n_idx) == jval
                }
                assert have == full, (
                    f"{name}: interior tick {t} of j={jval} not full-width:"
                    f" {len(have)}/{len(full)}"
                )
    assert checked_components > 0, "sampling produced no 3-tick components"


@pytest.mark.parametrize("name", sorted(CASES))
def test_set_size_bound_of_section44(name):
    """|E_SX| <= Wmax*K^2/Wmin^2 + 2K for sampled convex sets, with K the
    measured in-set size."""
    kern, params, g, pat, idxs, _ = _setup(name)
    wmin = float(pat.width_min.eval(params))
    wmax = float(pat.width_max.eval(params))
    rng = random.Random(11)
    checked = 0
    for E_full in _random_convex_sets(g, rng, n_sets=80):
        k_meas = len(g.in_set(E_full))
        if k_meas == 0:
            continue
        e_sx = sum(
            1 for n in E_full if isinstance(n, tuple) and n[0] == pat.stmt
        )
        bound = wmax * k_meas**2 / wmin**2 + 2 * k_meas
        assert e_sx <= bound + 1e-9, (
            f"{name}: |E_SX|={e_sx} > bound {bound} at K={k_meas}"
        )
        checked += 1
    assert checked >= 40


@pytest.mark.parametrize("name", sorted(CASES))
def test_flat_components_respect_f_bound(name):
    """Sets whose every neutral slice spans <= 2 ticks satisfy |E_SX| <= 2K
    (the §4.3 F bound with e=2, R=1)."""
    kern, params, g, pat, (t_idx, n_idx, r_idx), _ = _setup(name)
    rng = random.Random(23)
    checked = 0
    for E_full in _random_convex_sets(g, rng, n_sets=80, seed_size=2):
        sx = [n[1] for n in E_full if isinstance(n, tuple) and n[0] == pat.stmt]
        if not sx:
            continue
        by_j: dict[tuple, set] = {}
        for p in sx:
            by_j.setdefault(tuple(p[x] for x in n_idx), set()).add(
                tuple(p[x] for x in t_idx)
            )
        if any(len(ticks) > 2 for ticks in by_j.values()):
            continue  # not flat: the I' bound applies instead
        k_meas = len(g.in_set(E_full))
        assert len(sx) <= 2 * k_meas + 1e-9, (
            f"{name}: flat set with |E_SX|={len(sx)} > 2K={2 * k_meas}"
        )
        checked += 1
    assert checked >= 20
