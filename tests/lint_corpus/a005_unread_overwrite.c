// A005: S2 overwrites the value S1 just stored before anything reads it —
// S1 is a dead store (or, under reordering, a write-race hazard).
// expect: A005 warning @6:7
for (k = 0; k < N; k += 1) {
  S1: s = 1.0;
  S2: s = 2.0;
  S3: out[k] = s;
}
