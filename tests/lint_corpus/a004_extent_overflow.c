// A004 (declared-extent side): the inclusive loop runs i = 0..N while both
// arrays are declared with extent N, so the last iteration reads and
// writes one past the end.
// shape: A=N; B=N
// expect: A004 error @8:7
// expect: A004 error @8:14
for (i = 0; i <= N; i += 1)
  Sx: B[i] = A[i];
