// A009: reversing the accumulation loop of SR runs each partial sum
// before the value it depends on — the legality pass names the concrete
// violated dependence instance pair.
// schedule: SR=(i,1,-j,0)
// expect: A009 error @10:15
// expect: A009 error @8:7
for (i = 0; i < N; i += 1) {
  Sz: acc = 0.0;
  for (j = 0; j < M; j += 1)
    SR: acc = acc + A[i][j];
  Sw: out[i] = acc;
}
