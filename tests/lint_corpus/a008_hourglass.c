// A008: a textbook hourglass — reduction over i into nrm, broadcast of nrm
// back over i, iterated by the outer temporal loop t (the normalize kernel
// from examples/custom_kernel.py in source form).  The analyzer explains
// that the tightened bound applies and on which statement.
// expect: A008 info @12:7
for (t = 0; t < T; t += 1) {
  for (j = 0; j < N; j += 1) {
    Sz: nrm = 0.0;
    for (i = 0; i < M; i += 1)
      SR: nrm += A[i][j] * A[i][j];
    for (i = 0; i < M; i += 1)
      SU: A[i][j] = A[i][j] * W[i][t] / (1.0 + nrm);
  }
}
