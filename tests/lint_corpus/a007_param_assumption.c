// A007: projecting the loop domain onto the parameters leaves N - 1 >= 0 —
// the program implicitly assumes N >= 1, which the analyzer surfaces as an
// explicit (info-level) parameter-domain assumption.
// expect: A007 info @6:3
for (i = 0; i < N; i += 1)
  Sx: out[i] = A[i];
