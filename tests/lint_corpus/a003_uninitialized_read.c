// A003: the accumulator s is a local scalar (it is written, so it cannot
// be a parameter) but its very first access is the compound-assignment
// read — the reduction starts from an uninitialized value.
// expect: A003 error @6:7
for (i = 0; i < N; i += 1)
  Ss: s += A[i];
So: out[0] = s;
