// A011: the dependence summary counts the flow/anti/output polyhedra and
// names the loops that carry a self-dependence (here the prefix-sum i).
// expect: A011 info @5:3
for (i = 0; i < N; i += 1)
  Si: A[i] = 1.0;
for (i = 1; i < N; i += 1)
  S: A[i] = A[i] + A[i - 1];
