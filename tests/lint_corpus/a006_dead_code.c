// A006: the scalar s is written once and never read again, and as a local
// workspace scalar it is not live-out — S1 is dead code.
// expect: A006 warning @4:1
S1: s = A[0][0];
S2: out[0] = A[1][1];
