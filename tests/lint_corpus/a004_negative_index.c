// A004: at i = 0 the write touches B[-1]; the violation polyhedron
// (domain ∧ i - 1 <= -1) is non-empty and the analyzer reports the
// concrete witness instance.
// expect: A004 error @6:7
for (i = 0; i < N; i += 1)
  Sx: B[i - 1] = A[i];
