// A010: swapping the two loops looks illegal to rational reasoning — the
// flow dependence asks for 2*i == 2*j + 1, which is rationally feasible —
// but it holds no integer point, and the witness search at the probe
// parameters finds none either: an honest "undecided" warning, not an
// error.
// schedule: Sa=(1,i,0); Sb=(0,i,0)
// expect: A010 warning @11:16
for (i = 0; i < N; i += 1)
  Sa: A[2*i] = 1.0;
for (i = 0; i < N; i += 1)
  Sb: out[i] = A[2*i + 1];
