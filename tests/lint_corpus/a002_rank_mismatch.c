// A002: malformed program — B is used both as a vector and as a matrix;
// the array-rank classification is inconsistent.
// expect: A002 error @5:5
Sa: B[0] = 1.0;
Sb: B[0][1] = 2.0;
