// A001: non-affine construct — the quadratic subscript B[i * i] cannot be
// expressed as an affine map, so the polyhedral machinery rejects it.
// expect: A001 error @5:9
for (i = 0; i < N; i += 1)
  Sx: B[i * i] = A[i];
