// A008: without a dominant-statement directive the hourglass search tries
// only the six largest reading statements; a seventh exists, so the
// "no pattern" explanation must say the search was truncated and how to
// widen it.
// expect: A008 info @7:3
for (i = 0; i < N; i += 1) {
  S1: b1[i] = a1[i];
  S2: b2[i] = a2[i];
  S3: b3[i] = a3[i];
  S4: b4[i] = a4[i];
  S5: b5[i] = a5[i];
  S6: b6[i] = a6[i];
  S7: b7[i] = a7[i];
}
