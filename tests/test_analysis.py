"""Tests for repro.analysis: the polyhedral static analyzer (iolb lint).

Four layers of coverage:

* **corpus** — every file under ``tests/lint_corpus/`` is a minimal bad (or
  deliberately interesting) program carrying ``// expect: CODE SEVERITY
  @line:col`` directives; the runner asserts each expectation matches an
  emitted diagnostic and that the corpus as a whole exercises the complete
  A001–A008 catalogue.
* **clean pins** — the eight hand-built kernel programs, the five figure
  sources and the example program literal must lint with no errors or
  warnings: the analyzer's false-positive guard.
* **golden JSON** — ``iolb lint <kernel> --json`` for the five hourglass
  kernels, byte-pinned under tests/golden/ (regenerate with
  ``IOLB_UPDATE_GOLDEN=1``) and schema-checked.
* **unit/CLI** — diagnostic validation, exit codes, rendering, schema
  tampering, strict compilation.
"""

from __future__ import annotations

import json
import os
import pathlib

import pytest

from repro.analysis import (
    CODES,
    AnalysisError,
    check_lint_schema,
    check_program,
    check_source,
    parse_directives,
)
from repro.analysis.diagnostics import AnalysisReport, Diagnostic
from repro.cli import main
from repro.frontend import compile_source
from repro.frontend.sources import FIGURE_SHAPE_EXPRS, FIGURE_SOURCES
from repro.ir.span import Span
from repro.kernels import KERNELS, PAPER_KERNELS

CORPUS = pathlib.Path(__file__).parent / "lint_corpus"
GOLDEN = pathlib.Path(__file__).parent / "golden"

def _corpus_files():
    files = sorted(CORPUS.glob("*.c"))
    assert files, f"empty lint corpus at {CORPUS}"
    return files


class TestLintCorpus:
    """One bad program per diagnostic code, expectations pinned in-file."""

    @pytest.mark.parametrize(
        "path", _corpus_files(), ids=lambda p: p.stem
    )
    def test_expectations(self, path):
        src = path.read_text()
        dirs = parse_directives(src)
        assert dirs.expects, f"{path.name} has no // expect: directives"
        report, _ = check_source(
            src, name=path.stem, shapes=dirs.shapes, dominant=dirs.dominant,
            schedule=dirs.schedule,
        )
        got = {
            (d.code, d.severity, d.span.line if d.span else 0,
             d.span.col if d.span else 0)
            for d in report.diagnostics
        }
        for want in dirs.expects:
            assert want in got, (
                f"{path.name}: expected {want[1]}[{want[0]}] at"
                f" {want[2]}:{want[3]}; analyzer emitted:\n  "
                + "\n  ".join(repr(d) for d in report.diagnostics)
            )

    def test_corpus_covers_full_catalogue(self):
        triggered = set()
        for path in _corpus_files():
            dirs = parse_directives(path.read_text())
            triggered.update(code for code, *_ in dirs.expects)
        # A012 is the differential self-check: it fires only when the
        # symbolic and enumerative decision procedures disagree, i.e. on
        # an analyzer bug — no well-formed corpus program can trigger it
        # (test_analysis_deps.py forces it through a broken polyhedron)
        assert triggered == set(CODES) - {"A012"}, (
            f"corpus misses codes"
            f" {sorted(set(CODES) - {'A012'} - triggered)}"
        )

    def test_error_corpus_exits_2(self, capsys):
        rc = main(["lint", str(CORPUS / "a004_negative_index.c")])
        capsys.readouterr()
        assert rc == 2

    def test_cli_honors_shape_directive(self, capsys):
        # the declared-extent A004s only exist if the CLI parses the
        # in-source // shape: directive
        rc = main(["lint", str(CORPUS / "a004_extent_overflow.c")])
        out = capsys.readouterr().out
        assert rc == 2
        assert "error[A004]" in out and "exceeds the declared extent" in out

    def test_warning_corpus_exits_1(self, capsys):
        rc = main(["lint", str(CORPUS / "a006_dead_code.c")])
        capsys.readouterr()
        assert rc == 1

    def test_info_corpus_exits_0(self, capsys):
        rc = main(["lint", str(CORPUS / "a007_param_assumption.c")])
        capsys.readouterr()
        assert rc == 0


class TestCleanPins:
    """The analyzer must not cry wolf on the library's own programs."""

    @pytest.mark.parametrize("name", sorted(KERNELS))
    def test_builtin_kernel_programs_clean(self, name):
        k = KERNELS[name]
        report = check_program(
            k.program, dict(k.default_params), dominant=k.dominant
        )
        assert report.clean(), (
            f"{name}: " + "; ".join(repr(d) for d in report.diagnostics)
        )

    @pytest.mark.parametrize("name", PAPER_KERNELS)
    def test_figure_sources_clean(self, name):
        k = KERNELS[name]
        report, prog = check_source(
            FIGURE_SOURCES[name],
            name=name,
            params=dict(k.default_params),
            shapes=FIGURE_SHAPE_EXPRS.get(name),
            dominant=k.dominant,
        )
        assert prog is not None
        assert report.clean(), (
            f"{name}: " + "; ".join(repr(d) for d in report.diagnostics)
        )

    def test_example_program_literal_clean(self):
        import importlib.util

        path = (
            pathlib.Path(__file__).parent.parent
            / "examples"
            / "custom_kernel.py"
        )
        spec = importlib.util.spec_from_file_location("custom_kernel", path)
        mod = importlib.util.module_from_spec(spec)
        spec.loader.exec_module(mod)
        prog = mod.build_program()
        report = check_program(prog, {"T": 3, "M": 5, "N": 4})
        assert report.clean(), "; ".join(
            repr(d) for d in report.diagnostics
        )
        # and the hourglass pass recognizes the pattern it was built to show
        assert any(
            d.code == "A008" and "hourglass pattern" in d.message
            for d in report.diagnostics
        )


class TestGoldenLintJSON:
    """``iolb lint <kernel> --json``, byte-pinned for the paper's kernels.

    Regenerate intentionally with::

        IOLB_UPDATE_GOLDEN=1 python -m pytest tests/test_analysis.py
    """

    @pytest.mark.parametrize("name", PAPER_KERNELS)
    def test_json_frozen(self, name, tmp_path, capsys):
        out = tmp_path / f"{name}.json"
        assert main(["lint", name, "--json", str(out)]) == 0
        capsys.readouterr()
        got = out.read_text()
        check_lint_schema(json.loads(got))
        golden = GOLDEN / f"lint_{name}.json"
        if os.environ.get("IOLB_UPDATE_GOLDEN"):
            golden.write_text(got)
        want = golden.read_text()
        assert got == want, (
            f"iolb lint {name} --json drifted from {golden.name};"
            " if intended, rerun with IOLB_UPDATE_GOLDEN=1"
        )


class TestCLI:
    def test_lint_all_clean(self, capsys, tmp_path):
        out = tmp_path / "all.json"
        assert main(["lint", "all", "--json", str(out)]) == 0
        text = capsys.readouterr().out
        for name in PAPER_KERNELS:
            assert f"{name}:" in text
        doc = json.loads(out.read_text())
        check_lint_schema(doc)
        assert set(doc["reports"]) == set(PAPER_KERNELS)

    def test_json_dash_moves_human_output_to_stderr(self, capsys):
        assert main(["lint", "mgs", "--json", "-"]) == 0
        cap = capsys.readouterr()
        doc = json.loads(cap.out)
        check_lint_schema(doc)
        assert "=>" in cap.err  # the human tally line

    def test_unknown_target_is_an_error(self):
        with pytest.raises(SystemExit, match="no builtin kernel or file"):
            main(["lint", "no_such_kernel_or_file"])

    def test_color_always_emits_ansi(self, capsys):
        main(["lint", str(CORPUS / "a006_dead_code.c"), "--color", "always"])
        assert "\x1b[" in capsys.readouterr().out


class TestDirectives:
    def test_parse_all_kinds(self):
        dirs = parse_directives(
            "// shape: A=N; B=M,N\n// dominant: SU\n"
            "// expect: A004 error @6:7\nfor ...\n"
        )
        assert dirs.shapes == {"A": ("N",), "B": ("M", "N")}
        assert dirs.dominant == "SU"
        assert dirs.expects == (("A004", "error", 6, 7),)

    def test_absent_directives(self):
        dirs = parse_directives("S1: out[0] = A[0];\n")
        assert dirs.shapes is None
        assert dirs.dominant is None
        assert dirs.expects == ()

    def test_malformed_shape_rejected(self):
        with pytest.raises(ValueError, match="malformed"):
            parse_directives("// shape: A=\n")


class TestDiagnosticUnits:
    def test_unknown_code_rejected(self):
        with pytest.raises(ValueError, match="unknown diagnostic code"):
            Diagnostic("A999", "error", "nope")

    def test_unknown_severity_rejected(self):
        with pytest.raises(ValueError, match="unknown severity"):
            Diagnostic("A001", "fatal", "nope")

    def test_exit_codes(self):
        rep = AnalysisReport(program="p")
        assert rep.exit_code() == 0 and rep.clean()
        rep.diagnostics.append(Diagnostic("A007", "info", "fyi"))
        assert rep.exit_code() == 0 and rep.clean()
        rep.diagnostics.append(Diagnostic("A006", "warning", "hm"))
        assert rep.exit_code() == 1 and rep.ok() and not rep.clean()
        rep.diagnostics.append(Diagnostic("A003", "error", "bad"))
        assert rep.exit_code() == 2 and not rep.ok()

    def test_render_caret_block(self):
        src = "S1: out[0] = A[0];\n"
        rep = AnalysisReport(program="p")
        rep.diagnostics.append(
            Diagnostic(
                "A006",
                "warning",
                "dead",
                stmt="S1",
                span=Span(1, 1, 1, 3),
                hint="delete it",
            )
        )
        text = rep.render(source=src)
        assert "p:1:1: warning[A006]: dead [S1]" in text
        assert "    1 | S1: out[0] = A[0];" in text
        assert "^~" in text
        assert "hint: delete it" in text
        assert "1 warning" in text

    def test_schema_rejects_tampering(self):
        report, _ = check_source(
            (CORPUS / "a006_dead_code.c").read_text(), name="x"
        )
        doc = report.to_dict()
        check_lint_schema(doc)  # the honest document passes
        bad = json.loads(json.dumps(doc))
        bad["summary"]["warning"] += 1
        with pytest.raises(ValueError, match="does not match"):
            check_lint_schema(bad)
        bad = json.loads(json.dumps(doc))
        bad["diagnostics"][0]["code"] = "Z001"
        with pytest.raises(ValueError, match="unknown code"):
            check_lint_schema(bad)
        with pytest.raises(ValueError, match="not an iolb-lint/1"):
            check_lint_schema({"schema": "iolb-lint/2"})

    def test_wrapper_schema(self):
        report, _ = check_source(
            (CORPUS / "a007_param_assumption.c").read_text(), name="x"
        )
        check_lint_schema(
            {"schema": "iolb-lint/1", "reports": {"x": report.to_dict()}}
        )
        with pytest.raises(ValueError, match="non-empty mapping"):
            check_lint_schema({"schema": "iolb-lint/1", "reports": {}})


class TestStrictCompile:
    def test_strict_raises_on_bad_source(self):
        src = (CORPUS / "a003_uninitialized_read.c").read_text()
        with pytest.raises(AnalysisError) as exc_info:
            compile_source(src, strict=True)
        assert any(
            d.code == "A003" for d in exc_info.value.report.diagnostics
        )

    def test_strict_passes_on_good_source(self):
        prog, _ast = compile_source(
            FIGURE_SOURCES["mgs"],
            strict=True,
            check_params={"M": 6, "N": 4, "S": 8},
        )
        assert prog.statements
