"""Soundness: every derived lower bound must not exceed the measured I/O of
any valid execution — the red-white pebble game on real schedules, under both
eviction policies, naive and tiled orders, across cache sizes.

This is the reproduction's strongest end-to-end correctness gate: a single
violation would falsify the derivation chain (projections, BL exponents,
hourglass decomposition, Theorem 1 application).
"""

from __future__ import annotations

import pytest

from repro.cache import simulate
from repro.kernels import KERNELS, TILED_A2V, TILED_MGS
from repro.pebble import play_schedule
from tests.conftest import SMALL_PARAMS, cdag_for, derivation_for, trace_for

#: slightly larger instances to give the bounds room to bind
SOUND_PARAMS = {
    "mgs": {"M": 8, "N": 6},
    "qr_a2v": {"M": 9, "N": 5},
    "qr_v2q": {"M": 9, "N": 5},
    "gebd2": {"M": 9, "N": 6},
    "gehd2": {"N": 9},
    "matmul": {"NI": 6, "NJ": 6, "NK": 6},
}

CACHES = (4, 8, 16, 32, 64)


def _best_lower(name, params, s):
    rep = derivation_for(name)
    env = dict(params)
    env["S"] = s
    _, val = rep.best(env)
    return val


class TestSoundnessAgainstPebbleGame:
    @pytest.mark.parametrize("name", sorted(SOUND_PARAMS))
    @pytest.mark.parametrize("s", CACHES)
    def test_lower_bound_below_belady_loads(self, name, s):
        params = SOUND_PARAMS[name]
        g = cdag_for(name, params)
        t = trace_for(name, params)
        measured = play_schedule(g, t.schedule, s, "belady").loads
        lb = _best_lower(name, params, s)
        assert lb <= measured + 1e-9, (
            f"{name} S={s}: bound {lb} > measured {measured}"
        )

    @pytest.mark.parametrize("name", ["mgs", "qr_a2v"])
    @pytest.mark.parametrize("s", (16, 32, 64))
    def test_lower_bound_below_tiled_schedule(self, name, s):
        """Tiled orderings are also valid schedules; bounds must hold."""
        params = SOUND_PARAMS[name]
        alg = TILED_MGS if name == "mgs" else TILED_A2V
        g = cdag_for(name, params)
        for b in (1, 2, 3):
            tr = alg.run_traced({**params, "B": b})
            measured = play_schedule(g, tr.schedule, s, "belady").loads
            lb = _best_lower(name, params, s)
            assert lb <= measured + 1e-9, (
                f"{name} S={s} B={b}: bound {lb} > measured {measured}"
            )


class TestSoundnessAgainstCacheSim:
    """The element-granularity memory simulator is the program-level model;
    derived bounds must also sit below its load counts (reads of versioned
    values can only be >= the CDAG game's loads for the same order)."""

    @pytest.mark.parametrize("name", sorted(SOUND_PARAMS))
    def test_lower_bound_below_simulated_loads(self, name):
        params = SOUND_PARAMS[name]
        events = list(trace_for(name, params).events)
        for s in (8, 32):
            measured = simulate(events, s, "belady").loads
            lb = _best_lower(name, params, s)
            assert lb <= measured + 1e-9


class TestBoundHierarchy:
    @pytest.mark.parametrize("name", ["mgs", "qr_a2v", "qr_v2q", "gebd2"])
    def test_hourglass_beats_classical_at_scale(self, name):
        """Figure 4's claim: the new bound dominates at realistic sizes with
        a small cache."""
        rep = derivation_for(name)
        env = {"M": 4000, "N": 1000, "S": 256}
        assert rep.hourglass is not None
        assert rep.hourglass.evaluate(env) > rep.classical.evaluate(env)

    def test_gehd2_split_beats_classical_at_scale(self):
        rep = derivation_for("gehd2")
        env = {"N": 4000, "S": 256}
        best_split = max(b.evaluate(env) for b in rep.hourglass_split)
        assert best_split > rep.classical.evaluate(env)

    def test_crossover_exists_for_mgs(self):
        """With a huge cache relative to M, the classical bound can win —
        the engine's best() must pick whichever is larger."""
        rep = derivation_for("mgs")
        small_cache = {"M": 4000, "N": 1000, "S": 64}
        big_cache = {"M": 100, "N": 50, "S": 2500}
        b1, _ = rep.best(small_cache)
        assert b1.method.startswith("hourglass")
        # at big cache the methods compete; best() must return the max
        vals = [b.evaluate(big_cache) for b in rep.all_bounds()]
        _, best_val = rep.best(big_cache)
        assert best_val == pytest.approx(max(max(vals), 0.0))

    def test_matmul_report_has_no_hourglass(self):
        rep = derivation_for("matmul")
        assert rep.hourglass_pattern is None
        assert rep.hourglass is None
        assert rep.all_bounds() == [rep.classical]
