"""Concurrency + durability tests for the on-disk stores behind the service.

Two stores get hammered from multiple OS processes — the memo cache
(atomic ``put``, corrupt-entry quarantine, TTL + size eviction, warm-start
preload) and the bench-history directory (atomic append, skip-and-warn
loading).  The invariants: readers never observe a torn entry, corrupt
entries never re-fail, and history appends never clobber each other.
"""

from __future__ import annotations

import json
import multiprocessing
import os
import time
import warnings

import pytest

from repro import obs
from repro.cache import JsonCache, MemoCache, memo_key
from repro.cache.memo import _EVICT_EVERY
from repro.cache.sim import CacheStats
from repro.obs.core import Registry
from repro.obs.history import BENCH_SCHEMA, append_entry, load_history

# ---------------------------------------------------------------------------
# multiprocessing workers (top-level so fork/spawn can both pickle them)
# ---------------------------------------------------------------------------

_STATS = dict(
    loads=7, read_hits=3, accesses=11, capacity=16, policy="belady"
)


def _hammer_memo(cache_dir, key, iters, out_q):
    cache = MemoCache(cache_dir)
    seen = []
    for _ in range(iters):
        st = cache.get_or_compute(key, lambda: CacheStats(**_STATS))
        seen.append((st.loads, st.read_hits, st.accesses, st.capacity, st.policy))
    out_q.put(seen)


def _hammer_history(history_dir, appends, out_q):
    # every writer uses the same `created` stamp, so every append races the
    # others on the same canonical filename — the collision-suffix path
    record = {
        "schema": BENCH_SCHEMA,
        "created": "2026-01-01T00:00:00Z",
        "suite": "stress",
        "results": {"w": {"wall_s": {"median": 0.1}}},
    }
    paths = []
    for _ in range(appends):
        paths.append(str(append_entry(record, history_dir)))
    out_q.put(paths)


def _fork_ctx():
    methods = multiprocessing.get_all_start_methods()
    return multiprocessing.get_context("fork" if "fork" in methods else None)


class TestMemoCacheConcurrency:
    def test_many_processes_one_dir(self, tmp_path):
        ctx = _fork_ctx()
        key = memo_key("mgs", {"M": 5, "N": 4}, 16, "belady")
        out_q = ctx.Queue()
        procs = [
            ctx.Process(target=_hammer_memo, args=(str(tmp_path), key, 25, out_q))
            for _ in range(4)
        ]
        for p in procs:
            p.start()
        results = [out_q.get(timeout=60) for _ in procs]
        for p in procs:
            p.join(timeout=30)
            assert p.exitcode == 0

        # every read in every process saw the one true value
        expected = (7, 3, 11, 16, "belady")
        for seen in results:
            assert len(seen) == 25
            assert all(s == expected for s in seen)

        # and the store holds exactly one clean entry — nothing torn,
        # nothing quarantined, no stray tmp files
        assert [p.name for p in tmp_path.glob("*.json")] == [f"{key}.json"]
        assert not list(tmp_path.glob("*.corrupt"))
        assert not list(tmp_path.glob("*.tmp*"))
        cache = MemoCache(tmp_path)
        assert cache.get(key) == CacheStats(**_STATS)


class TestHistoryConcurrency:
    def test_concurrent_appenders_never_clobber(self, tmp_path):
        ctx = _fork_ctx()
        out_q = ctx.Queue()
        procs = [
            ctx.Process(target=_hammer_history, args=(str(tmp_path), 5, out_q))
            for _ in range(4)
        ]
        for p in procs:
            p.start()
        all_paths = [path for _ in procs for path in out_q.get(timeout=60)]
        for p in procs:
            p.join(timeout=30)
            assert p.exitcode == 0

        # 20 appends -> 20 distinct files, none overwritten, none partial
        assert len(set(all_paths)) == 20
        with warnings.catch_warnings():
            warnings.simplefilter("error")  # any skip-warning is a failure here
            records = load_history(tmp_path, suite="stress")
        assert len(records) == 20
        assert not list(tmp_path.glob(".*.tmp*"))

    def test_same_record_twice_gets_suffixed(self, tmp_path):
        record = {
            "schema": BENCH_SCHEMA,
            "created": "2026-02-02T00:00:00Z",
            "suite": "stress",
            "results": {"w": {"wall_s": {"median": 0.1}}},
        }
        p1 = append_entry(record, tmp_path)
        p2 = append_entry(record, tmp_path)
        assert p1 != p2 and p1.exists() and p2.exists()
        assert p2.name.endswith("-2.json")

    def test_load_history_skips_and_warns_on_junk(self, tmp_path):
        append_entry(
            {
                "schema": BENCH_SCHEMA,
                "created": "2026-03-03T00:00:00Z",
                "results": {"w": {"wall_s": {"median": 0.2}}},
            },
            tmp_path,
        )
        (tmp_path / "notes.json").write_text("{half a record")
        with pytest.warns(UserWarning, match="skipping unparseable.*notes.json"):
            records = load_history(tmp_path)
        assert len(records) == 1


class TestCorruptQuarantine:
    def test_garbage_is_quarantined_once(self, tmp_path):
        cache = MemoCache(tmp_path)
        key = memo_key("mgs", {"M": 5, "N": 4}, 16, "belady")
        path = tmp_path / f"{key}.json"
        path.write_text("{definitely not json")

        obs.enable()
        obs.reset()
        assert cache.get(key) is None
        assert obs.counters()["cache.memo_corrupt"] == 1
        assert not path.exists()
        assert path.with_suffix(".corrupt").exists()  # kept for post-mortems

        # the second read is a plain miss — the entry never re-fails
        assert cache.get(key) is None
        assert obs.counters()["cache.memo_corrupt"] == 1
        assert obs.counters()["cache.memo_misses"] == 2

    def test_decode_failure_is_corruption_too(self, tmp_path):
        cache = MemoCache(tmp_path)
        key = memo_key("mgs", {"M": 5, "N": 4}, 16, "belady")
        # valid JSON, wrong shape for CacheStats
        (tmp_path / f"{key}.json").write_text(json.dumps({"loads": 1}))
        obs.enable()
        obs.reset()
        assert cache.get(key) is None
        assert obs.counters()["cache.memo_corrupt"] == 1
        assert (tmp_path / f"{key}.corrupt").exists()

    def test_non_object_payload_is_corruption(self, tmp_path):
        cache = JsonCache(tmp_path, reg=Registry())
        (tmp_path / "k.json").write_text("[1, 2, 3]")
        assert cache.get_raw("k") is None
        assert (tmp_path / "k.corrupt").exists()


class TestTtlAndEviction:
    def test_ttl_expiry_unlinks_on_read(self, tmp_path):
        reg = Registry()
        cache = JsonCache(tmp_path, ttl_s=60, reg=reg)
        cache.put_raw("stale", {"v": 1})
        old = time.time() - 3600
        os.utime(tmp_path / "stale.json", (old, old))
        assert cache.get_raw("stale") is None
        assert not (tmp_path / "stale.json").exists()
        assert reg.counters()["cache.memo_expired"] == 1
        # fresh entries are unaffected
        cache.put_raw("fresh", {"v": 2})
        assert cache.get_raw("fresh") == {"v": 2}

    def test_evict_drops_expired_then_oldest(self, tmp_path):
        reg = Registry()
        cache = JsonCache(tmp_path, ttl_s=100, max_entries=2, reg=reg)
        now = time.time()
        for i in range(5):
            cache.put_raw(f"k{i}", {"i": i})
            # k0 is expired; k1..k4 age oldest-first
            age = 500 if i == 0 else 50 - 10 * i
            os.utime(tmp_path / f"k{i}.json", (now - age, now - age))
        dropped = cache.evict(now=now)
        assert dropped == {"ttl": 1, "size": 2}
        assert sorted(p.stem for p in tmp_path.glob("*.json")) == ["k3", "k4"]
        assert reg.counters()["cache.memo_evict_ttl"] == 1
        assert reg.counters()["cache.memo_evict_size"] == 2

    def test_max_bytes_cap(self, tmp_path):
        cache = JsonCache(tmp_path, max_bytes=1, reg=Registry())
        now = time.time()
        for i in range(3):
            cache.put_raw(f"k{i}", {"i": i})
            os.utime(tmp_path / f"k{i}.json", (now - 100 + i, now - 100 + i))
        cache.evict(now=now)
        # a 1-byte cap can keep nothing
        assert cache.entry_count() == 0

    def test_writers_trigger_eviction_automatically(self, tmp_path):
        cache = JsonCache(tmp_path, max_entries=4, reg=Registry())
        for i in range(_EVICT_EVERY + 1):
            cache.put_raw(f"k{i:03d}", {"i": i})
        # the background trim ran at put #32: 4 survivors + the put after it
        assert cache.entry_count() == 5


class TestPreload:
    def test_preload_serves_from_memory(self, tmp_path):
        JsonCache(tmp_path).put_raw("hot", {"v": 42})
        reg = Registry()
        cache = JsonCache(tmp_path, reg=reg)
        assert cache.preload() == 1
        assert reg.counters()["cache.memo_preloaded"] == 1

        # remove the file behind it: still served, from the memory layer
        (tmp_path / "hot.json").unlink()
        assert cache.get_raw("hot") == {"v": 42}

        # later puts write through to the memory layer too
        cache.put_raw("new", {"v": 1})
        (tmp_path / "new.json").unlink()
        assert cache.get_raw("new") == {"v": 1}

    def test_preload_skips_expired_and_quarantines_corrupt(self, tmp_path):
        plain = JsonCache(tmp_path)
        plain.put_raw("good", {"v": 1})
        plain.put_raw("stale", {"v": 2})
        old = time.time() - 3600
        os.utime(tmp_path / "stale.json", (old, old))
        (tmp_path / "bad.json").write_text("nope")

        reg = Registry()
        cache = JsonCache(tmp_path, ttl_s=60, reg=reg)
        assert cache.preload() == 1
        assert reg.counters()["cache.memo_corrupt"] == 1
        assert (tmp_path / "bad.corrupt").exists()
        assert cache.get_raw("good") == {"v": 1}

    def test_eviction_reaches_into_memory_layer(self, tmp_path):
        cache = JsonCache(tmp_path, max_entries=1)
        cache.preload()  # empty store: arms the write-through layer
        now = time.time()
        cache.put_raw("a", {"v": 1})
        os.utime(tmp_path / "a.json", (now - 100, now - 100))
        cache.put_raw("b", {"v": 2})
        cache.evict(now=now)
        assert cache.get_raw("a") is None  # gone from disk *and* memory
        assert cache.get_raw("b") == {"v": 2}
