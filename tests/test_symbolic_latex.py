"""Tests for LaTeX rendering of bound expressions."""

from __future__ import annotations

from fractions import Fraction

import pytest

from repro.symbolic import Const, Poly, Rational, Sym, to_latex

M, N, S = Sym("M"), Sym("N"), Sym("S")


class TestPolyLatex:
    def test_zero(self):
        assert to_latex(Poly()) == "0"

    def test_constant(self):
        assert to_latex(Const(5)) == "5"
        assert to_latex(Const(Fraction(1, 2))) == "\\frac{1}{2}"

    def test_symbol(self):
        assert to_latex(M) == "M"

    def test_power(self):
        assert to_latex(M**3) == "M^{3}"

    def test_fractional_power(self):
        assert to_latex(S ** Fraction(1, 2)) == "S^{1/2}"

    def test_product(self):
        assert to_latex(M * N**2) == "M N^{2}"

    def test_unit_coefficients_hidden(self):
        s = to_latex(M + N)
        assert "1 M" not in s and "M" in s and "N" in s

    def test_negative_coefficient(self):
        assert "-" in to_latex(M - N)

    def test_coefficient_rendered(self):
        assert to_latex(3 * M) == "3 M"


class TestRationalLatex:
    def test_poly_rational(self):
        r = Rational(M * 2)
        assert to_latex(r) == "2 M"

    def test_plain_fraction(self):
        s = to_latex((M * N) / (S + 1))
        assert s.startswith("\\frac{")
        assert "M N" in s

    def test_theorem5_shape(self):
        """Theorem 5 renders with the 8 cleared into the denominator."""
        b = M**2 * N * (N - 1) / (8 * (S + M))
        s = to_latex(b)
        assert s == "\\frac{M^{2} N^{2} - M^{2} N}{8 \\left(M + S\\right)}"

    def test_sqrt_s_denominator(self):
        s = to_latex(M * N**2 / (S ** Fraction(1, 2)))
        assert "S^{1/2}" in s

    def test_type_error(self):
        with pytest.raises(TypeError):
            to_latex("nope")

    def test_catalog_formulas_render(self):
        """Every published formula renders without error."""
        from repro.bounds import FIG4, FIG5_NEW, FIG5_OLD, THEOREMS

        exprs = (
            [b.expr for kb in FIG4.values() for b in kb.values()]
            + [b.expr for b in FIG5_OLD.values()]
            + [b.expr for b in FIG5_NEW.values()]
            + [b.expr for b in THEOREMS.values()]
        )
        for e in exprs:
            out = to_latex(e)
            assert out and "\\frac" in out or out
