"""Tests for the asymptotic regime comparison (repro.symbolic.asymptotic)."""

from __future__ import annotations

import math
from fractions import Fraction

import pytest

from repro.symbolic import (
    Regime,
    Sym,
    classify,
    growth_exponent,
    improvement_factor,
    limit_ratio,
)

M, N, S = Sym("M"), Sym("N"), Sym("S")

SQUARE = Regime({"M": lambda t: t, "N": lambda t: t, "S": lambda t: math.sqrt(t)})
FIXED_S = Regime({"M": lambda t: t, "N": lambda t: t, "S": lambda t: 64.0})


class TestGrowthExponent:
    def test_polynomial_exponent(self):
        assert growth_exponent(M**2, M, Regime({"M": lambda t: t})) == pytest.approx(
            1.0, abs=0.01
        )

    def test_equal_orders(self):
        assert growth_exponent(3 * M * N, M * N, SQUARE) == pytest.approx(0.0, abs=0.01)

    def test_slow_quarter_power(self):
        # the MGS improvement factor sqrt(S) = t**(1/4) in the SQUARE regime
        new = M**2 * N * (N - 1) / (8 * (S + M))
        old = M * N**2 / (S ** Fraction(1, 2))
        assert growth_exponent(new, old, SQUARE) == pytest.approx(0.25, abs=0.02)

    def test_negative_ratio_rejected(self):
        with pytest.raises(ValueError):
            growth_exponent(-M, M, Regime({"M": lambda t: t}))


class TestClassify:
    def test_dominates(self):
        assert classify(M**2, M, Regime({"M": lambda t: t})) == "dominates"

    def test_dominated(self):
        assert classify(M, M**2, Regime({"M": lambda t: t})) == "dominated"

    def test_same_order(self):
        assert classify(5 * M + 3, M, Regime({"M": lambda t: t})) == "same-order"

    def test_mgs_hourglass_vs_classical(self):
        """§5.1: the new bound dominates the old one whenever S = o(M^2)."""
        new = M**2 * N * (N - 1) / (8 * (S + M))
        old = M * N**2 / (S ** Fraction(1, 2))
        assert classify(new, old, SQUARE) == "dominates"
        # with S fixed the Theta(sqrt(S)) improvement is a constant factor
        assert classify(new, old, FIXED_S) == "same-order"

    def test_same_order_when_s_is_m_squared(self):
        """At S ~ M^2 the whole matrix fits in cache: no improvement left."""
        reg = Regime({"M": lambda t: t, "N": lambda t: t, "S": lambda t: t * t})
        new = M**2 * N * N / (8 * (S + M))
        old = M * N**2 / (S ** Fraction(1, 2))
        assert classify(new, old, reg) == "same-order"


class TestLimitRatio:
    def test_finite_limit(self):
        lim = limit_ratio(2 * M + 7, M, Regime({"M": lambda t: t}))
        assert lim == pytest.approx(2.0, rel=0.01)

    def test_infinite(self):
        assert math.isinf(limit_ratio(M**2, M, Regime({"M": lambda t: t})))

    def test_zero(self):
        assert limit_ratio(M, M**2, Regime({"M": lambda t: t})) == 0.0

    def test_vanishing_denominator_raises(self):
        with pytest.raises(ZeroDivisionError):
            limit_ratio(M, M - M, Regime({"M": lambda t: t}))


class TestImprovementFactor:
    def test_concrete_ratio(self):
        f = improvement_factor(M**2, M, Regime({"M": lambda t: t}), t=64.0)
        assert f == pytest.approx(64.0)
