"""Unit tests for the front-end lexer and parser."""

from __future__ import annotations

import pytest

from repro.frontend import LexError, ParseError, parse, tokenize
from repro.frontend.astnodes import (
    Assign,
    BinOp,
    Call,
    Compare,
    For,
    If,
    Num,
    Ref,
    Ternary,
    UnOp,
    Var,
)


class TestLexer:
    def test_numbers(self):
        toks = tokenize("1 2.5 0.0")
        assert [t.text for t in toks[:-1]] == ["1", "2.5", "0.0"]
        assert all(t.kind == "num" for t in toks[:-1])

    def test_names_and_keywords(self):
        toks = tokenize("for foo if bar_2")
        kinds = [(t.kind, t.text) for t in toks[:-1]]
        assert kinds == [
            ("kw", "for"),
            ("name", "foo"),
            ("kw", "if"),
            ("name", "bar_2"),
        ]

    def test_compound_symbols(self):
        toks = tokenize("+= <= == != >= -= *= /=")
        assert [t.text for t in toks[:-1]] == [
            "+=", "<=", "==", "!=", ">=", "-=", "*=", "/=",
        ]

    def test_line_comments_skipped(self):
        toks = tokenize("a // comment\n b")
        assert [t.text for t in toks[:-1]] == ["a", "b"]

    def test_block_comments_skipped(self):
        toks = tokenize("a /* x\ny */ b")
        assert [t.text for t in toks[:-1]] == ["a", "b"]

    def test_unterminated_comment(self):
        with pytest.raises(LexError):
            tokenize("/* nope")

    def test_bad_character(self):
        with pytest.raises(LexError):
            tokenize("a @ b")

    def test_line_numbers(self):
        toks = tokenize("a\nb")
        assert toks[0].line == 1 and toks[1].line == 2


class TestParserExpressions:
    def _expr(self, src: str):
        blk = parse(f"x = {src};")
        return blk.items[0].value

    def test_precedence(self):
        e = self._expr("a + b * c")
        assert isinstance(e, BinOp) and e.op == "+"
        assert isinstance(e.rhs, BinOp) and e.rhs.op == "*"

    def test_parens(self):
        e = self._expr("(a + b) * c")
        assert isinstance(e, BinOp) and e.op == "*"

    def test_unary_minus(self):
        e = self._expr("-a * b")
        assert isinstance(e, BinOp)
        assert isinstance(e.lhs, UnOp)

    def test_array_ref_2d(self):
        e = self._expr("A[i + 1][2 * j]")
        assert isinstance(e, Ref)
        assert e.array == "A" and len(e.indices) == 2

    def test_call(self):
        e = self._expr("sqrt(a * a + b)")
        assert isinstance(e, Call) and e.func == "sqrt"

    def test_ternary(self):
        e = self._expr("(a > 0) ? (a + n) : (a - n)")
        assert isinstance(e, Ternary)
        assert isinstance(e.cond, Compare) and e.cond.op == ">"

    def test_parenthesised_plain_expr_not_ternary(self):
        e = self._expr("(a + b)")
        assert isinstance(e, BinOp)

    def test_division_chain(self):
        e = self._expr("a / b / c")
        assert isinstance(e, BinOp) and e.op == "/"
        assert isinstance(e.lhs, BinOp)  # left associative


class TestParserStatements:
    def test_simple_for(self):
        blk = parse("for (i = 0; i < N; i += 1) x = i;")
        f = blk.items[0]
        assert isinstance(f, For)
        assert f.var == "i" and f.cond_op == "<" and f.step == 1
        assert len(f.body.items) == 1

    def test_reversed_for(self):
        blk = parse("for (k = N - 1; k > -1; k -= 1) { x = k; }")
        f = blk.items[0]
        assert f.step == -1 and f.cond_op == ">"

    def test_nested_blocks(self):
        blk = parse(
            "for (i = 0; i < N; i += 1) { for (j = 0; j < N; j += 1) { x = i; } }"
        )
        inner = blk.items[0].body.items[0]
        assert isinstance(inner, For) and inner.var == "j"

    def test_if_statement(self):
        blk = parse("if (k < N - 2) { x = k; }")
        assert isinstance(blk.items[0], If)

    def test_labels(self):
        blk = parse("SU: A[i][j] -= b;")
        a = blk.items[0]
        assert isinstance(a, Assign)
        assert a.label == "SU" and a.op == "-"

    def test_compound_ops(self):
        for src, op in [("x += 1;", "+"), ("x -= 1;", "-"), ("x *= 2;", "*"), ("x /= 2;", "/")]:
            assert parse(src).items[0].op == op

    def test_mismatched_loop_var(self):
        with pytest.raises(ParseError):
            parse("for (i = 0; j < N; i += 1) x = 0;")

    def test_non_unit_step_rejected(self):
        with pytest.raises(ParseError):
            parse("for (i = 0; i < N; i += 2) x = 0;")

    def test_unterminated_block(self):
        with pytest.raises(ParseError):
            parse("for (i = 0; i < N; i += 1) { x = 0;")

    def test_missing_semicolon(self):
        with pytest.raises(ParseError):
            parse("x = 1")

    def test_garbage(self):
        with pytest.raises(ParseError):
            parse("??;")


from hypothesis import given, settings
from hypothesis import strategies as st

from repro.frontend import LowerError, lower_program


@given(st.text(max_size=80))
@settings(max_examples=120, deadline=None)
def test_parser_never_crashes_on_garbage(text):
    """Arbitrary input yields a parsed block or a clean front-end error —
    never an unhandled exception."""
    from repro.frontend import LexError, ParseError

    try:
        block = parse(text)
        lower_program(block)
    except (LexError, ParseError, LowerError):
        pass
