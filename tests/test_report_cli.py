"""Tests for table rendering, figure regeneration, and the CLI."""

from __future__ import annotations

import pytest

from repro.cli import main
from repro.report import (
    fig5_rows,
    format_number,
    render_fig5,
    render_table,
)


class TestTables:
    def test_render_basic(self):
        out = render_table(["a", "bb"], [["x", 1], ["yy", 22]], title="T")
        lines = out.splitlines()
        assert lines[0] == "T"
        assert "a" in lines[1] and "bb" in lines[1]
        assert "-+-" in lines[2]
        assert len(lines) == 5

    def test_column_alignment(self):
        out = render_table(["col"], [["verylongvalue"]])
        header, sep, row = out.splitlines()
        assert len(header) == len(row)

    @pytest.mark.parametrize(
        "val,expected",
        [
            (0, "0"),
            (5, "5"),
            (None, "-"),
            (1234.5678, "1235"),
            (0.00001, "1.000e-05"),
            (1.5e9, "1.500e+09"),
            ("text", "text"),
        ],
    )
    def test_format_number(self, val, expected):
        assert format_number(val) == expected


class TestFigures:
    def test_fig5_rows_structure(self):
        rows = fig5_rows()
        assert len(rows) == 5
        for name, old, new, imp in rows:
            assert old > 0 and new > 0
            assert imp == pytest.approx(new / old)

    def test_fig5_improvement_at_reference_point(self):
        """At the default reference point every kernel's new bound beats
        the old one."""
        for name, old, new, imp in fig5_rows():
            assert imp > 1.0, f"{name}: improvement {imp} <= 1"

    def test_render_fig5_smoke(self):
        out = render_fig5()
        assert "mgs" in out and "gehd2" in out


class TestCLI:
    def test_list(self, capsys):
        assert main(["list"]) == 0
        out = capsys.readouterr().out
        assert "mgs" in out and "tiled_a2v" in out

    def test_derive_with_eval(self, capsys):
        assert main(["derive", "mgs", "--eval", "M=50,N=20,S=64"]) == 0
        out = capsys.readouterr().out
        assert "hourglass" in out
        assert "Q >=" in out

    def test_validate(self, capsys):
        assert main(["validate", "mgs", "--params", "M=5,N=4"]) == 0
        out = capsys.readouterr().out
        assert "identical" in out

    def test_simulate(self, capsys):
        assert main(["simulate", "mgs", "--params", "M=6,N=5", "--cache", "12"]) == 0
        out = capsys.readouterr().out
        assert "pebble-game loads" in out
        assert "lower bound" in out

    def test_tiled(self, capsys):
        assert (
            main(
                [
                    "tiled",
                    "tiled_mgs",
                    "--params",
                    "M=12,N=8",
                    "--cache",
                    "64",
                ]
            )
            == 0
        )
        out = capsys.readouterr().out
        assert "measured loads" in out

    def test_fig5_command(self, capsys):
        assert main(["fig5"]) == 0
        assert "improvement" in capsys.readouterr().out

    def test_unknown_kernel_raises(self):
        with pytest.raises(KeyError):
            main(["derive", "nope"])

    def test_missing_subcommand_errors(self):
        with pytest.raises(SystemExit):
            main([])


class TestParseAssign:
    def test_valid(self):
        from repro.cli import _parse_assign

        assert _parse_assign("M=8,N=5") == {"M": 8, "N": 5}
        assert _parse_assign(" M = 8 , N =5") == {"M": 8, "N": 5}
        assert _parse_assign("") == {}

    def test_missing_value_named_in_error(self, capsys):
        with pytest.raises(SystemExit) as exc_info:
            main(["validate", "mgs", "--params", "M=8,N"])
        assert exc_info.value.code == 2  # argparse usage error, not a traceback
        err = capsys.readouterr().err
        assert "'N'" in err and "NAME=INTEGER" in err

    def test_non_integer_named_in_error(self, capsys):
        with pytest.raises(SystemExit) as exc_info:
            main(["derive", "mgs", "--eval", "M=x"])
        assert exc_info.value.code == 2
        err = capsys.readouterr().err
        assert "'x'" in err and "not an integer" in err

    def test_missing_key_rejected(self, capsys):
        with pytest.raises(SystemExit):
            main(["simulate", "mgs", "--params", "=5", "--cache", "8"])
        assert "bad assignment" in capsys.readouterr().err


class TestCLIVerify:
    def test_verify_single_kernel(self, capsys):
        assert main(["verify", "mgs", "--trials", "1"]) == 0
        out = capsys.readouterr().out
        assert "verify: OK" in out
        assert "bound-le-pebble" in out

    def test_verify_json_report(self, tmp_path, capsys):
        import json

        path = tmp_path / "report.json"
        assert main(
            ["verify", "mgs", "--trials", "1", "--json", str(path)]
        ) == 0
        payload = json.loads(path.read_text())
        assert payload["ok"] is True
        assert payload["seed"] == 0
        assert payload["failures"] == []
        assert "kernel/bound-le-pebble" in payload["oracles"]

    def test_verify_tiled_target(self, capsys):
        assert main(["verify", "tiled_mgs", "--trials", "1"]) == 0
        assert "tiled/tiled-ge-bound" in capsys.readouterr().out

    def test_verify_unknown_target(self):
        with pytest.raises(KeyError):
            main(["verify", "nope", "--trials", "1"])


class TestCLIParse:
    def test_parse_bundled_figure(self, capsys):
        from repro.cli import main

        assert main(["parse", "--figure", "mgs"]) == 0
        out = capsys.readouterr().out
        assert "SU" in out and "params ('M', 'N')" in out

    def test_parse_figure_with_derivation(self, capsys):
        from repro.cli import main

        assert (
            main(
                [
                    "parse",
                    "--figure",
                    "mgs",
                    "--derive",
                    "SU",
                    "--small",
                    "M=5,N=4",
                ]
            )
            == 0
        )
        assert "hourglass" in capsys.readouterr().out

    def test_parse_file(self, tmp_path, capsys):
        from repro.cli import main

        src = tmp_path / "k.c"
        src.write_text(
            "for (i = 0; i < N; i += 1) X: B[i] = A[i] + 1.0;\n"
        )
        assert main(["parse", "--file", str(src)]) == 0
        out = capsys.readouterr().out
        assert "X" in out and "params ('N',)" in out

    def test_parse_derive_requires_small(self):
        from repro.cli import main

        with pytest.raises(SystemExit):
            main(["parse", "--figure", "mgs", "--derive", "SU"])
