"""Tests for the Brascamp–Lieb exponent LP."""

from __future__ import annotations

from fractions import Fraction

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.bounds import bl_exponents, bl_exponents_weighted


def fs(*args):
    return [frozenset(a) for a in args]


class TestCoverageLP:
    def test_three_faces_sigma_three_halves(self):
        """The Loomis–Whitney case (matmul/MGS): sigma = 3/2, s = 1/2 each."""
        sol = bl_exponents(("i", "j", "k"), fs("ij", "ik", "jk"))
        assert sol.feasible
        assert sol.sigma == Fraction(3, 2)
        assert all(s == Fraction(1, 2) for s in sol.exponents)

    def test_axis_projections_sigma_three(self):
        sol = bl_exponents(("i", "j", "k"), fs("i", "j", "k"))
        assert sol.sigma == 3

    def test_full_projection_sigma_one_not_enough(self):
        """A single full-dim projection covers everything with sigma = 1."""
        sol = bl_exponents(("i", "j"), fs("ij"))
        assert sol.sigma == 1

    def test_mixed_projections(self):
        # phi_{ij} and phi_k: sigma = 2
        sol = bl_exponents(("i", "j", "k"), fs("ij", "k"))
        assert sol.sigma == 2

    def test_uncovered_dim_infeasible(self):
        sol = bl_exponents(("i", "j", "k"), fs("ij"))
        assert not sol.feasible

    def test_empty_projections_infeasible(self):
        sol = bl_exponents(("i",), [])
        assert not sol.feasible

    def test_redundant_projection_ignored(self):
        """Adding a useless 1-D projection must not change sigma."""
        sol = bl_exponents(("i", "j", "k"), fs("ij", "ik", "jk", "i"))
        assert sol.sigma == Fraction(3, 2)

    def test_2d_case(self):
        sol = bl_exponents(("i", "j"), fs("i", "j"))
        assert sol.sigma == 2

    def test_volume_inequality_holds_on_boxes(self):
        """Sanity: for a box E, |E| <= prod |phi(E)|**s with the LP's s."""
        dims = ("i", "j", "k")
        projs = fs("ij", "ik", "jk")
        sol = bl_exponents(dims, projs)
        a, b, c = 4, 7, 3
        vol = a * b * c
        sizes = {frozenset("ij"): a * b, frozenset("ik"): a * c, frozenset("jk"): b * c}
        bound = 1.0
        for p, s in zip(projs, sol.exponents):
            bound *= sizes[p] ** float(s)
        assert vol <= bound + 1e-9


class TestWeightedLP:
    def test_prefers_cheap_projections(self):
        """With phi_j and phi_k much cheaper than the 2-D faces, the hourglass
        choice (phi_i, phi_j, phi_k each s=1) must win."""
        dims = ("i", "j", "k")
        projs = fs("ij", "ik", "jk", "i", "j", "k")
        import math

        # bounds: faces ~ K = 2^20; axis i ~ M = 2^10; j, k ~ K/M = 2^10
        log_bounds = [20.0, 20.0, 20.0, 10.0, 10.0, 10.0]
        sol = bl_exponents_weighted(dims, projs, [b * math.log(2) for b in log_bounds])
        total = sum(
            float(s) * b for s, b in zip(sol.exponents, log_bounds)
        )
        assert total == pytest.approx(30.0, abs=0.1)  # M * (K/M)^2 = 2^30

    def test_length_mismatch_rejected(self):
        with pytest.raises(ValueError):
            bl_exponents_weighted(("i",), fs("i"), [1.0, 2.0])


@given(
    st.lists(
        st.sets(st.sampled_from("ijk"), min_size=1, max_size=3),
        min_size=1,
        max_size=5,
    )
)
@settings(max_examples=50, deadline=None)
def test_lp_solution_always_covers(projsets):
    """Whenever feasible, the returned exponents satisfy the coverage
    constraints (allowing LP solver tolerance)."""
    dims = ("i", "j", "k")
    projs = [frozenset(p) for p in projsets]
    sol = bl_exponents(dims, projs)
    if not sol.feasible:
        # some dim uncovered by every projection
        uncovered = [d for d in dims if not any(d in p for p in projs)]
        assert uncovered
        return
    for d in dims:
        cover = sum(float(s) for s, p in zip(sol.exponents, projs) if d in p)
        assert cover >= 1.0 - 1e-6
    assert 1 <= sol.sigma <= 3
