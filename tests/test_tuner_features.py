"""Regression + feature tests for the block-size tuner (ISSUE 1 satellites).

Covers the three tuner-facing satellite fixes: input validation when ``"N"``
is missing (historically a ``TypeError`` from ``max(1, None)``), the Appendix
A analytic block audit (``default_block_size(m + 1, s)`` — the exact resident
set is ``(M+1)·B + M``), and the new sweep machinery (process-pool ``jobs=``,
coarse-to-fine mode, persistent memoisation) producing results identical to
the serial exhaustive sweep.
"""

from __future__ import annotations

import dataclasses

import pytest

from repro.bounds import measure_tiled_io, tune_block_size
from repro.cache import MemoCache
from repro.kernels import TILED_MGS
from repro.kernels.tiled import default_block_size


class TestMissingParamValidation:
    """Satellite: params without "N" must raise a clear ValueError, not
    crash with ``TypeError: '>' not supported`` inside ``max(1, None)``."""

    def test_missing_n_raises_valueerror_naming_key(self):
        with pytest.raises(ValueError, match="N"):
            tune_block_size(TILED_MGS, {"M": 8}, 64)

    def test_missing_n_not_typeerror(self):
        try:
            tune_block_size(TILED_MGS, {"M": 8}, 64)
        except ValueError:
            pass  # the contract
        except TypeError as exc:  # pragma: no cover - the old bug
            pytest.fail(f"old TypeError crash resurfaced: {exc}")

    def test_bad_capacity_and_knobs(self):
        with pytest.raises(ValueError):
            tune_block_size(TILED_MGS, {"M": 8, "N": 4}, 0)
        with pytest.raises(ValueError):
            tune_block_size(TILED_MGS, {"M": 8, "N": 4}, 64, jobs=0)
        with pytest.raises(ValueError):
            tune_block_size(TILED_MGS, {"M": 8, "N": 4}, 64, mode="bogus")
        with pytest.raises(ValueError):
            tune_block_size(TILED_MGS, {"M": 8, "N": 4}, 64, mode="coarse", stride=0)


class TestAnalyticBlockAudit:
    """Satellite: pin ``default_block_size(m + 1, s)`` against Appendix A.

    The paper's ``B* = floor(S/M) - 1`` is asymptotic; the implementation
    divides by ``M + 1`` because the exact resident set during block
    application is ``(M+1)·B + M`` elements (block columns + coefficient row
    + one past column).  These pins document both the chosen values and why
    the literal paper formula can overflow fast memory.
    """

    # (M, S) -> expected B from floor(S/(M+1)) - 1
    PINNED = {(16, 96): 4, (8, 64): 6, (24, 256): 9, (10, 64): 4}

    @pytest.mark.parametrize("ms,expected", sorted(PINNED.items()))
    def test_pinned_analytic_blocks(self, ms, expected):
        m, s = ms
        assert default_block_size(m + 1, s) == expected

    @pytest.mark.parametrize("ms", sorted(PINNED))
    def test_footprint_fits(self, ms):
        m, s = ms
        b = default_block_size(m + 1, s)
        assert (m + 1) * b + m <= s, "chosen block must satisfy (M+1)B + M <= S"

    def test_paper_literal_can_overflow(self):
        # the worked example from the audit note: M=16, S=96
        m, s = 16, 96
        b_paper = s // m - 1  # the appendix's literal floor(S/M) - 1
        assert (m + 1) * b_paper + m > s  # overflows fast memory...
        b_impl = default_block_size(m + 1, s)
        assert (m + 1) * b_impl + m <= s  # ...while the M+1 form fits

    def test_tuner_and_measure_agree_on_analytic_block(self):
        params = {"M": 10, "N": 6}
        s = 64
        res = tune_block_size(TILED_MGS, params, s)
        meas = measure_tiled_io(TILED_MGS, params, s)
        expected = min(default_block_size(params["M"] + 1, s), params["N"])
        assert res.analytic_block == expected
        assert meas.block == expected


def _same_result(a, b, *, same_points: bool = True) -> None:
    assert a.best_block == b.best_block
    assert a.best_loads == b.best_loads
    assert a.analytic_block == b.analytic_block
    assert a.analytic_loads == b.analytic_loads
    if same_points:
        assert sorted(a.evaluated) == sorted(b.evaluated)


class TestSweepMachinery:
    PARAMS = {"M": 10, "N": 6}
    S = 64

    def test_jobs_matches_serial(self):
        serial = tune_block_size(TILED_MGS, self.PARAMS, self.S)
        pooled = tune_block_size(TILED_MGS, self.PARAMS, self.S, jobs=2)
        _same_result(serial, pooled)

    def test_coarse_mode_evaluates_subset_and_finds_best(self):
        full = tune_block_size(TILED_MGS, self.PARAMS, self.S)
        coarse = tune_block_size(TILED_MGS, self.PARAMS, self.S, mode="coarse")
        assert coarse.mode == "coarse"
        assert len(coarse.evaluated) <= len(full.evaluated)
        evaluated_blocks = {b for b, _ in coarse.evaluated}
        assert coarse.analytic_block in evaluated_blocks
        # measured loads are unimodal enough here for refine to land on the
        # true argmin; this is the case the mode is designed for
        assert coarse.best_loads == full.best_loads

    def test_coarse_grid_respects_stride(self):
        coarse = tune_block_size(
            TILED_MGS, self.PARAMS, self.S, mode="coarse", stride=3
        )
        blocks = {b for b, _ in coarse.evaluated}
        assert {1, 4, 6} - blocks == set()  # stride-3 grid incl. b_max

    def test_memo_second_run_is_all_hits_and_identical(self, tmp_path):
        memo = MemoCache(tmp_path)
        first = tune_block_size(TILED_MGS, self.PARAMS, self.S, memo=memo)
        assert memo.misses >= len(first.evaluated)
        memo2 = MemoCache(tmp_path)
        second = tune_block_size(TILED_MGS, self.PARAMS, self.S, memo=memo2)
        assert memo2.misses == 0
        assert memo2.hits == len(second.evaluated)
        _same_result(first, second)

    def test_memo_measure_tiled_io_identical(self, tmp_path):
        memo = MemoCache(tmp_path)
        fresh = measure_tiled_io(TILED_MGS, self.PARAMS, self.S, memo=memo)
        hit = measure_tiled_io(TILED_MGS, self.PARAMS, self.S, memo=memo)
        assert memo.hits == 1 and memo.misses == 1
        for f in dataclasses.fields(fresh.stats):
            assert getattr(hit.stats, f.name) == getattr(fresh.stats, f.name)

    def test_memo_counters_reconcile_across_runs(self, tmp_path):
        """Property: with instrumentation on, the second identical tune run
        against the same memo directory reports exactly as many obs memo
        hits as the first run reported misses — every simulation the first
        run paid for is served from disk the second time — and the tuning
        result is unchanged."""
        from repro import obs

        obs.enable()
        first = tune_block_size(
            TILED_MGS, self.PARAMS, self.S, memo=MemoCache(tmp_path)
        )
        first_counters = obs.counters()
        assert first_counters.get("cache.memo_hits", 0) == 0
        first_misses = first_counters["cache.memo_misses"]
        assert first_misses == first_counters["cache.memo_stores"] > 0

        obs.reset()
        second = tune_block_size(
            TILED_MGS, self.PARAMS, self.S, memo=MemoCache(tmp_path)
        )
        second_counters = obs.counters()
        assert second_counters["cache.memo_hits"] == first_misses
        assert second_counters.get("cache.memo_misses", 0) == 0
        _same_result(first, second)

    def test_memo_ignores_corrupt_files(self, tmp_path):
        memo = MemoCache(tmp_path)
        res = tune_block_size(TILED_MGS, self.PARAMS, self.S, memo=memo)
        for p in tmp_path.glob("*.json"):
            p.write_text("{ corrupt")
        again = tune_block_size(TILED_MGS, self.PARAMS, self.S, memo=MemoCache(tmp_path))
        _same_result(res, again)
