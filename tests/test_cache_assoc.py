"""Tests for the hardware-like (line + set-associative) cache model."""

from __future__ import annotations

import pytest

from repro.cache import Linearizer, simulate_assoc, simulate_lru
from repro.ir import Event


def ev(*addrs):
    return [Event("R", ("A", (a,))) for a in addrs]


class TestLinearizer:
    def test_row_major(self):
        lin = Linearizer({"A": (3, 4)})
        assert lin.flat(("A", (0, 0))) == 0
        assert lin.flat(("A", (0, 1))) == 1
        assert lin.flat(("A", (1, 0))) == 4
        assert lin.flat(("A", (2, 3))) == 11

    def test_arrays_line_aligned(self):
        lin = Linearizer({"A": (3,), "B": (3,)}, line_size=4)
        a0 = lin.flat(("A", (0,)))
        b0 = lin.flat(("B", (0,)))
        assert a0 % 4 == 0 and b0 % 4 == 0
        assert a0 // 4 != b0 // 4  # never share a line

    def test_adhoc_first_touch(self):
        lin = Linearizer()
        x = lin.flat(("Z", (7,)))
        y = lin.flat(("Z", (3,)))
        assert x != y
        assert lin.flat(("Z", (7,))) == x  # stable

    def test_line_of(self):
        lin = Linearizer({"A": (8,)}, line_size=4)
        assert lin.line_of(("A", (0,))) == lin.line_of(("A", (3,)))
        assert lin.line_of(("A", (0,))) != lin.line_of(("A", (4,)))


class TestAssocSim:
    def test_spatial_locality(self):
        """Sequential scan with line size 4: one miss per 4 elements."""
        trace = ev(*range(16))
        st = simulate_assoc(
            trace, capacity_elements=32, line_size=4, ways=4, shapes={"A": (16,)}
        )
        assert st.line_misses == 4
        assert st.line_hits == 12

    def test_line_one_matches_lru_fully_assoc(self):
        """L=1, single set with W = capacity: identical to the model LRU
        (reads only; writes allocate in both)."""
        trace = ev(0, 1, 2, 0, 3, 1, 4, 0)
        st = simulate_assoc(
            trace, capacity_elements=3, line_size=1, ways=3, shapes={"A": (8,)}
        )
        ref = simulate_lru(trace, 3)
        assert st.line_misses == ref.loads

    def test_conflict_misses(self):
        """Direct-mapped (1 way): two lines mapping to the same set thrash
        even though capacity would suffice."""
        # capacity 8 elements, L=1, 1 way => 8 sets; addresses 0 and 8
        # collide in set 0
        trace = ev(0, 8, 0, 8, 0, 8)
        st = simulate_assoc(
            trace, capacity_elements=8, line_size=1, ways=1, shapes={"A": (16,)}
        )
        assert st.line_misses == 6

    def test_associativity_fixes_conflicts(self):
        trace = ev(0, 8, 0, 8, 0, 8)
        st = simulate_assoc(
            trace, capacity_elements=8, line_size=1, ways=2, shapes={"A": (16,)}
        )
        assert st.line_misses == 2

    def test_element_traffic(self):
        trace = ev(*range(8))
        st = simulate_assoc(
            trace, capacity_elements=16, line_size=4, ways=2, shapes={"A": (8,)}
        )
        assert st.element_traffic == st.line_misses * 4

    def test_tiny_capacity_degenerates(self):
        trace = ev(0, 1)
        st = simulate_assoc(
            trace, capacity_elements=2, line_size=4, ways=4, shapes={"A": (8,)}
        )
        assert st.n_sets == 1


class TestAssocProperties:
    """Seeded properties relating the hardware model to the paper model.

    Note the sound floor is *Belady*, not LRU: a set-associative cache can
    beat fully-associative LRU (cyclic thrashing), but never the offline
    optimum at equal capacity.
    """

    @staticmethod
    def _random_trace(seed, n_addrs=10, max_len=70):
        import random

        rng = random.Random(seed)
        return [
            Event("R", ("a", (rng.randint(0, n_addrs - 1),)))
            for _ in range(rng.randint(1, max_len))
        ]

    def test_lru_can_beat_fully_assoc_lru(self):
        """The naive 'set-assoc >= fully-assoc LRU' claim is FALSE: cyclic
        reuse thrashes fully-associative LRU while a direct-mapped split
        keeps hits.  Pinned here so nobody 'fixes' the Belady floor back."""
        trace = ev(0, 1, 2) * 6
        fa = simulate_lru(trace, 2)
        dm = simulate_assoc(
            trace, capacity_elements=2, line_size=1, ways=1, shapes={"A": (3,)}
        )
        assert fa.loads == len(trace)  # 100% thrash
        assert dm.line_misses < fa.loads

    def test_assoc_at_least_belady_floor(self):
        """W-way misses >= fully-associative Belady misses at equal
        capacity, for random traces, capacities, and associativities."""
        from repro.cache import simulate_belady

        import random

        for seed in range(40):
            rng = random.Random(seed)
            trace = self._random_trace(seed)
            cap = rng.randint(1, 12)
            ways = rng.choice([1, 2, 4, cap])
            hw = simulate_assoc(
                trace,
                capacity_elements=cap,
                line_size=1,
                ways=ways,
                shapes={"a": (10,)},
            )
            floor = simulate_belady(trace, cap).loads
            assert hw.line_misses >= floor, (
                f"seed={seed} cap={cap} ways={ways}:"
                f" {hw.line_misses} < Belady {floor}"
            )

    def test_single_set_equals_model_lru(self):
        """Cross-engine differential: one set of W = capacity ways with
        L=1 is exactly the model's fully-associative LRU on read traces."""
        for seed in range(40):
            trace = self._random_trace(seed)
            for cap in (1, 2, 3, 5, 8):
                hw = simulate_assoc(
                    trace,
                    capacity_elements=cap,
                    line_size=1,
                    ways=cap,
                    shapes={"a": (10,)},
                )
                assert hw.n_sets == 1
                assert hw.line_misses == simulate_lru(trace, cap).loads

    def test_more_ways_never_hurt_at_fixed_capacity_vs_floor(self):
        """Full associativity at L=1 on read traces is plain LRU, so the
        Belady floor is tight there; misses also never drop below cold."""
        from repro.cache import cold_loads

        for seed in range(20):
            trace = self._random_trace(seed)
            for cap in (2, 4, 8):
                hw = simulate_assoc(
                    trace,
                    capacity_elements=cap,
                    line_size=1,
                    ways=1,
                    shapes={"a": (10,)},
                )
                assert hw.line_misses >= cold_loads(trace)


class TestBoundsTransfer:
    def test_line_traffic_respects_element_bound(self):
        """An element-level lower bound Q implies line misses >= Q / L:
        check on MGS with the derived bound."""
        from repro.bounds import derive
        from repro.ir import Tracer
        from repro.kernels import get_kernel

        kern = get_kernel("mgs")
        params = {"M": 10, "N": 8}
        t = Tracer()
        kern.program.runner(dict(params), t)
        shapes = {"A": (10, 8), "Q": (10, 8), "R": (8, 8), "nrm": ()}
        rep = derive(kern)
        for s, line in ((16, 2), (32, 4)):
            st = simulate_assoc(
                list(t.events),
                capacity_elements=s,
                line_size=line,
                ways=4,
                shapes=shapes,
            )
            _, lb = rep.best({**params, "S": s})
            assert st.line_misses >= lb / line - 1e-9

    def test_hardware_misses_at_least_model_loads_direct_mapped(self):
        """With L=1, a W-way cache of the same capacity can only do worse
        than the fully-associative Belady model (more constraints)."""
        from repro.cache import simulate_belady
        from repro.ir import Tracer
        from repro.kernels import get_kernel

        kern = get_kernel("mgs")
        params = {"M": 8, "N": 6}
        t = Tracer()
        kern.program.runner(dict(params), t)
        events = list(t.events)
        shapes = {"A": (8, 6), "Q": (8, 6), "R": (6, 6), "nrm": ()}
        for s in (16, 32):
            hw = simulate_assoc(
                events, capacity_elements=s, line_size=1, ways=2, shapes=shapes
            )
            model = simulate_belady(events, s).loads
            # hw counts write-misses too, so compare against loads only
            assert hw.line_misses >= model
