"""Tests for the exact minimum-I/O red-white pebble game."""

from __future__ import annotations

import pytest

from repro.cdag import CDAG, INPUT, build_cdag
from repro.ir import Tracer
from repro.kernels import get_kernel
from repro.pebble import exact_min_loads, play_schedule


def chain(n: int) -> CDAG:
    g = CDAG()
    g.add_edge((INPUT, ("A", (0,))), ("s", (0,)))
    for x in range(n - 1):
        g.add_edge(("s", (x,)), ("s", (x + 1,)))
    return g


class TestExactSmallGraphs:
    def test_chain_needs_one_load(self):
        assert exact_min_loads(chain(6), 2) == 1

    def test_independent_inputs(self):
        """k independent consumers of k distinct inputs: k loads."""
        g = CDAG()
        for x in range(4):
            g.add_edge((INPUT, ("A", (x,))), ("c", (x,)))
        assert exact_min_loads(g, 2) == 4

    def test_shared_input_loaded_once(self):
        g = CDAG()
        for x in range(4):
            g.add_edge((INPUT, ("A", (0,))), ("c", (x,)))
        assert exact_min_loads(g, 2) == 1

    def test_forced_reload(self):
        """Two inputs; a uses span the whole game; S=2 forces a reload.

        a -> x0; x0 -> x1; b -> x1; a -> x2; x1 -> x2: at x1 all of
        {a, x0, b} compete for 2 slots while a is needed again at x2.
        """
        g = CDAG()
        a, b = (INPUT, ("A", (0,))), (INPUT, ("B", (0,)))
        g.add_edge(a, ("x", (0,)))
        g.add_edge(("x", (0,)), ("x", (1,)))
        g.add_edge(b, ("x", (1,)))
        g.add_edge(a, ("x", (2,)))
        g.add_edge(("x", (1,)), ("x", (2,)))
        assert exact_min_loads(g, 3) == 3  # a, b, a-again
        assert exact_min_loads(g, 4) == 2  # room to keep a

    def test_infeasible_s(self):
        g = CDAG()
        for x in range(3):
            g.add_edge((INPUT, ("A", (x,))), ("s", (0,)))
        with pytest.raises(ValueError):
            exact_min_loads(g, 3)

    def test_bad_s(self):
        with pytest.raises(ValueError):
            exact_min_loads(chain(2), 0)

    def test_node_limit(self):
        with pytest.raises(ValueError):
            exact_min_loads(chain(40), 2, node_limit=10)

    def test_monotone_in_s(self):
        g = CDAG()
        a, b = (INPUT, ("A", (0,))), (INPUT, ("B", (0,)))
        g.add_edge(a, ("x", (0,)))
        g.add_edge(b, ("x", (0,)))
        g.add_edge(a, ("x", (1,)))
        g.add_edge(("x", (0,)), ("x", (1,)))
        prev = None
        for s in (3, 4, 5):
            cur = exact_min_loads(g, s)
            if prev is not None:
                assert cur <= prev
            prev = cur


class TestExactVsSchedulePolicies:
    """The three-level hierarchy on real (tiny) kernel CDAGs:
    derived lower bound <= exact optimum <= Belady-on-a-schedule."""

    @pytest.mark.parametrize(
        "name,params,caches",
        [
            ("mgs", {"M": 2, "N": 2}, (4, 6, 8)),
            # the search cost grows steeply with S: keep matmul to S=4
            ("matmul", {"NI": 2, "NJ": 2, "NK": 2}, (4,)),
        ],
    )
    def test_exact_below_belady(self, name, params, caches):
        kern = get_kernel(name)
        g = build_cdag(kern.program, params)
        t = Tracer()
        kern.program.runner(dict(params), t)
        for s in caches:
            exact = exact_min_loads(g, s, node_limit=24)
            bel = play_schedule(g, t.schedule, s, "belady").loads
            assert exact <= bel

    def test_exact_at_least_cold_inputs_when_s_large(self):
        kern = get_kernel("mgs")
        params = {"M": 2, "N": 2}
        g = build_cdag(kern.program, params)
        # S = 10 already holds the whole 2x2 working set
        exact = exact_min_loads(g, 10, node_limit=24)
        assert exact == len(g.input_nodes())

    def test_derived_bound_below_exact(self):
        """Lower bounds hold even against the exact optimum."""
        from repro.bounds import derive

        kern = get_kernel("mgs")
        params = {"M": 2, "N": 2}
        g = build_cdag(kern.program, params)
        rep = derive(kern)
        for s in (4, 6):
            exact = exact_min_loads(g, s, node_limit=24)
            _, lb = rep.best({**params, "S": s})
            assert lb <= exact + 1e-9
