"""Tests for the derivation driver (DerivationReport, derive)."""

from __future__ import annotations

import math

import pytest

from repro.bounds import derive, optimal_k_numeric, sample_params_for
from repro.kernels import get_kernel
from tests.conftest import derivation_for


class TestDerivationReport:
    def test_all_bounds_composition(self):
        rep = derivation_for("mgs")
        methods = [b.method for b in rep.all_bounds()]
        assert methods == [
            "classical-disjoint",
            "hourglass",
            "hourglass-small-cache",
        ]

    def test_gehd2_report_has_splits(self):
        rep = derivation_for("gehd2")
        methods = [b.method for b in rep.all_bounds()]
        assert methods.count("hourglass-split") == 2

    def test_best_picks_max(self):
        rep = derivation_for("mgs")
        env = {"M": 400, "N": 100, "S": 64}
        _, val = rep.best(env)
        assert val == max(
            max(b.evaluate(env) for b in rep.all_bounds()), 0.0
        )

    def test_best_clamps_at_zero(self):
        rep = derivation_for("matmul")
        # classical bound is always positive; build an artificial negative
        env = {"NI": 1, "NJ": 1, "NK": 1, "S": 10**9}
        _, val = rep.best(env)
        assert val >= 0.0

    def test_best_raises_on_missing_params(self):
        rep = derivation_for("mgs")
        with pytest.raises(ValueError):
            rep.best({"S": 64})  # no M, N

    def test_summary_text(self):
        rep = derivation_for("mgs")
        s = rep.summary()
        assert "hourglass" in s and "projections" in s and "mgs" in s


class TestDriverOptions:
    def test_sample_params_for(self):
        kern = get_kernel("mgs")
        sp = sample_params_for(kern, scale=10)
        assert sp == {"M": 120, "N": 60}

    def test_statement_override_row_phase(self):
        """GEBD2's row-update statement SrU carries its own hourglass
        (temporal k, reduction i, neutral j via the z[i] broadcast)."""
        rep = derive(get_kernel("gebd2"), statement="SrU")
        assert rep.dominant == "SrU"
        pat = rep.hourglass_pattern
        assert pat is not None and pat.parametric_width
        assert pat.reduction == ("i",)
        # and its bound is sound at a concrete point
        env = {"M": 1000, "N": 300, "S": 1024}
        assert rep.hourglass.evaluate(env) > 0

    def test_statement_override_nondominant_degenerates_gracefully(self):
        """MGS's Sq statement is 2-dimensional with a full-dim projection
        (A[i][k] comes straight from the update chain): the K-partition
        argument degenerates (sigma = 1) and no hourglass exists — the
        driver must return an empty but well-formed report, not raise."""
        rep = derive(get_kernel("mgs"), statement="Sq")
        assert rep.hourglass_pattern is None
        assert rep.classical is None
        assert rep.all_bounds() == []


class TestOptimalK:
    def test_matches_closed_form_mgs(self):
        from repro.bounds import derive_projections, detect_hourglass

        kern = get_kernel("mgs")
        ps = derive_projections(kern.program, "SU", {"M": 5, "N": 4})
        pat = detect_hourglass(
            kern.program, "SU", {"M": 5, "N": 4}, {"M": 4096, "N": 1024}, ps
        )
        v = kern.program.statement("SU").instance_count()
        for m, s in ((4000, 1024), (1000, 64), (500, 4096)):
            env = {"M": m, "N": m // 4, "S": s}
            k_star, q_star = optimal_k_numeric(pat, ps, v, env)
            closed = s + math.sqrt(s * s + 2.0 * s * m)
            assert k_star == pytest.approx(closed, rel=0.02)
            assert q_star > 0

    def test_optimal_beats_fixed_multiples(self):
        from repro.bounds import (
            derive_projections,
            detect_hourglass,
            hourglass_bound,
        )

        kern = get_kernel("mgs")
        ps = derive_projections(kern.program, "SU", {"M": 5, "N": 4})
        pat = detect_hourglass(
            kern.program, "SU", {"M": 5, "N": 4}, {"M": 4096, "N": 1024}, ps
        )
        v = kern.program.statement("SU").instance_count()
        env = {"M": 4000, "N": 1000, "S": 256}
        _, q_star = optimal_k_numeric(pat, ps, v, env)
        for km in (2, 3, 4):
            fixed = hourglass_bound("mgs", pat, ps, v, k_mult=km).evaluate(env)
            assert q_star >= fixed - 1e-6
