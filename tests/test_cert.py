"""Bound certificates: emission, golden files, and the independent checker.

Three layers of guarantees are pinned here:

* **golden certificates** — the byte-exact ``iolb-cert/1`` documents for
  the five figure kernels live under ``tests/golden/cert_<name>.json``;
  any change to projections, witnesses or lemma trails fails loudly.
  Regenerate intentionally with ``IOLB_UPDATE_GOLDEN=1``.
* **checker acceptance** — every golden certificate (read back from disk,
  not from the in-process derivation) passes :func:`check_certificate`
  with exit code 0.
* **checker independence** — :mod:`repro.cert.check` must not import the
  derivation engine; the pin is AST-level because merely importing any
  ``repro`` submodule pulls :mod:`repro.bounds` in via the package
  ``__init__``, so a ``sys.modules`` check could never distinguish the
  checker's own imports from the package's.
"""

from __future__ import annotations

import json
import os
import pathlib

import pytest

from repro.cert import (
    CERT_SCHEMA,
    REPORT_SCHEMA,
    build_certificate,
    certificate_json,
    check_certificate,
)
from repro.kernels import get_kernel
from tests.conftest import derivation_for

FIGURE_KERNELS = ["mgs", "qr_a2v", "qr_v2q", "gebd2", "gehd2"]

GOLDEN_DIR = pathlib.Path(__file__).parent / "golden"


def cert_for(name: str) -> dict:
    kern = get_kernel(name)
    return build_certificate(
        derivation_for(name), kern.program, kern.default_params
    )


class TestGoldenCertificates:
    @pytest.mark.parametrize("name", FIGURE_KERNELS)
    def test_certificate_frozen(self, name):
        golden = GOLDEN_DIR / f"cert_{name}.json"
        got = certificate_json(cert_for(name))
        if os.environ.get("IOLB_UPDATE_GOLDEN"):
            golden.write_text(got)
        want = golden.read_text()
        assert got == want, (
            f"certificate for {name} drifted from {golden.name};"
            " if intended, rerun with IOLB_UPDATE_GOLDEN=1"
        )

    def test_serialization_byte_stable(self):
        """Two independent derivations render byte-identical certificates."""
        from repro.bounds import derive

        kern = get_kernel("mgs")
        a = certificate_json(
            build_certificate(derive(kern), kern.program, kern.default_params)
        )
        b = certificate_json(
            build_certificate(derive(kern), kern.program, kern.default_params)
        )
        assert a == b
        # canonical form: sorted keys, trailing newline, round-trips
        assert a.endswith("\n")
        assert json.loads(a) == json.loads(b)

    @pytest.mark.parametrize("name", FIGURE_KERNELS)
    def test_checker_accepts_golden_from_disk(self, name):
        cert = json.loads((GOLDEN_DIR / f"cert_{name}.json").read_text())
        rep = check_certificate(cert)
        assert rep.ok(), rep.summary()
        assert rep.exit_code() == 0
        assert rep.kernel == name

    @pytest.mark.parametrize("name", ["matmul", "cholesky", "syrk"])
    def test_classical_only_kernels_certify(self, name):
        """Kernels without an hourglass still get a checkable certificate."""
        cert = cert_for(name)
        assert cert["hourglass"] is None
        methods = [b["method"] for b in cert["bounds"]]
        assert methods in (["classical"], ["classical-disjoint"])
        rep = check_certificate(cert)
        assert rep.ok(), rep.summary()


class TestCertificateStructure:
    def test_schema_and_fields(self):
        cert = cert_for("mgs")
        assert cert["schema"] == CERT_SCHEMA
        assert cert["kernel"] == "mgs"
        assert cert["dominant"] == "SU"
        assert {"name", "dims", "domain", "instance_count"} <= set(
            cert["statement"]
        )
        assert len(cert["projections"]) == 3
        for b in cert["bounds"]:
            assert {"method", "coeff", "expr", "witness"} <= set(b)
            assert {"num", "den"} <= set(b["expr"])
            assert "kind" in b["witness"]

    def test_hourglass_witness_carries_lemma_trail(self):
        cert = cert_for("mgs")
        hg = next(b for b in cert["bounds"] if b["method"] == "hourglass")
        lemmas = [step["lemma"] for step in hg["witness"]["lemmas"]]
        assert lemmas[0] == "lemma4-width-cap"
        assert lemmas[-1] == "theorem1"
        assert "flatness" in lemmas

    def test_split_witness_carries_instantiation(self):
        cert = cert_for("gehd2")
        splits = [
            b for b in cert["bounds"] if b["method"] == "hourglass-split"
        ]
        assert len(splits) == 2
        for b in splits:
            assert b["witness"]["kind"] == "hourglass-split"
            assert b["witness"]["split"]["dim"] in cert["hourglass"]["temporal"]

    def test_no_bounds_raises(self):
        """An empty report has nothing to certify."""
        from repro.bounds.derivation import DerivationReport

        kern = get_kernel("mgs")
        empty = DerivationReport(
            kernel="mgs", dominant="SU", projections=[], classical=None
        )
        with pytest.raises(ValueError, match="no bounds"):
            build_certificate(empty, kern.program, kern.default_params)


class TestCheckerReport:
    def test_report_schema(self):
        rep = check_certificate(cert_for("mgs"))
        doc = rep.to_dict()
        assert doc["schema"] == REPORT_SCHEMA
        assert doc["ok"] is True
        assert doc["exit_code"] == 0
        assert doc["findings"] == []
        assert "bound:hourglass" in doc["checks_run"]
        assert "widths" in doc["checks_run"]

    def test_engine_version_mismatch_warns(self):
        rep = check_certificate(cert_for("mgs"), engine_version=999)
        assert rep.ok()  # warning, not error
        assert rep.exit_code() == 1
        assert [f.code for f in rep.findings] == ["C003"]

    def test_summary_mentions_findings(self):
        cert = cert_for("mgs")
        cert = json.loads(certificate_json(cert))
        cert["schema"] = "not-a-cert"
        rep = check_certificate(cert)
        assert not rep.ok()
        assert "C002" in rep.summary()
        assert "REJECTED" in rep.summary()


class TestCheckerIndependence:
    #: repro subpackages the checker must never import — everything that
    #: participates in deriving the bounds it is supposed to audit
    FORBIDDEN = (
        "bounds",
        "polyhedral",
        "symbolic",
        "ir",
        "kernels",
        "cdag",
        "cache",
        "pebble",
        "frontend",
        "analysis",
        "serve",
        "verify",
        "report",
        "cert.emit",
    )

    def test_checker_imports_nothing_from_the_engine(self):
        import ast

        import repro.cert.check as check_mod

        src = pathlib.Path(check_mod.__file__).read_text()
        tree = ast.parse(src)
        imported: list[str] = []
        for node in ast.walk(tree):
            if isinstance(node, ast.Import):
                imported.extend(a.name for a in node.names)
            elif isinstance(node, ast.ImportFrom):
                mod = node.module or ""
                if node.level:  # relative: anchor at repro.cert
                    base = "repro.cert" if node.level == 1 else "repro"
                    mod = f"{base}.{mod}" if mod else base
                    imported.extend(f"{mod}.{a.name}" for a in node.names)
                else:
                    imported.append(mod)
        repro_imports = [m for m in imported if m.startswith("repro")]
        # obs (off-by-default observability) is the single allowed exception
        assert repro_imports == ["repro.obs"], repro_imports
        for m in imported:
            for bad in self.FORBIDDEN:
                assert not m.startswith(f"repro.{bad}"), (
                    f"checker imports {m}: independence from the derivation"
                    " engine is broken"
                )

    def test_checker_redeclares_the_schema_tag(self):
        """The accepted schema string must be check.py's own constant."""
        from repro.cert import check as check_mod
        from repro.cert import emit as emit_mod

        assert check_mod._CERT_SCHEMA == emit_mod.CERT_SCHEMA
        # same value, distinct declarations (the test above proves check.py
        # cannot have imported it)


class TestCertCLI:
    def test_derive_cert_then_check(self, tmp_path, capsys):
        from repro.cli import main

        path = tmp_path / "mgs.cert.json"
        assert main(["derive", "mgs", "--cert", str(path)]) == 0
        cap = capsys.readouterr()
        assert "certificate written" in cap.err
        assert "kernel mgs" in cap.out  # summary still on stdout
        assert main(["cert", "check", str(path)]) == 0
        out = capsys.readouterr().out
        assert "OK" in out

    def test_derive_cert_stdout_convention(self, capsys):
        """``--cert -`` puts the certificate on stdout, the summary on
        stderr (same convention as ``iolb lint --json -``)."""
        from repro.cli import main

        assert main(["derive", "mgs", "--cert", "-"]) == 0
        cap = capsys.readouterr()
        cert = json.loads(cap.out)
        assert cert["schema"] == CERT_SCHEMA
        assert "kernel mgs" in cap.err

    def test_check_rejects_mutated_with_exit_2(self, tmp_path, capsys):
        from repro.cli import main

        cert = json.loads(certificate_json(cert_for("mgs")))
        cert["bounds"][0]["coeff"] = 123.0
        bad = tmp_path / "bad.json"
        bad.write_text(json.dumps(cert))
        report_path = tmp_path / "report.json"
        assert (
            main(["cert", "check", str(bad), "--json", str(report_path)]) == 2
        )
        capsys.readouterr()
        doc = json.loads(report_path.read_text())
        assert doc["schema"] == REPORT_SCHEMA
        assert doc["ok"] is False
        assert any(f["code"] == "C023" for f in doc["findings"])

    def test_check_unreadable_file_is_usage_error(self, tmp_path, capsys):
        from repro.cli import main

        with pytest.raises(SystemExit, match="cannot read"):
            main(["cert", "check", str(tmp_path / "missing.json")])
        garbled = tmp_path / "garbled.json"
        garbled.write_text("{nope")
        with pytest.raises(SystemExit, match="cannot read"):
            main(["cert", "check", str(garbled)])
