"""Tests for the generic hourglass-driven tiling scheduler."""

from __future__ import annotations

import pytest

from repro import build_cdag, get_kernel
from repro.ir import Tracer
from repro.kernels import TILED_MGS, default_block_size
from repro.pebble import hourglass_tiled_schedule, play_schedule
from tests.conftest import derivation_for


def _setup(name, params):
    kern = get_kernel(name)
    g = build_cdag(kern.program, params)
    pat = derivation_for(name).hourglass_pattern
    naive = Tracer()
    kern.program.runner(dict(params), naive)
    return kern, g, pat, naive


class TestValidity:
    @pytest.mark.parametrize(
        "name,params",
        [
            ("mgs", {"M": 8, "N": 6}),
            ("qr_a2v", {"M": 9, "N": 5}),
            ("gebd2", {"M": 9, "N": 6}),
            ("gehd2", {"N": 8}),
        ],
    )
    @pytest.mark.parametrize("block", [1, 2, 3])
    def test_valid_topological_order(self, name, params, block):
        kern, g, pat, _ = _setup(name, params)
        sched = hourglass_tiled_schedule(g, kern.program, pat, block)
        assert g.is_valid_schedule(sched)

    def test_bad_block_rejected(self):
        kern, g, pat, _ = _setup("mgs", {"M": 5, "N": 4})
        with pytest.raises(ValueError):
            hourglass_tiled_schedule(g, kern.program, pat, 0)


class TestIOBehaviour:
    def test_mgs_matches_figure8_loads(self):
        """On MGS the generic schedule prices identically to Figure 8's
        hand-written tiling (same Belady load counts)."""
        params = {"M": 16, "N": 12}
        kern, g, pat, _ = _setup("mgs", params)
        for s in (64, 128):
            b = default_block_size(params["M"] + 1, s)
            gen = hourglass_tiled_schedule(g, kern.program, pat, b)
            fig8 = TILED_MGS.run_traced({**params, "B": b}).schedule
            lg = play_schedule(g, gen, s, "belady").loads
            lf = play_schedule(g, fig8, s, "belady").loads
            assert lg == lf

    def test_mgs_beats_naive(self):
        params = {"M": 16, "N": 12}
        kern, g, pat, naive = _setup("mgs", params)
        s = 64
        b = default_block_size(params["M"] + 1, s)
        gen = hourglass_tiled_schedule(g, kern.program, pat, b)
        assert (
            play_schedule(g, gen, s, "belady").loads
            < play_schedule(g, naive.schedule, s, "belady").loads
        )

    def test_gehd2_beats_naive(self):
        """GEHD2 has no published tiling; the generic one still wins."""
        params = {"N": 12}
        kern, g, pat, naive = _setup("gehd2", params)
        for s in (48, 96):
            b = default_block_size(params["N"] + 1, s)
            gen = hourglass_tiled_schedule(g, kern.program, pat, b)
            assert (
                play_schedule(g, gen, s, "belady").loads
                < play_schedule(g, naive.schedule, s, "belady").loads
            )

    def test_gebd2_blocking_one_side_loses(self):
        """Finding: GEBD2 interleaves *two* hourglasses (column and row
        phases); blocking the column phase's neutral dim drags the row
        phase's full trailing-matrix sweeps along and loses to the naive
        order — the structural reason two-sided reductions are famously
        only partially blockable."""
        params = {"M": 14, "N": 9}
        kern, g, pat, naive = _setup("gebd2", params)
        s = 48
        b = default_block_size(params["M"] + 1, s)
        gen = hourglass_tiled_schedule(g, kern.program, pat, b)
        assert (
            play_schedule(g, gen, s, "belady").loads
            > play_schedule(g, naive.schedule, s, "belady").loads
        )

    def test_bounds_still_sound_for_generic_schedules(self):
        for name, params in (("mgs", {"M": 8, "N": 6}), ("gehd2", {"N": 8})):
            kern, g, pat, _ = _setup(name, params)
            rep = derivation_for(name)
            for b in (1, 2, 4):
                sched = hourglass_tiled_schedule(g, kern.program, pat, b)
                for s in (8, 24):
                    measured = play_schedule(g, sched, s, "belady").loads
                    _, lb = rep.best({**params, "S": s})
                    assert lb <= measured + 1e-9
