"""Property tests: the fast trace engine against the reference simulators.

The contract (ISSUE satellite + tentpole): on any trace and capacity the new
engine matches :mod:`repro.cache._reference` on **every** CacheStats field —
including stores, which requires the shared deterministic lowest-address
eviction tie-break — Belady never loads more than LRU, and persistent
memo-cache hits are bit-identical to fresh simulation.
"""

from __future__ import annotations

import dataclasses

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.cache import (
    MemoCache,
    cold_loads,
    memo_key,
    simulate,
    simulate_belady,
    simulate_lru,
)
from repro.cache import _reference as reference
from repro.ir import Event, TraceArrays
from tests.conftest import SMALL_PARAMS, trace_for

_trace = st.lists(
    st.tuples(st.sampled_from("RW"), st.sampled_from("AB"), st.integers(0, 9)),
    min_size=1,
    max_size=100,
)
_capacity = st.integers(1, 8)


def _events(ops) -> list[Event]:
    return [Event(op, (arr, (idx,))) for op, arr, idx in ops]


def _assert_same_stats(fast, ref):
    for f in dataclasses.fields(fast):
        assert getattr(fast, f.name) == getattr(ref, f.name), f.name


@given(_trace, _capacity)
@settings(max_examples=120, deadline=None)
def test_exact_agreement_all_fields(ops, s):
    """(a) new vs reference simulators agree exactly on all CacheStats fields."""
    evs = _events(ops)
    _assert_same_stats(simulate_lru(evs, s), reference.simulate_lru(evs, s))
    _assert_same_stats(simulate_belady(evs, s), reference.simulate_belady(evs, s))


@given(_trace, _capacity)
@settings(max_examples=60, deadline=None)
def test_soa_input_equals_event_input(ops, s):
    """Feeding TraceArrays directly gives the same answer as the Event stream."""
    evs = _events(ops)
    ta = TraceArrays.from_events(evs)
    for policy in ("lru", "belady"):
        _assert_same_stats(simulate(ta, s, policy), simulate(evs, s, policy))


@given(_trace, _capacity)
@settings(max_examples=120, deadline=None)
def test_belady_never_worse_than_lru(ops, s):
    """(b) belady.loads <= lru.loads for every trace and capacity."""
    evs = _events(ops)
    assert simulate_belady(evs, s).loads <= simulate_lru(evs, s).loads


@given(ops=_trace, s=_capacity)
@settings(max_examples=40, deadline=None)
def test_memo_hit_identical_to_fresh(tmp_path_factory, ops, s):
    """(c) memo-cache hits return results identical to fresh simulation."""
    evs = _events(ops)
    memo = MemoCache(tmp_path_factory.mktemp("memo"))
    for policy in ("lru", "belady"):
        fresh = simulate(evs, s, policy)
        key = memo_key("randtrace", {"h": hash(tuple(ops)) % 10**9}, s, policy)
        memo.put(key, fresh)
        _assert_same_stats(memo.get(key), fresh)


class TestTieBreakDeterminism:
    """Eviction among never-reused lines is by lowest address, in both engines."""

    def _dead_line_tie(self):
        # capacity 2: x5 (dirty) and x2 (clean) are resident, neither is ever
        # used again — a genuine next-use tie at infinity.  Reading x0 forces
        # one eviction: the rule picks the lowest address, the *clean* x2
        # (insertion-order scanning, the old behaviour, would evict the
        # dirty x5 first and emit a spurious store).
        return [
            Event("W", ("x", (5,))),
            Event("R", ("x", (2,))),
            Event("R", ("x", (0,))),
        ]

    def test_lowest_address_evicted(self):
        evs = self._dead_line_tie()
        for fn in (simulate_belady, reference.simulate_belady):
            st_ = fn(evs, 2)
            assert st_.evict_stores == 0, fn.__module__  # clean x2 evicted
            assert st_.flush_stores == 1  # dirty x5 survived to the flush
            assert st_.loads == 2

    @given(_trace, _capacity)
    @settings(max_examples=60, deadline=None)
    def test_stores_reproducible_across_engines(self, ops, s):
        evs = _events(ops)
        assert (
            simulate_belady(evs, s).stores == reference.simulate_belady(evs, s).stores
        )

    def test_runs_are_deterministic(self):
        evs = self._dead_line_tie() * 7
        runs = {
            (simulate_belady(evs, 2).stores, simulate_belady(evs, 2).loads)
            for _ in range(5)
        }
        assert len(runs) == 1


class TestOnKernelTraces:
    """The agreement holds on real instrumented kernel traces, not just random ones."""

    @pytest.mark.parametrize("name", sorted(SMALL_PARAMS))
    def test_kernel_traces_agree(self, name):
        events = list(trace_for(name).events)
        for s in (4, 16):
            _assert_same_stats(
                simulate_belady(events, s), reference.simulate_belady(events, s)
            )
            _assert_same_stats(
                simulate_lru(events, s), reference.simulate_lru(events, s)
            )

    def test_cold_loads_agree_on_kernel(self):
        events = list(trace_for("mgs").events)
        assert cold_loads(events) == reference.cold_loads(events)
