"""Tests for the wavefront bound and the tiled upper-bound machinery."""

from __future__ import annotations

import pytest

from repro.bounds import (
    max_live,
    measure_tiled_io,
    min_max_live_exact,
    predicted_reads,
    predicted_total,
    wavefront_bound,
)
from repro.cdag import CDAG, INPUT
from repro.kernels import TILED_A2V, TILED_MGS
from repro.pebble import play_schedule
from tests.conftest import cdag_for, trace_for


def ladder(n: int) -> CDAG:
    """Two parallel chains joined at the end; min-max-live is 3."""
    g = CDAG()
    for c in ("a", "b"):
        g.add_edge((INPUT, (c, (0,))), (c, (0,)))
        for x in range(n - 1):
            g.add_edge((c, (x,)), (c, (x + 1,)))
    g.add_edge(("a", (n - 1,)), ("join", (0,)))
    g.add_edge(("b", (n - 1,)), ("join", (0,)))
    return g


class TestMaxLive:
    def test_chain_live_is_small(self):
        g = CDAG()
        g.add_edge((INPUT, ("A", (0,))), ("s", (0,)))
        for x in range(5):
            g.add_edge(("s", (x,)), ("s", (x + 1,)))
        sched = [("s", (x,)) for x in range(6)]
        assert max_live(g, sched) <= 2

    def test_ladder_live(self):
        g = ladder(4)
        sched = [("a", (x,)) for x in range(4)] + [("b", (x,)) for x in range(4)]
        sched.append(("join", (0,)))
        # while the b-chain runs, a's tail stays live alongside b's head
        # (live is counted after each step, so transient operands don't add)
        assert max_live(g, sched) >= 2

    def test_outputs_stay_live(self):
        g = CDAG()
        g.add_edge((INPUT, ("A", (0,))), ("s", (0,)))
        g.outputs.add(("s", (0,)))
        assert max_live(g, [("s", (0,))]) >= 1


class TestMinMaxLiveExact:
    def test_chain_optimal(self):
        g = CDAG()
        g.add_edge((INPUT, ("A", (0,))), ("s", (0,)))
        for x in range(4):
            g.add_edge(("s", (x,)), ("s", (x + 1,)))
        assert min_max_live_exact(g) <= 2

    def test_ladder_needs_three(self):
        assert min_max_live_exact(ladder(3)) >= 2

    def test_minimum_over_schedules(self):
        """Exact value is <= any specific schedule's peak."""
        g = ladder(3)
        sched = (
            [("a", (x,)) for x in range(3)]
            + [("b", (x,)) for x in range(3)]
            + [("join", (0,))]
        )
        assert min_max_live_exact(g) <= max_live(g, sched)

    def test_node_limit_guard(self):
        g = cdag_for("mgs")
        with pytest.raises(ValueError):
            min_max_live_exact(g, node_limit=10)

    def test_wavefront_bound_nonnegative(self):
        g = ladder(3)
        assert wavefront_bound(g, s=100) == 0
        assert wavefront_bound(g, s=1) >= 1

    def test_wavefront_sound_against_pebble(self):
        """On a graph small enough for exact search, the wavefront bound
        must not exceed the pebble game's loads for any schedule."""
        g = ladder(3)
        sched = (
            [("a", (x,)) for x in range(3)]
            + [("b", (x,)) for x in range(3)]
            + [("join", (0,))]
        )
        for s in (3, 4):  # join has 2 operands: the game needs S >= 3
            wb = wavefront_bound(g, s)
            measured = play_schedule(g, sched, s, "belady").loads
            assert wb <= measured


class TestTiledUpper:
    def test_predicted_reads_mgs(self):
        env = {"M": 24, "N": 16, "B": 4}
        assert predicted_reads(TILED_MGS, env) == pytest.approx(
            0.5 * 24 * 16 * 16 / 4
        )

    def test_predicted_total_mgs(self):
        env = {"M": 24, "N": 16, "S": 128}
        assert predicted_total(TILED_MGS, env) == pytest.approx(
            0.5 * 24 * 24 * 16 * 16 / 128
        )

    def test_measure_respects_block_override(self):
        meas = measure_tiled_io(TILED_MGS, {"M": 12, "N": 8}, 64, block=2)
        assert meas.block == 2

    def test_measure_default_block(self):
        meas = measure_tiled_io(TILED_MGS, {"M": 12, "N": 8}, 64)
        assert meas.block == 64 // 13 - 1

    def test_measured_loads_within_prediction(self):
        """Appendix A.1: measured loads stay within ~1.5x the leading-term
        prediction once the cache condition holds."""
        m, n, s = 24, 16, 256
        meas = measure_tiled_io(TILED_MGS, {"M": m, "N": n}, s)
        assert (m + 1) * meas.block < s
        assert meas.loads <= 1.5 * (meas.predicted_reads + m * n)

    def test_a2v_measured_loads_within_prediction(self):
        m, n, s = 24, 12, 256
        meas = measure_tiled_io(TILED_A2V, {"M": m, "N": n}, s)
        assert meas.loads <= 1.5 * (meas.predicted_reads + m * n)

    def test_stores_are_lower_order(self):
        """§2's loads-only accounting is justified: stores ~ MN + N^2/2."""
        m, n, s = 24, 16, 256
        meas = measure_tiled_io(TILED_MGS, {"M": m, "N": n}, s)
        assert meas.stats.stores <= 1.5 * (m * n + n * n / 2)
