"""Tests for the block-size tuner and the two-level cache hierarchy."""

from __future__ import annotations

import pytest

from repro.bounds import tune_block_size
from repro.cache import simulate_hierarchy, simulate_lru
from repro.ir import Event, Tracer
from repro.kernels import TILED_A2V, TILED_MGS, get_kernel


def ev(seq: str):
    return [Event(tok[0], (tok[1:], ())) for tok in seq.split()]


class TestTuner:
    def test_sweep_covers_range(self):
        res = tune_block_size(TILED_MGS, {"M": 10, "N": 6}, 64, b_max=6)
        assert [b for b, _ in res.evaluated] == [1, 2, 3, 4, 5, 6]

    def test_best_is_argmin(self):
        res = tune_block_size(TILED_MGS, {"M": 10, "N": 6}, 64, b_max=6)
        assert res.best_loads == min(l for _, l in res.evaluated)

    def test_analytic_choice_close_to_optimum(self):
        """Appendix A's B* = floor(S/M)-1 stays within 40% of the measured
        best for both tiled algorithms (Belady model)."""
        for alg, params in ((TILED_MGS, {"M": 20, "N": 12}), (TILED_A2V, {"M": 20, "N": 10})):
            res = tune_block_size(alg, params, 128, b_max=params["N"])
            assert res.analytic_gap < 1.4, (alg.name, res)

    def test_default_bmax_is_n(self):
        res = tune_block_size(TILED_MGS, {"M": 8, "N": 4}, 64)
        assert len(res.evaluated) == 4

    def test_lru_policy_supported(self):
        res = tune_block_size(TILED_MGS, {"M": 8, "N": 4}, 48, policy="lru")
        assert res.best_loads > 0


class TestHierarchy:
    def test_bad_capacities(self):
        with pytest.raises(ValueError):
            simulate_hierarchy([], 4, 2)
        with pytest.raises(ValueError):
            simulate_hierarchy([], 0, 2)

    def test_l1_hit_no_l2_traffic(self):
        st = simulate_hierarchy(ev("Ra Ra Ra"), 2, 4)
        assert st.l1_loads == 1 and st.l2_loads == 1
        assert st.l1_hits == 2

    def test_l2_catches_l1_evictions(self):
        # L1 of 1 thrashes between a and b; L2 of 4 holds both
        st = simulate_hierarchy(ev("Ra Rb Ra Rb Ra"), 1, 4)
        assert st.l2_loads == 2  # only cold
        assert st.l1_loads == 5  # every access misses L1 after the first

    def test_writes_do_not_load(self):
        st = simulate_hierarchy(ev("Wa Ra"), 2, 4)
        assert st.l1_loads == 0 and st.l2_loads == 0

    def test_l1_equals_single_level_lru(self):
        """With l2 huge, L1 loads equal the flat LRU simulator's loads."""
        trace = ev("Ra Rb Rc Ra Rb Rc Ra Wd Rd Rb")
        st = simulate_hierarchy(trace, 2, 10_000)
        flat = simulate_lru(trace, 2)
        assert st.l1_loads == flat.loads

    def test_bounds_hold_per_level(self):
        """The derived bound instantiates at both capacities."""
        from repro.bounds import derive

        kern = get_kernel("mgs")
        params = {"M": 10, "N": 8}
        t = Tracer()
        kern.program.runner(dict(params), t)
        st = simulate_hierarchy(list(t.events), 8, 48)
        rep = derive(kern)
        _, lb1 = rep.best({**params, "S": 8})
        _, lb2 = rep.best({**params, "S": 48})
        assert st.l1_loads >= lb1 - 1e-9
        assert st.l2_loads >= lb2 - 1e-9

    def test_l2_loads_never_exceed_l1(self):
        trace = ev("Ra Rb Rc Rd Ra Rb Rc Rd")
        st = simulate_hierarchy(trace, 2, 4)
        assert st.l2_loads <= st.l1_loads
