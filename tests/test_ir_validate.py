"""Tests for static Program validation — including failure injection:
deliberately broken specs must be caught."""

from __future__ import annotations

import pytest

from repro.ir import (
    Access,
    Array,
    Program,
    Statement,
    ProgramValidationError,
    validate_program,
)
from repro.kernels import KERNELS
from repro.polyhedral import var

i, j, N = var("i"), var("j"), var("N")


def make(statements, arrays=(Array("A", 1), Array("s", 0)), params=("N",)):
    return Program("t", params, arrays, tuple(statements))


class TestValidPrograms:
    @pytest.mark.parametrize("name", sorted(KERNELS))
    def test_all_kernels_valid(self, name):
        assert validate_program(KERNELS[name].program) == []

    def test_parsed_figures_valid(self):
        from repro.frontend import compile_source
        from repro.frontend.sources import FIGURE_SOURCES

        for name, src in FIGURE_SOURCES.items():
            prog, _ = compile_source(src, name)
            assert validate_program(prog) == [], name


class TestFailureInjection:
    def test_arity_mismatch(self):
        st = Statement(
            "X",
            loops=(("i", 0, N - 1),),
            reads=(Access.to("A", i, i),),  # A is rank 1
            writes=(Access.to("s"),),
            schedule=(0, "i", 0),
        )
        probs = validate_program(make([st]))
        assert any("arity" in p for p in probs)

    def test_unknown_name_in_index(self):
        st = Statement(
            "X",
            loops=(("i", 0, N - 1),),
            reads=(Access.to("A", var("zz")),),
            writes=(Access.to("s"),),
            schedule=(0, "i", 0),
        )
        probs = validate_program(make([st]))
        assert any("unknown names" in p for p in probs)

    def test_inner_dim_in_outer_bound(self):
        st = Statement(
            "X",
            loops=(("i", j, N - 1), ("j", 0, N - 1)),  # i bounded by inner j
            writes=(Access.to("s"),),
            schedule=(0, "i", 0, "j", 0),
        )
        probs = validate_program(make([st]))
        assert any("non-outer" in p for p in probs)

    def test_multiple_writes_flagged(self):
        st = Statement(
            "X",
            loops=(("i", 0, N - 1),),
            writes=(Access.to("A", i), Access.to("s")),
            schedule=(0, "i", 0),
        )
        probs = validate_program(make([st]))
        assert any("writes" in p for p in probs)

    def test_schedule_unknown_dim(self):
        st = Statement(
            "X",
            loops=(("i", 0, N - 1),),
            writes=(Access.to("s"),),
            schedule=(0, "zz", 0),
        )
        probs = validate_program(make([st]))
        assert any("unknown dim" in p for p in probs)

    def test_schedule_dim_order(self):
        st = Statement(
            "X",
            loops=(("i", 0, N - 1), ("j", 0, N - 1)),
            writes=(Access.to("s"),),
            schedule=(0, "j", 0, "i", 0),  # inverted
        )
        probs = validate_program(make([st]))
        assert any("loop order" in p for p in probs)

    def test_inconsistent_shared_prefix(self):
        a = Statement(
            "A1",
            loops=(("i", 0, N - 1),),
            writes=(Access.to("s"),),
            schedule=(0, "i", 0),
        )
        b = Statement(
            "B1",
            loops=(("j", 0, N - 1),),
            writes=(Access.to("s"),),
            schedule=(0, "j", 1),
        )
        probs = validate_program(make([a, b]))
        assert any("different dims" in p for p in probs)

    def test_dim_vs_static_mix(self):
        a = Statement(
            "A1",
            loops=(("i", 0, N - 1),),
            writes=(Access.to("s"),),
            schedule=(0, "i", 0),
        )
        b = Statement(
            "B1",
            loops=(),
            writes=(Access.to("s"),),
            schedule=(0, 5),
        )
        probs = validate_program(make([a, b]))
        assert any("mixes a dim" in p for p in probs)

    def test_strict_raises(self):
        st = Statement(
            "X",
            loops=(("i", 0, N - 1),),
            reads=(Access.to("A", i, i),),
            writes=(Access.to("s"),),
            schedule=(0, "i", 0),
        )
        with pytest.raises(ProgramValidationError):
            validate_program(make([st]), strict=True)
