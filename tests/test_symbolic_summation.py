"""Tests for Faulhaber summation and loop-nest counting."""

from __future__ import annotations

from fractions import Fraction

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.symbolic import Const, Poly, Sym, count_nest, faulhaber, sum_poly

M, N, k = Sym("M"), Sym("N"), Sym("k")


class TestFaulhaber:
    @pytest.mark.parametrize("kk,n,expected", [
        (0, 10, 10),
        (1, 10, 55),
        (2, 10, 385),
        (3, 10, 3025),
        (4, 5, 979),
        (5, 4, 1300),
    ])
    def test_known_values(self, kk, n, expected):
        assert faulhaber(kk).eval({"_n": n}) == expected

    def test_zero_at_zero(self):
        for kk in range(6):
            assert faulhaber(kk).eval({"_n": 0}) == 0

    def test_degree(self):
        for kk in range(5):
            assert faulhaber(kk).total_degree() == kk + 1

    def test_negative_exponent_rejected(self):
        with pytest.raises(ValueError):
            faulhaber(-1)


class TestSumPoly:
    def test_constant(self):
        # sum_{x=2..7} 3 = 18
        assert sum_poly(Const(3), "x", 2, 7).eval({}) == 18

    def test_linear(self):
        assert sum_poly(Sym("x"), "x", 1, 10).eval({}) == 55

    def test_empty_sum_convention(self):
        # hi = lo - 1 gives 0
        assert sum_poly(Sym("x"), "x", 5, 4).eval({}) == 0

    def test_symbolic_bounds(self):
        # sum_{x=0..N-1} x = N(N-1)/2
        s = sum_poly(Sym("x"), "x", 0, N - 1)
        assert s == N * (N - 1) * Fraction(1, 2)

    def test_coefficients_in_other_symbols(self):
        # sum_{x=0..N-1} M*x^2 = M * (N-1)N(2N-1)/6
        s = sum_poly(M * Sym("x") ** 2, "x", 0, N - 1)
        for n in (1, 2, 5, 9):
            expected = sum(x * x for x in range(n))
            assert s.eval({"M": 3, "N": n}) == 3 * expected

    def test_var_in_bounds_rejected(self):
        with pytest.raises(ValueError):
            sum_poly(Sym("x"), "x", 0, Sym("x"))

    def test_fractional_exponent_rejected(self):
        with pytest.raises(ValueError):
            sum_poly(Sym("x") ** Fraction(1, 2), "x", 0, 3)

    @given(
        st.integers(0, 3),
        st.integers(-3, 3),
        st.integers(0, 8),
    )
    @settings(max_examples=50, deadline=None)
    def test_matches_brute_force(self, e, lo, width):
        hi = lo + width
        s = sum_poly(Sym("x") ** e, "x", lo, hi)
        assert s.eval({}) == sum(x**e for x in range(lo, hi + 1))


class TestCountNest:
    def test_rectangle(self):
        c = count_nest([("i", 0, M - 1), ("j", 0, N - 1)])
        assert c == M * N

    def test_triangle(self):
        c = count_nest([("i", 0, N - 1), ("j", Sym("i") + 1, N - 1)])
        assert c == N * (N - 1) * Fraction(1, 2)

    def test_mgs_su_domain(self):
        c = count_nest([("k", 0, N - 1), ("j", Sym("k") + 1, N - 1), ("i", 0, M - 1)])
        for m, n in [(3, 2), (7, 5), (10, 10)]:
            brute = sum(
                1 for kk in range(n) for j in range(kk + 1, n) for i in range(m)
            )
            assert c.eval({"M": m, "N": n}) == brute

    def test_a2v_su_domain(self):
        c = count_nest(
            [("k", 0, N - 1), ("j", Sym("k") + 1, N - 1), ("i", Sym("k") + 1, M - 1)]
        )
        for m, n in [(5, 3), (9, 6), (12, 4)]:
            brute = sum(
                1
                for kk in range(n)
                for j in range(kk + 1, n)
                for i in range(kk + 1, m)
            )
            assert c.eval({"M": m, "N": n}) == brute

    def test_empty_nest_is_one(self):
        assert count_nest([]) == Const(1)
