"""Shared fixtures: small kernel parameterizations and derivation caches.

Derivations and CDAG builds are pure functions of (kernel, params); caching
them at session scope keeps the suite fast without coupling tests.
"""

from __future__ import annotations

import pytest

from repro import obs
from repro.bounds import derive
from repro.cdag import build_cdag
from repro.ir import Tracer
from repro.kernels import get_kernel

#: small parameter sets used across structural tests
SMALL_PARAMS = {
    "mgs": {"M": 5, "N": 4},
    "qr_a2v": {"M": 6, "N": 4},
    "qr_v2q": {"M": 6, "N": 4},
    "gebd2": {"M": 7, "N": 5},
    "gehd2": {"N": 7},
    "matmul": {"NI": 4, "NJ": 4, "NK": 4},
    "cholesky": {"N": 5},
    "syrk": {"N": 4, "KP": 3},
}

#: slightly larger sets for numeric validation
NUMERIC_PARAMS = {
    "mgs": {"M": 10, "N": 7},
    "qr_a2v": {"M": 11, "N": 6},
    "qr_v2q": {"M": 11, "N": 6},
    "gebd2": {"M": 11, "N": 7},
    "gehd2": {"N": 10},
    "matmul": {"NI": 7, "NJ": 6, "NK": 5},
    "cholesky": {"N": 9},
    "syrk": {"N": 7, "KP": 5},
}

_derivation_cache: dict = {}
_cdag_cache: dict = {}
_trace_cache: dict = {}


def derivation_for(name: str):
    if name not in _derivation_cache:
        _derivation_cache[name] = derive(get_kernel(name))
    return _derivation_cache[name]


def cdag_for(name: str, params: dict | None = None):
    params = params or SMALL_PARAMS[name]
    key = (name, tuple(sorted(params.items())))
    if key not in _cdag_cache:
        _cdag_cache[key] = build_cdag(get_kernel(name).program, params)
    return _cdag_cache[key]


def trace_for(name: str, params: dict | None = None) -> Tracer:
    params = params or SMALL_PARAMS[name]
    key = (name, tuple(sorted(params.items())))
    if key not in _trace_cache:
        t = Tracer()
        get_kernel(name).program.runner(dict(params), t)
        _trace_cache[key] = t
    return _trace_cache[key]


@pytest.fixture(autouse=True)
def _obs_clean_slate():
    """Instrumentation is process-global; a test that enables it (or leaks a
    counter) must not contaminate its neighbours.  Disable + reset after
    every test unconditionally."""
    yield
    obs.disable()
    obs.reset()


@pytest.fixture
def small_params():
    return SMALL_PARAMS
