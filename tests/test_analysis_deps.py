"""Tests for repro.analysis.deps: dependence polyhedra and legality.

Five layers of coverage:

* **construction** — dependence polyhedra built from tiny compiled sources
  have the right kinds, branches and symbolic distance signs; parallel
  loops produce no live self-dependence.
* **schedule legality** — :func:`check_schedule` accepts the identity and
  legal blocked schedules and rejects reversed loops with a concrete A009
  witness; :func:`check_order` replays explicit instance orders.
* **tiled algorithms** — ``tiled_mgs``'s published schedule spec is legal
  symbolically; swapping its two phases (internal factorization before the
  past reflections) must trip A009.  ``tiled_a2v`` has no closed-form
  schedule and is checked through the traced-order fallback.
* **differential** — symbolic and enumerative answers agree on every
  corpus file and figure source (no A012 anywhere); a deliberately broken
  emptiness oracle *must* force A012, pinning that the self-check is live.
* **CLI** — ``--select`` / ``--ignore`` diagnostic-code filters and the
  ``lint tiled`` target.
"""

from __future__ import annotations

import json
import pathlib

import pytest

from repro.analysis import check_source, parse_directives
from repro.analysis.deps import (
    SchedulePiece,
    build_dependences,
    check_order,
    check_schedule,
    check_tiled_legality,
    pass_deps,
)
from repro.cli import main
from repro.frontend import compile_source
from repro.frontend.sources import FIGURE_SHAPE_EXPRS, FIGURE_SOURCES
from repro.kernels import KERNELS, PAPER_KERNELS, get_tiled
from repro.polyhedral.iset import ISet

CORPUS = pathlib.Path(__file__).parent / "lint_corpus"

PREFIX_SUM = """
for (i = 1; i < N; i += 1)
  S: A[i] = A[i] + A[i - 1];
"""

COPY = """
for (i = 0; i < N; i += 1)
  S: B[i] = A[i];
"""


@pytest.fixture(scope="module")
def prefix_prog():
    prog, _ = compile_source(PREFIX_SUM)
    return prog


class TestBuildDependences:
    def test_prefix_sum_carries_a_flow_dep(self, prefix_prog):
        deps = build_dependences(prefix_prog)
        live = [d for d in deps if d.exists()]
        assert len(live) == 1
        (d,) = live
        assert (d.kind, d.src, d.tgt, d.array) == ("flow", "S", "S", "A")
        # the A[i-1] read of iteration i+1 sees the A[i] write: distance +1
        assert d.distance_signs() == ("+",)
        # dims are the renamed-apart source dims then target dims
        assert d.dims == ("i__s", "i__t")
        assert d.src_dims == d.tgt_dims == ("i",)

    def test_refuted_branches_are_kept_for_the_differential(self, prefix_prog):
        deps = build_dependences(prefix_prog)
        # the same-cell A[i]->A[i] pairs are FM-refuted, not dropped
        assert any(d.pruned for d in deps)
        for d in deps:
            if not d.exists():
                assert not d.branches and d.pruned

    def test_parallel_copy_has_no_live_dependence(self):
        prog, _ = compile_source(COPY)
        assert not any(d.exists() for d in build_dependences(prog))

    def test_mgs_summary_counts(self):
        deps = build_dependences(KERNELS["mgs"].program)
        live = [d for d in deps if d.exists()]
        kinds = {k: sum(1 for d in live if d.kind == k) for k in
                 ("flow", "anti", "output")}
        # pinned against the golden lint A011 summary
        assert kinds == {"flow": 15, "anti": 7, "output": 7}


class TestCheckSchedule:
    def test_identity_is_legal(self, prefix_prog):
        assert check_schedule(prefix_prog, {"S": (0, "i", 0)}) == []

    def test_reversed_loop_is_a009_with_concrete_witness(self, prefix_prog):
        diags = check_schedule(prefix_prog, {"S": (0, "-i", 0)})
        assert [d.code for d in diags] == ["A009"]
        (d,) = diags
        assert d.severity == "error"
        # the witness names a concrete violated instance pair and the cell
        assert "S(i=1) -> S(i=2)" in d.message
        assert "on A[1]" in d.message

    def test_legal_blocked_schedule(self, prefix_prog):
        # ascending blocks, ascending within the block: still the original
        # order, expressed through a floor-div aux dim
        assert check_schedule(prefix_prog, {"S": ("i/2", 0, "i", 0)}) == []

    def test_reversed_within_block_is_a009(self, prefix_prog):
        diags = check_schedule(prefix_prog, {"S": ("i/2", 0, "-i", 0)})
        assert [d.code for d in diags] == ["A009"]

    def test_statements_absent_from_the_spec_keep_their_schedule(self):
        # swapping only the textual order of two dependent statements
        src = """
for (i = 0; i < N; i += 1)
  Si: A[i] = 1.0;
for (i = 0; i < N; i += 1)
  S: B[i] = A[i];
"""
        prog, _ = compile_source(src)
        # hoist the consumer before the producer; Si keeps its schedule
        diags = check_schedule(prog, {"S": (0, "i", 0)})
        assert [d.code for d in diags] == ["A009"]


class TestCheckOrder:
    def test_program_order_is_legal(self, prefix_prog):
        order = [("S", (i,)) for i in range(1, 7)]
        assert check_order(prefix_prog, order, {"N": 7}) == []

    def test_reversed_order_violates_every_pair(self, prefix_prog):
        order = [("S", (i,)) for i in reversed(range(1, 7))]
        viol = check_order(prefix_prog, order, {"N": 7})
        assert len(viol) == 5  # each consecutive (i, i+1) flow pair
        assert all(v.dep.kind == "flow" for v in viol)

    def test_limit_stops_the_scan_early(self, prefix_prog):
        order = [("S", (i,)) for i in reversed(range(1, 7))]
        viol = check_order(prefix_prog, order, {"N": 7}, limit=1)
        assert len(viol) == 1
        assert viol[0].src_point[0] < viol[0].tgt_point[0]


class TestTiledLegality:
    def test_tiled_mgs_spec_is_symbolically_legal(self):
        diags, mode = check_tiled_legality(get_tiled("tiled_mgs"), 2)
        assert mode == "symbolic"
        assert diags == []

    def test_phase_swapped_tiled_mgs_trips_a009(self):
        # run the internal factorization (phase 1) before the past
        # reflections (phase 0) within each block: the block reads columns
        # the deferred updates have not touched yet
        alg = get_tiled("tiled_mgs")
        spec = dict(alg.schedule_spec(2))
        for name in ("Sr0", "SR", "SU"):
            swapped = []
            for p in spec[name]:
                e = list(p.entries)
                assert e[1] in (0, 1)
                e[1] = 1 - e[1]
                swapped.append(
                    SchedulePiece(tuple(e), guards=p.guards, divs=p.divs)
                )
            spec[name] = tuple(swapped)
        diags = check_schedule(KERNELS[alg.base].program, spec)
        assert diags and {d.code for d in diags} == {"A009"}
        assert any("flow dependence" in d.message for d in diags)

    def test_tiled_a2v_falls_back_to_traced_order(self):
        diags, mode = check_tiled_legality(get_tiled("tiled_a2v"), 2)
        assert mode == "traced"
        assert diags == []


class TestDifferential:
    """The A012 self-check: symbolic == enumerative, and the check is live."""

    @pytest.mark.parametrize(
        "path", sorted(CORPUS.glob("*.c")), ids=lambda p: p.stem
    )
    def test_corpus_never_disagrees(self, path):
        src = path.read_text()
        dirs = parse_directives(src)
        report, _ = check_source(
            src, name=path.stem, shapes=dirs.shapes, dominant=dirs.dominant,
            schedule=dirs.schedule,
        )
        assert not any(d.code == "A012" for d in report.diagnostics)

    @pytest.mark.parametrize("name", PAPER_KERNELS)
    def test_figure_sources_never_disagree(self, name):
        k = KERNELS[name]
        report, _ = check_source(
            FIGURE_SOURCES[name], name=name, params=dict(k.default_params),
            shapes=FIGURE_SHAPE_EXPRS.get(name), dominant=k.dominant,
        )
        assert not any(d.code == "A012" for d in report.diagnostics)

    def test_broken_emptiness_oracle_forces_a012(self, monkeypatch):
        # lie that every set is empty: the enumerative replay of the
        # wrongly-pruned flow branch must catch the disagreement
        prog, _ = compile_source(PREFIX_SUM)

        class Ctx:
            pass

        ctx = Ctx()
        ctx.program = prog
        ctx.params = {"N": 6}
        ctx.shapes = {}
        monkeypatch.setattr(ISet, "definitely_empty", lambda self: True)
        diags = pass_deps(ctx)
        a012 = [d for d in diags if d.code == "A012"]
        assert a012, "the differential self-check did not fire"
        assert all(d.severity == "error" for d in a012)
        assert "analyzer bug" in a012[0].hint


class TestLintCodeFilters:
    def test_select_keeps_only_the_named_codes(self, capsys, tmp_path):
        out = tmp_path / "r.json"
        rc = main(["lint", "mgs", "--select", "A011", "--json", str(out)])
        capsys.readouterr()
        assert rc == 0
        doc = json.loads(out.read_text())
        codes = {d["code"] for d in doc["diagnostics"]}
        assert codes == {"A011"}

    def test_ignore_drops_the_named_codes(self, capsys):
        # the a006 corpus file exits 1 on its warning; ignoring A006
        # leaves nothing gating
        target = str(CORPUS / "a006_dead_code.c")
        assert main(["lint", target]) == 1
        capsys.readouterr()
        assert main(["lint", target, "--ignore", "A006"]) == 0
        capsys.readouterr()

    def test_select_and_ignore_compose(self, capsys):
        target = str(CORPUS / "a009_illegal_interchange.c")
        assert main(["lint", target, "--select", "A009"]) == 2
        capsys.readouterr()
        assert main(["lint", target, "--select", "A009",
                     "--ignore", "A009"]) == 0
        capsys.readouterr()

    def test_unknown_code_is_a_clean_usage_error(self, capsys):
        with pytest.raises(SystemExit) as exc_info:
            main(["lint", "mgs", "--select", "A999"])
        assert exc_info.value.code == 2
        err = capsys.readouterr().err
        assert "unknown diagnostic code" in err
        assert "A001" in err  # the error lists the valid catalogue

    def test_comma_separated_codes(self, capsys, tmp_path):
        out = tmp_path / "r.json"
        rc = main([
            "lint", str(CORPUS / "a009_illegal_interchange.c"),
            "--select", "A009,A011", "--json", str(out),
        ])
        capsys.readouterr()
        assert rc == 2
        codes = {d["code"] for d in json.loads(out.read_text())["diagnostics"]}
        assert codes <= {"A009", "A011"} and "A009" in codes
