"""Tests for dependence-path projection derivation (the §4 projections)."""

from __future__ import annotations

import pytest

from repro.bounds import derive_projections
from repro.kernels import KERNELS
from tests.conftest import SMALL_PARAMS

#: the projections the paper's proofs use, per kernel (as dim-sets)
EXPECTED = {
    "mgs": {frozenset("ij"), frozenset("ik"), frozenset("jk")},
    "qr_a2v": {frozenset("ij"), frozenset("ik"), frozenset("jk")},
    "qr_v2q": {frozenset("ij"), frozenset("ik"), frozenset("jk")},
    "gebd2": {frozenset("ij"), frozenset("ik"), frozenset("jk")},
    "gehd2": {frozenset("ik"), frozenset("ij"), frozenset("jk")},
    "matmul": {frozenset("ik"), frozenset("jk"), frozenset("ij")},
}


class TestDerivedProjections:
    @pytest.mark.parametrize("name", sorted(EXPECTED))
    def test_matches_paper(self, name):
        kern = KERNELS[name]
        ps = derive_projections(kern.program, kern.dominant, SMALL_PARAMS[name])
        assert {p.dims for p in ps} == EXPECTED[name]

    def test_mgs_annotations(self):
        """§4's running example: A -> phi_{i,j}, Q -> phi_{i,k}, R -> phi_{k,j}."""
        kern = KERNELS["mgs"]
        ps = {p.via: p for p in derive_projections(kern.program, "SU", SMALL_PARAMS["mgs"])}
        assert ps["A"].dims == frozenset("ij")
        assert ps["Q"].dims == frozenset("ik")
        assert ps["R"].dims == frozenset("jk")

    def test_workspace_versioning_collapses(self):
        """A2V's tau[j] workspace must project to (k, j) — the value class is
        the (k, j)-indexed chain origin Sw0, not the 1-D address space."""
        kern = KERNELS["qr_a2v"]
        ps = {p.via: p for p in derive_projections(kern.program, "SU", SMALL_PARAMS["qr_a2v"])}
        assert ps["tau"].dims == frozenset("jk")
        assert ps["tau"].origin == "Sw0"

    def test_self_chain_collapses_temporal_dim(self):
        """MGS's A[i][j] chain across k must project onto (i, j) only."""
        kern = KERNELS["mgs"]
        ps = {p.via: p for p in derive_projections(kern.program, "SU", SMALL_PARAMS["mgs"])}
        assert "k" not in ps["A"].dims
        assert ps["A"].origin == "_input:A"

    def test_two_statement_cycle_collapses(self):
        """GEBD2's A[i][j] alternates ScU/SrU across k; the chain must still
        trace to the input and give phi_{i,j}."""
        kern = KERNELS["gebd2"]
        ps = derive_projections(kern.program, "ScU", SMALL_PARAMS["gebd2"])
        a_projs = {p.dims for p in ps if p.via == "A"}
        assert frozenset("ij") in a_projs  # the update chain, k collapsed
        # and that chain alternates statements: its direct producer is SrU
        chain = next(p for p in ps if p.dims == frozenset("ij"))
        assert chain.producer == "SrU"
        assert chain.origin == "_input:A"

    def test_producers_distinct_for_disjointness(self):
        """Every paper kernel has pairwise-distinct direct producers, enabling
        the disjoint-inset constant refinement."""
        for name in EXPECTED:
            kern = KERNELS[name]
            ps = derive_projections(kern.program, kern.dominant, SMALL_PARAMS[name])
            producers = [p.producer for p in ps]
            assert len(set(producers)) == len(producers), (name, producers)

    def test_stable_across_params(self):
        """Projections are structural: two different small sizes agree."""
        kern = KERNELS["qr_a2v"]
        a = derive_projections(kern.program, "SU", {"M": 6, "N": 4})
        b = derive_projections(kern.program, "SU", {"M": 8, "N": 5})
        assert {p.dims for p in a} == {p.dims for p in b}

    def test_nondominant_statement(self):
        """Projections can be derived for any statement, e.g. MGS's SR."""
        kern = KERNELS["mgs"]
        ps = derive_projections(kern.program, "SR", SMALL_PARAMS["mgs"])
        assert {p.dims for p in ps} == {
            frozenset("ik"),
            frozenset("ij"),
            frozenset("jk"),
        }
