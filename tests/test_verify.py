"""Tests for the differential verification subsystem (repro.verify)."""

from __future__ import annotations

import json
import random

import pytest

from repro.bounds import derive
from repro.ir import validate_program
from repro.kernels import get_kernel
from repro.verify import (
    FUZZ_ORACLES,
    KERNEL_ORACLES,
    random_fuzz_program,
    run_verify,
    sample_cache_sizes,
    sample_params,
    shrink_params,
)
from repro.verify.oracles import Trial


class TestSampling:
    def test_mn_gap_preserved(self):
        rng = random.Random(7)
        for _ in range(50):
            p = sample_params({"M": 8, "N": 5}, rng)
            assert p["M"] - p["N"] >= 3
            assert p["N"] >= 2

    def test_other_params_jittered_independently(self):
        rng = random.Random(7)
        for _ in range(50):
            p = sample_params({"NI": 4, "NJ": 4, "NK": 4}, rng)
            assert set(p) == {"NI", "NJ", "NK"}
            assert all(2 <= v <= 9 for v in p.values())

    def test_cache_sizes_distinct_and_floored(self):
        rng = random.Random(3)
        for _ in range(20):
            sizes = sample_cache_sizes({"M": 9, "N": 5}, rng, count=3)
            assert len(sizes) == len(set(sizes)) == 3
            assert all(s >= 6 for s in sizes)
            assert sizes == sorted(sizes)

    def test_deterministic_under_seed(self):
        a = sample_params({"M": 8, "N": 5}, random.Random(11))
        b = sample_params({"M": 8, "N": 5}, random.Random(11))
        assert a == b


class TestFuzzer:
    @pytest.mark.parametrize("seed", range(8))
    def test_generated_program_well_formed(self, seed):
        fp = random_fuzz_program(seed)
        assert validate_program(fp.program) == []

    def test_deterministic(self):
        a = random_fuzz_program(42)
        b = random_fuzz_program(42)
        assert repr(a.program.statements) == repr(b.program.statements)
        assert a.kernel.dominant == b.kernel.dominant

    @pytest.mark.parametrize("seed", range(4))
    def test_replay_runner_matches_spec(self, seed):
        """The replay runner IS the spec, so the trace check must pass."""
        from repro.cdag import check_spec_matches_runner

        fp = random_fuzz_program(seed)
        params = fp.sample_params(random.Random(seed))
        ok, msg = check_spec_matches_runner(fp.program, params)
        assert ok, msg

    def test_loop_ranges_never_empty(self):
        """Closed-form counts assume non-empty ranges; enumeration agrees."""
        for seed in range(12):
            fp = random_fuzz_program(seed)
            params = {p: 3 for p in fp.program.params}
            for st in fp.program.statements:
                try:
                    formula = st.instance_count()
                except ValueError:
                    continue
                assert formula.eval(params) == st.domain().count(params) > 0


class TestShrink:
    def test_shrinks_to_boundary(self):
        shrunk, evals = shrink_params(
            {"M": 40, "N": 30}, lambda p: p["M"] >= 10, floors={"M": 2, "N": 2}
        )
        assert shrunk == {"M": 10, "N": 2}
        assert evals > 0

    def test_keeps_failing_point_when_nothing_shrinks(self):
        shrunk, _ = shrink_params(
            {"M": 2, "N": 2}, lambda p: True, floors={"M": 2, "N": 2}
        )
        assert shrunk == {"M": 2, "N": 2}

    def test_joint_constraint(self):
        shrunk, _ = shrink_params(
            {"A": 20, "B": 20}, lambda p: p["A"] + p["B"] >= 12
        )
        assert shrunk["A"] + shrunk["B"] == 12

    def test_respects_eval_budget(self):
        calls = []

        def fails(p):
            calls.append(1)
            return True

        shrink_params({"M": 1 << 30}, fails, max_evals=17)
        assert len(calls) <= 17


class TestTrialOracles:
    def test_all_kernel_oracles_pass_on_mgs(self):
        kernel = get_kernel("mgs")
        trial = Trial(
            kernel, {"M": 6, "N": 4}, [8, 16], random.Random(0),
            report=derive(kernel),
        )
        for oracle in KERNEL_ORACLES:
            out = oracle.run(trial)
            assert out.status in ("pass", "skip"), f"{oracle.name}: {out.detail}"

    def test_fuzz_oracles_never_fail_on_generator_output(self):
        for seed in range(6):
            fp = random_fuzz_program(seed)
            rng = random.Random(seed)
            params = fp.sample_params(rng)
            trial = Trial(fp.kernel, params, sample_cache_sizes(params, rng), rng)
            for oracle in FUZZ_ORACLES:
                out = oracle.run(trial)
                assert out.status in ("pass", "skip"), (
                    f"seed {seed} {oracle.name}: {out.detail}"
                )


class TestRunVerify:
    def test_smoke_single_kernel(self):
        rep = run_verify(["mgs"], [], trials=2, seed=0, fuzz_programs=0)
        assert rep.ok(), rep.summary()
        assert rep.outcomes
        assert "kernel/bound-le-pebble" in rep.tally()

    def test_accepts_kernel_objects(self):
        rep = run_verify(
            [get_kernel("syrk")], [], trials=1, seed=0, fuzz_programs=0
        )
        assert rep.ok(), rep.summary()
        assert rep.subjects == ["syrk"]

    def test_report_json_serialisable(self):
        rep = run_verify(["cholesky"], [], trials=1, seed=0, fuzz_programs=1)
        payload = json.loads(json.dumps(rep.to_dict()))
        assert payload["ok"] is True
        assert payload["trials"] == 1
        assert payload["failures"] == []

    def test_budget_exhaustion_flagged(self):
        rep = run_verify(trials=50, seed=0, budget_seconds=0.0)
        assert rep.budget_exhausted
        assert "partial" in rep.summary()

    def test_trials_reproducible(self):
        a = run_verify(["matmul"], [], trials=2, seed=5, fuzz_programs=0)
        b = run_verify(["matmul"], [], trials=2, seed=5, fuzz_programs=0)
        assert [o.context["params"] for o in a.outcomes] == [
            o.context["params"] for o in b.outcomes
        ]


class _InflatedReport:
    """A derivation report with the hourglass leading constant blown up —
    the planted bug the verify gate must catch."""

    def __init__(self, inner, factor):
        self._inner = inner
        self._factor = factor

    def __getattr__(self, name):
        return getattr(self._inner, name)

    def all_bounds(self):
        import dataclasses

        return [
            dataclasses.replace(b, coeff=b.coeff * self._factor)
            if "hourglass" in b.method
            else b
            for b in self._inner.all_bounds()
        ]

    def best(self, params):
        best_b, best_v = None, float("-inf")
        for b in self.all_bounds():
            try:
                v = b.evaluate(params)
            except (ZeroDivisionError, KeyError):
                continue
            if v > best_v:
                best_b, best_v = b, v
        if best_b is None:
            raise ValueError("no bound evaluable")
        return best_b, max(best_v, 0.0)


class TestPlantedBug:
    @pytest.mark.filterwarnings("ignore::RuntimeWarning")
    def test_mutated_hourglass_constant_caught_and_shrunk(self):
        """Demonstration from the issue: corrupt the hourglass constant by
        x50 and the soundness oracle must fail with a shrunk, re-checkable
        counterexample."""

        def bad_derive(kernel):
            return _InflatedReport(derive(kernel), 50.0)

        rep = run_verify(
            ["mgs"], [], trials=3, seed=0, fuzz_programs=0, derive_fn=bad_derive
        )
        assert not rep.ok()
        failures = [f for f in rep.failures if f.oracle == "bound-le-pebble"]
        assert failures, rep.summary()
        f = failures[0]
        assert "hourglass" in f.detail
        # the counterexample was shrunk and stayed within the original point
        assert f.shrunk_params is not None
        assert all(f.shrunk_params[k] <= f.params[k] for k in f.params)
        assert f.shrink_evals > 0
        # the shrunk point still reproduces the violation
        kernel = get_kernel("mgs")
        trial = Trial(
            kernel,
            f.shrunk_params,
            f.s_values,
            random.Random(0),
            report=bad_derive(kernel),
        )
        out = next(o for o in KERNEL_ORACLES if o.name == "bound-le-pebble").run(
            trial
        )
        assert out.status == "fail"
        # and the summary names it
        assert "shrunk" in rep.summary()

    def test_clean_derivation_passes_same_trials(self):
        rep = run_verify(["mgs"], [], trials=3, seed=0, fuzz_programs=0)
        assert rep.ok(), rep.summary()
