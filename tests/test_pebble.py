"""Tests for the red-white pebble game and eviction policies."""

from __future__ import annotations

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.cdag import CDAG, INPUT
from repro.pebble import PebbleGameError, play_schedule
from tests.conftest import SMALL_PARAMS, cdag_for, trace_for


def chain(n: int) -> tuple[CDAG, list]:
    g = CDAG()
    g.add_edge((INPUT, ("A", (0,))), ("s", (0,)))
    for x in range(n - 1):
        g.add_edge(("s", (x,)), ("s", (x + 1,)))
    return g, [("s", (x,)) for x in range(n)]


def fanout(width: int) -> tuple[CDAG, list]:
    """One input broadcast to `width` independent consumers."""
    g = CDAG()
    src = (INPUT, ("A", (0,)))
    sched = []
    for x in range(width):
        g.add_edge(src, ("c", (x,)))
        sched.append(("c", (x,)))
    return g, sched


class TestGameRules:
    def test_chain_needs_one_load(self):
        g, sched = chain(10)
        res = play_schedule(g, sched, s=2)
        assert res.loads == 1  # only the input
        assert res.computes == 10

    def test_fanout_reuses_red_input(self):
        g, sched = fanout(8)
        res = play_schedule(g, sched, s=2)
        assert res.loads == 1  # input loaded once, pinned by reuse

    def test_invalid_schedule_rejected(self):
        g, sched = chain(3)
        with pytest.raises(PebbleGameError):
            play_schedule(g, list(reversed(sched)), s=4)

    def test_s_too_small_for_node(self):
        g = CDAG()
        for x in range(3):
            g.add_edge((INPUT, ("A", (x,))), ("s", (0,)))
        with pytest.raises(PebbleGameError):
            play_schedule(g, [("s", (0,))], s=3)  # 3 operands + itself > 3

    def test_s_zero_rejected(self):
        g, sched = chain(2)
        with pytest.raises(PebbleGameError):
            play_schedule(g, sched, s=0)

    def test_unknown_policy(self):
        g, sched = chain(2)
        with pytest.raises(PebbleGameError):
            play_schedule(g, sched, s=2, policy="zig")

    def test_max_red_respects_budget(self):
        g = cdag_for("mgs")
        t = trace_for("mgs")
        for s in (4, 8):
            res = play_schedule(g, t.schedule, s, "lru")
            assert res.max_red <= s

    def test_spill_reload_counted(self):
        """Capacity 2 on a graph needing 3 live values forces reloads."""
        g = CDAG()
        # two inputs both used at the end after a long detour
        a, b = (INPUT, ("A", (0,))), (INPUT, ("B", (0,)))
        g.add_edge(a, ("x", (0,)))
        g.add_edge(("x", (0,)), ("x", (1,)))
        g.add_edge(b, ("x", (1,)))
        g.add_edge(a, ("x", (2,)))
        g.add_edge(("x", (1,)), ("x", (2,)))
        sched = [("x", (0,)), ("x", (1,)), ("x", (2,))]
        res = play_schedule(g, sched, s=3)
        assert res.loads >= 3  # a, b, and a again (a evicted at x1)

    def test_two_operands_need_s_three(self):
        """No pebble sliding: computing a 2-operand node needs S >= 3."""
        g = CDAG()
        g.add_edge((INPUT, ("A", (0,))), ("s", (0,)))
        g.add_edge((INPUT, ("B", (0,))), ("s", (0,)))
        with pytest.raises(PebbleGameError):
            play_schedule(g, [("s", (0,))], s=2)
        assert play_schedule(g, [("s", (0,))], s=3).loads == 2


class TestPolicies:
    @pytest.mark.parametrize("name", ["mgs", "qr_a2v", "gehd2"])
    def test_belady_never_worse_than_lru(self, name):
        g = cdag_for(name)
        t = trace_for(name)
        for s in (6, 12, 24):
            lru = play_schedule(g, t.schedule, s, "lru").loads
            bel = play_schedule(g, t.schedule, s, "belady").loads
            assert bel <= lru

    @pytest.mark.parametrize("name", sorted(SMALL_PARAMS))
    def test_loads_monotone_in_s(self, name):
        """Belady loads must not increase with a larger cache."""
        g = cdag_for(name)
        t = trace_for(name)
        prev = None
        for s in (4, 8, 16, 32, 64):
            cur = play_schedule(g, t.schedule, s, "belady").loads
            if prev is not None:
                assert cur <= prev
            prev = cur

    def test_loads_lower_bounded_by_inputs_when_cache_large(self):
        """With a huge cache, loads = number of input values used."""
        g = cdag_for("mgs")
        t = trace_for("mgs")
        res = play_schedule(g, t.schedule, s=10_000, policy="lru")
        assert res.loads == len(g.input_nodes())
        assert res.spills == 0

    def test_tiled_schedule_beats_naive_midrange(self):
        """The whole point of tiling: fewer loads at moderate S.  The
        comparison uses Belady eviction, matching the appendix's explicit
        load/discard management; the block must fit: (M+1)*B < S."""
        from repro.kernels import TILED_MGS

        params = {"M": 10, "N": 8}
        g = cdag_for("mgs", params)
        naive = trace_for("mgs", params)
        tiled = TILED_MGS.run_traced({**params, "B": 3})
        for s in (44, 48):
            n_loads = play_schedule(g, naive.schedule, s, "belady").loads
            t_loads = play_schedule(g, tiled.schedule, s, "belady").loads
            assert t_loads < n_loads


@given(st.integers(2, 30), st.integers(1, 8))
@settings(max_examples=30, deadline=None)
def test_chain_property(n, s):
    g, sched = chain(n)
    res = play_schedule(g, sched, s=max(s, 2))
    assert res.loads == 1
    assert res.computes == n
