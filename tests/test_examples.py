"""Smoke tests: every example script runs end-to-end and exits cleanly.

Run as subprocesses so import side effects, argument parsing and the
examples' own internal assertions are exercised exactly as a user would
hit them.
"""

from __future__ import annotations

import pathlib
import subprocess
import sys

import pytest

EXAMPLES = pathlib.Path(__file__).resolve().parent.parent / "examples"

#: (script, argv) — arguments keep runtimes small
CASES = [
    ("quickstart.py", ["matmul"]),
    ("quickstart.py", ["mgs"]),
    ("custom_kernel.py", []),
    ("validate_mgs.py", ["12", "8"]),
    ("tiling_explorer.py", ["14", "10", "96"]),
    ("paper_tables.py", []),
    ("parse_figure.py", ["mgs"]),
    ("parse_figure.py", ["gebd2"]),
    ("exact_game.py", []),
    ("bounds_vs_measured.py", ["16"]),
    ("proof_walkthrough.py", []),
]


@pytest.mark.parametrize("script,argv", CASES, ids=[f"{s}-{'-'.join(a) or 'default'}" for s, a in CASES])
def test_example_runs(script, argv):
    proc = subprocess.run(
        [sys.executable, str(EXAMPLES / script), *argv],
        capture_output=True,
        text=True,
        timeout=300,
    )
    assert proc.returncode == 0, (
        f"{script} {argv} failed:\n{proc.stdout[-1500:]}\n{proc.stderr[-1500:]}"
    )
    assert proc.stdout.strip(), f"{script} produced no output"


def test_reproduce_script(tmp_path):
    out = tmp_path / "RESULTS.md"
    proc = subprocess.run(
        [
            sys.executable,
            str(EXAMPLES.parent / "scripts" / "reproduce.py"),
            "--out",
            str(out),
        ],
        capture_output=True,
        text=True,
        timeout=600,
    )
    assert proc.returncode == 0, proc.stderr[-1500:]
    text = out.read_text()
    for section in ("Figure 4", "Figure 5", "Theorem 5", "soundness"):
        assert section in text


def test_gen_api_docs_script(tmp_path):
    out = tmp_path / "API.md"
    proc = subprocess.run(
        [
            sys.executable,
            str(EXAMPLES.parent / "scripts" / "gen_api_docs.py"),
            "--out",
            str(out),
        ],
        capture_output=True,
        text=True,
        timeout=120,
    )
    assert proc.returncode == 0, proc.stderr[-1500:]
    text = out.read_text()
    assert "repro.bounds" in text and "derive" in text
