"""Tests for the performance-history subsystem (:mod:`repro.obs.bench`,
:mod:`repro.obs.history`, :mod:`repro.obs.dashboard`, ``iolb bench``).

The runner and the regression detector are exercised with tiny synthetic
benchmarks (instant, deterministic); the CLI round-trips run one real
benchmark from the default suite at minimal repeats.  Timing *values* are
never asserted — only statistics shape, schema exactness, and the
regression verdict under controlled perturbation of a stored baseline
(the acceptance criterion: an injected slowdown exits nonzero, a clean
re-run exits zero).
"""

from __future__ import annotations

import json
import re

import pytest

from repro import obs
from repro.obs import bench as obs_bench
from repro.obs import history as obs_history
from repro.obs.bench import Benchmark, TimingStats, bench_record, run_suite
from repro.obs.dashboard import render_dashboard
from repro.obs.history import (
    BENCH_SCHEMA,
    append_entry,
    check_bench_schema,
    compare_records,
    load_history,
    load_record,
    resolve_baseline,
)


def _toy_suite():
    """Two instant benchmarks; one records a deterministic counter + span."""

    def counted(_payload):
        with obs.span("toy.phase"):
            obs.add("toy.work", 42)

    return [
        Benchmark("toy.counted", counted, description="adds a counter"),
        Benchmark("toy.plain", lambda _p: sum(range(100))),
    ]


def _toy_record(**meta) -> dict:
    results = run_suite(_toy_suite(), repeats=3, warmup=0)
    return bench_record(results, repeats=3, warmup=0, **meta)


class TestRunner:
    def test_timing_stats_min_median_mad(self):
        st = TimingStats.from_samples([3.0, 1.0, 2.0])
        assert st.min == 1.0
        assert st.median == 2.0
        assert st.mad == 1.0
        assert st.samples == (3.0, 1.0, 2.0)

    def test_run_benchmark_counts_and_cleans_registry(self):
        (res, _) = run_suite(_toy_suite(), repeats=2, warmup=1)
        assert res.name == "toy.counted"
        assert res.repeats == 2
        assert len(res.wall_s.samples) == 2 and len(res.cpu_s.samples) == 2
        assert res.wall_s.min >= 0 and res.wall_s.mad >= 0
        # counters come from ONE instrumented pass, not repeats + warmup
        assert res.counters == {"toy.work": 42}
        assert "toy.phase" in res.spans
        assert res.spans["toy.phase"]["count"] == 1
        # the runner leaves the global registry disabled and empty
        assert not obs.enabled()
        assert obs.spans() == [] and obs.counters() == {}

    def test_setup_is_not_timed_payload_is_passed(self):
        seen = []
        b = Benchmark("toy.setup", lambda p: seen.append(p), setup=lambda: "payload")
        res = obs_bench.run_benchmark(b, repeats=2, warmup=1)
        # setup ran once; fn saw its payload on warmup(1) + repeats(2) +
        # the instrumented profiling pass(1)
        assert seen == ["payload"] * 4
        assert res.counters == {}

    def test_repeats_must_be_positive(self):
        with pytest.raises(ValueError, match="repeats"):
            obs_bench.run_benchmark(_toy_suite()[0], repeats=0)

    def test_select_benchmarks_by_name_and_group(self):
        suite = obs_bench.default_suite()
        names = [b.name for b in suite]
        assert names == [
            "derive.mgs",
            "derive.qr_a2v",
            "derive.qr_v2q",
            "derive.gebd2",
            "derive.gehd2",
            "simulate.belady",
            "simulate.lru",
            "tune.tiled_mgs",
            "verify.smoke",
            "lint.kernels",
            "lint.deps",
            "serve.hit_burst",
            "serve.compute_burst",
            "explore.render",
        ]
        assert [b.name for b in obs_bench.select_benchmarks(suite, ["derive"])] == names[:5]
        assert [b.name for b in obs_bench.select_benchmarks(suite, ["verify.smoke"])] == [
            "verify.smoke"
        ]
        with pytest.raises(ValueError, match="unknown benchmark"):
            obs_bench.select_benchmarks(suite, ["nope"])


class TestRecordAndStore:
    def test_record_schema(self):
        rec = _toy_record()
        check_bench_schema(rec)
        assert rec["schema"] == BENCH_SCHEMA == "iolb-bench/1"
        assert rec["suite"] == "default"
        assert re.fullmatch(r"\d{4}-\d{2}-\d{2}T\d{2}:\d{2}:\d{2}Z", rec["created"])
        assert rec["config"] == {"repeats": 3, "warmup": 0}
        assert set(rec["env"]) >= {"python", "platform", "machine", "cpu_count", "git_sha"}
        row = rec["results"]["toy.counted"]
        assert set(row) == {"repeats", "wall_s", "cpu_s", "counters", "spans"}
        for key in ("wall_s", "cpu_s"):
            assert set(row[key]) == {"min", "median", "mad", "samples"}
        assert row["counters"] == {"toy.work": 42}
        json.dumps(rec)

    def test_check_bench_schema_rejects_junk(self):
        with pytest.raises(ValueError, match="iolb-bench/1"):
            check_bench_schema({"schema": "other"})
        with pytest.raises(ValueError, match="results"):
            check_bench_schema({"schema": BENCH_SCHEMA})
        with pytest.raises(ValueError, match="wall_s"):
            check_bench_schema({"schema": BENCH_SCHEMA, "results": {"x": {}}})

    def test_append_and_load_history_chronological(self, tmp_path):
        d = tmp_path / "hist"
        rec1, rec2 = _toy_record(), _toy_record()
        rec1["created"] = "2026-08-01T00:00:00Z"
        rec2["created"] = "2026-08-02T00:00:00Z"
        p2 = append_entry(rec2, d)  # append out of order on purpose
        p1 = append_entry(rec1, d)
        assert p1.parent == d and p1.suffix == ".json"
        hist = load_history(d)
        assert [r["created"] for r in hist] == [
            "2026-08-01T00:00:00Z",
            "2026-08-02T00:00:00Z",
        ]
        assert load_record(p2)["created"] == rec2["created"]

    def test_append_never_clobbers(self, tmp_path):
        rec = _toy_record()
        a = append_entry(rec, tmp_path)
        b = append_entry(rec, tmp_path)
        assert a != b and a.exists() and b.exists()

    def test_history_filters_by_suite_and_skips_junk(self, tmp_path):
        rec = _toy_record()
        other = _toy_record(suite="obs-overhead")
        append_entry(rec, tmp_path)
        append_entry(other, tmp_path)
        (tmp_path / "notes.json").write_text("{\"schema\": \"nope\"}")
        with pytest.warns(UserWarning, match="skipping unparseable"):
            assert len(load_history(tmp_path)) == 2
        with pytest.warns(UserWarning, match="notes.json"):
            rows = load_history(tmp_path, suite="default")
        assert [r["suite"] for r in rows] == ["default"]

    def test_resolve_baseline_file_or_latest_of_suite(self, tmp_path):
        rec1, rec2 = _toy_record(), _toy_record(suite="obs-overhead")
        rec1["created"] = "2026-08-01T00:00:00Z"
        rec2["created"] = "2026-08-05T00:00:00Z"  # newer, but the wrong suite
        p1 = append_entry(rec1, tmp_path)
        append_entry(rec2, tmp_path)
        assert resolve_baseline(p1)["created"] == rec1["created"]
        assert resolve_baseline(tmp_path, suite="default")["created"] == rec1["created"]
        with pytest.raises(ValueError, match="no .* history entries"):
            resolve_baseline(tmp_path, suite="missing-suite")

    def test_committed_obs_overhead_baseline_loads(self):
        """The migrated overhead provenance record is valid history-store data
        and carries the budget the overhead bench reads."""
        from pathlib import Path

        path = (
            Path(__file__).resolve().parent.parent
            / "benchmarks"
            / "history"
            / "20260806T000000Z-obs-overhead.json"
        )
        rec = load_record(path)
        assert rec["suite"] == "obs-overhead"
        assert rec["meta"]["budget"]["disabled_ratio_max"] == 1.05
        assert "obs_overhead.pre_obs_baseline" in rec["results"]


class TestRegressionDetection:
    def _pair(self):
        base = _toy_record()
        cur = json.loads(json.dumps(base))  # deep copy
        return base, cur

    def test_identical_records_pass(self):
        base, cur = self._pair()
        rep = compare_records(base, cur, threshold_pct=10.0)
        assert rep.ok()
        assert rep.timings_compared
        assert "regression check: ok" in rep.summary()

    def test_injected_slowdown_regresses(self):
        base, cur = self._pair()
        for row in base["results"].values():
            for k in ("min", "median", "mad"):
                row["wall_s"][k] /= 1000.0
        rep = compare_records(base, cur, threshold_pct=50.0, mad_k=0.0)
        assert not rep.ok()
        names = {d.benchmark for d in rep.regressions()}
        assert names == {"toy.counted", "toy.plain"}
        assert "REGRESSED" in rep.summary()

    def test_mad_noise_floor_suppresses_jitter(self):
        """A large percentage move that sits inside k x MAD is noise, not a
        regression — the whole point of the robust floor."""
        base, cur = self._pair()
        row_b = base["results"]["toy.plain"]["wall_s"]
        row_c = cur["results"]["toy.plain"]["wall_s"]
        row_b.update(median=1e-6, mad=5e-6)
        row_c.update(median=2e-6, mad=5e-6)  # +100%, but well under 4*MAD
        rep = compare_records(base, cur, threshold_pct=20.0, mad_k=4.0)
        timing = [d for d in rep.deltas if d.benchmark == "toy.plain"]
        assert timing and not timing[0].regressed
        assert timing[0].note == "within noise floor"

    def test_counter_drift_flagged_separately_and_exactly(self):
        base, cur = self._pair()
        cur["results"]["toy.counted"]["counters"]["toy.work"] = 43
        rep = compare_records(base, cur, threshold_pct=1e9)
        assert not rep.ok()
        (drift,) = rep.regressions()
        assert drift.kind == "counter" and drift.metric == "toy.work"
        assert (drift.baseline, drift.current) == (42, 43)
        assert "work-counter drift" in rep.summary()

    def test_counter_appearing_or_vanishing_is_drift(self):
        base, cur = self._pair()
        cur["results"]["toy.plain"]["counters"]["brand.new"] = 1
        rep = compare_records(base, cur)
        assert [d.metric for d in rep.regressions()] == ["brand.new"]

    def test_cross_machine_records_compare_counters_only(self):
        base, cur = self._pair()
        base["env"]["platform"] = "Somewhere-Else-1.0"
        rep = compare_records(base, cur, threshold_pct=0.0, mad_k=0.0)
        assert not rep.timings_compared
        assert all(d.kind == "counter" for d in rep.deltas)
        assert any("environments differ" in n for n in rep.notes)
        assert rep.ok()

    def test_counters_only_flag(self):
        base, cur = self._pair()
        for row in base["results"].values():
            row["wall_s"]["median"] /= 1000.0
        rep = compare_records(base, cur, counters_only=True)
        assert rep.ok() and not rep.timings_compared

    def test_disjoint_suites_refuse_to_compare(self):
        base, _ = self._pair()
        other = {"schema": BENCH_SCHEMA, "results": {"x.y": {"wall_s": {"median": 1}}}}
        with pytest.raises(ValueError, match="share no benchmark"):
            compare_records(base, other)


class TestDashboard:
    def _history(self, n=3):
        hist = []
        for i in range(n):
            rec = _toy_record()
            rec["created"] = f"2026-08-0{i + 1}T00:00:00Z"
            rec["env"]["git_sha"] = f"sha{i}"
            for row in rec["results"].values():
                row["wall_s"]["median"] = 0.1 * (i + 1)
            hist.append(rec)
        return hist

    def test_dashboard_is_self_contained_with_sparkline_per_benchmark(self):
        html = render_dashboard(self._history())
        assert html.startswith("<!DOCTYPE html>")
        # one sparkline and one table per benchmark
        assert html.count('<svg class="spark"') == 2
        assert html.count('<polyline class="trend"') == 2
        assert html.count("<table>") == 2
        assert "toy.counted" in html and "toy.plain" in html
        # self-contained: no external scripts, stylesheets, images, or fetches
        assert "<script" not in html
        assert 'href="http' not in html and "src=" not in html
        # both entries' commit tags appear
        assert "sha0" in html and "sha2" in html

    def test_dashboard_marks_counter_drift(self):
        hist = self._history(2)
        hist[1]["results"]["toy.counted"]["counters"]["toy.work"] = 99
        html = render_dashboard(hist)
        assert ">drift<" in html

    def test_dashboard_handles_empty_and_single_entry(self):
        assert "(no bench history)" in render_dashboard([])
        html = render_dashboard(self._history(1))
        assert "first entry" in html and '<svg class="spark"' in html

    def test_dashboard_escapes_html(self):
        hist = self._history(1)
        hist[0]["env"]["platform"] = "<script>alert(1)</script>"
        assert "<script>" not in render_dashboard(hist)


class TestBenchCLI:
    """End-to-end over one real (cheap) benchmark from the default suite."""

    ARGS = ["bench", "derive.mgs", "--repeats", "2", "--warmup", "0"]

    def _run(self, extra, tmp_path, capsys):
        from repro.cli import main

        rc = main(self.ARGS + ["--history-dir", str(tmp_path / "hist")] + extra)
        cap = capsys.readouterr()
        return rc, cap

    def test_json_emits_schema_valid_record_with_spans_and_counters(
        self, tmp_path, capsys
    ):
        out = tmp_path / "rec.json"
        rc, cap = self._run(["--json", str(out), "--no-history"], tmp_path, capsys)
        assert rc == 0
        assert "iolb bench: 1 benchmark(s)" in cap.out
        rec = json.loads(out.read_text())
        check_bench_schema(rec)
        row = rec["results"]["derive.mgs"]
        # per-phase span breakdown from the PR-3 instrumentation
        assert any("bounds.hourglass" in p for p in row["spans"])
        assert any("polyhedral." in p for p in row["spans"])
        # deterministic work counters
        assert row["counters"]["polyhedral.fm_eliminations"] > 0
        assert row["counters"]["bounds.bounds_derived"] > 0

    def test_json_to_stdout_is_pure_json(self, tmp_path, capsys):
        # `--json -` must leave stdout machine-parseable: the human table
        # (and any --check summary) moves to stderr.
        rc, _ = self._run([], tmp_path, capsys)  # seed the history for --check
        assert rc == 0
        rc, cap = self._run(
            ["--json", "-", "--no-history", "--check", "--threshold", "100000"],
            tmp_path,
            capsys,
        )
        rec = json.loads(cap.out)
        check_bench_schema(rec)
        assert "iolb bench: 1 benchmark(s)" in cap.err
        assert "regression check" in cap.err

    def test_history_append_check_clean_then_injected_slowdown(
        self, tmp_path, capsys
    ):
        # first run seeds the history
        rc, _ = self._run([], tmp_path, capsys)
        assert rc == 0
        assert len(load_history(tmp_path / "hist")) == 1
        # clean re-run against that baseline passes (counters are exact; the
        # huge threshold keeps machine jitter out of this test's way)
        rc, cap = self._run(
            ["--check", "--no-history", "--threshold", "100000"], tmp_path, capsys
        )
        assert rc == 0
        assert "regression check: ok" in cap.out
        # perturb the stored baseline: pretend the past was 1000x faster
        (entry,) = (tmp_path / "hist").glob("*.json")
        rec = json.loads(entry.read_text())
        for row in rec["results"].values():
            for k in ("min", "median", "mad"):
                row["wall_s"][k] /= 1000.0
        entry.write_text(json.dumps(rec))
        rc, cap = self._run(
            ["--check", "--no-history", "--threshold", "50", "--mad-k", "0"],
            tmp_path,
            capsys,
        )
        assert rc == 1
        assert "REGRESSED" in cap.out

    def test_check_counters_only_gates_on_drift_not_time(self, tmp_path, capsys):
        rc, _ = self._run([], tmp_path, capsys)
        assert rc == 0
        (entry,) = (tmp_path / "hist").glob("*.json")
        rec = json.loads(entry.read_text())
        for row in rec["results"].values():
            row["wall_s"]["median"] /= 1000.0  # would regress on timing...
        entry.write_text(json.dumps(rec))
        rc, cap = self._run(
            ["--check", "--check-counters-only", "--no-history"], tmp_path, capsys
        )
        assert rc == 0  # ...but counters match exactly
        rec["results"]["derive.mgs"]["counters"]["polyhedral.fm_eliminations"] += 1
        entry.write_text(json.dumps(rec))
        rc, cap = self._run(
            ["--check", "--check-counters-only", "--no-history"], tmp_path, capsys
        )
        assert rc == 1
        assert "work-counter drift" in cap.out

    def test_report_writes_dashboard_and_snapshot_names_date(
        self, tmp_path, capsys, monkeypatch
    ):
        monkeypatch.chdir(tmp_path)
        out = tmp_path / "dash.html"
        rc, _ = self._run(["--report", str(out), "--snapshot"], tmp_path, capsys)
        assert rc == 0
        html = out.read_text()
        assert html.count('<svg class="spark"') == 1
        assert "derive.mgs" in html
        snaps = list(tmp_path.glob("BENCH_*.json"))
        assert len(snaps) == 1
        check_bench_schema(json.loads(snaps[0].read_text()))

    def test_unknown_benchmark_name_is_a_clean_error(self, capsys):
        from repro.cli import main

        with pytest.raises(SystemExit, match="unknown benchmark"):
            main(["bench", "no.such", "--no-history"])

    def test_check_with_empty_history_is_a_clean_error(self, tmp_path, capsys):
        from repro.cli import main

        with pytest.raises(SystemExit, match="no .* history"):
            main(
                self.ARGS
                + ["--history-dir", str(tmp_path / "empty"), "--check", "--no-history"]
            )
