"""Round-trip tests for the AST printer: parse(to_source(ast)) == ast
semantically (identical lowered dataflow), on figure sources and on
hypothesis-generated random programs."""

from __future__ import annotations

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.frontend import lower_program, parse, to_source
from repro.frontend.astnodes import (
    Assign,
    BinOp,
    Block,
    Call,
    Compare,
    For,
    Num,
    Ref,
    Ternary,
    UnOp,
    Var,
)
from repro.frontend.sources import FIGURE_SOURCES
from repro.ir import dataflow_trace

ROUNDTRIP_PARAMS = {
    "mgs": {"M": 4, "N": 3},
    "qr_a2v": {"M": 5, "N": 3},
    "qr_v2q": {"M": 5, "N": 3},
    "gehd2": {"N": 5},
    "gebd2": {"M": 5, "N": 4},
}


def _semantically_equal(src1: str, src2: str, params) -> bool:
    p1 = lower_program(parse(src1), "a")
    p2 = lower_program(parse(src2), "b")
    t1 = dataflow_trace(p1, params)
    t2 = dataflow_trace(p2, params)
    return t1.schedule == t2.schedule and t1.events == t2.events


class TestFigureRoundTrips:
    @pytest.mark.parametrize("name", sorted(FIGURE_SOURCES))
    def test_roundtrip(self, name):
        src = FIGURE_SOURCES[name]
        printed = to_source(parse(src))
        assert _semantically_equal(src, printed, ROUNDTRIP_PARAMS[name])

    def test_printed_source_is_stable(self):
        """print(parse(print(parse(src)))) is a fixed point."""
        src = FIGURE_SOURCES["mgs"]
        once = to_source(parse(src))
        twice = to_source(parse(once))
        assert once == twice


class TestExpressionPrinting:
    def _roundtrip_expr(self, src: str):
        full = f"x = {src};"
        printed = to_source(parse(full))
        # re-parse and print again: fixed point implies faithful structure
        assert to_source(parse(printed)) == printed
        return printed

    @pytest.mark.parametrize(
        "src",
        [
            "a + b * c",
            "(a + b) * c",
            "a - b - c",
            "a - (b - c)",
            "a / b / c",
            "a / (b * c)",
            "-a * b",
            "A[i + 1][2 * j]",
            "sqrt(a * a + b)",
            "(a > 0) ? (a + n) : (a - n)",
        ],
    )
    def test_expression_roundtrip(self, src):
        self._roundtrip_expr(src)

    def test_associativity_preserved(self):
        """a - (b - c) must not print as a - b - c: check numerically."""
        import numpy as np

        from repro.frontend import interpret

        src = "X: A[0] = 10.0 - (5.0 - 2.0);"
        printed = to_source(parse(src))
        ast = parse(printed)
        prog = lower_program(ast, "r")
        out = interpret(ast, prog, {"A": np.zeros(1)}, {})
        assert out["A"][0] == 7.0

    def test_ternary_as_operand_roundtrips(self):
        """Regression: a ternary used as a binary operand must reprint with
        its own parentheses or the reparse fails."""
        from repro.frontend.astnodes import (
            Assign,
            BinOp,
            Block,
            Compare,
            Num,
            Ref,
            Ternary,
            Var,
        )

        e = BinOp(
            "+",
            Num(1),
            Ternary(Compare(">", Ref("A", (Num(0),)), Num(0)), Num(1), Num(2)),
        )
        ast = Block([Assign(Ref("B", (Num(0),)), "", e, "X")])
        printed = to_source(ast)
        assert to_source(parse(printed)) == printed


# ---------------------------------------------------------------------------
# random program round-trips
# ---------------------------------------------------------------------------


@st.composite
def rand_exprs(draw, depth=0):
    if depth >= 3:
        return draw(
            st.sampled_from(
                [Num(1), Num(2.0), Var("N"), Ref("A", (Var("i"),))]
            )
        )
    kind = draw(st.integers(0, 5))
    if kind == 0:
        return Num(draw(st.integers(0, 9)))
    if kind == 1:
        return Ref("A", (Var("i"),))
    if kind == 2:
        op = draw(st.sampled_from("+-*/"))
        return BinOp(op, draw(rand_exprs(depth + 1)), draw(rand_exprs(depth + 1)))
    if kind == 3:
        return UnOp("-", draw(rand_exprs(depth + 1)))
    if kind == 4:
        return Call("sqrt", (draw(rand_exprs(depth + 1)),))
    return Ternary(
        Compare(">", Ref("A", (Var("i"),)), Num(0)),
        draw(rand_exprs(depth + 1)),
        draw(rand_exprs(depth + 1)),
    )


@st.composite
def rand_programs(draw):
    n_stmts = draw(st.integers(1, 3))
    body = []
    for idx in range(n_stmts):
        op = draw(st.sampled_from(["", "+", "*"]))
        body.append(
            Assign(Ref("B", (Var("i"),)), op, draw(rand_exprs()), label=f"S{idx}x")
        )
    return Block([For("i", Num(0), "<", Var("N"), 1, Block(body))])


@given(rand_programs())
@settings(max_examples=40, deadline=None)
def test_random_program_roundtrip(ast):
    printed = to_source(ast)
    reparsed = parse(printed)
    # structural fixed point
    assert to_source(reparsed) == printed
    # semantic: lowering both gives the same dataflow
    p1 = lower_program(ast, "a")
    p2 = lower_program(reparsed, "b")
    t1 = dataflow_trace(p1, {"N": 3})
    t2 = dataflow_trace(p2, {"N": 3})
    assert t1.events == t2.events
