"""Symbolic width replay in the certificate checker (above the enum cap).

Certificates whose domains exceed the 20 000-point enumeration cap used to
be skipped with a C042 warning; the checker now replays the claimed
instance count and slice widths *symbolically* — Faulhaber-summed closed
forms over the classified loop nest, refuted on a ×1/×2/×3 parameter
ladder.  Pinned here:

* an above-cap mgs certificate (93 600 instances at M=120, N=40) is
  accepted with ``domain-symbolic`` and ``widths-symbolic`` in the checks
  run and no C042 — the acceptance criterion for enumeration-free checking;
* forged instance counts and widths above the cap are *rejected* (C041 /
  C040), not skipped: the cap is no longer a soundness hole;
* domains outside the symbolic fragment degrade honestly to C051/C052
  warnings (gehd2's reduction bounds couple with the temporal dim);
* below the cap nothing changes — the numeric replay still runs.
"""

from __future__ import annotations

import copy

import pytest

from repro.cert import build_certificate, check_certificate
from repro.kernels import get_kernel
from tests.conftest import derivation_for


def _cert(name: str, params: dict) -> dict:
    kern = get_kernel(name)
    return build_certificate(derivation_for(name), kern.program, params)


@pytest.fixture(scope="module")
def big_mgs_cert():
    # SU domain ~ M*N^2/2 = 96 000 instances: far above ENUM_CAP
    return _cert("mgs", {"M": 120, "N": 40})


class TestAboveCapAcceptance:
    def test_symbolic_replay_accepts_the_honest_certificate(
        self, big_mgs_cert
    ):
        rep = check_certificate(big_mgs_cert)
        assert rep.ok(), rep.summary()
        assert "domain-symbolic" in rep.checks_run
        assert "widths-symbolic" in rep.checks_run
        # the cap-skip warning is gone: nothing was skipped
        assert not any(f.code == "C042" for f in rep.findings)
        assert not any(f.severity == "warning" for f in rep.findings)

    def test_numeric_replay_does_not_run_above_the_cap(self, big_mgs_cert):
        rep = check_certificate(big_mgs_cert)
        # the numeric width/split passes need enumerated points; above the
        # cap only their symbolic counterparts may appear
        assert "widths" not in rep.checks_run

    def test_below_cap_still_enumerates(self):
        rep = check_certificate(_cert("mgs", {"M": 12, "N": 6}))
        assert rep.ok(), rep.summary()
        assert "widths" in rep.checks_run
        assert "domain-symbolic" not in rep.checks_run
        assert "widths-symbolic" not in rep.checks_run


class TestAboveCapForgeries:
    """The cap is not a soundness hole: forgeries above it are rejected."""

    def test_forged_instance_count_is_c041(self, big_mgs_cert):
        bad = copy.deepcopy(big_mgs_cert)
        # claim M*N^2 instances instead of ~M*N^2/2
        bad["statement"]["instance_count"] = [[[["M", "1"], ["N", "2"]], "1"]]
        rep = check_certificate(bad)
        assert not rep.ok()
        assert any(f.code == "C041" for f in rep.findings)
        # the refutation names the Faulhaber-summed truth
        msg = next(f for f in rep.findings if f.code == "C041").message
        assert "Faulhaber" in msg

    def test_forged_width_is_c040(self, big_mgs_cert):
        bad = copy.deepcopy(big_mgs_cert)
        # claim every slice holds M*N reduction tuples (truth: M)
        bad["hourglass"]["width_min"] = [[[["M", "1"], ["N", "1"]], "1"]]
        rep = check_certificate(bad)
        assert not rep.ok()
        assert any(f.code == "C040" for f in rep.findings)

    def test_slack_width_is_undecided_not_refuted(self, big_mgs_cert):
        # claiming *less* than the true minimum width is sound for a lower
        # bound, so the ladder cannot refute it; the symbolic replay says
        # C051 undecided (the document-consistency pass still objects to
        # the bound mismatch, which is fine: nothing is silently accepted)
        bad = copy.deepcopy(big_mgs_cert)
        bad["hourglass"]["width_min"] = [[[["M", "1"]], "1/2"]]
        rep = check_certificate(bad)
        assert any(f.code == "C051" for f in rep.findings)
        assert not any(f.code == "C040" for f in rep.findings)


class TestOutsideTheFragment:
    def test_gehd2_widths_degrade_to_honest_warnings(self):
        # gehd2's reduction bounds couple with the temporal dim, so the
        # domain does not factorize: the count still replays symbolically,
        # the widths become C051 undecided and the split replay C052
        rep = check_certificate(_cert("gehd2", {"N": 60}))
        assert rep.ok(), rep.summary()
        assert "domain-symbolic" in rep.checks_run
        codes = {f.code for f in rep.findings}
        assert "C051" in codes and "C052" in codes
        assert "C042" not in codes
