"""Tests for hourglass detection (§3) and the tightened derivation (§4)."""

from __future__ import annotations

from fractions import Fraction

import pytest

from repro.bounds import (
    HourglassDetectionError,
    detect_hourglass,
    derive_projections,
    hourglass_bound,
    hourglass_bound_small_cache,
    hourglass_bound_with_split,
    verify_hourglass_paths,
)
from repro.kernels import KERNELS
from repro.symbolic import Sym
from tests.conftest import SMALL_PARAMS, derivation_for

SAMPLE = {
    "mgs": {"M": 4096, "N": 1024},
    "qr_a2v": {"M": 4096, "N": 1024},
    "qr_v2q": {"M": 4096, "N": 1024},
    "gebd2": {"M": 4096, "N": 1024},
    "gehd2": {"N": 2048},
}

#: expected dimension classification per the paper (§3.1 / §5)
EXPECTED_CLASSES = {
    "mgs": (("k",), ("i",), ("j",)),
    "qr_a2v": (("k",), ("i",), ("j",)),
    "qr_v2q": (("k",), ("i",), ("j",)),
    "gebd2": (("k",), ("i",), ("j",)),
    "gehd2": (("j",), ("k",), ("i",)),
}


def _detect(name):
    kern = KERNELS[name]
    ps = derive_projections(kern.program, kern.dominant, SMALL_PARAMS[name])
    pat = detect_hourglass(
        kern.program, kern.dominant, SMALL_PARAMS[name], SAMPLE[name], ps
    )
    return kern, ps, pat


class TestDetection:
    @pytest.mark.parametrize("name", sorted(EXPECTED_CLASSES))
    def test_dimension_classification(self, name):
        _, _, pat = _detect(name)
        t, r, n = EXPECTED_CLASSES[name]
        assert pat.temporal == t
        assert pat.reduction == r
        assert pat.neutral == n

    def test_mgs_width_is_m(self):
        """§3.1: 'the size of its hourglass was constant and equal to M'."""
        _, _, pat = _detect("mgs")
        assert pat.width_min == Sym("M")
        assert pat.width_max == Sym("M")
        assert pat.parametric_width

    def test_a2v_width_shrinks_to_m_minus_n(self):
        """§5.2: width M-1-k, minimal at the end of the outer loop.  Our
        statement-domain convention gives M-N+1 (k <= N-2); the paper uses
        the conservative M-N."""
        _, _, pat = _detect("qr_a2v")
        assert pat.width_min == Sym("M") - Sym("N") + 1
        assert pat.parametric_width

    def test_gehd2_width_degenerates(self):
        """§5.3: width N-2-j shrinks to 1 — not parametric, split needed."""
        _, _, pat = _detect("gehd2")
        assert pat.width_min.eval({"N": 100}) == 1
        assert not pat.parametric_width

    def test_matmul_has_no_hourglass(self):
        kern = KERNELS["matmul"]
        ps = derive_projections(kern.program, "SM", SMALL_PARAMS["matmul"])
        with pytest.raises(HourglassDetectionError):
            detect_hourglass(
                kern.program,
                "SM",
                SMALL_PARAMS["matmul"],
                {"NI": 512, "NJ": 512, "NK": 512},
                ps,
            )

    @pytest.mark.parametrize("name", sorted(EXPECTED_CLASSES))
    def test_path_property_verified_concretely(self, name):
        """§3.2's dependence-path property, checked pairwise on the CDAG."""
        kern, _, pat = _detect(name)
        assert verify_hourglass_paths(kern.program, pat, SMALL_PARAMS[name])

    def test_wrong_classification_fails_paths(self):
        """Swapping reduction and neutral must break the path property."""
        from repro.bounds.hourglass import HourglassPattern

        kern, _, pat = _detect("mgs")
        wrong = HourglassPattern(
            stmt=pat.stmt,
            temporal=pat.temporal,
            reduction=pat.neutral,  # swapped
            neutral=pat.reduction,
            width_min=pat.width_min,
            width_max=pat.width_max,
            parametric_width=True,
        )
        assert not verify_hourglass_paths(kern.program, wrong, SMALL_PARAMS["mgs"])

    def test_broadcast_via_recorded(self):
        _, _, pat = _detect("mgs")
        assert pat.broadcast_via == "R"
        assert pat.self_via == "A"


class TestDerivation:
    def test_mgs_theorem5_main_exact(self):
        """The engine reproduces Theorem 5's main bound *symbolically*."""
        kern, ps, pat = _detect("mgs")
        v = kern.program.statement("SU").instance_count()
        b = hourglass_bound("mgs", pat, ps, v)
        M, N, S = Sym("M"), Sym("N"), Sym("S")
        expected = M**2 * N * (N - 1) / (8 * (S + M))
        assert b.expr == expected

    def test_mgs_theorem5_small_cache_exact(self):
        kern, ps, pat = _detect("mgs")
        v = kern.program.statement("SU").instance_count()
        b = hourglass_bound_small_cache("mgs", pat, ps, v)
        M, N, S = Sym("M"), Sym("N"), Sym("S")
        expected = (M - S) * N * (N - 1) / 4
        assert b.expr == expected

    def test_a2v_matches_theorem6_within_2_percent(self):
        """Width conventions differ by +-1 from the paper; the bounds must
        agree numerically to within a couple percent at realistic sizes."""
        kern, ps, pat = _detect("qr_a2v")
        v = kern.program.statement("SU").instance_count()
        b = hourglass_bound("qr_a2v", pat, ps, v)
        for env in (
            {"M": 200, "N": 50, "S": 256},
            {"M": 1000, "N": 300, "S": 4096},
            {"M": 4000, "N": 1000, "S": 16384},
        ):
            m, n, s = env["M"], env["N"], env["S"]
            thm6 = (3 * m - n) * n**2 * (m - n) ** 2 / (24 * (m * s + (m - n) ** 2))
            assert b.evaluate(env) == pytest.approx(thm6, rel=0.03)

    def test_v2q_matches_theorem7(self):
        kern, ps, pat = _detect("qr_v2q")
        v = kern.program.statement("SU").instance_count()
        b = hourglass_bound("qr_v2q", pat, ps, v)
        env = {"M": 1000, "N": 300, "S": 4096}
        m, n, s = 1000, 300, 4096
        thm7 = (
            n * (n - 1) * (3 * m - n - 1) * (m - n) ** 2
            / (24 * ((m - n) ** 2 + s * m))
        )
        assert b.evaluate(env) == pytest.approx(thm7, rel=0.03)

    def test_gebd2_matches_theorem8(self):
        kern, ps, pat = _detect("gebd2")
        v = kern.program.statement("ScU").instance_count()
        b = hourglass_bound("gebd2", pat, ps, v)
        env = {"M": 1000, "N": 300, "S": 4096}
        m, n, s = 1000, 300, 4096
        thm8 = m * n**2 * (m - n + 1) / (8 * (s + m - n + 1))
        # ScU's count is ~ MN^2/2, vs the paper's MN^2 normalisation: the
        # shapes must match; allow the constant-factor difference
        ratio = b.evaluate(env) / thm8
        assert 0.2 < ratio < 1.5

    def test_gehd2_split_matches_theorem9_shape(self):
        kern, ps, pat = _detect("gehd2")
        b = hourglass_bound_with_split(
            "gehd2", kern.program, pat, ps, "j", Sym("N") * Fraction(1, 2), SAMPLE["gehd2"]
        )
        for env in ({"N": 500, "S": 128}, {"N": 2000, "S": 1024}):
            n, s = env["N"], env["S"]
            thm9 = n**4 / (12 * (n + 2 * s))
            ratio = b.evaluate(env) / thm9
            assert 0.5 < ratio < 1.5

    def test_nonparametric_width_refused(self):
        kern, ps, pat = _detect("gehd2")
        v = kern.program.statement("SrU").instance_count()
        with pytest.raises(HourglassDetectionError):
            hourglass_bound("gehd2", pat, ps, v)

    def test_split_on_non_temporal_dim_rejected(self):
        kern, ps, pat = _detect("gehd2")
        with pytest.raises(HourglassDetectionError):
            hourglass_bound_with_split(
                "gehd2", kern.program, pat, ps, "i", Sym("N"), SAMPLE["gehd2"]
            )

    def test_k_mult_choice(self):
        """K = 2S is the paper's choice; other multiples remain sound but
        change the constant."""
        kern, ps, pat = _detect("mgs")
        v = kern.program.statement("SU").instance_count()
        env = {"M": 1000, "N": 500, "S": 64}
        b2 = hourglass_bound("mgs", pat, ps, v, k_mult=2)
        b3 = hourglass_bound("mgs", pat, ps, v, k_mult=3)
        assert b2.evaluate(env) > 0 and b3.evaluate(env) > 0

    def test_small_cache_bound_beats_main_when_s_small(self):
        """§5.1: for S << M the second bound dominates the first."""
        kern, ps, pat = _detect("mgs")
        v = kern.program.statement("SU").instance_count()
        main = hourglass_bound("mgs", pat, ps, v)
        small = hourglass_bound_small_cache("mgs", pat, ps, v)
        env = {"M": 1000, "N": 500, "S": 16}
        assert small.evaluate(env) > main.evaluate(env)
