"""Cross-component property tests on randomly generated structures.

Hypothesis generates random DAGs, loop nests and address traces; the
invariants tie independent components together (exact game vs policies,
wavefront vs exact, symbolic counts vs enumeration, hierarchy vs flat LRU).
"""

from __future__ import annotations

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.cdag import CDAG, INPUT
from repro.cache import simulate_belady, simulate_hierarchy, simulate_lru
from repro.ir import Event
from repro.pebble import exact_min_loads, play_schedule
from repro.bounds import min_max_live_exact, wavefront_bound
from repro.polyhedral import loop_nest_set, symbolic_count, var


# ---------------------------------------------------------------------------
# random DAG strategy
# ---------------------------------------------------------------------------


@st.composite
def small_dags(draw, max_nodes=8, max_inputs=3):
    """A random DAG: compute nodes 0..n-1 with forward edges, plus inputs."""
    n = draw(st.integers(2, max_nodes))
    n_in = draw(st.integers(1, max_inputs))
    g = CDAG()
    nodes = [("c", (x,)) for x in range(n)]
    inputs = [(INPUT, ("A", (x,))) for x in range(n_in)]
    for x in range(n):
        # at least one predecessor (input or earlier node) to avoid
        # free-floating sources
        cands = inputs + nodes[:x]
        n_preds = draw(st.integers(1, min(2, len(cands))))
        idxs = draw(
            st.lists(
                st.integers(0, len(cands) - 1),
                min_size=n_preds,
                max_size=n_preds,
                unique=True,
            )
        )
        for ci in idxs:
            g.add_edge(cands[ci], nodes[x])
    return g, nodes


@given(small_dags(), st.integers(3, 6))
@settings(max_examples=40, deadline=None)
def test_policy_hierarchy_on_random_dags(dag, s):
    """belady <= lru for the fixed schedule; exact <= belady."""
    g, sched = dag
    max_preds = max(len(g.pred[v]) for v in sched)
    if max_preds + 1 > s:
        return  # game infeasible at this S
    lru = play_schedule(g, sched, s, "lru").loads
    bel = play_schedule(g, sched, s, "belady").loads
    exact = exact_min_loads(g, s, node_limit=12)
    assert bel <= lru
    assert exact <= bel


@given(small_dags(), st.integers(3, 6))
@settings(max_examples=30, deadline=None)
def test_wavefront_sound_on_random_dags(dag, s):
    """The wavefront bound never exceeds the exact optimum."""
    g, sched = dag
    max_preds = max(len(g.pred[v]) for v in sched)
    if max_preds + 1 > s:
        return
    wb = wavefront_bound(g, s, node_limit=12)
    exact = exact_min_loads(g, s, node_limit=12)
    assert wb <= exact


@given(small_dags())
@settings(max_examples=30, deadline=None)
def test_convex_closure_properties(dag):
    g, sched = dag
    subset = set(sched[::2])
    closure = g.convex_closure(subset)
    assert subset <= closure
    assert g.is_convex(closure)


@given(small_dags())
@settings(max_examples=30, deadline=None)
def test_in_set_excludes_members(dag):
    g, sched = dag
    subset = set(sched[: len(sched) // 2 + 1])
    inset = g.in_set(subset)
    assert not (inset & subset)
    # every inset member is a predecessor of some member
    for u in inset:
        assert any(u in g.pred[v] for v in subset)


@given(small_dags())
@settings(max_examples=20, deadline=None)
def test_min_max_live_below_any_schedule(dag):
    from repro.bounds import max_live

    g, sched = dag
    assert min_max_live_exact(g, node_limit=12) <= max_live(g, sched)


# ---------------------------------------------------------------------------
# random triangular loop nests
# ---------------------------------------------------------------------------


@given(
    st.integers(2, 6),
    st.integers(2, 6),
    st.integers(0, 2),
    st.booleans(),
)
@settings(max_examples=40, deadline=None)
def test_symbolic_count_random_nests(m, n, off, tri):
    """Counts of (possibly triangular) 2-3 deep nests match enumeration."""
    N, M, k = var("N"), var("M"), var("k")
    if tri:
        loops = [("k", 0, N - 1), ("j", k + off, N - 1), ("i", 0, M - 1)]
    else:
        loops = [("k", 0, N - 1), ("i", off, M - 1)]
    dom = loop_nest_set(loops)
    formula = symbolic_count(loops)
    params = {"N": n, "M": m}
    enum = dom.count(params)
    # polyhedral-count caveat: the formula assumes non-empty ranges
    if tri and off > 0:
        # ranges j in k+off..N-1 are empty for k > N-1-off: formula invalid
        # only when *negative* contributions appear; compare when consistent
        if float(formula.eval(params)) == enum:
            assert True
        else:
            assert float(formula.eval(params)) != enum  # documented caveat
    else:
        assert formula.eval(params) == enum


# ---------------------------------------------------------------------------
# random address traces
# ---------------------------------------------------------------------------

_trace = st.lists(
    st.tuples(st.sampled_from("RW"), st.integers(0, 9)), min_size=1, max_size=80
)


@given(_trace, st.integers(1, 6))
@settings(max_examples=50, deadline=None)
def test_hierarchy_l1_equals_flat_lru(ops, l1):
    events = [Event(op, ("x", (a,))) for op, a in ops]
    st_h = simulate_hierarchy(events, l1, 10_000)
    st_f = simulate_lru(events, l1)
    assert st_h.l1_loads == st_f.loads


@given(_trace, st.integers(1, 5), st.integers(5, 12))
@settings(max_examples=50, deadline=None)
def test_hierarchy_l2_loads_bounded_by_flat(ops, l1, l2):
    """L2 fills can't exceed what a flat cache of size l2 loads... they can
    equal it exactly under inclusive LRU with read-only recency coupling?
    We assert the weaker sound direction: L2 loads >= flat-belady(l2) and
    <= flat-lru(l1) loads."""
    events = [Event(op, ("x", (a,))) for op, a in ops]
    st_h = simulate_hierarchy(events, l1, l2)
    assert st_h.l2_loads >= simulate_belady(events, l2).loads
    assert st_h.l2_loads <= simulate_lru(events, l1).loads
