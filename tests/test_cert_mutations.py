"""Adversarial certificate mutations: every forgery is rejected, none crash.

The corpus perturbs each certificate ingredient in turn — a BL witness
entry, the hourglass width W, a lemma instantiation, a projection row,
the symbolic counts, the expressions — and asserts the independent
checker rejects the document with the *right* reason code.  A checker
that rejects for the wrong reason is as untrustworthy as one that
accepts, so codes are pinned, not just exit status.

A structural fuzz pass then deletes/retypes random fields to pin the
"never crashes" guarantee: :func:`check_certificate` must always return
a report, with malformed documents surfacing as C001 findings.
"""

from __future__ import annotations

import copy
import json
import random

import pytest

from repro.cert import build_certificate, certificate_json, check_certificate
from repro.kernels import get_kernel
from tests.conftest import derivation_for


def fresh_cert(name: str) -> dict:
    kern = get_kernel(name)
    cert = build_certificate(
        derivation_for(name), kern.program, kern.default_params
    )
    return json.loads(certificate_json(cert))


@pytest.fixture(scope="module")
def mgs_cert():
    return fresh_cert("mgs")


@pytest.fixture(scope="module")
def gehd2_cert():
    return fresh_cert("gehd2")


def reject(cert: dict, *codes: str):
    """The checker must reject with at least one of the expected codes."""
    rep = check_certificate(cert)
    got = {f.code for f in rep.findings if f.severity == "error"}
    assert rep.exit_code() == 2, rep.summary()
    assert got & set(codes), (
        f"expected one of {codes}, got {sorted(got)}:\n{rep.summary()}"
    )
    return rep


def bound_index(cert: dict, method: str) -> int:
    return next(
        i for i, b in enumerate(cert["bounds"]) if b["method"] == method
    )


#: (label, kernel, mutator, expected reason codes) — the targeted corpus.
#: Mutators receive a deep copy and edit in place.
CORPUS = [
    (
        "schema-tag",
        "mgs",
        lambda c: c.update(schema="iolb-cert/999"),
        ("C002",),
    ),
    (
        "witness-exponent-zeroed",
        "mgs",
        lambda c: c["bounds"][0]["witness"]["exponents"].__setitem__(0, "0"),
        ("C021", "C022"),
    ),
    (
        "witness-exponent-out-of-range",
        "mgs",
        lambda c: c["bounds"][0]["witness"]["exponents"].__setitem__(0, "3/2"),
        ("C020", "C022"),
    ),
    (
        "witness-sigma-inflated",
        "mgs",
        lambda c: c["bounds"][0]["witness"].__setitem__("sigma", "7/2"),
        ("C022",),
    ),
    (
        "classical-coeff-forged",
        "mgs",
        lambda c: c["bounds"][0].__setitem__("coeff", 3.14),
        ("C023",),
    ),
    (
        "classical-expr-forged",
        "mgs",
        lambda c: c["bounds"][0]["expr"]["num"][0].__setitem__(1, "42"),
        ("C024",),
    ),
    (
        "witness-dims-shrunk",
        "mgs",
        lambda c: c["bounds"][0]["witness"].__setitem__("dims", ["i", "j"]),
        ("C011",),
    ),
    (
        "witness-projection-invented",
        "mgs",
        lambda c: c["bounds"][0]["witness"]["projections"].__setitem__(
            0, ["i", "j", "k"]
        ),
        ("C011",),
    ),
    (
        "projection-row-dropped",
        "mgs",
        lambda c: c["projections"].pop(0),
        ("C011", "C031"),
    ),
    (
        "projection-ungrounded",
        "mgs",
        lambda c: c["projections"][0].__setitem__("dims", ["i", "zz"]),
        ("C010",),
    ),
    (
        "pattern-partition-broken",
        "mgs",
        lambda c: c["hourglass"].__setitem__("neutral", ["j", "k"]),
        ("C030",),
    ),
    (
        "pattern-wmax-understated",
        "mgs",
        # Wmax claim M-5 < true global width M refutes on the domain
        lambda c: c["hourglass"].__setitem__(
            "width_max", [[[["M", "1"]], "1"], [[], "-5"]]
        ),
        ("C031", "C040"),
    ),
    (
        "pattern-wmin-overstated",
        "mgs",
        # Wmin claim M+3 > true slice width M refutes on the domain
        lambda c: c["hourglass"].__setitem__(
            "width_min", [[[["M", "1"]], "1"], [[], "3"]]
        ),
        ("C031", "C040"),
    ),
    (
        "witness-width-unbound-from-pattern",
        "mgs",
        lambda c: c["bounds"][bound_index(c, "hourglass")]["witness"]
        .__setitem__("width_min", [[[["N", "1"]], "1"]]),
        ("C031",),
    ),
    (
        "lemma-step-dropped",
        "mgs",
        lambda c: c["bounds"][bound_index(c, "hourglass")]["witness"][
            "lemmas"
        ].pop(1),
        ("C031",),
    ),
    (
        "lemma-projection-invented",
        "mgs",
        lambda c: c["bounds"][bound_index(c, "hourglass")]["witness"][
            "lemmas"
        ][1].__setitem__("projection", ["j", "k"]),
        ("C031", "C032"),
    ),
    (
        "lemma-kmult-degenerate",
        "mgs",
        lambda c: c["bounds"][bound_index(c, "hourglass")]["witness"][
            "lemmas"
        ][-1].__setitem__("k_mult", 1),
        ("C031",),
    ),
    (
        "hourglass-expr-forged",
        "mgs",
        lambda c: c["bounds"][bound_index(c, "hourglass")]["expr"]["num"][
            0
        ].__setitem__(1, "9"),
        ("C032",),
    ),
    (
        "hourglass-coeff-not-one",
        "mgs",
        lambda c: c["bounds"][bound_index(c, "hourglass")].__setitem__(
            "coeff", 0.5
        ),
        ("C032",),
    ),
    (
        "witness-vcount-inflated",
        "mgs",
        lambda c: c["bounds"][bound_index(c, "hourglass")]["witness"][
            "v_count"
        ].append([[], "7"]),
        ("C031", "C032"),
    ),
    (
        "instance-count-forged",
        "mgs",
        lambda c: c["statement"]["instance_count"].append([[], "7"]),
        ("C031", "C041"),
    ),
    (
        "witness-kind-mismatched",
        "mgs",
        lambda c: c["bounds"][bound_index(c, "hourglass")]["witness"]
        .__setitem__("kind", "classical"),
        ("C031",),
    ),
    (
        "small-cache-gains-i-chain",
        "mgs",
        lambda c: c["bounds"][bound_index(c, "hourglass-small-cache")][
            "witness"
        ]["lemmas"].insert(
            0,
            {"lemma": "lemma4-width-cap", "factor": "Wmax", "covers": ["i"]},
        ),
        ("C031",),
    ),
    # -- split-specific forgeries (gehd2 is the only split kernel) ---------
    (
        "split-instantiation-removed",
        "gehd2",
        lambda c: c["bounds"][bound_index(c, "hourglass-split")]["witness"]
        .pop("split"),
        ("C033",),
    ),
    (
        "split-dim-not-temporal",
        "gehd2",
        lambda c: c["bounds"][bound_index(c, "hourglass-split")]["witness"][
            "split"
        ].__setitem__("dim", "i"),
        ("C033",),
    ),
    (
        "split-count-forged",
        "gehd2",
        lambda c: c["bounds"][bound_index(c, "hourglass-split")]["witness"][
            "v_count"
        ].append([[], "3"]),
        ("C032", "C034"),
    ),
    (
        "split-point-moved",
        "gehd2",
        lambda c: c["bounds"][bound_index(c, "hourglass-split")]["witness"][
            "split"
        ].__setitem__("at", [[[["N", "1"]], "1"]]),
        ("C034",),
    ),
    (
        "split-width-overstated",
        "gehd2",
        lambda c: c["bounds"][bound_index(c, "hourglass-split")]["witness"]
        .__setitem__("width_min", [[[["N", "1"]], "1"]]),
        ("C032", "C040"),
    ),
]


class TestMutationCorpus:
    @pytest.mark.parametrize(
        "label,kernel,mutate,codes",
        CORPUS,
        ids=[label for label, *_ in CORPUS],
    )
    def test_mutation_rejected(self, label, kernel, mutate, codes, request):
        cert = copy.deepcopy(
            request.getfixturevalue(f"{kernel}_cert")
        )
        mutate(cert)
        reject(cert, *codes)

    def test_engine_version_is_warning_not_rejection(self, mgs_cert):
        cert = copy.deepcopy(mgs_cert)
        cert["engine_version"] = cert["engine_version"] + 1
        rep = check_certificate(cert, engine_version=cert["engine_version"] - 1)
        assert rep.ok() and rep.exit_code() == 1
        assert [f.code for f in rep.findings] == ["C003"]

    def test_odd_n_split_point_is_warning_not_rejection(self):
        """gehd2 certified at odd N leaves the N/2 split point non-integral
        for every trial S: the replay is inapplicable (C043 warning), which
        must not reject the certificate — selfcheck runs exactly this."""
        kern = get_kernel("gehd2")
        params = {"N": 7}
        from repro.bounds import derive

        cert = json.loads(
            certificate_json(
                build_certificate(derive(kern, small_params=params), kern.program, params)
            )
        )
        rep = check_certificate(cert)
        assert rep.ok(), rep.summary()
        assert "C043" in {f.code for f in rep.findings}
        assert all(f.severity == "warning" for f in rep.findings)

    def test_every_corpus_baseline_is_clean(self, mgs_cert, gehd2_cert):
        """The corpus only means something if unmutated certs pass."""
        for cert in (mgs_cert, gehd2_cert):
            rep = check_certificate(cert)
            assert rep.ok() and rep.exit_code() == 0, rep.summary()


class TestStructuralFuzz:
    """Random deletions/retypings must never escape as exceptions."""

    JUNK = (None, 0, -1, 3.5, "x", [], {}, [[]], {"a": None}, True)

    def _paths(self, doc, prefix=()):
        out = [prefix] if prefix else []
        if isinstance(doc, dict):
            for k, v in doc.items():
                out.extend(self._paths(v, prefix + (k,)))
        elif isinstance(doc, list):
            for i, v in enumerate(doc):
                out.extend(self._paths(v, prefix + (i,)))
        return out

    def _mutate_at(self, doc, path, value, delete):
        parent = doc
        for step in path[:-1]:
            parent = parent[step]
        if delete:
            del parent[path[-1]]
        else:
            parent[path[-1]] = value

    @pytest.mark.parametrize("seed", range(4))
    def test_fuzzed_documents_never_crash(self, mgs_cert, gehd2_cert, seed):
        rng = random.Random(seed)
        for base in (mgs_cert, gehd2_cert):
            paths = self._paths(base)
            for _ in range(60):
                cert = copy.deepcopy(base)
                path = rng.choice(paths)
                delete = rng.random() < 0.4
                junk = rng.choice(self.JUNK)
                try:
                    self._mutate_at(cert, path, junk, delete)
                except (KeyError, IndexError, TypeError):
                    continue  # path invalidated by a previous structure
                rep = check_certificate(cert)  # must not raise
                assert rep.exit_code() in (0, 1, 2)
                # reports always serialize
                json.dumps(rep.to_dict())

    def test_non_dict_input_is_c001(self):
        for junk in (None, [], "cert", 7):
            rep = check_certificate(junk)  # type: ignore[arg-type]
            assert not rep.ok()
            assert rep.findings[0].code == "C001"
