"""Golden regression tests: the engine's derived bounds, frozen.

The exact symbolic output of the derivation pipeline for every kernel is
pinned here.  Any change to projections, detection, width conventions or
the K-partition algebra that alters a derived bound will fail loudly —
the guard against silent regressions in the mathematical core.

(If a change is *intended* — e.g. adopting the paper's W = M-N convention —
update the strings here alongside EXPERIMENTS.md's deviation notes.)
"""

from __future__ import annotations

import pytest

from tests.conftest import derivation_for

#: kernel -> method -> exact repr of the derived expression
GOLDEN = {
    "mgs": {
        "classical-disjoint": "1/2*M*N**2*S**-1/2 - 1/2*M*N*S**-1/2",
        "hourglass": "(1/8*M**2*N**2 - 1/8*M**2*N) / (M + S)",
        "hourglass-small-cache": (
            "1/4*M*N**2 - 1/4*N**2*S - 1/4*M*N + 1/4*N*S"
        ),
    },
    "qr_a2v": {
        "classical-disjoint": (
            "1/2*M*N**2*S**-1/2 - 1/6*N**3*S**-1/2 - 1/2*M*N*S**-1/2"
            " + 1/6*N*S**-1/2"
        ),
    },
    "matmul": {
        "classical-disjoint": "NI*NJ*NK*S**-1/2",
    },
    "cholesky": {
        "classical": "1/6*N**3*S**-1/2 - 1/6*N*S**-1/2",
    },
    "syrk": {
        "classical": "1/2*KP*N**2*S**-1/2 + 1/2*KP*N*S**-1/2",
    },
}

#: kernel -> expected hourglass classification (None = no pattern)
GOLDEN_PATTERNS = {
    "mgs": ("SU", ("k",), ("i",), ("j",), "M", "M", True),
    "qr_a2v": ("SU", ("k",), ("i",), ("j",), "M - N + 1", "M - 1", True),
    "qr_v2q": ("SU", ("k",), ("i",), ("j",), "M - N + 1", "M - 1", True),
    "gebd2": ("ScU", ("k",), ("i",), ("j",), "M - N + 1", "M - 1", True),
    "gehd2": ("SrU", ("j",), ("k",), ("i",), "1", "N - 2", False),
    "matmul": None,
    "cholesky": None,
    "syrk": None,
}


class TestGoldenBounds:
    @pytest.mark.parametrize("name", sorted(GOLDEN))
    def test_expressions_frozen(self, name):
        rep = derivation_for(name)
        by_method = {b.method: b for b in rep.all_bounds()}
        for method, expected in GOLDEN[name].items():
            assert method in by_method, f"{name}: method {method} disappeared"
            got = repr(by_method[method].expr)
            assert got == expected, (
                f"{name}/{method} derived expression changed:\n"
                f"  was: {expected}\n  now: {got}"
            )

    @pytest.mark.parametrize("name", sorted(GOLDEN_PATTERNS))
    def test_patterns_frozen(self, name):
        rep = derivation_for(name)
        expected = GOLDEN_PATTERNS[name]
        if expected is None:
            assert rep.hourglass_pattern is None
            return
        stmt, temporal, reduction, neutral, wmin, wmax, parametric = expected
        pat = rep.hourglass_pattern
        assert pat is not None
        assert pat.stmt == stmt
        assert pat.temporal == temporal
        assert pat.reduction == reduction
        assert pat.neutral == neutral
        assert repr(pat.width_min) == wmin
        assert repr(pat.width_max) == wmax
        assert pat.parametric_width == parametric

    def test_householder_hourglass_bounds_agree(self):
        """A2V and V2Q have identical dominant-statement structure; their
        derived hourglass bounds must be the same expression."""
        a = derivation_for("qr_a2v").hourglass
        v = derivation_for("qr_v2q").hourglass
        assert a.expr == v.expr

    def test_derivation_deterministic(self):
        """Two independent runs produce identical expressions."""
        from repro.bounds import derive
        from repro.kernels import get_kernel

        r1 = derive(get_kernel("mgs"))
        r2 = derive(get_kernel("mgs"))
        assert repr(r1.hourglass.expr) == repr(r2.hourglass.expr)
        assert repr(r1.classical.expr) == repr(r2.classical.expr)


class TestGoldenDeriveCLI:
    """The full ``iolb derive <kernel>`` output for every hourglass kernel,
    pinned as files under tests/golden/.

    These catch formatting and summary-structure drift that the expression
    reprs above cannot (projection lists, pattern lines, method ordering).
    Regenerate intentionally with::

        IOLB_UPDATE_GOLDEN=1 python -m pytest tests/test_golden_bounds.py
    """

    @pytest.mark.parametrize(
        "name", ["mgs", "qr_a2v", "qr_v2q", "gebd2", "gehd2"]
    )
    def test_cli_output_frozen(self, name, capsys):
        import os
        import pathlib

        from repro.cli import main

        golden = pathlib.Path(__file__).parent / "golden" / f"derive_{name}.txt"
        assert main(["derive", name]) == 0
        cap = capsys.readouterr()
        # a successful derive must not chatter on stderr (notices such as
        # "certificate written to ..." belong to flag-carrying runs only)
        assert cap.err == ""
        got = cap.out
        if os.environ.get("IOLB_UPDATE_GOLDEN"):
            golden.write_text(got)
        want = golden.read_text()
        assert got == want, (
            f"iolb derive {name} output drifted from {golden.name};"
            " if intended, rerun with IOLB_UPDATE_GOLDEN=1"
        )


class TestProfilingIsObservationOnly:
    """Differential guard: instrumentation must never perturb results.

    ``iolb derive --profile`` may print a span tree (to stderr) and dump
    metrics files, but the bound output on stdout has to stay byte-identical
    to an unprofiled run — profiling is observation, not participation.
    """

    @pytest.mark.parametrize(
        "name", ["mgs", "qr_a2v", "qr_v2q", "gebd2", "gehd2"]
    )
    def test_profiled_derive_stdout_identical(self, name, tmp_path, capsys):
        import json

        from repro import obs
        from repro.cli import main

        assert main(["derive", name]) == 0
        plain = capsys.readouterr().out

        dump = tmp_path / "metrics.json"
        assert main(
            ["derive", name, "--profile", "--metrics-json", str(dump)]
        ) == 0
        cap = capsys.readouterr()
        assert cap.out == plain  # byte-identical bounds
        assert "profile:" in cap.err  # the span tree went to stderr

        metrics = json.loads(dump.read_text())
        obs.check_schema(metrics)
        assert metrics["spans"], "profiled run recorded no spans"
        assert any(v > 0 for v in metrics["counters"].values())
