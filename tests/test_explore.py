"""Tests for the whole-system explorer: loaders, curves, rendering, CLI.

The contract under test is the one the CI artifact pipeline depends on:

* the report is **self-contained** — no ``http(s)://`` in any ``src`` or
  ``href``, no ``<script>``, one file;
* all six sections are present with stable anchors, whether or not their
  artifact was provided (placeholders degrade, never disappear);
* every externally-sourced string (kernel names, lint messages, counter
  keys) is HTML-escaped by the shared ``repro.obs._html`` helpers, so a
  kernel named ``<b>&evil"`` cannot break the document;
* ``iolb explore --check-inputs`` exits nonzero on unreadable or
  version-mismatched artifacts instead of rendering a partial page;
* the computed bound-vs-measured curves are sound (bound <= measured).
"""

from __future__ import annotations

import json
import re

import pytest

from repro.cli import main
from repro.obs import _svg
from repro.obs._html import Raw, esc, table
from repro.obs.core import Registry
from repro.obs.explore import (
    CURVES_SCHEMA,
    SECTIONS,
    ExploreData,
    check_curves_schema,
    compute_curves,
    load_inputs,
    render_explore,
    render_status,
)
from repro.obs.sinks import chrome_trace_dict, metrics_dict

# ---------------------------------------------------------------------------
# artifact builders (small, valid instances of each family)
# ---------------------------------------------------------------------------

EVIL = '<b>&evil"'


def _metrics_doc(counter: str = "pebble.loads") -> dict:
    reg = Registry()
    with reg.span("bounds.derive", kernel="mgs"):
        with reg.span("bounds.derive/polyhedral"):
            pass
    reg.add(counter, 42)
    reg.gauge("serve.hit_rate", 0.5)
    return metrics_dict(reg, meta={"command": "test"})


def _trace_doc() -> dict:
    reg = Registry()
    with reg.span("bounds.derive", kernel="mgs"):
        with reg.span("bounds.derive/polyhedral"):
            pass
    return chrome_trace_dict(reg)


def _lint_doc(message: str = "loop bound is degenerate") -> dict:
    return {
        "schema": "iolb-lint/1",
        "program": "mgs",
        "params": {"M": 8, "N": 5},
        "summary": {"error": 0, "warning": 1, "info": 0},
        "ok": True,
        "passes": ["structure"],
        "diagnostics": [
            {
                "code": "A003",
                "severity": "warning",
                "message": message,
                "stmt": "SU",
                "span": {"line": 3, "col": 7, "end_line": 3, "end_col": 12},
                "hint": None,
            }
        ],
    }


def _cert_doc(kernel: str = "mgs", ok: bool = True) -> dict:
    return {
        "schema": "iolb-cert-report/1",
        "kernel": kernel,
        "ok": ok,
        "exit_code": 0 if ok else 1,
        "checks_run": ["schema", "arithmetic"],
        "findings": [] if ok else [{"code": "C002", "message": "bad arithmetic"}],
    }


def _bench_records() -> list[dict]:
    return [
        {
            "created": f"2026-01-0{i}T00:00:00Z",
            "env": {"git_sha": f"sha{i}", "python": "3.11"},
            "results": {
                "derive.mgs": {
                    "wall_s": {"median": 0.1 * i, "min": 0.09, "mad": 0.01},
                    "counters": {"pebble.loads": 10},
                }
            },
        }
        for i in (1, 2)
    ]


def _curves_doc(kernel: str = "mgs") -> dict:
    return {
        "schema": CURVES_SCHEMA,
        "s_values": [8, 16],
        "kernels": {
            kernel: {
                "params": {"M": 6, "N": 4},
                "dominant": "SU",
                "points": [
                    {
                        "S": 8,
                        "bounds": {"classical": 40.0, "hourglass": 55.0},
                        "best": 55.0,
                        "best_method": "hourglass",
                        "measured_belady": 80,
                        "measured_lru": 95,
                    },
                    {
                        "S": 16,
                        "bounds": {"classical": 30.0, "hourglass": 41.0},
                        "best": 41.0,
                        "best_method": "hourglass",
                        "measured_belady": 60,
                        "measured_lru": 70,
                    },
                ],
            }
        },
    }


def _full_data() -> ExploreData:
    return ExploreData(
        curves=_curves_doc(),
        trace=_trace_doc(),
        lint=_lint_doc(),
        certs={"mgs": _cert_doc()},
        bench=_bench_records(),
        metrics={"run": _metrics_doc()},
    )


# ---------------------------------------------------------------------------
# rendering: sections, self-containment, escaping
# ---------------------------------------------------------------------------


class TestRenderExplore:
    def test_all_six_sections_with_full_data(self):
        html = render_explore(_full_data())
        for anchor, title in SECTIONS:
            assert f'id="{anchor}"' in html
            assert title in html
            assert f'href="#{anchor}"' in html  # nav entry

    def test_all_six_sections_survive_empty_data(self):
        html = render_explore(ExploreData())
        for anchor, _ in SECTIONS:
            assert f'id="{anchor}"' in html
        assert html.count('class="empty"') >= 5  # placeholders, not silence

    def test_zero_external_fetches_and_no_scripts(self):
        html = render_explore(_full_data())
        assert not re.search(r'(?:src|href)\s*=\s*"https?://', html)
        assert "<script" not in html.lower()
        assert html.startswith("<!DOCTYPE html>")

    def test_problems_surface_in_banner(self):
        data = ExploreData(problems=["a.json: unreadable (boom)"])
        html = render_explore(data)
        assert "1 artifact problem(s)" in html
        assert "a.json: unreadable (boom)" in html

    def test_live_tiles_and_meta_refresh(self):
        stats = {
            "requests": 12,
            "executed": 4,
            "hit_rate": 0.6667,
            "latency_p50_ms": 1.5,
            "latency_p99_ms": 9.0,
            "queue_depth": 0,
            "inflight": 0,
            "errors": 0,
            "uptime_s": 3.2,
            "workers": 2,
            "backend": "/tmp/memo",
        }
        html = render_status(_metrics_doc(), stats)
        assert '<meta http-equiv="refresh" content="5">' in html
        assert "hit rate" in html and "66.67%" in html
        assert 'id="metrics"' in html  # live registry dump lands in a section

    def test_escaping_kernel_names_lint_messages_counter_keys(self):
        data = ExploreData(
            curves=_curves_doc(kernel=EVIL),
            lint=_lint_doc(message=f"bad stmt {EVIL}"),
            certs={EVIL: _cert_doc(kernel=EVIL, ok=False)},
            metrics={"run": _metrics_doc(counter=f"pebble.{EVIL}.loads")},
        )
        html = render_explore(data)
        assert EVIL not in html  # raw marker never reaches the document
        assert "&lt;b&gt;&amp;evil&quot;" in html
        assert html.count("<b>") == 0

    def test_escaping_in_bench_trend_section(self):
        recs = _bench_records()
        recs[0]["results"][EVIL] = recs[0]["results"].pop("derive.mgs")
        recs[1]["results"][EVIL] = recs[1]["results"].pop("derive.mgs")
        html = render_explore(ExploreData(bench=recs))
        assert EVIL not in html
        assert "&lt;b&gt;&amp;evil&quot;" in html

    def test_shared_table_helper_escapes_cells_unless_raw(self):
        html = str(table(["h"], [[EVIL], [Raw("<i>ok</i>")]]))
        assert "&lt;b&gt;&amp;evil&quot;" in html
        assert "<i>ok</i>" in html
        assert esc(Raw("<i>")) == "<i>"


# ---------------------------------------------------------------------------
# the sparkline degenerate-series guard (satellite)
# ---------------------------------------------------------------------------


class TestSparklineGuard:
    def test_single_point_renders_dot_only_at_mid_height(self):
        svg = str(_svg.sparkline([("one", 1.5)], w=260, h=52))
        assert "<polyline" not in svg and "<polygon" not in svg
        assert 'cy="26.0"' in svg  # mid-height, not on the axis
        assert svg.count('class="pt"') == 1

    def test_constant_series_is_flat_mid_height_line(self):
        svg = str(_svg.sparkline([("a", 2.0), ("b", 2.0), ("c", 2.0)], w=260, h=52))
        assert "<polyline" in svg
        assert svg.count('cy="26.0"') >= 3  # every point at h/2
        assert 'y2="46"' in svg  # the baseline axis is still drawn

    def test_empty_series_renders_axis_only(self):
        svg = str(_svg.sparkline([]))
        assert "<svg" in svg and "axis" in svg
        assert "circle" not in svg and "polyline" not in svg


# ---------------------------------------------------------------------------
# curves: computation soundness + schema
# ---------------------------------------------------------------------------


class TestCurves:
    def test_computed_curves_are_sound_and_schema_clean(self):
        doc = compute_curves(kernels=["mgs"], s_values=(8, 16))
        check_curves_schema(doc)
        pts = doc["kernels"]["mgs"]["points"]
        assert [p["S"] for p in pts] == [8, 16]
        for p in pts:
            assert {"classical", "hourglass"} <= set(p["bounds"])
            # lower bound soundness: best bound <= simulated loads
            assert p["best"] <= p["measured_belady"] + 1e-9
            assert p["measured_belady"] <= p["measured_lru"]

    @pytest.mark.parametrize(
        "doc",
        [
            {"schema": "other/1", "kernels": {}},
            {"schema": CURVES_SCHEMA},
            {"schema": CURVES_SCHEMA, "kernels": {"mgs": {}}},
            {"schema": CURVES_SCHEMA, "kernels": {"mgs": {"points": [{"S": 8}]}}},
        ],
    )
    def test_check_curves_schema_rejects(self, doc):
        with pytest.raises(ValueError):
            check_curves_schema(doc)


# ---------------------------------------------------------------------------
# load_inputs: strict per-artifact validation
# ---------------------------------------------------------------------------


class TestLoadInputs:
    def test_clean_artifacts_load_without_problems(self, tmp_path):
        m = tmp_path / "metrics.json"
        m.write_text(json.dumps(_metrics_doc()))
        ln = tmp_path / "lint.json"
        ln.write_text(json.dumps(_lint_doc()))
        c = tmp_path / "cert.json"
        c.write_text(json.dumps(_cert_doc()))
        t = tmp_path / "trace.json"
        t.write_text(json.dumps(_trace_doc()))
        cv = tmp_path / "curves.json"
        cv.write_text(json.dumps(_curves_doc()))
        data = load_inputs(metrics=[m], lint=ln, certs=[c], trace=t, curves=cv)
        assert data.problems == []
        assert data.loaded_count() == 5
        assert "mgs" in data.certs

    def test_each_problem_is_reported_not_raised(self, tmp_path):
        missing = tmp_path / "nope.json"
        garbled = tmp_path / "garbled.json"
        garbled.write_text("{not json")
        wrong = tmp_path / "wrong.json"
        wrong.write_text(json.dumps({"schema": "bogus/9"}))
        data = load_inputs(metrics=[missing, garbled, wrong], lint=wrong, certs=[wrong])
        assert len(data.problems) == 5
        assert data.loaded_count() == 0
        assert any("unreadable" in p for p in data.problems)
        assert any("bogus/9" in p for p in data.problems)

    def test_bench_history_dir_and_single_file(self, tmp_path):
        good = {
            "schema": "iolb-bench/1",
            "suite": "default",
            "created": "2026-01-01T00:00:00Z",
            "config": {"repeats": 2, "warmup": 1},
            "env": {},
            "meta": {},
            "results": {},
        }
        d = tmp_path / "hist"
        d.mkdir()
        (d / "a.json").write_text(json.dumps(good))
        (d / "bad.json").write_text("{")
        data = load_inputs(bench_history=d)
        assert len(data.bench) == 1
        assert len(data.problems) == 1
        data2 = load_inputs(bench_history=d / "a.json")
        assert len(data2.bench) == 1 and not data2.problems
        data3 = load_inputs(bench_history=tmp_path / "absent")
        assert data3.problems and not data3.bench


# ---------------------------------------------------------------------------
# the CLI subcommand
# ---------------------------------------------------------------------------


class TestCliExplore:
    def _write_artifacts(self, tmp_path):
        paths = {}
        for name, doc in [
            ("metrics", _metrics_doc()),
            ("lint", _lint_doc()),
            ("cert", _cert_doc()),
            ("trace", _trace_doc()),
            ("curves", _curves_doc()),
        ]:
            p = tmp_path / f"{name}.json"
            p.write_text(json.dumps(doc))
            paths[name] = str(p)
        return paths

    def test_out_writes_single_self_contained_file(self, tmp_path, capsys):
        paths = self._write_artifacts(tmp_path)
        out = tmp_path / "report.html"
        rc = main(
            [
                "explore",
                "--out", str(out),
                "--metrics", paths["metrics"],
                "--lint", paths["lint"],
                "--cert-report", paths["cert"],
                "--trace", paths["trace"],
                "--curves", paths["curves"],
                "--bench-history", str(tmp_path / "absent-hist"),
            ]
        )
        # the named-but-absent history dir is a problem, but not fatal
        assert rc == 0
        html = out.read_text()
        for anchor, _ in SECTIONS:
            assert f'id="{anchor}"' in html
        assert not re.search(r'(?:src|href)\s*=\s*"https?://', html)
        assert "explore report written" in capsys.readouterr().out

    def test_check_inputs_exit_codes(self, tmp_path, capsys):
        paths = self._write_artifacts(tmp_path)
        ok_args = [
            "explore", "--check-inputs",
            "--metrics", paths["metrics"],
            "--lint", paths["lint"],
            "--cert-report", paths["cert"],
        ]
        assert main(ok_args) == 0
        bad = tmp_path / "bad.json"
        bad.write_text(json.dumps({"schema": "iolb-metrics/999"}))
        rc = main(["explore", "--check-inputs", "--metrics", str(bad)])
        assert rc == 1
        err = capsys.readouterr().err
        assert "iolb-metrics/999" in err
        assert (tmp_path / "report.html").exists() is False  # no partial page

    def test_check_inputs_rejects_mismatched_curves_version(self, tmp_path):
        stale = tmp_path / "curves.json"
        doc = _curves_doc()
        doc["schema"] = "iolb-curves/0"
        stale.write_text(json.dumps(doc))
        assert main(["explore", "--check-inputs", "--curves", str(stale)]) == 1

    def test_in_process_curves_for_requested_kernels(self, tmp_path):
        out = tmp_path / "r.html"
        rc = main(
            [
                "explore",
                "--out", str(out),
                "--kernels", "mgs",
                "--curves-s", "8,16",
                "--bench-history", str(tmp_path / "none"),
            ]
        )
        assert rc == 0
        html = out.read_text()
        assert "<h3>mgs</h3>" in html
        assert "measured (Belady)" in html
