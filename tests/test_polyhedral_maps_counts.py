"""Tests for affine maps/relations, symbolic counting, lex helpers."""

from __future__ import annotations

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.polyhedral import (
    AffineMap,
    Constraint,
    lex_lt,
    lex_max,
    lex_min,
    lex_next,
    lex_sorted,
    linexpr_to_poly,
    loop_nest_set,
    symbolic_count,
    var,
    verify_count,
)

k, j, i, M, N = var("k"), var("j"), var("i"), var("M"), var("N")


class TestAffineMap:
    def test_functional_apply(self):
        m = AffineMap(("k", "i"), ("k", "i"), {"k": k, "i": i + 1})
        assert m.apply((2, 3), {}) == (2, 4)

    def test_guard_blocks(self):
        m = AffineMap(
            ("i",), ("i",), {"i": i + 1},
            guards=(Constraint(M - 2 - i, ">="),),
        )
        assert m.apply((0,), {"M": 3}) == (1,)
        assert m.apply((1,), {"M": 3}) == (2,)
        assert m.apply((2,), {"M": 3}) is None

    def test_missing_target_expr_rejected(self):
        with pytest.raises(ValueError):
            AffineMap(("i",), ("i", "j"), {"i": i})

    def test_apply_on_relation_raises(self):
        m = AffineMap(
            ("k",), ("k", "i"), {"k": k, "i": var("ii")},
            free=(("ii", 0, M - 1),),
        )
        with pytest.raises(ValueError):
            m.apply((0,), {"M": 3})

    def test_apply_all_broadcast(self):
        m = AffineMap(
            ("k",), ("k", "i"), {"k": k, "i": var("ii")},
            free=(("ii", 0, M - 1),),
        )
        assert set(m.apply_all((1,), {"M": 3})) == {(1, 0), (1, 1), (1, 2)}

    def test_apply_all_functional(self):
        m = AffineMap(("i",), ("i",), {"i": i + 5})
        assert list(m.apply_all((1,), {})) == [(6,)]

    def test_apply_all_guard_blocks_everything(self):
        m = AffineMap(
            ("k",), ("k",), {"k": k},
            guards=(Constraint(k - 100, ">="),),
        )
        assert list(m.apply_all((1,), {})) == []

    def test_free_bounds_in_src_dims(self):
        # broadcast over j in k+1..N-1 (bounds reference the source dim)
        m = AffineMap(
            ("k",), ("k", "j"), {"k": k, "j": var("jj")},
            free=(("jj", k + 1, N - 1),),
        )
        assert set(m.apply_all((1,), {"N": 5})) == {(1, 2), (1, 3), (1, 4)}


class TestSymbolicCount:
    def test_box(self):
        c = symbolic_count([("i", 0, M - 1), ("j", 0, N - 1)])
        assert c.eval({"M": 3, "N": 4}) == 12

    def test_verify_count_grid(self):
        loops = [("k", 0, N - 1), ("j", k + 1, N - 1), ("i", k + 1, M - 1)]
        grid = [{"M": m, "N": n} for m in (3, 5, 9) for n in (2, 3) if m > n]
        assert verify_count(loops, grid)

    def test_verify_count_catches_mismatch(self):
        # formula assumes non-empty ranges; a domain violating it must fail
        loops = [("i", 5, N - 1)]
        assert not verify_count(loops, [{"N": 3}])  # empty range: count 0 != N-5

    def test_linexpr_to_poly(self):
        p = linexpr_to_poly(2 * k + 3)
        assert p.eval({"k": 4}) == 11


class TestLexHelpers:
    def test_lt(self):
        assert lex_lt((0, 5), (1, 0))
        assert not lex_lt((1, 0), (0, 5))

    def test_lt_arity_check(self):
        with pytest.raises(ValueError):
            lex_lt((1,), (1, 2))

    def test_min_max(self):
        pts = [(1, 2), (0, 9), (1, 0)]
        assert lex_min(pts) == (0, 9)
        assert lex_max(pts) == (1, 2)

    def test_next(self):
        universe = [(0,), (2,), (5,)]
        assert lex_next((0,), universe) == (2,)
        assert lex_next((2,), universe) == (5,)
        assert lex_next((5,), universe) is None

    def test_sorted(self):
        assert lex_sorted([(2, 0), (0, 1)]) == [(0, 1), (2, 0)]


@given(st.integers(2, 7), st.integers(1, 6))
@settings(max_examples=25, deadline=None)
def test_relation_matches_enumeration(n, m):
    """apply_all over a domain equals per-point membership filtering."""
    rel = AffineMap(
        ("k",), ("k", "i"), {"k": k + 1, "i": var("ii")},
        guards=(Constraint(N - 2 - k, ">="),),
        free=(("ii", 0, M - 1),),
    )
    for kk in range(n):
        tgts = set(rel.apply_all((kk,), {"N": n, "M": m}))
        expected = (
            {(kk + 1, x) for x in range(m)} if kk <= n - 2 else set()
        )
        assert tgts == expected
