"""Tests for the pooled multi-statement K-partition bound."""

from __future__ import annotations

import pytest

from repro import build_cdag, play_schedule
from repro.bounds import FIG5_OLD, multi_statement_bound
from repro.ir import Tracer
from repro.kernels import get_kernel
from tests.conftest import SMALL_PARAMS


def _multi(name):
    kern = get_kernel(name)
    return multi_statement_bound(
        kern.program, SMALL_PARAMS[name], kernel_name=name
    )


class TestStructure:
    def test_mgs_pools_five_statements(self):
        b = _multi("mgs")
        for stmt in ("Snrm", "Sr", "Sq", "SR", "SU"):
            assert stmt in b.notes
        # zero-dim statements are excluded
        assert "Snrm0" not in b.notes

    def test_statement_subset(self):
        kern = get_kernel("mgs")
        b = multi_statement_bound(
            kern.program, SMALL_PARAMS["mgs"], statements=("SR", "SU")
        )
        assert "Sq" not in b.notes

    def test_no_usable_statement_raises(self):
        kern = get_kernel("mgs")
        with pytest.raises(ValueError):
            multi_statement_bound(
                kern.program, SMALL_PARAMS["mgs"], statements=("Snrm0",)
            )


class TestAgainstPaper:
    def test_matches_fig5_old_within_15_percent(self):
        """Pooling all statements reproduces IOLB's published old-MGS bound
        shape (coefficient 1 on MN^2/sqrt(S), plus lower-order terms)."""
        b = _multi("mgs")
        for env in (
            {"M": 4000, "N": 1000, "S": 1024},
            {"M": 40_000, "N": 10_000, "S": 4096},
        ):
            ratio = b.evaluate(env) / FIG5_OLD["mgs"].evaluate(env)
            assert 0.85 < ratio < 1.15

    def test_leading_term_coefficient_one(self):
        """At scale, multi ~ MN^2/sqrt(S) with coefficient 1 (the SR and SU
        populations share segment capacity)."""
        b = _multi("mgs")
        m, n, s = 400_000, 100_000, 4096
        val = b.evaluate({"M": m, "N": n, "S": s})
        # the sigma=1 capacities add 9S to the 2S^{3/2} denominator: a
        # 4.5/sqrt(S) ~ 7% correction at S=4096 that vanishes as S grows
        assert val == pytest.approx(m * n * n / s**0.5, rel=0.08)
        val2 = b.evaluate({"M": m, "N": n, "S": 2**20})
        assert val2 == pytest.approx(m * n * n / 2**10.0, rel=0.01)


class TestSoundness:
    @pytest.mark.parametrize("name", ["mgs", "qr_a2v", "gehd2"])
    def test_below_measured(self, name):
        b = _multi(name)
        kern = get_kernel(name)
        params = SMALL_PARAMS[name]
        g = build_cdag(kern.program, params)
        t = Tracer()
        kern.program.runner(dict(params), t)
        for s in (4, 8, 16):
            measured = play_schedule(g, t.schedule, s, "belady").loads
            assert b.evaluate({**params, "S": s}) <= measured + 1e-9

    def test_u_coefficients_rounded_up(self):
        """The sigma=3/2 disjoint capacity is S^1.5 with coefficient
        rounded *up* (1.000000001-ish), never below the exact value."""
        b = _multi("mgs")
        assert "U~1S^1.5" in b.notes
