"""Tests for the regime analysis machinery (§5.1 as code)."""

from __future__ import annotations

import pytest

from repro.bounds import crossover, regime_table
from tests.conftest import derivation_for


class TestCrossover:
    def test_theorem5_cases_cross_at_m_over_sqrt2(self):
        rep = derivation_for("mgs")
        env = {"M": 10_000, "N": 5_000}
        s = crossover(rep.hourglass_small_cache, rep.hourglass, env)
        assert s == pytest.approx(10_000 / 2**0.5, rel=0.001)

    def test_no_crossover_returns_none(self):
        rep = derivation_for("mgs")
        env = {"M": 10_000, "N": 5_000}
        # the small-cache bound never overtakes itself shifted: compare a
        # bound against itself -> b2 >= b1 everywhere -> crossover at s_lo
        s = crossover(rep.hourglass, rep.hourglass, env)
        assert s == 1

    def test_classical_overtakes_hourglass_at_huge_s(self):
        """When S approaches MN the hourglass advantage vanishes (§5.1's
        'otherwise the whole matrix fits in cache')."""
        rep = derivation_for("mgs")
        env = {"M": 10_000, "N": 5_000}
        s = crossover(rep.hourglass, rep.classical, env, s_lo=1 << 13)
        assert s is not None
        assert 1 << 17 <= s <= 1 << 24


class TestRegimeTable:
    def test_mgs_regime_progression(self):
        """§5.1's case analysis falls out: small-cache bound below ~M/sqrt(2),
        the main hourglass bound above, classical at the extremes."""
        rep = derivation_for("mgs")
        env = {"M": 10_000, "N": 5_000}
        regimes = regime_table(rep, env, [1 << k for k in range(2, 23)])
        methods = [r.method for r in regimes]
        assert "hourglass-small-cache" in methods
        assert "hourglass" in methods
        # the small-cache regime precedes the main one
        assert methods.index("hourglass-small-cache") < methods.index("hourglass")

    def test_ranges_are_contiguous_and_ordered(self):
        rep = derivation_for("mgs")
        env = {"M": 1000, "N": 500}
        regimes = regime_table(rep, env, [4, 8, 16, 32, 64, 128])
        for a, b in zip(regimes, regimes[1:]):
            assert a.s_hi < b.s_lo

    def test_matmul_single_regime(self):
        """No hourglass: the classical bound binds everywhere."""
        rep = derivation_for("matmul")
        env = {"NI": 512, "NJ": 512, "NK": 512}
        regimes = regime_table(rep, env, [16, 256, 4096])
        assert len(regimes) == 1
        assert regimes[0].method == "classical-disjoint"

    def test_cli_regimes(self, capsys):
        from repro.cli import main

        assert main(["regimes", "mgs", "--params", "M=1000,N=500", "--max-log-s", "12"]) == 0
        out = capsys.readouterr().out
        assert "binding method" in out
