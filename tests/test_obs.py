"""Tests for the observability layer (:mod:`repro.obs`).

Covers the tracer core (nesting, reentrancy, exception-safety, thread
safety, counter monotonicity), the disabled-mode no-op guarantees, the
exact shape of the ``iolb-metrics/1`` and Chrome ``trace_event`` dumps,
and the ``iolb stats`` summarize/diff machinery.  Timing assertions are
limited to non-negativity — wall-clock magnitudes are machine-dependent.
"""

from __future__ import annotations

import json
import threading
from concurrent.futures import ThreadPoolExecutor

import pytest

from repro import obs


class TestSpanTracer:
    def test_disabled_by_default_and_null_span_is_shared(self):
        assert not obs.enabled()
        s1 = obs.span("a")
        s2 = obs.span("b", k=1)
        assert s1 is s2  # one stateless singleton, no allocation per call
        with s1:
            pass
        assert obs.spans() == []

    def test_add_and_gauge_are_noops_while_disabled(self):
        obs.add("x", 5)
        obs.gauge("g", 1.5)
        assert obs.counters() == {}
        assert obs.gauges() == {}

    def test_span_records_wall_and_cpu(self):
        obs.enable()
        with obs.span("work", kernel="mgs"):
            sum(range(1000))
        (rec,) = obs.spans()
        assert rec.name == "work"
        assert rec.path == "work"
        assert rec.depth == 0
        assert rec.wall_us >= 0
        assert rec.cpu_us >= 0
        assert rec.start_us >= 0
        assert rec.tid == threading.get_ident()
        assert rec.args == {"kernel": "mgs"}

    def test_nesting_chains_paths_and_depths(self):
        obs.enable()
        with obs.span("outer"):
            with obs.span("mid"):
                with obs.span("inner"):
                    pass
            with obs.span("mid"):
                pass
        by_completion = [(s.path, s.depth) for s in obs.spans()]
        assert by_completion == [
            ("outer/mid/inner", 2),
            ("outer/mid", 1),
            ("outer/mid", 1),
            ("outer", 0),
        ]

    def test_reentrancy_same_name_nested(self):
        """Recursive instrumented code nests a span inside itself."""
        obs.enable()

        def rec(n):
            with obs.span("rec"):
                if n:
                    rec(n - 1)

        rec(2)
        paths = sorted(s.path for s in obs.spans())
        assert paths == ["rec", "rec/rec", "rec/rec/rec"]

    def test_exception_safety(self):
        """A raising body still records the span, pops the stack, and
        propagates the exception unswallowed."""
        obs.enable()
        with pytest.raises(RuntimeError, match="boom"):
            with obs.span("outer"):
                with obs.span("failing"):
                    raise RuntimeError("boom")
        assert sorted(s.path for s in obs.spans()) == ["outer", "outer/failing"]
        # the per-thread stack is clean: a new span is a root again
        with obs.span("after"):
            pass
        assert obs.spans()[-1].path == "after"

    def test_thread_safety_under_pool(self):
        """Concurrent workers each build their own span tree; records merge
        without loss and paths never cross threads."""
        obs.enable()
        n_workers, n_tasks = 4, 32

        def work(i):
            with obs.span("task", i=i):
                with obs.span("step"):
                    obs.add("work.done")

        with ThreadPoolExecutor(max_workers=n_workers) as pool:
            list(pool.map(work, range(n_tasks)))
        spans = obs.spans()
        assert len(spans) == 2 * n_tasks
        assert obs.counters()["work.done"] == n_tasks
        by_path = {}
        for s in spans:
            by_path.setdefault(s.path, []).append(s)
        # nesting resolved per thread: every inner span is task/step,
        # never task/task/step or a bare step
        assert set(by_path) == {"task", "task/step"}
        assert len(by_path["task"]) == n_tasks
        assert len(by_path["task/step"]) == n_tasks
        for s in by_path["task/step"]:
            assert s.depth == 1

    def test_counter_monotonicity(self):
        obs.enable()
        obs.add("c")
        obs.add("c", 0)  # zero increments allowed
        obs.add("c", 9)
        assert obs.counters()["c"] == 10
        with pytest.raises(ValueError, match="negative"):
            obs.add("c", -1)
        assert obs.counters()["c"] == 10  # unchanged by the rejected call

    def test_gauge_last_write_wins(self):
        obs.enable()
        obs.gauge("g", 1.0)
        obs.gauge("g", 2.5)
        assert obs.gauges() == {"g": 2.5}

    def test_reset_clears_everything_but_not_flag(self):
        obs.enable()
        with obs.span("s"):
            obs.add("c")
        obs.reset()
        assert obs.spans() == [] and obs.counters() == {} and obs.gauges() == {}
        assert obs.enabled()  # reset is orthogonal to enable/disable

    def test_aggregates_totals(self):
        obs.enable()
        for _ in range(3):
            with obs.span("a"):
                with obs.span("b"):
                    pass
        agg = obs.registry().aggregates()
        assert agg["a"]["count"] == 3
        assert agg["a/b"]["count"] == 3
        assert agg["a"]["wall_us"] >= agg["a/b"]["wall_us"] >= 0


class TestSinks:
    def _record_sample(self):
        obs.enable()
        with obs.span("phase", kernel="mgs"):
            with obs.span("sub"):
                pass
        obs.add("pkg.counter", 7)
        obs.gauge("pkg.gauge", 1.25)

    SPAN_KEYS = {"name", "path", "depth", "start_us", "wall_us", "cpu_us", "tid", "args"}

    def test_metrics_dict_exact_schema(self):
        self._record_sample()
        m = obs.metrics_dict(meta={"command": "derive"})
        assert set(m) == {
            "schema", "meta", "env", "counters", "gauges", "spans", "aggregates",
        }
        assert m["schema"] == obs.METRICS_SCHEMA == "iolb-metrics/1"
        assert m["meta"] == {"command": "derive"}
        assert m["counters"] == {"pkg.counter": 7}
        assert m["gauges"] == {"pkg.gauge": 1.25}
        assert [s["path"] for s in m["spans"]] == ["phase", "phase/sub"]  # by start
        for s in m["spans"]:
            assert set(s) == self.SPAN_KEYS
            assert s["wall_us"] >= 0 and s["cpu_us"] >= 0 and s["start_us"] >= 0
            assert isinstance(s["depth"], int) and isinstance(s["tid"], int)
        assert set(m["aggregates"]) == {"phase", "phase/sub"}
        for row in m["aggregates"].values():
            assert set(row) == {"count", "wall_us", "cpu_us"}
        json.dumps(m)  # fully JSON-serializable

    def test_write_metrics_json_roundtrip(self, tmp_path):
        self._record_sample()
        out = tmp_path / "m.json"
        obs.write_metrics_json(out, meta={"command": "x"})
        text = out.read_text()
        assert text.endswith("\n")
        m = json.loads(text)
        obs.check_schema(m)
        assert m["counters"]["pkg.counter"] == 7

    def test_metrics_dict_embeds_env_fingerprint(self):
        """Every dump records the machine that produced it (satellite: sinks
        previously carried no platform/git context)."""
        import platform

        self._record_sample()
        m = obs.metrics_dict()
        env = m["env"]
        assert env["python"] == platform.python_version()
        assert env["implementation"] == platform.python_implementation()
        assert env["cpu_count"] >= 1
        assert "platform" in env and "machine" in env and "git_sha" in env
        json.dumps(env)  # JSON-safe

    def test_check_schema_env_is_optional_but_validated(self):
        """Old dumps (no env block) still load; a malformed env does not."""
        self._record_sample()
        m = obs.metrics_dict()
        m.pop("env")
        obs.check_schema(m)  # accept-but-not-require
        m["env"] = "not-a-mapping"
        with pytest.raises(ValueError, match="env"):
            obs.check_schema(m)

    def test_chrome_trace_exact_schema(self):
        self._record_sample()
        t = obs.chrome_trace_dict()
        assert set(t) == {"displayTimeUnit", "traceEvents"}
        phases = [e["ph"] for e in t["traceEvents"]]
        # process_name + one thread_name (single thread), 2 spans, 1 counter
        assert phases == ["M", "M", "X", "X", "C"]
        meta = t["traceEvents"][0]
        assert meta["name"] == "process_name"
        thread_meta = t["traceEvents"][1]
        assert thread_meta["name"] == "thread_name"
        assert thread_meta["tid"] == 0
        x_events = [e for e in t["traceEvents"] if e["ph"] == "X"]
        for e in x_events:
            assert set(e) == {"ph", "name", "cat", "ts", "dur", "pid", "tid", "args"}
            assert e["ts"] >= 0 and e["dur"] >= 0
        assert {e["name"] for e in x_events} == {"phase", "sub"}
        assert x_events[0]["cat"] == "phase"  # package prefix before first "."
        (c_event,) = [e for e in t["traceEvents"] if e["ph"] == "C"]
        assert c_event["name"] == "pkg.counter"
        assert c_event["args"] == {"value": 7}
        # counter sample sits at the end of the span timeline
        assert c_event["ts"] >= max(e["ts"] + e["dur"] for e in x_events) - 1e-6
        json.dumps(t)

    def test_chrome_trace_multithreaded_tracks(self):
        """Concurrent spans from different threads land on different, stable
        tracks: tids are dense per-thread indices (never shared between
        threads, so tracks cannot interleave), assigned by first span start,
        and the export is deterministic for a given registry."""
        obs.enable()
        n_threads = 3
        barrier = threading.Barrier(n_threads)

        def work(i):
            barrier.wait()  # force all spans to be genuinely concurrent
            with obs.span("worker", i=i):
                with obs.span("step"):
                    barrier.wait()

        with ThreadPoolExecutor(max_workers=n_threads) as pool:
            list(pool.map(work, range(n_threads)))

        t = obs.chrome_trace_dict()
        x_events = [e for e in t["traceEvents"] if e["ph"] == "X"]
        assert len(x_events) == 2 * n_threads
        # dense, zero-based track ids; one per thread
        tids = {e["tid"] for e in x_events}
        assert tids == set(range(n_threads))
        # each real thread maps to exactly one track and vice versa: group
        # spans by source thread via the registry records and line them up
        by_thread = {}
        for rec, ev in zip(
            sorted(obs.spans(), key=lambda s: (s.start_us, s.path)), x_events
        ):
            by_thread.setdefault(rec.tid, set()).add(ev["tid"])
        assert len(by_thread) == n_threads
        for tracks in by_thread.values():
            assert len(tracks) == 1  # a thread never straddles tracks
        assert len({next(iter(v)) for v in by_thread.values()}) == n_threads
        # every track is named, and the export is reproducible
        names = [
            e for e in t["traceEvents"] if e["ph"] == "M" and e["name"] == "thread_name"
        ]
        assert {e["tid"] for e in names} == tids
        assert obs.chrome_trace_dict() == t

    def test_render_tree_lists_spans_and_counters(self):
        self._record_sample()
        text = obs.render_tree()
        assert "profile:" in text
        assert "phase" in text and "sub" in text
        assert "pkg.counter" in text and "7" in text
        assert "pkg.gauge" in text

    def test_render_tree_empty_registry(self):
        assert "(no spans recorded)" in obs.render_tree()


class TestStats:
    def _dump(self, wall: float, count: int) -> dict:
        obs.enable()
        with obs.span("root"):
            obs.add("c", count)
        m = obs.metrics_dict()
        # make wall time deterministic for diff assertions
        m["aggregates"]["root"]["wall_us"] = wall
        obs.disable()
        obs.reset()
        return m

    def test_check_schema_rejects_non_dumps(self):
        with pytest.raises(ValueError, match="iolb-metrics/1"):
            obs.check_schema({"schema": "something-else"})
        with pytest.raises(ValueError, match="other name"):
            obs.check_schema([1, 2], source="other name")

    def test_summarize(self):
        m = self._dump(wall=1500.0, count=3)
        text = obs.summarize_metrics(m)
        assert "root" in text
        assert "1.5ms" in text
        assert "c" in text and "3" in text

    def test_summarize_top_truncates(self):
        obs.enable()
        for i in range(5):
            with obs.span(f"s{i}"):
                pass
        m = obs.metrics_dict()
        text = obs.summarize_metrics(m, top=2)
        assert "top 2 span paths" in text

    def test_diff_reports_deltas(self):
        a = self._dump(wall=1000.0, count=10)
        b = self._dump(wall=2000.0, count=15)
        text = obs.diff_metrics(a, b)
        assert "+100.0%" in text  # wall doubled
        assert "+5" in text and "+50.0%" in text  # counter 10 -> 15

    def _dump_with_gauge(self, wall: float, gauge: float) -> dict:
        obs.enable()
        with obs.span("root"):
            obs.gauge("tuner.best_block", gauge)
        m = obs.metrics_dict()
        m["aggregates"]["root"]["wall_us"] = wall
        obs.disable()
        obs.reset()
        return m

    def test_diff_reports_gauge_deltas(self):
        """Gauges were silently dropped from diffs (satellite fix): changed
        gauges now get their own table with the same percentage format."""
        a = self._dump_with_gauge(wall=1000.0, gauge=8.0)
        b = self._dump_with_gauge(wall=1000.0, gauge=12.0)
        text = obs.diff_metrics(a, b)
        assert "gauges that changed:" in text
        assert "tuner.best_block" in text
        assert "+4" in text and "+50.0%" in text

    def test_diff_identical_gauges_hidden(self):
        a = self._dump_with_gauge(wall=1000.0, gauge=8.0)
        assert obs.diff_metrics(a, a) == "no differences"

    def test_diff_gauge_appears_from_nothing(self):
        a = self._dump(wall=1000.0, count=1)
        b = self._dump(wall=1000.0, count=1)
        b["gauges"] = {"g.new": 3.5}
        text = obs.diff_metrics(a, b)
        assert "gauges that changed:" in text and "new" in text

    def test_diff_threshold_hides_small_moves(self):
        a = self._dump(wall=1000.0, count=1)
        b = self._dump(wall=1010.0, count=1)
        assert obs.diff_metrics(a, b, threshold_pct=5.0) == "no differences"

    def test_diff_identical_dumps(self):
        a = self._dump(wall=1000.0, count=1)
        assert obs.diff_metrics(a, a) == "no differences"


class TestStatsCLI:
    def _write_dump(self, tmp_path, name: str, count: int, gauge: float | None = None):
        obs.enable()
        with obs.span("cli.test"):
            obs.add("c", count)
            if gauge is not None:
                obs.gauge("g", gauge)
        p = tmp_path / name
        obs.write_metrics_json(p)
        obs.disable()
        obs.reset()
        return p

    def test_stats_summarize(self, tmp_path, capsys):
        from repro.cli import main

        p = self._write_dump(tmp_path, "a.json", 3)
        assert main(["stats", str(p)]) == 0
        out = capsys.readouterr().out
        assert "cli.test" in out and "counters:" in out

    def test_stats_diff(self, tmp_path, capsys):
        from repro.cli import main

        a = self._write_dump(tmp_path, "a.json", 3, gauge=2.0)
        b = self._write_dump(tmp_path, "b.json", 9, gauge=5.0)
        assert main(["stats", str(a), str(b)]) == 0
        out = capsys.readouterr().out
        assert "counters that changed" in out
        assert "+6" in out
        assert "gauges that changed" in out
        assert "+150.0%" in out  # gauge 2.0 -> 5.0, same _pct formatting

    def test_stats_missing_file_exits(self, tmp_path):
        from repro.cli import main

        with pytest.raises(SystemExit):
            main(["stats", str(tmp_path / "nope.json")])

    def test_stats_rejects_non_metrics_json(self, tmp_path):
        from repro.cli import main

        p = tmp_path / "junk.json"
        p.write_text('{"schema": "not-metrics"}')
        with pytest.raises(SystemExit):
            main(["stats", str(p)])


class TestCLIProfiling:
    def test_profile_flag_prints_tree_to_stderr_only(self, capsys):
        from repro.cli import main

        assert main(["derive", "mgs", "--profile"]) == 0
        cap = capsys.readouterr()
        assert "profile:" in cap.err
        assert "bounds.derive" in cap.err
        assert "profile:" not in cap.out
        # the CLI disabled + reset on the way out
        assert not obs.enabled()
        assert obs.spans() == [] and obs.counters() == {}

    def test_metrics_json_has_pipeline_phases_and_counters(self, tmp_path, capsys):
        from repro.cli import main

        out = tmp_path / "m.json"
        assert main(["derive", "mgs", "--metrics-json", str(out)]) == 0
        capsys.readouterr()
        m = json.loads(out.read_text())
        obs.check_schema(m)
        paths = {s["path"] for s in m["spans"]}
        assert any("frontend." in p for p in paths)
        assert any("polyhedral." in p for p in paths)
        assert any("bounds." in p for p in paths)
        packages = {n.split(".", 1)[0] for n, v in m["counters"].items() if v > 0}
        assert len(packages) >= 4, f"counters from only {sorted(packages)}"
        assert m["meta"]["command"] == "derive"

    def test_trace_out_is_loadable_chrome_trace(self, tmp_path, capsys):
        from repro.cli import main

        out = tmp_path / "t.json"
        assert main(["derive", "mgs", "--trace-out", str(out)]) == 0
        capsys.readouterr()
        t = json.loads(out.read_text())
        kinds = {e["ph"] for e in t["traceEvents"]}
        assert kinds == {"M", "X", "C"}
