"""Tests for affine forms (repro.polyhedral.affine)."""

from __future__ import annotations

from fractions import Fraction

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.polyhedral import LinExpr, aff, var


class TestLinExpr:
    def test_var_eval(self):
        assert var("i").eval({"i": 7}) == 7

    def test_const(self):
        assert aff(5).eval({}) == 5
        assert aff(5).is_const()

    def test_add(self):
        e = var("i") + var("j") + 3
        assert e.eval({"i": 1, "j": 2}) == 6

    def test_zero_coeffs_dropped(self):
        e = var("i") - var("i")
        assert e.is_const()
        assert e.variables() == frozenset()

    def test_scalar_mul(self):
        e = (var("i") + 1) * 3
        assert e.eval({"i": 2}) == 9

    def test_rmul(self):
        e = 3 * var("i")
        assert e.eval({"i": 4}) == 12

    def test_sub_and_rsub(self):
        assert (5 - var("i")).eval({"i": 2}) == 3
        assert (var("i") - 5).eval({"i": 2}) == -3

    def test_neg(self):
        assert (-var("i")).eval({"i": 3}) == -3

    def test_fraction_coeffs(self):
        e = var("i") * Fraction(1, 2)
        assert e.eval({"i": 5}) == Fraction(5, 2)

    def test_eval_unbound_raises(self):
        with pytest.raises(KeyError):
            var("i").eval({})

    def test_subs_with_expr(self):
        e = var("i") + var("j")
        e2 = e.subs({"i": var("k") + 1})
        assert e2.eval({"k": 2, "j": 3}) == 6

    def test_subs_with_number(self):
        e = var("i") * 2 + var("j")
        assert e.subs({"i": 4}).eval({"j": 1}) == 9

    def test_rename(self):
        e = var("i") + 2 * var("j")
        r = e.rename({"i": "x"})
        assert r.eval({"x": 1, "j": 2}) == 5

    def test_equality_and_hash(self):
        a = var("i") + 1
        b = aff(1) + var("i")
        assert a == b and hash(a) == hash(b)

    def test_coeff_accessor(self):
        e = 2 * var("i") - var("j")
        assert e.coeff("i") == 2
        assert e.coeff("j") == -1
        assert e.coeff("zz") == 0

    def test_repr_smoke(self):
        assert repr(var("i") - 1) == "i-1"
        assert repr(aff(0)) == "0"


@given(
    st.integers(-5, 5), st.integers(-5, 5), st.integers(-5, 5),
    st.integers(-9, 9), st.integers(-9, 9),
)
@settings(max_examples=50, deadline=None)
def test_affine_arithmetic_pointwise(a, b, c, i, j):
    e1 = a * var("i") + b * var("j") + c
    e2 = b * var("i") - c
    env = {"i": i, "j": j}
    assert (e1 + e2).eval(env) == e1.eval(env) + e2.eval(env)
    assert (e1 - e2).eval(env) == e1.eval(env) - e2.eval(env)
    assert (e1 * 3).eval(env) == 3 * e1.eval(env)
