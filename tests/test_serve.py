"""Tests for the derivation service: protocol, coalescing, pool, telemetry.

The deterministic serving invariants (the ones CI gates on) are:

* ``serve.executed`` equals the number of *distinct* request keys — never
  the number of requests;
* every non-executed successful request is accounted for as either a
  backend hit or a coalesced wait:
  ``backend_hits + coalesced == requests - executed``.

Both hold under any thread/worker interleaving, which is what makes them
safe to assert in tests that drive a real socket with real concurrency.
The pinned-coalescing test goes further and *blocks* the one execution
until the coalescing counter proves every twin is parked on it.
"""

from __future__ import annotations

import json
import queue
import re
import threading
import time
import urllib.request

import pytest

from repro import obs
from repro.obs.stats import check_schema
from repro.serve import (
    IolbServer,
    ServeRequestError,
    WorkerPool,
    canonical_request,
    execute_request,
    mixed_burst,
    request_key,
    run_load,
)
from repro.serve import protocol
from repro.serve.loadgen import _post

# ---------------------------------------------------------------------------
# protocol: canonicalization + keys
# ---------------------------------------------------------------------------


class TestProtocol:
    def test_key_ignores_spelling(self):
        a = canonical_request(
            "simulate", {"kernel": "matmul", "params": {"NK": 4, "NI": 4, "NJ": 4}, "s": 16}
        )
        b = canonical_request(
            "simulate",
            {
                "kernel": "matmul",
                "params": {"NI": "4", "NJ": 4, "NK": "4"},
                "s": "16",
                "policy": "belady",  # the default, spelled out
            },
        )
        assert a == b
        assert request_key("simulate", a) == request_key("simulate", b)

    def test_key_separates_kinds_and_payloads(self):
        sim = canonical_request("simulate", {"kernel": "mgs", "s": 16})
        sim2 = canonical_request("simulate", {"kernel": "mgs", "s": 17})
        assert request_key("simulate", sim) != request_key("simulate", sim2)
        der = canonical_request("derive", {"kernel": "mgs"})
        assert request_key("derive", der) != request_key("simulate", sim)

    def test_simulate_defaults_from_kernel(self):
        from repro.kernels import KERNELS

        c = canonical_request("simulate", {"kernel": "mgs", "s": 12})
        assert c["params"] == dict(KERNELS["mgs"].default_params)
        assert c["policy"] == "belady"

    @pytest.mark.parametrize(
        ("kind", "payload", "match"),
        [
            ("derive", {"kernel": "nope"}, "unknown kernel"),
            ("derive", {"kernel": "mgs", "bogus": 1}, "unknown field"),
            ("derive", {"kernel": "mgs", "eval": {"M": 5}}, "cache size S"),
            ("simulate", {"kernel": "mgs"}, "missing required field 's'"),
            ("simulate", {"kernel": "mgs", "s": 0}, "must be >= 1"),
            ("simulate", {"kernel": "mgs", "s": 8, "policy": "fifo"}, "unknown policy"),
            ("tune", {"algorithm": "tiled_mgs", "params": {"M": 8}, "s": 8}, "column count N"),
            ("lint", {"kernel": "nope"}, "unknown lintable kernel"),
            ("frobnicate", {}, "unknown request kind"),
        ],
    )
    def test_validation_errors(self, kind, payload, match):
        with pytest.raises(ServeRequestError, match=match):
            canonical_request(kind, payload)

    def test_cert_flag_changes_key_only_when_set(self):
        plain = canonical_request("derive", {"kernel": "mgs"})
        off = canonical_request("derive", {"kernel": "mgs", "cert": False})
        on = canonical_request("derive", {"kernel": "mgs", "cert": True})
        # cert:false canonicalizes away — old clients keep their cache keys
        assert off == plain
        assert request_key("derive", off) == request_key("derive", plain)
        assert request_key("derive", on) != request_key("derive", plain)

    def test_execute_derive_with_cert(self):
        from repro.cert import check_certificate

        plain = execute_request(
            "derive", canonical_request("derive", {"kernel": "mgs"})
        )
        assert "certificate" not in plain
        out = execute_request(
            "derive", canonical_request("derive", {"kernel": "mgs", "cert": True})
        )
        cert = out["certificate"]
        assert cert["schema"] == "iolb-cert/1"
        assert json.loads(json.dumps(cert)) == cert  # JSON-serializable
        rep = check_certificate(cert)
        assert rep.ok(), rep.summary()

    def test_execute_derive_with_eval(self):
        c = canonical_request("derive", {"kernel": "mgs", "eval": {"M": 10, "N": 7, "S": 16}})
        out = execute_request("derive", c)
        assert out["kernel"] == "mgs"
        assert out["bounds"] and out["summary"]
        assert out["eval"]["value"] > 0

    def test_execute_simulate_reports_bound_and_io(self):
        c = canonical_request(
            "simulate", {"kernel": "mgs", "params": {"M": 5, "N": 4}, "s": 12}
        )
        out = execute_request("simulate", c)
        assert out["loads"] > 0 and out["computes"] > 0
        assert out["bound"] > 0 and out["bound_method"]

    def test_execute_lint(self):
        out = execute_request("lint", canonical_request("lint", {"kernel": "mgs"}))
        assert out["program"] == "mgs"

    def test_execute_sleep_internal_kind(self):
        assert execute_request("sleep", canonical_request("sleep", {"ms": 0})) == {
            "slept_ms": 0.0
        }


# ---------------------------------------------------------------------------
# the server, inline execution mode (workers=0)
# ---------------------------------------------------------------------------


@pytest.fixture
def inline_server(tmp_path):
    srv = IolbServer(workers=0, memo_dir=tmp_path / "memo").start()
    yield srv
    srv.shutdown()


def _get_json(url: str) -> tuple[int, dict]:
    with urllib.request.urlopen(url, timeout=30) as resp:
        return resp.status, json.loads(resp.read().decode())


class TestInlineServer:
    def test_roundtrip_then_backend_hit(self, inline_server):
        req = {"kind": "derive", "payload": {"kernel": "mgs"}}
        status, _, doc = _post(inline_server.url, req, timeout=60)
        assert status == 200
        assert doc["schema"] == "iolb-serve/1"
        assert doc["cached"] is False
        assert doc["result"]["kernel"] == "mgs"

        status2, _, doc2 = _post(inline_server.url, req, timeout=60)
        assert status2 == 200
        assert doc2["cached"] is True
        assert doc2["result"] == doc["result"]
        assert doc2["key"] == doc["key"]

        c = inline_server.registry.counters()
        assert c["serve.requests"] == 2
        assert c["serve.executed"] == 1
        assert c["serve.backend_hits"] == 1

    def test_bad_requests(self, inline_server):
        status, _, doc = _post(
            inline_server.url, {"kind": "derive", "payload": {"kernel": "nope"}}, 30
        )
        assert status == 400 and "unknown kernel" in doc["error"]
        status, _, doc = _post(
            inline_server.url, {"kind": "frobnicate", "payload": {}}, 30
        )
        assert status == 404
        assert inline_server.registry.counters()["serve.bad_requests"] == 1

    def test_health_stats_metrics_endpoints(self, inline_server):
        _post(inline_server.url, {"kind": "derive", "payload": {"kernel": "mgs"}}, 60)

        status, health = _get_json(f"{inline_server.url}/healthz")
        assert status == 200 and health["ok"] is True

        status, stats = _get_json(f"{inline_server.url}/v1/stats")
        assert status == 200
        assert stats["requests"] == 1 and stats["executed"] == 1
        assert stats["latency_p50_ms"] > 0

        status, metrics = _get_json(f"{inline_server.url}/v1/metrics")
        assert status == 200
        check_schema(metrics)  # a valid iolb-metrics/1 dump
        assert metrics["meta"]["command"] == "serve"
        assert metrics["counters"]["serve.requests"] == 1
        assert "serve.latency_p99_ms" in metrics["gauges"]
        assert "serve.hit_rate" in metrics["gauges"]
        assert "serve.queue_depth" in metrics["gauges"]
        assert any(s["path"].startswith("serve.") for s in metrics["spans"])

    def test_sequential_burst_is_half_hits(self, inline_server):
        rep = run_load(inline_server.url, mixed_burst(repeat=2), concurrency=1)
        assert rep.ok(), rep.summary()
        c = inline_server.registry.counters()
        assert c["serve.requests"] == 8
        assert c["serve.executed"] == 4
        assert c["serve.backend_hits"] == 4
        inline_server.refresh_gauges()
        assert inline_server.registry.gauges()["serve.hit_rate"] == 0.5

    def test_concurrent_burst_invariant(self, inline_server):
        burst = mixed_burst(repeat=3)  # 12 requests, 4 distinct
        rep = run_load(inline_server.url, burst, concurrency=6)
        assert rep.ok(), rep.summary()
        c = inline_server.registry.counters()
        assert c["serve.requests"] == 12
        assert c["serve.executed"] == 4  # one execution per distinct key
        assert c["serve.backend_hits"] + c.get("serve.coalesced", 0) == 8

    def test_request_id_header_correlates_with_key(self, inline_server):
        body = json.dumps({"kernel": "mgs", "s": 16}).encode()
        rids = []
        for _ in range(2):
            req = urllib.request.Request(
                f"{inline_server.url}/v1/simulate",
                data=body,
                headers={"Content-Type": "application/json"},
            )
            with urllib.request.urlopen(req, timeout=60) as resp:
                rid = resp.headers["X-Iolb-Request-Id"]
                payload = json.loads(resp.read().decode())
            # the id prefix IS the request-key prefix -> grep-able across
            # the response body, the access log and the serve.* span
            assert rid.split("-")[0] == payload["key"][:8]
            rids.append(rid)
        seqs = [int(r.rsplit("-", 1)[1]) for r in rids]
        assert seqs[1] > seqs[0]  # monotonic across requests
        # keyless endpoints still carry an id
        with urllib.request.urlopen(f"{inline_server.url}/healthz", timeout=30) as resp:
            assert resp.headers["X-Iolb-Request-Id"]

    def test_access_log_line_per_request(self, inline_server, capfd):
        _post(
            inline_server.url,
            {"kind": "simulate", "payload": {"kernel": "mgs", "s": 12}},
            60,
        )
        _post(
            inline_server.url,
            {"kind": "simulate", "payload": {"kernel": "mgs", "s": 12}},
            60,
        )
        # the log line is written after the response bytes, so the client
        # can observe the reply before the handler thread prints — poll
        lines: list[str] = []
        deadline = time.time() + 5.0
        while len(lines) < 2 and time.time() < deadline:
            err = capfd.readouterr().err
            lines += [ln for ln in err.splitlines() if ln.startswith("iolb-serve:")]
            if len(lines) < 2:
                time.sleep(0.02)
        assert len(lines) == 2
        # lines are written after the response bytes, so arrival order is
        # not request order — assert one miss + one cached, same key
        for line in lines:
            assert re.search(
                r"method=POST path=/v1/simulate key=[0-9a-f]{12} status=200"
                r" latency_us=\d+ hit=(miss|cached) id=[0-9a-f]{8}-\d+",
                line,
            ), line
        assert sorted(ln.split(" hit=")[1].split(" ")[0] for ln in lines) == [
            "cached",
            "miss",
        ]
        keys = {re.search(r" key=([0-9a-f]{12}) ", ln).group(1) for ln in lines}
        assert len(keys) == 1

    def test_status_page_reflects_live_gauges(self, inline_server):
        # half-hit burst first, so the page has real hit-rate/latency data
        rep = run_load(inline_server.url, mixed_burst(repeat=2), concurrency=1)
        assert rep.ok(), rep.summary()
        req = urllib.request.Request(f"{inline_server.url}/status")
        with urllib.request.urlopen(req, timeout=30) as resp:
            assert resp.status == 200
            assert resp.headers["Content-Type"].startswith("text/html")
            assert resp.headers["X-Iolb-Request-Id"]
            html = resp.read().decode()
        # the same renderer as `iolb explore`: nav, sections, service tiles
        for anchor in ("curves", "flame", "lint", "certs", "bench", "metrics"):
            assert f'id="{anchor}"' in html
        assert 'id="service"' in html
        assert "hit rate" in html and "50.00%" in html  # 8 requests, 4 hits
        assert "serve.latency_p50_ms" in html  # gauge from the live registry
        assert "serve.hit_rate" in html
        assert '<meta http-equiv="refresh" content="5">' in html
        assert not re.search(r'(?:src|href)\s*=\s*"https?://', html)
        assert "<script" not in html.lower()

    def test_status_json_mirrors_page_inputs(self, inline_server):
        run_load(inline_server.url, mixed_burst(repeat=2), concurrency=1)
        status, doc = _get_json(f"{inline_server.url}/status.json")
        assert status == 200
        assert doc["stats"]["hit_rate"] == 0.5
        check_schema(doc["metrics"])  # the page's metrics input is a valid dump
        assert doc["metrics"]["counters"]["serve.requests"] == 8


# ---------------------------------------------------------------------------
# coalescing, pinned: K identical in-flight requests, exactly one execution
# ---------------------------------------------------------------------------


def test_coalescing_pinned(tmp_path, monkeypatch):
    """Block the single execution until the coalescing counter proves the
    other K-1 identical requests are parked on it, then release and check
    everyone got the one result."""
    release = threading.Event()
    calls: list[str] = []

    def blocking_execute(kind, canonical):
        calls.append(kind)
        if not release.wait(timeout=30):
            raise RuntimeError("test never released the execution")
        return {"pinned": True}

    monkeypatch.setattr(protocol, "execute_request", blocking_execute)
    srv = IolbServer(workers=0, memo_dir=tmp_path / "memo").start()
    try:
        K = 5
        docs: list[dict] = []
        lock = threading.Lock()

        def client():
            status, _, doc = _post(
                srv.url, {"kind": "derive", "payload": {"kernel": "mgs"}}, 60
            )
            with lock:
                docs.append((status, doc))

        threads = [threading.Thread(target=client) for _ in range(K)]
        for t in threads:
            t.start()

        deadline = time.time() + 15
        while time.time() < deadline:
            if srv.registry.counters().get("serve.coalesced", 0) == K - 1:
                break
            time.sleep(0.01)
        assert srv.registry.counters().get("serve.coalesced", 0) == K - 1
        assert len(calls) == 1  # all twins parked, exactly one execution running

        release.set()
        for t in threads:
            t.join(timeout=30)

        assert [s for s, _ in docs] == [200] * K
        assert all(d["result"] == {"pinned": True} for _, d in docs)
        assert sum(d["coalesced"] for _, d in docs) == K - 1
        c = srv.registry.counters()
        assert c["serve.executed"] == 1
        assert c["serve.requests"] == K
    finally:
        release.set()
        srv.shutdown()


def test_coalesced_waiter_times_out(tmp_path, monkeypatch):
    release = threading.Event()

    def blocking_execute(kind, canonical):
        release.wait(timeout=30)
        return {"late": True}

    monkeypatch.setattr(protocol, "execute_request", blocking_execute)
    srv = IolbServer(workers=0, memo_dir=None, request_timeout=0.2).start()
    try:
        first: list[int] = []

        def client():
            status, _, _doc = _post(
                srv.url, {"kind": "derive", "payload": {"kernel": "mgs"}}, 60
            )
            first.append(status)

        t = threading.Thread(target=client)
        t.start()
        deadline = time.time() + 10
        while time.time() < deadline and not srv._inflight:
            time.sleep(0.01)

        status, _, doc = _post(
            srv.url, {"kind": "derive", "payload": {"kernel": "mgs"}}, 60
        )
        assert status == 504
        assert "timed out" in doc["error"]
        assert srv.registry.counters()["serve.timeouts"] == 1

        release.set()
        t.join(timeout=30)
        assert first == [200]
    finally:
        release.set()
        srv.shutdown()


# ---------------------------------------------------------------------------
# backpressure: a full shard queue is an immediate 503, not latency
# ---------------------------------------------------------------------------


class _FullPool:
    """A pool whose every queue is full (and which tolerates shutdown)."""

    def submit(self, job_id, key, kind, payload):
        raise queue.Full

    def depth(self):
        return 0

    def close(self, timeout=None):
        pass


def test_queue_full_is_503(tmp_path):
    srv = IolbServer(workers=0, memo_dir=tmp_path / "memo")
    srv._pool = _FullPool()
    try:
        status, body = srv.handle_request("derive", {"kernel": "mgs"})
        assert status == 503
        assert "queue full" in body["error"]
        c = srv.registry.counters()
        assert c["serve.queue_full"] == 1
        assert not srv._inflight  # the slot was rolled back, nothing leaks
        # a waiter that raced onto the doomed slot is resolved, not stranded
        status2, _ = srv.handle_request("derive", {"kernel": "mgs"})
        assert status2 == 503
    finally:
        srv.shutdown()


# ---------------------------------------------------------------------------
# the real worker pool: sharded execution + counter shipping
# ---------------------------------------------------------------------------


def test_pool_server_executes_once_and_ships_counters(tmp_path):
    with IolbServer(workers=2, memo_dir=tmp_path / "memo") as srv:
        rep = run_load(srv.url, mixed_burst(repeat=3), concurrency=6, timeout=120)
        assert rep.ok(), rep.summary()
        c = srv.registry.counters()
        assert c["serve.requests"] == 12
        assert c["serve.executed"] == 4
        assert c.get("serve.backend_hits", 0) + c.get("serve.coalesced", 0) == 8
        # engine work counters recorded inside the worker *processes* were
        # shipped back over the result channel and merged here
        assert any(k.startswith(("pebble.", "ir.", "polyhedral.")) for k in c), c
        # a second identical burst is pure backend hits
        rep2 = run_load(srv.url, mixed_burst(repeat=1), concurrency=2, timeout=120)
        assert rep2.ok(), rep2.summary()
        c2 = srv.registry.counters()
        assert c2["serve.executed"] == 4
        assert c2["serve.backend_hits"] == c.get("serve.backend_hits", 0) + 4


def test_worker_pool_sharding_and_backpressure():
    pool = WorkerPool(workers=1, queue_cap=1, batch_max=4)
    try:
        key = request_key("sleep", canonical_request("sleep", {"ms": 400}))
        assert pool.shard_of(key) == pool.shard_of(key) == 0

        results: dict[int, tuple] = {}
        got = threading.Event()

        def on_result(job_id, ok, result, counters, batch_size):
            results[job_id] = (ok, result, batch_size)
            if len(results) == 2:
                got.set()

        pool.start_collector(on_result)
        pool.submit(0, key, "sleep", {"ms": 400})
        # wait until the worker has taken job 0 off the queue...
        deadline = time.time() + 10
        while time.time() < deadline and pool.depth() > 0:
            time.sleep(0.01)
        pool.submit(1, key, "sleep", {"ms": 1})  # ...fills the cap-1 queue
        with pytest.raises(queue.Full):
            pool.submit(2, key, "sleep", {"ms": 1})  # bounded out

        assert got.wait(timeout=30)
        assert results[0][0] and results[1][0]
        assert results[0][1]["slept_ms"] == 400
        # every job is covered by exactly one batch-size report
        assert sum(b for _, _, b in results.values() if b) == 2
    finally:
        pool.close()


# ---------------------------------------------------------------------------
# worker counter shipping, the tune_block_size fix the pool generalizes
# ---------------------------------------------------------------------------


def test_tuner_parallel_counters_match_serial():
    """jobs=2 used to silently drop every counter recorded in the worker
    processes; with capture + merge the parallel sweep now reports exactly
    the counters of the serial one."""
    from repro.bounds import tune_block_size
    from repro.kernels import get_tiled

    alg = get_tiled("tiled_mgs")
    params = {"M": 8, "N": 6}

    obs.enable()
    obs.reset()
    serial = tune_block_size(alg, params, 48, mode="coarse", jobs=1, memo=None)
    c_serial = obs.counters()

    obs.reset()
    par = tune_block_size(alg, params, 48, mode="coarse", jobs=2, memo=None)
    c_parallel = obs.counters()

    assert par.best_block == serial.best_block
    assert par.best_loads == serial.best_loads
    assert c_parallel == c_serial
    assert c_parallel.get("cache.events_simulated", 0) > 0
