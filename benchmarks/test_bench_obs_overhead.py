"""OBS OVERHEAD — disabled instrumentation must cost < 5%.

The observability layer (:mod:`repro.obs`) promises to be no-op cheap when
off: hot loops carry no per-event hooks, only aggregate-at-end ``obs.add``
calls behind one ``obs.enabled()`` flag test.  This bench pins that promise
on the hottest loop in the repository — the O(T log S) Belady engine of the
ISSUE-1 trace-engine bench — by timing the *instrumented* simulator against
a verbatim copy of the pre-instrumentation implementation kept below
(``_belady_pre_obs``).  An in-process baseline is immune to machine speed,
so the guard is a ratio, not an absolute time; min-of-k timing discards
scheduler noise.  The provenance record from the run that froze the < 5%
budget lives in the ``iolb bench`` history store
(``benchmarks/history/20260806T000000Z-obs-overhead.json``, suite
``obs-overhead``), and the budget itself is read from that record's meta
block so the number is stated exactly once.

Enabled-mode cost is also measured and reported (informational: profiling
is opt-in, so it has no budget — it only has to stay sane).

``OBS_BENCH_EVENTS`` shrinks the trace for CI smoke runs; the ratio
assertion holds at every size because both sides shrink together.
"""

from __future__ import annotations

import os
import time
from heapq import heappop, heappush
from pathlib import Path

import numpy as np

from benchmarks.conftest import emit
from benchmarks.test_bench_trace_engine import _synthetic_events
from repro import obs
from repro.cache import simulate_belady
from repro.cache.sim import CacheStats, _as_arrays
from repro.ir import TraceArrays
from repro.obs.history import load_record
from repro.report import render_table

N_EVENTS = int(os.environ.get("OBS_BENCH_EVENTS", "400000"))
S = 1024
REPEATS = 5

#: provenance record (iolb-bench/1 history-store format) that froze the budget
BASELINE_RECORD = Path(__file__).parent / "history" / "20260806T000000Z-obs-overhead.json"

#: disabled instrumentation may cost at most this ratio (from the record's meta)
BUDGET = load_record(BASELINE_RECORD)["meta"]["budget"]["disabled_ratio_max"]


def _belady_pre_obs(trace, s: int) -> CacheStats:
    """Verbatim pre-instrumentation ``simulate_belady`` (the PR-2 baseline).

    Kept as an in-process control: any per-event cost the instrumented
    version picks up shows as a ratio > 1 against this copy on the same
    machine, same interpreter, same trace.  Do not instrument this one.
    """
    if s < 1:
        raise ValueError("cache capacity must be >= 1")
    ta = _as_arrays(trace)
    n = ta.n_addrs
    st = CacheStats(capacity=s, policy="belady", accesses=len(ta))
    if n == 0:
        return st
    rev = (n - 1) - ta.address_rank()
    packed = (ta.next_use() * n + rev[ta.addr_ids]).tolist()
    id_of_rev = np.empty(n, dtype=np.int64)
    id_of_rev[rev] = np.arange(n, dtype=np.int64)
    id_of_rev = id_of_rev.tolist()
    ids = ta.addr_ids.tolist()
    is_w = ta.is_write.tolist()
    resident = bytearray(n)
    dirty = bytearray(n)
    cur_key = [0] * n
    heap: list[int] = []
    size = 0
    push, pop = heappush, heappop
    loads = read_hits = write_hits = write_allocs = evict_stores = 0
    for a, w, p in zip(ids, is_w, packed):
        if resident[a]:
            if w:
                write_hits += 1
                dirty[a] = 1
            else:
                read_hits += 1
        else:
            if w:
                write_allocs += 1
            else:
                loads += 1
            if size >= s:
                while True:
                    q = -pop(heap)
                    v = id_of_rev[q % n]
                    if resident[v] and cur_key[v] == q:
                        break
                resident[v] = 0
                size -= 1
                if dirty[v]:
                    evict_stores += 1
                    dirty[v] = 0
            resident[a] = 1
            dirty[a] = w
            size += 1
        cur_key[a] = p
        push(heap, -p)
    st.loads, st.read_hits = loads, read_hits
    st.write_hits, st.write_allocs = write_hits, write_allocs
    st.evict_stores = evict_stores
    st.flush_stores = sum(1 for a in range(n) if resident[a] and dirty[a])
    return st


def _min_of_k(fn, *args, k: int = REPEATS) -> float:
    """Best-of-k wall time: the minimum is the least-noisy estimator for a
    deterministic CPU-bound function (everything above it is interference)."""
    best = float("inf")
    for _ in range(k):
        t0 = time.perf_counter()
        fn(*args)
        best = min(best, time.perf_counter() - t0)
    return best


def test_disabled_instrumentation_overhead_under_budget():
    events = _synthetic_events(N_EVENTS)
    ta = TraceArrays.from_events(events)

    assert not obs.enabled()  # the whole point: measure the default state
    base = _belady_pre_obs(ta, S)
    inst = simulate_belady(ta, S)
    assert (inst.loads, inst.stores) == (base.loads, base.stores)

    # interleave-free min-of-k for each side; warm-up happened above
    t_base = _min_of_k(_belady_pre_obs, ta, S)
    t_off = _min_of_k(simulate_belady, ta, S)

    obs.enable()
    try:
        t_on = _min_of_k(simulate_belady, ta, S)
    finally:
        obs.disable()
        obs.reset()

    ratio_off = t_off / t_base
    ratio_on = t_on / t_base
    emit(
        render_table(
            ["variant", "time (s)", "vs pre-obs baseline"],
            [
                ["pre-obs baseline (in-process copy)", f"{t_base:.3f}", "1.00x"],
                ["instrumented, obs disabled", f"{t_off:.3f}", f"{ratio_off:.3f}x"],
                ["instrumented, obs enabled", f"{t_on:.3f}", f"{ratio_on:.3f}x"],
            ],
            title=(
                f"obs overhead, Belady engine, {N_EVENTS} events, S={S},"
                f" min of {REPEATS}"
            ),
        )
    )
    assert ratio_off <= BUDGET, (
        f"disabled instrumentation costs {ratio_off:.3f}x the pre-obs"
        f" baseline (budget {BUDGET}x) — a hook crept into a hot loop?"
    )


def test_null_span_and_disabled_add_are_allocation_cheap():
    """The disabled fast path must not allocate per call: ``span()`` hands
    back one shared singleton and ``add`` returns after a flag test."""
    assert not obs.enabled()
    assert obs.span("a") is obs.span("b")

    n = 200_000
    t0 = time.perf_counter()
    for _ in range(n):
        obs.add("x", 1)
    per_call = (time.perf_counter() - t0) / n
    # generous sanity ceiling (~50x a function call): catches accidental
    # locking or dict work on the disabled path, not machine speed
    assert per_call < 5e-6, f"disabled obs.add costs {per_call * 1e9:.0f}ns/call"
