"""A1 — Appendix A.1: the tiled left-looking MGS upper bound (Figure 8).

Regenerates the appendix's accounting on simulated instances:

* reads ≈ MN²/(2B) + MN under (M+1)·B < S,
* writes ≈ MN + N²/2 (stores are lower order — §2's loads-only accounting),
* with B = ⌊S/M⌋ - 1 the total is ≈ M²N²/(2S),
* and the measured I/O sandwiches between Theorem 5 and the prediction,
  i.e. the lower bound is asymptotically *tight* (the paper's optimality
  claim for MGS).
"""

from __future__ import annotations

import pytest

from benchmarks.conftest import derivation_for, emit
from repro.bounds import THEOREMS, measure_tiled_io
from repro.kernels import TILED_MGS
from repro.report import render_table


def _sweep(m: int, n: int, caches):
    rows = []
    for s in caches:
        meas = measure_tiled_io(TILED_MGS, {"M": m, "N": n}, s)
        pred_reads = meas.predicted_reads + m * n  # leading + block streaming
        pred_writes = m * n + n * n / 2
        lb = THEOREMS["thm5-mgs-main"].evaluate({"M": m, "N": n, "S": s})
        rows.append(
            [
                s,
                meas.block,
                meas.stats.loads,
                pred_reads,
                meas.stats.stores,
                pred_writes,
                lb,
                meas.stats.loads / pred_reads,
            ]
        )
    return rows


def test_a1_read_accounting(benchmark):
    m, n = 24, 16
    rows = benchmark.pedantic(
        _sweep, args=(m, n, (64, 128, 256, 384)), rounds=1, iterations=1
    )
    emit(
        render_table(
            ["S", "B", "loads", "pred reads", "stores", "pred writes", "thm5", "load/pred"],
            rows,
            title=f"Appendix A.1: tiled MGS I/O accounting (M={m}, N={n}; Belady)",
        )
    )
    for s, b, loads, pred_reads, stores, pred_writes, lb, ratio in rows:
        assert 0.3 <= ratio <= 1.3, f"S={s}: loads {loads} vs predicted {pred_reads}"
        assert stores <= 1.5 * pred_writes
        assert lb <= loads  # the sandwich's lower slice


def test_a1_factor_b_saving():
    """Growing B cuts the dominant read term (the appendix's 'reduction of
    the I/O by a factor B').  S is chosen so every tested block fits but the
    matrix does not; Belady's slack capacity gives extra reuse the appendix
    does not count, so we assert strict monotone improvement and a >= 2.5x
    saving across the 8x block growth rather than exact halving."""
    m, n, s = 32, 24, 300  # matrix (768 elems) doesn't fit; (M+1)*8 < S
    loads = {}
    for b in (1, 2, 4, 8):
        meas = measure_tiled_io(TILED_MGS, {"M": m, "N": n}, s, block=b)
        loads[b] = meas.stats.loads
    rows = [[b, loads[b]] for b in sorted(loads)]
    emit(render_table(["B", "loads"], rows, title="A.1: factor-B saving (S=300)"))
    assert loads[1] > loads[2] > loads[4] > loads[8]
    assert loads[1] / loads[8] >= 2.5


def test_a1_total_io_scales_inverse_s():
    """Total I/O ~ M^2 N^2 / (2S): doubling S roughly halves the loads
    (B jumps in integer steps, so the ratio wobbles around 2)."""
    m, n = 40, 32
    loads = [
        measure_tiled_io(TILED_MGS, {"M": m, "N": n}, s).stats.loads
        for s in (160, 320, 640)
    ]
    assert 1.5 <= loads[0] / loads[1] <= 3.0
    assert 1.5 <= loads[1] / loads[2] <= 3.0


def test_a1_lower_bound_tight_within_constant():
    """The optimality claim: measured tiled I/O / Theorem 5 stays O(1)."""
    ratios = []
    for m, n in ((16, 12), (24, 16), (32, 24)):
        s = 2 * m + 16
        meas = measure_tiled_io(TILED_MGS, {"M": m, "N": n}, s)
        lb = THEOREMS["thm5-mgs-main"].evaluate({"M": m, "N": n, "S": s})
        ratios.append(meas.stats.loads / lb)
    assert all(1.0 <= r < 30 for r in ratios)
    assert max(ratios) < 2.5 * min(ratios)
