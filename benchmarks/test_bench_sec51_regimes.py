"""SEC51 — §5.1: the asymptotic regime analysis of the MGS bound.

Regenerates the section's case analysis as a numeric sweep over S:

* S <= M/2:  the small-cache bound gives >= MN²/8 (-> MN²/4 as S -> 0);
* M/2 <= S:  the main bound gives >= M²N²/(24S) (-> M²N²/(8S) as M/S -> 0);
* the old classical bound Omega(MN²/sqrt(S)) is dominated in both regimes
  (by factors Theta(sqrt(S)) and Theta(M/sqrt(S)) respectively);
* the crossover between the two theorem cases sits near S ~ M.
"""

from __future__ import annotations

import pytest

from benchmarks.conftest import derivation_for, emit
from repro.bounds import FIG4, THEOREMS
from repro.report import render_table


def _regime_rows(m: int, n: int, caches):
    rows = []
    for s in caches:
        env = {"M": m, "N": n, "S": s}
        main = THEOREMS["thm5-mgs-main"].evaluate(env)
        small = THEOREMS["thm5-mgs-small"].evaluate(env) if s <= m else None
        old = FIG4["mgs"]["old"].evaluate(env)
        best = max(main, small or 0.0)
        rows.append([s, main, small, old, best / old])
    return rows


def test_sec51_regime_sweep(benchmark):
    m, n = 10_000, 5_000
    # start at S=64: below sqrt(S)=4 the old bound's constant still ties
    caches = (64, 256, 1024, 4096, 16_384, 65_536, 262_144)
    rows = benchmark.pedantic(_regime_rows, args=(m, n, caches), rounds=1, iterations=1)
    emit(
        render_table(
            ["S", "thm5 main", "thm5 small", "old MN^2/sqrt(S)", "new/old"],
            rows,
            title=f"§5.1 regimes (M={m}, N={n})",
        )
    )
    # the new bound beats the old at every S in the sweep
    for s, main, small, old, imp in rows:
        assert imp > 1.0, f"S={s}"


def test_small_s_specialisation():
    """S <= M/2: bound >= MN^2/8 (and -> MN(N-1)/4 for S << M)."""
    m, n = 10_000, 5_000
    for s in (16, 256, m // 2):
        val = THEOREMS["thm5-mgs-small"].evaluate({"M": m, "N": n, "S": s})
        assert val >= m * n * (n - 1) / 8
    tiny = THEOREMS["thm5-mgs-small"].evaluate({"M": m, "N": n, "S": 1})
    assert tiny == pytest.approx(m * n * (n - 1) / 4, rel=0.001)


def test_large_s_specialisation():
    """M/2 <= S: bound >= M^2 N^2/(24 S) (and -> M^2 N(N-1)/(8S) for M << S)."""
    m, n = 10_000, 5_000
    for s in (m // 2, m, 4 * m):
        val = THEOREMS["thm5-mgs-main"].evaluate({"M": m, "N": n, "S": s})
        assert val >= m * m * n * (n - 1) / (24 * s)
    huge = THEOREMS["thm5-mgs-main"].evaluate({"M": m, "N": n, "S": 1000 * m})
    assert huge == pytest.approx(m * m * n * (n - 1) / (8 * 1000 * m), rel=0.002)


def test_crossover_near_s_equals_m():
    """The two Theorem-5 cases exchange dominance at S = M/sqrt(2)
    (solve M^2/(8(S+M)) = (M-S)/4)."""
    m, n = 10_000, 5_000
    main = THEOREMS["thm5-mgs-main"]
    small = THEOREMS["thm5-mgs-small"]
    cross = int(m / 2**0.5)
    lo = {"M": m, "N": n, "S": cross - m // 10}
    hi = {"M": m, "N": n, "S": cross + m // 10}
    assert small.evaluate(lo) > main.evaluate(lo)
    assert main.evaluate(hi) > small.evaluate(hi)


def test_engine_best_tracks_the_regimes():
    """report.best() must switch methods across the crossover."""
    rep = derivation_for("mgs")
    m, n = 10_000, 5_000
    b_small, _ = rep.best({"M": m, "N": n, "S": 64})
    b_large, _ = rep.best({"M": m, "N": n, "S": 8 * m})
    assert b_small.method == "hourglass-small-cache"
    assert b_large.method == "hourglass"
