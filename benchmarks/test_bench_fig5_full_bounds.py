"""FIG5 — Figure 5: full parametric bounds with constants, old vs new.

Regenerates the table and validates the engine against the published
formulas: for each kernel the engine's bound and Figure 5's "new" entry must
agree on the dominant term (ratio -> constant close to 1 at scale; exactly 1
for MGS, whose derivation we reproduce symbolically).
"""

from __future__ import annotations

import pytest

from benchmarks.conftest import derivation_for, emit
from repro.bounds import FIG5_NEW, FIG5_OLD
from repro.kernels import PAPER_KERNELS
from repro.report import fig5_rows, render_table
from repro.symbolic import Sym


def test_fig5_table(benchmark):
    rows = benchmark(fig5_rows)
    emit(
        render_table(
            ["kernel", "old bound", "new bound", "improvement"],
            rows,
            title="Figure 5: full published formulas at the reference point",
        )
    )
    for name, old, new, imp in rows:
        assert imp > 1.0, f"{name}: no improvement at reference point"


def test_mgs_engine_matches_fig5_new_dominant_term():
    """Figure 5's MGS numerator is M^2(N-1)(N-2)/8 over (M+S); the engine
    derives M^2 N(N-1)/8 over (M+S) (Theorem 5).  Ratio -> 1."""
    rep = derivation_for("mgs")
    for t in (1_000, 10_000, 100_000):
        env = {"M": 4 * t, "N": t, "S": 1024}
        ours = rep.hourglass.evaluate(env)
        paper = FIG5_NEW["mgs"].evaluate(env)
        assert ours / paper == pytest.approx(1.0, rel=30.0 / t)


@pytest.mark.parametrize("name", ["qr_a2v", "qr_v2q", "gebd2"])
def test_householder_engine_vs_fig5_constants(name):
    """Width-convention differences keep the engine within ~10% of the
    published constants at scale."""
    rep = derivation_for(name)
    env = {"M": 40_000, "N": 10_000, "S": 1024}
    ours = rep.hourglass.evaluate(env)
    paper = FIG5_NEW[name].evaluate(env)
    assert ours / paper == pytest.approx(1.0, rel=0.15)


def test_gehd2_engine_vs_fig5_within_factor_two():
    """GEHD2's split derivation differs from the paper's in the handling of
    the second half; constants agree within a factor ~2."""
    rep = derivation_for("gehd2")
    env = {"N": 40_000, "S": 1024}
    ours = max(b.evaluate(env) for b in rep.hourglass_split)
    paper = FIG5_NEW["gehd2"].evaluate(env)
    assert 0.4 < ours / paper < 2.5


def test_multi_statement_bound_vs_fig5_old():
    """Pooling every statement's K-partition capacity (the way IOLB's
    published old bounds account for the norm/scale loops) reproduces the
    Figure 5 old-MGS bound within 15%, with the same coefficient-1
    MN^2/sqrt(S) leading term."""
    from benchmarks.conftest import emit
    from repro.bounds import multi_statement_bound
    from repro.kernels import get_kernel
    from repro.report import render_table

    b = multi_statement_bound(
        get_kernel("mgs").program, {"M": 5, "N": 4}, kernel_name="mgs"
    )
    rows = []
    for m, n, s in ((4000, 1000, 1024), (40_000, 10_000, 4096)):
        env = {"M": m, "N": n, "S": s}
        ours = b.evaluate(env)
        paper = FIG5_OLD["mgs"].evaluate(env)
        rows.append([f"{m}x{n}", s, ours, paper, ours / paper])
    emit(
        render_table(
            ["size", "S", "pooled multi", "fig5 old", "ratio"],
            rows,
            title="Multi-statement classical bound vs Figure 5 old (MGS)",
        )
    )
    for *_r, ratio in rows:
        assert 0.85 < ratio < 1.15


def test_engine_old_matches_fig5_old_leading_terms():
    """The classical engine reproduces the old bounds' leading terms."""
    t = 100_000
    env = {"M": 4 * t, "N": t, "S": 1024}
    for name in ("mgs", "qr_a2v", "qr_v2q", "gebd2"):
        rep = derivation_for(name)
        ours = rep.classical.evaluate(env)
        paper = FIG5_OLD[name].evaluate(env)
        assert ours / paper == pytest.approx(1.0, rel=0.02), name
    rep = derivation_for("gehd2")
    env2 = {"N": t, "S": 1024}
    ratio = rep.classical.evaluate(env2) / FIG5_OLD["gehd2"].evaluate(env2)
    # paper's GEHD2 old bound sums several statements (5N^3/3 vs our N^3):
    # same order, different constant
    assert 0.4 < ratio < 1.2
