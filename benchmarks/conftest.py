"""Shared benchmark helpers: cached derivations and a row printer."""

from __future__ import annotations

import pytest

from repro.bounds import derive
from repro.kernels import get_kernel

_cache: dict = {}


def pytest_configure(config):
    # pytest imports this conftest under its own module name, while the
    # bench modules import `benchmarks.conftest` as a *second* module
    # object — stash the capture manager somewhere both copies share
    import repro

    repro._pytest_capman = config.pluginmanager.getplugin("capturemanager")


def derivation_for(name: str):
    """Session-cached full derivation of a registered kernel."""
    if name not in _cache:
        _cache[name] = derive(get_kernel(name))
    return _cache[name]


def emit(table: str) -> None:
    """Print an experiment table to the real stdout.

    The regenerated paper tables are the experiments' *product*, not debug
    noise, so they must reach the terminal / tee even under pytest's
    fd-level capture — hence the capture-manager bypass.
    """
    import repro

    capman = getattr(repro, "_pytest_capman", None)
    if capman is not None:
        with capman.global_and_fixture_disabled():
            print("\n" + table, flush=True)
    else:
        print("\n" + table, flush=True)


@pytest.fixture(scope="session")
def reports():
    from repro.kernels import PAPER_KERNELS

    return {k: derivation_for(k) for k in PAPER_KERNELS}
