"""A2 — Appendix A.2: the tiled left-looking Householder A2V upper bound
(Figure 9).

* reads ≈ (MN²/2 - N³/6)/B under M(B+1) < S,
* writes ≈ MN,
* with B = ⌊S/M⌋ - 1 the total is ≈ (M²N² - MN³/3)/(2S),
* measured I/O sandwiches between Theorem 6 and the prediction — the A2V
  optimality claim.
"""

from __future__ import annotations

import pytest

from benchmarks.conftest import emit
from repro.bounds import THEOREMS, measure_tiled_io
from repro.kernels import TILED_A2V
from repro.report import render_table


def _sweep(m: int, n: int, caches):
    rows = []
    for s in caches:
        meas = measure_tiled_io(TILED_A2V, {"M": m, "N": n}, s)
        pred_reads = meas.predicted_reads + m * n
        lb = THEOREMS["thm6-a2v"].evaluate({"M": m, "N": n, "S": s})
        rows.append(
            [
                s,
                meas.block,
                meas.stats.loads,
                pred_reads,
                meas.stats.stores,
                m * n,
                lb,
                meas.stats.loads / pred_reads,
            ]
        )
    return rows


def test_a2_read_accounting(benchmark):
    m, n = 24, 12
    rows = benchmark.pedantic(
        _sweep, args=(m, n, (64, 128, 256, 384)), rounds=1, iterations=1
    )
    emit(
        render_table(
            ["S", "B", "loads", "pred reads", "stores", "pred writes", "thm6", "load/pred"],
            rows,
            title=f"Appendix A.2: tiled A2V I/O accounting (M={m}, N={n}; Belady)",
        )
    )
    for s, b, loads, pred_reads, stores, pred_writes, lb, ratio in rows:
        assert 0.25 <= ratio <= 1.3, f"S={s}: loads {loads} vs predicted {pred_reads}"
        assert stores <= 2.0 * pred_writes
        assert lb <= loads


def test_a2_n_cubed_correction_visible():
    """A.2's read count is (MN^2/2 - N^3/6)/B, not MN^2/(2B): for N close
    to M the N^3/6 correction is a ~30% effect; verify the corrected formula
    fits the measurement better than the uncorrected one."""
    m, n, s = 26, 20, 160
    meas = measure_tiled_io(TILED_A2V, {"M": m, "N": n}, s)
    b = meas.block
    corrected = (m * n * n / 2 - n**3 / 6) / b + m * n
    uncorrected = (m * n * n / 2) / b + m * n
    err_c = abs(meas.stats.loads - corrected)
    err_u = abs(meas.stats.loads - uncorrected)
    emit(
        render_table(
            ["measured", "corrected pred", "uncorrected pred"],
            [[meas.stats.loads, corrected, uncorrected]],
            title="A.2: the -N^3/6 term matters",
        )
    )
    assert err_c < err_u


def test_a2_factor_b_saving():
    # matrix (1152 elems) must dwarf S, and (M+1)*8 < S must hold
    m, n, s = 48, 24, 400
    loads = {}
    for b in (1, 2, 4, 8):
        meas = measure_tiled_io(TILED_A2V, {"M": m, "N": n}, s, block=b)
        loads[b] = meas.stats.loads
    emit(
        render_table(
            ["B", "loads"],
            [[b, loads[b]] for b in sorted(loads)],
            title="A.2: factor-B saving (S=400)",
        )
    )
    assert loads[1] > loads[2] > loads[4] > loads[8]
    assert loads[1] / loads[8] >= 2.0


def test_a2_lower_bound_tight_within_constant():
    ratios = []
    for m, n in ((16, 8), (24, 12), (32, 16)):
        s = 2 * m + 16
        meas = measure_tiled_io(TILED_A2V, {"M": m, "N": n}, s)
        lb = THEOREMS["thm6-a2v"].evaluate({"M": m, "N": n, "S": s})
        ratios.append(meas.stats.loads / lb)
    assert all(1.0 <= r < 60 for r in ratios)
    assert max(ratios) < 2.5 * min(ratios)
