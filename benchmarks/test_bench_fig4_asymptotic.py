"""FIG4 — Figure 4: asymptotic old vs new lower bounds for all five kernels.

Regenerates the table's content: per kernel, the classical and hourglass
bounds (paper catalog and our engine), and verifies the *shape* claims:

* the new bound dominates the old one in the paper's growth regimes;
* the measured improvement exponents match the predicted parametric factors.
"""

from __future__ import annotations

import pytest

from benchmarks.conftest import derivation_for, emit
from repro.bounds import FIG4
from repro.kernels import PAPER_KERNELS
from repro.report import default_regime, fig4_rows, render_table
from repro.symbolic import classify, growth_exponent


def test_fig4_table(reports, benchmark):
    rows = benchmark(fig4_rows, reports)
    emit(
        render_table(
            ["kernel", "paper old", "paper new", "engine old", "engine new", "growth"],
            rows,
            title="Figure 4 (reference point: M=4000, N=1000, S=1024; gehd2 N=4000)",
        )
    )
    assert len(rows) == 5
    for name, p_old, p_new, e_old, e_new, _ in rows:
        # the paper's asymptotic forms carry no constants; engine values are
        # the same order (within ~10x) and strictly positive
        assert e_old > 0 and e_new > 0
        assert 0.05 < e_old / p_old < 20
        assert 0.05 < e_new / p_new < 20


@pytest.mark.parametrize("name", PAPER_KERNELS)
def test_new_dominates_old_in_regime(name):
    regime = default_regime(name)
    assert (
        classify(FIG4[name]["new"].expr, FIG4[name]["old"].expr, regime)
        == "dominates"
    )


@pytest.mark.parametrize("name", PAPER_KERNELS)
def test_engine_new_same_order_as_paper_new(name):
    """The engine's hourglass bound grows like the paper's Figure 4 entry."""
    rep = derivation_for(name)
    new = rep.hourglass or max(
        rep.hourglass_split, key=lambda b: b.evaluate({"N": 4096, "S": 64})
    )
    regime = default_regime(name)
    exp = growth_exponent(new.expr, FIG4[name]["new"].expr, regime)
    assert abs(exp) < 0.06, f"{name}: engine/paper growth gap t^{exp:.2f}"


def test_improvement_exponents_quarter_power():
    """In the M=4t,N=t,S=sqrt(t) regime every kernel's improvement factor is
    t^(1/4) (= sqrt(S)); Figure 4's parametric-ratio claim."""
    rows = fig4_rows({k: derivation_for(k) for k in PAPER_KERNELS})
    for name, *_rest, growth in rows:
        exp = float(growth.split("^")[1])
        assert exp == pytest.approx(0.25, abs=0.05), name
