"""THM8 — Theorem 8: the GEBD2 (bidiagonal reduction) lower bound.

The engine applies the hourglass derivation to the column-update statement
ScU (count ~ MN^2/2 - N^3/6); Theorem 8 is normalised to MN^2.  The bench
checks the *shape*: the ratio engine/theorem converges to the predicted
constant, the M >> N limit matches, and the bound is sound on instances.
"""

from __future__ import annotations

import pytest

from benchmarks.conftest import derivation_for, emit
from repro import build_cdag, get_kernel, play_schedule
from repro.bounds import THEOREMS
from repro.ir import Tracer
from repro.report import render_table


def _ratio_rows():
    rep = derivation_for("gebd2")
    rows = []
    for m, n, s in (
        (1000, 300, 1024),
        (4000, 1200, 4096),
        (16000, 4800, 16384),
    ):
        env = {"M": m, "N": n, "S": s}
        ours = rep.hourglass.evaluate(env)
        paper = THEOREMS["thm8-gebd2"].evaluate(env)
        rows.append([f"{m}x{n}", s, ours, paper, ours / paper])
    return rows


def test_engine_vs_theorem8(benchmark):
    rows = benchmark.pedantic(_ratio_rows, rounds=1, iterations=1)
    emit(
        render_table(
            ["size", "S", "engine", "thm8", "ratio"],
            rows,
            title="Theorem 8: engine vs paper (GEBD2)",
        )
    )
    ratios = [r[-1] for r in rows]
    # Engine normalises by the ScU statement count (~ MN^2/2 - ...) where
    # Theorem 8 uses MN^2/8; at the fixed aspect ratio N = 0.3M the engine/
    # paper ratio must converge to a constant in (0.5, 1) — same shape,
    # bookkeeping-level constant difference.
    for r in ratios:
        assert 0.5 < r < 1.0
    assert ratios[-1] == pytest.approx(ratios[0], rel=0.02)


def test_m_much_greater_than_n_limit():
    """Theorem 8's M >> N limit: M^2 N^2 / (8(S+M))."""
    m, n, s = 10_000_000, 100, 1024
    full = THEOREMS["thm8-gebd2"].evaluate({"M": m, "N": n, "S": s})
    limit = m * m * n * n / (8 * (s + m))
    assert full / limit == pytest.approx(1.0, rel=0.01)


def test_soundness_on_instances():
    kernel = get_kernel("gebd2")
    params = {"M": 10, "N": 7}
    g = build_cdag(kernel.program, params)
    t = Tracer()
    kernel.program.runner(dict(params), t)
    rep = derivation_for("gebd2")
    rows = []
    for s in (8, 16, 32, 64):
        measured = play_schedule(g, t.schedule, s, "belady").loads
        _, lb = rep.best({**params, "S": s})
        rows.append([s, lb, measured, lb <= measured])
    emit(
        render_table(
            ["S", "lower bound", "measured", "sound"],
            rows,
            title="Theorem 8 soundness (GEBD2 M=10, N=7)",
        )
    )
    assert all(r[-1] for r in rows)


def test_hourglass_detected_on_column_phase():
    rep = derivation_for("gebd2")
    pat = rep.hourglass_pattern
    assert pat is not None
    assert pat.stmt == "ScU"
    assert pat.reduction == ("i",)
    # Theorem 8's width: M - N + 1
    assert pat.width_min.eval({"M": 50, "N": 20}) == 31
