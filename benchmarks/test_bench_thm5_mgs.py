"""THM5 — Theorem 5: the MGS lower bounds, validated three ways.

1. *Symbolic*: the engine's hourglass derivation equals the theorem's two
   formulas exactly (already unit-tested; re-asserted here on the shared
   derivation).
2. *Empirical soundness*: both bounds sit below the pebble-game loads of the
   naive and tiled schedules across a cache sweep on concrete instances.
3. *Tightness shape*: measured tiled I/O over the lower bound stays within a
   constant factor as S scales in the M << S regime (Theorem 5 + A.1 =
   asymptotic optimality).
"""

from __future__ import annotations

import pytest

from benchmarks.conftest import derivation_for, emit
from repro import build_cdag, get_kernel, play_schedule
from repro.bounds import THEOREMS
from repro.ir import Tracer
from repro.kernels import TILED_MGS, default_block_size
from repro.report import render_table
from repro.symbolic import Sym


def test_engine_equals_theorem5_symbolically():
    rep = derivation_for("mgs")
    M, N, S = Sym("M"), Sym("N"), Sym("S")
    assert rep.hourglass.expr == M**2 * N * (N - 1) / (8 * (S + M))
    assert rep.hourglass_small_cache.expr == (M - S) * N * (N - 1) / 4


def _sandwich_rows(m: int, n: int):
    kernel = get_kernel("mgs")
    params = {"M": m, "N": n}
    g = build_cdag(kernel.program, params)
    naive = Tracer()
    kernel.program.runner(dict(params), naive)
    rows = []
    for s in (8, 16, 32, 64, 128):
        env = {"M": m, "N": n, "S": s}
        thm_main = THEOREMS["thm5-mgs-main"].evaluate(env)
        thm_small = THEOREMS["thm5-mgs-small"].evaluate(env) if s <= m else float("nan")
        b = default_block_size(m + 1, s)
        tiled = TILED_MGS.run_traced({**params, "B": b})
        naive_loads = play_schedule(g, naive.schedule, s, "belady").loads
        tiled_loads = play_schedule(g, tiled.schedule, s, "belady").loads
        lb = max(thm_main, thm_small if s <= m else 0.0)
        rows.append([s, thm_main, thm_small, tiled_loads, naive_loads, lb <= min(tiled_loads, naive_loads)])
    return rows


def test_theorem5_sound_on_instances(benchmark):
    rows = benchmark.pedantic(_sandwich_rows, args=(16, 12), rounds=1, iterations=1)
    emit(
        render_table(
            ["S", "thm5 main", "thm5 small (S<=M)", "tiled loads", "naive loads", "sound"],
            rows,
            title="Theorem 5 vs measured pebble-game I/O (M=16, N=12)",
        )
    )
    assert all(r[-1] for r in rows)


def test_tightness_ratio_bounded():
    """Measured tiled loads / Theorem-5 bound stays bounded as the instance
    grows with S ~ 2M (the M << S side where A.1's ordering applies)."""
    rows = []
    for m, n in ((12, 8), (16, 12), (24, 16)):
        s = 2 * m + 8
        b = default_block_size(m + 1, s)
        tiled = TILED_MGS.run_traced({"M": m, "N": n, "B": b})
        g = build_cdag(get_kernel("mgs").program, {"M": m, "N": n})
        loads = play_schedule(g, tiled.schedule, s, "belady").loads
        lb = THEOREMS["thm5-mgs-main"].evaluate({"M": m, "N": n, "S": s})
        rows.append([f"{m}x{n}", s, loads, lb, loads / lb])
    emit(
        render_table(
            ["size", "S", "tiled loads", "thm5 bound", "ratio"],
            rows,
            title="Theorem 5 tightness (ratio must stay O(1))",
        )
    )
    ratios = [r[-1] for r in rows]
    assert all(1.0 <= r < 40 for r in ratios)
    # ratios must not blow up with size
    assert ratios[-1] < 3.0 * ratios[0]


def test_small_cache_bound_binds_when_s_below_m():
    """Theorem 5's second bound is the binding one once sqrt(S) > 4 and
    S << M (below sqrt(S)=4 the classical constant still wins)."""
    rep = derivation_for("mgs")
    best, _ = rep.best({"M": 400, "N": 100, "S": 64})
    assert best.method == "hourglass-small-cache"
    # and the classical bound can win at very small S (constants matter)
    best2, _ = rep.best({"M": 64, "N": 32, "S": 9})
    assert best2.method == "classical-disjoint"
