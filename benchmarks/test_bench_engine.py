"""ENGINE — tooling benchmarks and design-choice ablations.

* derivation-time per kernel (the IOLB-replacement's own cost);
* ablation: K = 2S vs other K multiples (the paper's choice is near-optimal);
* ablation: the disjoint-inset refinement's constant factor;
* ablation: exact Theorem-1 (with floors, numeric T optimisation) vs the
  continuous formulas used in the theorem statements.
"""

from __future__ import annotations

import math

import pytest

from benchmarks.conftest import derivation_for, emit
from repro.bounds import (
    classical_bound,
    derive,
    derive_projections,
    detect_hourglass,
    hourglass_bound,
    optimize_T_numeric,
)
from repro.kernels import KERNELS, get_kernel
from repro.report import render_table


@pytest.mark.parametrize("name", sorted(KERNELS))
def test_derivation_time(name, benchmark):
    """End-to-end derivation cost per kernel (trace + detect + derive)."""
    kernel = get_kernel(name)
    benchmark(derive, kernel)


def test_k_choice_ablation():
    """Theorem 1 leaves K free; the paper picks K = 2S.  Sweep the
    multiplier: the bound peaks near 2 and degrades slowly."""
    kern = get_kernel("mgs")
    ps = derive_projections(kern.program, "SU", {"M": 5, "N": 4})
    pat = detect_hourglass(
        kern.program, "SU", {"M": 5, "N": 4}, {"M": 4096, "N": 1024}, ps
    )
    v = kern.program.statement("SU").instance_count()
    env = {"M": 4000, "N": 1000, "S": 1024}
    rows = []
    vals = {}
    for km in (2, 3, 4, 6, 8):
        b = hourglass_bound("mgs", pat, ps, v, k_mult=km)
        vals[km] = b.evaluate(env)
        rows.append([f"K={km}S", vals[km]])
    from repro.bounds import optimal_k_numeric

    k_star, q_star = optimal_k_numeric(pat, ps, v, env)
    rows.append([f"K*={k_star:.0f} (optimal)", q_star])
    emit(render_table(["choice", "bound"], rows, title="K-choice ablation (MGS)"))
    best = max(vals.values())
    # finding: for M >> S the optimum is K* = S + sqrt(S^2 + 2SM) ~ 4S here;
    # the paper's K = 2S stays within 25% of it, and very large K
    # over-relaxes the partition
    import math

    closed = env["S"] + math.sqrt(env["S"] ** 2 + 2 * env["S"] * env["M"])
    assert k_star == pytest.approx(closed, rel=0.02)
    assert q_star >= best
    assert vals[2] >= 0.75 * q_star
    assert vals[8] < vals[4]


def test_disjoint_refinement_ablation():
    kern = get_kernel("mgs")
    ps = derive_projections(kern.program, "SU", {"M": 5, "N": 4})
    v = kern.program.statement("SU").instance_count()
    dims = kern.program.statement("SU").dims
    plain = classical_bound("mgs", dims, ps, v, disjoint=False)
    refined = classical_bound("mgs", dims, ps, v, disjoint=True)
    env = {"M": 4000, "N": 1000, "S": 1024}
    gain = refined.evaluate(env) / plain.evaluate(env)
    emit(
        render_table(
            ["variant", "bound"],
            [["per-projection K", plain.evaluate(env)], ["disjoint insets", refined.evaluate(env)], ["gain", gain]],
            title="Disjoint-inset refinement ablation (MGS classical)",
        )
    )
    assert gain == pytest.approx(3.0**1.5, rel=1e-6)


def test_floor_vs_continuous_theorem1():
    """Theorem 1's exact statement (T * floor(|V|/U)) vs the continuous
    formula: agreement within a constant at moderate sizes, converging as
    the instance grows."""
    rep = derivation_for("mgs")
    rows = []
    for m, n, s in ((64, 32, 64), (256, 128, 256), (1024, 512, 1024)):
        v = get_kernel("mgs").program.statement("SU").instance_count().eval(
            {"M": m, "N": n}
        )

        def u_of_k(k, m=m):
            return float(k) ** 2 / m + 2.0 * k  # the hourglass |E|(K)

        _t, exact = optimize_T_numeric(u_of_k, float(v), s)
        cont = rep.hourglass.evaluate({"M": m, "N": n, "S": s})
        rows.append([f"{m}x{n}", s, exact, cont, exact / cont])
    emit(
        render_table(
            ["size", "S", "floor Thm1", "continuous", "ratio"],
            rows,
            title="Theorem 1: exact floors vs continuous K=2S formula (MGS)",
        )
    )
    ratios = [r[-1] for r in rows]
    assert all(0.4 < r < 2.5 for r in ratios)
    assert abs(ratios[-1] - 1.0) <= abs(ratios[0] - 1.0) + 0.3


def test_detection_cost_scales_with_cdag(benchmark):
    """Hourglass detection on a mid-size CDAG (the concrete-verification
    step dominates; it is the engine's priciest stage)."""
    kern = get_kernel("mgs")
    ps = derive_projections(kern.program, "SU", {"M": 6, "N": 5})

    def run():
        return detect_hourglass(
            kern.program, "SU", {"M": 6, "N": 5}, {"M": 4096, "N": 1024}, ps
        )

    pat = benchmark(run)
    assert pat.parametric_width
