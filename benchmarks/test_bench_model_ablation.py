"""ABLATION — model-fidelity ablations beyond the paper's abstract machine.

1. *Exact optimum*: on instances small enough for exhaustive search, the
   exact red-white optimum sits between the derived bound and the
   Belady-schedule cost — the full hierarchy the theory promises.
2. *Hardware-like cache*: line granularity + limited associativity.  An
   element-level bound Q transfers to line misses >= Q/L; the bench sweeps
   line sizes on MGS and checks the transferred bound plus the (expected)
   absence of spatial locality in column-major traversals of row-major
   arrays.
"""

from __future__ import annotations

import pytest

from benchmarks.conftest import derivation_for, emit
from repro import build_cdag, get_kernel, play_schedule
from repro.cache import simulate_assoc, simulate_belady
from repro.ir import Tracer
from repro.pebble import exact_min_loads
from repro.report import render_table


def _hierarchy_rows():
    rows = []
    # the exhaustive search cost grows steeply with S; keep each case
    # under a few seconds
    for (name, params, caches) in (
        ("mgs", {"M": 2, "N": 2}, (4, 6, 8)),
        ("matmul", {"NI": 2, "NJ": 2, "NK": 2}, (4,)),
        ("qr_a2v", {"M": 3, "N": 2}, (4,)),
    ):
        kern = get_kernel(name)
        g = build_cdag(kern.program, params)
        t = Tracer()
        kern.program.runner(dict(params), t)
        rep = derivation_for(name)
        for s in caches:
            exact = exact_min_loads(g, s, node_limit=24)
            bel = play_schedule(g, t.schedule, s, "belady").loads
            _, lb = rep.best({**params, "S": s})
            ok = lb <= exact <= bel
            rows.append([name, s, lb, exact, bel, ok])
    return rows


def test_exact_hierarchy(benchmark):
    rows = benchmark.pedantic(_hierarchy_rows, rounds=1, iterations=1)
    emit(
        render_table(
            ["kernel", "S", "lower bound", "exact optimum", "belady schedule", "ordered"],
            rows,
            title="Exact red-white optimum: bound <= Q_exact <= schedule cost",
        )
    )
    assert all(r[-1] for r in rows)


def test_exact_strictly_beats_fixed_schedule_somewhere():
    """The optimum genuinely reorders: on MGS 2x2 it beats the program
    order at S=4."""
    kern = get_kernel("mgs")
    params = {"M": 2, "N": 2}
    g = build_cdag(kern.program, params)
    t = Tracer()
    kern.program.runner(dict(params), t)
    exact = exact_min_loads(g, 4, node_limit=24)
    bel = play_schedule(g, t.schedule, 4, "belady").loads
    assert exact < bel


def _line_rows(m: int, n: int, s: int):
    kern = get_kernel("mgs")
    params = {"M": m, "N": n}
    t = Tracer()
    kern.program.runner(dict(params), t)
    events = list(t.events)
    shapes = {"A": (m, n), "Q": (m, n), "R": (n, n), "nrm": ()}
    rep = derivation_for("mgs")
    _, lb = rep.best({**params, "S": s})
    model = simulate_belady(events, s).loads
    rows = []
    for line in (1, 2, 4, 8):
        st = simulate_assoc(
            events, capacity_elements=s, line_size=line, ways=4, shapes=shapes
        )
        rows.append(
            [
                line,
                st.line_misses,
                st.element_traffic,
                lb / line,
                st.line_misses >= lb / line - 1e-9,
            ]
        )
    rows.append(["model", model, model, lb, model >= lb])
    return rows


def test_line_size_ablation(benchmark):
    rows = benchmark.pedantic(_line_rows, args=(12, 8, 32), rounds=1, iterations=1)
    emit(
        render_table(
            ["line size", "line misses", "element traffic", "bound/L", "holds"],
            rows,
            title="Hardware-cache ablation (MGS 12x8, S=32, 4-way LRU)",
        )
    )
    assert all(r[-1] for r in rows)


def test_no_spatial_locality_in_column_sweeps():
    """MGS walks columns of row-major arrays: growing the line size must
    NOT reduce misses much (stride access), while element traffic grows
    nearly linearly — quantifying why the unit-element model is the right
    one for these kernels."""
    rows = _line_rows(12, 8, 32)
    misses = {r[0]: r[1] for r in rows if r[0] != "model"}
    assert misses[8] > 0.5 * misses[1]  # <2x improvement from 8x lines
    traffic = {r[0]: r[2] for r in rows if r[0] != "model"}
    assert traffic[8] > 4 * traffic[1]
