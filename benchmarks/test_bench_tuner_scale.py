"""TUNE + SCALE — block-size tuning accuracy and simulator scalability.

* TUNE: the appendix's analytic B* = floor(S/M)-1 vs the measured argmin
  over all block sizes, for both tiled algorithms — quantifying how much
  the closed form leaves on the table (answer: <40% on these instances).
* SCALE: wall-time of the full measurement pipeline (traced run + Belady
  pass) as instances grow — the practical size envelope of the pure-Python
  simulators.
"""

from __future__ import annotations

import pytest

from benchmarks.conftest import emit
from repro.bounds import measure_tiled_io, tune_block_size
from repro.kernels import TILED_A2V, TILED_MGS
from repro.report import render_table


def _tune_rows():
    rows = []
    for alg, params, s in (
        (TILED_MGS, {"M": 20, "N": 12}, 128),
        (TILED_MGS, {"M": 16, "N": 12}, 96),
        (TILED_A2V, {"M": 20, "N": 10}, 128),
        (TILED_A2V, {"M": 24, "N": 12}, 160),
    ):
        res = tune_block_size(alg, params, s, b_max=params["N"])
        rows.append(
            [
                alg.name,
                f"{params['M']}x{params['N']}",
                s,
                res.analytic_block,
                res.analytic_loads,
                res.best_block,
                res.best_loads,
                res.analytic_gap,
            ]
        )
    return rows


def test_tuner_vs_analytic(benchmark):
    rows = benchmark.pedantic(_tune_rows, rounds=1, iterations=1)
    emit(
        render_table(
            ["algorithm", "size", "S", "B*", "B* loads", "best B", "best loads", "gap"],
            rows,
            title="Block-size tuning: analytic floor(S/M)-1 vs measured argmin",
        )
    )
    for *_r, gap in rows:
        assert 1.0 <= gap < 1.4


@pytest.mark.parametrize(
    "m,n", [(16, 12), (24, 16), (32, 24)]
)
def test_measurement_pipeline_scaling(m, n, benchmark):
    """Traced run + Belady pass; cubic in the instance, linear in the trace."""
    s = 2 * m + 16

    def run():
        return measure_tiled_io(TILED_MGS, {"M": m, "N": n}, s)

    meas = benchmark(run)
    assert meas.stats.loads > 0
