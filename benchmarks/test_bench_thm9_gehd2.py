"""THM9 — Theorem 9: the GEHD2 (Hessenberg) bound via loop splitting.

GEHD2's hourglass width N-2-j degenerates to 1, so the derivation splits the
temporal loop (§5.3).  The bench regenerates the two split instantiations
(N/2 for the general bound, N-S-2 for N >> S), compares them against
Theorem 9's N^4/(12(N+2S)) and N^3/24 forms, and checks soundness.
"""

from __future__ import annotations

import pytest

from benchmarks.conftest import derivation_for, emit
from repro import build_cdag, get_kernel, play_schedule
from repro.bounds import THEOREMS
from repro.ir import Tracer
from repro.report import render_table


def _split_rows():
    rep = derivation_for("gehd2")
    rows = []
    for n, s in ((500, 64), (2000, 256), (8000, 1024)):
        env = {"N": n, "S": s}
        thm9 = THEOREMS["thm9-gehd2"].evaluate(env)
        by_label = {}
        for b in rep.hourglass_split:
            label = "N/2" if "N/2" in b.notes else "N-S-2"
            by_label[label] = b.evaluate(env)
        rows.append(
            [
                n,
                s,
                by_label.get("N/2"),
                by_label.get("N-S-2"),
                thm9,
                by_label.get("N/2", 0.0) / thm9,
            ]
        )
    return rows


def test_split_instantiations_vs_theorem9(benchmark):
    rows = benchmark.pedantic(_split_rows, rounds=1, iterations=1)
    emit(
        render_table(
            ["N", "S", "split N/2", "split N-S-2", "thm9", "N/2 ratio"],
            rows,
            title="Theorem 9: split-derivation bounds vs N^4/(12(N+2S))",
        )
    )
    for *_x, ratio in rows:
        assert 0.5 < ratio < 1.5


def test_n_much_greater_than_s_limit():
    """When N >> S, the N-S-2 split approaches the N^3-scale bound (the
    paper states N^3/24; our split's constant lands within a factor ~3)."""
    rep = derivation_for("gehd2")
    n, s = 100_000, 16
    env = {"N": n, "S": s}
    small = THEOREMS["thm9-gehd2-small"].evaluate(env)
    best = max(b.evaluate(env) for b in rep.hourglass_split)
    assert 0.3 < best / small < 3.5


def test_width_degenerates_hence_split():
    rep = derivation_for("gehd2")
    assert rep.hourglass_pattern is not None
    assert not rep.hourglass_pattern.parametric_width
    assert rep.hourglass is None
    assert len(rep.hourglass_split) == 2


def test_soundness_on_instances():
    kernel = get_kernel("gehd2")
    params = {"N": 10}
    g = build_cdag(kernel.program, params)
    t = Tracer()
    kernel.program.runner(dict(params), t)
    rep = derivation_for("gehd2")
    rows = []
    for s in (8, 16, 32, 64):
        measured = play_schedule(g, t.schedule, s, "belady").loads
        _, lb = rep.best({**params, "S": s})
        rows.append([s, lb, measured, lb <= measured])
    emit(
        render_table(
            ["S", "lower bound", "measured", "sound"],
            rows,
            title="Theorem 9 soundness (GEHD2 N=10)",
        )
    )
    assert all(r[-1] for r in rows)
