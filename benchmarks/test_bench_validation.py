"""VALID — global soundness sweep: every derived bound below every measured
execution, for every kernel, schedule family, eviction policy and cache size.

This is the evaluation-wide analogue of the paper's implicit guarantee: a
lower bound that exceeded *any* legal red-white pebble game cost would be
wrong.  The bench also reports the gap (measured / bound), the empirical
"tightness" picture across the suite.
"""

from __future__ import annotations

import pytest

from benchmarks.conftest import derivation_for, emit
from repro import build_cdag, get_kernel, play_schedule
from repro.cache import simulate
from repro.ir import Tracer
from repro.kernels import TILED_A2V, TILED_MGS
from repro.report import render_table

INSTANCES = {
    "mgs": {"M": 10, "N": 8},
    "qr_a2v": {"M": 11, "N": 6},
    "qr_v2q": {"M": 11, "N": 6},
    "gebd2": {"M": 11, "N": 7},
    "gehd2": {"N": 10},
    "matmul": {"NI": 7, "NJ": 7, "NK": 7},
}


def _sweep():
    rows = []
    for name, params in INSTANCES.items():
        kernel = get_kernel(name)
        g = build_cdag(kernel.program, params)
        t = Tracer()
        kernel.program.runner(dict(params), t)
        rep = derivation_for(name)
        for s in (6, 12, 24, 48):
            for policy in ("lru", "belady"):
                measured = play_schedule(g, t.schedule, s, policy).loads
                _, lb = rep.best({**params, "S": s})
                rows.append(
                    [name, s, policy, lb, measured, measured / max(lb, 1e-9), lb <= measured + 1e-9]
                )
    return rows


def test_global_soundness_sweep(benchmark):
    rows = benchmark.pedantic(_sweep, rounds=1, iterations=1)
    emit(
        render_table(
            ["kernel", "S", "policy", "lower bound", "measured", "gap", "sound"],
            rows,
            title="Global soundness: bound <= pebble loads (program order)",
        )
    )
    violations = [r for r in rows if not r[-1]]
    assert not violations, violations


def test_tiled_schedules_sound():
    rows = []
    for name, alg in (("mgs", TILED_MGS), ("qr_a2v", TILED_A2V)):
        params = INSTANCES[name]
        kernel = get_kernel(name)
        g = build_cdag(kernel.program, params)
        rep = derivation_for(name)
        for b in (1, 2, 4):
            tr = alg.run_traced({**params, "B": b})
            for s in (12, 24, 48):
                measured = play_schedule(g, tr.schedule, s, "belady").loads
                _, lb = rep.best({**params, "S": s})
                rows.append([name, b, s, lb, measured, lb <= measured + 1e-9])
    emit(
        render_table(
            ["kernel", "B", "S", "lower bound", "measured", "sound"],
            rows,
            title="Soundness vs the tiled orderings",
        )
    )
    assert all(r[-1] for r in rows)


def test_cache_sim_sound():
    """Program-level memory simulation also respects the bounds."""
    rows = []
    for name, params in INSTANCES.items():
        kernel = get_kernel(name)
        t = Tracer()
        kernel.program.runner(dict(params), t)
        events = list(t.events)
        rep = derivation_for(name)
        for s in (8, 32):
            measured = simulate(events, s, "belady").loads
            _, lb = rep.best({**params, "S": s})
            rows.append([name, s, lb, measured, lb <= measured + 1e-9])
    emit(
        render_table(
            ["kernel", "S", "lower bound", "sim loads", "sound"],
            rows,
            title="Soundness vs the two-level memory simulator",
        )
    )
    assert all(r[-1] for r in rows)


def test_random_and_priority_schedules_sound():
    """Bounds quantify over ALL schedules: probe with random linear
    extensions and adversarial priority orders."""
    import random

    from repro.pebble import priority_schedule, random_topological_schedule

    rows = []
    rng = random.Random(2024)
    for name in ("mgs", "qr_a2v", "gehd2"):
        params = INSTANCES[name]
        kernel = get_kernel(name)
        g = build_cdag(kernel.program, params)
        rep = derivation_for(name)
        scheds = [
            ("random-0", random_topological_schedule(g, rng)),
            ("random-1", random_topological_schedule(g, rng)),
            ("depth-first", priority_schedule(g, "depth_first")),
            ("breadth-first", priority_schedule(g, "breadth_first")),
        ]
        for label, sched in scheds:
            for s in (8, 24):
                measured = play_schedule(g, sched, s, "belady").loads
                _, lb = rep.best({**params, "S": s})
                rows.append([name, label, s, lb, measured, lb <= measured + 1e-9])
    emit(
        render_table(
            ["kernel", "schedule", "S", "lower", "measured", "sound"],
            rows,
            title="Soundness over the schedule space (random + priority orders)",
        )
    )
    assert all(r[-1] for r in rows)


def test_gap_shrinks_for_tiled_mgs():
    """Tightness direction: the measured/bound gap for the *tiled* order is
    smaller than for the naive order at moderate S (the bound is nearly
    achieved by the ordering the paper exhibits)."""
    params = {"M": 16, "N": 12}
    kernel = get_kernel("mgs")
    g = build_cdag(kernel.program, params)
    naive = Tracer()
    kernel.program.runner(dict(params), naive)
    rep = derivation_for("mgs")
    s = 64
    tiled = TILED_MGS.run_traced({**params, "B": 2})
    _, lb = rep.best({**params, "S": s})
    gap_naive = play_schedule(g, naive.schedule, s, "belady").loads / lb
    gap_tiled = play_schedule(g, tiled.schedule, s, "belady").loads / lb
    assert gap_tiled <= gap_naive
