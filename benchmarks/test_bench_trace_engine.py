"""TRACE ENGINE — fast simulator vs the pure-Python reference.

Times the heap-based Belady engine (:mod:`repro.cache.sim`) against the
resident-set-rescanning reference (:mod:`repro.cache._reference`) on a
synthetic 1M-event trace with S = 1024, asserting the ISSUE-1 acceptance
criterion: >= 5x faster while matching loads/stores exactly.  The fast
timing *includes* the Event -> TraceArrays conversion, i.e. it is the
end-to-end cost a caller holding an event stream pays.

``ENGINE_BENCH_EVENTS`` shrinks the trace for CI smoke runs (the speedup
assertion only applies at the full 1M size).
"""

from __future__ import annotations

import os
import time

import numpy as np

from benchmarks.conftest import emit
from repro.cache import _reference as reference
from repro.cache import simulate_belady, simulate_lru
from repro.ir import Event, TraceArrays
from repro.report import render_table

N_EVENTS = int(os.environ.get("ENGINE_BENCH_EVENTS", "1000000"))
S = 1024


def _synthetic_events(t: int) -> list[Event]:
    """Hot-set/cold-scan mix: ~97% hits once warm, so the reference's
    per-miss O(S) rescan dominates without making the bench take minutes."""
    rng = np.random.RandomState(7)
    hot, cold_space = 512, 200_000
    cold = rng.random(t) < 0.03
    idx = np.where(
        cold,
        hot + rng.randint(0, cold_space, size=t),
        rng.randint(0, hot, size=t),
    )
    is_write = rng.random(t) < 0.1
    table = {int(a): ("x", (int(a),)) for a in np.unique(idx)}
    return [
        Event("W" if w else "R", table[a])
        for a, w in zip(idx.tolist(), is_write.tolist())
    ]


def test_belady_engine_speedup():
    events = _synthetic_events(N_EVENTS)

    t0 = time.perf_counter()
    ref = reference.simulate_belady(events, S)
    t_ref = time.perf_counter() - t0

    t0 = time.perf_counter()
    ta = TraceArrays.from_events(events)
    fast = simulate_belady(ta, S)
    t_fast = time.perf_counter() - t0

    speedup = t_ref / t_fast
    emit(
        render_table(
            ["engine", "time (s)", "loads", "stores"],
            [
                ["reference (O(T*S))", f"{t_ref:.2f}", ref.loads, ref.stores],
                ["fast (O(T log S))", f"{t_fast:.2f}", fast.loads, fast.stores],
                ["speedup", f"{speedup:.1f}x", "", ""],
            ],
            title=f"Belady engines, {N_EVENTS} events, S={S}",
        )
    )
    assert fast.loads == ref.loads
    assert fast.stores == ref.stores
    if N_EVENTS >= 1_000_000:
        assert speedup >= 5.0, f"acceptance: >=5x, got {speedup:.1f}x"


def test_lru_engine_matches_and_does_not_regress():
    events = _synthetic_events(min(N_EVENTS, 200_000))

    # arrays are built once per kernel run and shared by every cache pass,
    # so the conversion is not part of the per-pass LRU cost
    ta = TraceArrays.from_events(events)

    t0 = time.perf_counter()
    ref = reference.simulate_lru(events, S)
    t_ref = time.perf_counter() - t0

    t0 = time.perf_counter()
    fast = simulate_lru(ta, S)
    t_fast = time.perf_counter() - t0

    emit(
        render_table(
            ["engine", "time (s)", "loads"],
            [
                ["reference", f"{t_ref:.2f}", ref.loads],
                ["fast", f"{t_fast:.2f}", fast.loads],
            ],
            title=f"LRU engines, {len(events)} events, S={S}",
        )
    )
    assert fast.loads == ref.loads and fast.stores == ref.stores
    # LRU is the same O(T) recency logic in both; just don't get slower
    assert t_fast <= t_ref * 1.5
