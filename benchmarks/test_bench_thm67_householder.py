"""THM6/THM7 — Theorems 6-7: Householder A2V and V2Q lower bounds.

Validates (a) the engine's bound against the theorem formulas numerically
(the repository uses the statement-domain width M-N+1 where the paper uses
the conservative M-N — agreement within a few percent at scale), (b)
empirical soundness on concrete instances, and (c) the M >> N limit of
Theorem 6/7 collapsing to the MGS-shaped bound M^2 N(N-1)/(8(S+M)).
"""

from __future__ import annotations

import pytest

from benchmarks.conftest import derivation_for, emit
from repro import build_cdag, get_kernel, play_schedule
from repro.bounds import THEOREMS
from repro.ir import Tracer
from repro.kernels import TILED_A2V, default_block_size
from repro.report import render_table


def _compare_rows(which: str, kernel: str):
    rep = derivation_for(kernel)
    thm = THEOREMS[which]
    rows = []
    for m, n, s in (
        (200, 50, 256),
        (1000, 300, 1024),
        (4000, 1000, 4096),
        (20000, 2000, 16384),
    ):
        env = {"M": m, "N": n, "S": s}
        ours = rep.hourglass.evaluate(env)
        paper = thm.evaluate(env)
        rows.append([f"{m}x{n}", s, ours, paper, ours / paper])
    return rows


@pytest.mark.parametrize(
    "which,kernel", [("thm6-a2v", "qr_a2v"), ("thm7-v2q", "qr_v2q")]
)
def test_engine_matches_theorem(which, kernel, benchmark):
    rows = benchmark.pedantic(_compare_rows, args=(which, kernel), rounds=1, iterations=1)
    emit(
        render_table(
            ["size", "S", "engine", "paper", "ratio"],
            rows,
            title=f"{which}: engine vs paper ({kernel})",
        )
    )
    for *_x, ratio in rows:
        assert ratio == pytest.approx(1.0, rel=0.05)


def test_m_much_greater_than_n_limit():
    """Theorems 6-7 say the bound becomes M^2 N(N-1)/(8(S+M)) when M >> N."""
    n, s = 100, 1024
    mgs_shape = THEOREMS["thm5-mgs-main"]
    for which in ("thm6-a2v", "thm7-v2q"):
        m = 1_000_000
        env = {"M": m, "N": n, "S": s}
        ratio = THEOREMS[which].evaluate(env) / mgs_shape.evaluate(env)
        assert ratio == pytest.approx(1.0, rel=0.05), which


def test_soundness_on_instances():
    rows = []
    for name in ("qr_a2v", "qr_v2q"):
        kernel = get_kernel(name)
        params = {"M": 10, "N": 6}
        g = build_cdag(kernel.program, params)
        t = Tracer()
        kernel.program.runner(dict(params), t)
        rep = derivation_for(name)
        for s in (8, 16, 32):
            measured = play_schedule(g, t.schedule, s, "belady").loads
            _, lb = rep.best({**params, "S": s})
            rows.append([name, s, lb, measured, lb <= measured])
    emit(
        render_table(
            ["kernel", "S", "lower bound", "measured", "sound"],
            rows,
            title="Theorems 6-7 soundness (M=10, N=6)",
        )
    )
    assert all(r[-1] for r in rows)


def test_tiled_a2v_realises_the_bound_shape():
    """Appendix A.2's ordering stays within a constant factor of Theorem 6
    as size scales (tightness, Appendix A claim)."""
    rows = []
    for m, n in ((16, 8), (24, 12), (32, 16)):
        s = 2 * m + 8
        b = default_block_size(m, s)
        tiled = TILED_A2V.run_traced({"M": m, "N": n, "B": b})
        g = build_cdag(get_kernel("qr_a2v").program, {"M": m, "N": n})
        loads = play_schedule(g, tiled.schedule, s, "belady").loads
        lb = THEOREMS["thm6-a2v"].evaluate({"M": m, "N": n, "S": s})
        rows.append([f"{m}x{n}", s, loads, lb, loads / lb])
    emit(
        render_table(
            ["size", "S", "tiled loads", "thm6 bound", "ratio"],
            rows,
            title="Theorem 6 tightness via tiled A2V",
        )
    )
    ratios = [r[-1] for r in rows]
    assert all(1.0 <= r < 60 for r in ratios)
    assert ratios[-1] < 3.0 * ratios[0]
