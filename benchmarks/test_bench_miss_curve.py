"""CURVE — the full miss curve vs the lower-bound curve.

One stack-distance pass (Mattson) gives LRU misses at *every* cache size;
plotted against the engine's bound Q(S) this is the continuous version of
the per-S sandwich tables: the measured curve must dominate the bound curve
pointwise, with the crossover between the Theorem-5 cases visible in the
bound's shape.
"""

from __future__ import annotations

import pytest

from benchmarks.conftest import derivation_for, emit
from repro.cache import lru_miss_curve
from repro.ir import Tracer
from repro.kernels import get_kernel
from repro.report import render_table


def _curve_rows(name: str, params: dict, caches):
    kern = get_kernel(name)
    t = Tracer()
    kern.program.runner(dict(params), t)
    events = list(t.events)
    curve = lru_miss_curve(events, max_s=max(caches))
    rep = derivation_for(name)
    rows = []
    for s in caches:
        _, lb = rep.best({**params, "S": s})
        rows.append([s, lb, curve[s], curve[s] >= lb - 1e-9])
    return rows, curve


def test_mgs_miss_curve(benchmark):
    params = {"M": 16, "N": 12}
    caches = (2, 4, 8, 12, 16, 24, 32, 48, 64, 96, 128)

    def run():
        return _curve_rows("mgs", params, caches)

    rows, curve = benchmark.pedantic(run, rounds=1, iterations=1)
    emit(
        render_table(
            ["S", "lower bound", "LRU misses", "dominates"],
            rows,
            title=f"MGS miss curve vs bound curve ({params}, program order)",
        )
    )
    assert all(r[-1] for r in rows)
    # monotonicity of the measured curve
    misses = [r[2] for r in rows]
    assert all(a >= b for a, b in zip(misses, misses[1:]))


@pytest.mark.parametrize(
    "name,params",
    [("qr_a2v", {"M": 14, "N": 8}), ("gehd2", {"N": 11})],
)
def test_other_kernel_curves(name, params):
    caches = (4, 8, 16, 32, 64)
    rows, _ = _curve_rows(name, params, caches)
    emit(
        render_table(
            ["S", "lower bound", "LRU misses", "dominates"],
            rows,
            title=f"{name} miss curve vs bound curve ({params})",
        )
    )
    assert all(r[-1] for r in rows)


def test_single_pass_matches_per_s_simulation():
    """The Mattson curve agrees with individual LRU simulations (allocation
    counting) — validated here at bench scale, unit-tested exhaustively."""
    from repro.cache import simulate_lru

    params = {"M": 16, "N": 12}
    t = Tracer()
    get_kernel("mgs").program.runner(dict(params), t)
    events = list(t.events)
    curve = lru_miss_curve(events, max_s=96)
    for s in (3, 17, 40, 96):
        ref = simulate_lru(events, s)
        assert curve[s] == ref.loads + ref.write_allocs
