"""EXT — extension beyond the paper: generic hourglass-driven tiling.

Appendix A tiles only MGS and A2V by hand.  The detected hourglass pattern
is enough to *generate* the blocked left-looking order for any kernel; this
bench measures the generated schedules:

* MGS: the generated order prices identically to Figure 8 — the appendix's
  tiling is recovered automatically;
* GEHD2 (no published tiling): the generated order beats the program order,
  moving measured I/O toward the new lower bound;
* GEBD2: blocking one of its two interleaved hourglasses *loses* — the
  structural signature of two-sided reductions being only partially
  blockable (a finding, reported not hidden).
"""

from __future__ import annotations

import pytest

from benchmarks.conftest import derivation_for, emit
from repro import build_cdag, get_kernel
from repro.ir import Tracer
from repro.kernels import default_block_size
from repro.pebble import hourglass_tiled_schedule, play_schedule
from repro.report import render_table

CASES = {
    "mgs": {"M": 16, "N": 12},
    "qr_a2v": {"M": 16, "N": 8},
    "gebd2": {"M": 14, "N": 9},
    "gehd2": {"N": 12},
}


def _rows():
    rows = []
    for name, params in CASES.items():
        kern = get_kernel(name)
        g = build_cdag(kern.program, params)
        pat = derivation_for(name).hourglass_pattern
        naive = Tracer()
        kern.program.runner(dict(params), naive)
        m = params.get("M", params.get("N"))
        for s in (64, 128):
            b = default_block_size(m + 1, s)
            gen = hourglass_tiled_schedule(g, kern.program, pat, b)
            ln = play_schedule(g, naive.schedule, s, "belady").loads
            lg = play_schedule(g, gen, s, "belady").loads
            _, lb = derivation_for(name).best({**params, "S": s})
            rows.append([name, s, b, ln, lg, lb, lg / max(lb, 1e-9)])
    return rows


def test_generic_tiling_sweep(benchmark):
    rows = benchmark.pedantic(_rows, rounds=1, iterations=1)
    emit(
        render_table(
            ["kernel", "S", "B", "naive loads", "generic-tiled", "lower bound", "tiled/bound"],
            rows,
            title="Generic hourglass tiling (extension: auto-generated blocked orders)",
        )
    )
    by = {(r[0], r[1]): r for r in rows}
    # MGS and GEHD2 improve over naive at the larger cache
    assert by[("mgs", 128)][4] < by[("mgs", 128)][3]
    assert by[("gehd2", 128)][4] < by[("gehd2", 128)][3]
    # all generated schedules respect the bounds
    assert all(r[4] >= r[5] - 1e-9 for r in rows)


def test_a2v_generic_matches_figure9_behaviour():
    """The generated A2V order achieves Figure-9-level reuse (within 10%
    of the hand tiling's loads)."""
    from repro.kernels import TILED_A2V

    params = CASES["qr_a2v"]
    kern = get_kernel("qr_a2v")
    g = build_cdag(kern.program, params)
    pat = derivation_for("qr_a2v").hourglass_pattern
    s = 128
    b = default_block_size(params["M"] + 1, s)
    gen = hourglass_tiled_schedule(g, kern.program, pat, b)
    fig9 = TILED_A2V.run_traced({**params, "B": b}).schedule
    lg = play_schedule(g, gen, s, "belady").loads
    lf = play_schedule(g, fig9, s, "belady").loads
    assert lg == pytest.approx(lf, rel=0.10)
