#!/usr/bin/env python3
"""A narrated walk through the paper's §4 proof, on concrete MGS data.

Every step of the derivation is shown with real numbers from a small CDAG:

1. the dependence-path projections (§2);
2. the hourglass classification and width (§3);
3. a sampled convex set decomposed into I' (3+ temporal ticks) and F
   (flat), with Lemma 3's full-width interior slices shown;
4. Lemma 4's projection shrinkage |phi_x(I')| <= K/W measured;
5. the assembled |E| <= Wmax K^2/Wmin^2 + 2K bound vs the actual size;
6. Theorem 1 turning the set bound into the Theorem-5 formula.

Run:  python examples/proof_walkthrough.py
"""

from __future__ import annotations

import random

from repro import build_cdag, get_kernel
from repro.bounds import (
    derive_projections,
    detect_hourglass,
    hourglass_bound,
    sample_convex_sets,
)
from repro.symbolic import to_latex


def main() -> None:
    kernel = get_kernel("mgs")
    params = {"M": 5, "N": 4}
    m = params["M"]
    print(f"=== §4 walkthrough on MGS at {params} ===\n")

    # -- step 1: projections ---------------------------------------------------
    ps = derive_projections(kernel.program, "SU", params)
    print("step 1 — dependence-path projections of SU (origin chasing):")
    for p in ps:
        print(f"  {p!r}   (direct producer: {p.producer})")

    # -- step 2: hourglass ------------------------------------------------------
    pat = detect_hourglass(
        kernel.program, "SU", params, {"M": 4096, "N": 1024}, ps
    )
    print(f"\nstep 2 — detected pattern: {pat!r}")

    # -- step 3: a convex set, decomposed --------------------------------------
    g = build_cdag(kernel.program, params)
    rng = random.Random(3)
    chosen = None
    for E_full in sample_convex_sets(g, rng, n_sets=200, seed_size=3):
        sx = [n[1] for n in E_full if isinstance(n, tuple) and n[0] == "SU"]
        ticks_per_j = {}
        for (k, j, i) in sx:
            ticks_per_j.setdefault(j, set()).add(k)
        if any(len(t) >= 3 for t in ticks_per_j.values()):
            chosen = (E_full, sx, ticks_per_j)
            break
    assert chosen, "no 3-tick sample found"
    E_full, sx, ticks_per_j = chosen
    K = len(g.in_set(E_full))
    print(
        f"\nstep 3 — sampled convex set: {len(E_full)} nodes,"
        f" {len(sx)} SU instances, measured in-set K = {K}"
    )
    j3 = sorted(j for j, t in ticks_per_j.items() if len(t) >= 3)
    j12 = sorted(j for j, t in ticks_per_j.items() if len(t) <= 2)
    print(f"  J3+ (I' columns, >=3 ticks): j in {j3}")
    print(f"  J12 (F columns, <=2 ticks):  j in {j12}")
    for j in j3:
        ks = sorted(ticks_per_j[j])
        for k in ks[1:-1]:
            width = sum(1 for (kk, jj, ii) in sx if kk == k and jj == j)
            print(
                f"  Lemma 3: interior slice (k={k}, j={j}) has width"
                f" {width} = M = {m}  {'OK' if width == m else 'VIOLATION'}"
            )

    # -- step 4: Lemma 4 on I' -------------------------------------------------
    iprime = [
        (k, j, i)
        for (k, j, i) in sx
        if j in j3 and min(ticks_per_j[j]) < k < max(ticks_per_j[j])
    ]
    if iprime:
        proj_j = {j for (_, j, _) in iprime}
        proj_k = {k for (k, _, _) in iprime}
        print(
            f"\nstep 4 — Lemma 4 on I' ({len(iprime)} nodes):"
            f" |phi_j(I')| = {len(proj_j)} <= K/W = {K}/{m} = {K / m:.1f};"
            f" |phi_k(I')| = {len(proj_k)} <= {K / m:.1f}"
        )

    # -- step 5: the set-size bound --------------------------------------------
    bound = m * K**2 / m**2 + 2 * K
    print(
        f"\nstep 5 — §4.4: |E_SU| = {len(sx)} <= Wmax K^2/Wmin^2 + 2K"
        f" = K^2/M + 2K = {bound:.1f}"
    )
    assert len(sx) <= bound

    # -- step 6: Theorem 1 -----------------------------------------------------
    v = kernel.program.statement("SU").instance_count()
    b = hourglass_bound("mgs", pat, ps, v)
    print("\nstep 6 — Theorem 1 with K = 2S assembles Theorem 5:")
    print(f"  Q >= {b.expr!r}")
    print(f"  (LaTeX: {to_latex(b.expr)})")
    env = {"M": 4000, "N": 1000, "S": 1024}
    print(f"  at {env}: Q >= {b.evaluate(env):.3e} loads")


if __name__ == "__main__":
    main()
