#!/usr/bin/env python3
"""Regenerate the paper's evaluation tables (Figures 4 and 5).

Prints, for each of the five kernels:

* Figure 4: the asymptotic old (classical) vs new (hourglass) bounds,
  evaluated at a reference point, from the transcribed catalog *and* from
  our derivation engine side by side, plus the measured growth exponent of
  the improvement factor;
* Figure 5: the full published formulas with constants and the concrete
  improvement ratio.

Run:  python examples/paper_tables.py
"""

from __future__ import annotations

from repro.report import render_fig4, render_fig5


def main() -> None:
    print(render_fig4())
    print()
    print(render_fig5())
    print(
        "\n(engine and paper columns agree on the leading term; see"
        " EXPERIMENTS.md for the per-kernel discussion of constants)"
    )


if __name__ == "__main__":
    main()
