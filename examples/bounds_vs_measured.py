#!/usr/bin/env python3
"""Every kernel's I/O sandwich in one table.

For each registered kernel and a sweep of cache sizes: the engine's
tightest lower bound, the pebble-game loads of the program order (Belady),
and the gap — a one-screen picture of how tight the derivations are across
the whole library (hourglass kernels vs classical-only controls).

Run:  python examples/bounds_vs_measured.py [S1 S2 ...]
"""

from __future__ import annotations

import sys

from repro import build_cdag, derive, get_kernel
from repro.ir import Tracer
from repro.kernels import KERNELS
from repro.pebble import play_schedule
from repro.report import render_table

INSTANCES = {
    "mgs": {"M": 10, "N": 8},
    "qr_a2v": {"M": 11, "N": 6},
    "qr_v2q": {"M": 11, "N": 6},
    "gebd2": {"M": 11, "N": 7},
    "gehd2": {"N": 10},
    "matmul": {"NI": 7, "NJ": 7, "NK": 7},
    "cholesky": {"N": 9},
    "syrk": {"N": 7, "KP": 5},
}


def main(caches: list[int]) -> None:
    rows = []
    for name in sorted(KERNELS):
        kernel = get_kernel(name)
        params = INSTANCES[name]
        report = derive(kernel)
        g = build_cdag(kernel.program, params)
        t = Tracer()
        kernel.program.runner(dict(params), t)
        for s in caches:
            measured = play_schedule(g, t.schedule, s, "belady").loads
            best, lb = report.best({**params, "S": s})
            rows.append(
                [
                    name,
                    s,
                    lb,
                    measured,
                    measured / max(lb, 1e-9),
                    best.method,
                ]
            )
    print(
        render_table(
            ["kernel", "S", "lower bound", "measured", "gap", "binding method"],
            rows,
            title="I/O sandwich across the kernel library (Belady, program order)",
        )
    )
    assert all(r[2] <= r[3] + 1e-9 for r in rows), "soundness violation!"
    print("\nall bounds sound; hourglass kernels show the smallest gaps at")
    print("tight cache sizes, exactly as the paper's analysis predicts.")


if __name__ == "__main__":
    caches = [int(a) for a in sys.argv[1:]] or [8, 16, 32]
    main(caches)
