#!/usr/bin/env python3
"""Explore the block-size landscape of the tiled algorithms (Appendix A).

For a fixed cache size S, sweep the block size B and measure the simulated
I/O of tiled MGS and tiled A2V.  The appendix predicts the sweet spot at
B* = floor(S/M) - 1 (the largest block for which the working set
(M+1)*B < S fits), with loads falling as ~1/B up to that point and
thrashing beyond it.

Run:  python examples/tiling_explorer.py [M N S]
"""

from __future__ import annotations

import sys

from repro.cache import simulate
from repro.kernels import TILED_A2V, TILED_MGS, default_block_size
from repro.report import render_table


def sweep(alg, params: dict, s: int, blocks: list[int]) -> list[list]:
    rows = []
    best = None
    for b in blocks:
        tr = alg.run_traced({**params, "B": b})
        events = list(tr.events)
        bel = simulate(events, s, "belady").loads
        lru = simulate(events, s, "lru").loads
        pred = float(alg.io_reads_formula.eval({**params, "B": b}))
        fits = (params["M"] + 1) * b < s
        rows.append([b, bel, lru, pred, "yes" if fits else "no"])
        if best is None or bel < best[1]:
            best = (b, bel)
    rows.append(["best", best[0], best[1], "", ""])
    return rows


def main(m: int = 20, n: int = 14, s: int = 128) -> None:
    bstar = default_block_size(m + 1, s)
    blocks = sorted({1, 2, 3, bstar, bstar + 2, bstar + 6, n})
    print(f"cache S={s}, matrix {m}x{n}; appendix optimum B* = {bstar}\n")

    for alg in (TILED_MGS, TILED_A2V):
        rows = sweep(alg, {"M": m, "N": n}, s, blocks)
        print(
            render_table(
                ["B", "belady loads", "lru loads", "predicted reads", "fits (M+1)B<S"],
                rows,
                title=f"{alg.name}  ({alg.description})",
            )
        )
        print()


if __name__ == "__main__":
    args = [int(a) for a in sys.argv[1:4]]
    main(*args) if args else main()
