#!/usr/bin/env python3
"""Define a *new* kernel with the IR and run the whole toolchain on it.

The kernel is an iterated, weighted column normalisation (a building block
of power-iteration / Sinkhorn-style scalings)::

    for t in range(T):            # temporal
        for j in range(N):        # neutral (columns independent)
            nrm = 0
            for i in range(M):    # reduction
                nrm += A[i][j]**2
            for i in range(M):    # broadcast
                A[i][j] = A[i][j] * W[i][t] / (1 + nrm)

It exhibits a textbook hourglass (reduction over i, broadcast over i, outer
loop t), which the detector must find *without any annotation*, yielding a
bound Omega(T N M^2 / (S + M)) — parametrically better than the classical
Omega(T N M / sqrt(S)).

Run:  python examples/custom_kernel.py
"""

from __future__ import annotations

import numpy as np

from repro.bounds import classical_bound, derive_projections, detect_hourglass, hourglass_bound
from repro.cdag import check_program_deps, check_spec_matches_runner
from repro.ir import Access, Array, NullTracer, Program, Statement
from repro.polyhedral import var

t, j, i = var("t"), var("j"), var("i")
T, N, M = var("T"), var("N"), var("M")


def run_normalize(params, tracer=None, seed=0):
    """Instrumented runner matching the spec statement-for-statement."""
    tt, nn, mm = params["T"], params["N"], params["M"]
    tr = tracer if tracer is not None else NullTracer()
    rng = np.random.default_rng(seed)
    A = rng.standard_normal((mm, nn))
    W = 1.0 + 0.01 * rng.random((mm, tt))
    nrm = 0.0
    for t_ in range(tt):
        for j_ in range(nn):
            tr.stmt("Sz", t_, j_)
            tr.write("nrm")
            nrm = 0.0
            for i_ in range(mm):
                tr.stmt("SR", t_, j_, i_)
                tr.read("A", i_, j_)
                tr.read("nrm")
                tr.write("nrm")
                nrm += A[i_, j_] * A[i_, j_]
            for i_ in range(mm):
                tr.stmt("SU", t_, j_, i_)
                tr.read("A", i_, j_)
                tr.read("W", i_, t_)
                tr.read("nrm")
                tr.write("A", i_, j_)
                A[i_, j_] = A[i_, j_] * W[i_, t_] / (1.0 + nrm)
    return {"A": A}


def build_program() -> Program:
    return Program(
        name="normalize_iter",
        params=("T", "N", "M"),
        arrays=(Array("A", 2), Array("W", 2), Array("nrm", 0)),
        statements=(
            Statement(
                "Sz",
                loops=(("t", 0, T - 1), ("j", 0, N - 1)),
                writes=(Access.to("nrm"),),
                schedule=(0, "t", 0, "j", 0),
            ),
            Statement(
                "SR",
                loops=(("t", 0, T - 1), ("j", 0, N - 1), ("i", 0, M - 1)),
                reads=(Access.to("A", i, j), Access.to("nrm")),
                writes=(Access.to("nrm"),),
                schedule=(0, "t", 0, "j", 1, "i", 0),
            ),
            Statement(
                "SU",
                loops=(("t", 0, T - 1), ("j", 0, N - 1), ("i", 0, M - 1)),
                reads=(
                    Access.to("A", i, j),
                    Access.to("W", i, t),
                    Access.to("nrm"),
                ),
                writes=(Access.to("A", i, j),),
                schedule=(0, "t", 0, "j", 2, "i", 0),
            ),
        ),
        outputs=("A",),
        runner=run_normalize,
    )


def main() -> None:
    prog = build_program()
    small = {"T": 3, "N": 3, "M": 4}
    sample = {"T": 512, "N": 512, "M": 1024}

    # 1. the spec and the runner must agree exactly
    ok, msg = check_spec_matches_runner(prog, small)
    print(f"spec vs runner: {msg}")
    assert ok
    diff = check_program_deps(prog, small)
    print(f"CDAG check: {diff.summary()}")
    assert diff.ok()

    # 2. automatic projections + hourglass detection (no annotations!)
    projections = derive_projections(prog, "SU", small)
    print(f"\nderived projections: {projections}")
    pattern = detect_hourglass(prog, "SU", small, sample, projections)
    print(f"detected: {pattern}")
    assert pattern.temporal == ("t",)
    assert pattern.reduction == ("i",)
    assert pattern.neutral == ("j",)

    # 3. both bounds
    v = prog.statement("SU").instance_count()
    classical = classical_bound("normalize_iter", ("t", "j", "i"), projections, v)
    hourglass = hourglass_bound("normalize_iter", pattern, projections, v)
    print(f"\nclassical: {classical}")
    print(f"hourglass: {hourglass}")

    env = {"T": 100, "N": 100, "M": 2000, "S": 256}
    c, h = classical.evaluate(env), hourglass.evaluate(env)
    print(f"\nat {env}:")
    print(f"  classical Q >= {c:.3e}")
    print(f"  hourglass Q >= {h:.3e}   ({h / c:.1f}x tighter)")
    assert h > c


if __name__ == "__main__":
    main()
