#!/usr/bin/env python3
"""The I/O sandwich for MGS: lower bound <= measured <= upper bound.

For a sweep of cache sizes S this script compares

* the tightest derived lower bound (Theorem 5's two cases),
* the red-white pebble game loads of the naive (Figure 1) order,
* the pebble game loads of the tiled (Figure 8) order,
* the cache-simulator loads of the tiled address trace, and
* Appendix A.1's predicted upper bound ~ MN^2/(2B) + MN.

Every measured number must sit between the lower bound and (roughly) the
prediction — this is Theorem 5 + Appendix A.1 reproduced end to end on one
concrete instance.

Run:  python examples/validate_mgs.py [M N]
"""

from __future__ import annotations

import sys

from repro import build_cdag, derive, get_kernel, play_schedule
from repro.cache import simulate
from repro.ir import Tracer
from repro.kernels import TILED_MGS, default_block_size
from repro.report import render_table


def main(m: int = 16, n: int = 12) -> None:
    kernel = get_kernel("mgs")
    params = {"M": m, "N": n}
    report = derive(kernel)

    g = build_cdag(kernel.program, params)
    naive = Tracer()
    kernel.program.runner(dict(params), naive)

    rows = []
    for s in (8, 16, 32, 64, 128, 256):
        b = default_block_size(m + 1, s)
        tiled = TILED_MGS.run_traced({**params, "B": b})

        env = dict(params)
        env["S"] = s
        _, lower = report.best(env)

        naive_loads = play_schedule(g, naive.schedule, s, "belady").loads
        tiled_loads = play_schedule(g, tiled.schedule, s, "belady").loads
        sim_loads = simulate(list(tiled.events), s, "belady").loads
        upper = 0.5 * m * n * n / b + m * n

        ok = lower <= min(naive_loads, tiled_loads, sim_loads)
        rows.append(
            [s, b, lower, tiled_loads, naive_loads, sim_loads, upper, "ok" if ok else "VIOLATION"]
        )

    print(
        render_table(
            [
                "S",
                "B",
                "lower bound",
                "pebble tiled",
                "pebble naive",
                "cache-sim tiled",
                "A.1 prediction",
                "sound",
            ],
            rows,
            title=f"MGS I/O sandwich at M={m}, N={n} (loads; Belady eviction)",
        )
    )

    assert all(r[-1] == "ok" for r in rows), "lower bound violated!"
    print("\nall lower bounds sit below all measured executions — sound.")


if __name__ == "__main__":
    if len(sys.argv) >= 3:
        main(int(sys.argv[1]), int(sys.argv[2]))
    else:
        main()
