#!/usr/bin/env python3
"""Parse a paper figure's C code and run the full pipeline on it.

Demonstrates the front-end: the *literal listing* of Figure 1 (or 3/6/7) is
parsed into the polyhedral IR, validated against an interpreter run, and
pushed through hourglass detection and bound derivation — C source in,
Theorem 5 out.

Run:  python examples/parse_figure.py [mgs|qr_a2v|qr_v2q|gehd2|gebd2]
"""

from __future__ import annotations

import sys

from repro.bounds import derive
from repro.cdag import build_cdag, check_program_deps, compare_cdags
from repro.frontend import compile_source
from repro.frontend.sources import FIGURE_SHAPES, FIGURE_SOURCES
from repro.kernels import get_kernel
from repro.kernels.common import Kernel

SMALL = {
    "mgs": {"M": 5, "N": 4},
    "qr_a2v": {"M": 6, "N": 4},
    "qr_v2q": {"M": 6, "N": 4},
    "gehd2": {"N": 6},
    "gebd2": {"M": 7, "N": 5},
}
SAMPLE = {
    "mgs": {"M": 4096, "N": 1024},
    "qr_a2v": {"M": 4096, "N": 1024},
    "qr_v2q": {"M": 4096, "N": 1024},
    "gehd2": {"N": 2048},
    "gebd2": {"M": 4096, "N": 1024},
}
DOMINANT = {"mgs": "SU", "qr_a2v": "SU", "qr_v2q": "SU", "gehd2": "SrU", "gebd2": "ScU"}


def main(which: str = "mgs") -> None:
    src = FIGURE_SOURCES[which]
    print(f"--- source ({which}) ---{src}")

    prog, _ast = compile_source(src, which + "_parsed", FIGURE_SHAPES[which])
    print(f"parsed: {len(prog.statements)} statements, params {prog.params}")

    params = SMALL[which]
    assert check_program_deps(prog, params).ok()
    g_hand = build_cdag(get_kernel(which).program, params)
    g_parsed = build_cdag(prog, params)
    assert compare_cdags(g_parsed, g_hand).ok()
    print("validation: parsed CDAG identical to the hand-built kernel's")

    kern = Kernel(program=prog, dominant=DOMINANT[which], default_params=params)
    rep = derive(kern, small_params=params, sample_params=SAMPLE[which])
    print()
    print(rep.summary())


if __name__ == "__main__":
    main(sys.argv[1] if len(sys.argv) > 1 else "mgs")
