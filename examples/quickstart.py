#!/usr/bin/env python3
"""Quickstart: derive I/O lower bounds for a built-in kernel.

Run:  python examples/quickstart.py [kernel]

Shows the complete pipeline on Modified Gram-Schmidt (the paper's running
example): automatic projection derivation, hourglass detection, the
classical vs hourglass bounds, and a numeric evaluation.
"""

from __future__ import annotations

import sys

from repro import derive, get_kernel
from repro.report import render_table


def main(kernel_name: str = "mgs") -> None:
    kernel = get_kernel(kernel_name)
    print(f"=== {kernel.name}: {kernel.description} ===\n")

    # 1. numeric sanity: the implementation really computes the factorization
    kernel.validate(kernel.default_params)
    print(f"numeric validation ok at {kernel.default_params}")

    # 2. derive every bound the engine knows
    report = derive(kernel)
    print()
    print(report.summary())

    # 3. evaluate at a concrete machine/problem size
    if kernel_name == "gehd2":
        env = {"N": 4000, "S": 1024}
    elif kernel_name == "matmul":
        env = {"NI": 512, "NJ": 512, "NK": 512, "S": 1024}
    else:
        env = {"M": 4000, "N": 1000, "S": 1024}
    rows = []
    for b in report.all_bounds():
        try:
            rows.append([b.method, b.evaluate(env), b.k_choice])
        except (ZeroDivisionError, KeyError):
            rows.append([b.method, "n/a", b.k_choice])
    print()
    print(render_table(["method", f"Q >= (at {env})", "K choice"], rows))

    best, val = report.best(env)
    print(f"\ntightest bound: {val:.3e} loads  [{best.method}]")


if __name__ == "__main__":
    main(sys.argv[1] if len(sys.argv) > 1 else "mgs")
