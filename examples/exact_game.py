#!/usr/bin/env python3
"""The exact I/O optimum on a tiny instance — the full bound hierarchy.

On a 2x2 MGS instance small enough for exhaustive search, print, for each
cache size S:

    derived lower bound  <=  exact red-white optimum  <=  Belady schedule
                         <=  LRU schedule

The exact optimum ranges over *all* compute orders and spill decisions
(0-1 BFS over game states); everything else fixes the program order.

Run:  python examples/exact_game.py
"""

from __future__ import annotations

from repro import build_cdag, derive, get_kernel, play_schedule
from repro.ir import Tracer
from repro.pebble import exact_min_loads
from repro.report import render_table


def main() -> None:
    kernel = get_kernel("mgs")
    params = {"M": 2, "N": 2}
    g = build_cdag(kernel.program, params)
    t = Tracer()
    kernel.program.runner(dict(params), t)
    rep = derive(kernel)

    print(
        f"MGS at {params}: {len(g.compute_nodes())} compute nodes,"
        f" {len(g.input_nodes())} inputs\n"
    )
    rows = []
    for s in (4, 5, 6, 8):
        exact = exact_min_loads(g, s, node_limit=24)
        bel = play_schedule(g, t.schedule, s, "belady").loads
        lru = play_schedule(g, t.schedule, s, "lru").loads
        _, lb = rep.best({**params, "S": s})
        ok = lb <= exact <= bel <= lru
        rows.append([s, lb, exact, bel, lru, "ok" if ok else "VIOLATION"])
    print(
        render_table(
            ["S", "lower bound", "exact optimum", "belady", "lru", "ordered"],
            rows,
            title="bound <= Q_exact <= Belady(schedule) <= LRU(schedule)",
        )
    )
    assert all(r[-1] == "ok" for r in rows)
    print("\nthe exact optimum strictly reorders: at S=4 it beats the")
    print("program order, showing the schedule space the bounds range over.")


if __name__ == "__main__":
    main()
