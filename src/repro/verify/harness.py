"""``run_verify`` — the driver behind ``iolb verify`` and selfcheck.

One *trial* is a seeded random parameter point; every oracle in the
catalogue runs on every trial.  The driver

* reuses the expensive artefacts across oracles (one trace/CDAG per trial,
  one derivation per kernel),
* shrinks each failing case to a locally minimal counterexample by
  re-running the failing oracle on smaller parameter points,
* honours a wall-clock budget (partial runs are reported as such, never as
  silent passes),
* and renders a machine-readable dict plus a console summary.

Seeding is hierarchical and stable: trial ``t`` of kernel ``k`` under
``--seed K`` always sees the same parameter point, so a failure reported by
CI reproduces locally from the JSON report alone.
"""

from __future__ import annotations

import random
import time
from dataclasses import dataclass, field
from typing import Callable, Iterable, Mapping

from .. import obs
from ..cache import ENGINE_VERSION
from ..kernels.common import Kernel
from ..kernels.registry import KERNELS, TILED_ALGORITHMS, get_kernel, get_tiled
from ..report import render_table
from .fuzzer import random_fuzz_program
from .oracles import (
    FUZZ_ORACLES,
    KERNEL_ORACLES,
    OracleOutcome,
    Trial,
    run_tiled_oracle,
)
from .sampling import sample_cache_sizes, sample_params, sample_tiled_params
from .shrink import shrink_params

__all__ = ["VerifyFailure", "VerifyReport", "run_verify"]


@dataclass
class VerifyFailure:
    """One failed oracle with its original and shrunk counterexamples."""

    oracle: str
    subject: str
    kind: str
    detail: str
    params: dict
    s_values: list[int]
    trial: int
    shrunk_params: dict | None = None
    shrunk_detail: str = ""
    shrink_evals: int = 0

    def to_dict(self) -> dict:
        return {
            "oracle": self.oracle,
            "subject": self.subject,
            "kind": self.kind,
            "detail": self.detail,
            "params": dict(self.params),
            "s_values": list(self.s_values),
            "trial": self.trial,
            "shrunk_params": dict(self.shrunk_params)
            if self.shrunk_params is not None
            else None,
            "shrunk_detail": self.shrunk_detail,
            "shrink_evals": self.shrink_evals,
        }


@dataclass
class VerifyReport:
    """Aggregated outcome of one ``run_verify`` invocation."""

    seed: int
    trials: int
    outcomes: list[OracleOutcome] = field(default_factory=list)
    failures: list[VerifyFailure] = field(default_factory=list)
    elapsed: float = 0.0
    budget_exhausted: bool = False
    subjects: list[str] = field(default_factory=list)

    def ok(self) -> bool:
        return not self.failures

    # -- aggregation -------------------------------------------------------
    def tally(self) -> dict[str, dict[str, int]]:
        """Per-oracle {pass, fail, skip} counts, keyed ``kind/oracle``."""
        out: dict[str, dict[str, int]] = {}
        for o in self.outcomes:
            kind = o.context.get("kind", "kernel")
            row = out.setdefault(f"{kind}/{o.oracle}", {"pass": 0, "fail": 0, "skip": 0})
            row[o.status] = row.get(o.status, 0) + 1
        return out

    def to_dict(self) -> dict:
        return {
            "ok": self.ok(),
            "seed": self.seed,
            "trials": self.trials,
            "engine_version": ENGINE_VERSION,
            "elapsed_seconds": round(self.elapsed, 3),
            "budget_exhausted": self.budget_exhausted,
            "subjects": list(self.subjects),
            "oracles": self.tally(),
            "failures": [f.to_dict() for f in self.failures],
        }

    def summary(self) -> str:
        rows = [
            [name, c["pass"], c["fail"], c["skip"]]
            for name, c in sorted(self.tally().items())
        ]
        lines = [
            render_table(
                ["oracle", "pass", "fail", "skip"],
                rows,
                title=f"verify: seed={self.seed} trials={self.trials}"
                f" elapsed={self.elapsed:.1f}s",
            )
        ]
        if self.budget_exhausted:
            lines.append("NOTE: time budget exhausted — partial run")
        for f in self.failures:
            lines.append(
                f"FAIL {f.kind}/{f.oracle} on {f.subject}: {f.detail}\n"
                f"     at params={f.params} S in {f.s_values}"
            )
            if f.shrunk_params is not None and f.shrunk_params != f.params:
                lines.append(
                    f"     shrunk to params={f.shrunk_params}"
                    f" ({f.shrink_evals} evals): {f.shrunk_detail}"
                )
        lines.append("verify: " + ("OK" if self.ok() else f"{len(self.failures)} FAILURE(S)"))
        return "\n".join(lines)


def _resolve_kernels(
    kernels: Iterable[Kernel | str] | None,
) -> list[Kernel]:
    if kernels is None:
        return [KERNELS[n] for n in sorted(KERNELS)]
    return [k if isinstance(k, Kernel) else get_kernel(k) for k in kernels]


def _trial_rng(seed: int, *scope) -> random.Random:
    return random.Random(":".join([str(seed), *map(str, scope)]))


def run_verify(
    kernels: Iterable[Kernel | str] | None = None,
    tiled: Iterable[str] | None = None,
    *,
    trials: int = 25,
    seed: int = 0,
    budget_seconds: float | None = None,
    fuzz_programs: int | None = None,
    derive_fn: Callable | None = None,
    shrink: bool = True,
) -> VerifyReport:
    """Run the oracle catalogue on randomized trials of every subject.

    ``kernels`` accepts registry names or :class:`Kernel` objects (so
    callers can verify kernels that are not registered); ``None`` means the
    whole registry.  ``tiled`` likewise (names only); ``fuzz_programs``
    defaults to ``trials`` freshly generated random programs.  ``derive_fn``
    replaces :func:`repro.bounds.derive` — the hook the planted-bug tests
    use to demonstrate that a corrupted derivation is caught and shrunk.
    """
    t0 = time.monotonic()
    deadline = t0 + budget_seconds if budget_seconds is not None else None
    report = VerifyReport(seed=seed, trials=trials)
    kernel_list = _resolve_kernels(kernels)
    tiled_list = (
        [get_tiled(n) for n in tiled]
        if tiled is not None
        else [TILED_ALGORITHMS[n] for n in sorted(TILED_ALGORITHMS)]
    )
    n_fuzz = trials if fuzz_programs is None else fuzz_programs

    derivations: dict[str, object] = {}

    def derivation_of(kernel: Kernel):
        """Cached DerivationReport, or the exception derivation raised."""
        if kernel.name not in derivations:
            fn = derive_fn
            if fn is None:
                from ..bounds import derive as fn
            try:
                derivations[kernel.name] = fn(kernel)
            except Exception as exc:  # noqa: BLE001 - Trial reports as skip
                derivations[kernel.name] = exc
        return derivations[kernel.name]

    def out_of_time() -> bool:
        if deadline is not None and time.monotonic() > deadline:
            report.budget_exhausted = True
            return True
        return False

    def run_oracle(oracle, trial) -> OracleOutcome:
        """An oracle that crashes is a failure, not an aborted run."""
        try:
            return oracle.run(trial)
        except Exception as exc:  # noqa: BLE001 - recorded, run continues
            return OracleOutcome(
                oracle=oracle.name,
                subject=trial.name,
                status="fail",
                detail=f"oracle crashed: {type(exc).__name__}: {exc}",
                context={
                    "params": dict(trial.params),
                    "s_values": list(trial.s_values),
                },
            )

    def record(outcome: OracleOutcome, kind: str, trial_no: int, shrinker=None):
        outcome.context["kind"] = kind
        outcome.context["trial"] = trial_no
        report.outcomes.append(outcome)
        obs.add("verify.oracle_trials")
        if not outcome.failed:
            return
        obs.add("verify.oracle_failures")
        failure = VerifyFailure(
            oracle=outcome.oracle,
            subject=outcome.subject,
            kind=kind,
            detail=outcome.detail,
            params=dict(outcome.context.get("params", {})),
            s_values=list(outcome.context.get("s_values", [])),
            trial=trial_no,
        )
        if shrink and shrinker is not None:
            try:
                failure.shrunk_params, failure.shrunk_detail, failure.shrink_evals = (
                    shrinker(failure)
                )
            except Exception as exc:  # noqa: BLE001 - shrinking is best-effort
                failure.shrunk_detail = f"shrink aborted: {type(exc).__name__}: {exc}"
        report.failures.append(failure)

    def kernel_shrinker(kernel, oracle, s_values, rng_key):
        """Re-run one oracle on smaller params until it stops failing."""

        def make(failure: VerifyFailure):
            last_detail = {}

            def fails(p: dict[str, int]) -> bool:
                try:
                    trial = Trial(
                        kernel,
                        p,
                        s_values,
                        _trial_rng(*rng_key),
                        report=derivation_of(kernel),
                    )
                    out = oracle.run(trial)
                except Exception:  # noqa: BLE001 - invalid shape, not a repro
                    return False
                if out.failed:
                    last_detail["d"] = out.detail
                return out.failed

            shrunk, evals = shrink_params(
                failure.params, fails, floors={k: 2 for k in failure.params}
            )
            return shrunk, last_detail.get("d", failure.detail), evals

        return make

    # -- registered kernels ------------------------------------------------
    for kernel in kernel_list:
        report.subjects.append(kernel.name)
        with obs.span("verify.subject", subject=kernel.name, kind="kernel"):
            for t in range(trials):
                if out_of_time():
                    break
                rng_key = (seed, kernel.name, t)
                rng = _trial_rng(*rng_key)
                params = sample_params(kernel.default_params, rng)
                s_values = sample_cache_sizes(params, rng)
                trial = Trial(
                    kernel, params, s_values, rng, report=derivation_of(kernel)
                )
                for oracle in KERNEL_ORACLES:
                    record(
                        run_oracle(oracle, trial),
                        "kernel",
                        t,
                        kernel_shrinker(kernel, oracle, s_values, rng_key),
                    )

    # -- tiled algorithms --------------------------------------------------
    for alg in tiled_list:
        report.subjects.append(alg.name)
        base = get_kernel(alg.base)
        with obs.span("verify.subject", subject=alg.name, kind="tiled"):
            for t in range(trials):
                if out_of_time():
                    break
                rng = _trial_rng(seed, alg.name, t)
                params, s = sample_tiled_params(rng)
                rep = derivation_of(base)
                if isinstance(rep, Exception):
                    record(
                        OracleOutcome(
                            oracle="tiled-ge-bound",
                            subject=alg.name,
                            status="skip",
                            detail=f"base kernel underivable: {rep}",
                            context={"params": params, "s_values": [s]},
                        ),
                        "tiled",
                        t,
                    )
                    continue

                def tiled_shrinker(failure: VerifyFailure, _alg=alg, _rep=rep, _s=s):
                    last_detail = {}

                    def fails(p: dict[str, int]) -> bool:
                        if p["M"] < p["N"]:
                            return False
                        try:
                            out = run_tiled_oracle(_alg, p, _s, _rep)
                        except Exception:  # noqa: BLE001
                            return False
                        if out.failed:
                            last_detail["d"] = out.detail
                        return out.failed

                    shrunk, evals = shrink_params(
                        failure.params, fails, floors={k: 2 for k in failure.params}
                    )
                    return shrunk, last_detail.get("d", failure.detail), evals

                record(
                    run_tiled_oracle(alg, params, s, rep), "tiled", t, tiled_shrinker
                )

    # -- fuzzed programs ---------------------------------------------------
    with obs.span("verify.fuzz", programs=n_fuzz):
        for f in range(n_fuzz):
            if out_of_time():
                break
            fuzz_seed = seed * 1_000_003 + f
            fp = random_fuzz_program(fuzz_seed)
            obs.add("verify.fuzz_programs")
            rng_key = (seed, "fuzz", f)
            rng = _trial_rng(*rng_key)
            params = fp.sample_params(rng)
            s_values = sample_cache_sizes(params, rng)
            trial = Trial(
                fp.kernel, params, s_values, rng, report=None, derive_fn=derive_fn
            )
            for oracle in FUZZ_ORACLES:
                record(
                    run_oracle(oracle, trial),
                    "fuzz",
                    f,
                    kernel_shrinker(fp.kernel, oracle, s_values, rng_key),
                )
    if n_fuzz:
        report.subjects.append(f"fuzz[{n_fuzz}]")

    report.elapsed = time.monotonic() - t0
    return report
