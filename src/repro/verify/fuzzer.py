"""Randomized straight-line affine programs for differential testing.

The generator builds seeded random :class:`~repro.ir.Program` s from the
same vocabulary as the paper kernels — loop nests with affine (possibly
triangular) bounds, affine array accesses, optional self-update reads that
create temporal chains — and equips each with a *replay runner* that emits
the declared access stream, so every trace-driven component (CDAG builder,
pebble game, cache simulators, projection/derivation engine) can run on it
unchanged.

Generated programs are valid by construction:

* loop ranges are never empty (inner bounds only reference dims whose own
  range is contained in the bounding parameter's range), so the closed-form
  Faulhaber counts are exact and comparable against brute-force enumeration;
* each statement has exactly one write (the dataflow engine's
  single-assignment assumption);
* the sequential schedule orders statements by a leading static position,
  so the replay order is a topological order of the dataflow CDAG.

What is *not* constrained is everything the differential oracles are after:
access aliasing, reduction-style writes, broadcast reads, inter-statement
flow — the structures on which counting, pebbling and bound derivation
could silently disagree.
"""

from __future__ import annotations

import random
from dataclasses import dataclass

from ..ir import Access, Array, NullTracer, Program, Statement, sequential_schedule
from ..kernels.common import Kernel
from ..polyhedral import LinExpr, var

__all__ = ["FuzzProgram", "random_fuzz_program"]

_DIMS = ("i", "j", "k")


@dataclass
class FuzzProgram:
    """A generated program plus the Kernel wrapper the pipeline consumes."""

    kernel: Kernel
    #: generator seed that reproduces this exact program
    seed: int

    @property
    def program(self) -> Program:
        return self.kernel.program

    def sample_params(self, rng: random.Random) -> dict[str, int]:
        """Random small parameter values (trace sizes stay enumerable)."""
        return {p: rng.randint(2, 5) for p in self.program.params}


def _replay_runner(program: Program):
    """A runner that replays the declared accesses in schedule order.

    Fuzz programs have no numeric semantics; their ground truth *is* the
    declared spec, and the differential value comes from feeding the same
    stream through independent consumers (CDAG vs pebble vs simulators vs
    derivation).
    """

    def runner(params, tracer=None, seed: int = 0):
        t = tracer if tracer is not None else NullTracer()
        stmts = {s.name: s for s in program.statements}
        for name, point in sequential_schedule(program, params):
            s = stmts[name]
            env = dict(params)
            env.update(zip(s.dims, point))
            t.stmt(name, *point)
            for acc in s.reads:
                arr, idx = acc.eval(env)
                t.read(arr, *idx)
            for acc in s.writes:
                arr, idx = acc.eval(env)
                t.write(arr, *idx)
        return {}

    return runner


def _random_nest(
    rng: random.Random, params: tuple[str, ...]
) -> list[tuple[str, "LinExpr | int", "LinExpr | int"]]:
    """A 1-3 deep loop nest with non-empty affine bounds.

    Each dim tracks the parameter capping it (``dim <= cap - 1`` holds over
    the whole nest), so triangular lower bounds ``dim2 in [dim1, P-1]`` are
    only emitted when ``cap(dim1) == P`` — the non-emptiness invariant that
    keeps closed-form counting exact.
    """
    depth = rng.randint(1, 3)
    loops: list[tuple[str, LinExpr | int, LinExpr | int]] = []
    caps: dict[str, str] = {}
    for level in range(depth):
        d = _DIMS[level]
        p = rng.choice(params)
        if level == 0:
            loops.append((d, 0, var(p) - 1))
            caps[d] = p
            continue
        outer = loops[rng.randrange(level)][0]
        shape = rng.random()
        if shape < 0.45:
            loops.append((d, 0, var(p) - 1))
            caps[d] = p
        elif shape < 0.75:
            # lower-triangular: 0..outer (always non-empty)
            loops.append((d, 0, var(outer)))
            caps[d] = caps[outer]
        else:
            # upper-triangular: outer..P-1, valid when P caps `outer`
            p = caps[outer]
            loops.append((d, var(outer), var(p) - 1))
            caps[d] = p
    return loops


def _random_index(rng: random.Random, dims: tuple[str, ...]) -> LinExpr:
    d = rng.choice(dims)
    e = var(d) + rng.choice((-1, 0, 0, 0, 1))
    if len(dims) > 1 and rng.random() < 0.15:
        other = rng.choice([x for x in dims if x != d])
        e = e + var(other)
    return e


def _random_read(
    rng: random.Random, array: Array, dims: tuple[str, ...]
) -> Access:
    return Access(
        array.name, tuple(_random_index(rng, dims) for _ in range(array.ndim))
    )


def random_fuzz_program(seed: int, name: str | None = None) -> FuzzProgram:
    """Generate one seeded random program wrapped as a :class:`Kernel`."""
    rng = random.Random(seed)
    params = ("N",) if rng.random() < 0.5 else ("N", "M")
    name = name or f"fuzz_{seed}"

    inputs = [
        Array("X", rng.randint(1, 2)),
        Array("Y", 1),
    ]
    arrays: list[Array] = list(inputs)
    statements: list[Statement] = []
    n_stmts = rng.randint(1, 2)
    for t in range(n_stmts):
        loops = _random_nest(rng, params)
        dims = tuple(v for v, _, _ in loops)
        # write: an injective map of a (possibly strict) subset of the dims;
        # a strict subset yields reduction-style overwrites along the
        # missing dims — the structure temporal chains are made of
        n_w = rng.randint(1, len(dims))
        w_dims = tuple(rng.sample(dims, n_w))
        w_arr = Array(f"W{t}", n_w)
        arrays.append(w_arr)
        write = Access(w_arr.name, tuple(var(d) for d in w_dims))

        reads: list[Access] = []
        if n_w < len(dims) or rng.random() < 0.5:
            # self-update read: consecutive instances writing the same
            # element become a dependence chain
            reads.append(Access(write.array, write.indices))
        for _ in range(rng.randint(1, 2)):
            reads.append(_random_read(rng, rng.choice(inputs), dims))
        if t > 0 and rng.random() < 0.7:
            prev = next(a for a in arrays if a.name == f"W{t-1}")
            reads.append(_random_read(rng, prev, dims))

        schedule: list = [t]
        for d in dims:
            schedule.extend([d, 0])
        statements.append(
            Statement(
                name=f"S{t}",
                loops=tuple(loops),
                reads=tuple(reads),
                writes=(write,),
                schedule=tuple(schedule),
            )
        )

    program = Program(
        name=name,
        params=params,
        arrays=tuple(arrays),
        statements=tuple(statements),
        outputs=tuple(f"W{t}" for t in range(n_stmts)),
    )
    program.runner = _replay_runner(program)

    probe = {p: 4 for p in params}
    dominant = max(
        statements, key=lambda s: s.domain().count(probe)
    ).name
    kernel = Kernel(
        program=program,
        dominant=dominant,
        description=f"fuzz program (seed {seed})",
        default_params=dict(probe),
    )
    return FuzzProgram(kernel=kernel, seed=seed)
