"""Seeded randomized parameter points for kernels and tiled algorithms.

Every kernel's ``default_params`` encodes its shape constraints implicitly
(QR-style kernels need M >= N, GEBD2 needs two extra rows, ...).  The
samplers here jitter around those defaults while *preserving the default
gaps*, so every sampled point is a valid instantiation:

* two-parameter {M, N} kernels keep ``M - N >= default gap``;
* all parameters stay small enough that CDAG construction and the pebble
  game stay tractable (the harness replays full traces per trial).

Cache sizes are sampled between the pebble game's feasibility floor (every
node needs its operands plus itself resident) and slightly beyond the
working set, so both the small-cache and the large-cache regimes of the
bounds get exercised.
"""

from __future__ import annotations

import random
from typing import Mapping

__all__ = ["sample_params", "sample_cache_sizes", "sample_tiled_params"]

#: extra headroom added to a default parameter value by the jitter
_JITTER = 5


def sample_params(
    defaults: Mapping[str, int],
    rng: random.Random,
    *,
    jitter: int = _JITTER,
) -> dict[str, int]:
    """One randomized parameter point respecting the defaults' shape.

    For the common {M, N} kernels the default gap ``M - N`` is treated as a
    hard floor (QR factorizations need at least as many rows as columns,
    bidiagonalization needs the default slack); every other parameter is
    jittered independently in ``[max(2, default - 2), default + jitter]``.
    """
    defaults = dict(defaults)
    if set(defaults) == {"M", "N"}:
        gap = defaults["M"] - defaults["N"]
        n = rng.randint(max(2, defaults["N"] - 2), defaults["N"] + jitter)
        m = n + gap + rng.randint(0, jitter)
        return {"M": m, "N": n}
    return {
        k: rng.randint(max(2, v - 2), v + jitter) for k, v in defaults.items()
    }


def sample_cache_sizes(
    params: Mapping[str, int],
    rng: random.Random,
    *,
    count: int = 2,
    floor: int = 6,
) -> list[int]:
    """``count`` distinct cache sizes spanning small to near-working-set.

    The floor keeps the pebble game feasible (no kernel statement in the
    library reads more than four operands); the ceiling is a small multiple
    of the largest parameter so both regimes of the bounds appear.
    """
    hi = max(floor + 2, 4 * max(params.values()))
    out: set[int] = set()
    while len(out) < count:
        out.add(rng.randint(floor, hi))
    return sorted(out)


def sample_tiled_params(
    rng: random.Random,
) -> tuple[dict[str, int], int]:
    """A (params, S) point for the tiled algorithms.

    Both tiled orderings in the registry are M x N left-looking column
    blockings; S is sampled large enough that ``default_block_size`` finds
    a positive block (``(M+1)*B + M <= S``) and small enough that blocking
    actually matters.
    """
    n = rng.randint(4, 8)
    m = n + rng.randint(2, 8)
    s = rng.randint(2 * (m + 1), 6 * (m + 1))
    return {"M": m, "N": n}, s
