"""Greedy shrinking of failing cases to minimal counterexamples.

When an oracle fails at ``(params, S)``, re-running the same predicate on
smaller instances localises the bug: a soundness violation that survives at
``M=3, N=2, S=6`` is inspectable by hand (the CDAG has a few dozen nodes)
where the original random point is not.

The strategy is the classic delta-debugging loop specialised to integer
parameter maps: repeatedly try, for every key, first a halving step toward
its floor and then a decrement, keeping any change that still fails, until
a fixed point.  The predicate is re-evaluated on every candidate, so the
result is guaranteed to be a *locally* minimal failing case (no single
halving or decrement of any parameter still fails).
"""

from __future__ import annotations

from typing import Callable, Mapping

__all__ = ["shrink_params"]


def shrink_params(
    params: Mapping[str, int],
    fails: Callable[[dict[str, int]], bool],
    floors: Mapping[str, int] | None = None,
    max_evals: int = 200,
) -> tuple[dict[str, int], int]:
    """Shrink ``params`` while ``fails`` keeps returning True.

    ``floors`` bounds each key from below (default 1; cache sizes and shape
    constraints set higher floors).  Returns the smallest failing point
    found and the number of predicate evaluations spent.  ``fails`` must be
    deterministic — seeded predicates only.
    """
    cur = dict(params)
    floors = dict(floors or {})
    evals = 0

    def floor_of(k: str) -> int:
        return floors.get(k, 1)

    changed = True
    while changed and evals < max_evals:
        changed = False
        for k in sorted(cur):
            lo = floor_of(k)
            while cur[k] > lo and evals < max_evals:
                # halve toward the floor first, then single steps
                half = lo + (cur[k] - lo) // 2
                candidates = [half] if half < cur[k] - 1 else []
                candidates.append(cur[k] - 1)
                shrunk_here = False
                for cand in candidates:
                    trial = dict(cur)
                    trial[k] = cand
                    evals += 1
                    if fails(trial):
                        cur = trial
                        changed = True
                        shrunk_here = True
                        break
                if not shrunk_here:
                    break
    return cur, evals
