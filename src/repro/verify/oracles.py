"""The metamorphic oracle catalogue.

Each oracle states one cross-component invariant that must hold at *every*
parameter point, not just the hand-picked ones of the unit tests:

========================  ===================================================
``bound-le-pebble``       every derived lower bound <= Belady pebble-game
                          cost of the program order (soundness, Theorem 1)
``bound-le-exact``        derived bound <= the exact red-white optimum on
                          instances small enough to solve by search
``hourglass-ge-classical``in the paper's comparison regime the hourglass
                          bound dominates the classical K-partition bound
                          on the five hourglass kernels (Figure 5's claim)
``bound-monotone-cache``  Q(S) is non-increasing in the cache size S
``bound-monotone-size``   Q grows when the problem grows (params doubled)
``tiled-ge-bound``        measured I/O of the tiled orderings >= the derived
                          bound, with the gap ratio logged (Appendix A)
``policy-chain``          cold loads <= Belady loads <= LRU loads on every
                          address trace (simulator sanity ordering)
``engine-eq-reference``   the fast trace engine reproduces the reference
                          simulators field-for-field
``counts-eq-enum``        closed-form instance counts == brute-force
                          enumeration of the integer polyhedra
``stackdist-eq-lru``      the one-pass stack-distance miss curve matches
                          direct LRU simulation at every capacity
``lint-clean-analyzable`` fuzz programs the static analyzer passes without
                          errors must validate, replay and build CDAGs
``lint-mutation-total``   seeded planted defects (negative subscripts,
                          uninitialized scalars, dead stores) are flagged
                          and never crash the analyzer
``schedule-legality``     the traced execution order satisfies every
                          dependence polyhedron; the reversed order must
                          violate at least one (legality pass oracle)
``cert-roundtrip``        a fresh derivation's iolb-cert/1 certificate is
                          accepted by the independent checker (fuzz
                          programs included)
========================  ===================================================

Oracles are pure functions of a :class:`Trial` (kernel or fuzz program +
sampled parameter point + cache sizes); the harness owns sampling,
scheduling, shrinking and reporting.
"""

from __future__ import annotations

import math
import random
from dataclasses import dataclass, field
from typing import Callable, Mapping

from ..cache import _reference as ref
from ..cache import (
    cold_loads,
    lru_miss_curve,
    simulate_belady,
    simulate_lru,
)
from ..cdag import cdag_from_trace
from ..ir import Tracer
from ..kernels.common import Kernel
from ..pebble import PebbleGameError, exact_min_loads, play_schedule

__all__ = [
    "OracleOutcome",
    "Oracle",
    "Trial",
    "KERNEL_ORACLES",
    "TILED_ORACLES",
    "FUZZ_ORACLES",
    "run_tiled_oracle",
]

_EPS = 1e-9


@dataclass
class OracleOutcome:
    """Result of one oracle on one trial."""

    oracle: str
    subject: str
    status: str  # "pass" | "fail" | "skip"
    detail: str = ""
    context: dict = field(default_factory=dict)
    metrics: dict = field(default_factory=dict)

    @property
    def failed(self) -> bool:
        return self.status == "fail"


@dataclass(frozen=True)
class Oracle:
    """A named invariant with the function that checks it."""

    name: str
    kind: str  # "kernel" | "tiled" | "fuzz"
    description: str
    fn: Callable[["Trial"], OracleOutcome]

    def run(self, trial: "Trial") -> OracleOutcome:
        out = self.fn(trial)
        out.context.setdefault("params", dict(trial.params))
        out.context.setdefault("s_values", list(trial.s_values))
        return out


class Trial:
    """One sampled case: a kernel (or fuzz program) at concrete parameters.

    Lazily materialises and caches the expensive shared artefacts (trace,
    CDAG, derivation report) so each oracle pays only for what it uses.
    """

    def __init__(
        self,
        kernel: Kernel,
        params: Mapping[str, int],
        s_values: list[int],
        rng: random.Random,
        report=None,
        derive_fn=None,
    ):
        self.kernel = kernel
        self.params = dict(params)
        self.s_values = list(s_values)
        self.rng = rng
        self._report = report
        self._derive_fn = derive_fn
        self._trace: Tracer | None = None
        self._cdag = None
        self._pebble_cache: dict[tuple[int, str], int | None] = {}

    # -- shared artefacts --------------------------------------------------
    @property
    def name(self) -> str:
        return self.kernel.name

    @property
    def trace(self) -> Tracer:
        if self._trace is None:
            t = Tracer()
            self.kernel.program.runner(dict(self.params), t)
            self._trace = t
        return self._trace

    @property
    def cdag(self):
        if self._cdag is None:
            self._cdag = cdag_from_trace(self.trace)
        return self._cdag

    @property
    def report(self):
        """Derivation report (projections + all bounds); None if underivable."""
        if self._report is None:
            derive_fn = self._derive_fn
            if derive_fn is None:
                from ..bounds import derive as derive_fn
            try:
                self._report = derive_fn(self.kernel)
            except Exception as exc:  # noqa: BLE001 - recorded as skip
                self._report = exc
        return None if isinstance(self._report, Exception) else self._report

    def best_bound(self, s: int) -> float | None:
        rep = self.report
        if rep is None:
            return None
        try:
            _, val = rep.best({**self.params, "S": s})
        except ValueError:
            return None
        return val

    def pebble_loads(self, s: int, policy: str = "belady") -> int | None:
        """Pebble-game cost of the traced schedule; None when S infeasible."""
        key = (s, policy)
        if key not in self._pebble_cache:
            try:
                res = play_schedule(self.cdag, self.trace.schedule, s, policy)
                self._pebble_cache[key] = res.loads
            except PebbleGameError:
                self._pebble_cache[key] = None
        return self._pebble_cache[key]


def _outcome(trial, oracle, status, detail="", **metrics) -> OracleOutcome:
    return OracleOutcome(
        oracle=oracle,
        subject=trial.name,
        status=status,
        detail=detail,
        metrics=dict(metrics),
    )


# ---------------------------------------------------------------------------
# soundness against the pebble game
# ---------------------------------------------------------------------------


def _slack(bound, s: int) -> float:
    """Additive slack of a continuous bound over its rigorous discrete form.

    Every derivation here states Theorem 1 with the floor dropped:
    ``Q >= T*|V|/U(S+T)`` where the rigorous statement is
    ``Q > T*(|V|/U - 1)`` — the continuous value overshoots a valid bound
    by at most the segment length T.  The classical bound picks
    ``T = S/(sigma-1)`` (recorded via ``sigma``); the hourglass family
    picks ``K = 2S`` i.e. ``T = S``; the multi-statement refinement uses
    ``K = 3S`` i.e. ``T = 2S``.  ``2S`` covers every bound without a
    recorded sigma.
    """
    if bound.sigma is not None and bound.sigma > 1:
        return s / (float(bound.sigma) - 1.0)
    return 2.0 * s


def rigorous_value(report, params: Mapping[str, int], s: int) -> float | None:
    """Tightest floor-corrected bound value at concrete parameters."""
    best = None
    for b in report.all_bounds():
        try:
            v = b.evaluate({**params, "S": s}) - _slack(b, s)
        except (ZeroDivisionError, KeyError):
            continue
        best = v if best is None else max(best, v)
    return best


def bound_le_pebble(trial: Trial) -> OracleOutcome:
    """Every derived bound, floor-corrected, stays below the measured cost.

    Each bound in the report is claimed valid independently, so each is
    checked — not just the binding one.  The comparison uses the rigorous
    discrete form (continuous value minus the dropped floor term, see
    :func:`_slack`); the gap metric uses the raw continuous value, which is
    what the figures report.
    """
    rep = trial.report
    if rep is None:
        return _outcome(trial, "bound-le-pebble", "skip", "no derivable bound")
    checked, worst_gap = 0, None
    for s in trial.s_values:
        measured = trial.pebble_loads(s, "belady")
        if measured is None:
            continue
        for b in rep.all_bounds():
            try:
                raw = b.evaluate({**trial.params, "S": s})
            except (ZeroDivisionError, KeyError):
                continue
            lb = raw - _slack(b, s)
            if lb > measured + _EPS:
                return _outcome(
                    trial,
                    "bound-le-pebble",
                    "fail",
                    f"S={s}: {b.method} bound {raw:.3f} (rigorous"
                    f" {lb:.3f} after floor correction) exceeds measured"
                    f" Belady pebble loads {measured}",
                    s=s,
                    method=b.method,
                    bound=lb,
                    measured=measured,
                )
            checked += 1
        best = trial.best_bound(s)
        if best is not None and best > 0:
            gap = measured / best
            worst_gap = gap if worst_gap is None else min(worst_gap, gap)
    if not checked:
        return _outcome(trial, "bound-le-pebble", "skip", "no feasible S")
    detail = f"{checked} (bound, S) pairs"
    if worst_gap is not None:
        detail += f", tightest raw gap {worst_gap:.2f}x"
    return _outcome(
        trial, "bound-le-pebble", "pass", detail, tightest_gap=worst_gap
    )


def bound_le_exact(trial: Trial, node_limit: int = 13) -> OracleOutcome:
    if trial.report is None:
        return _outcome(trial, "bound-le-exact", "skip", "no derivable bound")
    g = trial.cdag
    n_compute = sum(1 for _ in g.compute_nodes())
    n_inputs = sum(1 for _ in g.input_nodes())
    if n_compute > node_limit or n_compute + n_inputs > node_limit + 6:
        return _outcome(
            trial,
            "bound-le-exact",
            "skip",
            f"CDAG too large for exact search ({n_compute} compute nodes)",
        )
    checked = 0
    for s in trial.s_values:
        lb = rigorous_value(trial.report, trial.params, s)
        if lb is None:
            continue
        try:
            q_exact = exact_min_loads(g, s, node_limit=node_limit)
        except ValueError:
            continue
        if lb > q_exact + _EPS:
            return _outcome(
                trial,
                "bound-le-exact",
                "fail",
                f"S={s}: rigorous derived bound {lb:.3f} exceeds the exact"
                f" red-white optimum {q_exact}",
                s=s,
                bound=lb,
                exact=q_exact,
            )
        checked += 1
    if not checked:
        return _outcome(trial, "bound-le-exact", "skip", "no feasible S")
    return _outcome(trial, "bound-le-exact", "pass", f"{checked} cache size(s)")


# ---------------------------------------------------------------------------
# metamorphic relations on the bounds themselves
# ---------------------------------------------------------------------------


def bound_monotone_cache(trial: Trial) -> OracleOutcome:
    """A bigger cache can only lower the I/O floor: Q(S) non-increasing."""
    if trial.report is None:
        return _outcome(trial, "bound-monotone-cache", "skip", "no bound")
    grid = sorted({*trial.s_values, 2 * max(trial.s_values), 4 * max(trial.s_values)})
    prev_s, prev_v = None, None
    for s in grid:
        v = trial.best_bound(s)
        if v is None:
            continue
        if prev_v is not None and v > prev_v + _EPS:
            return _outcome(
                trial,
                "bound-monotone-cache",
                "fail",
                f"best bound increased with cache size: Q(S={prev_s})="
                f"{prev_v:.3f} < Q(S={s})={v:.3f}",
                s_small=prev_s,
                s_large=s,
            )
        prev_s, prev_v = s, v
    return _outcome(trial, "bound-monotone-cache", "pass", f"{len(grid)} S values")


def bound_monotone_size(trial: Trial) -> OracleOutcome:
    """Doubling every problem parameter cannot shrink the bound."""
    if trial.report is None:
        return _outcome(trial, "bound-monotone-size", "skip", "no bound")
    big = {k: 2 * v for k, v in trial.params.items()}
    for s in trial.s_values:
        v_small = trial.best_bound(s)
        rep = trial.report
        try:
            _, v_big = rep.best({**big, "S": s})
        except ValueError:
            continue
        if v_small is None:
            continue
        if v_big + _EPS < v_small:
            return _outcome(
                trial,
                "bound-monotone-size",
                "fail",
                f"S={s}: bound fell from {v_small:.3f} to {v_big:.3f} when"
                f" params doubled {trial.params} -> {big}",
                s=s,
            )
    return _outcome(trial, "bound-monotone-size", "pass")


def hourglass_ge_classical(trial: Trial) -> OracleOutcome:
    """Figure 5's claim: the hourglass bound dominates the classical one in
    the paper's comparison regime (tall matrices, moderate cache)."""
    rep = trial.report
    if rep is None or rep.classical is None:
        return _outcome(trial, "hourglass-ge-classical", "skip", "no classical bound")
    hour_cands = ([rep.hourglass] if rep.hourglass else []) + rep.hourglass_split
    if not hour_cands:
        return _outcome(
            trial, "hourglass-ge-classical", "skip", "no hourglass bound (expected"
            " only for non-hourglass kernels)"
        )
    # the paper's reference regime, randomised: N=t, M=4t, S=sqrt(t)·jitter
    # (GEHD2's improvement needs 100 << S << N, cf. report.figures)
    t = trial.rng.randint(2000, 20000)
    if "M" in trial.params:
        env = {"M": 4 * t, "N": t, "S": int(math.sqrt(t) * 16)}
    else:
        env = {"N": 4 * t, "S": 1024}
    old = rep.classical.evaluate(env)
    new = float("-inf")
    for b in hour_cands:
        try:
            new = max(new, b.evaluate(env))
        except (ZeroDivisionError, KeyError):
            continue
    if new < old - _EPS:
        return _outcome(
            trial,
            "hourglass-ge-classical",
            "fail",
            f"at {env} the hourglass bound {new:.4g} is below the"
            f" classical bound {old:.4g}",
            env=env,
        )
    ratio = new / old if old > 0 else float("inf")
    return _outcome(
        trial,
        "hourglass-ge-classical",
        "pass",
        f"improvement {ratio:.2f}x at {env}",
        improvement=ratio,
    )


# ---------------------------------------------------------------------------
# simulator cross-checks
# ---------------------------------------------------------------------------


def policy_chain(trial: Trial) -> OracleOutcome:
    """cold <= Belady <= LRU on the kernel's address trace, at every S."""
    events = trial.trace.events
    if not events:
        return _outcome(trial, "policy-chain", "skip", "empty trace")
    cold = cold_loads(events)
    for s in trial.s_values:
        bel = simulate_belady(events, s).loads
        lru = simulate_lru(events, s).loads
        if not (cold <= bel <= lru):
            return _outcome(
                trial,
                "policy-chain",
                "fail",
                f"S={s}: expected cold({cold}) <= belady({bel}) <= lru({lru})",
                s=s,
                cold=cold,
                belady=bel,
                lru=lru,
            )
    return _outcome(trial, "policy-chain", "pass", f"cold={cold}")


_STAT_FIELDS = (
    "loads",
    "read_hits",
    "write_hits",
    "write_allocs",
    "evict_stores",
    "flush_stores",
    "accesses",
)


def engine_eq_reference(trial: Trial) -> OracleOutcome:
    """The fast trace engine must equal the reference spec field-for-field."""
    events = trial.trace.events
    if not events:
        return _outcome(trial, "engine-eq-reference", "skip", "empty trace")
    if cold_loads(events) != ref.cold_loads(events):
        return _outcome(
            trial, "engine-eq-reference", "fail", "cold_loads disagrees"
        )
    for s in trial.s_values:
        for fast_fn, ref_fn, pol in (
            (simulate_lru, ref.simulate_lru, "lru"),
            (simulate_belady, ref.simulate_belady, "belady"),
        ):
            fast, slow = fast_fn(events, s), ref_fn(events, s)
            for f in _STAT_FIELDS:
                if getattr(fast, f) != getattr(slow, f):
                    return _outcome(
                        trial,
                        "engine-eq-reference",
                        "fail",
                        f"S={s} {pol}: {f} fast={getattr(fast, f)}"
                        f" reference={getattr(slow, f)}",
                        s=s,
                        policy=pol,
                        field=f,
                    )
    return _outcome(
        trial,
        "engine-eq-reference",
        "pass",
        f"{len(trial.s_values)} S x 2 policies x {len(_STAT_FIELDS)} fields",
    )


def stackdist_eq_lru(trial: Trial) -> OracleOutcome:
    """Mattson's one-pass miss curve must equal direct LRU at every S."""
    events = trial.trace.events
    if not events:
        return _outcome(trial, "stackdist-eq-lru", "skip", "empty trace")
    max_s = max(trial.s_values)
    curve = lru_miss_curve(events, max_s=max_s)
    for s in range(1, max_s + 1):
        st = simulate_lru(events, s)
        direct = st.loads + st.write_allocs
        if curve[s] != direct:
            return _outcome(
                trial,
                "stackdist-eq-lru",
                "fail",
                f"S={s}: miss curve {curve[s]} != LRU misses {direct}",
                s=s,
            )
    return _outcome(trial, "stackdist-eq-lru", "pass", f"all S in 1..{max_s}")


# ---------------------------------------------------------------------------
# symbolic counting
# ---------------------------------------------------------------------------


def counts_eq_enum(trial: Trial) -> OracleOutcome:
    """Closed-form instance counts == brute-force polyhedron enumeration."""
    total, checked = 0, 0
    for st in trial.kernel.program.statements:
        try:
            formula = st.instance_count()
        except ValueError:
            continue  # guarded statements have no closed form
        got = formula.eval(trial.params)
        want = st.domain().count(trial.params)
        if got != want:
            return _outcome(
                trial,
                "counts-eq-enum",
                "fail",
                f"{st.name}: symbolic count {got} != enumerated {want}"
                f" at {trial.params}",
                statement=st.name,
            )
        total += want
        checked += 1
    if not checked:
        return _outcome(trial, "counts-eq-enum", "skip", "all statements guarded")
    return _outcome(
        trial, "counts-eq-enum", "pass", f"{checked} statements, {total} instances"
    )


# ---------------------------------------------------------------------------
# pebble-policy ordering (fuzz CDAGs exercise shapes kernels never produce)
# ---------------------------------------------------------------------------


def pebble_chain(trial: Trial) -> OracleOutcome:
    """exact optimum <= Belady <= LRU on the traced schedule."""
    checked = 0
    g = trial.cdag
    n_compute = sum(1 for _ in g.compute_nodes())
    small = n_compute <= 12
    for s in trial.s_values:
        bel = trial.pebble_loads(s, "belady")
        lru = trial.pebble_loads(s, "lru")
        if bel is None or lru is None:
            continue
        if bel > lru:
            return _outcome(
                trial,
                "pebble-chain",
                "fail",
                f"S={s}: Belady loads {bel} > LRU loads {lru}",
                s=s,
            )
        if small:
            try:
                exact = exact_min_loads(g, s, node_limit=12)
            except ValueError:
                exact = None
            if exact is not None and exact > bel:
                return _outcome(
                    trial,
                    "pebble-chain",
                    "fail",
                    f"S={s}: exact optimum {exact} > Belady loads {bel}",
                    s=s,
                )
        checked += 1
    if not checked:
        return _outcome(trial, "pebble-chain", "skip", "no feasible S")
    return _outcome(
        trial,
        "pebble-chain",
        "pass",
        f"{checked} cache size(s)" + (" incl. exact optimum" if small else ""),
    )


# ---------------------------------------------------------------------------
# static-analyzer totality (fuzz programs stress repro.analysis)
# ---------------------------------------------------------------------------


def lint_clean_analyzable(trial: Trial) -> OracleOutcome:
    """A program the analyzer passes without errors must be analyzable end
    to end: structural validation, dataflow replay and CDAG construction
    may not raise.  (Derivation is *not* required — many fuzz programs
    legitimately have no hourglass/classical bound.)"""
    from ..analysis import check_program
    from ..ir import dataflow_trace, validate_program

    try:
        rep = check_program(
            trial.kernel.program, trial.params, dominant=trial.kernel.dominant
        )
    except Exception as exc:  # noqa: BLE001 - totality is the invariant
        return _outcome(
            trial,
            "lint-clean-analyzable",
            "fail",
            f"analyzer raised {type(exc).__name__}: {exc}",
        )
    if not rep.ok():
        codes = sorted({d.code for d in rep.errors()})
        return _outcome(
            trial,
            "lint-clean-analyzable",
            "skip",
            f"lint errors {codes}: no cleanliness to guarantee",
        )
    problems = validate_program(trial.kernel.program)
    if problems:
        return _outcome(
            trial,
            "lint-clean-analyzable",
            "fail",
            f"lint clean but validate_program found: {problems[0]}",
        )
    try:
        t = dataflow_trace(trial.kernel.program, trial.params)
        g = cdag_from_trace(t)
    except Exception as exc:  # noqa: BLE001
        return _outcome(
            trial,
            "lint-clean-analyzable",
            "fail",
            f"lint clean but dataflow/CDAG raised"
            f" {type(exc).__name__}: {exc}",
        )
    n = sum(1 for _ in g.compute_nodes())
    return _outcome(
        trial,
        "lint-clean-analyzable",
        "pass",
        f"lint clean and analyzable ({n} compute nodes)",
        nodes=n,
    )


def _mutate_program(program, rng: random.Random):
    """Break a fuzz program in one seeded way the analyzer must flag.

    Returns ``(mutated_program, kind, expected_code)``; mutations mirror
    the diagnostic catalogue: ``oob`` plants a far-negative subscript
    (A004), ``uninit`` turns a write into an accumulating scalar read
    before any write (A003), ``dead`` retargets a write to a fresh array
    nothing reads (A006).
    """
    import dataclasses

    from ..ir import Access, Array
    from ..ir import Program as IRProgram

    stmts = list(program.statements)
    t = rng.randrange(len(stmts))
    s = stmts[t]
    arrays = list(program.arrays)
    kind = rng.choice(("oob", "uninit", "dead"))
    if kind == "oob" and not any(a.indices for a in s.reads):
        kind = "uninit"
    if kind == "oob":
        victim = next(a for a in s.reads if a.indices)
        shifted = Access(
            victim.array, (victim.indices[0] - 100,) + victim.indices[1:]
        )
        stmts[t] = dataclasses.replace(
            s,
            reads=tuple(shifted if a is victim else a for a in s.reads),
        )
        expected = "A004"
    elif kind == "uninit":
        arrays.append(Array("acc_mut", 0))
        stmts[t] = dataclasses.replace(
            s,
            reads=s.reads + (Access("acc_mut", ()),),
            writes=(Access("acc_mut", ()),),
        )
        expected = "A003"
    else:  # dead: write goes to a fresh array nothing reads or outputs
        w = s.writes[0]
        arrays.append(Array("Zdead", len(w.indices)))
        stmts[t] = dataclasses.replace(s, writes=(Access("Zdead", w.indices),))
        expected = "A006"
    mut = IRProgram(
        name=f"{program.name}_{kind}",
        params=program.params,
        arrays=tuple(arrays),
        statements=tuple(stmts),
        outputs=program.outputs,
    )
    return mut, kind, expected


def lint_mutation_total(trial: Trial) -> OracleOutcome:
    """Planted defects must be flagged, and the analyzer must stay total
    (return a report, never raise) on broken input."""
    from ..analysis import check_program

    mut, kind, expected = _mutate_program(trial.kernel.program, trial.rng)
    try:
        rep = check_program(mut, trial.params)
    except Exception as exc:  # noqa: BLE001 - totality is the invariant
        return _outcome(
            trial,
            "lint-mutation-total",
            "fail",
            f"{kind} mutation crashed the analyzer:"
            f" {type(exc).__name__}: {exc}",
            kind=kind,
        )
    codes = {d.code for d in rep.diagnostics}
    if expected not in codes:
        return _outcome(
            trial,
            "lint-mutation-total",
            "fail",
            f"{kind} mutation expected {expected}; analyzer reported"
            f" {sorted(codes) or 'nothing'}",
            kind=kind,
        )
    return _outcome(
        trial,
        "lint-mutation-total",
        "pass",
        f"{kind} mutation flagged as {expected}",
        kind=kind,
    )


def schedule_legality(trial: Trial) -> OracleOutcome:
    """The traced order must satisfy every dependence; reversing it must
    violate at least one.  Positive and negative direction of the A009
    legality pass on the same dependence polyhedra: a checker that
    accepts everything would pass the first leg but fail the second."""
    from ..analysis.deps import build_dependences, check_order

    program = trial.kernel.program
    deps = [d for d in build_dependences(program) if d.branches]
    if not deps:
        return _outcome(
            trial, "schedule-legality", "skip", "no dependence polyhedra"
        )
    # enumerating all dependence pairs is O(points^2)-ish; probe-sized
    # parameters make the full scan cheap without weakening the oracle.
    # Scaling (not clamping) preserves parameter orderings like M > N;
    # a runner that still rejects the scaled point keeps the sampled one.
    params = dict(trial.params)
    order = None
    big = max(params.values(), default=0)
    if big > 6:
        scaled = {k: max(1, round(v * 6 / big)) for k, v in params.items()}
        try:
            t = Tracer()
            program.runner(dict(scaled), t)
            params, order = scaled, t.schedule
        except Exception:  # noqa: BLE001 - precondition on params
            order = None
    if order is None:
        params, order = dict(trial.params), trial.trace.schedule
    if not order:
        return _outcome(
            trial, "schedule-legality", "skip", "trace has no statements"
        )
    fwd = check_order(program, order, params, deps=deps)
    if fwd:
        v = fwd[0]
        return _outcome(
            trial,
            "schedule-legality",
            "fail",
            f"traced order violates a {v.dep.kind} dependence on"
            f" {v.dep.array}: {v.dep.src}{list(v.src_point)} must run"
            f" before {v.dep.tgt}{list(v.tgt_point)}",
            violations=len(fwd),
        )
    rev = check_order(
        program, list(reversed(order)), params, deps=deps, limit=1
    )
    if not rev:
        return _outcome(
            trial,
            "schedule-legality",
            "skip",
            "no dependence instance at these parameters"
            " (reversed order is also clean)",
        )
    v = rev[0]
    return _outcome(
        trial,
        "schedule-legality",
        "pass",
        f"traced order legal; reversal trips the {v.dep.kind} dependence"
        f" {v.dep.src} -> {v.dep.tgt} on {v.dep.array}",
        violations=len(rev),
    )


# ---------------------------------------------------------------------------
# tiled upper bounds
# ---------------------------------------------------------------------------


def run_tiled_oracle(
    alg, params: Mapping[str, int], s: int, report
) -> OracleOutcome:
    """measured tiled I/O >= derived bound of the base kernel, gap logged."""
    from ..bounds import measure_tiled_io

    out = OracleOutcome(
        oracle="tiled-ge-bound",
        subject=alg.name,
        status="pass",
        context={"params": dict(params), "s_values": [s]},
    )
    meas = measure_tiled_io(alg, params, s)
    rigorous = rigorous_value(report, params, s)
    try:
        _, raw = report.best({**params, "S": s})
    except ValueError:
        out.status = "skip"
        out.detail = "no bound evaluable"
        return out
    if rigorous is not None and rigorous > meas.stats.loads + _EPS:
        out.status = "fail"
        out.detail = (
            f"S={s} B={meas.block}: rigorous derived bound {rigorous:.3f}"
            f" exceeds measured tiled loads {meas.stats.loads}"
        )
        out.metrics = {"s": s, "bound": rigorous, "measured": meas.stats.loads}
        return out
    gap = meas.stats.loads / max(raw, _EPS)
    out.detail = f"S={s} B={meas.block}: raw gap {gap:.2f}x"
    out.metrics = {"gap": gap, "s": s, "block": meas.block}
    return out


# ---------------------------------------------------------------------------
# certificate round-trip
# ---------------------------------------------------------------------------


def cert_roundtrip(trial: Trial) -> OracleOutcome:
    """Emit a certificate for the fresh derivation; the checker must accept.

    The certificate is rendered to canonical JSON and parsed back before
    checking, so the oracle also covers the serialization path the CLI and
    the serve protocol use.  Warnings are tolerated (e.g. the enumeration
    cap on large fuzz domains); any error finding fails the trial.
    """
    import json

    from ..cert import build_certificate, certificate_json, check_certificate

    rep = trial.report
    if rep is None:
        return _outcome(trial, "cert-roundtrip", "skip", "no derivable bound")
    try:
        cert = build_certificate(
            rep, trial.kernel.program, trial.kernel.default_params
        )
    except ValueError as e:
        return _outcome(
            trial, "cert-roundtrip", "skip", f"nothing to certify: {e}"
        )
    doc = json.loads(certificate_json(cert))
    chk = check_certificate(doc)
    warnings = sum(1 for f in chk.findings if f.severity == "warning")
    if not chk.ok():
        errors = "; ".join(
            f"[{f.code}] {f.message}"
            for f in chk.findings
            if f.severity == "error"
        )
        return _outcome(
            trial,
            "cert-roundtrip",
            "fail",
            f"checker rejected a fresh certificate: {errors}",
            bounds=len(doc["bounds"]),
            warnings=warnings,
        )
    return _outcome(
        trial,
        "cert-roundtrip",
        "pass",
        bounds=len(doc["bounds"]),
        warnings=warnings,
        checks_run=len(chk.checks_run),
    )


# ---------------------------------------------------------------------------
# catalogue
# ---------------------------------------------------------------------------

KERNEL_ORACLES: tuple[Oracle, ...] = (
    Oracle(
        "bound-le-pebble",
        "kernel",
        "derived lower bound <= Belady pebble cost of the program order",
        bound_le_pebble,
    ),
    Oracle(
        "hourglass-ge-classical",
        "kernel",
        "hourglass bound dominates the classical bound (paper regime)",
        hourglass_ge_classical,
    ),
    Oracle(
        "bound-monotone-cache",
        "kernel",
        "best bound non-increasing in cache size S",
        bound_monotone_cache,
    ),
    Oracle(
        "bound-monotone-size",
        "kernel",
        "best bound non-decreasing when the problem doubles",
        bound_monotone_size,
    ),
    Oracle(
        "policy-chain",
        "kernel",
        "cold <= Belady <= LRU loads on the address trace",
        policy_chain,
    ),
    Oracle(
        "engine-eq-reference",
        "kernel",
        "fast trace engine == reference simulators, all fields",
        engine_eq_reference,
    ),
    Oracle(
        "stackdist-eq-lru",
        "kernel",
        "stack-distance miss curve == direct LRU at every capacity",
        stackdist_eq_lru,
    ),
    Oracle(
        "counts-eq-enum",
        "kernel",
        "symbolic instance counts == polyhedron enumeration",
        counts_eq_enum,
    ),
    Oracle(
        "cert-roundtrip",
        "kernel",
        "fresh certificate accepted by the independent checker",
        cert_roundtrip,
    ),
    Oracle(
        "schedule-legality",
        "kernel",
        "traced order satisfies all dependences; its reversal must not",
        schedule_legality,
    ),
)

TILED_ORACLES: tuple[Oracle, ...] = (
    Oracle(
        "tiled-ge-bound",
        "tiled",
        "measured tiled I/O >= derived bound (gap ratio logged)",
        lambda trial: (_ for _ in ()).throw(  # run via run_tiled_oracle
            NotImplementedError("tiled oracle runs through run_tiled_oracle")
        ),
    ),
)

FUZZ_ORACLES: tuple[Oracle, ...] = (
    Oracle(
        "counts-eq-enum",
        "fuzz",
        "symbolic instance counts == polyhedron enumeration",
        counts_eq_enum,
    ),
    Oracle(
        "pebble-chain",
        "fuzz",
        "exact optimum <= Belady <= LRU pebble loads",
        pebble_chain,
    ),
    Oracle(
        "policy-chain",
        "fuzz",
        "cold <= Belady <= LRU loads on the address trace",
        policy_chain,
    ),
    Oracle(
        "engine-eq-reference",
        "fuzz",
        "fast trace engine == reference simulators, all fields",
        engine_eq_reference,
    ),
    Oracle(
        "bound-le-pebble",
        "fuzz",
        "derived bound (when derivable) <= Belady pebble cost",
        bound_le_pebble,
    ),
    Oracle(
        "bound-le-exact",
        "fuzz",
        "derived bound <= exact red-white optimum (tiny CDAGs)",
        bound_le_exact,
    ),
    Oracle(
        "lint-clean-analyzable",
        "fuzz",
        "lint-clean programs validate, replay and build CDAGs",
        lint_clean_analyzable,
    ),
    Oracle(
        "lint-mutation-total",
        "fuzz",
        "planted defects are flagged; the analyzer never crashes",
        lint_mutation_total,
    ),
    Oracle(
        "cert-roundtrip",
        "fuzz",
        "fresh certificate accepted by the independent checker",
        cert_roundtrip,
    ),
)
