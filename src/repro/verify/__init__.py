"""Differential + metamorphic verification of the bound-derivation engine.

The paper's contribution is a *claim about correctness of bounds*: the
hourglass derivation must never exceed the pebble-game optimum, must
dominate the classical K-partition bound on the hourglass kernels, and the
tiled orderings must meet it asymptotically.  This package checks those
invariants systematically instead of at hand-picked points:

* :mod:`repro.verify.sampling` — seeded randomized parameter points for
  every registered kernel (shape constraints preserved);
* :mod:`repro.verify.fuzzer` — randomized straight-line affine programs
  fed through the whole pipeline (counting, CDAG, pebble game, simulators,
  derivation);
* :mod:`repro.verify.oracles` — the metamorphic oracle catalogue;
* :mod:`repro.verify.shrink` — greedy shrinking of a failing case to a
  minimal counterexample;
* :mod:`repro.verify.harness` — the ``run_verify`` driver behind
  ``iolb verify`` and ``selfcheck``'s seventh check.
"""

from .fuzzer import FuzzProgram, random_fuzz_program
from .harness import OracleOutcome, VerifyFailure, VerifyReport, run_verify
from .oracles import FUZZ_ORACLES, KERNEL_ORACLES, TILED_ORACLES, Oracle
from .sampling import sample_cache_sizes, sample_params
from .shrink import shrink_params

__all__ = [
    "FuzzProgram",
    "random_fuzz_program",
    "OracleOutcome",
    "VerifyFailure",
    "VerifyReport",
    "run_verify",
    "Oracle",
    "KERNEL_ORACLES",
    "TILED_ORACLES",
    "FUZZ_ORACLES",
    "sample_params",
    "sample_cache_sizes",
    "shrink_params",
]
