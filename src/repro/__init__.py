"""repro — reproduction of "Tightening I/O Lower Bounds through the Hourglass
Dependency Pattern" (Eyraud-Dubois, Iooss, Langou, Rastello; SPAA 2024).

A pure-Python IOLB-style toolchain:

* :mod:`repro.symbolic` — exact parametric expressions and asymptotics;
* :mod:`repro.polyhedral` — integer sets, affine maps, counting;
* :mod:`repro.ir` — polyhedral program IR + instrumented tracing/dataflow;
* :mod:`repro.cdag` — computational DAGs and spec-vs-trace validation;
* :mod:`repro.pebble` — the red-white pebble game;
* :mod:`repro.cache` — two-level memory simulators (LRU / Belady);
* :mod:`repro.kernels` — MGS, Householder A2V/V2Q, GEBD2, GEHD2, matmul,
  plus the tiled orderings of Appendix A;
* :mod:`repro.bounds` — the lower-bound engine (classical K-partition and
  the hourglass derivation) and the paper's published formulas;
* :mod:`repro.obs` — structured tracing, counters and profiling across the
  pipeline (``iolb ... --profile``, ``iolb stats``);
* :mod:`repro.report` / :mod:`repro.cli` — tables and the ``iolb`` CLI.

Quickstart::

    from repro import derive, get_kernel
    report = derive(get_kernel("mgs"))
    print(report.summary())
    print(report.best({"M": 1000, "N": 500, "S": 4096}))
"""

from .bounds import (
    BoundResult,
    DerivationReport,
    derive,
    detect_hourglass,
    derive_projections,
    measure_tiled_io,
    paper_bound,
)
from .cache import simulate
from .cdag import build_cdag, cdag_from_trace
from .kernels import KERNELS, PAPER_KERNELS, TILED_ALGORITHMS, get_kernel, get_tiled
from .pebble import play_schedule
from .selfcheck import SelfCheckReport, selfcheck

__version__ = "1.0.0"

__all__ = [
    "BoundResult",
    "DerivationReport",
    "derive",
    "detect_hourglass",
    "derive_projections",
    "measure_tiled_io",
    "paper_bound",
    "build_cdag",
    "cdag_from_trace",
    "simulate",
    "KERNELS",
    "PAPER_KERNELS",
    "TILED_ALGORITHMS",
    "get_kernel",
    "get_tiled",
    "play_schedule",
    "SelfCheckReport",
    "selfcheck",
    "__version__",
]
