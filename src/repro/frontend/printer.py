"""AST → source printing (the inverse of the parser).

``to_source`` regenerates figure-dialect text from an AST; the round-trip
property ``lower(parse(to_source(ast))) == lower(ast)`` is the front-end's
strongest self-test and is exercised both on the bundled figure sources and
on randomly generated programs.
"""

from __future__ import annotations

from .astnodes import (
    Assign,
    BinOp,
    Block,
    Call,
    Compare,
    For,
    If,
    Num,
    Ref,
    Ternary,
    UnOp,
    Var,
)

__all__ = ["to_source"]

_PREC = {"+": 1, "-": 1, "*": 2, "/": 2}


def _expr(e, parent_prec: int = 0) -> str:
    if isinstance(e, Num):
        v = e.value
        if isinstance(v, float) and v.is_integer() and abs(v) < 1e15:
            return f"{v:.1f}"
        return str(v)
    if isinstance(e, Var):
        return e.name
    if isinstance(e, Ref):
        return e.array + "".join(f"[{_expr(ix)}]" for ix in e.indices)
    if isinstance(e, BinOp):
        prec = _PREC[e.op]
        # left-associative: right operand of same precedence needs parens
        lhs = _expr(e.lhs, prec)
        rhs = _expr(e.rhs, prec + 1)
        s = f"{lhs} {e.op} {rhs}"
        return f"({s})" if prec < parent_prec else s
    if isinstance(e, UnOp):
        inner = _expr(e.operand, 3)
        s = f"-{inner}"
        return f"({s})" if parent_prec > 0 else s
    if isinstance(e, Call):
        return f"{e.func}({', '.join(_expr(a) for a in e.args)})"
    if isinstance(e, Compare):
        return f"{_expr(e.lhs)} {e.op} {_expr(e.rhs)}"
    if isinstance(e, Ternary):
        s = f"({_expr(e.cond)}) ? ({_expr(e.then)}) : ({_expr(e.other)})"
        # as an operand the whole ternary needs its own parentheses, or the
        # parser reads the condition's '(' as a plain grouped expression
        return f"({s})" if parent_prec > 0 else s
    raise TypeError(f"cannot print {e!r}")


def _stmt(s, indent: int) -> list[str]:
    pad = "  " * indent
    if isinstance(s, Assign):
        lbl = f"{s.label}: " if s.label else ""
        op = f"{s.op}=" if s.op else "="
        return [f"{pad}{lbl}{_expr(s.target)} {op} {_expr(s.value)};"]
    if isinstance(s, For):
        if s.step == 1:
            head = (
                f"{pad}for ({s.var} = {_expr(s.init)}; {s.var} {s.cond_op}"
                f" {_expr(s.bound)}; {s.var} += 1)"
            )
        else:
            head = (
                f"{pad}for ({s.var} = {_expr(s.init)}; {s.var} {s.cond_op}"
                f" {_expr(s.bound)}; {s.var} -= 1)"
            )
        return [head + " {"] + _block(s.body, indent + 1) + [f"{pad}}}"]
    if isinstance(s, If):
        head = f"{pad}if ({_expr(s.cond)})"
        return [head + " {"] + _block(s.body, indent + 1) + [f"{pad}}}"]
    raise TypeError(f"cannot print {s!r}")


def _block(b: Block, indent: int) -> list[str]:
    out: list[str] = []
    for item in b.items:
        out.extend(_stmt(item, indent))
    return out


def to_source(block: Block) -> str:
    """Render an AST back to parseable figure-dialect source."""
    return "\n".join(_block(block, 0)) + "\n"
