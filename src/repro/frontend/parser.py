"""Recursive-descent parser for the figure-style C subset.

Grammar (informally)::

    program   := stmt*
    stmt      := for | if | assign
    for       := 'for' '(' name '=' expr ';' name cmp expr ';'
                  name ('+='|'-=') num ')' body
    if        := 'if' '(' compare ')' body
    body      := '{' stmt* '}' | stmt
    assign    := [label ':'] target ('='|'+='|'-='|'*='|'/=') expr ';'
    target    := name ('[' expr ']')*
    expr      := ternary
    ternary   := additive | '(' compare ')' '?' expr ':' expr
    compare   := additive cmp additive
    additive  := term (('+'|'-') term)*
    term      := unary (('*'|'/') unary)*
    unary     := '-' unary | primary
    primary   := num | name call_or_ref? | '(' expr_or_ternary ')'

Every produced AST node carries a :class:`~repro.ir.Span` covering the
tokens it was parsed from; :class:`ParseError` carries the offending span
(``.span``) and reports it as ``line:col`` in the message.
"""

from __future__ import annotations

from ..ir.span import Span
from .astnodes import (
    Assign,
    BinOp,
    Block,
    Call,
    Compare,
    For,
    If,
    Num,
    Ref,
    Ternary,
    UnOp,
    Var,
)
from .lexer import Token, tokenize

__all__ = ["ParseError", "parse"]

_CMPS = {"<", "<=", ">", ">=", "==", "!="}


class ParseError(ValueError):
    """Syntax error with the source :class:`~repro.ir.Span` it points at."""

    def __init__(self, msg: str, span: Span | None = None):
        super().__init__(msg)
        self.span = span


def _tok_span(t: Token) -> Span:
    return Span.at(t.line, t.col, max(1, len(t.text)))


class _Parser:
    def __init__(self, toks: list[Token]):
        self.toks = toks
        self.pos = 0

    # -- token helpers ------------------------------------------------------
    def peek(self, k: int = 0) -> Token:
        return self.toks[min(self.pos + k, len(self.toks) - 1)]

    def next(self) -> Token:
        t = self.toks[self.pos]
        if t.kind != "eof":
            self.pos += 1
        return t

    def expect(self, kind: str, text: str | None = None) -> Token:
        t = self.next()
        if t.kind != kind or (text is not None and t.text != text):
            want = f"{kind} {text!r}" if text else kind
            raise ParseError(
                f"expected {want}, got {t.kind} {t.text!r}"
                f" at line {t.line}:{t.col}",
                _tok_span(t),
            )
        return t

    def accept(self, kind: str, text: str | None = None) -> Token | None:
        t = self.peek()
        if t.kind == kind and (text is None or t.text == text):
            return self.next()
        return None

    def span_from(self, start_pos: int) -> Span:
        """Span covering tokens ``start_pos .. pos-1`` (inclusive)."""
        first = self.toks[start_pos]
        last = self.toks[max(start_pos, min(self.pos, len(self.toks)) - 1)]
        return Span(
            first.line, first.col, last.line, last.col + max(1, len(last.text))
        )

    # -- grammar -------------------------------------------------------------
    def parse_program(self) -> Block:
        start = self.pos
        items = []
        while self.peek().kind != "eof":
            items.append(self.parse_stmt())
        return Block(items, span=self.span_from(start) if items else None)

    def parse_stmt(self):
        t = self.peek()
        if t.kind == "kw" and t.text == "for":
            return self.parse_for()
        if t.kind == "kw" and t.text == "if":
            return self.parse_if()
        return self.parse_assign()

    def parse_body(self) -> Block:
        start = self.pos
        if self.accept("sym", "{"):
            items = []
            while not self.accept("sym", "}"):
                if self.peek().kind == "eof":
                    raise ParseError(
                        "unterminated block", self.span_from(start)
                    )
                items.append(self.parse_stmt())
            return Block(items, span=self.span_from(start))
        return Block([self.parse_stmt()], span=self.span_from(start))

    def parse_for(self) -> For:
        start = self.pos
        self.expect("kw", "for")
        self.expect("sym", "(")
        var = self.expect("name").text
        self.expect("sym", "=")
        init = self.parse_expr()
        self.expect("sym", ";")
        v2_tok = self.expect("name")
        if v2_tok.text != var:
            raise ParseError(
                f"loop condition on {v2_tok.text!r}, expected {var!r}"
                f" at line {v2_tok.line}:{v2_tok.col}",
                _tok_span(v2_tok),
            )
        cmp_tok = self.next()
        if cmp_tok.text not in _CMPS:
            raise ParseError(
                f"bad loop comparison {cmp_tok.text!r}"
                f" at line {cmp_tok.line}:{cmp_tok.col}",
                _tok_span(cmp_tok),
            )
        bound = self.parse_expr()
        self.expect("sym", ";")
        v3_tok = self.expect("name")
        if v3_tok.text != var:
            raise ParseError(
                f"loop step on {v3_tok.text!r}, expected {var!r}"
                f" at line {v3_tok.line}:{v3_tok.col}",
                _tok_span(v3_tok),
            )
        step_tok = self.next()
        if step_tok.text not in ("+=", "-="):
            raise ParseError(
                f"bad loop step {step_tok.text!r}"
                f" at line {step_tok.line}:{step_tok.col}",
                _tok_span(step_tok),
            )
        amount = self.expect("num")
        if amount.text not in ("1", "1.0"):
            raise ParseError(
                "only unit loop steps are supported"
                f" at line {amount.line}:{amount.col}",
                _tok_span(amount),
            )
        step = 1 if step_tok.text == "+=" else -1
        self.expect("sym", ")")
        body = self.parse_body()
        return For(
            var, init, cmp_tok.text, bound, step, body,
            span=self.span_from(start),
        )

    def parse_if(self) -> If:
        start = self.pos
        self.expect("kw", "if")
        self.expect("sym", "(")
        cond = self.parse_compare()
        self.expect("sym", ")")
        body = self.parse_body()
        return If(cond, body, span=self.span_from(start))

    def parse_assign(self) -> Assign:
        start = self.pos
        label = ""
        if (
            self.peek().kind == "name"
            and self.peek(1).kind == "sym"
            and self.peek(1).text == ":"
        ):
            label = self.next().text
            self.next()  # ':'
        tstart = self.pos
        name = self.expect("name").text
        indices = []
        while self.accept("sym", "["):
            indices.append(self.parse_expr())
            self.expect("sym", "]")
        tspan = self.span_from(tstart)
        target = (
            Ref(name, tuple(indices), span=tspan)
            if indices
            else Var(name, span=tspan)
        )
        op_tok = self.next()
        ops = {"=": "", "+=": "+", "-=": "-", "*=": "*", "/=": "/"}
        if op_tok.text not in ops:
            raise ParseError(
                f"expected assignment operator, got {op_tok.text!r}"
                f" at line {op_tok.line}:{op_tok.col}",
                _tok_span(op_tok),
            )
        value = self.parse_expr()
        self.expect("sym", ";")
        return Assign(
            target, ops[op_tok.text], value, label, span=self.span_from(start)
        )

    # expressions ------------------------------------------------------
    def parse_expr(self):
        # ternary needs lookahead: '(' compare ')' '?' ...
        save = self.pos
        if self.accept("sym", "("):
            try:
                cond = self.parse_compare()
                if self.accept("sym", ")") and self.accept("sym", "?"):
                    then = self.parse_expr()
                    self.expect("sym", ":")
                    other = self.parse_expr()
                    return Ternary(cond, then, other, span=self.span_from(save))
            except ParseError:
                pass
            self.pos = save
        return self.parse_additive()

    def parse_compare(self) -> Compare:
        start = self.pos
        lhs = self.parse_additive()
        t = self.next()
        if t.text not in _CMPS:
            raise ParseError(
                f"expected comparison, got {t.text!r}"
                f" at line {t.line}:{t.col}",
                _tok_span(t),
            )
        rhs = self.parse_additive()
        return Compare(t.text, lhs, rhs, span=self.span_from(start))

    def parse_additive(self):
        start = self.pos
        node = self.parse_term()
        while True:
            if self.accept("sym", "+"):
                node = BinOp(
                    "+", node, self.parse_term(), span=self.span_from(start)
                )
            elif self.accept("sym", "-"):
                node = BinOp(
                    "-", node, self.parse_term(), span=self.span_from(start)
                )
            else:
                return node

    def parse_term(self):
        start = self.pos
        node = self.parse_unary()
        while True:
            if self.accept("sym", "*"):
                node = BinOp(
                    "*", node, self.parse_unary(), span=self.span_from(start)
                )
            elif self.accept("sym", "/"):
                node = BinOp(
                    "/", node, self.parse_unary(), span=self.span_from(start)
                )
            else:
                return node

    def parse_unary(self):
        start = self.pos
        if self.accept("sym", "-"):
            return UnOp("-", self.parse_unary(), span=self.span_from(start))
        return self.parse_primary()

    def parse_primary(self):
        start = self.pos
        t = self.peek()
        if t.kind == "num":
            self.next()
            text = t.text
            return Num(
                float(text) if "." in text else int(text), span=_tok_span(t)
            )
        if t.kind == "name":
            self.next()
            if self.accept("sym", "("):
                args = []
                if not self.accept("sym", ")"):
                    args.append(self.parse_expr())
                    while self.accept("sym", ","):
                        args.append(self.parse_expr())
                    self.expect("sym", ")")
                return Call(t.text, tuple(args), span=self.span_from(start))
            indices = []
            while self.peek().kind == "sym" and self.peek().text == "[":
                self.next()
                indices.append(self.parse_expr())
                self.expect("sym", "]")
            if indices:
                return Ref(t.text, tuple(indices), span=self.span_from(start))
            return Var(t.text, span=_tok_span(t))
        if self.accept("sym", "("):
            e = self.parse_expr()
            self.expect("sym", ")")
            return e
        raise ParseError(
            f"unexpected token {t.text!r} at line {t.line}:{t.col}",
            _tok_span(t),
        )


def parse(src: str) -> Block:
    """Parse a figure-style source string into an AST block."""
    return _Parser(tokenize(src)).parse_program()
