"""Recursive-descent parser for the figure-style C subset.

Grammar (informally)::

    program   := stmt*
    stmt      := for | if | assign
    for       := 'for' '(' name '=' expr ';' name cmp expr ';'
                  name ('+='|'-=') num ')' body
    if        := 'if' '(' compare ')' body
    body      := '{' stmt* '}' | stmt
    assign    := [label ':'] target ('='|'+='|'-='|'*='|'/=') expr ';'
    target    := name ('[' expr ']')*
    expr      := ternary
    ternary   := additive | '(' compare ')' '?' expr ':' expr
    compare   := additive cmp additive
    additive  := term (('+'|'-') term)*
    term      := unary (('*'|'/') unary)*
    unary     := '-' unary | primary
    primary   := num | name call_or_ref? | '(' expr_or_ternary ')'
"""

from __future__ import annotations

from .astnodes import (
    Assign,
    BinOp,
    Block,
    Call,
    Compare,
    For,
    If,
    Num,
    Ref,
    Ternary,
    UnOp,
    Var,
)
from .lexer import Token, tokenize

__all__ = ["ParseError", "parse"]

_CMPS = {"<", "<=", ">", ">=", "==", "!="}


class ParseError(ValueError):
    pass


class _Parser:
    def __init__(self, toks: list[Token]):
        self.toks = toks
        self.pos = 0

    # -- token helpers ------------------------------------------------------
    def peek(self, k: int = 0) -> Token:
        return self.toks[min(self.pos + k, len(self.toks) - 1)]

    def next(self) -> Token:
        t = self.toks[self.pos]
        if t.kind != "eof":
            self.pos += 1
        return t

    def expect(self, kind: str, text: str | None = None) -> Token:
        t = self.next()
        if t.kind != kind or (text is not None and t.text != text):
            want = f"{kind} {text!r}" if text else kind
            raise ParseError(
                f"expected {want}, got {t.kind} {t.text!r} at line {t.line}"
            )
        return t

    def accept(self, kind: str, text: str | None = None) -> Token | None:
        t = self.peek()
        if t.kind == kind and (text is None or t.text == text):
            return self.next()
        return None

    # -- grammar -------------------------------------------------------------
    def parse_program(self) -> Block:
        items = []
        while self.peek().kind != "eof":
            items.append(self.parse_stmt())
        return Block(items)

    def parse_stmt(self):
        t = self.peek()
        if t.kind == "kw" and t.text == "for":
            return self.parse_for()
        if t.kind == "kw" and t.text == "if":
            return self.parse_if()
        return self.parse_assign()

    def parse_body(self) -> Block:
        if self.accept("sym", "{"):
            items = []
            while not self.accept("sym", "}"):
                if self.peek().kind == "eof":
                    raise ParseError("unterminated block")
                items.append(self.parse_stmt())
            return Block(items)
        return Block([self.parse_stmt()])

    def parse_for(self) -> For:
        self.expect("kw", "for")
        self.expect("sym", "(")
        var = self.expect("name").text
        self.expect("sym", "=")
        init = self.parse_expr()
        self.expect("sym", ";")
        v2 = self.expect("name").text
        if v2 != var:
            raise ParseError(f"loop condition on {v2!r}, expected {var!r}")
        cmp_tok = self.next()
        if cmp_tok.text not in _CMPS:
            raise ParseError(f"bad loop comparison {cmp_tok.text!r}")
        bound = self.parse_expr()
        self.expect("sym", ";")
        v3 = self.expect("name").text
        if v3 != var:
            raise ParseError(f"loop step on {v3!r}, expected {var!r}")
        step_tok = self.next()
        if step_tok.text not in ("+=", "-="):
            raise ParseError(f"bad loop step {step_tok.text!r}")
        amount = self.expect("num")
        if amount.text not in ("1", "1.0"):
            raise ParseError("only unit loop steps are supported")
        step = 1 if step_tok.text == "+=" else -1
        self.expect("sym", ")")
        body = self.parse_body()
        return For(var, init, cmp_tok.text, bound, step, body)

    def parse_if(self) -> If:
        self.expect("kw", "if")
        self.expect("sym", "(")
        cond = self.parse_compare()
        self.expect("sym", ")")
        body = self.parse_body()
        return If(cond, body)

    def parse_assign(self) -> Assign:
        label = ""
        if (
            self.peek().kind == "name"
            and self.peek(1).kind == "sym"
            and self.peek(1).text == ":"
        ):
            label = self.next().text
            self.next()  # ':'
        name = self.expect("name").text
        indices = []
        while self.accept("sym", "["):
            indices.append(self.parse_expr())
            self.expect("sym", "]")
        target = Ref(name, tuple(indices)) if indices else Var(name)
        op_tok = self.next()
        ops = {"=": "", "+=": "+", "-=": "-", "*=": "*", "/=": "/"}
        if op_tok.text not in ops:
            raise ParseError(
                f"expected assignment operator, got {op_tok.text!r}"
                f" at line {op_tok.line}"
            )
        value = self.parse_expr()
        self.expect("sym", ";")
        return Assign(target, ops[op_tok.text], value, label)

    # expressions ------------------------------------------------------
    def parse_expr(self):
        # ternary needs lookahead: '(' compare ')' '?' ...
        save = self.pos
        if self.accept("sym", "("):
            try:
                cond = self.parse_compare()
                if self.accept("sym", ")") and self.accept("sym", "?"):
                    then = self.parse_expr()
                    self.expect("sym", ":")
                    other = self.parse_expr()
                    return Ternary(cond, then, other)
            except ParseError:
                pass
            self.pos = save
        return self.parse_additive()

    def parse_compare(self) -> Compare:
        lhs = self.parse_additive()
        t = self.next()
        if t.text not in _CMPS:
            raise ParseError(f"expected comparison, got {t.text!r} at line {t.line}")
        rhs = self.parse_additive()
        return Compare(t.text, lhs, rhs)

    def parse_additive(self):
        node = self.parse_term()
        while True:
            if self.accept("sym", "+"):
                node = BinOp("+", node, self.parse_term())
            elif self.accept("sym", "-"):
                node = BinOp("-", node, self.parse_term())
            else:
                return node

    def parse_term(self):
        node = self.parse_unary()
        while True:
            if self.accept("sym", "*"):
                node = BinOp("*", node, self.parse_unary())
            elif self.accept("sym", "/"):
                node = BinOp("/", node, self.parse_unary())
            else:
                return node

    def parse_unary(self):
        if self.accept("sym", "-"):
            return UnOp("-", self.parse_unary())
        return self.parse_primary()

    def parse_primary(self):
        t = self.peek()
        if t.kind == "num":
            self.next()
            text = t.text
            return Num(float(text) if "." in text else int(text))
        if t.kind == "name":
            self.next()
            if self.accept("sym", "("):
                args = []
                if not self.accept("sym", ")"):
                    args.append(self.parse_expr())
                    while self.accept("sym", ","):
                        args.append(self.parse_expr())
                    self.expect("sym", ")")
                return Call(t.text, tuple(args))
            indices = []
            while self.peek().kind == "sym" and self.peek().text == "[":
                self.next()
                indices.append(self.parse_expr())
                self.expect("sym", "]")
            return Ref(t.text, tuple(indices)) if indices else Var(t.text)
        if self.accept("sym", "("):
            e = self.parse_expr()
            self.expect("sym", ")")
            return e
        raise ParseError(f"unexpected token {t.text!r} at line {t.line}")


def parse(src: str) -> Block:
    """Parse a figure-style source string into an AST block."""
    return _Parser(tokenize(src)).parse_program()
