"""Tokenizer for the figure-style C subset.

The accepted language is exactly what the paper's figures use: ``for``
loops with affine bounds and unit steps, (compound) assignments to affine
array references or scalars, arithmetic expressions with calls (``sqrt``)
and ternaries, ``if`` guards, and optional statement labels (``SR:``).
"""

from __future__ import annotations

from dataclasses import dataclass

__all__ = ["Token", "LexError", "tokenize", "KEYWORDS"]

KEYWORDS = {"for", "if", "else"}

_SYMBOLS = [
    "+=", "-=", "*=", "/=", "==", "!=", "<=", ">=", "&&", "||",
    "(", ")", "{", "}", "[", "]", ";", ":", ",", "?",
    "+", "-", "*", "/", "<", ">", "=",
]


class LexError(ValueError):
    pass


@dataclass(frozen=True)
class Token:
    kind: str  # 'num' | 'name' | 'kw' | 'sym' | 'eof'
    text: str
    line: int
    col: int

    def __repr__(self) -> str:
        return f"{self.kind}({self.text!r}@{self.line}:{self.col})"


def tokenize(src: str) -> list[Token]:
    """Split source text into tokens; raises LexError on bad input."""
    toks: list[Token] = []
    i = 0
    line, col = 1, 1
    n = len(src)

    def advance(k: int) -> None:
        nonlocal i, line, col
        for _ in range(k):
            if i < n and src[i] == "\n":
                line += 1
                col = 1
            else:
                col += 1
            i += 1

    while i < n:
        c = src[i]
        if c in " \t\r\n":
            advance(1)
            continue
        if src.startswith("//", i):
            while i < n and src[i] != "\n":
                advance(1)
            continue
        if src.startswith("/*", i):
            end = src.find("*/", i + 2)
            if end < 0:
                raise LexError(f"unterminated comment at line {line}")
            advance(end + 2 - i)
            continue
        if c.isdigit() or (c == "." and i + 1 < n and src[i + 1].isdigit()):
            j = i
            seen_dot = False
            while j < n and (src[j].isdigit() or (src[j] == "." and not seen_dot)):
                if src[j] == ".":
                    seen_dot = True
                j += 1
            toks.append(Token("num", src[i:j], line, col))
            advance(j - i)
            continue
        if c.isalpha() or c == "_":
            j = i
            while j < n and (src[j].isalnum() or src[j] == "_"):
                j += 1
            word = src[i:j]
            toks.append(
                Token("kw" if word in KEYWORDS else "name", word, line, col)
            )
            advance(j - i)
            continue
        for sym in _SYMBOLS:
            if src.startswith(sym, i):
                toks.append(Token("sym", sym, line, col))
                advance(len(sym))
                break
        else:
            raise LexError(f"unexpected character {c!r} at line {line}, col {col}")
    toks.append(Token("eof", "", line, col))
    return toks
