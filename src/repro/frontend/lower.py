"""Lowering: AST → polyhedral :class:`~repro.ir.Program`.

Performs the classification and extraction an IOLB front-end does:

* names are classified into loop dims, subscripted arrays, written scalars
  (0-dim arrays) and parameters (read-only bare names);
* loop bounds, guards and subscripts are converted to affine forms
  (non-affine constructs are rejected with a precise error);
* each assignment becomes a Statement with its loop nest, guards, ordered
  deduplicated reads (right-hand side first, then the compound-assignment
  target), single write, and a 2d+1 schedule vector derived from the
  syntactic position (decreasing loops get the ``-dim`` marker);
* statement names come from labels (``SR:``) or are generated (``S0``…);
  the final names are written back into the AST so the interpreter emits
  matching trace events.
"""

from __future__ import annotations

from fractions import Fraction

from ..ir import Access, Array, Program, Statement
from ..polyhedral import Constraint, LinExpr
from .astnodes import (
    Assign,
    BinOp,
    Block,
    Call,
    Compare,
    For,
    If,
    Num,
    Ref,
    Ternary,
    UnOp,
    Var,
)

__all__ = ["LowerError", "lower_program"]


class LowerError(ValueError):
    """Lowering error carrying the source :class:`~repro.ir.Span` (if known)."""

    def __init__(self, msg: str, span=None):
        super().__init__(msg)
        self.span = span


def _loc(e) -> str:
    """`` at line L:C`` suffix for a node with a span, else empty."""
    sp = getattr(e, "span", None)
    return f" at line {sp.line}:{sp.col}" if sp is not None else ""


def _collect_names(block: Block):
    """(loop_vars, arrays {name: ndim}, written_bare, read_bare)."""
    loop_vars: set[str] = set()
    arrays: dict[str, int] = {}
    written_bare: set[str] = set()
    read_bare: set[str] = set()

    def expr_walk(e):
        if isinstance(e, Num):
            return
        if isinstance(e, Var):
            read_bare.add(e.name)
            return
        if isinstance(e, Ref):
            nd = arrays.setdefault(e.array, len(e.indices))
            if nd != len(e.indices):
                raise LowerError(
                    f"array {e.array} used with {len(e.indices)} and"
                    f" {nd} indices{_loc(e)}",
                    e.span,
                )
            for ix in e.indices:
                expr_walk(ix)
            return
        if isinstance(e, (BinOp, Compare)):
            expr_walk(e.lhs)
            expr_walk(e.rhs)
            return
        if isinstance(e, UnOp):
            expr_walk(e.operand)
            return
        if isinstance(e, Call):
            for a in e.args:
                expr_walk(a)
            return
        if isinstance(e, Ternary):
            expr_walk(e.cond)
            expr_walk(e.then)
            expr_walk(e.other)
            return
        raise LowerError(f"unknown expression node {e!r}{_loc(e)}", getattr(e, "span", None))

    def stmt_walk(s):
        if isinstance(s, For):
            loop_vars.add(s.var)
            expr_walk(s.init)
            expr_walk(s.bound)
            for item in s.body.items:
                stmt_walk(item)
        elif isinstance(s, If):
            expr_walk(s.cond)
            for item in s.body.items:
                stmt_walk(item)
        elif isinstance(s, Assign):
            if isinstance(s.target, Ref):
                nd = arrays.setdefault(s.target.array, len(s.target.indices))
                if nd != len(s.target.indices):
                    raise LowerError(
                        f"array {s.target.array} used with inconsistent"
                        f" rank{_loc(s.target)}",
                        s.target.span,
                    )
                for ix in s.target.indices:
                    expr_walk(ix)
            else:
                written_bare.add(s.target.name)
            expr_walk(s.value)
        else:
            raise LowerError(f"unknown statement node {s!r}{_loc(s)}", getattr(s, "span", None))

    for item in block.items:
        stmt_walk(item)
    return loop_vars, arrays, written_bare, read_bare


def _to_affine(e, loop_vars: set[str], params: set[str]) -> LinExpr:
    """Affine conversion for bounds/indices/guards."""
    if isinstance(e, Num):
        v = e.value
        if isinstance(v, float) and not v.is_integer():
            raise LowerError(
                f"non-integer constant {v} in affine position{_loc(e)}", e.span
            )
        return LinExpr((), int(v))
    if isinstance(e, Var):
        if e.name in loop_vars or e.name in params:
            return LinExpr({e.name: 1})
        raise LowerError(
            f"non-affine use of scalar {e.name!r} in index/bound{_loc(e)}",
            e.span,
        )
    if isinstance(e, UnOp) and e.op == "-":
        return _to_affine(e.operand, loop_vars, params) * -1
    if isinstance(e, BinOp):
        a = _to_affine(e.lhs, loop_vars, params)
        b = _to_affine(e.rhs, loop_vars, params)
        if e.op == "+":
            return a + b
        if e.op == "-":
            return a - b
        if e.op == "*":
            if a.is_const():
                return b * a.const
            if b.is_const():
                return a * b.const
            raise LowerError(f"non-affine product {e!r}{_loc(e)}", e.span)
        if e.op == "/":
            if b.is_const() and b.const != 0:
                return a * (Fraction(1) / b.const)
            raise LowerError(f"non-affine division {e!r}{_loc(e)}", e.span)
    raise LowerError(
        f"non-affine expression {e!r}{_loc(e)}", getattr(e, "span", None)
    )


def _compare_to_constraints(
    c: Compare, loop_vars: set[str], params: set[str]
) -> tuple[Constraint, ...]:
    a = _to_affine(c.lhs, loop_vars, params)
    b = _to_affine(c.rhs, loop_vars, params)
    if c.op == "<":
        return (Constraint(b - a - 1, ">="),)
    if c.op == "<=":
        return (Constraint(b - a, ">="),)
    if c.op == ">":
        return (Constraint(a - b - 1, ">="),)
    if c.op == ">=":
        return (Constraint(a - b, ">="),)
    if c.op == "==":
        return (Constraint(a - b, "=="),)
    raise LowerError(
        f"unsupported guard comparison {c.op!r}{_loc(c)}", c.span
    )


def _collect_reads(e, scalars: set[str], out: list):
    """Ordered read accesses of an expression (arrays + written scalars)."""
    if isinstance(e, Num):
        return
    if isinstance(e, Var):
        if e.name in scalars:
            out.append((e.name, (), e.span))
        return
    if isinstance(e, Ref):
        out.append((e.array, e.indices, e.span))
        for ix in e.indices:
            _collect_reads(ix, scalars, out)
        return
    if isinstance(e, (BinOp, Compare)):
        _collect_reads(e.lhs, scalars, out)
        _collect_reads(e.rhs, scalars, out)
        return
    if isinstance(e, UnOp):
        _collect_reads(e.operand, scalars, out)
        return
    if isinstance(e, Call):
        for a in e.args:
            _collect_reads(a, scalars, out)
        return
    if isinstance(e, Ternary):
        _collect_reads(e.cond, scalars, out)
        _collect_reads(e.then, scalars, out)
        _collect_reads(e.other, scalars, out)
        return


def lower_program(block: Block, name: str = "parsed") -> Program:
    """Lower a parsed AST to a :class:`Program` (no runner attached;
    use :func:`repro.frontend.interp.make_runner` for one)."""
    loop_vars, array_ranks, written_bare, read_bare = _collect_names(block)
    scalars = set(written_bare)
    params = frozenset(read_bare - loop_vars - scalars - set(array_ranks))
    params_s = set(params)

    statements: list[Statement] = []
    auto_idx = 0
    seen_names: set[str] = set()

    def lower_assign(s: Assign, loops, guards, path):
        nonlocal auto_idx
        stmt_name = s.label
        if not stmt_name:
            stmt_name = f"S{auto_idx}"
            auto_idx += 1
        if stmt_name in seen_names:
            raise LowerError(
                f"duplicate statement name {stmt_name!r}{_loc(s)}", s.span
            )
        seen_names.add(stmt_name)
        s.label = stmt_name  # write back for the interpreter

        raw_reads: list = []
        _collect_reads(s.value, scalars, raw_reads)
        if s.op:  # compound assignment reads its target too
            if isinstance(s.target, Ref):
                raw_reads.append((s.target.array, s.target.indices, s.target.span))
            else:
                raw_reads.append((s.target.name, (), s.target.span))
        reads: list[Access] = []
        seen_acc = set()
        for arr, idxs, rspan in raw_reads:
            aff_idx = tuple(_to_affine(ix, loop_vars, params_s) for ix in idxs)
            acc = Access(arr, aff_idx, span=rspan)
            key = (arr, aff_idx)
            if key not in seen_acc:
                seen_acc.add(key)
                reads.append(acc)
        if isinstance(s.target, Ref):
            w = Access(
                s.target.array,
                tuple(
                    _to_affine(ix, loop_vars, params_s)
                    for ix in s.target.indices
                ),
                span=s.target.span,
            )
        else:
            w = Access(s.target.name, (), span=s.target.span)
        statements.append(
            Statement(
                stmt_name,
                loops=tuple(loops),
                reads=tuple(reads),
                writes=(w,),
                guards=tuple(guards),
                schedule=tuple(path),
                span=s.span,
            )
        )

    def walk(block_: Block, loops, guards, path):
        counter = 0
        for item in block_.items:
            if isinstance(item, For):
                lo_e = _to_affine(item.init, loop_vars, params_s)
                hi_e = _to_affine(item.bound, loop_vars, params_s)
                if item.step == 1:
                    lo, hi = lo_e, {
                        "<": hi_e - 1,
                        "<=": hi_e,
                    }.get(item.cond_op)
                    marker = item.var
                else:
                    hi = lo_e
                    lo = {">": hi_e + 1, ">=": hi_e}.get(item.cond_op)
                    marker = "-" + item.var
                if lo is None or hi is None:
                    raise LowerError(
                        f"loop on {item.var}: comparison {item.cond_op!r}"
                        f" inconsistent with step {item.step:+d}{_loc(item)}",
                        item.span,
                    )
                walk(
                    item.body,
                    loops + [(item.var, lo, hi)],
                    guards,
                    path + [counter, marker],
                )
            elif isinstance(item, If):
                cs = _compare_to_constraints(item.cond, loop_vars, params_s)
                walk(item.body, loops, guards + list(cs), path + [counter])
                # guard bodies share the position slot but keep textual order
            elif isinstance(item, Assign):
                lower_assign(item, loops, guards, path + [counter])
            counter += 1

    walk(block, [], [], [])

    arrays = tuple(
        [Array(a, r) for a, r in sorted(array_ranks.items())]
        + [Array(sc, 0) for sc in sorted(scalars - set(array_ranks))]
    )
    return Program(
        name=name,
        params=tuple(sorted(params)),
        arrays=arrays,
        statements=tuple(statements),
        notes="lowered from source by repro.frontend",
    )
