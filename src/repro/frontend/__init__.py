"""Front-end: parse figure-style C code into the polyhedral IR.

The paper's kernels are given as C listings (Figures 1, 3, 6, 7, 8, 9);
this package accepts that exact dialect::

    from repro.frontend import compile_source

    prog, ast = compile_source(source_text, name="mykernel")
    # prog is a repro.ir.Program: run the whole bounds pipeline on it.

``compile_source`` parses, lowers, and (optionally) attaches an interpreter
as the program's runner so every validation in :mod:`repro.cdag` applies.
"""

from __future__ import annotations

from .astnodes import Block
from .interp import InterpError, interpret, make_runner
from .lexer import LexError, tokenize
from .lower import LowerError, lower_program
from .parser import ParseError, parse
from .printer import to_source

__all__ = [
    "Block",
    "InterpError",
    "interpret",
    "make_runner",
    "LexError",
    "tokenize",
    "LowerError",
    "lower_program",
    "ParseError",
    "parse",
    "to_source",
    "compile_source",
]


def compile_source(
    src: str,
    name: str = "parsed",
    array_shapes=None,
    *,
    strict: bool = False,
    check_params=None,
    shapes=None,
):
    """Parse + lower; attach a random-input runner when shapes are given.

    Returns ``(program, ast_block)``.

    With ``strict=True`` the :mod:`repro.analysis` analyzer runs over the
    result (at ``check_params``, with declared ``shapes`` for bounds
    checking) and an :class:`~repro.analysis.AnalysisError` carrying the
    full report is raised if it finds any error-severity diagnostic.
    """
    from .. import obs

    with obs.span("frontend.compile", program=name):
        ast = parse(src)
        prog = lower_program(ast, name=name)
        if array_shapes:
            prog.runner = make_runner(ast, prog, array_shapes)
        if strict:
            from ..analysis import AnalysisError, check_program

            report = check_program(
                prog, check_params, shapes=shapes, ast=ast
            )
            if not report.ok():
                raise AnalysisError(report)
    obs.add("frontend.statements_lowered", len(prog.statements))
    return prog, ast
