"""The paper's figure listings, as parseable source (Figures 1, 3, 6, 7).

Statement labels match the hand-built kernel specs in :mod:`repro.kernels`,
so a parsed program's CDAG can be compared node-for-node against the
hand-transcribed one — the strongest check that the front-end, the manual
transcriptions, and the figures all agree.

``FIGURE_SHAPES`` provides the input-array shape functions needed to attach
an interpreter runner to each source; ``FIGURE_SHAPE_EXPRS`` gives the same
shapes as affine strings in the program parameters (one entry per array
dimension), which is what the :mod:`repro.analysis` bounds-checking pass
consumes symbolically.
"""

from __future__ import annotations

__all__ = ["FIGURE_SOURCES", "FIGURE_SHAPES", "FIGURE_SHAPE_EXPRS"]

#: Figure 1 — Modified Gram-Schmidt, right-looking (Polybench)
FIG1_MGS = """
for (k = 0; k < N; k += 1) {
  Snrm0: nrm = 0.0;
  for (i = 0; i < M; i += 1)
    Snrm: nrm += A[i][k] * A[i][k];
  Sr: R[k][k] = sqrt(nrm);
  for (i = 0; i < M; i += 1)
    Sq: Q[i][k] = A[i][k] / R[k][k];
  for (j = k + 1; j < N; j += 1) {
    Sr0: R[k][j] = 0.0;
    for (i = 0; i < M; i += 1)
      SR: R[k][j] += Q[i][k] * A[i][j];
    for (i = 0; i < M; i += 1)
      SU: A[i][j] = A[i][j] - Q[i][k] * R[k][j];
  }
}
"""

#: Figure 3 — QR Householder, A2V part (GEQR2)
FIG3_A2V = """
for (k = 0; k < N; k += 1) {
  Sn0: norma2 = 0.0;
  for (i = k + 1; i < M; i += 1)
    Sn: norma2 += A[i][k] * A[i][k];
  Snorm: norma = sqrt(A[k][k] * A[k][k] + norma2);
  Sd: A[k][k] = (A[k][k] > 0) ? (A[k][k] + norma) : (A[k][k] - norma);
  St: tau[k] = 2.0 / (1.0 + norma2 / (A[k][k] * A[k][k]));
  for (i = k + 1; i < M; i += 1)
    Sv: A[i][k] /= A[k][k];
  Sd2: A[k][k] = (A[k][k] > 0) ? (0.0 - norma) : (norma);
  for (j = k + 1; j < N; j += 1) {
    Sw0: tau[j] = A[k][j];
    for (i = k + 1; i < M; i += 1)
      SR: tau[j] += A[i][k] * A[i][j];
    Sw1: tau[j] = tau[k] * tau[j];
    Sw2: A[k][j] = A[k][j] - tau[j];
    for (i = k + 1; i < M; i += 1)
      SU: A[i][j] = A[i][j] - A[i][k] * tau[j];
  }
}
"""

#: Figure 6 — QR Householder, V2Q part (ORG2R); reversed outer loop
FIG6_V2Q = """
for (k = N - 1; k > -1; k -= 1) {
  for (j = k + 1; j < N; j += 1) {
    Sz: tau[j] = 0.0;
    for (i = k + 1; i < M; i += 1)
      SR: tau[j] += A[i][k] * A[i][j];
  }
  for (j = k + 1; j < N; j += 1)
    St: tau[j] *= tau[k];
  Sd: A[k][k] = 1.0 - tau[k];
  for (j = k + 1; j < N; j += 1)
    Sr: A[k][j] = 0.0 - tau[j];
  for (j = k + 1; j < N; j += 1)
    for (i = k + 1; i < M; i += 1)
      SU: A[i][j] -= A[i][k] * tau[j];
  for (i = k + 1; i < M; i += 1)
    Sv: A[i][k] = (0.0 - A[i][k]) * tau[k];
}
"""

#: Figure 7 — Hessenberg reduction (GEHD2)
FIG7_GEHD2 = """
for (j = 0; j < N - 2; j += 1) {
  Sn0: norma2 = 0.0;
  for (i = j + 2; i < N; i += 1)
    Sn: norma2 += A[i][j] * A[i][j];
  Snorm: norma = sqrt(A[j + 1][j] * A[j + 1][j] + norma2);
  Sd: A[j + 1][j] = (A[j + 1][j] > 0) ? (A[j + 1][j] + norma)
                                      : (A[j + 1][j] - norma);
  St: tau = 2.0 / (1.0 + norma2 / (A[j + 1][j] * A[j + 1][j]));
  for (i = j + 2; i < N; i += 1)
    Sv: A[i][j] /= A[j + 1][j];
  Sd2: A[j + 1][j] = (A[j + 1][j] > 0) ? (0.0 - norma) : (norma);
  for (i = j + 1; i < N; i += 1) {
    Sl0: tmp[i] = A[j + 1][i];
    for (k = j + 2; k < N; k += 1)
      SlR: tmp[i] += A[k][j] * A[k][i];
  }
  for (i = j + 1; i < N; i += 1)
    Sl1: tmp[i] *= tau;
  for (i = j + 1; i < N; i += 1)
    Sl2: A[j + 1][i] -= tmp[i];
  for (i = j + 2; i < N; i += 1)
    for (k = j + 1; k < N; k += 1)
      SlU: A[i][k] -= A[i][j] * tmp[k];
  for (i = 0; i < N; i += 1) {
    Sr0: tmp[i] = A[i][j + 1];
    for (k = j + 2; k < N; k += 1)
      SrR: tmp[i] += A[i][k] * A[k][j];
  }
  for (i = 0; i < N; i += 1)
    Sr1: tmp[i] *= tau;
  for (i = 0; i < N; i += 1)
    Sr2: A[i][j + 1] -= tmp[i];
  for (i = 0; i < N; i += 1)
    for (k = j + 2; k < N; k += 1)
      SrU: A[i][k] -= tmp[i] * A[k][j];
}
"""

#: GEBD2 has no listing in the paper ("similar to both Householder proofs");
#: this source transcribes the reference unblocked algorithm in the figure
#: dialect — including the ``if (k < N - 2)`` row-phase guard — and is
#: checked CDAG-identical to the hand-built kernel in the tests.
GEBD2_SRC = """
for (k = 0; k < N; k += 1) {
  Scn0: norma2 = 0.0;
  for (i = k + 1; i < M; i += 1)
    Scn: norma2 += A[i][k] * A[i][k];
  Scnorm: norma = sqrt(A[k][k] * A[k][k] + norma2);
  Scd: A[k][k] = (A[k][k] > 0) ? (A[k][k] + norma) : (A[k][k] - norma);
  Sct: tauq[k] = 2.0 / (1.0 + norma2 / (A[k][k] * A[k][k]));
  for (i = k + 1; i < M; i += 1)
    Scv: A[i][k] /= A[k][k];
  Scd2: A[k][k] = (A[k][k] > 0) ? (0.0 - norma) : (norma);
  for (j = k + 1; j < N; j += 1) {
    Scw0: w[j] = A[k][j];
    for (i = k + 1; i < M; i += 1)
      ScR: w[j] += A[i][k] * A[i][j];
    Scw1: w[j] *= tauq[k];
    Scw2: A[k][j] -= w[j];
    for (i = k + 1; i < M; i += 1)
      ScU: A[i][j] -= A[i][k] * w[j];
  }
  if (k < N - 2) {
    Srn0: norma2 = 0.0;
    for (j = k + 2; j < N; j += 1)
      Srn: norma2 += A[k][j] * A[k][j];
    Srnorm: norma = sqrt(A[k][k + 1] * A[k][k + 1] + norma2);
    Srd: A[k][k + 1] = (A[k][k + 1] > 0) ? (A[k][k + 1] + norma)
                                         : (A[k][k + 1] - norma);
    Srt: taup[k] = 2.0 / (1.0 + norma2 / (A[k][k + 1] * A[k][k + 1]));
    for (j = k + 2; j < N; j += 1)
      Srv: A[k][j] /= A[k][k + 1];
    Srd2: A[k][k + 1] = (A[k][k + 1] > 0) ? (0.0 - norma) : (norma);
    for (i = k + 1; i < M; i += 1) {
      Srz0: z[i] = A[i][k + 1];
      for (j = k + 2; j < N; j += 1)
        SrR: z[i] += A[k][j] * A[i][j];
      Srz1: z[i] *= taup[k];
      Srz2: A[i][k + 1] -= z[i];
      for (j = k + 2; j < N; j += 1)
        SrU: A[i][j] -= z[i] * A[k][j];
    }
  }
}
"""

FIGURE_SOURCES = {
    "mgs": FIG1_MGS,
    "qr_a2v": FIG3_A2V,
    "qr_v2q": FIG6_V2Q,
    "gehd2": FIG7_GEHD2,
    "gebd2": GEBD2_SRC,
}

FIGURE_SHAPES = {
    "mgs": {
        "A": lambda p: (p["M"], p["N"]),
        "Q": lambda p: (p["M"], p["N"]),
        "R": lambda p: (p["N"], p["N"]),
    },
    "qr_a2v": {
        "A": lambda p: (p["M"], p["N"]),
        "tau": lambda p: (p["N"],),
    },
    "qr_v2q": {
        "A": lambda p: (p["M"], p["N"]),
        "tau": lambda p: (p["N"],),
    },
    "gehd2": {
        "A": lambda p: (p["N"], p["N"]),
        "tmp": lambda p: (p["N"],),
    },
    "gebd2": {
        "A": lambda p: (p["M"], p["N"]),
        "w": lambda p: (p["N"],),
        "z": lambda p: (p["M"],),
        "tauq": lambda p: (p["N"],),
        "taup": lambda p: (p["N"],),
    },
}

#: declared array extents as affine expressions in the program parameters
#: (``A: ("M", "N")`` means ``A`` is M-by-N); consumed by ``iolb lint`` and
#: :func:`repro.analysis.check_source` for symbolic bounds checking
FIGURE_SHAPE_EXPRS = {
    "mgs": {"A": ("M", "N"), "Q": ("M", "N"), "R": ("N", "N")},
    "qr_a2v": {"A": ("M", "N"), "tau": ("N",)},
    "qr_v2q": {"A": ("M", "N"), "tau": ("N",)},
    "gehd2": {"A": ("N", "N"), "tmp": ("N",)},
    "gebd2": {
        "A": ("M", "N"),
        "w": ("N",),
        "z": ("M",),
        "tauq": ("N",),
        "taup": ("N",),
    },
}
