"""AST interpreter: execute parsed figure code with instrumentation.

The interpreter evaluates the program over numpy arrays / Python floats and
emits trace events through the *lowered* statement specs (same names, same
ordered deduplicated read lists), so a parsed program's instrumented run is
event-for-event comparable with :func:`repro.ir.dataflow_trace` — closing
the same validation loop the hand-written kernels enjoy.
"""

from __future__ import annotations

import math
from typing import Callable, Mapping

import numpy as np

from ..ir import NullTracer, Program
from .astnodes import (
    Assign,
    BinOp,
    Block,
    Call,
    Compare,
    For,
    If,
    Num,
    Ref,
    Ternary,
    UnOp,
    Var,
)

__all__ = ["InterpError", "interpret", "make_runner"]

_FUNCS: dict[str, Callable] = {
    "sqrt": math.sqrt,
    "fabs": abs,
    "abs": abs,
    "exp": math.exp,
    "log": math.log,
}


class InterpError(ValueError):
    pass


class _Interp:
    def __init__(self, block: Block, program: Program, storage, params, tracer):
        self.block = block
        self.stmts = {s.name: s for s in program.statements}
        self.storage = storage  # name -> ndarray or [float] cell
        self.env: dict[str, int] = dict(params)
        self.t = tracer

    # -- expression evaluation ----------------------------------------------
    def eval(self, e):
        if isinstance(e, Num):
            return e.value
        if isinstance(e, Var):
            if e.name in self.env:
                return self.env[e.name]
            sto = self.storage.get(e.name)
            if sto is None:
                raise InterpError(f"unbound name {e.name!r}")
            return sto[()] if isinstance(sto, np.ndarray) else sto[0]
        if isinstance(e, Ref):
            arr = self.storage.get(e.array)
            if arr is None:
                raise InterpError(f"unknown array {e.array!r}")
            idx = tuple(int(self.eval(ix)) for ix in e.indices)
            return float(arr[idx])
        if isinstance(e, BinOp):
            a, b = self.eval(e.lhs), self.eval(e.rhs)
            if e.op == "+":
                return a + b
            if e.op == "-":
                return a - b
            if e.op == "*":
                return a * b
            if e.op == "/":
                return a / b
        if isinstance(e, UnOp):
            return -self.eval(e.operand)
        if isinstance(e, Call):
            fn = _FUNCS.get(e.func)
            if fn is None:
                raise InterpError(f"unknown function {e.func!r}")
            return fn(*(self.eval(a) for a in e.args))
        if isinstance(e, Ternary):
            return self.eval(e.then) if self.test(e.cond) else self.eval(e.other)
        raise InterpError(f"cannot evaluate {e!r}")

    def test(self, c: Compare) -> bool:
        a, b = self.eval(c.lhs), self.eval(c.rhs)
        return {
            "<": a < b,
            "<=": a <= b,
            ">": a > b,
            ">=": a >= b,
            "==": a == b,
            "!=": a != b,
        }[c.op]

    # -- statement execution -----------------------------------------------
    def run_block(self, block: Block) -> None:
        for item in block.items:
            if isinstance(item, For):
                self.run_for(item)
            elif isinstance(item, If):
                if self.test(item.cond):
                    self.run_block(item.body)
            elif isinstance(item, Assign):
                self.run_assign(item)

    def run_for(self, f: For) -> None:
        lo = int(self.eval(f.init))
        bound = int(self.eval(f.bound))
        if f.step == 1:
            stop = bound if f.cond_op == "<" else bound + 1
            rng = range(lo, stop)
        else:
            stop = bound if f.cond_op == ">" else bound - 1
            rng = range(lo, stop, -1)
        had = f.var in self.env
        old = self.env.get(f.var)
        for v in rng:
            self.env[f.var] = v
            self.run_block(f.body)
        if had:
            self.env[f.var] = old
        else:
            self.env.pop(f.var, None)

    def run_assign(self, a: Assign) -> None:
        spec = self.stmts.get(a.label)
        if spec is None:
            raise InterpError(f"assignment {a!r} was not lowered (label missing)")
        ivec = tuple(self.env[d] for d in spec.dims)
        self.t.stmt(spec.name, *ivec)
        env = dict(self.env)
        for acc in spec.reads:
            arr, idx = acc.eval(env)
            self.t.read(arr, *idx)
        warr, widx = spec.writes[0].eval(env)
        self.t.write(warr, *widx)

        value = self.eval(a.value)
        if isinstance(a.target, Ref):
            arr = self.storage[a.target.array]
            idx = tuple(int(self.eval(ix)) for ix in a.target.indices)
            if a.op:
                value = _apply(a.op, float(arr[idx]), value)
            arr[idx] = value
        else:
            cell = self.storage.setdefault(a.target.name, [0.0])
            if a.op:
                value = _apply(a.op, cell[0], value)
            cell[0] = value


def _apply(op: str, old: float, rhs: float) -> float:
    if op == "+":
        return old + rhs
    if op == "-":
        return old - rhs
    if op == "*":
        return old * rhs
    if op == "/":
        return old / rhs
    raise InterpError(f"bad compound op {op!r}")


def interpret(
    block: Block,
    program: Program,
    arrays: Mapping[str, np.ndarray],
    params: Mapping[str, int],
    tracer=None,
) -> dict[str, np.ndarray]:
    """Run the parsed program.

    ``arrays`` supplies initial contents for the input arrays (they are
    copied); unspecified arrays are zero-allocated with shapes inferred from
    the parameters is *not* attempted — pass every array you care about.
    Scalars need not be passed.  Returns the final array contents.
    """
    t = tracer if tracer is not None else NullTracer()
    storage: dict = {}
    declared = {arr.name: arr.ndim for arr in program.arrays}
    for name, a in arrays.items():
        if name not in declared:
            raise InterpError(f"array {name!r} not used by the program")
        storage[name] = np.array(a, dtype=float, copy=True)
    for name, nd in declared.items():
        if name in storage:
            continue
        if nd == 0:
            storage[name] = [0.0]
        else:
            raise InterpError(
                f"no initial contents for array {name!r}; pass it in `arrays`"
            )
    _Interp(block, program, storage, params, t).run_block(block)
    return {
        k: v for k, v in storage.items() if isinstance(v, np.ndarray)
    }


def make_runner(block: Block, program: Program, array_shapes):
    """Build a ``runner(params, tracer, seed)`` closure for a parsed program.

    ``array_shapes`` maps array names to shape functions
    ``params -> tuple`` for the arrays that must be randomly initialised.
    """

    def runner(params, tracer=None, seed: int = 0):
        rng = np.random.default_rng(seed)
        arrays = {}
        for name, shape_fn in array_shapes.items():
            shape = shape_fn(params)
            a = rng.standard_normal(shape)
            if len(shape) == 2 and shape[0] >= shape[1]:
                a[: shape[1], : shape[1]] += np.eye(shape[1]) * (1.0 + shape[1])
            arrays[name] = a
        return interpret(block, program, arrays, params, tracer)

    return runner
