"""AST node definitions for the figure-style C subset.

Every node carries an optional :class:`~repro.ir.Span` (``span``) locating
it in the source text; the parser fills these in and lowering threads them
onto the IR so errors and :mod:`repro.analysis` diagnostics can point at
exact source positions.  Spans never participate in equality or hashing.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Union

from ..ir.span import Span

__all__ = [
    "Num",
    "Var",
    "Ref",
    "BinOp",
    "UnOp",
    "Call",
    "Compare",
    "Ternary",
    "Assign",
    "For",
    "If",
    "Block",
    "Expr",
    "Stmt",
]


@dataclass(frozen=True)
class Num:
    value: float  # ints stored as floats when written 2.0, else int
    span: Span | None = field(default=None, compare=False, repr=False)

    def __repr__(self) -> str:
        return str(self.value)


@dataclass(frozen=True)
class Var:
    name: str
    span: Span | None = field(default=None, compare=False, repr=False)

    def __repr__(self) -> str:
        return self.name


@dataclass(frozen=True)
class Ref:
    """Array reference ``array[e1][e2]...`` (0 indices = bare scalar use of
    a written variable; bare uses are Var until lowering classifies them)."""

    array: str
    indices: tuple["Expr", ...]
    span: Span | None = field(default=None, compare=False, repr=False)

    def __repr__(self) -> str:
        return self.array + "".join(f"[{e!r}]" for e in self.indices)


@dataclass(frozen=True)
class BinOp:
    op: str  # + - * /
    lhs: "Expr"
    rhs: "Expr"
    span: Span | None = field(default=None, compare=False, repr=False)

    def __repr__(self) -> str:
        return f"({self.lhs!r} {self.op} {self.rhs!r})"


@dataclass(frozen=True)
class UnOp:
    op: str  # -
    operand: "Expr"
    span: Span | None = field(default=None, compare=False, repr=False)

    def __repr__(self) -> str:
        return f"({self.op}{self.operand!r})"


@dataclass(frozen=True)
class Call:
    func: str
    args: tuple["Expr", ...]
    span: Span | None = field(default=None, compare=False, repr=False)

    def __repr__(self) -> str:
        return f"{self.func}({', '.join(map(repr, self.args))})"


@dataclass(frozen=True)
class Compare:
    op: str  # < <= > >= == !=
    lhs: "Expr"
    rhs: "Expr"
    span: Span | None = field(default=None, compare=False, repr=False)

    def __repr__(self) -> str:
        return f"({self.lhs!r} {self.op} {self.rhs!r})"


@dataclass(frozen=True)
class Ternary:
    cond: "Compare"
    then: "Expr"
    other: "Expr"
    span: Span | None = field(default=None, compare=False, repr=False)

    def __repr__(self) -> str:
        return f"({self.cond!r} ? {self.then!r} : {self.other!r})"


Expr = Union[Num, Var, Ref, BinOp, UnOp, Call, Ternary]


@dataclass
class Assign:
    """``target op= value;`` where op in {'', '+', '-', '*', '/'}."""

    target: Ref | Var
    op: str
    value: Expr
    label: str = ""
    span: Span | None = field(default=None, compare=False, repr=False)

    def __repr__(self) -> str:
        lbl = f"{self.label}: " if self.label else ""
        return f"{lbl}{self.target!r} {self.op}= {self.value!r}"


@dataclass
class For:
    var: str
    init: Expr
    #: comparison op of the condition ('<', '<=', '>', '>=')
    cond_op: str
    bound: Expr
    #: +1 or -1
    step: int
    body: "Block"
    span: Span | None = field(default=None, compare=False, repr=False)

    def __repr__(self) -> str:
        return f"for({self.var}={self.init!r}; {self.var}{self.cond_op}{self.bound!r}; {self.step:+d})"


@dataclass
class If:
    cond: Compare
    body: "Block"
    span: Span | None = field(default=None, compare=False, repr=False)

    def __repr__(self) -> str:
        return f"if({self.cond!r})"


@dataclass
class Block:
    items: list  # of Assign | For | If
    span: Span | None = field(default=None, compare=False, repr=False)


Stmt = Union[Assign, For, If]
