"""Red-white pebble game: the paper's execution/I-O model on explicit CDAGs."""

from .exact import exact_min_loads
from .game import GameResult, PebbleGameError, play_schedule
from .policies import BeladyPolicy, EvictionPolicy, LRUPolicy
from .schedules import priority_schedule, random_topological_schedule
from .tiling import hourglass_tiled_schedule

__all__ = [
    "exact_min_loads",
    "GameResult",
    "PebbleGameError",
    "play_schedule",
    "BeladyPolicy",
    "EvictionPolicy",
    "LRUPolicy",
    "priority_schedule",
    "random_topological_schedule",
    "hourglass_tiled_schedule",
]
