"""The red-white pebble game of §2 (Olivry et al.'s no-recomputation model).

Rules, replayed mechanically on a CDAG:

* white pebbles mark computed nodes and are never removed (no recomputation);
* at most S red pebbles exist at any time (fast-memory residency);
* **Compute**: a node with all predecessors red-pebbled gets a white + red
  pebble (no I/O);
* **Load**: a red pebble may be (re)placed on a white-pebbled node — each
  Load is one unit of I/O;
* **Spill**: a red pebble may be removed (free, matching the paper's
  loads-only accounting);
* inputs start white-pebbled; the game ends with every node white.

:func:`play_schedule` prices a given topological order: before computing a
node, every predecessor lacking a red pebble is Loaded (inputs and previously
spilled values alike); eviction when the red budget is full is delegated to a
policy (LRU or Belady-optimal w.r.t. the fixed schedule).  The returned
``loads`` is a legal red-white game cost, hence an upper bound on the
program's I/O complexity and a sound comparison point for every derived
lower bound.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Hashable, Sequence

from .. import obs
from ..cdag import CDAG
from .policies import BeladyPolicy, EvictionPolicy, LRUPolicy

__all__ = ["GameResult", "play_schedule", "PebbleGameError"]

Node = Hashable


class PebbleGameError(ValueError):
    """Raised when a schedule violates the game rules."""


@dataclass
class GameResult:
    """Outcome of one red-white pebble game run."""

    loads: int
    computes: int
    spills: int
    max_red: int
    policy: str
    s: int

    def __repr__(self) -> str:
        return (
            f"GameResult(loads={self.loads}, computes={self.computes}, "
            f"spills={self.spills}, S={self.s}, policy={self.policy})"
        )


def play_schedule(
    g: CDAG,
    schedule: Sequence[Node],
    s: int,
    policy: str = "belady",
) -> GameResult:
    """Play the red-white pebble game along ``schedule`` with |red| <= s.

    ``schedule`` must be a topological order of the compute nodes (validated).
    ``policy`` selects the eviction strategy: ``"lru"`` or ``"belady"``
    (furthest next use in the fixed schedule — the offline optimum for this
    replacement subproblem).
    """
    if s < 1:
        raise PebbleGameError("red pebble budget S must be >= 1")
    if not g.is_valid_schedule(schedule):
        raise PebbleGameError("schedule is not a topological order of the CDAG")

    pol: EvictionPolicy
    if policy == "lru":
        pol = LRUPolicy()
    elif policy == "belady":
        pol = BeladyPolicy(g, schedule)
    else:
        raise PebbleGameError(f"unknown policy {policy!r}")

    white: set[Node] = set(g.input_nodes())
    red: set[Node] = set()
    loads = computes = spills = max_red = 0
    clock = 0

    def make_room() -> None:
        nonlocal spills
        while len(red) >= s:
            victim = pol.choose_victim(red, clock)
            if victim is None:
                raise PebbleGameError(
                    "all red pebbles pinned; S too small for this node"
                )
            red.discard(victim)
            pol.on_evict(victim)
            spills += 1

    for v in schedule:
        clock += 1
        preds = g.pred[v]
        # the compute rule needs every predecessor red *and* a free slot for
        # v's own red pebble, so a node with |preds| >= S is uncomputable
        if len(preds) + 1 > s:
            raise PebbleGameError(
                f"node {v} needs {len(preds)} operands + itself but S={s}"
            )
        for u in preds:
            if u in red:
                pol.on_access(u, clock)
        for u in preds:
            if u in red:
                continue
            if u not in white:
                raise PebbleGameError(
                    f"schedule computes {v} before its predecessor {u}"
                )
            # pin operands of v already staged: never evict them mid-compute
            pol.pin(set(preds) & red)
            make_room()
            pol.unpin()
            red.add(u)
            pol.on_load(u, clock)
            loads += 1
        # compute: place white + red on v
        pol.pin(set(preds) & red)
        make_room()
        pol.unpin()
        white.add(v)
        red.add(v)
        pol.on_load(v, clock)  # residency bookkeeping (not an I/O load)
        computes += 1
        max_red = max(max_red, len(red))

    if obs.enabled():
        obs.add("pebble.nodes_played", computes)
        obs.add("pebble.game_loads", loads)
        obs.add("pebble.game_spills", spills)
    return GameResult(
        loads=loads,
        computes=computes,
        spills=spills,
        max_red=max_red,
        policy=policy,
        s=s,
    )
