"""Alternative valid schedules of a CDAG.

Lower bounds quantify over *all* topological orders; the fixed program order
and the appendix tilings are just two points of that space.  This module
generates more:

* :func:`random_topological_schedule` — uniform-ish random linear extensions
  (random eligible-node picks), the fuzzing probe for soundness sweeps;
* :func:`priority_schedule` — greedy orders driven by a priority function,
  with two built-ins: ``"depth_first"`` (finish consumers ASAP, small live
  sets) and ``"breadth_first"`` (level order, large live sets — an
  adversarial probe for the wavefront reasoning).
"""

from __future__ import annotations

import heapq
import random
from typing import Callable, Hashable

from ..cdag import CDAG

__all__ = ["random_topological_schedule", "priority_schedule"]

Node = Hashable


def random_topological_schedule(
    g: CDAG, rng: random.Random | None = None
) -> list[Node]:
    """A random topological order of the compute nodes."""
    rng = rng or random.Random()
    compute = set(g.compute_nodes())
    indeg = {
        n: sum(1 for p in g.pred[n] if p in compute) for n in compute
    }
    ready = [n for n, d in indeg.items() if d == 0]
    out: list[Node] = []
    while ready:
        idx = rng.randrange(len(ready))
        ready[idx], ready[-1] = ready[-1], ready[idx]
        n = ready.pop()
        out.append(n)
        for m in g.succ[n]:
            if m in compute:
                indeg[m] -= 1
                if indeg[m] == 0:
                    ready.append(m)
    if len(out) != len(compute):
        raise ValueError("CDAG contains a cycle")
    return out


def _depth(g: CDAG) -> dict[Node, int]:
    depth: dict[Node, int] = {}
    for n in g.topological_order():
        depth[n] = 1 + max((depth[p] for p in g.pred[n]), default=-1)
    return depth


def priority_schedule(
    g: CDAG,
    priority: "str | Callable[[Node], float]" = "depth_first",
) -> list[Node]:
    """Greedy topological order: always run the eligible node of smallest
    priority value.  Built-ins: "depth_first" (deepest first — chases
    consumers), "breadth_first" (shallowest first — level order)."""
    if callable(priority):
        prio = priority
    elif priority == "depth_first":
        depth = _depth(g)
        prio = lambda n: -depth[n]  # noqa: E731
    elif priority == "breadth_first":
        depth = _depth(g)
        prio = lambda n: depth[n]  # noqa: E731
    else:
        raise ValueError(f"unknown priority {priority!r}")

    compute = set(g.compute_nodes())
    indeg = {
        n: sum(1 for p in g.pred[n] if p in compute) for n in compute
    }
    heap = [(prio(n), repr(n), n) for n, d in indeg.items() if d == 0]
    heapq.heapify(heap)
    out: list[Node] = []
    while heap:
        _, _, n = heapq.heappop(heap)
        out.append(n)
        for m in g.succ[n]:
            if m in compute:
                indeg[m] -= 1
                if indeg[m] == 0:
                    heapq.heappush(heap, (prio(m), repr(m), m))
    if len(out) != len(compute):
        raise ValueError("CDAG contains a cycle")
    return out
