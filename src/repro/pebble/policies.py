"""Eviction (spill) policies for the red-white pebble game.

The game fixes the compute order; what remains is a caching subproblem:
which red pebble to drop when the budget is full.  ``LRUPolicy`` models what
a practical runtime achieves; ``BeladyPolicy`` (furthest next use w.r.t. the
fixed schedule) is the offline optimum for that subproblem, so its load count
is the tightest upper bound a given schedule can witness.
"""

from __future__ import annotations

import heapq
from bisect import bisect_right
from typing import Hashable, Iterable, Sequence

__all__ = ["EvictionPolicy", "LRUPolicy", "BeladyPolicy"]

Node = Hashable
_INF = float("inf")


class EvictionPolicy:
    """Interface; concrete policies override the hooks they need."""

    def __init__(self) -> None:
        self._pinned: frozenset[Node] = frozenset()

    def pin(self, nodes: Iterable[Node]) -> None:
        """Temporarily protect nodes from eviction (operands being staged)."""
        self._pinned = frozenset(nodes)

    def unpin(self) -> None:
        self._pinned = frozenset()

    # residency bookkeeping
    def on_load(self, node: Node, clock: int) -> None:  # pragma: no cover
        pass

    def on_access(self, node: Node, clock: int) -> None:  # pragma: no cover
        pass

    def on_evict(self, node: Node) -> None:  # pragma: no cover
        pass

    def choose_victim(self, red: set[Node], clock: int) -> Node | None:
        raise NotImplementedError


class LRUPolicy(EvictionPolicy):
    """Evict the least-recently-used unpinned red pebble."""

    def __init__(self) -> None:
        super().__init__()
        self._last_use: dict[Node, int] = {}

    def on_load(self, node: Node, clock: int) -> None:
        self._last_use[node] = clock

    def on_access(self, node: Node, clock: int) -> None:
        self._last_use[node] = clock

    def on_evict(self, node: Node) -> None:
        self._last_use.pop(node, None)

    def choose_victim(self, red: set[Node], clock: int) -> Node | None:
        victim = None
        best = None
        for n in red:
            if n in self._pinned:
                continue
            t = self._last_use.get(n, -1)
            if best is None or t < best:
                best = t
                victim = n
        return victim


class BeladyPolicy(EvictionPolicy):
    """Evict the red pebble whose next use in the fixed schedule is furthest.

    A node's uses are the schedule positions of its successors (a red pebble
    is only ever needed again as an operand).  Positions are precomputed so
    each decision is a max over the red set with O(log) next-use lookups.
    """

    def __init__(self, g, schedule: Sequence[Node]) -> None:
        super().__init__()
        pos = {v: idx + 1 for idx, v in enumerate(schedule)}  # clock base 1
        self._uses: dict[Node, list[int]] = {}
        for v in schedule:
            p = pos[v]
            for u in g.pred[v]:
                self._uses.setdefault(u, []).append(p)
        for lst in self._uses.values():
            lst.sort()

    def _next_use(self, node: Node, clock: int) -> float:
        lst = self._uses.get(node)
        if not lst:
            return _INF
        idx = bisect_right(lst, clock)
        return lst[idx] if idx < len(lst) else _INF

    def choose_victim(self, red: set[Node], clock: int) -> Node | None:
        victim = None
        best = -1.0
        for n in red:
            if n in self._pinned:
                continue
            nu = self._next_use(n, clock)
            if nu == _INF:
                return n  # dead value: free immediately
            if nu > best:
                best = nu
                victim = n
        return victim
