"""Exact minimum-I/O red-white pebble game for tiny CDAGs.

Searches over *all* strategies — compute order, load and spill decisions —
for the minimum number of Load moves, i.e. the exact I/O complexity Q of the
CDAG under the paper's model.  This is the strongest possible anchor for the
derived bounds: on instances small enough to solve,

    derived lower bound  <=  Q_exact  <=  Belady cost of any schedule.

State space is (computed-set, red-set) over compute nodes plus red flags for
inputs; moves are Compute (free), Load (cost 1) and Spill (free), so 0-1 BFS
finds the optimum.  Exponential: guarded by ``node_limit``.
"""

from __future__ import annotations

from collections import deque
from typing import Hashable

from .. import obs
from ..cdag import CDAG

__all__ = ["exact_min_loads"]

Node = Hashable


def exact_min_loads(g: CDAG, s: int, node_limit: int = 14) -> int:
    """Exact minimum Load count over all legal red-white games.

    The game must end with every compute node white-pebbled.  Inputs start
    white (loadable at cost 1 each time they enter fast memory).
    """
    compute = sorted(g.compute_nodes(), key=repr)
    inputs = sorted(g.input_nodes(), key=repr)
    n_c, n_i = len(compute), len(inputs)
    if n_c + n_i > node_limit + 6 or n_c > node_limit:
        raise ValueError(
            f"CDAG too large for exact search ({n_c} compute, {n_i} input nodes)"
        )
    if s < 1:
        raise ValueError("S must be >= 1")

    idx_c = {n: i for i, n in enumerate(compute)}
    idx_i = {n: i for i, n in enumerate(inputs)}
    all_nodes = compute + inputs
    n_all = n_c + n_i

    # bit layout: red mask over all_nodes (compute then inputs);
    # white mask over compute nodes only
    preds_bits = []
    for n in compute:
        m = 0
        for u in g.pred[n]:
            if u in idx_c:
                m |= 1 << idx_c[u]
            else:
                m |= 1 << (n_c + idx_i[u])
        preds_bits.append(m)

    full_white = (1 << n_c) - 1

    def popcount(x: int) -> int:
        return bin(x).count("1")

    start = (0, 0)  # (white_mask, red_mask)
    dist = {start: 0}
    dq: deque = deque([(0, start)])

    def relax(nxt, nd: int, zero_cost: bool) -> None:
        if nxt not in dist or dist[nxt] > nd:
            dist[nxt] = nd
            if zero_cost:
                dq.appendleft((nd, nxt))
            else:
                dq.append((nd, nxt))

    expanded = 0
    while dq:
        d, state = dq.popleft()
        if d != dist.get(state):
            continue  # stale entry
        expanded += 1
        white, red = state
        if white == full_white:
            obs.add("pebble.states_expanded", expanded)
            return d
        red_count = popcount(red)

        # Compute moves (free): all preds red, node not white, room for red
        if red_count < s:
            for i in range(n_c):
                bit = 1 << i
                if white & bit:
                    continue
                if preds_bits[i] & red != preds_bits[i]:
                    continue
                relax((white | bit, red | bit), d, zero_cost=True)

        # Spill moves (free): drop any red pebble
        r = red
        while r:
            low = r & -r
            r ^= low
            relax((white, red ^ low), d, zero_cost=True)

        # Load moves (cost 1): red on a white compute node or an input
        if red_count < s:
            for i in range(n_all):
                bit = 1 << i
                if red & bit:
                    continue
                if i < n_c and not (white & (1 << i)):
                    continue  # value not produced yet
                relax((white, red | bit), d + 1, zero_cost=False)

    # unreachable goal: some node needs more simultaneous red pebbles than S
    obs.add("pebble.states_expanded", expanded)
    max_preds = max((popcount(p) for p in preds_bits), default=0)
    raise ValueError(
        f"no legal game with S={s}: a node has {max_preds} operands"
        f" (needs S >= {max_preds + 1})"
    )
