"""Generic blocked (left-looking) schedules from a detected hourglass.

Appendix A hand-writes tiled orderings for MGS (Figure 8) and A2V
(Figure 9).  Their common structure falls out of the hourglass
classification: process the *neutral* dimension in blocks of B; within a
block, advance the *temporal* dimension, so each temporal slice's data
(the reflector / pivot column) is loaded once per block instead of once
per neutral iteration — the factor-B saving.

:func:`hourglass_tiled_schedule` generates that order for *any* kernel with
a detected :class:`~repro.bounds.HourglassPattern`, by greedy priority
scheduling of the CDAG (always valid; the priority only shapes the order):

* a node's *neutral coordinate* is its value on the pattern's neutral dims
  when it has them, else its temporal value (diagonal work belongs to its
  own column's block);
* priority = (neutral block, temporal value, neutral value, reduction value).

On MGS this reproduces Figure 8's I/O behaviour; on GEBD2/GEHD2 — kernels
the paper gives no tiling for — it realises the same blocked reuse, which
the benches use to probe tightness beyond the appendix.
"""

from __future__ import annotations

from typing import Hashable, Mapping

from ..cdag import CDAG
from ..ir import Program
from .schedules import priority_schedule

__all__ = ["hourglass_tiled_schedule"]

Node = Hashable


def hourglass_tiled_schedule(
    g: CDAG,
    program: Program,
    pattern,
    block: int,
) -> list[Node]:
    """A valid topological order realising blocked-left-looking reuse.

    ``pattern`` is a detected HourglassPattern of ``program``; ``block`` is
    the neutral-dimension block size B.
    """
    if block < 1:
        raise ValueError("block size must be >= 1")
    dim_index: dict[str, dict[str, int]] = {}
    for st in program.statements:
        dim_index[st.name] = {d: i for i, d in enumerate(st.dims)}

    temporal = pattern.temporal
    neutral = pattern.neutral
    reduction = pattern.reduction

    def coords(node) -> tuple:
        stmt, point = node
        idx = dim_index.get(stmt, {})

        def val(dims) -> int | None:
            if all(d in idx for d in dims) and dims:
                return point[idx[dims[0]]]
            return None

        t = val(temporal)
        n = val(neutral)
        r = val(reduction)
        if n is None:
            # diagonal / reflector work belongs to its own temporal column
            n = t if t is not None else 0
        if t is None:
            t = n
        return (n // block, t, n, r if r is not None else -1)

    return priority_schedule(g, lambda node: coords(node))
