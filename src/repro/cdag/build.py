"""CDAG construction — from declared polyhedral dependences and from traces.

Two independent builders produce the same graph through different routes:

* :func:`cdag_from_program` instantiates the *declared* affine dependence
  relations of a :class:`~repro.ir.Program` at concrete parameter values;
* :func:`cdag_from_trace` replays an instrumented execution and applies
  last-writer (exact dataflow) analysis.

Their agreement, checked by :mod:`repro.cdag.check`, is the repository's
ground-truth test that the polyhedral specs transcribe the figures correctly.
"""

from __future__ import annotations

from typing import Mapping

from ..ir import Program, Tracer
from .graph import CDAG, INPUT

__all__ = ["cdag_from_program", "cdag_from_trace", "cdag_from_dataflow", "build_cdag"]


def cdag_from_program(program: Program, params: Mapping[str, int]) -> CDAG:
    """Instantiate the declared dependences of ``program`` at ``params``.

    Compute–compute edges come from the declared :class:`Dependence` maps.
    Input edges are inferred: a read by instance ``u`` of element ``e`` is an
    *input read* iff no declared dependence delivers ``e`` to ``u``; such
    reads get an edge from the input node ``(INPUT, e)``.
    """
    g = CDAG()
    domains = {s.name: s.domain() for s in program.statements}
    points = {
        name: set(dom.points(params)) for name, dom in domains.items()
    }
    for name, pts in points.items():
        for p in pts:
            g.add_node((name, p))

    # (consumer node, element) pairs covered by a declared dependence
    covered: set[tuple[tuple, tuple]] = set()

    for dep in program.deps:
        src_stmt = program.statement(dep.src)
        for p in points[dep.src]:
            for q in dep.map.apply_all(p, params):
                if q not in points[dep.tgt]:
                    continue
                u = (dep.src, p)
                v = (dep.tgt, q)
                if u == v:
                    raise ValueError(f"self-loop from dependence {dep!r} at {p}")
                g.add_edge(u, v)
                if dep.via:
                    # element carried: the value written by the source instance
                    env = dict(params)
                    env.update(zip(src_stmt.dims, p))
                    for w in src_stmt.writes:
                        if w.array == dep.via:
                            covered.add((v, w.eval(env)))

    # infer input edges from uncovered reads
    for stmt in program.statements:
        dims = stmt.dims
        for p in points[stmt.name]:
            env = dict(params)
            env.update(zip(dims, p))
            v = (stmt.name, p)
            for r in stmt.reads:
                e = r.eval(env)
                if (v, e) not in covered:
                    g.add_edge((INPUT, e), v)

    # program outputs: last writers of output arrays (approximated as all
    # instances writing an output array element not overwritten later is
    # schedule-dependent; we mark every writer of output arrays, which is
    # what the pebble game needs: outputs must end white-pebbled, and every
    # node must anyway be computed)
    out_arrays = set(program.outputs)
    if out_arrays:
        for stmt in program.statements:
            if any(w.array in out_arrays for w in stmt.writes):
                for p in points[stmt.name]:
                    g.outputs.add((stmt.name, p))
    return g


def cdag_from_dataflow(program: Program, params: Mapping[str, int]) -> CDAG:
    """CDAG via exact spec-level dataflow replay (no declared dep list needed).

    This instantiates the declared domains/accesses/schedules through
    :func:`repro.ir.dataflow_trace` and applies last-writer analysis — the
    dependence-analysis route an IOLB-like tool takes when the user supplies
    only the program text.
    """
    from ..ir import dataflow_trace

    g = cdag_from_trace(dataflow_trace(program, params))
    _mark_outputs(g, program, params)
    return g


def build_cdag(program: Program, params: Mapping[str, int]) -> CDAG:
    """Preferred builder: declared dependences when present, dataflow otherwise."""
    if program.deps:
        return cdag_from_program(program, params)
    return cdag_from_dataflow(program, params)


def _mark_outputs(g: CDAG, program: Program, params: Mapping[str, int]) -> None:
    out_arrays = set(program.outputs)
    if not out_arrays:
        return
    for stmt in program.statements:
        if any(w.array in out_arrays for w in stmt.writes):
            for p in stmt.domain().points(params):
                node = (stmt.name, p)
                if node in g:
                    g.outputs.add(node)


def cdag_from_trace(trace: Tracer) -> CDAG:
    """Exact CDAG from an instrumented execution (last-writer analysis)."""
    g = CDAG()
    for key in trace.schedule:
        g.add_node(key)
    for producer, consumer, _elem in trace.flow_edges:
        g.add_edge(producer, consumer)
    return g
