"""Computational DAGs: construction, validation, proof-level vocabulary."""

from .build import build_cdag, cdag_from_dataflow, cdag_from_program, cdag_from_trace
from .check import CdagDiff, check_program_deps, check_spec_matches_runner, compare_cdags
from .graph import CDAG, INPUT

__all__ = [
    "CDAG",
    "INPUT",
    "build_cdag",
    "cdag_from_dataflow",
    "cdag_from_program",
    "cdag_from_trace",
    "CdagDiff",
    "check_program_deps",
    "check_spec_matches_runner",
    "compare_cdags",
]
