"""The Computational DAG (CDAG) of the red-white pebble game.

Nodes are statement instances ``(stmt_name, iteration_vector)``; program
inputs are modelled as nodes ``("_input", element_address)`` with no
predecessors, exactly as in §2 of the paper.  Edges are flow dependences.

The class keeps plain-dict adjacency (fast enough for the sizes the pebble
game can handle) and offers the graph-theoretic vocabulary the proofs use:
sources, topological orders, convexity of node subsets, in-sets of subsets.
"""

from __future__ import annotations

from collections import deque
from typing import Hashable, Iterable, Iterator, Sequence

__all__ = ["CDAG", "INPUT"]

INPUT = "_input"
Node = Hashable


class CDAG:
    """A directed acyclic graph of statement instances and input elements."""

    __slots__ = ("succ", "pred", "outputs")

    def __init__(self) -> None:
        self.succ: dict[Node, set[Node]] = {}
        self.pred: dict[Node, set[Node]] = {}
        self.outputs: set[Node] = set()

    # -- construction ------------------------------------------------------
    def add_node(self, n: Node) -> None:
        if n not in self.succ:
            self.succ[n] = set()
            self.pred[n] = set()

    def add_edge(self, u: Node, v: Node) -> None:
        self.add_node(u)
        self.add_node(v)
        self.succ[u].add(v)
        self.pred[v].add(u)

    # -- basic queries ------------------------------------------------------
    def __contains__(self, n: Node) -> bool:
        return n in self.succ

    def __len__(self) -> int:
        return len(self.succ)

    @property
    def nodes(self) -> Iterator[Node]:
        return iter(self.succ)

    def n_edges(self) -> int:
        return sum(len(s) for s in self.succ.values())

    def sources(self) -> list[Node]:
        return [n for n, p in self.pred.items() if not p]

    def sinks(self) -> list[Node]:
        return [n for n, s in self.succ.items() if not s]

    def input_nodes(self) -> list[Node]:
        return [n for n in self.succ if isinstance(n, tuple) and n and n[0] == INPUT]

    def compute_nodes(self) -> list[Node]:
        return [
            n for n in self.succ if not (isinstance(n, tuple) and n and n[0] == INPUT)
        ]

    # -- order / validity ---------------------------------------------------
    def topological_order(self) -> list[Node]:
        """Kahn's algorithm; raises on cycles."""
        indeg = {n: len(p) for n, p in self.pred.items()}
        q = deque(n for n, d in indeg.items() if d == 0)
        out: list[Node] = []
        while q:
            n = q.popleft()
            out.append(n)
            for m in self.succ[n]:
                indeg[m] -= 1
                if indeg[m] == 0:
                    q.append(m)
        if len(out) != len(self.succ):
            raise ValueError("CDAG contains a cycle")
        return out

    def is_valid_schedule(self, schedule: Sequence[Node]) -> bool:
        """True iff schedule is a topological order of the compute nodes.

        Input nodes are implicitly available from the start and may be
        omitted from the schedule.
        """
        pos: dict[Node, int] = {}
        for i, n in enumerate(schedule):
            if n in pos:
                return False
            pos[n] = i
        compute = set(self.compute_nodes())
        if set(pos) != compute:
            return False
        for v in compute:
            for u in self.pred[v]:
                if u in compute and pos[u] >= pos[v]:
                    return False
        return True

    # -- proof-related vocabulary -----------------------------------------
    def in_set(self, subset: Iterable[Node]) -> set[Node]:
        """InSet(E): data used by E but not produced inside E.

        With unit-size values, that is the set of predecessors of E's nodes
        lying outside E (input nodes included).
        """
        E = set(subset)
        out: set[Node] = set()
        for v in E:
            for u in self.pred.get(v, ()):
                if u not in E:
                    out.add(u)
        return out

    def out_set(self, subset: Iterable[Node]) -> set[Node]:
        """Nodes of E whose value is used outside E (or are program outputs)."""
        E = set(subset)
        out: set[Node] = set()
        for u in E:
            if u in self.outputs:
                out.add(u)
                continue
            for v in self.succ.get(u, ()):
                if v not in E:
                    out.add(u)
                    break
        return out

    def is_convex(self, subset: Iterable[Node]) -> bool:
        """True iff every dependence path between two nodes of E stays in E.

        Checked by forward reachability: for each node of E, anything
        reachable through a node outside E must not re-enter E... more
        directly, E is convex iff no path u -> x -> v with u, v in E and
        x not in E.  We test by BFS from E's out-neighbours outside E.
        """
        E = set(subset)
        # nodes outside E directly reachable from E
        frontier = {
            x for u in E for x in self.succ.get(u, ()) if x not in E
        }
        seen = set(frontier)
        q = deque(frontier)
        while q:
            x = q.popleft()
            for y in self.succ.get(x, ()):
                if y in E:
                    return False
                if y not in seen:
                    seen.add(y)
                    q.append(y)
        return True

    def convex_closure(self, subset: Iterable[Node]) -> set[Node]:
        """Smallest convex superset: add all nodes on paths between members.

        Computed by iterating: x joins if x is reachable from E and E is
        reachable from x.  Exponential-free but O(V*E) worst case — fine for
        the small CDAGs used in validation.
        """
        E = set(subset)
        changed = True
        while changed:
            changed = False
            reach_from_E = self._reachable_from(E)
            reach_to_E = self._reaching_to(E)
            extra = (reach_from_E & reach_to_E) - E
            if extra:
                E |= extra
                changed = True
        return E

    def _reachable_from(self, srcs: set[Node]) -> set[Node]:
        seen = set()
        q = deque(srcs)
        while q:
            u = q.popleft()
            for v in self.succ.get(u, ()):
                if v not in seen:
                    seen.add(v)
                    q.append(v)
        return seen

    def _reaching_to(self, tgts: set[Node]) -> set[Node]:
        seen = set()
        q = deque(tgts)
        while q:
            v = q.popleft()
            for u in self.pred.get(v, ()):
                if u not in seen:
                    seen.add(u)
                    q.append(u)
        return seen

    def has_path(self, u: Node, v: Node) -> bool:
        if u == v:
            return True
        seen = {u}
        q = deque([u])
        while q:
            x = q.popleft()
            for y in self.succ.get(x, ()):
                if y == v:
                    return True
                if y not in seen:
                    seen.add(y)
                    q.append(y)
        return False

    def nodes_on_paths(self, u: Node, v: Node) -> set[Node]:
        """All nodes lying on some dependence path from u to v (inclusive)."""
        from_u = self._reachable_from({u}) | {u}
        to_v = self._reaching_to({v}) | {v}
        return from_u & to_v if self.has_path(u, v) else set()

    # -- export --------------------------------------------------------------
    def to_networkx(self):
        """Export to a networkx.DiGraph (for analyses/visualisation)."""
        import networkx as nx

        g = nx.DiGraph()
        g.add_nodes_from(self.succ)
        for u, ss in self.succ.items():
            for v in ss:
                g.add_edge(u, v)
        return g
