"""Cross-validation of declared polyhedral dependences against traces.

For small concrete parameters, the CDAG instantiated from a kernel's declared
affine dependences must equal (edge-for-edge) the CDAG derived from an
instrumented run of the matching Python implementation.  A mismatch means the
polyhedral spec mistranscribes the figure — every kernel in the registry is
gated on this check in the test-suite.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Mapping

from ..ir import Program, Tracer
from .build import cdag_from_program, cdag_from_trace
from .graph import CDAG

__all__ = ["CdagDiff", "compare_cdags", "check_program_deps"]


@dataclass
class CdagDiff:
    """Difference report between a declared and a trace CDAG."""

    missing_edges: set = field(default_factory=set)  # in trace, not declared
    extra_edges: set = field(default_factory=set)  # declared, not in trace
    missing_nodes: set = field(default_factory=set)
    extra_nodes: set = field(default_factory=set)

    def ok(self) -> bool:
        return not (
            self.missing_edges
            or self.extra_edges
            or self.missing_nodes
            or self.extra_nodes
        )

    def summary(self, limit: int = 5) -> str:
        if self.ok():
            return "CDAGs identical"
        parts = []
        for label, items in (
            ("missing edges", self.missing_edges),
            ("extra edges", self.extra_edges),
            ("missing nodes", self.missing_nodes),
            ("extra nodes", self.extra_nodes),
        ):
            if items:
                shown = list(items)[:limit]
                parts.append(f"{label} ({len(items)}): {shown}")
        return "; ".join(parts)


def _edge_set(g: CDAG) -> set:
    return {(u, v) for u, ss in g.succ.items() for v in ss}


def compare_cdags(declared: CDAG, traced: CDAG) -> CdagDiff:
    """Edge-for-edge, node-for-node comparison."""
    de, te = _edge_set(declared), _edge_set(traced)
    dn, tn = set(declared.succ), set(traced.succ)
    return CdagDiff(
        missing_edges=te - de,
        extra_edges=de - te,
        missing_nodes=tn - dn,
        extra_nodes=dn - tn,
    )


def check_program_deps(
    program: Program, params: Mapping[str, int]
) -> CdagDiff:
    """Run the kernel instrumented and diff spec-side vs traced CDAG.

    The spec-side CDAG comes from the declared dependence list when the
    program has one, from exact dataflow replay of the declared accesses
    otherwise.
    """
    from .build import build_cdag

    if program.runner is None:
        raise ValueError(f"program {program.name!r} has no runner")
    tracer = Tracer()
    program.runner(dict(params), tracer)
    spec_side = build_cdag(program, params)
    traced = cdag_from_trace(tracer)
    return compare_cdags(spec_side, traced)


def check_spec_matches_runner(
    program: Program, params: Mapping[str, int]
) -> tuple[bool, str]:
    """Strongest check: the IR dataflow replay must reproduce the runner's
    instrumented event stream *exactly* (same statement order, same reads and
    writes in the same sequence)."""
    from ..ir import dataflow_trace

    if program.runner is None:
        raise ValueError(f"program {program.name!r} has no runner")
    t_run = Tracer()
    program.runner(dict(params), t_run)
    t_df = dataflow_trace(program, params)
    if t_df.schedule != t_run.schedule:
        for a, b in zip(t_df.schedule, t_run.schedule):
            if a != b:
                return False, f"schedule diverges: spec {a} vs runner {b}"
        return False, (
            f"schedule lengths differ: spec {len(t_df.schedule)}"
            f" vs runner {len(t_run.schedule)}"
        )
    if t_df.events != t_run.events:
        for idx, (a, b) in enumerate(zip(t_df.events, t_run.events)):
            if a != b:
                return False, f"event {idx} diverges: spec {a} vs runner {b}"
        return False, (
            f"event counts differ: spec {len(t_df.events)}"
            f" vs runner {len(t_run.events)}"
        )
    return True, "spec and runner traces identical"
