"""Plain-text table rendering for Figure 4 / Figure 5 style reports."""

from __future__ import annotations

from typing import Mapping, Sequence

__all__ = ["render_table", "format_number"]


def format_number(x, sig: int = 4) -> str:
    """Compact human formatting: ints verbatim, floats to sig digits, None as '-'."""
    if x is None:
        return "-"
    if isinstance(x, bool):
        return str(x)
    if isinstance(x, int):
        return str(x)
    try:
        xf = float(x)
    except (TypeError, ValueError):
        return str(x)
    if xf == 0:
        return "0"
    if abs(xf) >= 1e6 or abs(xf) < 1e-3:
        return f"{xf:.{sig - 1}e}"
    return f"{xf:.{sig}g}"


def render_table(
    headers: Sequence[str],
    rows: Sequence[Sequence],
    title: str = "",
) -> str:
    """Fixed-width text table (the benches print these to stdout)."""
    cells = [[format_number(c) if not isinstance(c, str) else c for c in r] for r in rows]
    widths = [len(h) for h in headers]
    for r in cells:
        for i, c in enumerate(r):
            widths[i] = max(widths[i], len(c))
    sep = "-+-".join("-" * w for w in widths)
    out = []
    if title:
        out.append(title)
    out.append(" | ".join(h.ljust(w) for h, w in zip(headers, widths)))
    out.append(sep)
    for r in cells:
        out.append(" | ".join(c.ljust(w) for c, w in zip(r, widths)))
    return "\n".join(out)
