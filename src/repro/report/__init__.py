"""Rendering of evaluation tables (Figure 4 / Figure 5 style)."""

from .figures import default_regime, fig4_rows, fig5_rows, render_fig4, render_fig5
from .tables import format_number, render_table

__all__ = [
    "default_regime",
    "fig4_rows",
    "fig5_rows",
    "render_fig4",
    "render_fig5",
    "format_number",
    "render_table",
]
