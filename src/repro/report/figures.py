"""Regeneration of the paper's evaluation artifacts (Figures 4 and 5).

These functions produce the same *rows* the paper's tables report — the
old (classical) and new (hourglass) bounds per kernel — from our engine and
from the transcribed catalog, so the benches can print them side by side.
"""

from __future__ import annotations

import math
from typing import Mapping, Sequence

from ..bounds import FIG4, FIG5_NEW, FIG5_OLD, DerivationReport, derive
from ..kernels import KERNELS, PAPER_KERNELS
from ..symbolic import Regime, growth_exponent
from .tables import render_table

__all__ = ["fig4_rows", "fig5_rows", "render_fig4", "render_fig5", "default_regime"]


def default_regime(kernel: str) -> Regime:
    """The paper's comparison regime: tall matrices, cache ~ sqrt(scale)."""
    if kernel == "gehd2":
        return Regime(
            {"N": lambda t: t, "S": lambda t: math.sqrt(t)}, name="N=t,S=sqrt(t)"
        )
    return Regime(
        {
            "M": lambda t: 4 * t,
            "N": lambda t: t,
            "S": lambda t: math.sqrt(t),
        },
        name="M=4t,N=t,S=sqrt(t)",
    )


def fig4_rows(
    reports: Mapping[str, DerivationReport] | None = None,
    eval_params: Mapping[str, Mapping[str, int]] | None = None,
) -> list[list]:
    """Figure 4 rows: kernel, paper old/new at eval point, engine old/new,
    and the measured asymptotic improvement exponent new/old."""
    if reports is None:
        reports = {k: derive(KERNELS[k]) for k in PAPER_KERNELS}
    rows = []
    for name in PAPER_KERNELS:
        rep = reports[name]
        env = dict(eval_params[name]) if eval_params else _default_env(name)
        paper_old = FIG4[name]["old"].evaluate(env)
        paper_new = FIG4[name]["new"].evaluate(env)
        engine_old = rep.classical.evaluate(env)
        engine_new, _ = _engine_new(rep, env)
        regime = default_regime(name)
        exp = growth_exponent(
            FIG4[name]["new"].expr, FIG4[name]["old"].expr, regime
        )
        rows.append(
            [
                name,
                paper_old,
                paper_new,
                engine_old,
                engine_new,
                f"t^{exp:.2f}",
            ]
        )
    return rows


def _engine_new(rep: DerivationReport, env: Mapping[str, int]):
    cands = []
    if rep.hourglass:
        cands.append(rep.hourglass)
    cands.extend(rep.hourglass_split)
    best, val = None, float("-inf")
    for b in cands:
        try:
            v = b.evaluate(env)
        except (ZeroDivisionError, KeyError):
            continue
        if v > val:
            best, val = b, v
    return (val if best else float("nan")), best


def _default_env(name: str) -> dict[str, int]:
    # reference point inside the regime where the hourglass bound binds
    # (GEHD2's improvement factor is ~ sqrt(S)*N/(20*(N/2+S)): it needs
    # S >> 100 and S << N simultaneously)
    if name == "gehd2":
        return {"N": 4000, "S": 1024}
    return {"M": 4000, "N": 1000, "S": 1024}


def render_fig4(**kw) -> str:
    """Figure 4 as a text table (see fig4_rows for the columns)."""
    rows = fig4_rows(**kw)
    return render_table(
        ["kernel", "paper old", "paper new", "engine old", "engine new", "new/old growth"],
        rows,
        title="Figure 4: asymptotic lower bounds (evaluated at the reference point)",
    )


def fig5_rows(
    eval_params: Mapping[str, Mapping[str, int]] | None = None,
) -> list[list]:
    """Figure 5 rows: the full published formulas, old vs new, with the
    concrete improvement ratio at the evaluation point."""
    rows = []
    for name in PAPER_KERNELS:
        env = dict(eval_params[name]) if eval_params else _default_env(name)
        old = FIG5_OLD[name].evaluate(env)
        new = FIG5_NEW[name].evaluate(env)
        rows.append([name, old, new, new / old if old else float("nan")])
    return rows


def render_fig5(**kw) -> str:
    """Figure 5 as a text table (see fig5_rows for the columns)."""
    rows = fig5_rows(**kw)
    return render_table(
        ["kernel", "fig5 old bound", "fig5 new bound", "improvement"],
        rows,
        title="Figure 5: full parametric bounds (with constants)",
    )
