"""Load generator for the derivation service (bench workloads + CI smoke).

Fires a burst of ``iolb-serve/1`` requests at a running server from
``concurrency`` client threads over plain ``urllib`` (stdlib only, like
everything else here) and reports what an operator would ask first:
status mix, error bodies, p50/p99 client-side latency, and throughput.

:func:`mixed_burst` builds the standing small burst used by the
``serve.*`` bench workloads and the CI smoke script: a few distinct
derive/simulate points, each repeated, so one burst exercises the memo
backend, coalescing (at ``concurrency > 1``), and both executors.
"""

from __future__ import annotations

import json
import threading
import time
import urllib.error
import urllib.request
from dataclasses import dataclass, field

__all__ = ["LoadReport", "run_load", "mixed_burst"]


@dataclass
class LoadReport:
    """Outcome of one generated burst."""

    statuses: list[int] = field(default_factory=list)
    latencies_ms: list[float] = field(default_factory=list)
    errors: list[str] = field(default_factory=list)
    responses: list[dict] = field(default_factory=list)
    wall_s: float = 0.0

    def ok(self) -> bool:
        return not self.errors and all(s == 200 for s in self.statuses)

    def percentile(self, p: float) -> float:
        xs = sorted(self.latencies_ms)
        if not xs:
            return 0.0
        i = min(len(xs) - 1, max(0, round(p / 100.0 * (len(xs) - 1))))
        return xs[i]

    @property
    def rps(self) -> float:
        return len(self.statuses) / self.wall_s if self.wall_s > 0 else 0.0

    def summary(self) -> str:
        from collections import Counter

        mix = ", ".join(
            f"{n}x{code}" for code, n in sorted(Counter(self.statuses).items())
        )
        return (
            f"{len(self.statuses)} request(s) in {self.wall_s:.3f}s"
            f" ({self.rps:.1f} req/s): [{mix}]"
            f" p50={self.percentile(50):.1f}ms p99={self.percentile(99):.1f}ms"
            + (f" errors={len(self.errors)}" if self.errors else "")
        )


def mixed_burst(repeat: int = 2) -> list[dict]:
    """The standing mixed workload: distinct derive/simulate points, each
    issued ``repeat`` times (adjacent, so sequential runs hit the backend
    and concurrent runs coalesce)."""
    distinct = [
        {"kind": "derive", "payload": {"kernel": "mgs"}},
        {"kind": "derive", "payload": {"kernel": "matmul"}},
        {
            "kind": "simulate",
            "payload": {"kernel": "matmul", "params": {"NI": 4, "NJ": 4, "NK": 4}, "s": 16},
        },
        {
            "kind": "simulate",
            "payload": {"kernel": "mgs", "params": {"M": 5, "N": 4}, "s": 12},
        },
    ]
    return [req for req in distinct for _ in range(repeat)]


def _post(base_url: str, req: dict, timeout: float) -> tuple[int, float, dict]:
    body = json.dumps(req.get("payload", {})).encode()
    http_req = urllib.request.Request(
        f"{base_url}/v1/{req['kind']}",
        data=body,
        headers={"Content-Type": "application/json"},
        method="POST",
    )
    t0 = time.perf_counter()
    try:
        with urllib.request.urlopen(http_req, timeout=timeout) as resp:
            status = resp.status
            doc = json.loads(resp.read().decode())
    except urllib.error.HTTPError as e:
        status = e.code
        try:
            doc = json.loads(e.read().decode())
        except ValueError:
            doc = {"error": str(e)}
    return status, (time.perf_counter() - t0) * 1e3, doc


def run_load(
    base_url: str,
    requests: list[dict],
    *,
    concurrency: int = 4,
    timeout: float = 120.0,
) -> LoadReport:
    """Fire ``requests`` (``{"kind": ..., "payload": {...}}`` each) at the
    server from ``concurrency`` threads; order within a thread follows the
    burst order, threads interleave.  Transport-level failures are recorded
    in ``report.errors`` (HTTP error *statuses* are not — they land in
    ``statuses`` for the caller to assert on)."""
    if concurrency < 1:
        raise ValueError("concurrency must be >= 1")
    report = LoadReport()
    lock = threading.Lock()
    next_i = [0]

    def client() -> None:
        while True:
            with lock:
                i = next_i[0]
                if i >= len(requests):
                    return
                next_i[0] += 1
            try:
                status, ms, doc = _post(base_url, requests[i], timeout)
            except Exception as e:  # noqa: BLE001 — transport errors are data
                with lock:
                    report.errors.append(f"{requests[i]['kind']}: {e}")
                continue
            with lock:
                report.statuses.append(status)
                report.latencies_ms.append(ms)
                report.responses.append(doc)

    t0 = time.perf_counter()
    threads = [
        threading.Thread(target=client, name=f"loadgen-{i}")
        for i in range(min(concurrency, len(requests)))
    ]
    for t in threads:
        t.start()
    for t in threads:
        t.join()
    report.wall_s = time.perf_counter() - t0
    return report
