"""The sharded, batched worker pool behind ``iolb serve``.

Layout: ``workers`` OS processes, each owning one **bounded** request
queue.  The dispatcher routes a job to the queue whose index is the
request key's hash modulo the worker count, so identical and near-identical
work always lands on the same worker — together with the server-side
coalescing this makes K concurrent identical requests cost exactly one
derivation, and keeps each worker's per-process ``lru_cache`` of
derivation reports hot for its shard of the keyspace.

Workers **micro-batch**: after blocking on their queue they drain up to
``batch_max - 1`` more jobs and run the whole batch before touching the
queue again, amortizing queue wakeups under load (the
near-optimal-LU-style parameter sweeps that motivated the service arrive
in exactly such runs of adjacent points).

Every job is wrapped in :func:`repro.obs.capture_counters`, so the engine
work counters it generated in the worker process (simulated events, FM
eliminations, pebble nodes…) travel back over the result channel and are
merged into the server's registry — the same mechanism that fixed the
silently-dropped worker counters of ``tune_block_size(jobs=N)``.

A full shard queue raises :class:`queue.Full` out of :meth:`WorkerPool.submit`
(the server maps it to HTTP 503): bounded queues are the backpressure story,
an unbounded queue would just convert overload into unbounded latency.
"""

from __future__ import annotations

import multiprocessing
import queue
import threading
from typing import Callable

from ..obs import core as obs_core
from . import protocol

__all__ = ["WorkerPool"]

#: worker loop poll granularity (also the shutdown latency bound), seconds
_POLL_S = 0.1


def _worker_main(inq, outq, batch_max: int) -> None:
    """One worker process: drain batches, execute, ship results + counters.

    Result tuples are ``(job_id, ok, result, counters, batch_size)``;
    ``batch_size`` is > 0 only on the first job of a batch so the collector
    can count batches without a separate control channel.  The worker never
    dies on a job failure — the error travels back as a result.
    """
    while True:
        job = inq.get()
        if job is None:
            return
        batch = [job]
        while len(batch) < batch_max:
            try:
                nxt = inq.get_nowait()
            except queue.Empty:
                break
            if nxt is None:
                _run_batch(batch, outq)
                return
            batch.append(nxt)
        _run_batch(batch, outq)


def _run_batch(batch, outq) -> None:
    for i, (job_id, kind, payload) in enumerate(batch):
        snapshot: dict[str, int] = {}
        try:
            with obs_core.capture_counters(snapshot):
                result = protocol.execute_request(kind, payload)
            ok = True
        except Exception as e:  # noqa: BLE001 — workers must survive anything
            ok = False
            result = {"error": f"{type(e).__name__}: {e}"}
        outq.put((job_id, ok, result, snapshot, len(batch) if i == 0 else 0))


class WorkerPool:
    """Sharded multiprocessing pool with bounded per-shard queues.

    ``submit`` never blocks: it either enqueues or raises ``queue.Full``.
    Results arrive on a single shared queue consumed by a collector thread
    (started via :meth:`start_collector`) which invokes the provided
    callback for each ``(job_id, ok, result, counters)``.
    """

    def __init__(
        self,
        workers: int = 2,
        *,
        queue_cap: int = 128,
        batch_max: int = 8,
    ) -> None:
        if workers < 1:
            raise ValueError("workers must be >= 1")
        if queue_cap < 1:
            raise ValueError("queue_cap must be >= 1")
        if batch_max < 1:
            raise ValueError("batch_max must be >= 1")
        methods = multiprocessing.get_all_start_methods()
        ctx = multiprocessing.get_context("fork" if "fork" in methods else None)
        self.workers = workers
        self.batch_max = batch_max
        self._inqs = [ctx.Queue(maxsize=queue_cap) for _ in range(workers)]
        self._outq = ctx.Queue()
        self._procs = [
            ctx.Process(
                target=_worker_main,
                args=(self._inqs[i], self._outq, batch_max),
                daemon=True,
                name=f"iolb-serve-worker-{i}",
            )
            for i in range(workers)
        ]
        for p in self._procs:
            p.start()
        self._collector: threading.Thread | None = None
        self._stopping = threading.Event()

    # -- dispatch ----------------------------------------------------------
    def shard_of(self, key: str) -> int:
        """Stable shard index of one request key (leading hash bits)."""
        return int(key[:16], 16) % self.workers

    def submit(self, job_id: int, key: str, kind: str, payload: dict) -> int:
        """Enqueue one job on its shard; raises ``queue.Full`` when bounded
        out.  Returns the shard index it landed on."""
        shard = self.shard_of(key)
        self._inqs[shard].put_nowait((job_id, kind, payload))
        return shard

    def depth(self) -> int:
        """Approximate total queued jobs across shards (0 if unsupported)."""
        total = 0
        for q in self._inqs:
            try:
                total += q.qsize()
            except NotImplementedError:  # macOS
                return 0
        return total

    # -- results -----------------------------------------------------------
    def start_collector(
        self, on_result: Callable[[int, bool, dict, dict, int], None]
    ) -> None:
        """Start the result-collector thread; idempotent."""
        if self._collector is not None:
            return

        def loop() -> None:
            while not self._stopping.is_set():
                try:
                    item = self._outq.get(timeout=_POLL_S)
                except queue.Empty:
                    continue
                on_result(*item)

        self._collector = threading.Thread(
            target=loop, daemon=True, name="iolb-serve-collector"
        )
        self._collector.start()

    # -- lifecycle ---------------------------------------------------------
    def close(self, timeout: float = 5.0) -> None:
        """Stop workers (sentinel + join, terminate stragglers) and collector."""
        for q in self._inqs:
            try:
                q.put_nowait(None)
            except queue.Full:
                pass
        for p in self._procs:
            p.join(timeout=timeout)
            if p.is_alive():
                p.terminate()
                p.join(timeout=1.0)
        self._stopping.set()
        if self._collector is not None:
            self._collector.join(timeout=timeout)
            self._collector = None
        for q in [*self._inqs, self._outq]:
            q.close()
            q.join_thread()
