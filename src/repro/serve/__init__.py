"""repro.serve — the sharded, batched derivation service (``iolb serve``).

The whole hourglass pipeline (derive / simulate / tune / lint) as a
long-running stdlib-only HTTP+JSON service.  The workload profile of
IOLB-style automated bound derivation is that the same (kernel, params)
points recur constantly, so the architecture is built around a
content-addressed result backend and request deduplication rather than
raw per-request speed:

* :mod:`repro.serve.protocol` — the ``iolb-serve/1`` request kinds, the
  canonicalization + content-hash :func:`~repro.serve.protocol.request_key`
  every layer keys on, and the pure executors;
* :mod:`repro.serve.pool` — the multiprocessing worker pool, sharded by
  request key with bounded per-shard queues and micro-batching; workers
  ship their obs counter snapshots back with every result;
* :mod:`repro.serve.server` — the ``ThreadingHTTPServer`` front:
  coalescing of in-flight identical requests, the
  :class:`~repro.cache.JsonCache` result backend (TTL + size eviction,
  warm-start preloading), and always-on ``iolb-metrics/1`` telemetry
  (p50/p99 latency, queue depth, hit rate);
* :mod:`repro.serve.loadgen` — the burst generator behind the ``serve.*``
  bench workloads and the CI smoke gate.

See ``docs/SERVE.md`` for endpoints, JSON schemas, and the ops runbook.
"""

from .loadgen import LoadReport, mixed_burst, run_load
from .pool import WorkerPool
from .protocol import (
    KINDS,
    SERVE_SCHEMA,
    ServeRequestError,
    canonical_request,
    execute_request,
    request_key,
)
from .server import IolbServer

__all__ = [
    "SERVE_SCHEMA",
    "KINDS",
    "ServeRequestError",
    "canonical_request",
    "request_key",
    "execute_request",
    "WorkerPool",
    "IolbServer",
    "LoadReport",
    "run_load",
    "mixed_burst",
]
