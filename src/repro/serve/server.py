"""The HTTP+JSON front of the derivation service (``iolb serve``).

A ``ThreadingHTTPServer`` accepts requests and a sharded
:class:`~repro.serve.pool.WorkerPool` executes them (or, with
``workers=0``, the HTTP thread executes inline — handy for tests and
single-tenant use).  Between the two sit the three mechanisms that turn
O(requests) into O(distinct keys) work:

* **result backend** — every result is stored in a
  :class:`~repro.cache.JsonCache` under its request key; a repeated
  request is answered from disk (or from memory after warm-start
  preloading) without touching the pipeline;
* **coalescing** — identical requests *in flight* share one pending slot:
  the first dispatches, the rest wait on its completion event and receive
  the same result (counter ``serve.coalesced``);
* **bounded queues** — a full shard queue answers 503 immediately
  (counter ``serve.queue_full``) instead of converting overload into
  unbounded latency.

Telemetry is first-class and always on: the server owns a **private**
:class:`~repro.obs.core.Registry` (independent of the CLI ``--profile``
flag), records one span per request plus request/hit/coalesce/error
counters, merges the engine work counters shipped back from worker
processes, and exposes everything as a standard ``iolb-metrics/1`` dump on
``GET /v1/metrics`` — so ``iolb stats`` and the CI artifact tooling work
on a service dump exactly as on a CLI profile.  p50/p99 latency, queue
depth, and hit rate are maintained as gauges over a sliding latency
window.

Every response carries an ``X-Iolb-Request-Id`` header (the request-key
prefix plus a monotonic sequence number) and emits one structured access
log line on stderr — method, path, key, status, latency in µs, and the
cache-hit/coalesced flag — so a failed request in a client log correlates
directly with pool-side errors and the ``serve.*`` span of the same key.

Endpoints::

    POST /v1/derive | /v1/simulate | /v1/tune | /v1/lint
    GET  /healthz      liveness + queue depth
    GET  /v1/stats     compact operational summary (JSON)
    GET  /v1/metrics   full iolb-metrics/1 dump
    GET  /status       live HTML explorer page (repro.obs.explore)
    GET  /status.json  the stats + metrics the page is rendered from
"""

from __future__ import annotations

import collections
import hashlib
import itertools
import json
import queue
import sys
import threading
import time
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer
from typing import Mapping

from ..cache.memo import JsonCache
from ..obs.core import Registry
from ..obs.sinks import metrics_dict
from . import protocol
from .pool import WorkerPool

__all__ = ["IolbServer"]

#: sliding window of per-request latencies backing the percentile gauges
_LATENCY_WINDOW = 4096

#: spans kept in the private registry (one per request; oldest pruned)
_SPAN_WINDOW = 2048


def _percentile(sorted_xs, p: float) -> float:
    """Nearest-rank percentile of an already-sorted sequence (0 if empty)."""
    if not sorted_xs:
        return 0.0
    i = min(len(sorted_xs) - 1, max(0, round(p / 100.0 * (len(sorted_xs) - 1))))
    return sorted_xs[i]


class _Pending:
    """One in-flight request key: an event plus the eventual outcome."""

    __slots__ = ("event", "ok", "result")

    def __init__(self) -> None:
        self.event = threading.Event()
        self.ok = False
        self.result: dict = {}

    def resolve(self, ok: bool, result: dict) -> None:
        self.ok = ok
        self.result = result
        self.event.set()


class IolbServer:
    """The derivation service: HTTP front, worker pool, result backend.

    ``workers=0`` executes requests inline on the HTTP threads (no
    processes; engine counters are then only recorded if the global obs
    registry is enabled).  ``memo_dir=None`` disables the result backend —
    coalescing still deduplicates concurrent identical requests, but
    repeats re-execute.

    Usable as a context manager; ``start`` binds and serves on a
    background thread, so tests drive a real socket.
    """

    def __init__(
        self,
        host: str = "127.0.0.1",
        port: int = 0,
        *,
        workers: int = 2,
        memo_dir=None,
        ttl_s: float | None = None,
        max_entries: int | None = None,
        max_bytes: int | None = None,
        preload: bool = False,
        queue_cap: int = 128,
        batch_max: int = 8,
        request_timeout: float = 300.0,
    ) -> None:
        self.registry = Registry()
        self.memo = (
            JsonCache(
                memo_dir,
                ttl_s=ttl_s,
                max_entries=max_entries,
                max_bytes=max_bytes,
                reg=self.registry,
            )
            if memo_dir
            else None
        )
        if preload and self.memo is not None:
            self.memo.preload()
        self._workers = workers
        self._queue_cap = queue_cap
        self._batch_max = batch_max
        self.request_timeout = request_timeout
        self._pool: WorkerPool | None = None
        self._lock = threading.Lock()
        self._inflight: dict[str, _Pending] = {}
        self._jobs: dict[int, tuple[str, str]] = {}  # job_id -> (key, kind)
        self._next_job_id = 0
        self._latencies: collections.deque[float] = collections.deque(
            maxlen=_LATENCY_WINDOW
        )
        self._lat_lock = threading.Lock()
        self._req_seq = itertools.count(1)  # next() is atomic under the GIL
        self._started_at = time.time()
        self._httpd = ThreadingHTTPServer((host, port), self._make_handler())
        self._httpd.daemon_threads = True
        self._http_thread: threading.Thread | None = None

    # -- lifecycle ---------------------------------------------------------
    @property
    def address(self) -> tuple[str, int]:
        """The bound (host, port) — port resolved when constructed with 0."""
        return self._httpd.server_address[:2]

    @property
    def url(self) -> str:
        host, port = self.address
        return f"http://{host}:{port}"

    def start(self) -> "IolbServer":
        """Fork the worker pool (before any server threads exist), then
        start the collector and the HTTP accept loop."""
        if self._workers > 0 and self._pool is None:
            self._pool = WorkerPool(
                self._workers,
                queue_cap=self._queue_cap,
                batch_max=self._batch_max,
            )
            self._pool.start_collector(self._on_result)
        if self._http_thread is None:
            self._http_thread = threading.Thread(
                target=self._httpd.serve_forever,
                daemon=True,
                name="iolb-serve-http",
            )
            self._http_thread.start()
        return self

    def shutdown(self) -> None:
        """Stop accepting, drain the pool, release the socket. Idempotent."""
        if self._http_thread is not None:
            self._httpd.shutdown()
            self._http_thread.join(timeout=5.0)
            self._http_thread = None
        self._httpd.server_close()
        if self._pool is not None:
            self._pool.close()
            self._pool = None

    def __enter__(self) -> "IolbServer":
        return self.start()

    def __exit__(self, exc_type, exc, tb) -> None:
        self.shutdown()

    # -- request flow ------------------------------------------------------
    def handle_request(self, kind: str, payload: Mapping) -> tuple[int, dict]:
        """The full request pipeline; returns (http_status, response body).

        Exposed as a method (not buried in the handler) so tests and the
        bench workloads can drive the exact serving logic without a socket
        when they want to.
        """
        t0 = time.perf_counter()
        try:
            canonical = protocol.canonical_request(kind, payload)
        except protocol.ServeRequestError as e:
            self.registry.add("serve.bad_requests")
            return 400, {"schema": protocol.SERVE_SCHEMA, "error": str(e)}
        key = protocol.request_key(kind, canonical)
        self.registry.add("serve.requests")
        self.registry.add(f"serve.{kind}_requests")

        with self.registry.span(f"serve.{kind}", key=key[:12]):
            status, body = self._serve_keyed(kind, canonical, key)
        self.registry.prune_spans(_SPAN_WINDOW)
        with self._lat_lock:
            self._latencies.append((time.perf_counter() - t0) * 1e3)
        return status, body

    def _serve_keyed(self, kind: str, canonical: dict, key: str) -> tuple[int, dict]:
        def respond(ok: bool, result: dict, *, cached=False, coalesced=False):
            if not ok:
                self.registry.add("serve.errors")
                return 500, {
                    "schema": protocol.SERVE_SCHEMA,
                    "kind": kind,
                    "key": key,
                    "error": result.get("error", "execution failed"),
                }
            return 200, {
                "schema": protocol.SERVE_SCHEMA,
                "kind": kind,
                "key": key,
                "cached": cached,
                "coalesced": coalesced,
                "result": result,
            }

        if self.memo is not None:
            hit = self.memo.get_raw(key)
            if hit is not None:
                self.registry.add("serve.backend_hits")
                return respond(True, hit, cached=True)

        created = False
        with self._lock:
            pending = self._inflight.get(key)
            if pending is None:
                pending = _Pending()
                self._inflight[key] = pending
                created = True
        if not created:
            self.registry.add("serve.coalesced")
            if not pending.event.wait(self.request_timeout):
                self.registry.add("serve.timeouts")
                return 504, {
                    "schema": protocol.SERVE_SCHEMA,
                    "kind": kind,
                    "key": key,
                    "error": "timed out waiting for in-flight twin",
                }
            return respond(pending.ok, pending.result, coalesced=True)

        # Re-check the backend now that we hold the pending slot.  A twin
        # that was executing during our first memo check may have stored its
        # result and left the in-flight map in between the two checks above;
        # _finish stores before it pops, so whoever observes the pop must
        # observe the stored entry here — without this, that window causes a
        # duplicate execution of the same key.
        if self.memo is not None:
            hit = self.memo.get_raw(key)
            if hit is not None:
                self.registry.add("serve.backend_hits")
                pending.resolve(True, hit)
                with self._lock:
                    self._inflight.pop(key, None)
                return respond(True, hit, cached=True)

        if self._pool is not None:
            with self._lock:
                job_id = self._next_job_id
                self._next_job_id += 1
                self._jobs[job_id] = (key, kind)
            try:
                self._pool.submit(job_id, key, kind, canonical)
            except queue.Full:
                with self._lock:
                    self._jobs.pop(job_id, None)
                    self._inflight.pop(key, None)
                pending.resolve(False, {"error": "queue full"})
                self.registry.add("serve.queue_full")
                return 503, {
                    "schema": protocol.SERVE_SCHEMA,
                    "kind": kind,
                    "key": key,
                    "error": "request queue full, retry later",
                }
            if not pending.event.wait(self.request_timeout):
                self.registry.add("serve.timeouts")
                return 504, {
                    "schema": protocol.SERVE_SCHEMA,
                    "kind": kind,
                    "key": key,
                    "error": "execution timed out",
                }
            return respond(pending.ok, pending.result)

        # inline mode: execute on this HTTP thread
        try:
            result = protocol.execute_request(kind, canonical)
            ok = True
        except Exception as e:  # noqa: BLE001 — a request must never kill a thread
            ok = False
            result = {"error": f"{type(e).__name__}: {e}"}
        self._finish(key, kind, ok, result, pending)
        return respond(ok, result)

    def _on_result(
        self, job_id: int, ok: bool, result: dict, counters: dict, batch_size: int
    ) -> None:
        """Collector callback: merge worker counters, store, resolve waiters."""
        with self._lock:
            key, kind = self._jobs.pop(job_id, (None, None))
        if counters:
            self.registry.merge(counters)
        if batch_size > 1:
            self.registry.add("serve.batched_jobs", batch_size)
        if batch_size > 0:
            self.registry.add("serve.batches")
        if key is None:
            return
        with self._lock:
            pending = self._inflight.get(key)
        self._finish(key, kind, ok, result, pending)

    def _finish(self, key, kind, ok, result, pending) -> None:
        if ok:
            self.registry.add("serve.executed")
            self.registry.add(f"serve.{kind}_executed")
            if self.memo is not None:
                self.memo.put_raw(key, result)
        else:
            self.registry.add("serve.failed")
        if pending is not None:
            pending.resolve(ok, result)
        with self._lock:
            self._inflight.pop(key, None)

    # -- telemetry ---------------------------------------------------------
    def refresh_gauges(self) -> None:
        """Recompute the operational gauges from the sliding windows."""
        with self._lat_lock:
            lat = sorted(self._latencies)
        reg = self.registry
        reg.gauge("serve.latency_p50_ms", round(_percentile(lat, 50), 3))
        reg.gauge("serve.latency_p99_ms", round(_percentile(lat, 99), 3))
        reg.gauge("serve.queue_depth", self._pool.depth() if self._pool else 0)
        with self._lock:
            reg.gauge("serve.inflight", len(self._inflight))
        c = reg.counters()
        requests = c.get("serve.requests", 0)
        hits = c.get("serve.backend_hits", 0) + c.get("serve.coalesced", 0)
        reg.gauge("serve.hit_rate", round(hits / requests, 4) if requests else 0.0)
        reg.gauge("serve.uptime_s", round(time.time() - self._started_at, 1))

    def stats(self) -> dict:
        """The compact operational summary behind ``GET /v1/stats``."""
        self.refresh_gauges()
        c = self.registry.counters()
        g = self.registry.gauges()
        return {
            "schema": protocol.SERVE_SCHEMA,
            "requests": c.get("serve.requests", 0),
            "executed": c.get("serve.executed", 0),
            "backend_hits": c.get("serve.backend_hits", 0),
            "coalesced": c.get("serve.coalesced", 0),
            "errors": c.get("serve.errors", 0) + c.get("serve.bad_requests", 0),
            "queue_full": c.get("serve.queue_full", 0),
            "hit_rate": g.get("serve.hit_rate", 0.0),
            "latency_p50_ms": g.get("serve.latency_p50_ms", 0.0),
            "latency_p99_ms": g.get("serve.latency_p99_ms", 0.0),
            "queue_depth": g.get("serve.queue_depth", 0),
            "inflight": g.get("serve.inflight", 0),
            "uptime_s": g.get("serve.uptime_s", 0.0),
            "workers": self._workers,
            "backend": str(self.memo.cache_dir) if self.memo else None,
        }

    def metrics(self, meta: Mapping | None = None) -> dict:
        """The full ``iolb-metrics/1`` dump of the private registry."""
        self.refresh_gauges()
        return metrics_dict(
            self.registry,
            meta={"command": "serve", "workers": self._workers, **(meta or {})},
        )

    def next_request_id(self, key: str | None = None, path: str = "") -> str:
        """A correlatable per-response id: ``<key prefix>-<monotonic seq>``.

        For keyed (POST) requests the prefix is the request key itself, so
        the id lines up with the ``key`` field of the response body and the
        ``serve.*`` span of the same request; keyless paths (GET endpoints,
        404s) hash the path instead so every response still gets an id.
        """
        seed = key or hashlib.sha256(path.encode()).hexdigest()
        return f"{seed[:8]}-{next(self._req_seq)}"

    def status_page(self) -> str:
        """The live HTML explorer page behind ``GET /status``.

        The same renderer as ``iolb explore`` (``repro.obs.explore``), fed
        from the private always-on registry and the operational summary —
        zero external resources, meta-refresh to stay current.
        """
        from ..obs.explore import render_status

        return render_status(self.metrics(), self.stats())

    # -- the HTTP handler --------------------------------------------------
    def _make_handler(self):
        server = self

        class Handler(BaseHTTPRequestHandler):
            protocol_version = "HTTP/1.1"
            server_version = "iolb-serve/1"

            def log_message(self, fmt, *args):  # noqa: N802 — stdlib name
                pass  # replaced by the structured access log in _send

            def _send(
                self,
                status: int,
                payload: bytes,
                ctype: str,
                *,
                key: str | None = None,
                flag: str = "-",
            ) -> None:
                """Write the response with its request id, then the access log.

                One line per request on stderr: method, path, key prefix,
                status, latency in µs, and the cache-hit/coalesced flag —
                enough to correlate a client-side failure with the matching
                pool-side error and ``serve.*`` span.
                """
                rid = server.next_request_id(key, self.path)
                self.send_response(status)
                self.send_header("Content-Type", ctype)
                self.send_header("Content-Length", str(len(payload)))
                self.send_header("X-Iolb-Request-Id", rid)
                self.end_headers()
                self.wfile.write(payload)
                us = (time.perf_counter() - getattr(self, "_t0", time.perf_counter())) * 1e6
                print(
                    f"iolb-serve: method={self.command} path={self.path}"
                    f" key={key[:12] if key else '-'} status={status}"
                    f" latency_us={round(us)} hit={flag} id={rid}",
                    file=sys.stderr,
                )

            def _send_json(self, status: int, body: dict) -> None:
                key = body.get("key") if isinstance(body, Mapping) else None
                if not isinstance(body, Mapping) or "cached" not in body:
                    flag = "-"
                elif body.get("cached"):
                    flag = "cached"
                elif body.get("coalesced"):
                    flag = "coalesced"
                else:
                    flag = "miss"
                self._send(
                    status,
                    json.dumps(body).encode(),
                    "application/json",
                    key=key,
                    flag=flag,
                )

            def do_GET(self):  # noqa: N802 — stdlib name
                self._t0 = time.perf_counter()
                if self.path == "/healthz":
                    server.refresh_gauges()
                    self._send_json(
                        200,
                        {
                            "ok": True,
                            "schema": protocol.SERVE_SCHEMA,
                            "uptime_s": round(time.time() - server._started_at, 1),
                            "workers": server._workers,
                            "queue_depth": server._pool.depth()
                            if server._pool
                            else 0,
                        },
                    )
                elif self.path == "/v1/stats":
                    self._send_json(200, server.stats())
                elif self.path == "/v1/metrics":
                    self._send_json(200, server.metrics())
                elif self.path == "/status":
                    self._send(200, server.status_page().encode(), "text/html; charset=utf-8")
                elif self.path == "/status.json":
                    self._send_json(
                        200,
                        {
                            "schema": protocol.SERVE_SCHEMA,
                            "stats": server.stats(),
                            "metrics": server.metrics(),
                        },
                    )
                else:
                    self._send_json(404, {"error": f"no such endpoint {self.path}"})

            def do_POST(self):  # noqa: N802 — stdlib name
                self._t0 = time.perf_counter()
                parts = self.path.strip("/").split("/")
                if len(parts) != 2 or parts[0] != "v1" or parts[1] not in protocol.KINDS:
                    self._send_json(
                        404,
                        {
                            "error": f"no such endpoint {self.path}"
                            f" (POST /v1/{{{'|'.join(protocol.KINDS)}}})"
                        },
                    )
                    return
                try:
                    length = int(self.headers.get("Content-Length", 0))
                    raw = self.rfile.read(length) if length else b"{}"
                    payload = json.loads(raw.decode() or "{}")
                except (ValueError, UnicodeDecodeError) as e:
                    server.registry.add("serve.bad_requests")
                    self._send_json(400, {"error": f"invalid JSON body: {e}"})
                    return
                status, body = server.handle_request(parts[1], payload)
                self._send_json(status, body)

        return Handler
