"""The ``iolb-serve/1`` wire protocol: request kinds, keys, and executors.

A request is ``POST /v1/<kind>`` with a JSON object body.  This module
owns everything about that body that both sides of the worker-pool fence
must agree on:

* :func:`canonical_request` — validate and normalize a payload (defaults
  resolved, params coerced to sorted ints, unknown fields rejected), so
  that two requests meaning the same work are byte-identical;
* :func:`request_key` — the content hash of a canonical request, salted
  with the simulator ``ENGINE_VERSION``: the service's memoisation,
  coalescing, and sharding all key on it, exactly like
  :func:`repro.cache.memo.memo_key` keys simulation points;
* :func:`execute_request` — actually run the pipeline for one canonical
  request and return a JSON-able result.  Pure function of the request, so
  it can run in the HTTP thread (``workers=0``), in a pool worker process,
  or under a test harness, and its result can be cached forever under the
  request key.

Executors count their work (``serve.derive_executed`` etc. are recorded by
the server when a result lands); the derivation itself is additionally
memoised per process with an ``lru_cache`` because ``simulate`` needs the
bound report for the same kernel over and over.
"""

from __future__ import annotations

import functools
import hashlib
import json
import time
from typing import Mapping

from ..cache.sim import ENGINE_VERSION

__all__ = [
    "SERVE_SCHEMA",
    "KINDS",
    "ServeRequestError",
    "canonical_request",
    "request_key",
    "execute_request",
]

#: schema tag for every serve request/response (bump on breaking changes)
SERVE_SCHEMA = "iolb-serve/1"

#: request kinds routable as POST /v1/<kind>
KINDS = ("derive", "simulate", "tune", "lint")

#: accepted payload fields per kind (anything else is a validation error)
_FIELDS = {
    "derive": {"kernel", "eval", "cert"},
    "simulate": {"kernel", "params", "s", "policy"},
    "tune": {"algorithm", "params", "s", "policy", "b_max", "mode", "stride"},
    "lint": {"kernel", "params"},
    # internal: deterministic busywork for queue/batch tests and the
    # load generator's calibration mode; never documented as public
    "sleep": {"ms"},
}

_POLICIES = ("belady", "lru")


class ServeRequestError(ValueError):
    """A malformed or unserviceable request payload (HTTP 400)."""


def _int_params(raw, what: str) -> dict[str, int]:
    if raw is None:
        return {}
    if not isinstance(raw, Mapping):
        raise ServeRequestError(f"{what} must be an object of integers")
    try:
        return {str(k): int(v) for k, v in sorted(raw.items())}
    except (TypeError, ValueError):
        raise ServeRequestError(f"{what} must map names to integers") from None


def _require_s(payload: Mapping) -> int:
    try:
        s = int(payload["s"])
    except KeyError:
        raise ServeRequestError("missing required field 's' (cache size)") from None
    except (TypeError, ValueError):
        raise ServeRequestError("'s' must be an integer") from None
    if s < 1:
        raise ServeRequestError(f"'s' must be >= 1 (got {s})")
    return s


def _policy_of(payload: Mapping) -> str:
    policy = payload.get("policy", "belady")
    if policy not in _POLICIES:
        raise ServeRequestError(
            f"unknown policy {policy!r} (use one of {', '.join(_POLICIES)})"
        )
    return policy


def canonical_request(kind: str, payload: Mapping) -> dict:
    """Validate ``payload`` for ``kind`` and return its canonical form.

    Canonical means: defaults filled in, params sorted and int-coerced,
    unknown fields rejected — so equal work hashes equal under
    :func:`request_key` no matter how the client spelled it.
    """
    if kind not in _FIELDS:
        raise ServeRequestError(
            f"unknown request kind {kind!r} (use one of {', '.join(KINDS)})"
        )
    if not isinstance(payload, Mapping):
        raise ServeRequestError("request body must be a JSON object")
    unknown = sorted(set(payload) - _FIELDS[kind])
    if unknown:
        raise ServeRequestError(
            f"unknown field(s) {unknown} for kind {kind!r}"
            f" (accepted: {sorted(_FIELDS[kind])})"
        )

    from ..kernels import KERNELS, TILED_ALGORITHMS

    if kind == "derive":
        kernel = payload.get("kernel")
        if kernel not in KERNELS:
            raise ServeRequestError(
                f"unknown kernel {kernel!r} (available: {', '.join(sorted(KERNELS))})"
            )
        out: dict = {"kernel": kernel}
        ev = _int_params(payload.get("eval"), "eval")
        if ev:
            if "S" not in ev:
                raise ServeRequestError(
                    "derive eval params must include the cache size S"
                )
            out["eval"] = ev
        # present only when truthy so default requests hash unchanged
        if payload.get("cert"):
            out["cert"] = True
        return out

    if kind == "simulate":
        kernel = payload.get("kernel")
        if kernel not in KERNELS:
            raise ServeRequestError(
                f"unknown kernel {kernel!r} (available: {', '.join(sorted(KERNELS))})"
            )
        params = _int_params(payload.get("params"), "params") or dict(
            KERNELS[kernel].default_params
        )
        return {
            "kernel": kernel,
            "params": dict(sorted(params.items())),
            "s": _require_s(payload),
            "policy": _policy_of(payload),
        }

    if kind == "tune":
        alg = payload.get("algorithm")
        if alg not in TILED_ALGORITHMS:
            raise ServeRequestError(
                f"unknown tiled algorithm {alg!r}"
                f" (available: {', '.join(sorted(TILED_ALGORITHMS))})"
            )
        params = _int_params(payload.get("params"), "params")
        if "N" not in params:
            raise ServeRequestError("tune params must include the column count N")
        mode = payload.get("mode", "coarse")
        if mode not in ("exhaustive", "coarse"):
            raise ServeRequestError(f"unknown mode {mode!r} (exhaustive|coarse)")
        out = {
            "algorithm": alg,
            "params": dict(sorted(params.items())),
            "s": _require_s(payload),
            "policy": _policy_of(payload),
            "mode": mode,
        }
        for opt in ("b_max", "stride"):
            if payload.get(opt) is not None:
                try:
                    out[opt] = int(payload[opt])
                except (TypeError, ValueError):
                    raise ServeRequestError(f"{opt!r} must be an integer") from None
        return out

    if kind == "lint":
        from ..frontend.sources import FIGURE_SOURCES

        kernel = payload.get("kernel")
        if kernel not in FIGURE_SOURCES:
            raise ServeRequestError(
                f"unknown lintable kernel {kernel!r}"
                f" (available: {', '.join(sorted(FIGURE_SOURCES))})"
            )
        out = {"kernel": kernel}
        params = _int_params(payload.get("params"), "params")
        if params:
            out["params"] = params
        return out

    # kind == "sleep"
    try:
        ms = float(payload.get("ms", 1))
    except (TypeError, ValueError):
        raise ServeRequestError("'ms' must be a number") from None
    if not 0 <= ms <= 60_000:
        raise ServeRequestError("'ms' must be between 0 and 60000")
    return {"ms": ms}


def request_key(kind: str, canonical: Mapping) -> str:
    """Content hash of one canonical request (memo / coalesce / shard key).

    Salted with the schema tag and the simulator engine version so cached
    results are never served across protocol or engine revisions.
    """
    blob = json.dumps(
        {
            "schema": SERVE_SCHEMA,
            "engine": ENGINE_VERSION,
            "kind": kind,
            "payload": canonical,
        },
        sort_keys=True,
        separators=(",", ":"),
    )
    return hashlib.sha256(blob.encode()).hexdigest()


@functools.lru_cache(maxsize=64)
def _derived(kernel_name: str):
    """Per-process derivation cache (a pure function of the kernel)."""
    from ..bounds import derive
    from ..kernels import get_kernel

    return derive(get_kernel(kernel_name))


def _bound_rows(report) -> list[dict]:
    return [
        {
            "method": b.method,
            "expr": repr(b.expr),
            "coeff": b.coeff,
            "condition": b.condition,
        }
        for b in report.all_bounds()
    ]


def execute_request(kind: str, canonical: Mapping) -> dict:
    """Run the pipeline for one canonical request; returns the result dict.

    Deterministic given (kind, canonical, engine version), which is what
    makes the result safe to store forever under :func:`request_key`.
    """
    if kind == "derive":
        rep = _derived(canonical["kernel"])
        out = {
            "kernel": rep.kernel,
            "dominant": rep.dominant,
            "bounds": _bound_rows(rep),
            "summary": rep.summary(),
        }
        ev = canonical.get("eval")
        if ev:
            best, val = rep.best(ev)
            rows = []
            for b in rep.all_bounds():
                try:
                    rows.append({"method": b.method, "value": b.evaluate(ev)})
                except (ZeroDivisionError, KeyError):
                    rows.append({"method": b.method, "value": None})
            out["eval"] = {"at": dict(ev), "best": best.method, "value": val,
                           "values": rows}
        if canonical.get("cert"):
            from ..cert import build_certificate
            from ..kernels import get_kernel

            kern = get_kernel(canonical["kernel"])
            out["certificate"] = build_certificate(
                rep, kern.program, kern.default_params
            )
        return out

    if kind == "simulate":
        from ..cdag import build_cdag
        from ..ir import Tracer
        from ..kernels import get_kernel
        from ..pebble import play_schedule

        kern = get_kernel(canonical["kernel"])
        params = dict(canonical["params"])
        g = build_cdag(kern.program, params)
        t = Tracer()
        kern.program.runner(params, t)
        res = play_schedule(g, t.schedule, canonical["s"], canonical["policy"])
        rep = _derived(kern.name)
        best, val = rep.best({**params, "S": canonical["s"]})
        return {
            "kernel": kern.name,
            "params": params,
            "s": canonical["s"],
            "policy": canonical["policy"],
            "loads": res.loads,
            "computes": res.computes,
            "bound": val,
            "bound_method": best.method,
        }

    if kind == "tune":
        from ..bounds import tune_block_size
        from ..kernels import get_tiled

        res = tune_block_size(
            get_tiled(canonical["algorithm"]),
            canonical["params"],
            canonical["s"],
            policy=canonical["policy"],
            b_max=canonical.get("b_max"),
            mode=canonical["mode"],
            stride=canonical.get("stride"),
        )
        return {
            "algorithm": canonical["algorithm"],
            "params": dict(canonical["params"]),
            "s": canonical["s"],
            "policy": canonical["policy"],
            "mode": res.mode,
            "best_block": res.best_block,
            "best_loads": res.best_loads,
            "analytic_block": res.analytic_block,
            "analytic_loads": res.analytic_loads,
            "points_evaluated": len(res.evaluated),
        }

    if kind == "lint":
        from ..analysis import check_source
        from ..frontend.sources import FIGURE_SHAPE_EXPRS, FIGURE_SOURCES
        from ..kernels import KERNELS

        name = canonical["kernel"]
        k = KERNELS.get(name)
        rep, _prog = check_source(
            FIGURE_SOURCES[name],
            name=name,
            params=canonical.get("params") or (dict(k.default_params) if k else None),
            shapes=FIGURE_SHAPE_EXPRS.get(name),
            dominant=k.dominant if k else None,
        )
        return rep.to_dict()

    if kind == "sleep":
        time.sleep(canonical["ms"] / 1000.0)
        return {"slept_ms": canonical["ms"]}

    raise ServeRequestError(f"unknown request kind {kind!r}")
