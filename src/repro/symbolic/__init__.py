"""Exact symbolic expressions for parametric I/O bounds.

Public surface:

* :func:`Sym`, :func:`Const` — build polynomials; overloaded operators give
  :class:`Poly` and, on division, :class:`Rational`.
* :func:`sum_poly`, :func:`count_nest`, :func:`faulhaber` — closed-form
  summation / loop-nest point counting.
* :class:`Regime`, :func:`classify`, :func:`limit_ratio` — asymptotic
  comparison along growth regimes.
"""

from .expr import Const, Monomial, Poly, Sym, poly
from .latex import to_latex
from .rational import Rational, as_rational, ratio
from .summation import count_nest, faulhaber, sum_poly
from .asymptotic import (
    Regime,
    classify,
    growth_exponent,
    improvement_factor,
    limit_ratio,
)

__all__ = [
    "Const",
    "Monomial",
    "Poly",
    "Sym",
    "poly",
    "Rational",
    "as_rational",
    "ratio",
    "count_nest",
    "faulhaber",
    "sum_poly",
    "Regime",
    "classify",
    "improvement_factor",
    "limit_ratio",
    "growth_exponent",
    "to_latex",
]
