"""Multivariate polynomial expressions over the rationals.

This module is the foundation of the bound engine: every I/O lower or upper
bound in the paper is a *parametric* formula such as ``M**2*N*(N-1)/(8*(S+M))``.
Since no computer-algebra system is available offline, we implement the small
fragment we need: Laurent--Puiseux polynomials (monomials with rational, possibly
negative exponents) with exact :class:`fractions.Fraction` coefficients, plus
rational functions on top of them (:mod:`repro.symbolic.rational`).

The design favours correctness and hashability over speed; polynomials here
describe *bounds*, they are never in an inner loop.
"""

from __future__ import annotations

from fractions import Fraction
from typing import Iterable, Mapping, Union

Number = Union[int, Fraction, float]

__all__ = ["Monomial", "Poly", "Sym", "Const", "poly"]


def _fr(x: Number) -> Fraction:
    """Coerce ``x`` to an exact Fraction (floats must be exactly representable)."""
    if isinstance(x, Fraction):
        return x
    if isinstance(x, int):
        return Fraction(x)
    if isinstance(x, float):
        if not x.is_integer():
            # Keep exact semantics: only integral floats are silently accepted.
            return Fraction(x).limit_denominator(10**12)
        return Fraction(int(x))
    raise TypeError(f"cannot coerce {x!r} to Fraction")


class Monomial:
    """A power product ``prod(sym**exp)`` with rational exponents.

    Immutable and hashable.  The empty monomial is the constant ``1``.
    """

    __slots__ = ("_items", "_hash")

    def __init__(self, items: Iterable[tuple[str, Fraction]] = ()):
        cleaned = tuple(
            sorted((s, Fraction(e)) for s, e in items if e != 0)
        )
        self._items = cleaned
        self._hash = hash(cleaned)

    @property
    def items(self) -> tuple[tuple[str, Fraction], ...]:
        return self._items

    def symbols(self) -> frozenset[str]:
        return frozenset(s for s, _ in self._items)

    def exponent(self, sym: str) -> Fraction:
        for s, e in self._items:
            if s == sym:
                return e
        return Fraction(0)

    def degree(self) -> Fraction:
        """Total degree (sum of all exponents)."""
        return sum((e for _, e in self._items), Fraction(0))

    def is_one(self) -> bool:
        return not self._items

    def is_integral(self) -> bool:
        """True if every exponent is a non-negative integer."""
        return all(e.denominator == 1 and e >= 0 for _, e in self._items)

    def __mul__(self, other: "Monomial") -> "Monomial":
        exps: dict[str, Fraction] = dict(self._items)
        for s, e in other._items:
            exps[s] = exps.get(s, Fraction(0)) + e
        return Monomial(exps.items())

    def __pow__(self, k: Fraction | int) -> "Monomial":
        k = Fraction(k)
        return Monomial((s, e * k) for s, e in self._items)

    def divides(self, other: "Monomial") -> bool:
        return all(other.exponent(s) >= e for s, e in self._items)

    def gcd(self, other: "Monomial") -> "Monomial":
        syms = self.symbols() & other.symbols()
        return Monomial(
            (s, min(self.exponent(s), other.exponent(s))) for s in syms
        )

    def divide(self, other: "Monomial") -> "Monomial":
        """Return self / other (exponents may become negative)."""
        exps: dict[str, Fraction] = dict(self._items)
        for s, e in other._items:
            exps[s] = exps.get(s, Fraction(0)) - e
        return Monomial(exps.items())

    def eval(self, env: Mapping[str, Number]) -> float | Fraction:
        out: float | Fraction = Fraction(1)
        for s, e in self._items:
            if s not in env:
                raise KeyError(f"symbol {s!r} unbound in eval environment")
            base = env[s]
            if e.denominator == 1 and not isinstance(base, float):
                out = out * (Fraction(base) ** int(e))
            else:
                out = float(out) * float(base) ** float(e)
        return out

    def __eq__(self, other: object) -> bool:
        return isinstance(other, Monomial) and self._items == other._items

    def __hash__(self) -> int:
        return self._hash

    def _sort_key(self) -> tuple:
        # graded lexicographic, for canonical printing
        return (-self.degree(), self._items)

    def __repr__(self) -> str:
        if not self._items:
            return "1"
        parts = []
        for s, e in self._items:
            if e == 1:
                parts.append(s)
            else:
                parts.append(f"{s}**{e}")
        return "*".join(parts)


class Poly:
    """A polynomial: finite Fraction-weighted sum of :class:`Monomial` s."""

    __slots__ = ("_terms", "_hash")

    def __init__(self, terms: Mapping[Monomial, Fraction] | None = None):
        cleaned = {}
        if terms:
            for m, c in terms.items():
                c = _fr(c)
                if c != 0:
                    cleaned[m] = c
        self._terms = cleaned
        self._hash: int | None = None

    # -- constructors ------------------------------------------------------
    @staticmethod
    def const(c: Number) -> "Poly":
        return Poly({Monomial(): _fr(c)})

    @staticmethod
    def symbol(name: str) -> "Poly":
        return Poly({Monomial([(name, Fraction(1))]): Fraction(1)})

    # -- inspection --------------------------------------------------------
    @property
    def terms(self) -> dict[Monomial, Fraction]:
        return dict(self._terms)

    def symbols(self) -> frozenset[str]:
        out: set[str] = set()
        for m in self._terms:
            out |= m.symbols()
        return frozenset(out)

    def is_zero(self) -> bool:
        return not self._terms

    def is_const(self) -> bool:
        return all(m.is_one() for m in self._terms)

    def const_value(self) -> Fraction:
        if not self.is_const():
            raise ValueError(f"{self!r} is not constant")
        return self._terms.get(Monomial(), Fraction(0))

    def is_monomial(self) -> bool:
        return len(self._terms) == 1

    def total_degree(self) -> Fraction:
        if not self._terms:
            return Fraction(0)
        return max(m.degree() for m in self._terms)

    def degree_in(self, sym: str) -> Fraction:
        if not self._terms:
            return Fraction(0)
        return max((m.exponent(sym) for m in self._terms), default=Fraction(0))

    def content(self) -> Fraction:
        """Positive rational gcd of coefficients (0 for the zero poly)."""
        from math import gcd

        if not self._terms:
            return Fraction(0)
        nums = [abs(c.numerator) for c in self._terms.values()]
        dens = [c.denominator for c in self._terms.values()]
        g = 0
        for n in nums:
            g = gcd(g, n)
        l = 1
        for d in dens:
            l = l * d // gcd(l, d)
        return Fraction(g, l)

    def monomial_gcd(self) -> Monomial:
        """Largest monomial dividing every term (trivial if zero poly)."""
        it = iter(self._terms)
        try:
            g = next(it)
        except StopIteration:
            return Monomial()
        for m in it:
            g = g.gcd(m)
            if g.is_one():
                break
        return g

    # -- arithmetic --------------------------------------------------------
    def _coerce(self, other) -> "Poly | None":
        if isinstance(other, Poly):
            return other
        if isinstance(other, (int, Fraction, float)):
            return Poly.const(other)
        return None

    def __add__(self, other) -> "Poly":
        o = self._coerce(other)
        if o is None:
            return NotImplemented
        terms = dict(self._terms)
        for m, c in o._terms.items():
            terms[m] = terms.get(m, Fraction(0)) + c
        return Poly(terms)

    __radd__ = __add__

    def __neg__(self) -> "Poly":
        return Poly({m: -c for m, c in self._terms.items()})

    def __sub__(self, other) -> "Poly":
        o = self._coerce(other)
        if o is None:
            return NotImplemented
        return self + (-o)

    def __rsub__(self, other) -> "Poly":
        o = self._coerce(other)
        if o is None:
            return NotImplemented
        return o + (-self)

    def __mul__(self, other) -> "Poly":
        o = self._coerce(other)
        if o is None:
            return NotImplemented
        terms: dict[Monomial, Fraction] = {}
        for m1, c1 in self._terms.items():
            for m2, c2 in o._terms.items():
                m = m1 * m2
                terms[m] = terms.get(m, Fraction(0)) + c1 * c2
        return Poly(terms)

    __rmul__ = __mul__

    def __pow__(self, k) -> "Poly":
        k = Fraction(k)
        if k.denominator != 1 or k < 0:
            # Fractional / negative powers only make sense term-by-term.
            if not self.is_monomial():
                raise ValueError(
                    "fractional or negative power of a multi-term polynomial"
                )
            ((m, c),) = self._terms.items()
            if c < 0:
                raise ValueError("fractional power of a negative coefficient")
            if k.denominator != 1:
                # coefficient must be a perfect power; accept 1 or exact roots
                root = _exact_root(c, k)
                if root is None:
                    raise ValueError(
                        f"coefficient {c} has no exact {k} power"
                    )
                return Poly({m ** k: root})
            return Poly({m ** k: c ** int(k)})
        out = Poly.const(1)
        base = self
        n = int(k)
        while n:
            if n & 1:
                out = out * base
            base = base * base
            n >>= 1
        return out

    def __truediv__(self, other):
        from .rational import Rational

        o = self._coerce(other)
        if o is None:
            return NotImplemented
        return Rational(self, o)

    def __rtruediv__(self, other):
        from .rational import Rational

        o = self._coerce(other)
        if o is None:
            return NotImplemented
        return Rational(o, self)

    # -- evaluation / substitution -----------------------------------------
    def eval(self, env: Mapping[str, Number]):
        """Evaluate with a full binding of symbols to numbers."""
        out = Fraction(0)
        fl = 0.0
        has_float = False
        for m, c in self._terms.items():
            v = m.eval(env)
            if isinstance(v, float):
                has_float = True
                fl += float(c) * v
            else:
                out += c * v
        if has_float:
            return float(out) + fl
        return out

    def subs(self, env: Mapping[str, "Poly | Number"]) -> "Poly":
        """Substitute symbols by polynomials (or numbers); partial is fine."""
        out = Poly()
        for m, c in self._terms.items():
            term = Poly.const(c)
            for s, e in m.items:
                if s in env:
                    repl = env[s]
                    if not isinstance(repl, Poly):
                        repl = Poly.const(repl)
                    if e.denominator != 1 or e < 0:
                        if not repl.is_monomial():
                            raise ValueError(
                                f"cannot substitute multi-term poly into {s}**{e}"
                            )
                    term = term * (repl ** e)
                else:
                    term = term * Poly({Monomial([(s, e)]): Fraction(1)})
            out = out + term
        return out

    # -- serialization -----------------------------------------------------
    def to_terms(self) -> list:
        """Canonical JSON-able term list ``[[[sym, exp], ...], coeff]``.

        Terms are ordered by the graded-lex monomial order used for
        printing, exponents and coefficients are exact ``Fraction`` strings
        — two equal polynomials serialize byte-identically, which is what
        the certificate golden files pin.
        """
        out = []
        for m in sorted(self._terms, key=Monomial._sort_key):
            out.append(
                [[[s, str(e)] for s, e in m.items], str(self._terms[m])]
            )
        return out

    # -- comparison / hashing ----------------------------------------------
    def __eq__(self, other) -> bool:
        o = self._coerce(other)
        if o is None:
            return NotImplemented
        return self._terms == o._terms

    def __hash__(self) -> int:
        if self._hash is None:
            self._hash = hash(frozenset(self._terms.items()))
        return self._hash

    def __repr__(self) -> str:
        if not self._terms:
            return "0"
        parts = []
        for m in sorted(self._terms, key=Monomial._sort_key):
            c = self._terms[m]
            if m.is_one():
                parts.append(str(c))
            elif c == 1:
                parts.append(repr(m))
            elif c == -1:
                parts.append(f"-{m!r}")
            else:
                parts.append(f"{c}*{m!r}")
        s = " + ".join(parts)
        return s.replace("+ -", "- ")


def _exact_root(c: Fraction, k: Fraction) -> Fraction | None:
    """Return c**k as an exact Fraction if possible, else None."""
    if c == 1:
        return Fraction(1)
    if c == 0:
        return Fraction(0)
    # c**(p/q): need exact q-th root of c**p
    p, q = k.numerator, k.denominator
    target = c ** p if p >= 0 else Fraction(1) / (c ** (-p))

    def iroot(n: int, r: int) -> int | None:
        if n == 0:
            return 0
        lo, hi = 0, max(2, int(round(n ** (1.0 / r))) + 2)
        while lo < hi:
            mid = (lo + hi) // 2
            if mid ** r < n:
                lo = mid + 1
            else:
                hi = mid
        return lo if lo ** r == n else None

    rn = iroot(target.numerator, q)
    rd = iroot(target.denominator, q)
    if rn is None or rd is None:
        return None
    return Fraction(rn, rd)


def Sym(name: str) -> Poly:
    """Create a symbol polynomial (the conventional entry point)."""
    return Poly.symbol(name)


def Const(c: Number) -> Poly:
    """Create a constant polynomial."""
    return Poly.const(c)


def poly(x: Number | Poly) -> Poly:
    """Coerce a number or polynomial to :class:`Poly`."""
    if isinstance(x, Poly):
        return x
    return Poly.const(x)
