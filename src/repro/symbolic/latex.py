"""LaTeX rendering of symbolic bound expressions.

``to_latex`` turns the engine's polynomials / rational functions into the
notation the paper uses, e.g. Theorem 5's bound renders as::

    \\frac{M^{2} N^{2} - M^{2} N}{8 \\left(M + S\\right)}

(after clearing the coefficient denominators, fractions display as a single
\\frac with integer constants whenever possible).
"""

from __future__ import annotations

from fractions import Fraction

from .expr import Monomial, Poly
from .rational import Rational

__all__ = ["to_latex"]


def _frac_latex(c: Fraction) -> str:
    if c.denominator == 1:
        return str(c.numerator)
    return f"\\frac{{{c.numerator}}}{{{c.denominator}}}"


def _exp_latex(e: Fraction) -> str:
    if e.denominator == 1:
        return str(e.numerator)
    return f"{e.numerator}/{e.denominator}"


def _mono_latex(m: Monomial) -> str:
    parts = []
    for s, e in m.items:
        if e == 1:
            parts.append(s)
        else:
            parts.append(f"{s}^{{{_exp_latex(e)}}}")
    return " ".join(parts)


def _poly_latex(p: Poly, *, clear_content: bool = False) -> str:
    """Render a polynomial; with clear_content, divide out the coefficient
    content first (caller accounts for it)."""
    terms = p.terms
    if not terms:
        return "0"
    out = []
    for m in sorted(terms, key=Monomial._sort_key):
        c = terms[m]
        mono = _mono_latex(m)
        neg = c < 0
        mag = -c if neg else c
        if m.is_one():
            piece = _frac_latex(mag)
        elif mag == 1:
            piece = mono
        else:
            piece = f"{_frac_latex(mag)} {mono}"
        if out:
            out.append("-" if neg else "+")
        elif neg:
            piece = f"-{piece}"
        out.append(piece)
    return " ".join(out)


def to_latex(x) -> str:
    """LaTeX for a Poly or Rational, paper-style.

    For rationals, coefficient denominators are cleared into a single
    integer prefactor on the denominator (Theorem-5 style
    ``\\frac{num}{8(M+S)}``) when the numerator's content is a 1/k fraction.
    """
    if isinstance(x, Poly):
        return _poly_latex(x)
    if isinstance(x, Rational):
        if x.is_poly():
            return _poly_latex(x.as_poly())
        num, den = x.num, x.den
        content = num.content()
        if content != 0 and content.numerator == 1 and content.denominator > 1:
            k = content.denominator
            num = num * Poly.const(k)
            return (
                f"\\frac{{{_poly_latex(num)}}}"
                f"{{{k} \\left({_poly_latex(den)}\\right)}}"
            )
        return f"\\frac{{{_poly_latex(num)}}}{{{_poly_latex(den)}}}"
    raise TypeError(f"cannot render {type(x).__name__} as LaTeX")
