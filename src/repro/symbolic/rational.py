"""Rational functions (quotients of polynomials).

The hourglass bounds of the paper are quotients such as
``M**2*N*(N-1) / (8*(S+M))``; this module provides exact arithmetic,
evaluation and structural normalisation for them.

Normalisation is deliberately light-weight: we cancel the monomial gcd and
the rational content of numerator and denominator, and fix the sign of the
denominator's leading coefficient.  Full multivariate gcd cancellation is not
needed for correctness (equality testing cross-multiplies), and keeping the
implementation small keeps it auditable.
"""

from __future__ import annotations

from fractions import Fraction
from typing import Mapping, Union

from .expr import Monomial, Number, Poly, poly

__all__ = ["Rational", "ratio", "as_rational"]

ExprLike = Union[int, Fraction, float, Poly, "Rational"]


class Rational:
    """An exact quotient ``num / den`` of two :class:`Poly`."""

    __slots__ = ("num", "den")

    def __init__(self, num: Poly | Number, den: Poly | Number = 1):
        num = poly(num)
        den = poly(den)
        if den.is_zero():
            raise ZeroDivisionError("rational function with zero denominator")
        if num.is_zero():
            self.num, self.den = Poly(), Poly.const(1)
            return
        # cancel common monomial factor
        g = num.monomial_gcd().gcd(den.monomial_gcd())
        if not g.is_one():
            num = Poly({m.divide(g): c for m, c in num.terms.items()})
            den = Poly({m.divide(g): c for m, c in den.terms.items()})
        # make denominator content 1 and its leading coefficient positive
        c = den.content()
        lead = _leading_coeff(den)
        if lead < 0:
            c = -c
        num = num * Poly.const(Fraction(1) / c)
        den = den * Poly.const(Fraction(1) / c)
        # constant denominator folds into numerator
        if den.is_const():
            num = num * Poly.const(Fraction(1) / den.const_value())
            den = Poly.const(1)
        self.num = num
        self.den = den

    # -- helpers -------------------------------------------------------------
    def is_poly(self) -> bool:
        return self.den.is_const() and self.den.const_value() == 1

    def as_poly(self) -> Poly:
        if not self.is_poly():
            raise ValueError(f"{self!r} is not a polynomial")
        return self.num

    def is_zero(self) -> bool:
        return self.num.is_zero()

    def symbols(self) -> frozenset[str]:
        return self.num.symbols() | self.den.symbols()

    # -- arithmetic ------------------------------------------------------------
    @staticmethod
    def _coerce(x) -> "Rational | None":
        if isinstance(x, Rational):
            return x
        if isinstance(x, (int, Fraction, float, Poly)):
            return Rational(poly(x))
        return None

    def __add__(self, other) -> "Rational":
        o = self._coerce(other)
        if o is None:
            return NotImplemented
        return Rational(self.num * o.den + o.num * self.den, self.den * o.den)

    __radd__ = __add__

    def __neg__(self) -> "Rational":
        return Rational(-self.num, self.den)

    def __sub__(self, other) -> "Rational":
        o = self._coerce(other)
        if o is None:
            return NotImplemented
        return self + (-o)

    def __rsub__(self, other) -> "Rational":
        o = self._coerce(other)
        if o is None:
            return NotImplemented
        return o + (-self)

    def __mul__(self, other) -> "Rational":
        o = self._coerce(other)
        if o is None:
            return NotImplemented
        return Rational(self.num * o.num, self.den * o.den)

    __rmul__ = __mul__

    def __truediv__(self, other) -> "Rational":
        o = self._coerce(other)
        if o is None:
            return NotImplemented
        if o.is_zero():
            raise ZeroDivisionError("division by zero rational")
        return Rational(self.num * o.den, self.den * o.num)

    def __rtruediv__(self, other) -> "Rational":
        o = self._coerce(other)
        if o is None:
            return NotImplemented
        return o / self

    def __pow__(self, k: int) -> "Rational":
        k = int(k)
        if k >= 0:
            return Rational(self.num ** k, self.den ** k)
        return Rational(self.den ** (-k), self.num ** (-k))

    # -- evaluation --------------------------------------------------------
    def eval(self, env: Mapping[str, Number]):
        n = self.num.eval(env)
        d = self.den.eval(env)
        if d == 0:
            raise ZeroDivisionError(f"denominator vanishes at {dict(env)}")
        if isinstance(n, float) or isinstance(d, float):
            return float(n) / float(d)
        return n / d

    def subs(self, env: Mapping[str, Poly | Number]) -> "Rational":
        return Rational(self.num.subs(env), self.den.subs(env))

    # -- comparison --------------------------------------------------------
    def __eq__(self, other) -> bool:
        o = self._coerce(other)
        if o is None:
            return NotImplemented
        return self.num * o.den == o.num * self.den

    def __hash__(self) -> int:
        return hash((self.num, self.den))

    def __repr__(self) -> str:
        if self.is_poly():
            return repr(self.num)
        return f"({self.num!r}) / ({self.den!r})"


def _leading_coeff(p: Poly) -> Fraction:
    terms = p.terms
    if not terms:
        return Fraction(0)
    lead = min(terms, key=Monomial._sort_key)
    return terms[lead]


def ratio(num: ExprLike, den: ExprLike) -> Rational:
    """Build ``num / den`` coercing both sides."""
    n = as_rational(num)
    d = as_rational(den)
    return n / d


def as_rational(x: ExprLike) -> Rational:
    """Coerce any expression-like object to :class:`Rational`."""
    if isinstance(x, Rational):
        return x
    return Rational(poly(x))
