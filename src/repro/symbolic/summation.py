"""Closed-form symbolic summation of polynomials over integer ranges.

This is the piece of Barvinok-style counting that the paper's kernels need:
their iteration domains are loop nests whose bounds are affine in the outer
indices, so ``|domain|`` is an iterated sum of polynomials, which Faulhaber's
formula turns into a closed-form polynomial in the parameters.

``sum_poly(p, x, lo, hi)`` returns the polynomial ``q`` with
``q == sum(p[x := v] for v in range(lo, hi+1))`` as a polynomial identity,
valid whenever ``hi >= lo - 1`` (the value at ``hi == lo - 1`` is 0, matching
the empty-sum convention).
"""

from __future__ import annotations

from fractions import Fraction
from functools import lru_cache
from math import comb

from .expr import Monomial, Poly, poly

__all__ = ["faulhaber", "sum_poly", "count_nest"]


@lru_cache(maxsize=None)
def faulhaber(k: int) -> Poly:
    """The Faulhaber polynomial F_k with F_k(n) = sum_{x=1..n} x**k.

    Computed by the classical telescoping recurrence
    ``(n+1)**(k+1) - 1 = sum_{j=0..k} C(k+1, j) * F_j(n)``.
    """
    if k < 0:
        raise ValueError("faulhaber exponent must be >= 0")
    n = Poly.symbol("_n")
    acc = (n + 1) ** (k + 1) - 1
    for j in range(k):
        acc = acc - faulhaber(j) * comb(k + 1, j)
    return acc * Poly.const(Fraction(1, k + 1))


def _power_sum(k: int, lo: Poly, hi: Poly) -> Poly:
    """sum_{x=lo..hi} x**k as a polynomial in the symbols of lo/hi."""
    f = faulhaber(k)
    return f.subs({"_n": hi}) - f.subs({"_n": lo - 1})


def sum_poly(p: Poly, var: str, lo, hi) -> Poly:
    """Sum polynomial ``p`` over ``var`` ranging from ``lo`` to ``hi`` inclusive.

    ``lo`` and ``hi`` may be numbers or polynomials in other symbols.
    ``p`` must have non-negative integer exponents in ``var``.
    """
    lo = poly(lo)
    hi = poly(hi)
    if var in lo.symbols() or var in hi.symbols():
        raise ValueError(f"summation bounds must not contain {var!r}")
    # group p by the exponent of var
    groups: dict[int, Poly] = {}
    for m, c in p.terms.items():
        e = m.exponent(var)
        if e.denominator != 1 or e < 0:
            raise ValueError(
                f"cannot sum over {var!r} with fractional/negative exponent {e}"
            )
        rest = Monomial((s, x) for s, x in m.items if s != var)
        g = groups.setdefault(int(e), Poly())
        groups[int(e)] = g + Poly({rest: c})
    out = Poly()
    for e, coeff in groups.items():
        out = out + coeff * _power_sum(e, lo, hi)
    return out


def count_nest(loops: list[tuple[str, object, object]]) -> Poly:
    """Count integer points of a loop nest.

    ``loops`` is an ordered list ``[(var, lo, hi), ...]`` from outermost to
    innermost, each bound inclusive and affine (a :class:`Poly` or number) in
    the *outer* loop variables and the parameters.  Returns the closed-form
    point count as a polynomial in the parameters; the formula assumes every
    range is non-empty in the intended parameter regime (standard polyhedral
    caveat — cross-checked against enumeration in the tests).
    """
    acc = Poly.const(1)
    for var, lo, hi in reversed(loops):
        acc = sum_poly(acc, var, poly(lo), poly(hi))
    return acc
