"""Asymptotic comparison of parametric bound expressions.

Figure 4 of the paper compares *asymptotic* bounds (e.g. the hourglass MGS
bound improves on the classical one by Theta(M/sqrt(S))).  Rather than build a
symbolic limit engine, we classify ratios numerically along a user-declared
growth regime — each parameter is a function of a single scale ``t``.  The
classification uses the log–log slope of the ratio, which detects arbitrarily
slow polynomial growth (t**(1/4) and the like) that a plain convergence test
would miss.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Callable, Mapping, Sequence

from .rational import ExprLike, as_rational

__all__ = ["Regime", "growth_exponent", "limit_ratio", "classify", "improvement_factor"]

GrowthFn = Callable[[float], float]


@dataclass(frozen=True)
class Regime:
    """A growth regime: parameter name -> function of the scale t.

    Example: ``Regime({"M": lambda t: t, "N": lambda t: t, "S": math.sqrt})``
    models square matrices with a cache of size sqrt(M).
    """

    growth: Mapping[str, GrowthFn] = field(default_factory=dict)
    name: str = ""

    def env(self, t: float) -> dict[str, float]:
        return {k: float(f(t)) for k, f in self.growth.items()}


def _ratios(
    num: ExprLike, den: ExprLike, regime: Regime, ts: Sequence[float]
) -> list[float]:
    n = as_rational(num)
    d = as_rational(den)
    out = []
    for t in ts:
        env = regime.env(t)
        dv = d.eval(env)
        nv = n.eval(env)
        if dv == 0:
            raise ZeroDivisionError(f"denominator vanishes at t={t}")
        out.append(float(nv) / float(dv))
    return out


def growth_exponent(
    num: ExprLike,
    den: ExprLike,
    regime: Regime,
    *,
    t0: float = 2.0**10,
    steps: int = 20,
    factor: float = 2.0,
) -> float:
    """Estimate ``alpha`` such that ``num/den ~ t**alpha`` along ``regime``.

    Computed as the log–log slope of the ratio over the last half of a
    geometric sweep of ``t``; exact for rational functions with Puiseux
    exponents, which is all this library produces.
    """
    ts = [t0 * factor**k for k in range(steps)]
    rs = _ratios(num, den, regime, ts)
    if any(r <= 0 for r in rs):
        raise ValueError("growth_exponent requires eventually-positive ratios")
    half = steps // 2
    lt0, lt1 = math.log(ts[half]), math.log(ts[-1])
    lr0, lr1 = math.log(rs[half]), math.log(rs[-1])
    return (lr1 - lr0) / (lt1 - lt0)


def limit_ratio(
    num: ExprLike,
    den: ExprLike,
    regime: Regime,
    *,
    t0: float = 2.0**10,
    steps: int = 20,
    factor: float = 2.0,
    slope_tol: float = 5e-3,
) -> float:
    """Estimate ``lim_{t->inf} num/den`` along ``regime``.

    Returns ``math.inf`` when the ratio grows polynomially, ``0.0`` when it
    decays polynomially, otherwise the value at the largest sampled ``t``
    (the limit, for rational functions with a finite one).
    """
    alpha = growth_exponent(num, den, regime, t0=t0, steps=steps, factor=factor)
    ts = [t0 * factor**k for k in range(steps)]
    rs = _ratios(num, den, regime, ts)
    if alpha > slope_tol:
        return math.inf if rs[-1] > 0 else -math.inf
    if alpha < -slope_tol:
        return 0.0
    return rs[-1]


def classify(num: ExprLike, den: ExprLike, regime: Regime, **kw) -> str:
    """Classify num vs den along a regime.

    Returns ``"dominated"`` (num = o(den)), ``"same-order"`` (Theta), or
    ``"dominates"`` (den = o(num)).
    """
    lim = limit_ratio(num, den, regime, **kw)
    if lim == 0.0:
        return "dominated"
    if math.isinf(lim):
        return "dominates"
    return "same-order"


def improvement_factor(
    new: ExprLike, old: ExprLike, regime: Regime, t: float = 2.0**16
) -> float:
    """Concrete new/old ratio at scale t — how much a bound improved."""
    n = as_rational(new)
    o = as_rational(old)
    env = regime.env(t)
    return float(n.eval(env)) / float(o.eval(env))
