"""A small polyhedral library: affine forms, parametric integer sets, maps.

This is the ISL/barvinok substitute described in DESIGN.md §5: Fourier–Motzkin
projection, point enumeration/counting for concrete parameters, affine maps
for dependence relations, and closed-form symbolic counting for loop nests.
"""

from .affine import LinExpr, aff, var
from .amap import AffineMap
from .count import linexpr_to_poly, symbolic_count, verify_count
from .iset import EQ, GE, Constraint, ISet, loop_nest_set
from .lexorder import lex_le, lex_lt, lex_max, lex_min, lex_next, lex_sorted

__all__ = [
    "LinExpr",
    "aff",
    "var",
    "AffineMap",
    "linexpr_to_poly",
    "symbolic_count",
    "verify_count",
    "Constraint",
    "ISet",
    "loop_nest_set",
    "GE",
    "EQ",
    "lex_le",
    "lex_lt",
    "lex_max",
    "lex_min",
    "lex_next",
    "lex_sorted",
]
