"""Symbolic cardinality of loop-nest domains, with enumeration cross-checks.

``symbolic_count`` turns a loop nest (the same triples accepted by
:func:`~repro.polyhedral.iset.loop_nest_set`) into a closed-form polynomial in
the parameters via iterated Faulhaber summation, and ``verify_count`` checks
that formula against brute-force enumeration of the matching :class:`ISet`
for a grid of concrete parameter values — our substitute for barvinok.
"""

from __future__ import annotations

from typing import Mapping, Sequence

from ..symbolic import Poly, Sym, count_nest
from .affine import LinExpr, Number, aff
from .iset import ISet, loop_nest_set

__all__ = ["linexpr_to_poly", "symbolic_count", "verify_count"]


def linexpr_to_poly(e: LinExpr | Number) -> Poly:
    """Convert an affine form to a (degree-<=1) polynomial."""
    e = aff(e)
    out = Poly.const(e.const)
    for v, c in e.coeffs.items():
        out = out + Sym(v) * c
    return out


def symbolic_count(
    loops: Sequence[tuple[str, LinExpr | Number, LinExpr | Number]],
) -> Poly:
    """Closed-form point count of a loop nest with inclusive affine bounds.

    Valid in parameter regimes where every loop range is non-empty for all
    outer iterations (the usual polyhedral-counting caveat; checked against
    enumeration by :func:`verify_count` in the test-suite).
    """
    return count_nest(
        [(v, linexpr_to_poly(lo), linexpr_to_poly(hi)) for v, lo, hi in loops]
    )


def verify_count(
    loops: Sequence[tuple[str, LinExpr | Number, LinExpr | Number]],
    params_grid: Sequence[Mapping[str, int]],
) -> bool:
    """True iff the symbolic count matches enumeration on every grid point."""
    formula = symbolic_count(loops)
    dom: ISet = loop_nest_set(loops)
    for params in params_grid:
        expected = dom.count(params)
        got = formula.eval(params)
        if got != expected:
            return False
    return True
