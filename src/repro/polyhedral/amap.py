"""Affine maps and relations between iteration spaces.

Dependence relations in the IR are guarded affine relations.  Most are
*functional* (one target per source: e.g. the reduction chain
``SR[k,j,i] -> SR[k,j,i+1]``); broadcasts are one-to-many and are expressed
with *free dimensions*: the broadcast ``SR[k,j,M-1] -> SU[k,j,i']`` binds a
free variable ``i'`` ranging over an affine interval.
"""

from __future__ import annotations

from typing import Iterable, Iterator, Mapping, Sequence

from .affine import LinExpr, Number, aff
from .iset import Constraint, ISet

__all__ = ["AffineMap"]

FreeTriple = tuple[str, "LinExpr | Number", "LinExpr | Number"]


class AffineMap:
    """``{ src -> tgt : tgt_i = f_i(src, free, params), guards, free bounds }``.

    ``exprs`` gives, for each target dimension, an affine expression in the
    source dimensions, the free dimensions and parameters.  ``guards`` are
    affine constraints over the source dims (+ params).  ``free`` lists
    ``(name, lo, hi)`` inclusive affine bounds (in source dims + params) for
    each free dimension; the relation relates a source point to one target
    per integer assignment of the free dims.
    """

    __slots__ = ("src_dims", "tgt_dims", "exprs", "guards", "free")

    def __init__(
        self,
        src_dims: Sequence[str],
        tgt_dims: Sequence[str],
        exprs: Mapping[str, LinExpr | Number],
        guards: Iterable[Constraint] = (),
        free: Sequence[FreeTriple] = (),
    ):
        self.src_dims = tuple(src_dims)
        self.tgt_dims = tuple(tgt_dims)
        missing = set(tgt_dims) - set(exprs)
        if missing:
            raise ValueError(f"missing expressions for target dims {missing}")
        self.exprs = {d: aff(exprs[d]) for d in tgt_dims}
        self.guards = tuple(guards)
        self.free = tuple((n, aff(lo), aff(hi)) for n, lo, hi in free)

    def is_functional(self) -> bool:
        return not self.free

    def _guard_ok(self, env: Mapping[str, Number]) -> bool:
        return all(g.holds(env) for g in self.guards)

    def _target(self, env: Mapping[str, Number]) -> tuple[int, ...] | None:
        out = []
        for d in self.tgt_dims:
            v = self.exprs[d].eval(env)
            if v.denominator != 1:
                return None
            out.append(int(v))
        return tuple(out)

    def apply(
        self, point: Sequence[int], params: Mapping[str, int]
    ) -> tuple[int, ...] | None:
        """Map a concrete source point (functional maps only)."""
        if self.free:
            raise ValueError("apply() on a relation with free dims; use apply_all")
        env = dict(params)
        env.update(zip(self.src_dims, point))
        if not self._guard_ok(env):
            return None
        return self._target(env)

    def apply_all(
        self, point: Sequence[int], params: Mapping[str, int]
    ) -> Iterator[tuple[int, ...]]:
        """All targets related to a concrete source point."""
        env = dict(params)
        env.update(zip(self.src_dims, point))
        if not self._guard_ok(env):
            return
        if not self.free:
            t = self._target(env)
            if t is not None:
                yield t
            return

        def rec(k: int) -> Iterator[tuple[int, ...]]:
            if k == len(self.free):
                t = self._target(env)
                if t is not None:
                    yield t
                return
            name, lo, hi = self.free[k]
            lo_v = lo.eval(env)
            hi_v = hi.eval(env)
            import math

            for v in range(math.ceil(lo_v), math.floor(hi_v) + 1):
                env[name] = v
                yield from rec(k + 1)
            env.pop(name, None)

        yield from rec(0)

    def restrict_domain(self, dom: ISet) -> "AffineMap":
        """Add the constraints of ``dom`` (over src dims) as guards."""
        if dom.dims != self.src_dims:
            raise ValueError("domain dims mismatch")
        return AffineMap(
            self.src_dims,
            self.tgt_dims,
            self.exprs,
            self.guards + dom.constraints,
            self.free,
        )

    def __repr__(self) -> str:
        body = ", ".join(f"{d}' = {self.exprs[d]!r}" for d in self.tgt_dims)
        g = (
            " : " + " and ".join(repr(c) for c in self.guards)
            if self.guards
            else ""
        )
        f = (
            " free " + ", ".join(f"{n} in [{lo!r},{hi!r}]" for n, lo, hi in self.free)
            if self.free
            else ""
        )
        return f"{{[{', '.join(self.src_dims)}] -> [{body}]{g}{f}}}"
