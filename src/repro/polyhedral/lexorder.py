"""Lexicographic-order helpers for iteration vectors.

The paper's hourglass definition speaks of "the next valid lexicographic
value of k-vector" and of lexicographic comparisons between temporal slices;
these helpers implement that vocabulary over finite point sets.
"""

from __future__ import annotations

from typing import Iterable, Sequence

__all__ = ["lex_lt", "lex_le", "lex_min", "lex_max", "lex_next", "lex_sorted"]


def lex_lt(a: Sequence[int], b: Sequence[int]) -> bool:
    """Strict lexicographic a < b (equal-length vectors)."""
    if len(a) != len(b):
        raise ValueError("lexicographic comparison of different arities")
    return tuple(a) < tuple(b)


def lex_le(a: Sequence[int], b: Sequence[int]) -> bool:
    """Lexicographic a <= b (equal-length vectors)."""
    if len(a) != len(b):
        raise ValueError("lexicographic comparison of different arities")
    return tuple(a) <= tuple(b)


def lex_min(points: Iterable[Sequence[int]]) -> tuple[int, ...]:
    """Lexicographically smallest point of a non-empty collection."""
    return tuple(min(tuple(p) for p in points))


def lex_max(points: Iterable[Sequence[int]]) -> tuple[int, ...]:
    """Lexicographically largest point of a non-empty collection."""
    return tuple(max(tuple(p) for p in points))


def lex_next(
    point: Sequence[int], universe: Iterable[Sequence[int]]
) -> tuple[int, ...] | None:
    """The smallest element of ``universe`` strictly greater than ``point``.

    This is the paper's ``k+1`` operation: the next *valid* lexicographic
    value within a finite set of iteration vectors.  None if ``point`` is
    the maximum.
    """
    p = tuple(point)
    best: tuple[int, ...] | None = None
    for q in universe:
        tq = tuple(q)
        if tq > p and (best is None or tq < best):
            best = tq
    return best


def lex_sorted(points: Iterable[Sequence[int]]) -> list[tuple[int, ...]]:
    """Points as tuples in lexicographic order."""
    return sorted(tuple(p) for p in points)
