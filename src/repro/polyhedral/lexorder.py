"""Lexicographic-order helpers for iteration vectors.

The paper's hourglass definition speaks of "the next valid lexicographic
value of k-vector" and of lexicographic comparisons between temporal slices;
these helpers implement that vocabulary over finite point sets.
"""

from __future__ import annotations

from typing import Iterable, Sequence

from .affine import LinExpr, aff
from .iset import EQ, GE, Constraint

__all__ = [
    "lex_lt",
    "lex_le",
    "lex_min",
    "lex_max",
    "lex_next",
    "lex_sorted",
    "lex_lt_branches",
    "lex_le_branches",
]


def lex_lt(a: Sequence[int], b: Sequence[int]) -> bool:
    """Strict lexicographic a < b (equal-length vectors)."""
    if len(a) != len(b):
        raise ValueError("lexicographic comparison of different arities")
    return tuple(a) < tuple(b)


def lex_le(a: Sequence[int], b: Sequence[int]) -> bool:
    """Lexicographic a <= b (equal-length vectors)."""
    if len(a) != len(b):
        raise ValueError("lexicographic comparison of different arities")
    return tuple(a) <= tuple(b)


def lex_min(points: Iterable[Sequence[int]]) -> tuple[int, ...]:
    """Lexicographically smallest point of a non-empty collection."""
    return tuple(min(tuple(p) for p in points))


def lex_max(points: Iterable[Sequence[int]]) -> tuple[int, ...]:
    """Lexicographically largest point of a non-empty collection."""
    return tuple(max(tuple(p) for p in points))


def lex_next(
    point: Sequence[int], universe: Iterable[Sequence[int]]
) -> tuple[int, ...] | None:
    """The smallest element of ``universe`` strictly greater than ``point``.

    This is the paper's ``k+1`` operation: the next *valid* lexicographic
    value within a finite set of iteration vectors.  None if ``point`` is
    the maximum.
    """
    p = tuple(point)
    best: tuple[int, ...] | None = None
    for q in universe:
        tq = tuple(q)
        if tq > p and (best is None or tq < best):
            best = tq
    return best


def lex_sorted(points: Iterable[Sequence[int]]) -> list[tuple[int, ...]]:
    """Points as tuples in lexicographic order."""
    return sorted(tuple(p) for p in points)


# -- symbolic comparisons ----------------------------------------------------
#
# The concrete helpers above compare known integer vectors; the dependence
# analyzer instead needs ``a <_lex b`` as a *disjunction of affine constraint
# systems* over symbolic schedule vectors.  Level ``l`` contributes the branch
# ``a[0] == b[0] and ... and a[l-1] == b[l-1] and a[l] + 1 <= b[l]``; the
# union over levels is the exact strict order.


def _lex_branches(
    a: Sequence[LinExpr | int],
    b: Sequence[LinExpr | int],
    include_eq: bool,
) -> list[list[Constraint]]:
    if len(a) != len(b):
        raise ValueError("lexicographic comparison of different arities")
    branches: list[list[Constraint]] = []
    prefix: list[Constraint] = []
    dead = False
    for av, bv in zip(a, b):
        diff = aff(bv) - aff(av)
        strict = diff - 1
        if strict.is_const():
            if strict.const >= 0:
                branches.append(list(prefix))
        else:
            branches.append(prefix + [Constraint(strict, GE)])
        if diff.is_const():
            if diff.const != 0:
                dead = True
                break
        else:
            prefix.append(Constraint(diff, EQ))
    if include_eq and not dead:
        branches.append(list(prefix))
    return branches


def lex_lt_branches(
    a: Sequence[LinExpr | int], b: Sequence[LinExpr | int]
) -> list[list[Constraint]]:
    """Branches (constraint conjunctions) whose union is ``a <_lex b``.

    ``a`` and ``b`` are equal-length vectors of affine expressions (plain
    ints accepted).  An empty inner list is a branch that is always true.
    Constant entries are folded: constant-false branches are dropped, and no
    branch is produced past a constant-unequal prefix entry.
    """
    return _lex_branches(a, b, include_eq=False)


def lex_le_branches(
    a: Sequence[LinExpr | int], b: Sequence[LinExpr | int]
) -> list[list[Constraint]]:
    """Branches whose union is ``a <=_lex b`` (adds the all-equal branch)."""
    return _lex_branches(a, b, include_eq=True)
