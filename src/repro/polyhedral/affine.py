"""Affine (linear + constant) forms over named variables.

These are the building blocks of iteration domains, array access functions
and dependence relations.  Variables are plain strings; whether a variable is
a loop dimension or a program parameter is decided by the containing
:class:`~repro.polyhedral.iset.ISet` / IR object, not here.

Coefficients are exact :class:`fractions.Fraction`; the polyhedral layer
works over the rationals and the integer semantics are recovered at
enumeration time.
"""

from __future__ import annotations

from fractions import Fraction
from typing import Iterable, Mapping, Union

__all__ = ["LinExpr", "aff", "var"]

Number = Union[int, Fraction]


class LinExpr:
    """An affine form ``sum(coeff_v * v) + const``.  Immutable, hashable."""

    __slots__ = ("_coeffs", "_const", "_hash")

    def __init__(
        self,
        coeffs: Mapping[str, Number] | Iterable[tuple[str, Number]] = (),
        const: Number = 0,
    ):
        if isinstance(coeffs, Mapping):
            items = coeffs.items()
        else:
            items = coeffs
        cleaned = {}
        for v, c in items:
            c = Fraction(c)
            if c != 0:
                cleaned[v] = c
        self._coeffs = cleaned
        self._const = Fraction(const)
        self._hash: int | None = None

    # -- accessors -----------------------------------------------------------
    @property
    def coeffs(self) -> dict[str, Fraction]:
        return dict(self._coeffs)

    @property
    def const(self) -> Fraction:
        return self._const

    def coeff(self, v: str) -> Fraction:
        return self._coeffs.get(v, Fraction(0))

    def variables(self) -> frozenset[str]:
        return frozenset(self._coeffs)

    def is_const(self) -> bool:
        return not self._coeffs

    # -- arithmetic -----------------------------------------------------------
    @staticmethod
    def _coerce(x) -> "LinExpr | None":
        if isinstance(x, LinExpr):
            return x
        if isinstance(x, (int, Fraction)):
            return LinExpr((), x)
        return None

    def __add__(self, other) -> "LinExpr":
        o = self._coerce(other)
        if o is None:
            return NotImplemented
        coeffs = dict(self._coeffs)
        for v, c in o._coeffs.items():
            coeffs[v] = coeffs.get(v, Fraction(0)) + c
        return LinExpr(coeffs, self._const + o._const)

    __radd__ = __add__

    def __neg__(self) -> "LinExpr":
        return LinExpr({v: -c for v, c in self._coeffs.items()}, -self._const)

    def __sub__(self, other) -> "LinExpr":
        o = self._coerce(other)
        if o is None:
            return NotImplemented
        return self + (-o)

    def __rsub__(self, other) -> "LinExpr":
        o = self._coerce(other)
        if o is None:
            return NotImplemented
        return o + (-self)

    def __mul__(self, k) -> "LinExpr":
        if not isinstance(k, (int, Fraction)):
            return NotImplemented
        k = Fraction(k)
        return LinExpr(
            {v: c * k for v, c in self._coeffs.items()}, self._const * k
        )

    __rmul__ = __mul__

    # -- evaluation -----------------------------------------------------------
    def eval(self, env: Mapping[str, Number]) -> Fraction:
        out = self._const
        for v, c in self._coeffs.items():
            if v not in env:
                raise KeyError(f"variable {v!r} unbound")
            out += c * Fraction(env[v])
        return out

    def subs(self, env: Mapping[str, "LinExpr | Number"]) -> "LinExpr":
        """Substitute some variables by affine forms or numbers."""
        out = LinExpr((), self._const)
        for v, c in self._coeffs.items():
            if v in env:
                repl = env[v]
                if not isinstance(repl, LinExpr):
                    repl = LinExpr((), repl)
                out = out + repl * c
            else:
                out = out + LinExpr({v: c})
        return out

    def rename(self, mapping: Mapping[str, str]) -> "LinExpr":
        return LinExpr(
            {mapping.get(v, v): c for v, c in self._coeffs.items()}, self._const
        )

    # -- serialization --------------------------------------------------------
    def to_dict(self) -> dict:
        """JSON-able form ``{"coeffs": {var: "p/q"}, "const": "p/q"}``.

        Coefficients serialize as exact ``Fraction`` strings so the
        certificate layer round-trips affine forms without float drift.
        """
        return {
            "coeffs": {v: str(c) for v, c in sorted(self._coeffs.items())},
            "const": str(self._const),
        }

    # -- comparison -----------------------------------------------------------
    def __eq__(self, other) -> bool:
        o = self._coerce(other)
        if o is None:
            return NotImplemented
        return self._coeffs == o._coeffs and self._const == o._const

    def __hash__(self) -> int:
        if self._hash is None:
            self._hash = hash(
                (frozenset(self._coeffs.items()), self._const)
            )
        return self._hash

    def __repr__(self) -> str:
        parts = []
        for v in sorted(self._coeffs):
            c = self._coeffs[v]
            if c == 1:
                parts.append(f"+{v}")
            elif c == -1:
                parts.append(f"-{v}")
            else:
                parts.append(f"{'+' if c > 0 else '-'}{abs(c)}*{v}")
        if self._const or not parts:
            parts.append(f"{'+' if self._const >= 0 else '-'}{abs(self._const)}")
        s = "".join(parts)
        return s[1:] if s.startswith("+") else s


def var(name: str) -> LinExpr:
    """An affine form consisting of a single variable."""
    return LinExpr({name: 1})


def aff(x: "LinExpr | Number") -> LinExpr:
    """Coerce a number or affine form to :class:`LinExpr`."""
    if isinstance(x, LinExpr):
        return x
    return LinExpr((), x)
