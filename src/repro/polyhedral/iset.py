"""Parametric integer sets bounded by affine constraints (a small ISL work-alike).

An :class:`ISet` is ``{ (d_1..d_n) in Z^n : c_j(d, p) >= 0 }`` where the
``c_j`` are affine in the dimensions ``d`` and the symbolic parameters ``p``.
The fragment implemented here — intersection, slicing, Fourier–Motzkin
projection, point enumeration and counting for concrete parameter values —
is exactly what the paper's kernels (loop-nest domains with affine bounds)
require; see DESIGN.md §5 for the substitution rationale.
"""

from __future__ import annotations

import itertools
import math
from dataclasses import dataclass
from fractions import Fraction
from typing import Iterable, Iterator, Mapping, Sequence

from .. import obs
from .affine import LinExpr, Number, aff

__all__ = ["Constraint", "ISet", "loop_nest_set"]

GE = ">="
EQ = "=="


@dataclass(frozen=True)
class Constraint:
    """``expr >= 0`` (kind GE) or ``expr == 0`` (kind EQ)."""

    expr: LinExpr
    kind: str = GE

    def __post_init__(self):
        if self.kind not in (GE, EQ):
            raise ValueError(f"bad constraint kind {self.kind!r}")

    def holds(self, env: Mapping[str, Number]) -> bool:
        v = self.expr.eval(env)
        return v == 0 if self.kind == EQ else v >= 0

    def subs(self, env: Mapping[str, LinExpr | Number]) -> "Constraint":
        return Constraint(self.expr.subs(env), self.kind)

    def rename(self, mapping: Mapping[str, str]) -> "Constraint":
        return Constraint(self.expr.rename(mapping), self.kind)

    def to_dict(self) -> dict:
        """JSON-able form ``{"expr": {...}, "kind": ">="|"=="}``."""
        return {"expr": self.expr.to_dict(), "kind": self.kind}

    def __repr__(self) -> str:
        return f"{self.expr!r} {self.kind} 0"


class ISet:
    """A parametric integer set over named dimensions.

    ``dims`` is the ordered tuple of dimension names (the enumeration order —
    by convention the loop order, outermost first).  Every variable appearing
    in a constraint that is not a dimension is a parameter.
    """

    __slots__ = ("dims", "constraints")

    def __init__(self, dims: Sequence[str], constraints: Iterable[Constraint]):
        self.dims: tuple[str, ...] = tuple(dims)
        if len(set(self.dims)) != len(self.dims):
            raise ValueError(f"duplicate dimensions in {self.dims}")
        self.constraints: tuple[Constraint, ...] = tuple(constraints)

    # -- inspection -----------------------------------------------------------
    def params(self) -> frozenset[str]:
        out: set[str] = set()
        for c in self.constraints:
            out |= c.expr.variables()
        return frozenset(out - set(self.dims))

    def __repr__(self) -> str:
        cs = " and ".join(repr(c) for c in self.constraints)
        return f"{{[{', '.join(self.dims)}] : {cs}}}"

    def to_dict(self) -> dict:
        """JSON-able form: ordered dims + constraint list (for certificates)."""
        return {
            "dims": list(self.dims),
            "constraints": [c.to_dict() for c in self.constraints],
        }

    # -- predicates ------------------------------------------------------------
    def contains(
        self, point: Sequence[int], params: Mapping[str, int]
    ) -> bool:
        if len(point) != len(self.dims):
            raise ValueError(
                f"point arity {len(point)} != set arity {len(self.dims)}"
            )
        env = dict(params)
        env.update(zip(self.dims, point))
        return all(c.holds(env) for c in self.constraints)

    # -- set algebra -------------------------------------------------------
    def intersect(self, other: "ISet") -> "ISet":
        if other.dims != self.dims:
            raise ValueError("intersecting sets with different dimensions")
        return ISet(self.dims, self.constraints + other.constraints)

    def with_constraints(self, extra: Iterable[Constraint]) -> "ISet":
        return ISet(self.dims, self.constraints + tuple(extra))

    def fix(self, assignments: Mapping[str, int]) -> "ISet":
        """Slice: fix some dimensions to integer values."""
        remaining = tuple(d for d in self.dims if d not in assignments)
        env = {d: aff(v) for d, v in assignments.items()}
        return ISet(remaining, (c.subs(env) for c in self.constraints))

    def rename(self, mapping: Mapping[str, str]) -> "ISet":
        """Rename dimensions (and/or parameters) by exact name mapping.

        Used by the dependence analyzer to give the source and target copies
        of a statement domain disjoint dimension names before intersecting.
        """
        new_dims = tuple(mapping.get(d, d) for d in self.dims)
        return ISet(new_dims, (c.rename(mapping) for c in self.constraints))

    # -- Fourier–Motzkin projection ---------------------------------------
    def eliminate(self, dim: str) -> "ISet":
        """Project out one dimension (rational FM shadow).

        The result is a superset of the exact integer projection; exact
        enumeration-level semantics are recovered in :meth:`points` by
        substituting concrete values level by level.
        """
        if dim not in self.dims:
            raise ValueError(f"{dim!r} is not a dimension of {self.dims}")
        obs.add("polyhedral.fm_eliminations")
        eqs, lowers, uppers, rest = [], [], [], []
        for c in self.constraints:
            a = c.expr.coeff(dim)
            if c.kind == EQ and a != 0:
                eqs.append(c)
            elif a > 0:
                lowers.append(c)  # a*dim + r >= 0  ->  dim >= -r/a
            elif a < 0:
                uppers.append(c)  # dim <= -r/a
            else:
                rest.append(c)
        new_dims = tuple(d for d in self.dims if d != dim)
        if eqs:
            # substitute dim := -rest/a from the first equality
            eq = eqs[0]
            a = eq.expr.coeff(dim)
            repl = (eq.expr - LinExpr({dim: a})) * Fraction(-1, 1) * (Fraction(1) / a)
            env = {dim: repl}
            out = [c.subs(env) for c in self.constraints if c is not eq]
            return ISet(new_dims, out)
        out = list(rest)
        obs.add("polyhedral.fm_pairs", len(lowers) * len(uppers))
        for lo in lowers:
            for up in uppers:
                a = lo.expr.coeff(dim)
                b = -up.expr.coeff(dim)
                # combine a*dim + r1 >= 0 and -b*dim + r2 >= 0:
                #   b*r1 + a*r2 >= 0
                combined = lo.expr * b + up.expr * a
                combined = combined - LinExpr({dim: combined.coeff(dim)})
                out.append(Constraint(combined, GE))
        return ISet(new_dims, out)

    def project(self, keep: Sequence[str]) -> "ISet":
        """Project onto a subset of dimensions (rational shadow), keeping order."""
        keep_set = set(keep)
        unknown = keep_set - set(self.dims)
        if unknown:
            raise ValueError(f"unknown dimensions {unknown}")
        s = self
        for d in reversed(self.dims):
            if d not in keep_set:
                s = s.eliminate(d)
        # reorder
        order = tuple(k for k in keep)
        if s.dims != order:
            perm_set = ISet(order, s.constraints)
            return perm_set
        return s

    # -- enumeration ------------------------------------------------------
    def _bounds_for(
        self, dim: str, env: Mapping[str, Number], shadow: "ISet"
    ) -> tuple[int, int] | None:
        """Integer [lo, hi] range of `dim` in `shadow` given fixed env."""
        lo: Fraction | None = None
        hi: Fraction | None = None
        for c in shadow.constraints:
            a = c.expr.coeff(dim)
            if a == 0:
                # pure guard at this level
                v = c.expr.eval(env)
                ok = (v == 0) if c.kind == EQ else (v >= 0)
                if not ok:
                    return None
                continue
            rest = (c.expr - LinExpr({dim: a})).eval(env)
            bound = -rest / a
            if c.kind == EQ:
                if bound.denominator != 1:
                    return None
                lo = bound if lo is None else max(lo, bound)
                hi = bound if hi is None else min(hi, bound)
            elif a > 0:
                lo = bound if lo is None else max(lo, bound)
            else:
                hi = bound if hi is None else min(hi, bound)
        if lo is None or hi is None:
            raise ValueError(
                f"dimension {dim!r} is unbounded; cannot enumerate"
            )
        ilo = math.ceil(lo)
        ihi = math.floor(hi)
        if ihi < ilo:
            return None
        return ilo, ihi

    def points(self, params: Mapping[str, int]) -> Iterator[tuple[int, ...]]:
        """Enumerate all integer points for concrete parameter values."""
        missing = self.params() - set(params)
        if missing:
            raise KeyError(f"unbound parameters {sorted(missing)}")
        # prefix shadows: shadow[k] constrains dims[0..k]
        shadows: list[ISet] = [None] * len(self.dims)  # type: ignore
        s = self
        for k in range(len(self.dims) - 1, -1, -1):
            shadows[k] = s
            if k > 0:
                s = s.eliminate(self.dims[k])

        def rec(k: int, env: dict) -> Iterator[tuple[int, ...]]:
            if k == len(self.dims):
                yield tuple(env[d] for d in self.dims)
                return
            dim = self.dims[k]
            rng = self._bounds_for(dim, env, shadows[k])
            if rng is None:
                return
            lo, hi = rng
            for v in range(lo, hi + 1):
                env[dim] = v
                if k == len(self.dims) - 1:
                    # verify against the *original* constraints (the shadow
                    # chain is exact here, but equalities with fractional
                    # solutions are filtered)
                    if all(c.holds(env) for c in self.constraints):
                        yield tuple(env[d] for d in self.dims)
                else:
                    yield from rec(k + 1, env)
            env.pop(dim, None)

        if not self.dims:
            env0 = dict(params)
            if all(c.holds(env0) for c in self.constraints):
                yield ()
            return
        yield from rec(0, dict(params))

    def count(self, params: Mapping[str, int]) -> int:
        """Number of integer points at concrete parameter values."""
        n = sum(1 for _ in self.points(params))
        obs.add("polyhedral.points_enumerated", n)
        return n

    def is_empty(self, params: Mapping[str, int]) -> bool:
        return next(iter(self.points(params)), None) is None

    # -- symbolic emptiness ------------------------------------------------
    def definitely_empty(self) -> bool:
        """Sound parametric emptiness test — no enumeration, no fixed params.

        Eliminates every dimension with Fourier–Motzkin and reports ``True``
        iff a variable-free constraint becomes infeasible along the way.  The
        rational FM shadow is a superset of the integer projection, so
        ``True`` certifies the set holds no integer point for *any* parameter
        values; ``False`` is inconclusive (the set may still be integer-empty,
        e.g. through divisibility gaps such as ``2i == 2j + 1``).
        """
        obs.add("polyhedral.sym_empty_checks")
        s = self
        while True:
            cons = _simplified_or_none(s.constraints)
            if cons is None:
                return True
            if not s.dims:
                return False
            s = ISet(s.dims, cons).eliminate(s.dims[-1])

    def sample(self, params: Mapping[str, int]) -> tuple[int, ...] | None:
        return next(iter(self.points(params)), None)

    def project_points(
        self, keep: Sequence[str], params: Mapping[str, int]
    ) -> set[tuple[int, ...]]:
        """Exact integer projection (as a finite set of tuples)."""
        idx = [self.dims.index(k) for k in keep]
        return {tuple(p[i] for i in idx) for p in self.points(params)}


def _simplified_or_none(
    constraints: Iterable[Constraint],
) -> tuple[Constraint, ...] | None:
    """Dedupe and strengthen a constraint system; ``None`` when infeasible.

    Variable-free constraints are checked and dropped (an unsatisfiable one
    makes the whole system infeasible), every remaining constraint is scaled
    to coprime integer coefficients, only the strongest GE bound per
    coefficient vector survives, and two equalities that differ only in their
    constant are spotted as a direct contradiction.  This keeps iterated FM
    elimination (see :meth:`ISet.definitely_empty`) from drowning in the
    redundant pairs it generates.
    """
    ges: dict[tuple, Fraction] = {}
    eqs: dict[tuple, Fraction] = {}
    for c in constraints:
        coeffs = {v: f for v, f in c.expr.coeffs.items() if f != 0}
        if not coeffs:
            v = c.expr.const
            bad = (v != 0) if c.kind == EQ else (v < 0)
            if bad:
                return None
            continue
        denom = 1
        for f in list(coeffs.values()) + [c.expr.const]:
            denom = denom * f.denominator // math.gcd(denom, f.denominator)
        g = 0
        for f in coeffs.values():
            g = math.gcd(g, abs(int(f * denom)))
        scale = Fraction(denom, g or 1)
        items = tuple(sorted((v, f * scale) for v, f in coeffs.items()))
        const = c.expr.const * scale
        if c.kind == EQ:
            if items[0][1] < 0:
                items = tuple((v, -f) for v, f in items)
                const = -const
            prev = eqs.get(items)
            if prev is not None and prev != const:
                return None
            eqs[items] = const
        else:
            prev = ges.get(items)
            if prev is None or const < prev:
                ges[items] = const
    out = [Constraint(LinExpr(dict(k), v), EQ) for k, v in eqs.items()]
    out += [Constraint(LinExpr(dict(k), v), GE) for k, v in ges.items()]
    return tuple(out)


def loop_nest_set(
    loops: Sequence[tuple[str, LinExpr | Number, LinExpr | Number]],
    guards: Iterable[Constraint] = (),
) -> ISet:
    """Build the ISet of a loop nest ``[(var, lo, hi_inclusive), ...]``.

    Bounds may reference outer loop variables and parameters, exactly like
    the figures in the paper (e.g. ``for (j = k+1; j < N; ++j)`` becomes
    ``("j", var("k") + 1, var("N") - 1)``).
    """
    dims = [v for v, _, _ in loops]
    cons: list[Constraint] = []
    for v, lo, hi in loops:
        cons.append(Constraint(LinExpr({v: 1}) - aff(lo), GE))
        cons.append(Constraint(aff(hi) - LinExpr({v: 1}), GE))
    cons.extend(guards)
    return ISet(dims, cons)
