"""One-call validation battery for a kernel.

``selfcheck(kernel)`` runs every independent check the repository has on a
single kernel and returns a structured report:

1. static Program well-formedness;
2. numeric validation (the kernel's own linear-algebra ground truth);
3. spec-vs-runner trace identity (declared IR replays the implementation);
4. CDAG agreement (declared/dataflow vs instrumented);
5. symbolic instance counts vs enumeration;
6. bound soundness against the pebble game across a small cache sweep;
7. the randomized verification battery (:func:`repro.verify.run_verify`)
   on a couple of seeded trials;
8. observability hygiene: the :mod:`repro.obs` registry is empty while
   disabled, and an enable/record/disable round-trip leaves no global
   state behind (tests share one interpreter, so leaks would cross-talk);
9. static analysis (:func:`repro.analysis.check_program`): the kernel's
   program must lint without errors or warnings — infos (parameter
   assumptions, hourglass applicability) are expected and allowed;
10. certificate round-trip: the derivation's ``iolb-cert/1`` proof object
    survives canonical serialization and is accepted by the independent
    checker (:func:`repro.cert.check_certificate`);
11. schedule legality: the kernel's own traced execution order satisfies
    every dependence polyhedron
    (:func:`repro.analysis.deps.check_order`), and reversing the order
    trips at least one — the legality checker is exercised in both
    directions.

Every check always runs — a check that raises is recorded as FAIL with the
exception class and message, and the rest of the battery still executes.
Used by ``iolb selfcheck`` and by downstream users adding their own kernels
— if all eleven pass, the derivation machinery's preconditions hold.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Mapping

from .bounds import derive
from .cdag import build_cdag, check_program_deps, check_spec_matches_runner
from .ir import Tracer, validate_program
from .kernels.common import Kernel
from .pebble import play_schedule

__all__ = ["CheckOutcome", "SelfCheckReport", "selfcheck"]


@dataclass
class CheckOutcome:
    name: str
    passed: bool
    detail: str = ""

    def __repr__(self) -> str:
        mark = "PASS" if self.passed else "FAIL"
        return f"[{mark}] {self.name}" + (f": {self.detail}" if self.detail else "")


@dataclass
class SelfCheckReport:
    kernel: str
    checks: list[CheckOutcome] = field(default_factory=list)

    def ok(self) -> bool:
        return all(c.passed for c in self.checks)

    def summary(self) -> str:
        lines = [f"selfcheck {self.kernel}:"]
        lines.extend(f"  {c!r}" for c in self.checks)
        lines.append(f"  => {'ALL PASS' if self.ok() else 'FAILURES'}")
        return "\n".join(lines)


def selfcheck(
    kernel: Kernel,
    params: Mapping[str, int] | None = None,
    caches: tuple[int, ...] = (4, 8, 16),
    verify_trials: int = 2,
) -> SelfCheckReport:
    """Run the full validation battery; never raises (failures are recorded)."""
    params = dict(params or kernel.default_params)
    rep = SelfCheckReport(kernel=kernel.name)

    def record(name: str, fn) -> bool:
        try:
            detail = fn() or ""
            rep.checks.append(CheckOutcome(name, True, detail))
            return True
        except Exception as exc:  # noqa: BLE001 - battery must not raise
            rep.checks.append(CheckOutcome(name, False, f"{type(exc).__name__}: {exc}"))
            return False

    def c_static():
        problems = validate_program(kernel.program)
        if problems:
            raise AssertionError("; ".join(problems))
        return f"{len(kernel.program.statements)} statements well-formed"

    def c_numeric():
        if kernel.validate is None:
            return "no numeric validator declared (skipped)"
        kernel.validate(params)
        return "linear-algebra ground truth ok"

    def c_trace():
        ok, msg = check_spec_matches_runner(kernel.program, params)
        if not ok:
            raise AssertionError(msg)
        return msg

    def c_cdag():
        diff = check_program_deps(kernel.program, params)
        if not diff.ok():
            raise AssertionError(diff.summary())
        return "declared/dataflow CDAG == instrumented CDAG"

    def c_counts():
        total = 0
        for st in kernel.program.statements:
            try:
                formula = st.instance_count()
            except ValueError:
                continue  # guarded statements have no closed form
            got = int(formula.eval(params))
            want = st.domain().count(params)
            if got != want:
                raise AssertionError(
                    f"{st.name}: symbolic {got} != enumerated {want}"
                )
            total += want
        return f"{total} instances, all counts exact"

    def c_soundness():
        report = derive(kernel, small_params=params)
        g = build_cdag(kernel.program, params)
        t = Tracer()
        kernel.program.runner(dict(params), t)
        worst = None
        for s in caches:
            try:
                measured = play_schedule(g, t.schedule, s, "belady").loads
            except Exception:
                continue  # S too small for some node's operand count
            _, lb = report.best({**params, "S": s})
            if lb > measured + 1e-9:
                raise AssertionError(f"S={s}: bound {lb} > measured {measured}")
            gap = measured / max(lb, 1e-9)
            worst = gap if worst is None else min(worst, gap)
        return f"sound; tightest gap {worst:.2f}x" if worst else "no feasible S"

    def c_verify():
        from .verify import run_verify

        vrep = run_verify(
            [kernel], [], trials=verify_trials, seed=0, fuzz_programs=0
        )
        if not vrep.ok():
            f = vrep.failures[0]
            raise AssertionError(
                f"{len(vrep.failures)} oracle failure(s); first:"
                f" {f.oracle} at {f.shrunk_params or f.params}: {f.detail}"
            )
        passed = sum(1 for o in vrep.outcomes if o.status == "pass")
        return f"{passed} oracle checks passed over {verify_trials} random trials"

    def c_obs():
        from . import obs

        if obs.enabled():
            # a caller (e.g. ``iolb selfcheck --profile``) is recording: the
            # registry legitimately holds data and must not be wiped here
            return "obs enabled by caller; registry left untouched (skipped)"
        leftovers = [
            kind
            for kind, data in (
                ("spans", obs.spans()),
                ("counters", obs.counters()),
                ("gauges", obs.gauges()),
            )
            if data
        ]
        if leftovers:
            raise AssertionError(
                f"obs registry not empty while disabled: stale {leftovers}"
            )
        obs.enable()
        try:
            with obs.span("selfcheck.obs_probe"):
                obs.add("selfcheck.obs_probe", 3)
            if obs.counters().get("selfcheck.obs_probe") != 3 or not obs.spans():
                raise AssertionError("enabled registry did not record the probe")
        finally:
            obs.disable()
            obs.reset()
        if obs.enabled() or obs.spans() or obs.counters() or obs.gauges():
            raise AssertionError("enable/disable round-trip left global state")
        return "registry empty by default; enable/disable round-trip clean"

    def c_lint():
        from .analysis import check_program

        arep = check_program(
            kernel.program, params, dominant=kernel.dominant
        )
        if not arep.clean():
            bad = arep.errors() + arep.warnings()
            raise AssertionError(
                f"{len(bad)} finding(s); first: {bad[0]!r}"
            )
        infos = len(arep.diagnostics)
        return f"no errors or warnings ({infos} info diagnostics)"

    def c_cert():
        import json

        from .cert import build_certificate, certificate_json, check_certificate

        report = derive(kernel, small_params=params)
        try:
            cert = build_certificate(report, kernel.program, params)
        except ValueError as e:
            return f"nothing to certify ({e}); skipped"
        doc = json.loads(certificate_json(cert))
        chk = check_certificate(doc)
        if not chk.ok():
            bad = [f for f in chk.findings if f.severity == "error"]
            raise AssertionError(
                f"checker rejected the fresh certificate:"
                f" [{bad[0].code}] {bad[0].message}"
            )
        return (
            f"{len(doc['bounds'])} bound(s) certified and independently"
            f" re-checked ({len(chk.checks_run)} checks)"
        )

    def c_legality():
        from .analysis.deps import build_dependences, check_order

        deps = [d for d in build_dependences(kernel.program) if d.branches]
        if not deps:
            return "no dependence polyhedra; nothing to order (skipped)"
        t = Tracer()
        kernel.program.runner(dict(params), t)
        bad = check_order(kernel.program, t.schedule, params, deps=deps)
        if bad:
            v = bad[0]
            raise AssertionError(
                f"{len(bad)} dependence violation(s); first: {v.dep.kind}"
                f" {v.dep.src}{list(v.src_point)} ->"
                f" {v.dep.tgt}{list(v.tgt_point)} on {v.dep.array}"
            )
        rev = check_order(
            kernel.program,
            list(reversed(t.schedule)),
            params,
            deps=deps,
            limit=1,
        )
        if not rev:
            return "order legal; no dependence instance to reverse (skipped)"
        return (
            f"traced order satisfies all {len(deps)} dependence polyhedra;"
            " reversal trips as it must"
        )

    record("static-validation", c_static)
    record("numeric", c_numeric)
    record("spec-vs-runner", c_trace)
    record("cdag", c_cdag)
    record("counts", c_counts)
    record("bound-soundness", c_soundness)
    record("verify", c_verify)
    record("obs-registry", c_obs)
    record("lint-builtin-kernels", c_lint)
    record("cert-roundtrip", c_cert)
    record("schedule-legality", c_legality)
    return rep
