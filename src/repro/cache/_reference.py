"""Reference two-level memory simulators (pure-Python, obviously correct).

These are the original straight-line implementations of the LRU and
Belady/OPT policies: LRU via an ``OrderedDict`` over element addresses,
Belady by rescanning the whole resident set on every miss (O(trace·S)).
They are kept verbatim — apart from the deterministic eviction tie-break
below — as the *specification* the fast engine in :mod:`repro.cache.sim`
is property-tested against: on any trace and capacity, both must agree on
every :class:`~repro.cache.sim.CacheStats` field.

Eviction tie-break (both engines): Belady evicts the resident element whose
next use is furthest in the future; ties are only possible among elements
never used again, and there the *lowest address* (tuple order) is evicted.
This makes ``stores`` — which depend on which dirty line survives —
bit-reproducible across engines and runs, where the historical behaviour
depended on dict insertion order.
"""

from __future__ import annotations

from bisect import bisect_right
from collections import OrderedDict
from typing import Iterable, Sequence

from ..ir import Addr, Event
from .sim import CacheStats

__all__ = ["simulate_lru", "simulate_belady", "cold_loads"]

_INF = float("inf")


def simulate_lru(events: Iterable[Event], s: int) -> CacheStats:
    """Fully-associative LRU cache of capacity ``s`` elements."""
    if s < 1:
        raise ValueError("cache capacity must be >= 1")
    cache: OrderedDict[Addr, bool] = OrderedDict()  # addr -> dirty
    st = CacheStats(capacity=s, policy="lru")

    def evict() -> None:
        addr, dirty = cache.popitem(last=False)
        if dirty:
            st.evict_stores += 1

    for ev in events:
        st.accesses += 1
        addr = ev.addr
        if ev.op == "R":
            if addr in cache:
                st.read_hits += 1
                cache.move_to_end(addr)
            else:
                st.loads += 1
                if len(cache) >= s:
                    evict()
                cache[addr] = False
        else:  # write
            if addr in cache:
                st.write_hits += 1
                cache[addr] = True
                cache.move_to_end(addr)
            else:
                st.write_allocs += 1
                if len(cache) >= s:
                    evict()
                cache[addr] = True
    st.flush_stores = sum(1 for d in cache.values() if d)
    return st


def simulate_belady(events: Sequence[Event], s: int) -> CacheStats:
    """Belady/OPT replacement: evict the element used furthest in the future.

    Requires the full trace up front (it is an offline policy).  Ties —
    possible only among elements with no future use — evict the lowest
    address.
    """
    if s < 1:
        raise ValueError("cache capacity must be >= 1")
    events = list(events)
    uses: dict[Addr, list[int]] = {}
    for idx, ev in enumerate(events):
        uses.setdefault(ev.addr, []).append(idx)

    def next_use(addr: Addr, idx: int) -> float:
        lst = uses[addr]
        p = bisect_right(lst, idx)
        return lst[p] if p < len(lst) else _INF

    cache: dict[Addr, bool] = {}
    st = CacheStats(capacity=s, policy="belady")

    def evict(idx: int) -> None:
        victim = None
        best = -1.0
        for a in cache:
            nu = next_use(a, idx)
            # strict max of next use; finite next uses are distinct trace
            # indices, so equality happens only at infinity — break those
            # ties toward the lowest address
            if nu > best or (nu == best and a < victim):
                best = nu
                victim = a
        dirty = cache.pop(victim)
        if dirty:
            st.evict_stores += 1

    for idx, ev in enumerate(events):
        st.accesses += 1
        addr = ev.addr
        if ev.op == "R":
            if addr in cache:
                st.read_hits += 1
            else:
                st.loads += 1
                if len(cache) >= s:
                    evict(idx)
                cache[addr] = False
        else:
            if addr in cache:
                st.write_hits += 1
                cache[addr] = True
            else:
                st.write_allocs += 1
                if len(cache) >= s:
                    evict(idx)
                cache[addr] = True
    st.flush_stores = sum(1 for d in cache.values() if d)
    return st


def cold_loads(events: Iterable[Event]) -> int:
    """Compulsory loads: distinct addresses whose first access is a read."""
    seen: set[Addr] = set()
    cold = 0
    for ev in events:
        if ev.addr not in seen:
            seen.add(ev.addr)
            if ev.op == "R":
                cold += 1
    return cold
