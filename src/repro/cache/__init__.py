"""Two-level memory (cache) simulators over element address traces."""

from .associative import AssocCacheStats, Linearizer, simulate_assoc
from .hierarchy import HierarchyStats, simulate_hierarchy
from .stackdist import lru_miss_curve, stack_distances
from .sim import CacheStats, cold_loads, simulate, simulate_belady, simulate_lru

__all__ = [
    "AssocCacheStats",
    "Linearizer",
    "simulate_assoc",
    "HierarchyStats",
    "simulate_hierarchy",
    "lru_miss_curve",
    "stack_distances",
    "CacheStats",
    "cold_loads",
    "simulate",
    "simulate_belady",
    "simulate_lru",
]
