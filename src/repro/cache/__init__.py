"""Two-level memory (cache) simulators over element address traces."""

from .associative import AssocCacheStats, Linearizer, simulate_assoc
from .hierarchy import HierarchyStats, simulate_hierarchy
from .memo import JsonCache, MemoCache, default_cache_dir, memo_key, open_memo
from .stackdist import lru_miss_curve, stack_distances
from .sim import (
    ENGINE_VERSION,
    CacheStats,
    cold_loads,
    simulate,
    simulate_belady,
    simulate_lru,
)

__all__ = [
    "AssocCacheStats",
    "Linearizer",
    "simulate_assoc",
    "HierarchyStats",
    "simulate_hierarchy",
    "lru_miss_curve",
    "stack_distances",
    "CacheStats",
    "ENGINE_VERSION",
    "cold_loads",
    "simulate",
    "simulate_belady",
    "simulate_lru",
    "JsonCache",
    "MemoCache",
    "memo_key",
    "default_cache_dir",
    "open_memo",
]
