"""Two-level memory simulators over element-granularity address traces.

This is the substitute for native cache measurement (DESIGN.md §5): the
paper's model — a fast memory holding S values backed by an unbounded slow
memory — is simulated exactly, driven by the instrumented kernels' address
traces.  Counted quantities follow §2 of the paper:

* a **load** is a read of an element not resident in fast memory;
* a **write** allocates the element in fast memory *without* a load (the
  value is produced by the computation, not fetched);
* **stores** (write-backs of dirty evicted elements, plus the final flush of
  dirty data) are tracked separately — the paper's bounds count loads only,
  and the benches verify stores are indeed lower-order.

Policies: LRU (practical) and Belady/OPT (furthest next access in the fixed
trace, the offline optimum), both fully associative with capacity S elements.

This module is the **fast engine**.  Traces are consumed in
structure-of-arrays form (:class:`repro.ir.TraceArrays`; ``Event`` streams
are converted on entry): Belady precomputes the next-use array in one
vectorized backward pass and drives eviction from a lazily-invalidated
max-heap keyed on next use — O(T log S) instead of the reference's
O(T·S) resident-set rescan — and LRU/``cold_loads`` run over dense integer
ids.  The original implementations live on in :mod:`repro.cache._reference`
as the specification; property tests assert exact agreement on every
:class:`CacheStats` field, including the deterministic lowest-address
eviction tie-break (see ``_reference``'s docstring).
"""

from __future__ import annotations

from collections import OrderedDict
from dataclasses import dataclass
from heapq import heappop, heappush
from typing import Iterable, Sequence, Union

import numpy as np

from .. import obs
from ..ir import Event, TraceArrays

__all__ = [
    "CacheStats",
    "ENGINE_VERSION",
    "simulate_lru",
    "simulate_belady",
    "simulate",
    "cold_loads",
]

#: Bumped whenever simulator semantics change (counts or tie-breaking);
#: part of the persistent memo-cache key (:mod:`repro.cache.memo`) so stale
#: results from older engines are never returned.
ENGINE_VERSION = 2

Trace = Union[TraceArrays, Sequence[Event], Iterable[Event]]


@dataclass
class CacheStats:
    """Aggregate counts from one simulation run."""

    loads: int = 0  # read misses (paper's Q)
    read_hits: int = 0
    write_hits: int = 0  # writes to already-resident elements
    write_allocs: int = 0  # writes that allocated a new resident element
    evict_stores: int = 0  # dirty evictions (write-backs)
    flush_stores: int = 0  # dirty lines at end of trace
    accesses: int = 0
    capacity: int = 0
    policy: str = ""

    @property
    def stores(self) -> int:
        return self.evict_stores + self.flush_stores

    @property
    def total_io(self) -> int:
        return self.loads + self.stores

    def __repr__(self) -> str:
        return (
            f"CacheStats(S={self.capacity}, {self.policy}: loads={self.loads},"
            f" stores={self.stores}, accesses={self.accesses})"
        )


def _as_arrays(trace: Trace) -> TraceArrays:
    if isinstance(trace, TraceArrays):
        return trace
    return TraceArrays.from_events(trace)


def simulate_lru(trace: Trace, s: int) -> CacheStats:
    """Fully-associative LRU cache of capacity ``s`` elements."""
    if s < 1:
        raise ValueError("cache capacity must be >= 1")
    ta = _as_arrays(trace)
    # dense int ids + plain-list iteration: same recency logic as the
    # reference, minus per-event tuple hashing
    ids = ta.addr_ids.tolist()
    is_w = ta.is_write.tolist()
    cache: OrderedDict[int, bool] = OrderedDict()  # id -> dirty
    st = CacheStats(capacity=s, policy="lru", accesses=len(ids))
    loads = read_hits = write_hits = write_allocs = evict_stores = 0
    for a, w in zip(ids, is_w):
        if a in cache:
            if w:
                write_hits += 1
                cache[a] = True
            else:
                read_hits += 1
            cache.move_to_end(a)
        else:
            if w:
                write_allocs += 1
            else:
                loads += 1
            if len(cache) >= s:
                if cache.popitem(last=False)[1]:
                    evict_stores += 1
            cache[a] = w
    st.loads, st.read_hits = loads, read_hits
    st.write_hits, st.write_allocs = write_hits, write_allocs
    st.evict_stores = evict_stores
    st.flush_stores = sum(1 for d in cache.values() if d)
    if obs.enabled():
        # aggregate-at-end only: the per-event loop above must stay
        # instrumentation-free (see benchmarks/test_bench_obs_overhead.py);
        # every miss inserts one line, so evictions = misses - final residency
        obs.add("cache.events_simulated", st.accesses)
        obs.add("cache.lru_evictions", loads + write_allocs - len(cache))
    return st


def simulate_belady(trace: Trace, s: int) -> CacheStats:
    """Belady/OPT replacement: evict the element used furthest in the future.

    Requires the full trace up front (it is an offline policy).  The next-use
    array is precomputed in one vectorized backward pass
    (:meth:`TraceArrays.next_use`); eviction pops a max-heap of
    ``(next_use, address rank)`` entries, lazily discarding entries
    invalidated by later accesses — O(T log S) overall.  Ties (elements never
    used again share the sentinel next use) evict the lowest address,
    matching :mod:`repro.cache._reference` exactly.
    """
    if s < 1:
        raise ValueError("cache capacity must be >= 1")
    ta = _as_arrays(trace)
    n = ta.n_addrs
    st = CacheStats(capacity=s, policy="belady", accesses=len(ta))
    if n == 0:
        return st
    # one packed int64 key per event, precomputed vectorized: the heap
    # orders by  nu * R + (R-1-rank)  so the max is the furthest next use,
    # ties (the shared never-used sentinel nu = T) break toward the lowest
    # address — identical to the reference — while heap entries stay plain
    # ints (no per-event tuple allocation)
    rev = (n - 1) - ta.address_rank()
    packed = (ta.next_use() * n + rev[ta.addr_ids]).tolist()
    id_of_rev = np.empty(n, dtype=np.int64)
    id_of_rev[rev] = np.arange(n, dtype=np.int64)
    id_of_rev = id_of_rev.tolist()
    ids = ta.addr_ids.tolist()
    is_w = ta.is_write.tolist()
    resident = bytearray(n)
    dirty = bytearray(n)
    cur_key = [0] * n  # packed key of each line, as of its last access
    heap: list[int] = []  # -packed
    size = 0
    push, pop = heappush, heappop
    loads = read_hits = write_hits = write_allocs = evict_stores = 0
    for a, w, p in zip(ids, is_w, packed):
        if resident[a]:
            if w:
                write_hits += 1
                dirty[a] = 1
            else:
                read_hits += 1
        else:
            if w:
                write_allocs += 1
            else:
                loads += 1
            if size >= s:
                # pop until a live entry: stale ones have a key that no
                # longer matches the line's current one
                while True:
                    q = -pop(heap)
                    v = id_of_rev[q % n]
                    if resident[v] and cur_key[v] == q:
                        break
                resident[v] = 0
                size -= 1
                if dirty[v]:
                    evict_stores += 1
                    dirty[v] = 0
            resident[a] = 1
            dirty[a] = w
            size += 1
        cur_key[a] = p
        push(heap, -p)
    st.loads, st.read_hits = loads, read_hits
    st.write_hits, st.write_allocs = write_hits, write_allocs
    st.evict_stores = evict_stores
    st.flush_stores = sum(1 for a in range(n) if resident[a] and dirty[a])
    if obs.enabled():
        # aggregate-at-end only (the per-event loop is instrumentation-free):
        # one push per event, and pops = pushes - entries left in the heap
        obs.add("cache.events_simulated", st.accesses)
        obs.add("cache.belady_heap_ops", 2 * len(ids) - len(heap))
    return st


def simulate(trace: Trace, s: int, policy: str = "lru") -> CacheStats:
    """Dispatch on policy name ("lru" or "belady")."""
    if policy == "lru":
        return simulate_lru(trace, s)
    if policy == "belady":
        return simulate_belady(trace, s)
    raise ValueError(f"unknown policy {policy!r}")


def cold_loads(trace: Trace) -> int:
    """Compulsory loads: distinct addresses whose first access is a read."""
    ta = _as_arrays(trace)
    if not len(ta):
        return 0
    first = np.unique(ta.addr_ids, return_index=True)[1]
    return int(np.count_nonzero(~ta.is_write[first]))
