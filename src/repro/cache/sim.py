"""Two-level memory simulators over element-granularity address traces.

This is the substitute for native cache measurement (DESIGN.md §5): the
paper's model — a fast memory holding S values backed by an unbounded slow
memory — is simulated exactly, driven by the instrumented kernels' address
traces.  Counted quantities follow §2 of the paper:

* a **load** is a read of an element not resident in fast memory;
* a **write** allocates the element in fast memory *without* a load (the
  value is produced by the computation, not fetched);
* **stores** (write-backs of dirty evicted elements, plus the final flush of
  dirty data) are tracked separately — the paper's bounds count loads only,
  and the benches verify stores are indeed lower-order.

Policies: LRU (practical) and Belady/OPT (furthest next access in the fixed
trace, the offline optimum), both fully associative with capacity S elements.
"""

from __future__ import annotations

from bisect import bisect_right
from collections import OrderedDict
from dataclasses import dataclass
from typing import Iterable, Sequence

from ..ir import Addr, Event

__all__ = ["CacheStats", "simulate_lru", "simulate_belady", "simulate", "cold_loads"]

_INF = float("inf")


@dataclass
class CacheStats:
    """Aggregate counts from one simulation run."""

    loads: int = 0  # read misses (paper's Q)
    read_hits: int = 0
    write_hits: int = 0  # writes to already-resident elements
    write_allocs: int = 0  # writes that allocated a new resident element
    evict_stores: int = 0  # dirty evictions (write-backs)
    flush_stores: int = 0  # dirty lines at end of trace
    accesses: int = 0
    capacity: int = 0
    policy: str = ""

    @property
    def stores(self) -> int:
        return self.evict_stores + self.flush_stores

    @property
    def total_io(self) -> int:
        return self.loads + self.stores

    def __repr__(self) -> str:
        return (
            f"CacheStats(S={self.capacity}, {self.policy}: loads={self.loads},"
            f" stores={self.stores}, accesses={self.accesses})"
        )


def simulate_lru(events: Iterable[Event], s: int) -> CacheStats:
    """Fully-associative LRU cache of capacity ``s`` elements."""
    if s < 1:
        raise ValueError("cache capacity must be >= 1")
    cache: OrderedDict[Addr, bool] = OrderedDict()  # addr -> dirty
    st = CacheStats(capacity=s, policy="lru")

    def evict() -> None:
        addr, dirty = cache.popitem(last=False)
        if dirty:
            st.evict_stores += 1

    for ev in events:
        st.accesses += 1
        addr = ev.addr
        if ev.op == "R":
            if addr in cache:
                st.read_hits += 1
                cache.move_to_end(addr)
            else:
                st.loads += 1
                if len(cache) >= s:
                    evict()
                cache[addr] = False
        else:  # write
            if addr in cache:
                st.write_hits += 1
                cache[addr] = True
                cache.move_to_end(addr)
            else:
                st.write_allocs += 1
                if len(cache) >= s:
                    evict()
                cache[addr] = True
    st.flush_stores = sum(1 for d in cache.values() if d)
    return st


def simulate_belady(events: Sequence[Event], s: int) -> CacheStats:
    """Belady/OPT replacement: evict the element used furthest in the future.

    Requires the full trace up front (it is an offline policy).
    """
    if s < 1:
        raise ValueError("cache capacity must be >= 1")
    events = list(events)
    uses: dict[Addr, list[int]] = {}
    for idx, ev in enumerate(events):
        uses.setdefault(ev.addr, []).append(idx)

    def next_use(addr: Addr, idx: int) -> float:
        lst = uses[addr]
        p = bisect_right(lst, idx)
        return lst[p] if p < len(lst) else _INF

    cache: dict[Addr, bool] = {}
    st = CacheStats(capacity=s, policy="belady")

    def evict(idx: int) -> None:
        victim = None
        best = -1.0
        for a in cache:
            nu = next_use(a, idx)
            if nu == _INF:
                victim = a
                break
            if nu > best:
                best = nu
                victim = a
        dirty = cache.pop(victim)
        if dirty:
            st.evict_stores += 1

    for idx, ev in enumerate(events):
        st.accesses += 1
        addr = ev.addr
        if ev.op == "R":
            if addr in cache:
                st.read_hits += 1
            else:
                st.loads += 1
                if len(cache) >= s:
                    evict(idx)
                cache[addr] = False
        else:
            if addr in cache:
                st.write_hits += 1
                cache[addr] = True
            else:
                st.write_allocs += 1
                if len(cache) >= s:
                    evict(idx)
                cache[addr] = True
    st.flush_stores = sum(1 for d in cache.values() if d)
    return st


def simulate(events: Sequence[Event], s: int, policy: str = "lru") -> CacheStats:
    """Dispatch on policy name ("lru" or "belady")."""
    if policy == "lru":
        return simulate_lru(events, s)
    if policy == "belady":
        return simulate_belady(list(events), s)
    raise ValueError(f"unknown policy {policy!r}")


def cold_loads(events: Iterable[Event]) -> int:
    """Compulsory loads: distinct addresses whose first access is a read."""
    seen: set[Addr] = set()
    cold = 0
    for ev in events:
        if ev.addr not in seen:
            seen.add(ev.addr)
            if ev.op == "R":
                cold += 1
    return cold
