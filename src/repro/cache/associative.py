"""Hardware-like cache: line granularity + set associativity.

The paper's model moves single values; real caches move lines through
associative sets.  This module provides the ablation showing how the
bounds transfer: with line size L, an element-level lower bound Q implies a
line-transfer lower bound >= Q/L (each line carries at most L useful
values), so measured line misses x L must still sit above Q — which the
benches verify.

Address mapping: element addresses ``(array, index)`` are linearised per
array (row-major with shapes supplied by the caller, or discovered by
first-touch enumeration order), concatenated into a flat byte-less "element
space", then split into lines of ``line_size`` elements.
"""

from __future__ import annotations

from collections import OrderedDict
from dataclasses import dataclass, field
from typing import Iterable, Mapping, Sequence

from ..ir import Addr, Event

__all__ = ["AssocCacheStats", "Linearizer", "simulate_assoc"]


@dataclass
class AssocCacheStats:
    """Counts from a set-associative line-granularity simulation."""

    line_misses: int = 0
    line_hits: int = 0
    evictions: int = 0
    accesses: int = 0
    line_size: int = 1
    ways: int = 1
    n_sets: int = 1

    @property
    def element_traffic(self) -> int:
        """Elements moved in: misses x line size."""
        return self.line_misses * self.line_size


class Linearizer:
    """Maps element addresses to flat integer positions.

    Arrays with declared shapes get row-major layout; undeclared arrays are
    laid out in first-touch order (deterministic given the trace).  Distinct
    arrays never share a line (each array is padded to a line boundary),
    matching separate allocations.
    """

    def __init__(
        self, shapes: Mapping[str, Sequence[int]] | None = None, line_size: int = 1
    ):
        self.shapes = dict(shapes or {})
        self.line_size = max(1, line_size)
        self._base: dict[str, int] = {}
        self._next_free = 0
        self._adhoc: dict[Addr, int] = {}

    def _alloc(self, name: str, size: int) -> None:
        # align to a line boundary
        ls = self.line_size
        start = (self._next_free + ls - 1) // ls * ls
        self._base[name] = start
        self._next_free = start + size

    def flat(self, addr: Addr) -> int:
        name, idx = addr
        if name in self.shapes:
            if name not in self._base:
                size = 1
                for d in self.shapes[name]:
                    size *= d
                self._alloc(name, size)
            shape = self.shapes[name]
            pos = 0
            for d, x in zip(shape, idx):
                pos = pos * d + x
            return self._base[name] + pos
        # unknown shape: first-touch allocation, one slot per element
        if addr not in self._adhoc:
            if name not in self._base:
                self._alloc(name, 0)
            self._adhoc[addr] = self._next_free
            self._next_free += 1
        return self._adhoc[addr]

    def line_of(self, addr: Addr) -> int:
        return self.flat(addr) // self.line_size


def simulate_assoc(
    events: Iterable[Event],
    *,
    capacity_elements: int,
    line_size: int = 4,
    ways: int = 4,
    shapes: Mapping[str, Sequence[int]] | None = None,
) -> AssocCacheStats:
    """Simulate an L-element-per-line, W-way set-associative LRU cache.

    ``capacity_elements`` is the total capacity in elements; the number of
    sets is ``capacity / (line_size * ways)`` (rounded up to >= 1).  Both
    reads and writes allocate (write-allocate), misses counted identically —
    the hardware-style accounting.
    """
    if capacity_elements < line_size * ways:
        n_sets = 1
        ways = max(1, capacity_elements // line_size)
    else:
        n_sets = max(1, capacity_elements // (line_size * ways))
    lin = Linearizer(shapes, line_size)
    sets: list[OrderedDict[int, bool]] = [OrderedDict() for _ in range(n_sets)]
    st = AssocCacheStats(line_size=line_size, ways=ways, n_sets=n_sets)

    for ev in events:
        st.accesses += 1
        line = lin.line_of(ev.addr)
        s = sets[line % n_sets]
        if line in s:
            st.line_hits += 1
            s.move_to_end(line)
        else:
            st.line_misses += 1
            if len(s) >= ways:
                s.popitem(last=False)
                st.evictions += 1
            s[line] = True
    return st
