"""Two-level cache hierarchy: the bounds apply at every level.

The paper's model has one fast memory of size S; a real machine has a
hierarchy L1 ⊂ L2 ⊂ DRAM.  An element-level lower bound Q(S) then holds
*independently per level*: traffic into a level of capacity C is at least
Q(C).  This module simulates an inclusive two-level LRU hierarchy and
reports per-level load counts so the benches can check both instantiations
of the bound at once.
"""

from __future__ import annotations

from collections import OrderedDict
from dataclasses import dataclass
from typing import Iterable

from ..ir import Addr, Event

__all__ = ["HierarchyStats", "simulate_hierarchy"]


@dataclass
class HierarchyStats:
    """Per-level load (fill) counts of an inclusive LRU hierarchy."""

    l1_capacity: int
    l2_capacity: int
    l1_loads: int = 0  # fills into L1 (from L2 or beyond)
    l2_loads: int = 0  # fills into L2 (from slow memory) == DRAM traffic
    l1_hits: int = 0
    l2_hits: int = 0
    accesses: int = 0

    def __repr__(self) -> str:
        return (
            f"HierarchyStats(L1={self.l1_capacity}: loads={self.l1_loads},"
            f" L2={self.l2_capacity}: loads={self.l2_loads})"
        )


def simulate_hierarchy(
    events: Iterable[Event], l1: int, l2: int
) -> HierarchyStats:
    """Inclusive two-level LRU hierarchy over element addresses.

    Reads fill on miss; writes allocate without a fill (values are produced
    in registers/L1, matching the model's write semantics).  L2 misses on a
    read count as slow-memory loads; eviction from L1 never touches L2
    residency (inclusion maintained by filling both on an L2 miss).
    """
    if not (1 <= l1 <= l2):
        raise ValueError("need 1 <= l1 <= l2")
    c1: OrderedDict[Addr, None] = OrderedDict()
    c2: OrderedDict[Addr, None] = OrderedDict()
    st = HierarchyStats(l1_capacity=l1, l2_capacity=l2)

    def touch(cache: OrderedDict, cap: int, addr: Addr) -> bool:
        """True on hit; on miss insert (evicting LRU)."""
        if addr in cache:
            cache.move_to_end(addr)
            return True
        if len(cache) >= cap:
            cache.popitem(last=False)
        cache[addr] = None
        return False

    for ev in events:
        st.accesses += 1
        addr = ev.addr
        if ev.op == "R":
            if addr in c1:
                st.l1_hits += 1
                c1.move_to_end(addr)
                # refresh L2 recency too (inclusive)
                if addr in c2:
                    c2.move_to_end(addr)
                continue
            st.l1_loads += 1
            if touch(c2, l2, addr):
                st.l2_hits += 1
            else:
                st.l2_loads += 1
            touch(c1, l1, addr)
        else:  # write allocates in both levels without a fill
            touch(c1, l1, addr)
            touch(c2, l2, addr)
    return st
