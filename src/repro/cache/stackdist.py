"""LRU stack distances: the whole miss curve in one pass (Mattson 1970).

LRU's inclusion property means a reference hits in a cache of capacity S iff
its *stack distance* (number of distinct addresses touched since its last
access) is < S.  One pass computing all stack distances therefore yields
``misses(S)`` for every S at once — the classic trick for miss-curve
profiling, implemented with a Fenwick (binary indexed) tree over access
positions for O(n log n) total time.

``miss_curve`` post-processes the histogram into the monotone curve the
benches plot against the lower-bound curve Q(S).
"""

from __future__ import annotations

from collections import Counter
from typing import Iterable, Sequence

from ..ir import Addr, Event

__all__ = ["stack_distances", "lru_miss_curve"]

_INF = -1  # marker for cold (first-touch) accesses


class _Fenwick:
    """Point update / prefix sum over positions 1..n."""

    def __init__(self, n: int):
        self.n = n
        self.tree = [0] * (n + 1)

    def add(self, i: int, delta: int) -> None:
        i += 1
        while i <= self.n:
            self.tree[i] += delta
            i += i & -i

    def prefix(self, i: int) -> int:
        i += 1
        s = 0
        while i > 0:
            s += self.tree[i]
            i -= i & -i
        return s


def stack_distances(events: Sequence[Event]) -> list[int]:
    """Per-access LRU stack distance; -1 marks cold (first) accesses.

    Reads and writes both count as touches (writes allocate, matching the
    LRU simulator's residency behaviour).
    """
    events = list(events)
    n = len(events)
    fw = _Fenwick(n)
    last_pos: dict[Addr, int] = {}
    out: list[int] = []
    for pos, ev in enumerate(events):
        prev = last_pos.get(ev.addr)
        if prev is None:
            out.append(_INF)
        else:
            # distinct addresses touched strictly between prev and pos:
            # each live address contributes its *latest* position only
            distinct = fw.prefix(pos - 1) - fw.prefix(prev)
            out.append(distinct)
            fw.add(prev, -1)
        fw.add(pos, 1)
        last_pos[ev.addr] = pos
    return out


def lru_miss_curve(
    events: Sequence[Event], max_s: int | None = None
) -> list[int]:
    """``curve[s]`` = LRU misses (loads + write-allocations) at capacity s.

    Index 0 is unused (capacity >= 1); the curve is monotone non-increasing
    and reaches the cold-miss count once the working set fits.  Computed
    from the stack-distance histogram in one pass over the trace.
    """
    dists = stack_distances(events)
    cold = sum(1 for d in dists if d == _INF)
    hist = Counter(d for d in dists if d != _INF)
    biggest = max(hist, default=0)
    top = max_s if max_s is not None else biggest + 2
    # misses(s) = cold + #{accesses with stack distance >= s}, via suffix sums
    ge = [0] * (top + 2)
    total_beyond = sum(c for d, c in hist.items() if d > top)
    ge[top + 1] = total_beyond
    for s in range(top, -1, -1):
        ge[s] = ge[s + 1] + hist.get(s, 0)
    curve = [0] * (top + 1)
    for s in range(1, top + 1):
        curve[s] = cold + ge[s]
    return curve
