"""Persistent on-disk memoisation: a content-addressed JSON result store.

Repeated bench / CLI invocations — and, at much higher rates, the
``iolb serve`` derivation service — re-run the same (kernel, params, S,
policy) points; the traced execution plus cache pass dominates their cost
and is a pure function of that key.  Two layers live here:

* :class:`JsonCache` — the generic backend: one JSON payload per key file
  under a cache directory, written atomically (tmp file + ``os.replace``)
  so concurrent writers at worst rewrite the same bytes and readers never
  observe a half-written entry.  It adds the operational features a
  long-running service needs:

  - **corrupt-entry quarantine** — a file that exists but fails to decode
    is moved aside to ``<key>.corrupt`` (counter ``cache.memo_corrupt``)
    instead of being left in place to re-fail on every future read;
  - **TTL eviction** — entries older than ``ttl_s`` (file mtime) are
    treated as misses and unlinked (counter ``cache.memo_expired``);
  - **size eviction** — :meth:`JsonCache.evict` trims the store to
    ``max_entries`` / ``max_bytes``, oldest entries first (counters
    ``cache.memo_evict_ttl`` / ``cache.memo_evict_size``); writers call it
    automatically every few puts when caps are configured;
  - **warm-start preloading** — :meth:`JsonCache.preload` reads every
    valid entry into an in-memory write-through layer so a freshly booted
    service answers hot keys without touching disk (counter
    ``cache.memo_preloaded``).

* :class:`MemoCache` — the simulation-result store used by
  ``measure_tiled_io`` / ``tune_block_size``: a :class:`JsonCache` whose
  payloads are :class:`~repro.cache.sim.CacheStats`, keyed by::

      kernel name + sorted params + S + policy + seed + ENGINE_VERSION

  ``ENGINE_VERSION`` (from :mod:`repro.cache.sim`) is bumped whenever
  simulator semantics change, so stale results are never served across
  engine revisions.

Counters go to the process-global :mod:`repro.obs` registry by default; a
component that owns its own :class:`~repro.obs.core.Registry` (the serve
telemetry) passes it as ``reg=`` and the cache records there instead,
unconditionally.

The cache is **opt-in**: ``measure_tiled_io`` and ``tune_block_size`` take
a ``memo=`` argument, and the CLI exposes ``--cache-dir`` / ``--no-cache``
(default directory from the ``IOLB_CACHE_DIR`` environment variable).
"""

from __future__ import annotations

import hashlib
import json
import os
import time
from pathlib import Path
from typing import Callable, Mapping

from .. import obs
from .sim import ENGINE_VERSION, CacheStats

__all__ = ["JsonCache", "MemoCache", "memo_key", "default_cache_dir", "open_memo"]

#: environment variable naming the default cache directory
CACHE_DIR_ENV = "IOLB_CACHE_DIR"

#: with size caps configured, a writer triggers `evict()` every N puts
_EVICT_EVERY = 32

#: CacheStats fields persisted (everything the dataclass counts)
_STAT_FIELDS = (
    "loads",
    "read_hits",
    "write_hits",
    "write_allocs",
    "evict_stores",
    "flush_stores",
    "accesses",
    "capacity",
    "policy",
)


def memo_key(
    kernel: str,
    params: Mapping[str, int],
    s: int,
    policy: str,
    *,
    seed: int = 0,
) -> str:
    """Canonical content key for one simulation point."""
    payload = {
        "kernel": kernel,
        "params": sorted((str(k), int(v)) for k, v in params.items()),
        "S": int(s),
        "policy": policy,
        "seed": int(seed),
        "engine": ENGINE_VERSION,
    }
    blob = json.dumps(payload, sort_keys=True, separators=(",", ":"))
    return hashlib.sha256(blob.encode()).hexdigest()


def default_cache_dir() -> str | None:
    """The ``IOLB_CACHE_DIR`` environment default, if set and non-empty."""
    d = os.environ.get(CACHE_DIR_ENV, "").strip()
    return d or None


class JsonCache:
    """A directory of content-addressed JSON payloads (one file per key).

    Value-only and append-mostly: concurrent writers of the same key write
    identical bytes via atomic renames, so no locking is needed.  See the
    module docstring for quarantine / TTL / size-eviction / preload
    semantics.
    """

    __slots__ = (
        "cache_dir",
        "hits",
        "misses",
        "ttl_s",
        "max_entries",
        "max_bytes",
        "_mkdir_done",
        "_mem",
        "_puts_since_evict",
        "_reg",
    )

    def __init__(
        self,
        cache_dir: str | os.PathLike,
        *,
        ttl_s: float | None = None,
        max_entries: int | None = None,
        max_bytes: int | None = None,
        reg=None,
    ) -> None:
        if ttl_s is not None and ttl_s <= 0:
            raise ValueError(f"ttl_s must be positive (got {ttl_s})")
        if max_entries is not None and max_entries < 1:
            raise ValueError(f"max_entries must be >= 1 (got {max_entries})")
        if max_bytes is not None and max_bytes < 1:
            raise ValueError(f"max_bytes must be >= 1 (got {max_bytes})")
        self.cache_dir = Path(cache_dir)
        self.hits = 0
        self.misses = 0
        self.ttl_s = ttl_s
        self.max_entries = max_entries
        self.max_bytes = max_bytes
        self._mkdir_done = False
        #: warm-start layer: key -> (payload, mtime); None until preload()
        self._mem: dict[str, tuple[dict, float]] | None = None
        self._puts_since_evict = 0
        self._reg = reg

    # -- plumbing ----------------------------------------------------------
    def _count(self, name: str, n: int = 1) -> None:
        """Counter sink: the private registry if set, else the global obs."""
        if self._reg is not None:
            self._reg.add(name, n)
        else:
            obs.add(name, n)

    def _path(self, key: str) -> Path:
        return self.cache_dir / f"{key}.json"

    def _quarantine(self, path: Path) -> None:
        """Move a corrupt entry aside so it is never re-parsed (and kept for
        post-mortems); unlink as the fallback when even the rename fails."""
        try:
            os.replace(path, path.with_suffix(".corrupt"))
        except OSError:
            try:
                path.unlink()
            except OSError:
                pass

    def _expired(self, mtime: float, now: float | None = None) -> bool:
        return self.ttl_s is not None and (now or time.time()) - mtime > self.ttl_s

    # -- the store ---------------------------------------------------------
    def get_raw(
        self, key: str, decode: Callable[[Mapping], object] | None = None
    ) -> object | None:
        """The payload stored under ``key``, or None on miss.

        ``decode`` optionally converts the parsed JSON mapping into a typed
        object; a ``decode`` failure (wrong fields, wrong types) counts as a
        corrupt entry and quarantines the file exactly like a JSON decode
        failure — the entry would otherwise re-fail on every future read.
        """
        path = self._path(key)
        if self._mem is not None and key in self._mem:
            raw, mtime = self._mem[key]
            if self._expired(mtime):
                del self._mem[key]
            else:
                try:
                    value = decode(raw) if decode is not None else raw
                except (ValueError, KeyError, TypeError):
                    del self._mem[key]
                    self._quarantine(path)
                    self._count("cache.memo_corrupt")
                else:
                    self.hits += 1
                    self._count("cache.memo_hits")
                    return value
        try:
            text = path.read_text()
            mtime = path.stat().st_mtime
        except OSError:
            self.misses += 1
            self._count("cache.memo_misses")
            return None
        try:
            raw = json.loads(text)
            if not isinstance(raw, dict):
                raise ValueError(f"payload is {type(raw).__name__}, not an object")
            value = decode(raw) if decode is not None else raw
        except (ValueError, KeyError, TypeError):
            self._quarantine(path)
            self._count("cache.memo_corrupt")
            self.misses += 1
            self._count("cache.memo_misses")
            return None
        if self._expired(mtime):
            try:
                path.unlink()
            except OSError:
                pass
            self._count("cache.memo_expired")
            self.misses += 1
            self._count("cache.memo_misses")
            return None
        if self._mem is not None:
            self._mem[key] = (raw, mtime)
        self.hits += 1
        self._count("cache.memo_hits")
        return value

    def put_raw(self, key: str, payload: Mapping) -> None:
        """Persist ``payload`` under ``key`` (atomic via rename)."""
        if not self._mkdir_done:
            self.cache_dir.mkdir(parents=True, exist_ok=True)
            self._mkdir_done = True
        path = self._path(key)
        tmp = path.with_suffix(f".tmp{os.getpid()}")
        tmp.write_text(json.dumps(payload, sort_keys=True))
        os.replace(tmp, path)
        if self._mem is not None:
            self._mem[key] = (dict(payload), time.time())
        self._count("cache.memo_stores")
        if self.max_entries is not None or self.max_bytes is not None:
            self._puts_since_evict += 1
            if self._puts_since_evict >= _EVICT_EVERY:
                self.evict()

    # -- operations --------------------------------------------------------
    def _entries(self) -> list[tuple[float, int, Path]]:
        """Every entry as (mtime, size, path), oldest first; racy-read safe."""
        out = []
        for p in self.cache_dir.glob("*.json"):
            try:
                st = p.stat()
            except OSError:
                continue  # concurrently evicted/replaced
            out.append((st.st_mtime, st.st_size, p))
        out.sort()
        return out

    def evict(self, now: float | None = None) -> dict[str, int]:
        """Trim the store: drop expired entries, then oldest-first down to the
        size caps.  Returns ``{"ttl": n, "size": m}`` removal counts."""
        self._puts_since_evict = 0
        if not self.cache_dir.is_dir():
            return {"ttl": 0, "size": 0}
        now = now or time.time()
        entries = self._entries()
        dropped_ttl = dropped_size = 0
        keep: list[tuple[float, int, Path]] = []
        for mtime, size, p in entries:
            if self._expired(mtime, now):
                if self._unlink_entry(p):
                    dropped_ttl += 1
            else:
                keep.append((mtime, size, p))
        total_bytes = sum(size for _, size, _ in keep)
        over_entries = (
            len(keep) - self.max_entries if self.max_entries is not None else 0
        )
        i = 0
        while i < len(keep) and (
            over_entries > 0
            or (self.max_bytes is not None and total_bytes > self.max_bytes)
        ):
            mtime, size, p = keep[i]
            if self._unlink_entry(p):
                dropped_size += 1
                total_bytes -= size
                over_entries -= 1
            i += 1
        if dropped_ttl:
            self._count("cache.memo_evict_ttl", dropped_ttl)
        if dropped_size:
            self._count("cache.memo_evict_size", dropped_size)
        return {"ttl": dropped_ttl, "size": dropped_size}

    def _unlink_entry(self, path: Path) -> bool:
        try:
            path.unlink()
        except OSError:
            return False
        if self._mem is not None:
            self._mem.pop(path.stem, None)
        return True

    def preload(self) -> int:
        """Warm-start: read every valid, unexpired entry into memory.

        After this, hot keys are answered without disk reads, and every
        subsequent ``put_raw`` writes through to the memory layer.  Corrupt
        entries found during the scan are quarantined (same counter as on
        read).  Returns the number of entries loaded.
        """
        mem: dict[str, tuple[dict, float]] = {}
        if self.cache_dir.is_dir():
            now = time.time()
            for mtime, _size, p in self._entries():
                if self._expired(mtime, now):
                    continue
                try:
                    raw = json.loads(p.read_text())
                    if not isinstance(raw, dict):
                        raise ValueError("not an object")
                except OSError:
                    continue
                except (ValueError, KeyError, TypeError):
                    self._quarantine(p)
                    self._count("cache.memo_corrupt")
                    continue
                mem[p.stem] = (raw, mtime)
        self._mem = mem
        if mem:
            self._count("cache.memo_preloaded", len(mem))
        return len(mem)

    def entry_count(self) -> int:
        """Number of entries currently on disk."""
        return len(self._entries()) if self.cache_dir.is_dir() else 0


class MemoCache(JsonCache):
    """A :class:`JsonCache` of memoised simulation results (CacheStats)."""

    __slots__ = ()

    @staticmethod
    def _decode(raw: Mapping) -> CacheStats:
        return CacheStats(**{f: raw[f] for f in _STAT_FIELDS})

    def get(self, key: str) -> CacheStats | None:
        """Stored stats for ``key``, or None (corrupt entries are quarantined)."""
        value = self.get_raw(key, decode=self._decode)
        return value  # type: ignore[return-value]

    def put(self, key: str, stats: CacheStats) -> None:
        """Persist ``stats`` under ``key`` (atomic via rename)."""
        self.put_raw(key, {f: getattr(stats, f) for f in _STAT_FIELDS})

    def get_or_compute(
        self,
        key: str,
        compute,
    ) -> CacheStats:
        """Return the memoised stats for ``key``, computing and storing on miss."""
        stats = self.get(key)
        if stats is None:
            stats = compute()
            self.put(key, stats)
        return stats


def open_memo(
    cache_dir: str | os.PathLike | None = None, *, enabled: bool = True
) -> MemoCache | None:
    """Resolve the standard CLI/env convention into a cache (or None).

    ``cache_dir`` falls back to ``$IOLB_CACHE_DIR``; ``enabled=False``
    (the ``--no-cache`` flag) wins over both.
    """
    if not enabled:
        return None
    d = cache_dir or default_cache_dir()
    return MemoCache(d) if d else None
