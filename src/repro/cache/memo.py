"""Persistent on-disk memoisation of simulation results.

Repeated bench / CLI invocations re-run the same (kernel, params, S, policy)
points; the traced execution plus cache pass dominates their cost and is a
pure function of that key.  :class:`MemoCache` stores each
:class:`~repro.cache.sim.CacheStats` as one small JSON file under a cache
directory, keyed by::

    kernel name + sorted params + S + policy + seed + ENGINE_VERSION

``ENGINE_VERSION`` (from :mod:`repro.cache.sim`) is bumped whenever
simulator semantics change, so stale results are never served across engine
revisions.  The store is value-only and content-addressed — concurrent
writers at worst rewrite the same bytes, so no locking is needed.

The cache is **opt-in**: ``measure_tiled_io`` and ``tune_block_size`` take a
``memo=`` argument, and the CLI exposes ``--cache-dir`` / ``--no-cache``
(default directory from the ``IOLB_CACHE_DIR`` environment variable).
"""

from __future__ import annotations

import hashlib
import json
import os
from pathlib import Path
from typing import Mapping

from .. import obs
from .sim import ENGINE_VERSION, CacheStats

__all__ = ["MemoCache", "memo_key", "default_cache_dir", "open_memo"]

#: environment variable naming the default cache directory
CACHE_DIR_ENV = "IOLB_CACHE_DIR"

#: CacheStats fields persisted (everything the dataclass counts)
_STAT_FIELDS = (
    "loads",
    "read_hits",
    "write_hits",
    "write_allocs",
    "evict_stores",
    "flush_stores",
    "accesses",
    "capacity",
    "policy",
)


def memo_key(
    kernel: str,
    params: Mapping[str, int],
    s: int,
    policy: str,
    *,
    seed: int = 0,
) -> str:
    """Canonical content key for one simulation point."""
    payload = {
        "kernel": kernel,
        "params": sorted((str(k), int(v)) for k, v in params.items()),
        "S": int(s),
        "policy": policy,
        "seed": int(seed),
        "engine": ENGINE_VERSION,
    }
    blob = json.dumps(payload, sort_keys=True, separators=(",", ":"))
    return hashlib.sha256(blob.encode()).hexdigest()


def default_cache_dir() -> str | None:
    """The ``IOLB_CACHE_DIR`` environment default, if set and non-empty."""
    d = os.environ.get(CACHE_DIR_ENV, "").strip()
    return d or None


class MemoCache:
    """A directory of memoised simulation results (one JSON file per key)."""

    __slots__ = ("cache_dir", "hits", "misses", "_mkdir_done")

    def __init__(self, cache_dir: str | os.PathLike) -> None:
        self.cache_dir = Path(cache_dir)
        self.hits = 0
        self.misses = 0
        self._mkdir_done = False

    def _path(self, key: str) -> Path:
        return self.cache_dir / f"{key}.json"

    def get(self, key: str) -> CacheStats | None:
        """Stored stats for ``key``, or None (corrupt files count as misses)."""
        try:
            raw = json.loads(self._path(key).read_text())
            stats = CacheStats(**{f: raw[f] for f in _STAT_FIELDS})
        except (OSError, ValueError, KeyError, TypeError):
            self.misses += 1
            obs.add("cache.memo_misses")
            return None
        self.hits += 1
        obs.add("cache.memo_hits")
        return stats

    def put(self, key: str, stats: CacheStats) -> None:
        """Persist ``stats`` under ``key`` (atomic via rename)."""
        if not self._mkdir_done:
            self.cache_dir.mkdir(parents=True, exist_ok=True)
            self._mkdir_done = True
        tmp = self._path(key).with_suffix(f".tmp{os.getpid()}")
        tmp.write_text(json.dumps({f: getattr(stats, f) for f in _STAT_FIELDS}))
        os.replace(tmp, self._path(key))
        obs.add("cache.memo_stores")

    def get_or_compute(
        self,
        key: str,
        compute,
    ) -> CacheStats:
        """Return the memoised stats for ``key``, computing and storing on miss."""
        stats = self.get(key)
        if stats is None:
            stats = compute()
            self.put(key, stats)
        return stats


def open_memo(
    cache_dir: str | os.PathLike | None = None, *, enabled: bool = True
) -> MemoCache | None:
    """Resolve the standard CLI/env convention into a cache (or None).

    ``cache_dir`` falls back to ``$IOLB_CACHE_DIR``; ``enabled=False``
    (the ``--no-cache`` flag) wins over both.
    """
    if not enabled:
        return None
    d = cache_dir or default_cache_dir()
    return MemoCache(d) if d else None
