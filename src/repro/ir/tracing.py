"""Execution tracing: instrumented kernels record statement instances and
element-level reads/writes.

The tracer serves three consumers:

* :mod:`repro.cdag` — exact flow dependences via last-writer analysis, the
  ground truth against which declared polyhedral dependences are checked;
* :mod:`repro.cache` — the element-granularity address trace fed to the
  two-level memory simulators (the paper's I/O model);
* :mod:`repro.pebble` — the statement-instance execution order, i.e. a
  concrete valid schedule of the CDAG.

Kernels call ``t.stmt(name, ivec)`` once per dynamic statement instance, then
``t.read``/``t.write`` for each element touched by that instance.  A ``None``
tracer disables instrumentation with near-zero overhead via :class:`NullTracer`.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterator

__all__ = ["Addr", "Event", "Tracer", "NullTracer", "trace_node_key"]

# An element address: (array name, index tuple)
Addr = tuple[str, tuple[int, ...]]
# A CDAG node key: (statement name, iteration vector); input elements get
# statement name "_input" and their address as the vector surrogate.
NodeKey = tuple[str, tuple]


@dataclass(frozen=True)
class Event:
    """One element access: op is 'R' or 'W'."""

    op: str
    addr: Addr


def trace_node_key(stmt: str, ivec: tuple[int, ...]) -> NodeKey:
    """Canonical CDAG node key for a statement instance."""
    return (stmt, tuple(ivec))


class Tracer:
    """Records the full instrumented execution of a kernel."""

    __slots__ = (
        "events",
        "schedule",
        "reads_by_instance",
        "writes_by_instance",
        "_current",
        "last_writer",
        "flow_edges",
        "input_elements",
    )

    def __init__(self) -> None:
        self.events: list[Event] = []
        # statement instances in execution order
        self.schedule: list[NodeKey] = []
        self.reads_by_instance: list[list[Addr]] = []
        self.writes_by_instance: list[list[Addr]] = []
        self._current: int = -1
        # element -> node key of its last writer
        self.last_writer: dict[Addr, NodeKey] = {}
        # exact flow dependences (producer node, consumer node, element)
        self.flow_edges: set[tuple[NodeKey, NodeKey, Addr]] = set()
        # elements read before ever being written (program inputs)
        self.input_elements: set[Addr] = set()

    # -- instrumentation hooks ------------------------------------------------
    def stmt(self, name: str, *ivec: int) -> None:
        """Open a new dynamic statement instance."""
        self.schedule.append((name, tuple(ivec)))
        self.reads_by_instance.append([])
        self.writes_by_instance.append([])
        self._current = len(self.schedule) - 1

    def read(self, array: str, *index: int) -> None:
        addr: Addr = (array, tuple(index))
        self.events.append(Event("R", addr))
        if self._current >= 0:
            self.reads_by_instance[self._current].append(addr)
            consumer = self.schedule[self._current]
            producer = self.last_writer.get(addr)
            if producer is None:
                self.input_elements.add(addr)
                producer = ("_input", addr)
            if producer != consumer:
                self.flow_edges.add((producer, consumer, addr))

    def write(self, array: str, *index: int) -> None:
        addr: Addr = (array, tuple(index))
        self.events.append(Event("W", addr))
        if self._current >= 0:
            self.writes_by_instance[self._current].append(addr)
            self.last_writer[addr] = self.schedule[self._current]

    # -- derived views ----------------------------------------------------
    def address_trace(self) -> Iterator[Event]:
        return iter(self.events)

    def trace_arrays(self):
        """The recorded address trace in structure-of-arrays form (see
        :class:`repro.ir.soatrace.TraceArrays`), built in one pass."""
        from .soatrace import TraceArrays

        return TraceArrays.from_events(self.events)

    def touched_elements(self) -> set[Addr]:
        return {e.addr for e in self.events}

    def n_reads(self) -> int:
        return sum(1 for e in self.events if e.op == "R")

    def n_writes(self) -> int:
        return sum(1 for e in self.events if e.op == "W")

    def instance_index(self) -> dict[NodeKey, int]:
        """Execution position of each statement instance (must be unique)."""
        out: dict[NodeKey, int] = {}
        for pos, key in enumerate(self.schedule):
            if key in out:
                raise ValueError(f"statement instance executed twice: {key}")
            out[key] = pos
        return out


class NullTracer:
    """No-op tracer with the same interface, for untraced runs."""

    __slots__ = ()

    def stmt(self, name: str, *ivec: int) -> None:  # pragma: no cover - trivial
        pass

    def read(self, array: str, *index: int) -> None:  # pragma: no cover
        pass

    def write(self, array: str, *index: int) -> None:  # pragma: no cover
        pass
