"""Structure-of-arrays address traces.

The :class:`~repro.ir.tracing.Tracer` records an address trace as a list of
:class:`Event` objects — convenient for the CDAG and pebble consumers, but
slow to re-scan: every simulator pass pays per-event attribute lookups and
tuple hashing.  :class:`TraceArrays` is the columnar twin: the same trace as
two numpy arrays (integer address ids and a write flag) plus the id → address
table, built once per kernel run and shared by every subsequent cache pass.

The fast simulators in :mod:`repro.cache.sim` accept either representation;
converters are exact inverses, so ``TraceArrays.from_events(evs).to_events()
== list(evs)`` for any event stream.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterable, Sequence

import numpy as np

from .. import obs
from .tracing import Addr, Event

__all__ = ["TraceArrays"]


@dataclass(frozen=True, eq=False)
class TraceArrays:
    """One address trace in structure-of-arrays form.

    ``addr_ids[i]`` is the dense id of the element touched by event ``i``
    (ids are assigned in first-appearance order), ``is_write[i]`` is True for
    write events, and ``addrs[id]`` recovers the original ``(array, index)``
    address of an id.
    """

    #: int64[T] — dense element id per event, first-appearance numbering
    addr_ids: np.ndarray
    #: bool[T] — True where the event is a write
    is_write: np.ndarray
    #: id -> element address, in first-appearance order
    addrs: tuple[Addr, ...]
    _rank_cache: dict = field(default_factory=dict, repr=False, compare=False)

    @classmethod
    def from_events(cls, events: Iterable[Event]) -> "TraceArrays":
        """Build the columnar form of an event stream (one linear pass)."""
        ids: dict[Addr, int] = {}
        addr_col: list[int] = []
        write_col: list[bool] = []
        for ev in events:
            i = ids.get(ev.addr)
            if i is None:
                i = len(ids)
                ids[ev.addr] = i
            addr_col.append(i)
            write_col.append(ev.op != "R")
        obs.add("ir.events_converted", len(addr_col))
        return cls(
            addr_ids=np.asarray(addr_col, dtype=np.int64),
            is_write=np.asarray(write_col, dtype=bool),
            addrs=tuple(ids),
        )

    def to_events(self) -> list[Event]:
        """Reconstruct the exact event stream (inverse of ``from_events``)."""
        addrs = self.addrs
        return [
            Event("W" if w else "R", addrs[i])
            for i, w in zip(self.addr_ids.tolist(), self.is_write.tolist())
        ]

    def __len__(self) -> int:
        return len(self.addr_ids)

    @property
    def n_addrs(self) -> int:
        """Number of distinct elements touched."""
        return len(self.addrs)

    def address_rank(self) -> np.ndarray:
        """``rank[id]`` = position of ``addrs[id]`` in sorted address order.

        The simulators use this for deterministic eviction tie-breaking
        (lowest address wins), independent of first-appearance id numbering.
        """
        cached = self._rank_cache.get("rank")
        if cached is None:
            order = sorted(range(len(self.addrs)), key=self.addrs.__getitem__)
            cached = np.empty(len(self.addrs), dtype=np.int64)
            cached[order] = np.arange(len(self.addrs), dtype=np.int64)
            self._rank_cache["rank"] = cached
        return cached

    def next_use(self) -> np.ndarray:
        """``nxt[i]`` = index of the next event touching ``addr_ids[i]``,
        or ``len(self)`` (one past the end) if the element is never touched
        again — the backward-pass "OPT array" of the Belady simulator,
        computed vectorized in O(T log T).
        """
        ids = self.addr_ids
        t = len(ids)
        order = np.argsort(ids, kind="stable")  # (id, time) lexicographic
        sorted_ids = ids[order]
        nxt_sorted = np.empty(t, dtype=np.int64)
        if t:
            nxt_sorted[:-1] = order[1:]
            nxt_sorted[-1] = t
            # a change of id between consecutive sorted slots ends that
            # element's occurrence run: no next use
            nxt_sorted[:-1][sorted_ids[:-1] != sorted_ids[1:]] = t
        nxt = np.empty(t, dtype=np.int64)
        nxt[order] = nxt_sorted
        return nxt
