"""Source spans: where a construct came from in the original text.

A :class:`Span` is a half-open region ``[line:col, end_line:end_col)`` of a
source string (lines and columns 1-based, as the lexer reports them).  The
front-end attaches one to every AST node and threads them onto the lowered
:class:`~repro.ir.Statement`/:class:`~repro.ir.Access` objects, so that both
lowering errors and :mod:`repro.analysis` diagnostics can point at the exact
source location instead of a node repr.

Spans are deliberately excluded from equality and hashing (``compare=False``
fields on their carriers): two structurally identical accesses from
different source positions still compare equal, which the hourglass
detector's structural matching relies on.
"""

from __future__ import annotations

from dataclasses import dataclass

__all__ = ["Span"]


@dataclass(frozen=True)
class Span:
    """A half-open source region; ``end_col`` is exclusive."""

    line: int
    col: int
    end_line: int
    end_col: int

    def __post_init__(self):
        if self.line < 1 or self.col < 1:
            raise ValueError("spans are 1-based")

    @staticmethod
    def at(line: int, col: int, width: int = 1) -> "Span":
        """Single-line span of ``width`` characters."""
        return Span(line, col, line, col + width)

    def merge(self, other: "Span | None") -> "Span":
        """Smallest span covering both."""
        if other is None:
            return self
        lo = min((self.line, self.col), (other.line, other.col))
        hi = max((self.end_line, self.end_col), (other.end_line, other.end_col))
        return Span(lo[0], lo[1], hi[0], hi[1])

    def to_dict(self) -> dict:
        return {
            "line": self.line,
            "col": self.col,
            "end_line": self.end_line,
            "end_col": self.end_col,
        }

    def __repr__(self) -> str:
        return f"{self.line}:{self.col}"
