"""Static well-formedness validation for Programs.

``validate_program`` performs the structural checks a front-end or a
hand-written spec can get wrong, *before* any dynamic analysis runs:

* access arity matches the declared array rank;
* every access index is affine in the statement's dims + the parameters;
* loop bounds only reference outer dims and parameters;
* schedule vectors alternate ints and (known) dim names, and two statements
  sharing a loop prefix use the same dim at the same position;
* at most one write per statement (the dataflow engine's single-assignment
  assumption) and no reads of never-written, never-initialised scalars.

Returns a list of human-readable problems (empty = valid); ``strict=True``
raises :class:`ProgramValidationError` instead.
"""

from __future__ import annotations

from .program import Program, Statement

__all__ = ["ProgramValidationError", "validate_program"]


class ProgramValidationError(ValueError):
    def __init__(self, problems: list[str]):
        self.problems = problems
        super().__init__("; ".join(problems))


def validate_program(program: Program, strict: bool = False) -> list[str]:
    problems: list[str] = []
    ranks = {a.name: a.ndim for a in program.arrays}
    params = set(program.params)

    for st in program.statements:
        problems.extend(_check_statement(st, ranks, params))

    problems.extend(_check_schedule_consistency(program))

    if strict and problems:
        raise ProgramValidationError(problems)
    return problems


def _check_statement(st: Statement, ranks, params) -> list[str]:
    out: list[str] = []
    dims = set(st.dims)
    allowed = dims | params

    # loop bounds reference only outer dims + params
    outer: set[str] = set()
    for var, lo, hi in st.loops:
        for label, bound in (("lower", lo), ("upper", hi)):
            vs = getattr(bound, "variables", lambda: frozenset())()
            bad = vs - outer - params
            if bad:
                out.append(
                    f"{st.name}: {label} bound of loop {var} uses"
                    f" non-outer names {sorted(bad)}"
                )
        outer.add(var)

    # accesses
    for kind, accs in (("read", st.reads), ("write", st.writes)):
        for acc in accs:
            rank = ranks.get(acc.array)
            if rank is None:
                out.append(f"{st.name}: {kind} of undeclared array {acc.array}")
                continue
            if len(acc.indices) != rank:
                out.append(
                    f"{st.name}: {kind} {acc!r} has arity {len(acc.indices)},"
                    f" array rank is {rank}"
                )
            for e in acc.indices:
                bad = e.variables() - allowed
                if bad:
                    out.append(
                        f"{st.name}: access {acc!r} uses unknown names {sorted(bad)}"
                    )

    if len(st.writes) > 1:
        out.append(f"{st.name}: {len(st.writes)} writes (expected at most 1)")

    # schedule shape: entries are ints or (possibly "-"-prefixed) dim names
    # appearing in loop order; guard nesting may insert extra int positions
    sched_dims = []
    for idx, x in enumerate(st.schedule):
        if isinstance(x, int):
            continue
        if not isinstance(x, str):
            out.append(
                f"{st.name}: schedule position {idx} should be an int or"
                f" a dim name, got {x!r}"
            )
            continue
        d = x[1:] if x.startswith("-") else x
        if d not in dims:
            out.append(f"{st.name}: schedule uses unknown dim {x!r}")
        sched_dims.append(d)
    if st.schedule and sched_dims != list(st.dims)[: len(sched_dims)]:
        out.append(
            f"{st.name}: schedule dims {sched_dims} do not match loop order"
            f" {list(st.dims)}"
        )
    return out


def _check_schedule_consistency(program: Program) -> list[str]:
    """Statements sharing a schedule prefix must use the same dim there."""
    out: list[str] = []
    scheds = [(s.name, s.schedule) for s in program.statements if s.schedule]
    for i in range(len(scheds)):
        for j in range(i + 1, len(scheds)):
            n1, s1 = scheds[i]
            n2, s2 = scheds[j]
            for pos in range(min(len(s1), len(s2))):
                # only constrain while the prefix matches
                if pos and s1[:pos] != s2[:pos]:
                    break
                a, b = s1[pos], s2[pos]
                if isinstance(a, str) != isinstance(b, str):
                    out.append(
                        f"{n1} and {n2}: schedule position {pos} mixes a dim"
                        f" ({a!r} vs {b!r}) with a static slot"
                    )
                    break
                if isinstance(a, str) and a != b:
                    out.append(
                        f"{n1} and {n2}: different dims {a!r} vs {b!r}"
                        f" at shared schedule position {pos}"
                    )
                    break
    return out
