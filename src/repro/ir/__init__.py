"""Program IR: polyhedral statements + instrumented execution tracing."""

from .dataflow import dataflow_trace, sequential_schedule
from .program import Access, Array, Dependence, Program, Statement
from .span import Span
from .validate import ProgramValidationError, validate_program
from .soatrace import TraceArrays
from .tracing import Addr, Event, NullTracer, Tracer, trace_node_key

__all__ = [
    "Span",
    "TraceArrays",
    "ProgramValidationError",
    "validate_program",
    "dataflow_trace",
    "sequential_schedule",
    "Access",
    "Array",
    "Dependence",
    "Program",
    "Statement",
    "Addr",
    "Event",
    "NullTracer",
    "Tracer",
    "trace_node_key",
]
