"""Exact dataflow analysis of a polyhedral program at concrete parameters.

This replays the *declared* IR — domains, access functions, sequential
schedule vectors — through last-writer analysis, producing the same
:class:`~repro.ir.tracing.Tracer` structure an instrumented run produces.
It is the IOLB-side dependence analysis: where the instrumented runner tells
us what the *code* does, this tells us what the *spec* says; the test-suite
requires the two to agree edge-for-edge on every kernel.

Within one statement instance all reads happen before all writes (true for
every single-assignment-per-statement kernel in this library and for the C
semantics of the figures).
"""

from __future__ import annotations

from typing import Mapping

from .. import obs
from .program import Program
from .tracing import Tracer

__all__ = ["dataflow_trace", "sequential_schedule"]


def sequential_schedule(
    program: Program, params: Mapping[str, int]
) -> list[tuple[str, tuple[int, ...]]]:
    """All statement instances sorted by their concrete schedule vectors."""
    keyed: list[tuple[tuple, str, tuple[int, ...]]] = []
    maxlen = 0
    for s in program.statements:
        if not s.schedule:
            raise ValueError(f"statement {s.name!r} has no schedule vector")
        for p in s.domain().points(params):
            key = s.schedule_key(p)
            maxlen = max(maxlen, len(key))
            keyed.append((key, s.name, p))
    padded = [
        (key + (0,) * (maxlen - len(key)), name, p) for key, name, p in keyed
    ]
    padded.sort(key=lambda t: t[0])
    return [(name, p) for _, name, p in padded]


def dataflow_trace(program: Program, params: Mapping[str, int]) -> Tracer:
    """Replay the declared accesses in schedule order through a Tracer.

    The resulting tracer carries exact flow edges, input elements and the
    sequential schedule — everything :func:`repro.cdag.cdag_from_trace`
    needs, derived purely from the spec.
    """
    t = Tracer()
    order = sequential_schedule(program, params)
    stmts = {s.name: s for s in program.statements}
    for name, point in order:
        s = stmts[name]
        env = dict(params)
        env.update(zip(s.dims, point))
        t.stmt(name, *point)
        for acc in s.reads:
            arr, idx = acc.eval(env)
            t.read(arr, *idx)
        for acc in s.writes:
            arr, idx = acc.eval(env)
            t.write(arr, *idx)
    if obs.enabled():
        obs.add("ir.dataflow_instances", len(t.schedule))
        obs.add("ir.dataflow_events", len(t.events))
    return t
