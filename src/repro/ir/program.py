"""Polyhedral program IR: arrays, affine accesses, statements, dependences.

A :class:`Program` captures exactly the information IOLB works from: for each
statement, its iteration domain (a loop nest with affine bounds) and its
affine read/write accesses; plus the flow-dependence relations between
statements, declared as guarded affine maps.

Declared dependences are *checked*, not trusted: the CDAG built from them is
compared against the CDAG derived from an instrumented execution trace for
small parameter values (see :mod:`repro.cdag.check`).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Iterable, Mapping, Sequence

from ..polyhedral import (
    AffineMap,
    Constraint,
    ISet,
    LinExpr,
    aff,
    loop_nest_set,
    symbolic_count,
)
from ..symbolic import Poly
from .span import Span

__all__ = ["Array", "Access", "Statement", "Dependence", "Program"]

LoopTriple = tuple[str, "LinExpr | int", "LinExpr | int"]


@dataclass(frozen=True)
class Array:
    """A program array (or scalar when ``ndim == 0``)."""

    name: str
    ndim: int

    def __post_init__(self):
        if self.ndim < 0:
            raise ValueError("ndim must be >= 0")


@dataclass(frozen=True)
class Access:
    """An affine array access ``array[f_1(iv), ..., f_d(iv)]``.

    ``span`` records where the access appeared in the source (front-end
    programs only); it is excluded from equality/hashing so structural
    access matching (e.g. the hourglass self-update test) ignores it.
    """

    array: str
    indices: tuple[LinExpr, ...]
    span: Span | None = field(default=None, compare=False, repr=False)

    @staticmethod
    def to(array: str, *indices: "LinExpr | int") -> "Access":
        return Access(array, tuple(aff(x) for x in indices))

    def dims_used(self, dims: Sequence[str]) -> frozenset[str]:
        """Which of the statement's dimensions appear in the index functions."""
        used: set[str] = set()
        dimset = set(dims)
        for e in self.indices:
            used |= e.variables() & dimset
        return frozenset(used)

    def eval(self, env: Mapping[str, int]) -> tuple[str, tuple[int, ...]]:
        idx = []
        for e in self.indices:
            v = e.eval(env)
            if v.denominator != 1:
                raise ValueError(f"non-integral access index {e!r} at {env}")
            idx.append(int(v))
        return (self.array, tuple(idx))

    def __repr__(self) -> str:
        return f"{self.array}[{', '.join(repr(e) for e in self.indices)}]"


@dataclass(frozen=True)
class Statement:
    """A statement with its loop nest, accesses and (optional) guards.

    ``loops`` is ordered outermost-first with *inclusive* affine bounds,
    mirroring the figures of the paper; the iteration domain is the
    corresponding :class:`ISet` (plus ``guards``).

    ``schedule`` is a 2d+1-style sequential schedule vector: a tuple
    alternating static (int) positions and loop dimension names, e.g.
    ``(0, "k", 4, "j", 2, "i", 0)`` for the second statement of the third
    block inside loops k, j, i.  Two statements sharing enclosing loops must
    use identical dim names at the shared positions; vectors are compared
    elementwise after substituting dim values, padding with zeros.
    """

    name: str
    loops: tuple[LoopTriple, ...]
    reads: tuple[Access, ...] = ()
    writes: tuple[Access, ...] = ()
    guards: tuple[Constraint, ...] = ()
    schedule: tuple = ()
    span: Span | None = field(default=None, compare=False, repr=False)

    def schedule_key(self, point: Sequence[int]) -> tuple:
        """Concrete schedule vector of an instance (for sequential sorting).

        A dim name prefixed with ``-`` denotes a loop executed in decreasing
        order (e.g. V2Q's outer ``for (k = N-1; k >= 0; k--)`` uses ``"-k"``).
        """
        env = dict(zip(self.dims, point))
        out = []
        for x in self.schedule:
            if isinstance(x, str):
                out.append(-env[x[1:]] if x.startswith("-") else env[x])
            else:
                out.append(x)
        return tuple(out)

    @property
    def dims(self) -> tuple[str, ...]:
        return tuple(v for v, _, _ in self.loops)

    def domain(self) -> ISet:
        return loop_nest_set(
            [(v, aff(lo), aff(hi)) for v, lo, hi in self.loops], self.guards
        )

    def instance_count(self) -> Poly:
        """Closed-form number of instances (guards must be loop bounds only)."""
        if self.guards:
            raise ValueError(
                f"symbolic count of guarded statement {self.name!r} unsupported"
            )
        return symbolic_count(
            [(v, aff(lo), aff(hi)) for v, lo, hi in self.loops]
        )

    def __repr__(self) -> str:
        return f"Statement({self.name}, dims={self.dims})"


@dataclass(frozen=True)
class Dependence:
    """A flow dependence ``src[iv] -> tgt[map(iv)]`` guarded by ``map.guards``.

    ``via`` names the array carrying the value.  The map's source dims must
    equal the source statement's dims and its target dims the target's.
    """

    src: str
    tgt: str
    map: AffineMap
    via: str = ""

    def __repr__(self) -> str:
        return f"Dep({self.src} -> {self.tgt} via {self.via}: {self.map!r})"


@dataclass
class Program:
    """A whole kernel: statements, declared dependences, metadata.

    ``runner`` is the matching instrumented Python implementation (signature
    ``runner(params: dict, tracer: Tracer | None, rng) -> dict[str, ndarray]``),
    used for numeric validation and trace-derived CDAGs.
    """

    name: str
    params: tuple[str, ...]
    arrays: tuple[Array, ...]
    statements: tuple[Statement, ...]
    deps: tuple[Dependence, ...] = ()
    outputs: tuple[str, ...] = ()
    runner: Callable | None = None
    notes: str = ""

    _by_name: dict[str, Statement] = field(init=False, repr=False)

    def __post_init__(self):
        self._by_name = {s.name: s for s in self.statements}
        if len(self._by_name) != len(self.statements):
            raise ValueError("duplicate statement names")
        arr_names = {a.name for a in self.arrays}
        for s in self.statements:
            for acc in s.reads + s.writes:
                if acc.array not in arr_names:
                    raise ValueError(
                        f"statement {s.name} accesses undeclared array {acc.array}"
                    )
        for d in self.deps:
            if d.src not in self._by_name or d.tgt not in self._by_name:
                raise ValueError(f"dependence on unknown statement: {d!r}")

    def statement(self, name: str) -> Statement:
        return self._by_name[name]

    def deps_from(self, name: str) -> list[Dependence]:
        return [d for d in self.deps if d.src == name]

    def deps_to(self, name: str) -> list[Dependence]:
        return [d for d in self.deps if d.tgt == name]

    def total_instances(self) -> Poly:
        out = Poly.const(0)
        for s in self.statements:
            out = out + s.instance_count()
        return out

    def instances(self, params: Mapping[str, int]) -> Iterable[tuple[str, tuple[int, ...]]]:
        for s in self.statements:
            for p in s.domain().points(params):
                yield (s.name, p)
