"""Support for the tiled (blocked) algorithms of Appendix A.

A :class:`TiledAlgorithm` is a *reordering* of a base kernel: it executes the
same multiset of scalar operations as the untiled figure (left-looking
instead of right-looking, blocked over columns) and emits the same statement
instance names, so its instrumented schedule is checkable as a topological
order of the base kernel's CDAG.  Its I/O, measured by the cache simulator
on the address trace, realises the paper's upper bounds.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Mapping

from ..ir import Tracer
from ..symbolic import Rational

__all__ = ["TiledAlgorithm", "default_block_size"]


@dataclass
class TiledAlgorithm:
    """A blocked ordering of a base kernel with its predicted I/O cost."""

    name: str
    #: name of the base kernel whose CDAG this algorithm reorders
    base: str
    #: runner(params, tracer, seed) executing the blocked order; params
    #: must include the block size "B"
    runner: Callable
    #: leading-term I/O prediction from the appendix, in parameters M, N, B
    io_reads_formula: Rational | None = None
    io_total_formula: Rational | None = None
    #: constraint documentation, e.g. "(M+1)*B < S"
    cache_condition: str = ""
    description: str = ""
    validate: Callable[[Mapping[str, int]], None] | None = None
    #: schedule introspection hook for the A009/A010 legality pass: given a
    #: concrete block size B, return the proposed symbolic schedule of the
    #: *base* kernel's statements (statement name -> SchedulePiece sequence,
    #: see repro.analysis.deps.check_schedule).  None means the algorithm
    #: has no closed-form schedule; legality falls back to replaying its
    #: traced instance order through repro.analysis.deps.check_order.
    schedule_spec: Callable[[int], Mapping[str, object]] | None = None

    def run_traced(self, params: Mapping[str, int], seed: int = 0) -> Tracer:
        t = Tracer()
        self.runner(dict(params), t, seed=seed)
        return t


def default_block_size(m: int, s: int) -> int:
    """The appendix's choice B = floor(S/m) - 1, clipped to >= 1.

    Callers pass ``m = M + 1`` (matrix rows plus one), not ``M``: the blocked
    algorithms keep ``M·B`` block elements, the ``B``-wide coefficient row
    *and* one full past column of ``M`` elements resident at once, so the
    exact fit condition is ``(M+1)·B + M <= S`` (cf. each algorithm's
    ``cache_condition``), which ``floor(S/(M+1)) - 1`` guarantees while the
    paper's asymptotic ``floor(S/M) - 1`` can exceed S.  See the audit note
    in :mod:`repro.bounds.tuner` for a worked example.
    """
    return max(1, s // m - 1)
