"""Bidiagonal reduction (LAPACK GEBD2), unblocked, M >= N.

The paper gives no listing ("similar to both Householder proofs"); we
transcribe the reference unblocked algorithm in the exact style of Figure 3:
for each column k, a column Householder reflector (zeroing A[k+1:M, k]) is
generated and applied to the trailing columns, then — for k <= N-3 — a row
reflector (zeroing A[k, k+2:N]) is generated and applied to the trailing
rows.  Workspace ``w``/``z`` hold the reflected row/column inner products.

The column-update pair (ScR reduction over i, ScU broadcast over i) carries
the hourglass with width M-1-k >= M-N, matching Theorem 8's
``MN^2 (M-N+1) / (8 (S + M-N+1))`` bound.

Statement names (c = column phase, r = row phase)::

    Scn0[k]      norma2 = 0
    Scn[k,i]     norma2 += A[i][k]**2            (i in k+1..M-1)
    Scnorm[k]    norma = sqrt(A[k][k]**2 + norma2)
    Scd[k]       A[k][k] += sign * norma
    Sct[k]       tauq[k] = 2/(1 + norma2/A[k][k]**2)
    Scv[k,i]     A[i][k] /= A[k][k]
    Scd2[k]      A[k][k] = -sign * norma
    Scw0[k,j]    w[j] = A[k][j]                  (j in k+1..N-1)
    ScR[k,j,i]   w[j] += A[i][k] * A[i][j]       (i in k+1..M-1)
    Scw1[k,j]    w[j] *= tauq[k]
    Scw2[k,j]    A[k][j] -= w[j]
    ScU[k,j,i]   A[i][j] -= A[i][k] * w[j]
    Srn0[k]      norma2 = 0                      (k in 0..N-3)
    Srn[k,j]     norma2 += A[k][j]**2            (j in k+2..N-1)
    Srnorm[k]    norma = sqrt(A[k][k+1]**2 + norma2)
    Srd[k]       A[k][k+1] += sign * norma
    Srt[k]       taup[k] = 2/(1 + norma2/A[k][k+1]**2)
    Srv[k,j]     A[k][j] /= A[k][k+1]            (j in k+2..N-1)
    Srd2[k]      A[k][k+1] = -sign * norma
    Srz0[k,i]    z[i] = A[i][k+1]                (i in k+1..M-1)
    SrR[k,i,j]   z[i] += A[k][j] * A[i][j]       (j in k+2..N-1)
    Srz1[k,i]    z[i] *= taup[k]
    Srz2[k,i]    A[i][k+1] -= z[i]
    SrU[k,i,j]   A[i][j] -= z[i] * A[k][j]
"""

from __future__ import annotations

import math
from typing import Mapping

import numpy as np

from ..ir import Access, Array, NullTracer, Program, Statement
from ..polyhedral import var
from .common import Kernel, random_matrix

__all__ = ["GEBD2", "build_gebd2_program", "run_gebd2"]

k, j, i = var("k"), var("j"), var("i")
M, N = var("M"), var("N")


def run_gebd2(params: Mapping[str, int], tracer=None, seed: int = 0):
    """Execute the unblocked bidiagonal reduction, instrumented.  M > N."""
    m, n = params["M"], params["N"]
    if m <= n:
        raise ValueError("GEBD2 spec assumes M > N")
    t = tracer if tracer is not None else NullTracer()
    A = random_matrix(m, n, seed)
    tauq = np.zeros(n)
    taup = np.zeros(max(n - 2, 0))
    w = np.zeros(n)
    z = np.zeros(m)
    norma2 = 0.0
    norma = 0.0
    for kk in range(n):
        # --- column reflector: zero A[k+1:M, k] -------------------------------
        t.stmt("Scn0", kk)
        t.write("norma2")
        norma2 = 0.0
        for ii in range(kk + 1, m):
            t.stmt("Scn", kk, ii)
            t.read("A", ii, kk)
            t.read("norma2")
            t.write("norma2")
            norma2 += A[ii, kk] * A[ii, kk]
        t.stmt("Scnorm", kk)
        t.read("A", kk, kk)
        t.read("norma2")
        t.write("norma")
        norma = math.sqrt(A[kk, kk] * A[kk, kk] + norma2)
        t.stmt("Scd", kk)
        t.read("A", kk, kk)
        t.read("norma")
        t.write("A", kk, kk)
        A[kk, kk] = A[kk, kk] + norma if A[kk, kk] > 0 else A[kk, kk] - norma
        t.stmt("Sct", kk)
        t.read("norma2")
        t.read("A", kk, kk)
        t.write("tauq", kk)
        tauq[kk] = 2.0 / (1.0 + norma2 / (A[kk, kk] * A[kk, kk]))
        for ii in range(kk + 1, m):
            t.stmt("Scv", kk, ii)
            t.read("A", ii, kk)
            t.read("A", kk, kk)
            t.write("A", ii, kk)
            A[ii, kk] /= A[kk, kk]
        t.stmt("Scd2", kk)
        t.read("A", kk, kk)
        t.read("norma")
        t.write("A", kk, kk)
        A[kk, kk] = -norma if A[kk, kk] > 0 else norma
        for jj in range(kk + 1, n):
            t.stmt("Scw0", kk, jj)
            t.read("A", kk, jj)
            t.write("w", jj)
            w[jj] = A[kk, jj]
            for ii in range(kk + 1, m):
                t.stmt("ScR", kk, jj, ii)
                t.read("A", ii, kk)
                t.read("A", ii, jj)
                t.read("w", jj)
                t.write("w", jj)
                w[jj] += A[ii, kk] * A[ii, jj]
            t.stmt("Scw1", kk, jj)
            t.read("w", jj)
            t.read("tauq", kk)
            t.write("w", jj)
            w[jj] *= tauq[kk]
            t.stmt("Scw2", kk, jj)
            t.read("A", kk, jj)
            t.read("w", jj)
            t.write("A", kk, jj)
            A[kk, jj] -= w[jj]
            for ii in range(kk + 1, m):
                t.stmt("ScU", kk, jj, ii)
                t.read("A", ii, jj)
                t.read("A", ii, kk)
                t.read("w", jj)
                t.write("A", ii, jj)
                A[ii, jj] -= A[ii, kk] * w[jj]
        # --- row reflector: zero A[k, k+2:N] ---------------------------------
        if kk <= n - 3:
            t.stmt("Srn0", kk)
            t.write("norma2")
            norma2 = 0.0
            for jj in range(kk + 2, n):
                t.stmt("Srn", kk, jj)
                t.read("A", kk, jj)
                t.read("norma2")
                t.write("norma2")
                norma2 += A[kk, jj] * A[kk, jj]
            t.stmt("Srnorm", kk)
            t.read("A", kk, kk + 1)
            t.read("norma2")
            t.write("norma")
            norma = math.sqrt(A[kk, kk + 1] * A[kk, kk + 1] + norma2)
            t.stmt("Srd", kk)
            t.read("A", kk, kk + 1)
            t.read("norma")
            t.write("A", kk, kk + 1)
            A[kk, kk + 1] = (
                A[kk, kk + 1] + norma if A[kk, kk + 1] > 0 else A[kk, kk + 1] - norma
            )
            t.stmt("Srt", kk)
            t.read("norma2")
            t.read("A", kk, kk + 1)
            t.write("taup", kk)
            taup[kk] = 2.0 / (1.0 + norma2 / (A[kk, kk + 1] * A[kk, kk + 1]))
            for jj in range(kk + 2, n):
                t.stmt("Srv", kk, jj)
                t.read("A", kk, jj)
                t.read("A", kk, kk + 1)
                t.write("A", kk, jj)
                A[kk, jj] /= A[kk, kk + 1]
            t.stmt("Srd2", kk)
            t.read("A", kk, kk + 1)
            t.read("norma")
            t.write("A", kk, kk + 1)
            A[kk, kk + 1] = -norma if A[kk, kk + 1] > 0 else norma
            for ii in range(kk + 1, m):
                t.stmt("Srz0", kk, ii)
                t.read("A", ii, kk + 1)
                t.write("z", ii)
                z[ii] = A[ii, kk + 1]
                for jj in range(kk + 2, n):
                    t.stmt("SrR", kk, ii, jj)
                    t.read("A", kk, jj)
                    t.read("A", ii, jj)
                    t.read("z", ii)
                    t.write("z", ii)
                    z[ii] += A[kk, jj] * A[ii, jj]
                t.stmt("Srz1", kk, ii)
                t.read("z", ii)
                t.read("taup", kk)
                t.write("z", ii)
                z[ii] *= taup[kk]
                t.stmt("Srz2", kk, ii)
                t.read("A", ii, kk + 1)
                t.read("z", ii)
                t.write("A", ii, kk + 1)
                A[ii, kk + 1] -= z[ii]
                for jj in range(kk + 2, n):
                    t.stmt("SrU", kk, ii, jj)
                    t.read("A", ii, jj)
                    t.read("z", ii)
                    t.read("A", kk, jj)
                    t.write("A", ii, jj)
                    A[ii, jj] -= z[ii] * A[kk, jj]
    return {"A": A, "tauq": tauq, "taup": taup}


def build_gebd2_program() -> Program:
    """The polyhedral spec of the unblocked GEBD2 (domains/accesses/schedules)."""
    arrays = (
        Array("A", 2),
        Array("tauq", 1),
        Array("taup", 1),
        Array("w", 1),
        Array("z", 1),
        Array("norma", 0),
        Array("norma2", 0),
    )
    st = (
        # column phase
        Statement("Scn0", loops=(("k", 0, N - 1),),
                  writes=(Access.to("norma2"),), schedule=(0, "k", 0)),
        Statement("Scn", loops=(("k", 0, N - 1), ("i", k + 1, M - 1)),
                  reads=(Access.to("A", i, k), Access.to("norma2")),
                  writes=(Access.to("norma2"),), schedule=(0, "k", 1, "i", 0)),
        Statement("Scnorm", loops=(("k", 0, N - 1),),
                  reads=(Access.to("A", k, k), Access.to("norma2")),
                  writes=(Access.to("norma"),), schedule=(0, "k", 2)),
        Statement("Scd", loops=(("k", 0, N - 1),),
                  reads=(Access.to("A", k, k), Access.to("norma")),
                  writes=(Access.to("A", k, k),), schedule=(0, "k", 3)),
        Statement("Sct", loops=(("k", 0, N - 1),),
                  reads=(Access.to("norma2"), Access.to("A", k, k)),
                  writes=(Access.to("tauq", k),), schedule=(0, "k", 4)),
        Statement("Scv", loops=(("k", 0, N - 1), ("i", k + 1, M - 1)),
                  reads=(Access.to("A", i, k), Access.to("A", k, k)),
                  writes=(Access.to("A", i, k),), schedule=(0, "k", 5, "i", 0)),
        Statement("Scd2", loops=(("k", 0, N - 1),),
                  reads=(Access.to("A", k, k), Access.to("norma")),
                  writes=(Access.to("A", k, k),), schedule=(0, "k", 6)),
        Statement("Scw0", loops=(("k", 0, N - 1), ("j", k + 1, N - 1)),
                  reads=(Access.to("A", k, j),),
                  writes=(Access.to("w", j),), schedule=(0, "k", 7, "j", 0)),
        Statement("ScR",
                  loops=(("k", 0, N - 1), ("j", k + 1, N - 1), ("i", k + 1, M - 1)),
                  reads=(Access.to("A", i, k), Access.to("A", i, j),
                         Access.to("w", j)),
                  writes=(Access.to("w", j),), schedule=(0, "k", 7, "j", 1, "i", 0)),
        Statement("Scw1", loops=(("k", 0, N - 1), ("j", k + 1, N - 1)),
                  reads=(Access.to("w", j), Access.to("tauq", k)),
                  writes=(Access.to("w", j),), schedule=(0, "k", 7, "j", 2)),
        Statement("Scw2", loops=(("k", 0, N - 1), ("j", k + 1, N - 1)),
                  reads=(Access.to("A", k, j), Access.to("w", j)),
                  writes=(Access.to("A", k, j),), schedule=(0, "k", 7, "j", 3)),
        Statement("ScU",
                  loops=(("k", 0, N - 1), ("j", k + 1, N - 1), ("i", k + 1, M - 1)),
                  reads=(Access.to("A", i, j), Access.to("A", i, k),
                         Access.to("w", j)),
                  writes=(Access.to("A", i, j),), schedule=(0, "k", 7, "j", 4, "i", 0)),
        # row phase (k <= N-3)
        Statement("Srn0", loops=(("k", 0, N - 3),),
                  writes=(Access.to("norma2"),), schedule=(0, "k", 8)),
        Statement("Srn", loops=(("k", 0, N - 3), ("j", k + 2, N - 1)),
                  reads=(Access.to("A", k, j), Access.to("norma2")),
                  writes=(Access.to("norma2"),), schedule=(0, "k", 9, "j", 0)),
        Statement("Srnorm", loops=(("k", 0, N - 3),),
                  reads=(Access.to("A", k, k + 1), Access.to("norma2")),
                  writes=(Access.to("norma"),), schedule=(0, "k", 10)),
        Statement("Srd", loops=(("k", 0, N - 3),),
                  reads=(Access.to("A", k, k + 1), Access.to("norma")),
                  writes=(Access.to("A", k, k + 1),), schedule=(0, "k", 11)),
        Statement("Srt", loops=(("k", 0, N - 3),),
                  reads=(Access.to("norma2"), Access.to("A", k, k + 1)),
                  writes=(Access.to("taup", k),), schedule=(0, "k", 12)),
        Statement("Srv", loops=(("k", 0, N - 3), ("j", k + 2, N - 1)),
                  reads=(Access.to("A", k, j), Access.to("A", k, k + 1)),
                  writes=(Access.to("A", k, j),), schedule=(0, "k", 13, "j", 0)),
        Statement("Srd2", loops=(("k", 0, N - 3),),
                  reads=(Access.to("A", k, k + 1), Access.to("norma")),
                  writes=(Access.to("A", k, k + 1),), schedule=(0, "k", 14)),
        Statement("Srz0", loops=(("k", 0, N - 3), ("i", k + 1, M - 1)),
                  reads=(Access.to("A", i, k + 1),),
                  writes=(Access.to("z", i),), schedule=(0, "k", 15, "i", 0)),
        Statement("SrR",
                  loops=(("k", 0, N - 3), ("i", k + 1, M - 1), ("j", k + 2, N - 1)),
                  reads=(Access.to("A", k, j), Access.to("A", i, j),
                         Access.to("z", i)),
                  writes=(Access.to("z", i),), schedule=(0, "k", 15, "i", 1, "j", 0)),
        Statement("Srz1", loops=(("k", 0, N - 3), ("i", k + 1, M - 1)),
                  reads=(Access.to("z", i), Access.to("taup", k)),
                  writes=(Access.to("z", i),), schedule=(0, "k", 15, "i", 2)),
        Statement("Srz2", loops=(("k", 0, N - 3), ("i", k + 1, M - 1)),
                  reads=(Access.to("A", i, k + 1), Access.to("z", i)),
                  writes=(Access.to("A", i, k + 1),), schedule=(0, "k", 15, "i", 3)),
        Statement("SrU",
                  loops=(("k", 0, N - 3), ("i", k + 1, M - 1), ("j", k + 2, N - 1)),
                  reads=(Access.to("A", i, j), Access.to("z", i),
                         Access.to("A", k, j)),
                  writes=(Access.to("A", i, j),), schedule=(0, "k", 15, "i", 4, "j", 0)),
    )
    return Program(
        name="gebd2",
        params=("M", "N"),
        arrays=arrays,
        statements=st,
        outputs=("A", "tauq", "taup"),
        runner=run_gebd2,
        notes="LAPACK GEBD2, unblocked bidiagonal reduction. Assumes M > N.",
    )


def _validate(params: Mapping[str, int]) -> None:
    """Numeric check: the bidiagonal band has the singular values of A0."""
    m, n = params["M"], params["N"]
    A0 = random_matrix(m, n, 0)
    out = run_gebd2(params, None, seed=0)
    Afin = out["A"]
    B = np.zeros((n, n))
    for kk in range(n):
        B[kk, kk] = Afin[kk, kk]
        if kk + 1 < n:
            B[kk, kk + 1] = Afin[kk, kk + 1]
    sv_b = np.linalg.svd(B, compute_uv=False)
    sv_a = np.linalg.svd(A0, compute_uv=False)
    err = float(np.max(np.abs(np.sort(sv_b) - np.sort(sv_a))))
    assert err < 1e-8 * max(1.0, sv_a.max()), f"singular values differ: {err}"


GEBD2 = Kernel(
    program=build_gebd2_program(),
    dominant="ScU",
    description="Bidiagonal reduction (LAPACK GEBD2, unblocked)",
    default_params={"M": 12, "N": 6},
    validate=_validate,
)
