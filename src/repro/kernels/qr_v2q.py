"""QR Householder factorization, V2Q part (Figure 6; LAPACK ORG2R).

Accumulates the orthogonal factor Q in place from the packed Householder
vectors produced by A2V.  The outer loop runs *backwards* (k from N-1 down
to 0, a left-looking build of Q from the bottom-right corner), which the
schedule vectors express with the ``"-k"`` decreasing-dimension notation.

Statement names::

    Sz[k,j]     tau[j] = 0                     (j in k+1..N-1)
    SR[k,j,i]   tau[j] += A[i][k] * A[i][j]    (i in k+1..M-1)
    St[k,j]     tau[j] *= tau[k]
    Sd[k]       A[k][k] = 1 - tau[k]
    Sr[k,j]     A[k][j] = -tau[j]
    SU[k,j,i]   A[i][j] -= A[i][k] * tau[j]
    Sv[k,i]     A[i][k] = -A[i][k] * tau[k]    (i in k+1..M-1)

Input: A holds the V vectors strictly below the diagonal (upper part is
irrelevant and overwritten), tau holds the Householder scalars; output: Q in A.
"""

from __future__ import annotations

from typing import Mapping

import numpy as np

from ..ir import Access, Array, NullTracer, Program, Statement
from ..polyhedral import var
from .common import Kernel, random_matrix, relative_error
from .qr_a2v import householder_q, run_qr_a2v

__all__ = ["QR_V2Q", "build_v2q_program", "run_qr_v2q"]

k, j, i = var("k"), var("j"), var("i")
M, N = var("M"), var("N")


def run_qr_v2q(params: Mapping[str, int], tracer=None, seed: int = 0):
    """Execute Figure 6 exactly, instrumented.  Requires M > N.

    The V/tau inputs are produced by running A2V on a random matrix so the
    numeric output is a genuine Q factor.
    """
    m, n = params["M"], params["N"]
    if m <= n:
        raise ValueError("V2Q spec assumes M > N (as in Figure 6)")
    t = tracer if tracer is not None else NullTracer()
    a2v = run_qr_a2v(params, None, seed=seed)
    A = a2v["A"].copy()
    tau = a2v["tau"].copy()
    for kk in range(n - 1, -1, -1):
        for jj in range(kk + 1, n):
            t.stmt("Sz", kk, jj)
            t.write("tau", jj)
            tau[jj] = 0.0
            for ii in range(kk + 1, m):
                t.stmt("SR", kk, jj, ii)
                t.read("A", ii, kk)
                t.read("A", ii, jj)
                t.read("tau", jj)
                t.write("tau", jj)
                tau[jj] += A[ii, kk] * A[ii, jj]
        for jj in range(kk + 1, n):
            t.stmt("St", kk, jj)
            t.read("tau", jj)
            t.read("tau", kk)
            t.write("tau", jj)
            tau[jj] *= tau[kk]
        t.stmt("Sd", kk)
        t.read("tau", kk)
        t.write("A", kk, kk)
        A[kk, kk] = 1.0 - tau[kk]
        for jj in range(kk + 1, n):
            t.stmt("Sr", kk, jj)
            t.read("tau", jj)
            t.write("A", kk, jj)
            A[kk, jj] = -tau[jj]
        for jj in range(kk + 1, n):
            for ii in range(kk + 1, m):
                t.stmt("SU", kk, jj, ii)
                t.read("A", ii, jj)
                t.read("A", ii, kk)
                t.read("tau", jj)
                t.write("A", ii, jj)
                A[ii, jj] -= A[ii, kk] * tau[jj]
        for ii in range(kk + 1, m):
            t.stmt("Sv", kk, ii)
            t.read("A", ii, kk)
            t.read("tau", kk)
            t.write("A", ii, kk)
            A[ii, kk] = -A[ii, kk] * tau[kk]
    return {"A": A, "tau": tau}


def build_v2q_program() -> Program:
    """The polyhedral spec of Figure 6 (domains/accesses/schedules)."""
    arrays = (Array("A", 2), Array("tau", 1))
    st = (
        Statement(
            "Sz",
            loops=(("k", 0, N - 1), ("j", k + 1, N - 1)),
            writes=(Access.to("tau", j),),
            schedule=(0, "-k", 0, "j", 0),
        ),
        Statement(
            "SR",
            loops=(("k", 0, N - 1), ("j", k + 1, N - 1), ("i", k + 1, M - 1)),
            reads=(
                Access.to("A", i, k),
                Access.to("A", i, j),
                Access.to("tau", j),
            ),
            writes=(Access.to("tau", j),),
            schedule=(0, "-k", 0, "j", 1, "i", 0),
        ),
        Statement(
            "St",
            loops=(("k", 0, N - 1), ("j", k + 1, N - 1)),
            reads=(Access.to("tau", j), Access.to("tau", k)),
            writes=(Access.to("tau", j),),
            schedule=(0, "-k", 1, "j", 0),
        ),
        Statement(
            "Sd",
            loops=(("k", 0, N - 1),),
            reads=(Access.to("tau", k),),
            writes=(Access.to("A", k, k),),
            schedule=(0, "-k", 2),
        ),
        Statement(
            "Sr",
            loops=(("k", 0, N - 1), ("j", k + 1, N - 1)),
            reads=(Access.to("tau", j),),
            writes=(Access.to("A", k, j),),
            schedule=(0, "-k", 3, "j", 0),
        ),
        Statement(
            "SU",
            loops=(("k", 0, N - 1), ("j", k + 1, N - 1), ("i", k + 1, M - 1)),
            reads=(
                Access.to("A", i, j),
                Access.to("A", i, k),
                Access.to("tau", j),
            ),
            writes=(Access.to("A", i, j),),
            schedule=(0, "-k", 4, "j", 0, "i", 0),
        ),
        Statement(
            "Sv",
            loops=(("k", 0, N - 1), ("i", k + 1, M - 1)),
            reads=(Access.to("A", i, k), Access.to("tau", k)),
            writes=(Access.to("A", i, k),),
            schedule=(0, "-k", 5, "i", 0),
        ),
    )
    return Program(
        name="qr_v2q",
        params=("M", "N"),
        arrays=arrays,
        statements=st,
        outputs=("A",),
        runner=run_qr_v2q,
        notes="Figure 6 (LAPACK ORG2R, left-looking, reversed outer loop).",
    )


def _validate(params: Mapping[str, int]) -> None:
    """Numeric check: V2Q(A2V(A0)) equals the explicitly accumulated Q."""
    m, n = params["M"], params["N"]
    a2v = run_qr_a2v(params, None, seed=0)
    q_ref = householder_q(a2v["A"], a2v["tau"], m)[:, :n]
    out = run_qr_v2q(params, None, seed=0)
    assert relative_error(out["A"], q_ref) < 1e-10, "V2Q disagrees with explicit Q"
    assert relative_error(out["A"].T @ out["A"], np.eye(n)) < 1e-8, (
        "Q columns not orthonormal"
    )


QR_V2Q = Kernel(
    program=build_v2q_program(),
    dominant="SU",
    description="Householder QR, V2Q part (Figure 6 / ORG2R)",
    default_params={"M": 12, "N": 6},
    validate=_validate,
)
