"""Tiled left-looking Modified Gram-Schmidt (Figure 8 / Appendix A.1).

Executes exactly the scalar operations of the right-looking MGS (Figure 1)
in the blocked left-looking order of Figure 8: columns are processed in
blocks of B; for each block, all previous reflections are applied one past
column at a time (reusing that column across the whole block — the source of
the factor-B I/O saving), then the block is factored internally.

Statement instances are named after the *right-looking* spec (Sr0, SR, SU,
Snrm0, Snrm, Sr, Sq with identical iteration vectors), so the instrumented
schedule is verifiable as a topological order of the Figure 1 CDAG, and the
pebble game can price this ordering directly.

Appendix A.1 predicts, for (M+1)·B < S:

* reads  ≈ MN²/(2B)  (leading term; + MN for streaming the blocks),
* writes ≈ MN + N²/2,
* with B = ⌊S/M⌋ - 1:  total I/O ≈ M²N²/(2S).
"""

from __future__ import annotations

import math
from typing import Mapping

import numpy as np

from ..ir import NullTracer
from ..symbolic import Sym
from .common import random_matrix, relative_error
from .tiled import TiledAlgorithm

__all__ = ["TILED_MGS", "run_tiled_mgs"]


def run_tiled_mgs(params: Mapping[str, int], tracer=None, seed: int = 0):
    """Execute Figure 8, instrumented.  params: M, N, B."""
    m, n, b = params["M"], params["N"], params["B"]
    if b < 1:
        raise ValueError("block size B must be >= 1")
    t = tracer if tracer is not None else NullTracer()
    A = random_matrix(m, n, seed)  # becomes Q in place
    R = np.zeros((n, n))
    for j0 in range(0, n, b):
        hi = min(j0 + b, n)
        # apply every past reflection i < j0 to the whole block
        for ii in range(j0):
            for jj in range(j0, hi):
                t.stmt("Sr0", ii, jj)
                t.write("R", ii, jj)
                R[ii, jj] = 0.0
                for kk in range(m):
                    t.stmt("SR", ii, jj, kk)
                    t.read("A", kk, ii)
                    t.read("A", kk, jj)
                    t.read("R", ii, jj)
                    t.write("R", ii, jj)
                    R[ii, jj] += A[kk, ii] * A[kk, jj]
                for kk in range(m):
                    t.stmt("SU", ii, jj, kk)
                    t.read("A", kk, jj)
                    t.read("A", kk, ii)
                    t.read("R", ii, jj)
                    t.write("A", kk, jj)
                    A[kk, jj] -= A[kk, ii] * R[ii, jj]
        # factor the block internally
        for jj in range(j0, hi):
            for ii in range(j0, jj):
                t.stmt("Sr0", ii, jj)
                t.write("R", ii, jj)
                R[ii, jj] = 0.0
                for kk in range(m):
                    t.stmt("SR", ii, jj, kk)
                    t.read("A", kk, ii)
                    t.read("A", kk, jj)
                    t.read("R", ii, jj)
                    t.write("R", ii, jj)
                    R[ii, jj] += A[kk, ii] * A[kk, jj]
                for kk in range(m):
                    t.stmt("SU", ii, jj, kk)
                    t.read("A", kk, jj)
                    t.read("A", kk, ii)
                    t.read("R", ii, jj)
                    t.write("A", kk, jj)
                    A[kk, jj] -= A[kk, ii] * R[ii, jj]
            t.stmt("Snrm0", jj)
            t.write("R", jj, jj)
            R[jj, jj] = 0.0
            for kk in range(m):
                t.stmt("Snrm", jj, kk)
                t.read("A", kk, jj)
                t.read("R", jj, jj)
                t.write("R", jj, jj)
                R[jj, jj] += A[kk, jj] * A[kk, jj]
            t.stmt("Sr", jj)
            t.read("R", jj, jj)
            t.write("R", jj, jj)
            R[jj, jj] = math.sqrt(R[jj, jj])
            for kk in range(m):
                t.stmt("Sq", jj, kk)
                t.read("A", kk, jj)
                t.read("R", jj, jj)
                t.write("A", kk, jj)
                A[kk, jj] /= R[jj, jj]
    return {"Q": A, "R": R}


def _validate(params: Mapping[str, int]) -> None:
    m, n = params["M"], params["N"]
    A0 = random_matrix(m, n, 0)
    out = run_tiled_mgs(params, None, seed=0)
    Q, R = out["Q"], out["R"]
    assert relative_error(Q @ R, A0) < 1e-10, "tiled QR reconstruction failed"
    assert relative_error(Q.T @ Q, np.eye(n)) < 1e-8, "tiled Q not orthonormal"


def _schedule_spec(b: int):
    """Figure 8's order as symbolic schedule pieces over the Figure 1 dims.

    The blocked order is piecewise affine in the base statement dims once
    the block index ``jb = j // b`` (``kb = k // b`` for the jj-column
    statements) is introduced as an auxiliary floor dimension: within block
    ``jb``, phase 0 applies the past reflections ``k < b*jb`` (k outer, j
    inner), phase 1 factors the block internally (j outer, then the
    in-block reflections ``k >= b*jb``, then the column-jj statements).
    Vector shape: (block, phase, ., ., ., ., .), zero-padded by the checker.
    """
    from ..analysis.deps import SchedulePiece
    from ..polyhedral import Constraint, var

    jb = (("jb", "j", b),)
    kb = (("kb", "k", b),)
    past = (Constraint(var("jb") * b - 1 - var("k")),)  # k <= b*jb - 1
    intern = (Constraint(var("k") - var("jb") * b),)  # k >= b*jb
    return {
        "Sr0": (
            SchedulePiece(("jb", 0, "k", "j", 0), guards=past, divs=jb),
            SchedulePiece(("jb", 1, "j", 0, "k", 0), guards=intern, divs=jb),
        ),
        "SR": (
            SchedulePiece(("jb", 0, "k", "j", 1, "i"), guards=past, divs=jb),
            SchedulePiece(("jb", 1, "j", 0, "k", 1, "i"), guards=intern, divs=jb),
        ),
        "SU": (
            SchedulePiece(("jb", 0, "k", "j", 2, "i"), guards=past, divs=jb),
            SchedulePiece(("jb", 1, "j", 0, "k", 2, "i"), guards=intern, divs=jb),
        ),
        "Snrm0": (SchedulePiece(("kb", 1, "k", 1, 0), divs=kb),),
        "Snrm": (SchedulePiece(("kb", 1, "k", 1, 1, "i"), divs=kb),),
        "Sr": (SchedulePiece(("kb", 1, "k", 1, 2), divs=kb),),
        "Sq": (SchedulePiece(("kb", 1, "k", 1, 3, "i"), divs=kb),),
    }


_M, _N, _B, _S = Sym("M"), Sym("N"), Sym("B"), Sym("S")

TILED_MGS = TiledAlgorithm(
    name="tiled_mgs",
    base="mgs",
    runner=run_tiled_mgs,
    io_reads_formula=_M * _N**2 / (2 * _B),
    io_total_formula=_M**2 * _N**2 / (2 * _S),
    cache_condition="(M+1)*B < S",
    description="Figure 8: blocked left-looking MGS, I/O ~ M^2 N^2 / (2S)",
    validate=_validate,
    schedule_spec=_schedule_spec,
)
