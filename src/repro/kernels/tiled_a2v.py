"""Tiled left-looking Householder A2V (Figure 9 / Appendix A.2).

Executes exactly the scalar operations of Figure 3 (GEQR2) in the blocked
left-looking order of Figure 9: for each block of B columns, every previous
reflector j < k0 is loaded once and applied to the whole block, then the
block is factored internally.  Statement instances carry the Figure 3 names
(Sn0..Sd2, Sw0, SR, Sw1, Sw2, SU), so the schedule is verifiable against the
Figure 3 CDAG.

Appendix A.2 predicts, for M(B+1) < S:

* reads ≈ (MN²/2 - N³/6)/B  (leading term),
* writes ≈ MN,
* with B = ⌊S/M⌋ - 1:  total I/O ≈ (M²N² - MN³/3)/(2S).
"""

from __future__ import annotations

import math
from typing import Mapping

import numpy as np

from ..ir import NullTracer
from ..symbolic import Sym
from .common import random_matrix
from .qr_a2v import run_qr_a2v
from .tiled import TiledAlgorithm

__all__ = ["TILED_A2V", "run_tiled_a2v"]


def _apply_reflector(A, tau, jj, kk_col, m, t):
    """Apply reflector jj to column kk_col (Figure 9 inner body)."""
    t.stmt("Sw0", jj, kk_col)
    t.read("A", jj, kk_col)
    t.write("tmp")
    tmp = A[jj, kk_col]
    for ii in range(jj + 1, m):
        t.stmt("SR", jj, kk_col, ii)
        t.read("A", ii, jj)
        t.read("A", ii, kk_col)
        t.read("tmp")
        t.write("tmp")
        tmp += A[ii, jj] * A[ii, kk_col]
    t.stmt("Sw1", jj, kk_col)
    t.read("tau", jj)
    t.read("tmp")
    t.write("tmp")
    tmp = tau[jj] * tmp
    t.stmt("Sw2", jj, kk_col)
    t.read("A", jj, kk_col)
    t.read("tmp")
    t.write("A", jj, kk_col)
    A[jj, kk_col] = A[jj, kk_col] - tmp
    for ii in range(jj + 1, m):
        t.stmt("SU", jj, kk_col, ii)
        t.read("A", ii, kk_col)
        t.read("A", ii, jj)
        t.read("tmp")
        t.write("A", ii, kk_col)
        A[ii, kk_col] = A[ii, kk_col] - A[ii, jj] * tmp


def _generate_reflector(A, tau, kk, m, t):
    """Generate reflector kk in place (Figure 9 lines 26-37 = Figure 3 head)."""
    t.stmt("Sn0", kk)
    t.write("norma2")
    norma2 = 0.0
    for ii in range(kk + 1, m):
        t.stmt("Sn", kk, ii)
        t.read("A", ii, kk)
        t.read("norma2")
        t.write("norma2")
        norma2 += A[ii, kk] * A[ii, kk]
    t.stmt("Snorm", kk)
    t.read("A", kk, kk)
    t.read("norma2")
    t.write("norma")
    norma = math.sqrt(A[kk, kk] * A[kk, kk] + norma2)
    t.stmt("Sd", kk)
    t.read("A", kk, kk)
    t.read("norma")
    t.write("A", kk, kk)
    A[kk, kk] = A[kk, kk] + norma if A[kk, kk] > 0 else A[kk, kk] - norma
    t.stmt("St", kk)
    t.read("norma2")
    t.read("A", kk, kk)
    t.write("tau", kk)
    tau[kk] = 2.0 / (1.0 + norma2 / (A[kk, kk] * A[kk, kk]))
    for ii in range(kk + 1, m):
        t.stmt("Sv", kk, ii)
        t.read("A", ii, kk)
        t.read("A", kk, kk)
        t.write("A", ii, kk)
        A[ii, kk] /= A[kk, kk]
    t.stmt("Sd2", kk)
    t.read("A", kk, kk)
    t.read("norma")
    t.write("A", kk, kk)
    A[kk, kk] = -norma if A[kk, kk] > 0 else norma


def run_tiled_a2v(params: Mapping[str, int], tracer=None, seed: int = 0):
    """Execute Figure 9, instrumented.  params: M, N, B; requires M > N."""
    m, n, b = params["M"], params["N"], params["B"]
    if m <= n:
        raise ValueError("A2V assumes M > N")
    if b < 1:
        raise ValueError("block size B must be >= 1")
    t = tracer if tracer is not None else NullTracer()
    A = random_matrix(m, n, seed)
    tau = np.zeros(n)
    for k0 in range(0, n, b):
        hi = min(k0 + b, n)
        # apply every past reflector to the whole block
        for jj in range(k0):
            for kk_col in range(k0, hi):
                _apply_reflector(A, tau, jj, kk_col, m, t)
        # factor the block internally
        for kk_col in range(k0, hi):
            for jj in range(k0, kk_col):
                _apply_reflector(A, tau, jj, kk_col, m, t)
            _generate_reflector(A, tau, kk_col, m, t)
    return {"A": A, "tau": tau}


def _validate(params: Mapping[str, int]) -> None:
    """The blocked order computes bitwise the same factorization as Figure 3."""
    base = {"M": params["M"], "N": params["N"]}
    ref = run_qr_a2v(base, None, seed=0)
    out = run_tiled_a2v(params, None, seed=0)
    assert np.allclose(out["A"], ref["A"], rtol=1e-13, atol=1e-13)
    assert np.allclose(out["tau"], ref["tau"], rtol=1e-13, atol=1e-13)


_M, _N, _B, _S = Sym("M"), Sym("N"), Sym("B"), Sym("S")

TILED_A2V = TiledAlgorithm(
    name="tiled_a2v",
    base="qr_a2v",
    runner=run_tiled_a2v,
    io_reads_formula=(_M * _N**2 / 2 - _N**3 / 6) / _B,
    io_total_formula=(_M**2 * _N**2 - _M * _N**3 / 3) / (2 * _S),
    cache_condition="M*(B+1) < S",
    description="Figure 9: blocked left-looking A2V, I/O ~ (M^2N^2 - MN^3/3)/(2S)",
    validate=_validate,
)
