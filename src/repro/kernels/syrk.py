"""SYRK: symmetric rank-K update, C := C + A·Aᵀ (lower triangle).

The paper's related work cites SYRK (Beaumont et al., SPAA'22, ref [4]) as
a kernel needing a *specialised* proof for a tight bound.  Included here as
another detector control: the update statement has the familiar
three-projection shape, but both A-operands come straight from the input
array (same in-set part — the disjoint refinement must disable), and there
is no reduction→broadcast cycle across k, so the hourglass is rejected and
the engine reports the plain classical bound — exactly the state of the art
*before* [4]'s specialised argument, which is out of scope here.

Statement names::

    SC[k,j,i]   C[i][j] += A[i][k] * A[j][k]    (j in 0..N-1, i in j..N-1)
"""

from __future__ import annotations

from typing import Mapping

import numpy as np

from ..ir import Access, Array, NullTracer, Program, Statement
from ..polyhedral import var
from .common import Kernel, relative_error

__all__ = ["SYRK", "build_syrk_program", "run_syrk"]

k, j, i = var("k"), var("j"), var("i")
N, KP = var("N"), var("KP")


def run_syrk(params: Mapping[str, int], tracer=None, seed: int = 0):
    """Execute the triangular rank-KP update, instrumented."""
    n, kp = params["N"], params["KP"]
    t = tracer if tracer is not None else NullTracer()
    rng = np.random.default_rng(seed)
    A = rng.standard_normal((n, kp))
    C = np.zeros((n, n))
    for kk in range(kp):
        for jj in range(n):
            for ii in range(jj, n):
                t.stmt("SC", kk, jj, ii)
                t.read("C", ii, jj)
                t.read("A", ii, kk)
                t.read("A", jj, kk)
                t.write("C", ii, jj)
                C[ii, jj] += A[ii, kk] * A[jj, kk]
    return {"A": A, "C": C}


def build_syrk_program() -> Program:
    arrays = (Array("A", 2), Array("C", 2))
    st = (
        Statement(
            "SC",
            loops=(("k", 0, KP - 1), ("j", 0, N - 1), ("i", j, N - 1)),
            reads=(
                Access.to("C", i, j),
                Access.to("A", i, k),
                Access.to("A", j, k),
            ),
            writes=(Access.to("C", i, j),),
            schedule=(0, "k", 0, "j", 0, "i", 0),
        ),
    )
    return Program(
        name="syrk",
        params=("N", "KP"),
        arrays=arrays,
        statements=st,
        outputs=("C",),
        runner=run_syrk,
        notes="Triangular SYRK; classical bound only (cf. paper ref [4]).",
    )


def _validate(params: Mapping[str, int]) -> None:
    out = run_syrk(params, None, seed=0)
    ref = np.tril(out["A"] @ out["A"].T)
    assert relative_error(np.tril(out["C"]), ref) < 1e-12


SYRK = Kernel(
    program=build_syrk_program(),
    dominant="SC",
    description="Symmetric rank-K update (classical bound only; cf. ref [4])",
    default_params={"N": 6, "KP": 5},
    validate=_validate,
)
