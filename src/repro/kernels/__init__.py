"""Kernel library: the paper's five kernels, a matmul baseline, and the
tiled orderings of Appendix A — each with a polyhedral spec, an instrumented
runner and numeric validation."""

from .cholesky import CHOLESKY, run_cholesky
from .common import Kernel, random_matrix, relative_error
from .gebd2 import GEBD2, run_gebd2
from .gehd2 import GEHD2, run_gehd2
from .matmul import MATMUL, run_matmul
from .mgs import MGS, run_mgs
from .qr_a2v import QR_A2V, householder_q, run_qr_a2v
from .qr_v2q import QR_V2Q, run_qr_v2q
from .syrk import SYRK, run_syrk
from .registry import (
    KERNELS,
    PAPER_KERNELS,
    TILED_ALGORITHMS,
    get_kernel,
    get_tiled,
)
from .tiled import TiledAlgorithm, default_block_size
from .tiled_a2v import TILED_A2V, run_tiled_a2v
from .tiled_mgs import TILED_MGS, run_tiled_mgs

__all__ = [
    "CHOLESKY",
    "run_cholesky",
    "SYRK",
    "run_syrk",
    "Kernel",
    "random_matrix",
    "relative_error",
    "GEBD2",
    "run_gebd2",
    "GEHD2",
    "run_gehd2",
    "MATMUL",
    "run_matmul",
    "MGS",
    "run_mgs",
    "QR_A2V",
    "householder_q",
    "run_qr_a2v",
    "QR_V2Q",
    "run_qr_v2q",
    "KERNELS",
    "PAPER_KERNELS",
    "TILED_ALGORITHMS",
    "get_kernel",
    "get_tiled",
    "TiledAlgorithm",
    "default_block_size",
    "TILED_A2V",
    "run_tiled_a2v",
    "TILED_MGS",
    "run_tiled_mgs",
]
