"""Dense matrix multiplication C = A·B — the classical baseline kernel.

Matmul has *no* hourglass pattern (no reduction→broadcast cycle across an
outer temporal loop), so the detector must reject it and the engine must fall
back to the classical K-partition bound Ω(N³/√S) (Hong–Kung / Irony et al.).
It serves as the negative control for hourglass detection and as the sanity
anchor for the Brascamp–Lieb LP (σ = 3/2 with the three canonical
projections).

Statement names::

    Sz[i,j]     C[i][j] = 0
    SM[i,j,k]   C[i][j] += A[i][k] * B[k][j]
"""

from __future__ import annotations

from typing import Mapping

import numpy as np

from ..ir import Access, Array, NullTracer, Program, Statement
from ..polyhedral import var
from .common import Kernel, relative_error

__all__ = ["MATMUL", "build_matmul_program", "run_matmul"]

i, j, kv = var("i"), var("j"), var("k")
NI, NJ, NK = var("NI"), var("NJ"), var("NK")


def run_matmul(params: Mapping[str, int], tracer=None, seed: int = 0):
    """Execute the triple loop, instrumented."""
    ni, nj, nk = params["NI"], params["NJ"], params["NK"]
    t = tracer if tracer is not None else NullTracer()
    rng = np.random.default_rng(seed)
    A = rng.standard_normal((ni, nk))
    B = rng.standard_normal((nk, nj))
    C = np.zeros((ni, nj))
    for ii in range(ni):
        for jj in range(nj):
            t.stmt("Sz", ii, jj)
            t.write("C", ii, jj)
            C[ii, jj] = 0.0
            for kk in range(nk):
                t.stmt("SM", ii, jj, kk)
                t.read("A", ii, kk)
                t.read("B", kk, jj)
                t.read("C", ii, jj)
                t.write("C", ii, jj)
                C[ii, jj] += A[ii, kk] * B[kk, jj]
    return {"A": A, "B": B, "C": C}


def build_matmul_program() -> Program:
    arrays = (Array("A", 2), Array("B", 2), Array("C", 2))
    st = (
        Statement(
            "Sz",
            loops=(("i", 0, NI - 1), ("j", 0, NJ - 1)),
            writes=(Access.to("C", i, j),),
            schedule=(0, "i", 0, "j", 0),
        ),
        Statement(
            "SM",
            loops=(("i", 0, NI - 1), ("j", 0, NJ - 1), ("k", 0, NK - 1)),
            reads=(
                Access.to("A", i, kv),
                Access.to("B", kv, j),
                Access.to("C", i, j),
            ),
            writes=(Access.to("C", i, j),),
            schedule=(0, "i", 0, "j", 1, "k", 0),
        ),
    )
    return Program(
        name="matmul",
        params=("NI", "NJ", "NK"),
        arrays=arrays,
        statements=st,
        outputs=("C",),
        runner=run_matmul,
        notes="Classical baseline; no hourglass.",
    )


def _validate(params: Mapping[str, int]) -> None:
    out = run_matmul(params, None, seed=0)
    assert relative_error(out["C"], out["A"] @ out["B"]) < 1e-12


MATMUL = Kernel(
    program=build_matmul_program(),
    dominant="SM",
    description="Dense matmul (classical K-partition baseline)",
    default_params={"NI": 8, "NJ": 8, "NK": 8},
    validate=_validate,
)
