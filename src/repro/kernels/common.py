"""Shared kernel infrastructure: the Kernel record and numeric helpers.

Every kernel in the library bundles

* a polyhedral :class:`~repro.ir.Program` (loop nests + accesses + declared
  flow dependences transcribing a figure of the paper),
* an instrumented Python ``runner`` mirroring the figure statement-for-
  statement (used for numeric validation, trace CDAGs and address traces),
* bookkeeping for the bound engine: the dominant statement to which the
  K-partition argument is applied, and symbolic instance counts.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Mapping, Sequence

import numpy as np

from ..ir import Program, Tracer

__all__ = ["Kernel", "random_matrix", "relative_error"]


@dataclass
class Kernel:
    """A paper kernel: spec + implementation + derivation metadata."""

    program: Program
    #: statement carrying the dominant fraction of |V| (K-partition target)
    dominant: str
    #: human description, figure reference
    description: str = ""
    #: default parameter values for examples / smoke tests
    default_params: dict[str, int] = field(default_factory=dict)
    #: numeric validation: maps params -> None, raises AssertionError on failure
    validate: Callable[[Mapping[str, int]], None] | None = None

    @property
    def name(self) -> str:
        return self.program.name

    def run_traced(self, params: Mapping[str, int], seed: int = 0) -> Tracer:
        """Run the instrumented implementation, returning the trace."""
        if self.program.runner is None:
            raise ValueError(f"kernel {self.name} has no runner")
        t = Tracer()
        self.program.runner(dict(params), t, seed=seed)
        return t


def random_matrix(
    m: int, n: int, seed: int = 0, *, well_conditioned: bool = True
) -> np.ndarray:
    """A random M×N matrix; optionally nudged away from rank deficiency.

    QR-style kernels divide by column norms, so the default adds a scaled
    identity block to keep columns independent at tiny sizes.
    """
    rng = np.random.default_rng(seed)
    a = rng.standard_normal((m, n))
    if well_conditioned and m >= n:
        a[:n, :n] += np.eye(n) * (1.0 + n)
    return a


def relative_error(actual: np.ndarray, expected: np.ndarray) -> float:
    """Frobenius-norm error of `actual` relative to `expected` (scale >= 1)."""
    scale = max(1.0, float(np.linalg.norm(expected)))
    return float(np.linalg.norm(actual - expected)) / scale
