"""Registry of all kernels and tiled algorithms in the library."""

from __future__ import annotations

from .. import obs
from .cholesky import CHOLESKY
from .common import Kernel
from .gebd2 import GEBD2
from .gehd2 import GEHD2
from .matmul import MATMUL
from .mgs import MGS
from .qr_a2v import QR_A2V
from .qr_v2q import QR_V2Q
from .syrk import SYRK
from .tiled import TiledAlgorithm
from .tiled_a2v import TILED_A2V
from .tiled_mgs import TILED_MGS

__all__ = [
    "KERNELS",
    "TILED_ALGORITHMS",
    "PAPER_KERNELS",
    "get_kernel",
    "get_tiled",
]

#: every kernel, by name
KERNELS: dict[str, Kernel] = {
    k.name: k
    for k in (MGS, QR_A2V, QR_V2Q, GEBD2, GEHD2, MATMUL, CHOLESKY, SYRK)
}

#: the five kernels of the paper's evaluation (Figures 4-5)
PAPER_KERNELS: tuple[str, ...] = ("mgs", "qr_a2v", "qr_v2q", "gebd2", "gehd2")

TILED_ALGORITHMS: dict[str, TiledAlgorithm] = {
    t.name: t for t in (TILED_MGS, TILED_A2V)
}


def get_kernel(name: str) -> Kernel:
    """Look up a kernel by name; KeyError lists the available names."""
    try:
        kernel = KERNELS[name]
    except KeyError:
        raise KeyError(
            f"unknown kernel {name!r}; available: {sorted(KERNELS)}"
        ) from None
    obs.add("kernels.registry_lookups")
    return kernel


def get_tiled(name: str) -> TiledAlgorithm:
    """Look up a tiled algorithm by name; KeyError lists the available names."""
    try:
        alg = TILED_ALGORITHMS[name]
    except KeyError:
        raise KeyError(
            f"unknown tiled algorithm {name!r}; available: {sorted(TILED_ALGORITHMS)}"
        ) from None
    obs.add("kernels.registry_lookups")
    return alg
