"""Cholesky factorization (right-looking, unblocked, lower-triangular).

Not part of the paper's evaluation — included as a *structural negative
control* richer than matmul: its trailing update ``SU`` has the same
three-projection shape as the Householder kernels (phi_{i,j}, phi_{i,k},
phi_{k,j}, sigma = 3/2), but the column scaling ``Sv`` is a *pointwise* map
(no reduction over i feeding the next temporal slice), so §3.2's path
property fails and the detector must reject the hourglass.  The classical
Omega(N^3/sqrt(S)) bound is the right answer here (Ballard et al.), and —
unlike the paper's kernels — the two ``Sv``-produced operands of SU can
coincide (i = j), so the disjoint-inset refinement must auto-disable.

Statement names::

    Sd[k]       A[k][k] = sqrt(A[k][k])
    Sv[k,i]     A[i][k] /= A[k][k]                 (i in k+1..N-1)
    SU[k,j,i]   A[i][j] -= A[i][k] * A[j][k]       (j in k+1..N-1, i in j..N-1)
"""

from __future__ import annotations

import math
from typing import Mapping

import numpy as np

from ..ir import Access, Array, NullTracer, Program, Statement
from ..polyhedral import var
from .common import Kernel, relative_error

__all__ = ["CHOLESKY", "build_cholesky_program", "run_cholesky"]

k, j, i = var("k"), var("j"), var("i")
N = var("N")


def _spd_matrix(n: int, seed: int) -> np.ndarray:
    rng = np.random.default_rng(seed)
    b = rng.standard_normal((n, n))
    return b @ b.T + n * np.eye(n)


def run_cholesky(params: Mapping[str, int], tracer=None, seed: int = 0):
    """Execute the unblocked right-looking Cholesky, instrumented."""
    n = params["N"]
    t = tracer if tracer is not None else NullTracer()
    A = _spd_matrix(n, seed)
    for kk in range(n):
        t.stmt("Sd", kk)
        t.read("A", kk, kk)
        t.write("A", kk, kk)
        A[kk, kk] = math.sqrt(A[kk, kk])
        for ii in range(kk + 1, n):
            t.stmt("Sv", kk, ii)
            t.read("A", ii, kk)
            t.read("A", kk, kk)
            t.write("A", ii, kk)
            A[ii, kk] /= A[kk, kk]
        for jj in range(kk + 1, n):
            for ii in range(jj, n):
                t.stmt("SU", kk, jj, ii)
                t.read("A", ii, jj)
                t.read("A", ii, kk)
                t.read("A", jj, kk)
                t.write("A", ii, jj)
                A[ii, jj] -= A[ii, kk] * A[jj, kk]
    return {"A": A}


def build_cholesky_program() -> Program:
    arrays = (Array("A", 2),)
    st = (
        Statement(
            "Sd",
            loops=(("k", 0, N - 1),),
            reads=(Access.to("A", k, k),),
            writes=(Access.to("A", k, k),),
            schedule=(0, "k", 0),
        ),
        Statement(
            "Sv",
            loops=(("k", 0, N - 1), ("i", k + 1, N - 1)),
            reads=(Access.to("A", i, k), Access.to("A", k, k)),
            writes=(Access.to("A", i, k),),
            schedule=(0, "k", 1, "i", 0),
        ),
        Statement(
            "SU",
            loops=(("k", 0, N - 1), ("j", k + 1, N - 1), ("i", j, N - 1)),
            reads=(
                Access.to("A", i, j),
                Access.to("A", i, k),
                Access.to("A", j, k),
            ),
            writes=(Access.to("A", i, j),),
            schedule=(0, "k", 2, "j", 0, "i", 0),
        ),
    )
    return Program(
        name="cholesky",
        params=("N",),
        arrays=arrays,
        statements=st,
        outputs=("A",),
        runner=run_cholesky,
        notes="Unblocked right-looking Cholesky; structural negative control.",
    )


def _validate(params: Mapping[str, int]) -> None:
    n = params["N"]
    A0 = _spd_matrix(n, 0)
    out = run_cholesky(params, None, seed=0)
    L = np.tril(out["A"])
    assert relative_error(L @ L.T, A0) < 1e-9, "Cholesky reconstruction failed"
    ref = np.linalg.cholesky(A0)
    assert relative_error(L, ref) < 1e-9, "disagrees with numpy.linalg.cholesky"


CHOLESKY = Kernel(
    program=build_cholesky_program(),
    dominant="SU",
    description="Cholesky factorization (unblocked; no hourglass)",
    default_params={"N": 8},
    validate=_validate,
)
