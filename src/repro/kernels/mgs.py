"""Modified Gram-Schmidt, right-looking variant (Figure 1 of the paper).

The polyhedral spec transcribes the Polybench ``gramschmidt`` loop nest
statement-for-statement; the instrumented runner executes the identical
arithmetic and records every element access.  The hourglass pattern lives
between ``SR`` (reduction of R[k][j] over i) and ``SU`` (broadcast of R[k][j]
over i), with k temporal, i reduction/broadcast and j neutral — the paper's
running example.

Statement names::

    Snrm0[k]    nrm = 0
    Snrm[k,i]   nrm += A[i][k]**2
    Sr[k]       R[k][k] = sqrt(nrm)
    Sq[k,i]     Q[i][k] = A[i][k] / R[k][k]
    Sr0[k,j]    R[k][j] = 0
    SR[k,j,i]   R[k][j] += Q[i][k] * A[i][j]
    SU[k,j,i]   A[i][j] -= Q[i][k] * R[k][j]
"""

from __future__ import annotations

import math
from typing import Mapping

import numpy as np

from ..ir import Access, Array, Dependence, Program, Statement, Tracer
from ..polyhedral import AffineMap, Constraint, var
from .common import Kernel, random_matrix, relative_error

__all__ = ["MGS", "build_mgs_program", "run_mgs"]

k, j, i = var("k"), var("j"), var("i")
M, N = var("M"), var("N")


def run_mgs(params: Mapping[str, int], tracer=None, seed: int = 0):
    """Execute Figure 1 exactly, instrumented.

    Notes on instrumentation: each distinct element touched by a statement
    instance is recorded once (``A[i][k]*A[i][k]`` is one read); the scalar
    ``nrm`` is the single address ``('nrm', ())`` as in the source program.
    """
    m, n = params["M"], params["N"]
    t = tracer if tracer is not None else _Null()
    A = random_matrix(m, n, seed)
    Q = np.zeros((m, n))
    R = np.zeros((n, n))
    nrm = 0.0
    for kk in range(n):
        t.stmt("Snrm0", kk)
        t.write("nrm")
        nrm = 0.0
        for ii in range(m):
            t.stmt("Snrm", kk, ii)
            t.read("A", ii, kk)
            t.read("nrm")
            t.write("nrm")
            nrm += A[ii, kk] * A[ii, kk]
        t.stmt("Sr", kk)
        t.read("nrm")
        t.write("R", kk, kk)
        R[kk, kk] = math.sqrt(nrm)
        for ii in range(m):
            t.stmt("Sq", kk, ii)
            t.read("A", ii, kk)
            t.read("R", kk, kk)
            t.write("Q", ii, kk)
            Q[ii, kk] = A[ii, kk] / R[kk, kk]
        for jj in range(kk + 1, n):
            t.stmt("Sr0", kk, jj)
            t.write("R", kk, jj)
            R[kk, jj] = 0.0
            for ii in range(m):
                t.stmt("SR", kk, jj, ii)
                t.read("Q", ii, kk)
                t.read("A", ii, jj)
                t.read("R", kk, jj)
                t.write("R", kk, jj)
                R[kk, jj] += Q[ii, kk] * A[ii, jj]
            for ii in range(m):
                t.stmt("SU", kk, jj, ii)
                t.read("A", ii, jj)
                t.read("Q", ii, kk)
                t.read("R", kk, jj)
                t.write("A", ii, jj)
                A[ii, jj] -= Q[ii, kk] * R[kk, jj]
    return {"Q": Q, "R": R, "A": A}


class _Null:
    def stmt(self, *a):
        pass

    def read(self, *a):
        pass

    def write(self, *a):
        pass


def build_mgs_program() -> Program:
    """The polyhedral spec of Figure 1 with its full flow-dependence list."""
    arrays = (
        Array("A", 2),
        Array("Q", 2),
        Array("R", 2),
        Array("nrm", 0),
    )
    st = (
        Statement(
            "Snrm0",
            loops=(("k", 0, N - 1),),
            writes=(Access.to("nrm"),),
            schedule=(0, "k", 0),
        ),
        Statement(
            "Snrm",
            loops=(("k", 0, N - 1), ("i", 0, M - 1)),
            reads=(Access.to("A", i, k), Access.to("nrm")),
            writes=(Access.to("nrm"),),
            schedule=(0, "k", 1, "i", 0),
        ),
        Statement(
            "Sr",
            loops=(("k", 0, N - 1),),
            reads=(Access.to("nrm"),),
            writes=(Access.to("R", k, k),),
            schedule=(0, "k", 2),
        ),
        Statement(
            "Sq",
            loops=(("k", 0, N - 1), ("i", 0, M - 1)),
            reads=(Access.to("A", i, k), Access.to("R", k, k)),
            writes=(Access.to("Q", i, k),),
            schedule=(0, "k", 3, "i", 0),
        ),
        Statement(
            "Sr0",
            loops=(("k", 0, N - 1), ("j", k + 1, N - 1)),
            writes=(Access.to("R", k, j),),
            schedule=(0, "k", 4, "j", 0),
        ),
        Statement(
            "SR",
            loops=(("k", 0, N - 1), ("j", k + 1, N - 1), ("i", 0, M - 1)),
            reads=(
                Access.to("Q", i, k),
                Access.to("A", i, j),
                Access.to("R", k, j),
            ),
            writes=(Access.to("R", k, j),),
            schedule=(0, "k", 4, "j", 1, "i", 0),
        ),
        Statement(
            "SU",
            loops=(("k", 0, N - 1), ("j", k + 1, N - 1), ("i", 0, M - 1)),
            reads=(
                Access.to("A", i, j),
                Access.to("Q", i, k),
                Access.to("R", k, j),
            ),
            writes=(Access.to("A", i, j),),
            schedule=(0, "k", 4, "j", 2, "i", 0),
        ),
    )

    def fmap(src, tgt, exprs, guards=(), free=()):
        return AffineMap(src, tgt, exprs, guards=guards, free=free)

    ge = lambda e: Constraint(e, ">=")  # noqa: E731 - local shorthand
    deps = (
        # nrm accumulation chain
        Dependence("Snrm0", "Snrm", fmap(("k",), ("k", "i"), {"k": k, "i": 0}), via="nrm"),
        Dependence(
            "Snrm",
            "Snrm",
            fmap(("k", "i"), ("k", "i"), {"k": k, "i": i + 1}, guards=(ge(M - 2 - i),)),
            via="nrm",
        ),
        Dependence(
            "Snrm",
            "Sr",
            fmap(("k", "i"), ("k",), {"k": k}, guards=(ge(i - (M - 1)), ge((M - 1) - i))),
            via="nrm",
        ),
        # A column k feeding next iteration's norm and Q
        Dependence(
            "SU",
            "Snrm",
            fmap(("k", "j", "i"), ("k", "i"), {"k": k + 1, "i": i}, guards=(ge(k + 1 - j), ge(j - k - 1))),
            via="A",
        ),
        Dependence(
            "SU",
            "Sq",
            fmap(("k", "j", "i"), ("k", "i"), {"k": k + 1, "i": i}, guards=(ge(k + 1 - j), ge(j - k - 1))),
            via="A",
        ),
        # R[k][k] broadcast to Sq
        Dependence(
            "Sr",
            "Sq",
            fmap(("k",), ("k", "i"), {"k": k, "i": var("ii")}, free=(("ii", 0, M - 1),)),
            via="R",
        ),
        # R[k][j] accumulation chain
        Dependence("Sr0", "SR", fmap(("k", "j"), ("k", "j", "i"), {"k": k, "j": j, "i": 0}), via="R"),
        Dependence(
            "SR",
            "SR",
            fmap(
                ("k", "j", "i"),
                ("k", "j", "i"),
                {"k": k, "j": j, "i": i + 1},
                guards=(ge(M - 2 - i),),
            ),
            via="R",
        ),
        # Q[i][k] feeding the update loops (broadcast over j)
        Dependence(
            "Sq",
            "SR",
            fmap(
                ("k", "i"),
                ("k", "j", "i"),
                {"k": k, "j": var("jj"), "i": i},
                free=(("jj", k + 1, N - 1),),
            ),
            via="Q",
        ),
        Dependence(
            "Sq",
            "SU",
            fmap(
                ("k", "i"),
                ("k", "j", "i"),
                {"k": k, "j": var("jj"), "i": i},
                free=(("jj", k + 1, N - 1),),
            ),
            via="Q",
        ),
        # A[i][j] carried across outer iterations
        Dependence(
            "SU",
            "SR",
            fmap(
                ("k", "j", "i"),
                ("k", "j", "i"),
                {"k": k + 1, "j": j, "i": i},
                guards=(ge(j - (k + 2)),),
            ),
            via="A",
        ),
        Dependence(
            "SU",
            "SU",
            fmap(
                ("k", "j", "i"),
                ("k", "j", "i"),
                {"k": k + 1, "j": j, "i": i},
                guards=(ge(j - (k + 2)),),
            ),
            via="A",
        ),
        # R[k][j] broadcast from the last reduction step to the update loop
        Dependence(
            "SR",
            "SU",
            fmap(
                ("k", "j", "i"),
                ("k", "j", "i"),
                {"k": k, "j": j, "i": var("ii")},
                guards=(ge(i - (M - 1)), ge((M - 1) - i)),
                free=(("ii", 0, M - 1),),
            ),
            via="R",
        ),
    )
    return Program(
        name="mgs",
        params=("M", "N"),
        arrays=arrays,
        statements=st,
        deps=deps,
        outputs=("Q", "R"),
        runner=run_mgs,
        notes="Figure 1 (Polybench gramschmidt, right-looking).",
    )


def _validate(params: Mapping[str, int]) -> None:
    """Numeric check: A0 = Q R with orthonormal Q."""
    m, n = params["M"], params["N"]
    A0 = random_matrix(m, n, 0)
    out = run_mgs(params, None, seed=0)
    Q, R = out["Q"], out["R"]
    assert relative_error(Q @ R, A0) < 1e-10, "QR reconstruction failed"
    assert relative_error(Q.T @ Q, np.eye(n)) < 1e-8, "Q not orthonormal"


MGS = Kernel(
    program=build_mgs_program(),
    dominant="SU",
    description="Modified Gram-Schmidt, right-looking (Figure 1)",
    default_params={"M": 12, "N": 6},
    validate=_validate,
)
