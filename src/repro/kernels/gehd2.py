"""Hessenberg reduction (Figure 7; LAPACK GEHD2), N×N.

Each outer iteration j builds a Householder reflector from column j below the
subdiagonal, then applies it from the left (rows j+1..N-1) and from the right
(all rows) to the trailing matrix, via the ``tmp`` workspace vector.  The
hourglass width is ``N-2-j`` — it shrinks to a constant at the end of the
outer loop, which is why Theorem 9 needs the loop-splitting argument
implemented in :func:`repro.bounds.hourglass.derive_hourglass_bound_with_split`.

Statement names (l = left update, r = right update)::

    Sn0[j]       norma2 = 0
    Sn[j,i]      norma2 += A[i][j]**2             (i in j+2..N-1)
    Snorm[j]     norma = sqrt(A[j+1][j]**2 + norma2)
    Sd[j]        A[j+1][j] += sign * norma
    St[j]        tau = 2/(1 + norma2/A[j+1][j]**2)
    Sv[j,i]      A[i][j] /= A[j+1][j]             (i in j+2..N-1)
    Sd2[j]       A[j+1][j] = -sign * norma
    Sl0[j,i]     tmp[i] = A[j+1][i]               (i in j+1..N-1)
    SlR[j,i,k]   tmp[i] += A[k][j] * A[k][i]      (k in j+2..N-1)
    Sl1[j,i]     tmp[i] *= tau
    Sl2[j,i]     A[j+1][i] -= tmp[i]
    SlU[j,i,k]   A[i][k] -= A[i][j] * tmp[k]      (i in j+2..N-1, k in j+1..N-1)
    Sr0[j,i]     tmp[i] = A[i][j+1]               (i in 0..N-1)
    SrR[j,i,k]   tmp[i] += A[i][k] * A[k][j]      (k in j+2..N-1)
    Sr1[j,i]     tmp[i] *= tau
    Sr2[j,i]     A[i][j+1] -= tmp[i]
    SrU[j,i,k]   A[i][k] -= tmp[i] * A[k][j]      (i in 0..N-1, k in j+2..N-1)
"""

from __future__ import annotations

import math
from typing import Mapping

import numpy as np

from ..ir import Access, Array, NullTracer, Program, Statement
from ..polyhedral import var
from .common import Kernel

__all__ = ["GEHD2", "build_gehd2_program", "run_gehd2"]

j, i, kv = var("j"), var("i"), var("k")
N = var("N")


def run_gehd2(params: Mapping[str, int], tracer=None, seed: int = 0):
    """Execute Figure 7 exactly, instrumented.  Requires N >= 3."""
    n = params["N"]
    if n < 3:
        raise ValueError("GEHD2 needs N >= 3")
    t = tracer if tracer is not None else NullTracer()
    rng = np.random.default_rng(seed)
    A = rng.standard_normal((n, n)) + np.eye(n) * (1.0 + n)
    tmp = np.zeros(n)
    tau = 0.0
    norma2 = 0.0
    norma = 0.0
    for jj in range(n - 2):
        t.stmt("Sn0", jj)
        t.write("norma2")
        norma2 = 0.0
        for ii in range(jj + 2, n):
            t.stmt("Sn", jj, ii)
            t.read("A", ii, jj)
            t.read("norma2")
            t.write("norma2")
            norma2 += A[ii, jj] * A[ii, jj]
        t.stmt("Snorm", jj)
        t.read("A", jj + 1, jj)
        t.read("norma2")
        t.write("norma")
        norma = math.sqrt(A[jj + 1, jj] * A[jj + 1, jj] + norma2)
        t.stmt("Sd", jj)
        t.read("A", jj + 1, jj)
        t.read("norma")
        t.write("A", jj + 1, jj)
        A[jj + 1, jj] = (
            A[jj + 1, jj] + norma if A[jj + 1, jj] > 0 else A[jj + 1, jj] - norma
        )
        t.stmt("St", jj)
        t.read("norma2")
        t.read("A", jj + 1, jj)
        t.write("tau")
        tau = 2.0 / (1.0 + norma2 / (A[jj + 1, jj] * A[jj + 1, jj]))
        for ii in range(jj + 2, n):
            t.stmt("Sv", jj, ii)
            t.read("A", ii, jj)
            t.read("A", jj + 1, jj)
            t.write("A", ii, jj)
            A[ii, jj] /= A[jj + 1, jj]
        t.stmt("Sd2", jj)
        t.read("A", jj + 1, jj)
        t.read("norma")
        t.write("A", jj + 1, jj)
        A[jj + 1, jj] = -norma if A[jj + 1, jj] > 0 else norma
        # left update: A[j+1:, j+1:] = (I - tau v v^T) A[j+1:, j+1:]
        for ii in range(jj + 1, n):
            t.stmt("Sl0", jj, ii)
            t.read("A", jj + 1, ii)
            t.write("tmp", ii)
            tmp[ii] = A[jj + 1, ii]
            for kk in range(jj + 2, n):
                t.stmt("SlR", jj, ii, kk)
                t.read("A", kk, jj)
                t.read("A", kk, ii)
                t.read("tmp", ii)
                t.write("tmp", ii)
                tmp[ii] += A[kk, jj] * A[kk, ii]
        for ii in range(jj + 1, n):
            t.stmt("Sl1", jj, ii)
            t.read("tmp", ii)
            t.read("tau")
            t.write("tmp", ii)
            tmp[ii] *= tau
        for ii in range(jj + 1, n):
            t.stmt("Sl2", jj, ii)
            t.read("A", jj + 1, ii)
            t.read("tmp", ii)
            t.write("A", jj + 1, ii)
            A[jj + 1, ii] -= tmp[ii]
        for ii in range(jj + 2, n):
            for kk in range(jj + 1, n):
                t.stmt("SlU", jj, ii, kk)
                t.read("A", ii, kk)
                t.read("A", ii, jj)
                t.read("tmp", kk)
                t.write("A", ii, kk)
                A[ii, kk] -= A[ii, jj] * tmp[kk]
        # right update: A[:, j+1:] = A[:, j+1:] (I - tau v v^T)
        for ii in range(n):
            t.stmt("Sr0", jj, ii)
            t.read("A", ii, jj + 1)
            t.write("tmp", ii)
            tmp[ii] = A[ii, jj + 1]
            for kk in range(jj + 2, n):
                t.stmt("SrR", jj, ii, kk)
                t.read("A", ii, kk)
                t.read("A", kk, jj)
                t.read("tmp", ii)
                t.write("tmp", ii)
                tmp[ii] += A[ii, kk] * A[kk, jj]
        for ii in range(n):
            t.stmt("Sr1", jj, ii)
            t.read("tmp", ii)
            t.read("tau")
            t.write("tmp", ii)
            tmp[ii] *= tau
        for ii in range(n):
            t.stmt("Sr2", jj, ii)
            t.read("A", ii, jj + 1)
            t.read("tmp", ii)
            t.write("A", ii, jj + 1)
            A[ii, jj + 1] -= tmp[ii]
        for ii in range(n):
            for kk in range(jj + 2, n):
                t.stmt("SrU", jj, ii, kk)
                t.read("A", ii, kk)
                t.read("tmp", ii)
                t.read("A", kk, jj)
                t.write("A", ii, kk)
                A[ii, kk] -= tmp[ii] * A[kk, jj]
    return {"A": A}


def build_gehd2_program() -> Program:
    """The polyhedral spec of Figure 7 (domains/accesses/schedules)."""
    arrays = (
        Array("A", 2),
        Array("tmp", 1),
        Array("tau", 0),
        Array("norma", 0),
        Array("norma2", 0),
    )
    st = (
        Statement("Sn0", loops=(("j", 0, N - 3),),
                  writes=(Access.to("norma2"),), schedule=(0, "j", 0)),
        Statement("Sn", loops=(("j", 0, N - 3), ("i", j + 2, N - 1)),
                  reads=(Access.to("A", i, j), Access.to("norma2")),
                  writes=(Access.to("norma2"),), schedule=(0, "j", 1, "i", 0)),
        Statement("Snorm", loops=(("j", 0, N - 3),),
                  reads=(Access.to("A", j + 1, j), Access.to("norma2")),
                  writes=(Access.to("norma"),), schedule=(0, "j", 2)),
        Statement("Sd", loops=(("j", 0, N - 3),),
                  reads=(Access.to("A", j + 1, j), Access.to("norma")),
                  writes=(Access.to("A", j + 1, j),), schedule=(0, "j", 3)),
        Statement("St", loops=(("j", 0, N - 3),),
                  reads=(Access.to("norma2"), Access.to("A", j + 1, j)),
                  writes=(Access.to("tau"),), schedule=(0, "j", 4)),
        Statement("Sv", loops=(("j", 0, N - 3), ("i", j + 2, N - 1)),
                  reads=(Access.to("A", i, j), Access.to("A", j + 1, j)),
                  writes=(Access.to("A", i, j),), schedule=(0, "j", 5, "i", 0)),
        Statement("Sd2", loops=(("j", 0, N - 3),),
                  reads=(Access.to("A", j + 1, j), Access.to("norma")),
                  writes=(Access.to("A", j + 1, j),), schedule=(0, "j", 6)),
        # left update
        Statement("Sl0", loops=(("j", 0, N - 3), ("i", j + 1, N - 1)),
                  reads=(Access.to("A", j + 1, i),),
                  writes=(Access.to("tmp", i),), schedule=(0, "j", 7, "i", 0)),
        Statement("SlR",
                  loops=(("j", 0, N - 3), ("i", j + 1, N - 1), ("k", j + 2, N - 1)),
                  reads=(Access.to("A", kv, j), Access.to("A", kv, i),
                         Access.to("tmp", i)),
                  writes=(Access.to("tmp", i),), schedule=(0, "j", 7, "i", 1, "k", 0)),
        Statement("Sl1", loops=(("j", 0, N - 3), ("i", j + 1, N - 1)),
                  reads=(Access.to("tmp", i), Access.to("tau")),
                  writes=(Access.to("tmp", i),), schedule=(0, "j", 8, "i", 0)),
        Statement("Sl2", loops=(("j", 0, N - 3), ("i", j + 1, N - 1)),
                  reads=(Access.to("A", j + 1, i), Access.to("tmp", i)),
                  writes=(Access.to("A", j + 1, i),), schedule=(0, "j", 9, "i", 0)),
        Statement("SlU",
                  loops=(("j", 0, N - 3), ("i", j + 2, N - 1), ("k", j + 1, N - 1)),
                  reads=(Access.to("A", i, kv), Access.to("A", i, j),
                         Access.to("tmp", kv)),
                  writes=(Access.to("A", i, kv),), schedule=(0, "j", 10, "i", 0, "k", 0)),
        # right update
        Statement("Sr0", loops=(("j", 0, N - 3), ("i", 0, N - 1)),
                  reads=(Access.to("A", i, j + 1),),
                  writes=(Access.to("tmp", i),), schedule=(0, "j", 11, "i", 0)),
        Statement("SrR",
                  loops=(("j", 0, N - 3), ("i", 0, N - 1), ("k", j + 2, N - 1)),
                  reads=(Access.to("A", i, kv), Access.to("A", kv, j),
                         Access.to("tmp", i)),
                  writes=(Access.to("tmp", i),), schedule=(0, "j", 11, "i", 1, "k", 0)),
        Statement("Sr1", loops=(("j", 0, N - 3), ("i", 0, N - 1)),
                  reads=(Access.to("tmp", i), Access.to("tau")),
                  writes=(Access.to("tmp", i),), schedule=(0, "j", 12, "i", 0)),
        Statement("Sr2", loops=(("j", 0, N - 3), ("i", 0, N - 1)),
                  reads=(Access.to("A", i, j + 1), Access.to("tmp", i)),
                  writes=(Access.to("A", i, j + 1),), schedule=(0, "j", 13, "i", 0)),
        Statement("SrU",
                  loops=(("j", 0, N - 3), ("i", 0, N - 1), ("k", j + 2, N - 1)),
                  reads=(Access.to("A", i, kv), Access.to("tmp", i),
                         Access.to("A", kv, j)),
                  writes=(Access.to("A", i, kv),), schedule=(0, "j", 14, "i", 0, "k", 0)),
    )
    return Program(
        name="gehd2",
        params=("N",),
        arrays=arrays,
        statements=st,
        outputs=("A",),
        runner=run_gehd2,
        notes="Figure 7 (LAPACK GEHD2). N x N, outer loop j in 0..N-3.",
    )


def _validate(params: Mapping[str, int]) -> None:
    """Numeric check: the Hessenberg part is similar to A0 (same eigenvalues)."""
    n = params["N"]
    rng = np.random.default_rng(0)
    A0 = rng.standard_normal((n, n)) + np.eye(n) * (1.0 + n)
    out = run_gehd2(params, None, seed=0)
    H = np.triu(out["A"], -1)
    ev_h = np.sort_complex(np.linalg.eigvals(H))
    ev_a = np.sort_complex(np.linalg.eigvals(A0))
    err = float(np.max(np.abs(ev_h - ev_a)))
    scale = float(np.max(np.abs(ev_a)))
    assert err < 1e-7 * max(1.0, scale), f"eigenvalues differ: {err}"


GEHD2 = Kernel(
    program=build_gehd2_program(),
    dominant="SrU",
    description="Hessenberg reduction (Figure 7 / GEHD2)",
    default_params={"N": 10},
    validate=_validate,
)
