"""QR Householder factorization, A2V part (Figure 3; LAPACK GEQR2).

Turns A (M×N, M > N) in place into the Householder vectors V (unit lower
trapezoid, stored below the diagonal) and R (upper triangle), producing the
``tau`` scalars.  The hourglass lives between ``SR`` (reduction of the
workspace ``tau[j]`` over i) and ``SU`` (broadcast of ``tau[j]`` over i),
with the reduction/broadcast width ``M-1-k`` parametrized by the temporal
iteration — minimum ``M-N`` over the domain, which is the width the paper's
Theorem 6 uses.

Statement names::

    Sn0[k]      norma2 = 0
    Sn[k,i]     norma2 += A[i][k]**2          (i in k+1..M-1)
    Snorm[k]    norma = sqrt(A[k][k]**2 + norma2)
    Sd[k]       A[k][k] += sign(A[k][k]) * norma
    St[k]       tau[k] = 2 / (1 + norma2 / A[k][k]**2)
    Sv[k,i]     A[i][k] /= A[k][k]            (i in k+1..M-1)
    Sd2[k]      A[k][k] = -sign * norma
    Sw0[k,j]    tau[j] = A[k][j]              (j in k+1..N-1)
    SR[k,j,i]   tau[j] += A[i][k] * A[i][j]   (i in k+1..M-1)
    Sw1[k,j]    tau[j] *= tau[k]
    Sw2[k,j]    A[k][j] -= tau[j]
    SU[k,j,i]   A[i][j] -= A[i][k] * tau[j]   (i in k+1..M-1)
"""

from __future__ import annotations

import math
from typing import Mapping

import numpy as np

from ..ir import Access, Array, NullTracer, Program, Statement
from ..polyhedral import var
from .common import Kernel, random_matrix, relative_error

__all__ = ["QR_A2V", "build_a2v_program", "run_qr_a2v", "householder_q"]

k, j, i = var("k"), var("j"), var("i")
M, N = var("M"), var("N")


def run_qr_a2v(params: Mapping[str, int], tracer=None, seed: int = 0):
    """Execute Figure 3 exactly, instrumented.  Requires M > N."""
    m, n = params["M"], params["N"]
    if m <= n:
        raise ValueError("A2V spec assumes M > N (as in Theorems 6-7)")
    t = tracer if tracer is not None else NullTracer()
    A = random_matrix(m, n, seed)
    tau = np.zeros(n)
    norma2 = 0.0
    norma = 0.0
    for kk in range(n):
        t.stmt("Sn0", kk)
        t.write("norma2")
        norma2 = 0.0
        for ii in range(kk + 1, m):
            t.stmt("Sn", kk, ii)
            t.read("A", ii, kk)
            t.read("norma2")
            t.write("norma2")
            norma2 += A[ii, kk] * A[ii, kk]
        t.stmt("Snorm", kk)
        t.read("A", kk, kk)
        t.read("norma2")
        t.write("norma")
        norma = math.sqrt(A[kk, kk] * A[kk, kk] + norma2)
        t.stmt("Sd", kk)
        t.read("A", kk, kk)
        t.read("norma")
        t.write("A", kk, kk)
        A[kk, kk] = A[kk, kk] + norma if A[kk, kk] > 0 else A[kk, kk] - norma
        t.stmt("St", kk)
        t.read("norma2")
        t.read("A", kk, kk)
        t.write("tau", kk)
        tau[kk] = 2.0 / (1.0 + norma2 / (A[kk, kk] * A[kk, kk]))
        for ii in range(kk + 1, m):
            t.stmt("Sv", kk, ii)
            t.read("A", ii, kk)
            t.read("A", kk, kk)
            t.write("A", ii, kk)
            A[ii, kk] /= A[kk, kk]
        t.stmt("Sd2", kk)
        t.read("A", kk, kk)
        t.read("norma")
        t.write("A", kk, kk)
        A[kk, kk] = -norma if A[kk, kk] > 0 else norma
        for jj in range(kk + 1, n):
            t.stmt("Sw0", kk, jj)
            t.read("A", kk, jj)
            t.write("tau", jj)
            tau[jj] = A[kk, jj]
            for ii in range(kk + 1, m):
                t.stmt("SR", kk, jj, ii)
                t.read("A", ii, kk)
                t.read("A", ii, jj)
                t.read("tau", jj)
                t.write("tau", jj)
                tau[jj] += A[ii, kk] * A[ii, jj]
            t.stmt("Sw1", kk, jj)
            t.read("tau", kk)
            t.read("tau", jj)
            t.write("tau", jj)
            tau[jj] = tau[kk] * tau[jj]
            t.stmt("Sw2", kk, jj)
            t.read("A", kk, jj)
            t.read("tau", jj)
            t.write("A", kk, jj)
            A[kk, jj] = A[kk, jj] - tau[jj]
            for ii in range(kk + 1, m):
                t.stmt("SU", kk, jj, ii)
                t.read("A", ii, jj)
                t.read("A", ii, kk)
                t.read("tau", jj)
                t.write("A", ii, jj)
                A[ii, jj] = A[ii, jj] - A[ii, kk] * tau[jj]
    return {"A": A, "tau": tau}


def householder_q(vr: np.ndarray, tau: np.ndarray, m: int) -> np.ndarray:
    """Accumulate Q = H_0 H_1 ... H_{n-1} from A2V's packed output."""
    n = len(tau)
    Q = np.eye(m)
    for kk in range(n):
        v = np.zeros(m)
        v[kk] = 1.0
        v[kk + 1 :] = vr[kk + 1 :, kk]
        Q = Q @ (np.eye(m) - tau[kk] * np.outer(v, v))
    return Q


def build_a2v_program() -> Program:
    """The polyhedral spec of Figure 3 (domains/accesses/schedules)."""
    arrays = (
        Array("A", 2),
        Array("tau", 1),
        Array("norma", 0),
        Array("norma2", 0),
    )
    st = (
        Statement(
            "Sn0",
            loops=(("k", 0, N - 1),),
            writes=(Access.to("norma2"),),
            schedule=(0, "k", 0),
        ),
        Statement(
            "Sn",
            loops=(("k", 0, N - 1), ("i", k + 1, M - 1)),
            reads=(Access.to("A", i, k), Access.to("norma2")),
            writes=(Access.to("norma2"),),
            schedule=(0, "k", 1, "i", 0),
        ),
        Statement(
            "Snorm",
            loops=(("k", 0, N - 1),),
            reads=(Access.to("A", k, k), Access.to("norma2")),
            writes=(Access.to("norma"),),
            schedule=(0, "k", 2),
        ),
        Statement(
            "Sd",
            loops=(("k", 0, N - 1),),
            reads=(Access.to("A", k, k), Access.to("norma")),
            writes=(Access.to("A", k, k),),
            schedule=(0, "k", 3),
        ),
        Statement(
            "St",
            loops=(("k", 0, N - 1),),
            reads=(Access.to("norma2"), Access.to("A", k, k)),
            writes=(Access.to("tau", k),),
            schedule=(0, "k", 4),
        ),
        Statement(
            "Sv",
            loops=(("k", 0, N - 1), ("i", k + 1, M - 1)),
            reads=(Access.to("A", i, k), Access.to("A", k, k)),
            writes=(Access.to("A", i, k),),
            schedule=(0, "k", 5, "i", 0),
        ),
        Statement(
            "Sd2",
            loops=(("k", 0, N - 1),),
            reads=(Access.to("A", k, k), Access.to("norma")),
            writes=(Access.to("A", k, k),),
            schedule=(0, "k", 6),
        ),
        Statement(
            "Sw0",
            loops=(("k", 0, N - 1), ("j", k + 1, N - 1)),
            reads=(Access.to("A", k, j),),
            writes=(Access.to("tau", j),),
            schedule=(0, "k", 7, "j", 0),
        ),
        Statement(
            "SR",
            loops=(("k", 0, N - 1), ("j", k + 1, N - 1), ("i", k + 1, M - 1)),
            reads=(
                Access.to("A", i, k),
                Access.to("A", i, j),
                Access.to("tau", j),
            ),
            writes=(Access.to("tau", j),),
            schedule=(0, "k", 7, "j", 1, "i", 0),
        ),
        Statement(
            "Sw1",
            loops=(("k", 0, N - 1), ("j", k + 1, N - 1)),
            reads=(Access.to("tau", k), Access.to("tau", j)),
            writes=(Access.to("tau", j),),
            schedule=(0, "k", 7, "j", 2),
        ),
        Statement(
            "Sw2",
            loops=(("k", 0, N - 1), ("j", k + 1, N - 1)),
            reads=(Access.to("A", k, j), Access.to("tau", j)),
            writes=(Access.to("A", k, j),),
            schedule=(0, "k", 7, "j", 3),
        ),
        Statement(
            "SU",
            loops=(("k", 0, N - 1), ("j", k + 1, N - 1), ("i", k + 1, M - 1)),
            reads=(
                Access.to("A", i, j),
                Access.to("A", i, k),
                Access.to("tau", j),
            ),
            writes=(Access.to("A", i, j),),
            schedule=(0, "k", 7, "j", 4, "i", 0),
        ),
    )
    return Program(
        name="qr_a2v",
        params=("M", "N"),
        arrays=arrays,
        statements=st,
        outputs=("A", "tau"),
        runner=run_qr_a2v,
        notes="Figure 3 (LAPACK GEQR2, right-looking). Assumes M > N.",
    )


def _validate(params: Mapping[str, int]) -> None:
    """Numeric check: A0 = Q R with Q from the packed reflectors."""
    m, n = params["M"], params["N"]
    A0 = random_matrix(m, n, 0)
    out = run_qr_a2v(params, None, seed=0)
    Afin, tau = out["A"], out["tau"]
    R = np.triu(Afin[:n, :])
    Q = householder_q(Afin, tau, m)
    assert relative_error(Q[:, :n] @ R, A0) < 1e-10, "QR reconstruction failed"
    assert relative_error(Q.T @ Q, np.eye(m)) < 1e-8, "Q not orthogonal"


QR_A2V = Kernel(
    program=build_a2v_program(),
    dominant="SU",
    description="Householder QR, A2V part (Figure 3 / GEQR2)",
    default_params={"M": 12, "N": 6},
    validate=_validate,
)
