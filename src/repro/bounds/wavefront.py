"""The wavefront lower-bound technique (background, §2 and [10]).

The paper uses K-partitioning for its contribution but cites the wavefront
method as the alternative that wins on stencil-like dependence graphs.  We
provide the concrete-CDAG version:

* :func:`max_live` — the live-set profile of one schedule (a memory demand);
* :func:`min_max_live_exact` — exact minimisation of the peak live-set over
  *all* topological orders, by memoised search over downward-closed sets
  (exponential state space: intended for the small CDAGs used in tests);
* :func:`wavefront_bound` — the sound I/O bound
  ``Q_loads >= min_max_live - S``: whenever more than S values are
  simultaneously live (computed, still needed), the excess must be spilled
  and later reloaded.
"""

from __future__ import annotations

from functools import lru_cache
from typing import Hashable, Sequence

from ..cdag import CDAG

__all__ = ["max_live", "min_max_live_exact", "wavefront_bound"]

Node = Hashable


def max_live(g: CDAG, schedule: Sequence[Node]) -> int:
    """Peak number of simultaneously-live values along a schedule.

    A value is live after its producer runs while some consumer has not;
    program inputs count as live until their last consumer (they occupy fast
    memory or force a reload just the same).
    """
    remaining = {n: len(g.succ[n]) for n in g.succ}
    live = set(g.input_nodes())
    peak = len(live)
    for v in schedule:
        live.add(v)
        for u in g.pred[v]:
            remaining[u] -= 1
            if remaining[u] == 0 and u in live:
                live.discard(u)
        # v itself may be dead on arrival (no successors, e.g. outputs --
        # keep outputs live to match the game's obligation to hold results)
        if remaining[v] == 0 and v not in g.outputs:
            live.discard(v)
        peak = max(peak, len(live))
    return peak


def min_max_live_exact(g: CDAG, node_limit: int = 22) -> int:
    """Exact minimum over all schedules of the peak live-set size.

    State space is the lattice of downward-closed subsets — exponential, so
    a hard ``node_limit`` guards against accidental blow-up.
    """
    compute = sorted(g.compute_nodes(), key=repr)
    if len(compute) > node_limit:
        raise ValueError(
            f"CDAG has {len(compute)} compute nodes; exact search capped at"
            f" {node_limit}"
        )
    index = {n: i for i, n in enumerate(compute)}
    inputs = list(g.input_nodes())
    n_inputs = len(inputs)
    full = (1 << len(compute)) - 1

    preds_mask = []
    for n in compute:
        m = 0
        for u in g.pred[n]:
            if u in index:
                m |= 1 << index[u]
        preds_mask.append(m)

    def live_count(done_mask: int) -> int:
        # nodes (incl. inputs) with a not-yet-computed successor, plus outputs
        live = 0
        done = {compute[i] for i in range(len(compute)) if done_mask >> i & 1}
        for n in list(done) + inputs:
            if n in g.outputs and n in done:
                live += 1
                continue
            for s in g.succ[n]:
                if s in index and s not in done:
                    live += 1
                    break
        return live

    @lru_cache(maxsize=None)
    def best(done_mask: int) -> int:
        if done_mask == full:
            return 0
        out = None
        for i in range(len(compute)):
            bit = 1 << i
            if done_mask & bit:
                continue
            if preds_mask[i] & done_mask != preds_mask[i]:
                continue
            nxt = done_mask | bit
            peak = max(live_count(nxt), best(nxt))
            if out is None or peak < out:
                out = peak
        assert out is not None, "no eligible node: cyclic CDAG?"
        return out

    return max(live_count(0), best(0))


def wavefront_bound(g: CDAG, s: int, node_limit: int = 22) -> int:
    """``Q_loads >= min_max_live - S`` (0 when the graph fits in cache)."""
    return max(0, min_max_live_exact(g, node_limit) - s)
