"""Automatic derivation of Brascamp–Lieb projections from dependence paths.

§2 of the paper: "When examining the path of affine dependencies starting
from any node of E to a node of the inset of E, we can either obtain a
projection or a translation" — each read access of the statement under
analysis contributes a projection ``phi`` of its iteration space onto the
dimensions that identify the *value class* feeding that read.

The value class is found by **origin chasing** on the exact dataflow: from
the producer of the read, repeatedly follow the producer's own
update/accumulation input (the read whose address equals the instance's
write address) until reaching either a program input element or an instance
with no such input (the chain origin, e.g. the ``R[k][j] = 0`` initialiser).
Collapsing these chains is precisely what turns versioned scalar workspaces
(``tau[j]`` in Figure 3) into the (k, j)-indexed values the proof needs, and
self-update chains (``A[i][j]`` across the outer loop) into (i, j) classes.

The dims of the consumer that determine the origin are recovered by fitting
an exact affine map on the sampled (consumer, origin) pairs.
"""

from __future__ import annotations

from dataclasses import dataclass
from fractions import Fraction
from typing import Mapping, Sequence

import numpy as np

from .. import obs
from ..cdag.graph import INPUT
from ..ir import Program, Tracer, dataflow_trace

__all__ = ["Projection", "derive_projections", "chase_origin"]


@dataclass(frozen=True)
class Projection:
    """A projection of the statement's iteration space onto ``dims``.

    ``via`` records the read access (array name) that produced it and
    ``origin`` the origin class (statement name or "_input:<array>").
    """

    dims: frozenset[str]
    via: str = ""
    origin: str = ""
    #: majority direct-producer class ("_input:<array>" or statement name);
    #: distinct producers mean disjoint inset parts (the IOLB constant-factor
    #: refinement mentioned in §6)
    producer: str = ""

    def __repr__(self) -> str:
        d = ",".join(sorted(self.dims))
        return f"phi({d})[{self.via}<-{self.origin}]"


class _FlowIndex:
    """Per-instance read/write info + producer lookup from a dataflow trace."""

    def __init__(self, trace: Tracer):
        self.reads = {}
        self.writes = {}
        for idx, key in enumerate(trace.schedule):
            self.reads[key] = trace.reads_by_instance[idx]
            self.writes[key] = trace.writes_by_instance[idx]
        # (consumer, element) -> producer node
        self.producer = {}
        for prod, cons, elem in trace.flow_edges:
            self.producer[(cons, elem)] = prod


def chase_origin(flow: _FlowIndex, node, elem):
    """Follow update chains from a read back to its origin.

    Returns ``(INPUT, element)`` for program inputs, or the chain-origin
    instance ``(stmt, point)``.
    """
    prod = flow.producer.get((node, elem))
    if prod is None:
        # read of a value written by the same instance, or untracked: origin
        return node
    seen = set()
    cur = prod
    while True:
        if cur[0] == INPUT:
            return cur
        if cur in seen:  # cycle guard (cannot happen in a DAG, but be safe)
            return cur
        seen.add(cur)
        w = flow.writes.get(cur, [])
        if len(w) != 1:
            return cur
        waddr = w[0]
        if waddr not in flow.reads.get(cur, []):
            return cur  # no update input: chain origin
        nxt = flow.producer.get((cur, waddr))
        if nxt is None:
            return (INPUT, waddr)
        cur = nxt


def _fit_affine_dims(
    samples: Sequence[tuple[tuple[int, ...], tuple[int, ...]]],
    dims: Sequence[str],
) -> frozenset[str] | None:
    """Dims of the consumer with nonzero coefficient in the exact affine map
    consumer -> origin coordinates; None if no exact affine map fits."""
    xs = np.array([list(c) + [1] for c, _ in samples], dtype=float)
    ys = np.array([list(o) for _, o in samples], dtype=float)
    if ys.size == 0:
        return frozenset()
    coef, *_ = np.linalg.lstsq(xs, ys, rcond=None)
    pred = xs @ coef
    if not np.allclose(pred, ys, atol=1e-6):
        return None
    used: set[str] = set()
    for di, d in enumerate(dims):
        if np.any(np.abs(coef[di]) > 1e-9):
            used.add(d)
    return frozenset(used)


def derive_projections(
    program: Program,
    stmt_name: str,
    params: Mapping[str, int],
    trace: Tracer | None = None,
) -> list[Projection]:
    """Derive the projection set of ``stmt_name`` at small concrete ``params``.

    One projection per read access, from origin chasing + affine fitting.
    When a read has origins in several statements (domain-boundary effects),
    the majority origin class is used; an inexact fit falls back to the full
    dimension set (a sound but weak projection).
    """
    stmt = program.statement(stmt_name)
    dims = stmt.dims
    if trace is None:
        trace = dataflow_trace(program, params)
    flow = _FlowIndex(trace)

    # group read samples by slot (position in stmt.reads)
    slot_samples: list[dict] = [dict() for _ in stmt.reads]
    for idx, key in enumerate(trace.schedule):
        if key[0] != stmt_name:
            continue
        point = key[1]
        raddrs = trace.reads_by_instance[idx]
        if len(raddrs) != len(stmt.reads):
            raise ValueError(
                f"instance {key} has {len(raddrs)} reads, spec has {len(stmt.reads)}"
            )
        for slot, addr in enumerate(raddrs):
            origin = chase_origin(flow, key, addr)
            prod = flow.producer.get((key, addr))
            if prod is None:
                prod = (INPUT, addr)
            slot_samples[slot][point] = (origin, prod)
    if obs.enabled():
        obs.add("bounds.origin_chases", sum(len(s) for s in slot_samples))

    out: list[Projection] = []
    for slot, samples in enumerate(slot_samples):
        if not samples:
            continue
        via = stmt.reads[slot].array
        # classify origins
        by_class: dict[str, list] = {}
        prod_count: dict[str, int] = {}
        for cpoint, (origin, prod) in samples.items():
            if origin[0] == INPUT:
                cls = f"{INPUT}:{origin[1][0]}"
                coords = origin[1][1]
            else:
                cls = origin[0]
                coords = origin[1]
            by_class.setdefault(cls, []).append((cpoint, coords))
            pcls = f"{INPUT}:{prod[1][0]}" if prod[0] == INPUT else prod[0]
            prod_count[pcls] = prod_count.get(pcls, 0) + 1
        # majority class (boundary rows/columns may have other producers)
        cls = max(by_class, key=lambda c: len(by_class[c]))
        pcls = max(prod_count, key=lambda c: prod_count[c])
        pairs = by_class[cls]
        obs.add("bounds.affine_fits")
        used = _fit_affine_dims(pairs, dims)
        if used is None:
            used = frozenset(dims)  # conservative fallback
        out.append(Projection(dims=used, via=via, origin=cls, producer=pcls))

    # dedupe identical dim-sets, keeping the first annotation
    seen: set[frozenset[str]] = set()
    deduped = []
    for p in out:
        if p.dims not in seen:
            seen.add(p.dims)
            deduped.append(p)
    return deduped
