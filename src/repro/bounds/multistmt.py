"""Multi-statement K-partition accounting.

Theorem 1's counting extends to several statements at once: a convex
K-bounded set E holds at most U_i(K) instances of statement i (the same
per-statement Brascamp–Lieb bounds the single-statement derivation uses),
so every set of an (S+T)-partition has size at most ``sum_i U_i(K)`` and

    Q  >=  (K - S) * (sum_i |V_i|)  /  (sum_i U_i(K)).

This is how IOLB's published old bounds pick up *all* statements: for MGS
the numerator becomes MN^2 + (lower-order MN terms) over ~2 S^{3/2} + O(S),
exactly Figure 5's ``(2M + 3MN + MN^2)/sqrt(S)`` shape — coefficient 1 on
the MN^2/sqrt(S) term, unlike the single-statement bound's 2, because the
SR and SU populations now share the same segment capacity.

Soundness bookkeeping: U_i coefficients are rounded *up* (an upper bound may
only grow) and skipped statements are added to the numerator only when their
U_i is available — statements without a closed-form count are dropped from
the numerator (which only weakens the bound).
"""

from __future__ import annotations

from fractions import Fraction
from typing import Mapping, Sequence

from ..ir import Program, dataflow_trace
from ..symbolic import Poly, Rational, Sym, as_rational
from .brascamp_lieb import bl_exponents
from .kpartition import BoundResult
from .projections import derive_projections

__all__ = ["multi_statement_bound"]

S = Sym("S")


def _round_up(x: float, digits: int = 9) -> Fraction:
    scale = 10**digits
    return Fraction(int(x * scale) + 1, scale)


def multi_statement_bound(
    program: Program,
    small_params: Mapping[str, int],
    *,
    statements: Sequence[str] | None = None,
    kernel_name: str = "",
) -> BoundResult:
    """``Q >= 2S * (sum |V_i|) / (sum U_i(3S))`` over the chosen statements.

    Statements whose projections do not cover their dims (or that carry
    guards without a closed-form count) are excluded from both sums.
    """
    names = statements or [s.name for s in program.statements]
    trace = dataflow_trace(program, small_params)  # shared across statements
    v_total: Poly = Poly()
    u_total: Rational = as_rational(0)
    used: list[str] = []
    for name in names:
        stmt = program.statement(name)
        if not stmt.dims:
            continue
        try:
            v_i = stmt.instance_count()
        except ValueError:
            continue  # guarded statement: no closed-form count
        projections = derive_projections(program, name, small_params, trace)
        dimsets = [p.dims for p in projections]
        sol = bl_exponents(stmt.dims, dimsets)
        if not sol.feasible or sol.sigma < 1:
            continue
        producers = [p.producer or p.origin for p in projections]
        disjoint = len(set(producers)) == len(producers)

        # U_i(3S) = c_i * S^{sigma_i}
        sigma = sol.sigma
        c = 3.0 ** float(sigma)
        if disjoint:
            for s_j in sol.exponents:
                if s_j > 0:
                    c *= (float(s_j) / float(sigma)) ** float(s_j)
        u_total = u_total + as_rational(_round_up(c)) * as_rational(S**sigma)
        v_total = v_total + v_i
        used.append(f"{name}(sigma={sigma},U~{c:.3g}S^{float(sigma):g})")

    if not used:
        raise ValueError("no statement admits a K-partition bound")
    expr = as_rational(2) * as_rational(S) * as_rational(v_total) / u_total
    return BoundResult(
        kernel=kernel_name or program.name,
        method="classical-multi",
        expr=expr,
        coeff=1.0,
        k_choice="K = 3S",
        notes="pooled statements: " + ", ".join(used),
    )
