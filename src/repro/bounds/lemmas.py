"""Empirical verification of the hourglass lemmas on sampled convex sets.

The derivation encodes structural claims about every convex K-bounded set
(Lemma 3, the §4.3 flatness bound, the §4.4 set-size bound).  This module
checks those claims directly against randomly sampled convex subsets of a
concrete CDAG — the "trust but verify" layer for anyone pointing the engine
at a new kernel: if :func:`check_hourglass_lemmas` reports violations, the
detected pattern does not actually govern that CDAG and the derived bound
must not be used.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import Iterable, Mapping

from ..cdag import CDAG, build_cdag
from ..ir import Program
from .hourglass import HourglassPattern

__all__ = ["LemmaCheckResult", "sample_convex_sets", "check_hourglass_lemmas"]


@dataclass
class LemmaCheckResult:
    """Outcome of a sampling run."""

    sets_checked: int = 0
    components_checked: int = 0
    flat_sets_checked: int = 0
    violations: list[str] = field(default_factory=list)

    def ok(self) -> bool:
        return not self.violations

    def summary(self) -> str:
        status = "ok" if self.ok() else f"{len(self.violations)} VIOLATIONS"
        return (
            f"lemma check: {self.sets_checked} convex sets,"
            f" {self.components_checked} 3-tick components,"
            f" {self.flat_sets_checked} flat sets -> {status}"
        )


def sample_convex_sets(
    g: CDAG,
    rng: random.Random,
    n_sets: int = 60,
    seed_size: int = 3,
) -> Iterable[set]:
    """Random convex subsets: convex closure of random compute-node seeds."""
    nodes = sorted(g.compute_nodes(), key=repr)
    for _ in range(n_sets):
        seed = rng.sample(nodes, min(seed_size, len(nodes)))
        yield g.convex_closure(set(seed))


def check_hourglass_lemmas(
    program: Program,
    pattern: HourglassPattern,
    params: Mapping[str, int],
    *,
    n_sets: int = 60,
    seed: int = 7,
    g: CDAG | None = None,
) -> LemmaCheckResult:
    """Sample convex sets and verify Lemma 3, the flatness bound and the
    §4.4 set-size bound against measured in-set sizes."""
    if g is None:
        g = build_cdag(program, params)
    stmt = program.statement(pattern.stmt)
    dims = stmt.dims
    t_idx = [dims.index(d) for d in pattern.temporal]
    n_idx = [dims.index(d) for d in pattern.neutral]
    r_idx = [dims.index(d) for d in pattern.reduction]
    domain_pts = set(stmt.domain().points(params))
    wmin = float(pattern.width_min.eval(params))
    wmax = float(pattern.width_max.eval(params))

    res = LemmaCheckResult()
    rng = random.Random(seed)
    for E_full in sample_convex_sets(g, rng, n_sets=n_sets):
        res.sets_checked += 1
        sx = [n[1] for n in E_full if isinstance(n, tuple) and n[0] == pattern.stmt]
        k_meas = len(g.in_set(E_full))

        # §4.4 set-size bound
        if k_meas > 0:
            bound = wmax * k_meas**2 / wmin**2 + 2 * k_meas
            if len(sx) > bound + 1e-9:
                res.violations.append(
                    f"set-size: |E_SX|={len(sx)} > {bound:.1f} at K={k_meas}"
                )

        # group by neutral slice
        by_j: dict[tuple, list] = {}
        for p in sx:
            by_j.setdefault(tuple(p[x] for x in n_idx), []).append(p)

        flat = True
        for jval, pts in by_j.items():
            by_tick: dict[tuple, list] = {}
            for p in pts:
                by_tick.setdefault(tuple(p[x] for x in t_idx), []).append(p)
            ticks = sorted(by_tick)
            if len(ticks) < 3:
                continue
            flat = False
            res.components_checked += 1
            # Lemma 3(1): consecutive ticks path-connected
            for a, b in zip(ticks, ticks[1:]):
                pa = (pattern.stmt, by_tick[a][0])
                pb = (pattern.stmt, by_tick[b][0])
                if not (g.has_path(pa, pb) or g.has_path(pb, pa)):
                    res.violations.append(
                        f"lemma3(1): ticks {a}->{b} of j={jval} disconnected"
                    )
            # Lemma 3(2): full interior width
            for t in ticks[1:-1]:
                have = {tuple(p[x] for x in r_idx) for p in by_tick[t]}
                full = {
                    tuple(p[x] for x in r_idx)
                    for p in domain_pts
                    if tuple(p[x] for x in t_idx) == t
                    and tuple(p[x] for x in n_idx) == jval
                }
                if have != full:
                    res.violations.append(
                        f"lemma3(2): tick {t} of j={jval}:"
                        f" {len(have)}/{len(full)} wide"
                    )

        # §4.3 flatness bound on fully flat sets
        if flat and sx and k_meas > 0:
            res.flat_sets_checked += 1
            if len(sx) > 2 * k_meas + 1e-9:
                res.violations.append(
                    f"flatness: |E_SX|={len(sx)} > 2K={2 * k_meas}"
                )
    return res
