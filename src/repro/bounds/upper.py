"""Upper bounds: the tiled algorithms' predicted and measured I/O.

Appendix A proves the hourglass lower bounds asymptotically *tight* by
exhibiting blocked orderings whose I/O matches them.  This module evaluates
those predictions and measures actual I/O with the simulators, producing the
lower <= measured <= predicted "sandwich" the benchmarks report.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Mapping

from .. import obs
from ..cache import CacheStats, MemoCache, memo_key, simulate
from ..kernels.tiled import TiledAlgorithm, default_block_size

__all__ = ["TiledMeasurement", "measure_tiled_io", "predicted_reads", "predicted_total"]


@dataclass
class TiledMeasurement:
    """One measured point of a tiled algorithm."""

    name: str
    params: dict
    s: int
    block: int
    stats: CacheStats
    predicted_reads: float
    predicted_total: float

    @property
    def loads(self) -> int:
        return self.stats.loads

    def __repr__(self) -> str:
        return (
            f"{self.name}(B={self.block}, S={self.s}): loads={self.stats.loads}"
            f" predicted~{self.predicted_reads:.0f}"
        )


def predicted_reads(alg: TiledAlgorithm, params: Mapping[str, int]) -> float:
    """Leading-term read count at concrete params (incl. block size B)."""
    if alg.io_reads_formula is None:
        raise ValueError(f"{alg.name} has no read formula")
    return float(alg.io_reads_formula.eval(params))


def predicted_total(alg: TiledAlgorithm, params: Mapping[str, int]) -> float:
    """Leading-term total I/O at concrete params (incl. cache size S)."""
    if alg.io_total_formula is None:
        raise ValueError(f"{alg.name} has no total formula")
    return float(alg.io_total_formula.eval(params))


def measure_tiled_io(
    alg: TiledAlgorithm,
    params: Mapping[str, int],
    s: int,
    *,
    block: int | None = None,
    policy: str = "belady",
    seed: int = 0,
    memo: MemoCache | None = None,
) -> TiledMeasurement:
    """Run the tiled algorithm and price its trace on a size-``s`` memory.

    The appendix's explicit load/discard management corresponds to the
    offline-optimal (Belady) policy; LRU is available for the ablation of
    how much a practical policy loses at the block-size boundary.

    The default block uses ``default_block_size(m + 1, s)``: the exact
    resident set is ``(M+1)·B + M`` elements, so the divisor is M+1 (see
    the audit note in :mod:`repro.bounds.tuner`).  ``memo`` consults/fills
    a persistent result cache (:class:`repro.cache.MemoCache`), skipping
    the traced run and simulation on a hit.
    """
    m = params.get("M", params.get("N"))
    b = block if block is not None else default_block_size(m + 1, s)
    run_params = dict(params)
    run_params["B"] = b

    def _run() -> CacheStats:
        tr = alg.run_traced(run_params, seed=seed)
        return simulate(tr.trace_arrays(), s, policy)

    with obs.span("bounds.measure_tiled", algorithm=alg.name, s=s, block=b):
        if memo is not None:
            stats = memo.get_or_compute(
                memo_key(alg.name, run_params, s, policy, seed=seed), _run
            )
        else:
            stats = _run()
    pr = predicted_reads(alg, run_params) if alg.io_reads_formula else float("nan")
    env_s = dict(run_params)
    env_s["S"] = s
    pt = predicted_total(alg, env_s) if alg.io_total_formula else float("nan")
    return TiledMeasurement(
        name=alg.name,
        params=dict(params),
        s=s,
        block=b,
        stats=stats,
        predicted_reads=pr,
        predicted_total=pt,
    )
