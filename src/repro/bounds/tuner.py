"""Empirical block-size tuning for the tiled algorithms.

Appendix A chooses ``B* = floor(S/M) - 1`` analytically.  This module
searches the block-size landscape by simulation — both to *verify* that the
analytic choice is near-optimal (a bench does this) and as a practical
utility: on the hardware-like cache model the best block can differ from
the abstract-model optimum, and a user tuning a real kernel wants the
measured argmin.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Mapping

from ..cache import simulate
from ..kernels.tiled import TiledAlgorithm, default_block_size

__all__ = ["TuneResult", "tune_block_size"]


@dataclass
class TuneResult:
    """Outcome of a block-size search."""

    best_block: int
    best_loads: int
    analytic_block: int
    analytic_loads: int
    #: every (B, loads) pair evaluated, in evaluation order
    evaluated: list[tuple[int, int]] = field(default_factory=list)

    @property
    def analytic_gap(self) -> float:
        """How much worse the analytic B* is than the measured optimum."""
        return self.analytic_loads / max(self.best_loads, 1)


def tune_block_size(
    alg: TiledAlgorithm,
    params: Mapping[str, int],
    s: int,
    *,
    policy: str = "belady",
    b_max: int | None = None,
    seed: int = 0,
) -> TuneResult:
    """Exhaustively evaluate blocks 1..b_max (default: N) and return the best.

    Simulation cost per block is one kernel run + one cache pass, so the
    sweep is linear in N; memoisation is pointless since every B changes
    the trace.
    """
    n = params.get("N")
    m = params.get("M", n)
    if b_max is None:
        b_max = max(1, n)
    evaluated: list[tuple[int, int]] = []

    def loads_for(b: int) -> int:
        tr = alg.run_traced({**params, "B": b}, seed=seed)
        return simulate(list(tr.events), s, policy).loads

    best_b, best_l = 1, None
    for b in range(1, b_max + 1):
        l = loads_for(b)
        evaluated.append((b, l))
        if best_l is None or l < best_l:
            best_b, best_l = b, l

    analytic = min(max(1, default_block_size(m + 1, s)), b_max)
    analytic_l = dict(evaluated)[analytic]
    return TuneResult(
        best_block=best_b,
        best_loads=best_l,
        analytic_block=analytic,
        analytic_loads=analytic_l,
        evaluated=evaluated,
    )
