"""Empirical block-size tuning for the tiled algorithms.

Appendix A chooses ``B* = floor(S/M) - 1`` analytically.  This module
searches the block-size landscape by simulation — both to *verify* that the
analytic choice is near-optimal (a bench does this) and as a practical
utility: on the hardware-like cache model the best block can differ from
the abstract-model optimum, and a user tuning a real kernel wants the
measured argmin.

**On the ``default_block_size(m + 1, s)`` call** (Appendix A audit): the
paper states ``B* = floor(S/M) - 1``, but the exact resident set of the
blocked algorithms during block application is ``(M+1)·B + M`` elements —
``M·B`` for the block's columns, ``B`` for the coefficient row ``R[i,
j0:j0+B]``, and ``M`` for the past column being applied (hence the recorded
``cache_condition`` "(M+1)*B < S").  ``B = floor(S/(M+1)) - 1`` guarantees
``(M+1)·B + M <= S - 1``, i.e. the working set always fits, whereas the
paper's literal ``floor(S/M) - 1`` can overflow fast memory (e.g. M=16,
S=96: it gives B=5 with footprint 17·5+16 = 101 > 96, while the ``M+1``
form gives B=4, footprint 84).  The two agree to leading order — the paper's
statement is asymptotic — so the ``+1`` is kept deliberately; a regression
test pins both forms on known (M, S) pairs.

Sweeps re-run the kernel per candidate block (every B changes the trace), so
the tuner supports an opt-in ``jobs=`` process pool and a coarse-to-fine
``mode="coarse"`` that evaluates a stride-k grid then refines around its
argmin, plus an optional persistent ``memo=`` cache
(:class:`repro.cache.MemoCache`) so repeated invocations skip simulation
entirely.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Mapping, Sequence

from .. import obs
from ..cache import CacheStats, MemoCache, memo_key, simulate
from ..kernels.tiled import TiledAlgorithm, default_block_size

__all__ = ["TuneResult", "tune_block_size"]


@dataclass
class TuneResult:
    """Outcome of a block-size search."""

    best_block: int
    best_loads: int
    analytic_block: int
    analytic_loads: int
    #: every (B, loads) pair evaluated, in evaluation order
    evaluated: list[tuple[int, int]] = field(default_factory=list)
    #: sweep strategy that produced this result ("exhaustive" or "coarse")
    mode: str = "exhaustive"

    @property
    def analytic_gap(self) -> float:
        """How much worse the analytic B* is than the measured optimum."""
        return self.analytic_loads / max(self.best_loads, 1)


def _eval_block(job) -> CacheStats:
    """Full simulation stats of one (algorithm, block) point.

    Module-level so it pickles; the TiledAlgorithm dataclass itself is
    picklable (its runner and formulas are module-level objects).
    """
    alg, params, b, s, policy, seed = job
    tr = alg.run_traced({**params, "B": b}, seed=seed)
    return simulate(tr.trace_arrays(), s, policy)


def _eval_block_worker(job) -> tuple[CacheStats, dict[str, int] | None]:
    """Pool worker wrapper: evaluate one point and, when the parent was
    recording, capture this worker's obs counters (engine work, simulated
    events) so the parent can merge them — a worker process increments its
    *own* registry copy, which would otherwise be silently dropped and
    under-report ``--metrics-json`` for parallel runs."""
    inner, capture = job
    if not capture:
        return _eval_block(inner), None
    snapshot: dict[str, int] = {}
    with obs.capture_counters(snapshot):
        stats = _eval_block(inner)
    return stats, snapshot


def _eval_many(
    alg: TiledAlgorithm,
    params: Mapping[str, int],
    blocks: Sequence[int],
    s: int,
    policy: str,
    seed: int,
    jobs: int,
    memo: MemoCache | None,
    evaluated: list[tuple[int, int]],
    known: dict[int, int],
) -> None:
    """Evaluate ``blocks`` (skipping already-known ones) into ``evaluated``/``known``."""
    todo = [b for b in blocks if b not in known]
    if memo is not None:
        remaining = []
        for b in todo:
            stats = memo.get(memo_key(alg.name, {**params, "B": b}, s, policy, seed=seed))
            if stats is not None:
                known[b] = stats.loads
            else:
                remaining.append(b)
        todo = remaining
    if todo:
        obs.add("bounds.tuner_blocks_evaluated", len(todo))
        jobs_args = [(alg, dict(params), b, s, policy, seed) for b in todo]
        if jobs > 1 and len(todo) > 1:
            import multiprocessing

            capture = obs.enabled()
            with multiprocessing.Pool(min(jobs, len(todo))) as pool:
                pairs = pool.map(_eval_block_worker, [(j, capture) for j in jobs_args])
            results = []
            for stats, snapshot in pairs:
                if snapshot:
                    obs.merge_counters(snapshot)
                results.append(stats)
        else:
            results = [_eval_block(j) for j in jobs_args]
        for b, stats in zip(todo, results):
            known[b] = stats.loads
            if memo is not None:
                memo.put(
                    memo_key(alg.name, {**params, "B": b}, s, policy, seed=seed), stats
                )
    for b in blocks:
        if all(b != eb for eb, _ in evaluated):
            evaluated.append((b, known[b]))


def tune_block_size(
    alg: TiledAlgorithm,
    params: Mapping[str, int],
    s: int,
    *,
    policy: str = "belady",
    b_max: int | None = None,
    seed: int = 0,
    jobs: int = 1,
    mode: str = "exhaustive",
    stride: int | None = None,
    memo: MemoCache | None = None,
) -> TuneResult:
    """Search blocks 1..b_max (default: N) and return the best.

    ``mode="exhaustive"`` evaluates every block; ``mode="coarse"`` evaluates
    a stride-``k`` grid (``k = stride or ~sqrt(b_max)``) and then refines
    every block within ``k`` of the grid argmin.  ``jobs > 1`` fans the
    kernel runs + cache passes out over a process pool (results are
    identical to the serial sweep; the default stays serial for
    determinism of *timing*, not of values).  ``memo`` consults/fills a
    persistent result cache keyed per (algorithm, params+B, S, policy,
    seed, engine version).
    """
    missing = [k for k in ("N",) if k not in params]
    if missing:
        raise ValueError(
            f"tune_block_size: params missing required key(s) {missing} "
            f"(got {sorted(params)}); the sweep range and the analytic "
            f"B* both need the column count N"
        )
    if s < 1:
        raise ValueError("cache capacity s must be >= 1")
    if jobs < 1:
        raise ValueError("jobs must be >= 1")
    if mode not in ("exhaustive", "coarse"):
        raise ValueError(f"unknown mode {mode!r} (use 'exhaustive' or 'coarse')")
    n = params["N"]
    m = params.get("M", n)
    if b_max is None:
        b_max = max(1, n)

    evaluated: list[tuple[int, int]] = []
    known: dict[int, int] = {}

    with obs.span("bounds.tune", algorithm=alg.name, s=s, mode=mode):
        if mode == "exhaustive":
            _eval_many(
                alg, params, range(1, b_max + 1), s, policy, seed, jobs, memo, evaluated, known
            )
        else:
            k = stride if stride is not None else max(2, math.isqrt(b_max))
            if k < 1:
                raise ValueError("stride must be >= 1")
            grid = sorted(set(range(1, b_max + 1, k)) | {b_max})
            _eval_many(alg, params, grid, s, policy, seed, jobs, memo, evaluated, known)
            b0 = min(grid, key=lambda b: (known[b], b))
            refine = [
                b
                for b in range(max(1, b0 - k + 1), min(b_max, b0 + k - 1) + 1)
                if b not in known
            ]
            _eval_many(alg, params, refine, s, policy, seed, jobs, memo, evaluated, known)

        # the appendix's analytic block (see module docstring for the M+1):
        # always evaluated so the gap is well-defined even in coarse mode
        analytic = min(max(1, default_block_size(m + 1, s)), b_max)
        _eval_many(alg, params, [analytic], s, policy, seed, jobs, memo, evaluated, known)

    best_b = min(known, key=lambda b: (known[b], b))
    return TuneResult(
        best_block=best_b,
        best_loads=known[best_b],
        analytic_block=analytic,
        analytic_loads=known[analytic],
        evaluated=evaluated,
        mode=mode,
    )
