"""The IOLB-style derivation driver: kernel in, parametric bounds out.

``derive(kernel)`` runs the full pipeline of the paper:

1. exact dataflow at small parameters → dependence-path projections;
2. Brascamp–Lieb LP → the classical K-partition bound (with the
   disjoint-inset refinement when applicable);
3. hourglass detection (§3) → when a parametric-width hourglass exists, the
   tightened bound of §4 (K = 2S) and the small-cache variant;
   when the width degenerates (GEHD2), the loop-splitting derivation of
   Theorem 9 with the paper's two split choices;
4. everything is returned as exact symbolic :class:`BoundResult` s plus a
   ``best(params)`` picker.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from fractions import Fraction
from typing import Mapping, Sequence

from .. import obs
from ..kernels.common import Kernel
from ..symbolic import Poly, Sym
from .hourglass import (
    HourglassDetectionError,
    HourglassPattern,
    detect_hourglass,
    hourglass_bound,
    hourglass_bound_small_cache,
    hourglass_bound_with_split,
)
from .kpartition import BoundResult, classical_bound
from .projections import Projection, derive_projections

__all__ = ["DerivationReport", "derive", "sample_params_for"]


@dataclass
class DerivationReport:
    """All bounds the engine can derive for one kernel."""

    kernel: str
    dominant: str
    projections: list[Projection]
    #: None when the K-partition argument degenerates on this statement
    #: (e.g. a full-dimension projection makes sigma <= 1)
    classical: BoundResult | None
    hourglass_pattern: HourglassPattern | None = None
    hourglass: BoundResult | None = None
    hourglass_small_cache: BoundResult | None = None
    hourglass_split: list[BoundResult] = field(default_factory=list)

    def all_bounds(self) -> list[BoundResult]:
        """Every derived bound, classical first, in derivation order."""
        out = [self.classical] if self.classical else []
        if self.hourglass:
            out.append(self.hourglass)
        if self.hourglass_small_cache:
            out.append(self.hourglass_small_cache)
        out.extend(self.hourglass_split)
        return out

    def best(self, params: Mapping[str, int]) -> tuple[BoundResult, float]:
        """The tightest valid bound at concrete parameters (incl. S)."""
        best_b, best_v = None, float("-inf")
        for b in self.all_bounds():
            try:
                v = b.evaluate(params)
            except (ZeroDivisionError, KeyError):
                continue
            if v > best_v:
                best_b, best_v = b, v
        if best_b is None:
            raise ValueError("no bound evaluable at these parameters")
        return best_b, max(best_v, 0.0)

    def summary(self) -> str:
        """Human-readable multi-line report (projections, bounds, pattern)."""
        lines = [f"kernel {self.kernel} (dominant statement {self.dominant})"]
        lines.append(f"  projections: {self.projections}")
        for b in self.all_bounds():
            lines.append(f"  {b!r}")
        if self.hourglass_pattern:
            lines.append(f"  {self.hourglass_pattern!r}")
        return "\n".join(lines)


def sample_params_for(kernel: Kernel, scale: int = 128) -> dict[str, int]:
    """Large representative parameter values (numeric tie-breaking only)."""
    return {k: v * scale for k, v in kernel.default_params.items()}


def derive(
    kernel: Kernel,
    small_params: Mapping[str, int] | None = None,
    sample_params: Mapping[str, int] | None = None,
    statement: str | None = None,
) -> DerivationReport:
    """Run the full lower-bound derivation pipeline on one kernel.

    ``statement`` overrides the kernel's dominant statement — useful for
    kernels with several update statements (e.g. GEBD2's row phase carries
    a second hourglass on SrU).
    """
    with obs.span("bounds.derive", kernel=kernel.name):
        with obs.span("frontend.program", kernel=kernel.name):
            program = kernel.program
            dominant = statement or kernel.dominant
            stmt = program.statement(dominant)
            if small_params is None:
                small_params = dict(kernel.default_params)
            if sample_params is None:
                sample_params = sample_params_for(kernel)

        with obs.span("polyhedral.projections", stmt=dominant):
            projections = derive_projections(program, dominant, small_params)
        obs.add("bounds.projections_derived", len(projections))
        v_count = stmt.instance_count()
        with obs.span("bounds.classical", stmt=dominant):
            try:
                classical = classical_bound(
                    kernel.name, stmt.dims, projections, v_count
                )
            except ValueError:
                classical = None  # degenerate sigma or uncovered dims

        report = DerivationReport(
            kernel=kernel.name,
            dominant=dominant,
            projections=projections,
            classical=classical,
        )

        with obs.span("bounds.hourglass", stmt=dominant):
            try:
                pattern = detect_hourglass(
                    program, dominant, small_params, sample_params, projections
                )
            except HourglassDetectionError:
                pattern = None
            if pattern is not None:
                report.hourglass_pattern = pattern
                if pattern.parametric_width:
                    report.hourglass = hourglass_bound(
                        kernel.name, pattern, projections, v_count
                    )
                    report.hourglass_small_cache = hourglass_bound_small_cache(
                        kernel.name, pattern, projections, v_count
                    )
                else:
                    # Theorem 9: split the temporal loop.  Two instantiations
                    # from the paper: split at N/2 (general) and at N-S-2
                    # (the N >> S regime).
                    split_dim = pattern.temporal[0]
                    # infer the parameter controlling the temporal extent
                    # from Wmax
                    syms = sorted(pattern.width_max.symbols())
                    if syms:
                        p = Sym(syms[0])
                        for at, label in (
                            (p * Fraction(1, 2), "N/2"),
                            (p - Sym("S") - 2, "N-S-2"),
                        ):
                            try:
                                b = hourglass_bound_with_split(
                                    kernel.name,
                                    program,
                                    pattern,
                                    projections,
                                    split_dim,
                                    at,
                                    sample_params,
                                )
                                b.notes += f" [split at {label}]"
                                b.condition = f"split {split_dim} < {label}"
                                report.hourglass_split.append(b)
                            except (HourglassDetectionError, ValueError):
                                continue
        obs.add("bounds.bounds_derived", len(report.all_bounds()))
        return report
