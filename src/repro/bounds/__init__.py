"""Lower-bound engine: projections, Brascamp–Lieb, K-partition, hourglass."""

from .brascamp_lieb import BLSolution, bl_exponents, bl_exponents_weighted
from .catalog import FIG4, FIG5_NEW, FIG5_OLD, THEOREMS, PaperBound, paper_bound
from .derivation import DerivationReport, derive, sample_params_for
from .hourglass import (
    HourglassDetectionError,
    HourglassPattern,
    detect_hourglass,
    hourglass_bound,
    optimal_k_numeric,
    hourglass_bound_small_cache,
    hourglass_bound_with_split,
    verify_hourglass_paths,
)
from .kpartition import BoundResult, classical_bound, optimize_T_numeric
from .lemmas import LemmaCheckResult, check_hourglass_lemmas, sample_convex_sets
from .multistmt import multi_statement_bound
from .regimes import Regime as BoundRegime, crossover, regime_table
from .projections import Projection, chase_origin, derive_projections
from .tuner import TuneResult, tune_block_size
from .upper import TiledMeasurement, measure_tiled_io, predicted_reads, predicted_total
from .wavefront import max_live, min_max_live_exact, wavefront_bound

__all__ = [
    "BLSolution",
    "bl_exponents",
    "bl_exponents_weighted",
    "FIG4",
    "FIG5_NEW",
    "FIG5_OLD",
    "THEOREMS",
    "PaperBound",
    "paper_bound",
    "DerivationReport",
    "derive",
    "sample_params_for",
    "HourglassDetectionError",
    "HourglassPattern",
    "detect_hourglass",
    "hourglass_bound",
    "optimal_k_numeric",
    "hourglass_bound_small_cache",
    "hourglass_bound_with_split",
    "verify_hourglass_paths",
    "BoundResult",
    "classical_bound",
    "optimize_T_numeric",
    "LemmaCheckResult",
    "check_hourglass_lemmas",
    "sample_convex_sets",
    "multi_statement_bound",
    "BoundRegime",
    "crossover",
    "regime_table",
    "Projection",
    "chase_origin",
    "derive_projections",
    "TuneResult",
    "tune_block_size",
    "TiledMeasurement",
    "measure_tiled_io",
    "predicted_reads",
    "predicted_total",
    "max_live",
    "min_max_live_exact",
    "wavefront_bound",
]
