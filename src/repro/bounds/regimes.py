"""Regime analysis: which bound binds where, and where they cross (§5.1).

The paper's §5.1 analyses the MGS bound by cases on the ordering of S and
M.  This module mechanises that analysis for any derivation report:

* :func:`crossover` — bisect the cache size at which one bound overtakes
  another (e.g. Theorem 5's two cases cross at S = M/sqrt(2));
* :func:`regime_table` — sweep S and report the binding method per point,
  compressed into contiguous regimes.

Used by ``iolb regimes`` and the §5.1 bench.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Mapping, Sequence

from .derivation import DerivationReport
from .kpartition import BoundResult

__all__ = ["Regime", "crossover", "regime_table"]


@dataclass
class Regime:
    """A contiguous S-range where one method gives the tightest bound."""

    s_lo: int
    s_hi: int
    method: str
    value_at_lo: float

    def __repr__(self) -> str:
        return f"[{self.s_lo}..{self.s_hi}] -> {self.method}"


def _value(b: BoundResult, env: Mapping[str, int]) -> float:
    try:
        return b.evaluate(env)
    except (ZeroDivisionError, KeyError):
        return float("-inf")


def crossover(
    b1: BoundResult,
    b2: BoundResult,
    env: Mapping[str, int],
    s_lo: int = 1,
    s_hi: int = 1 << 30,
) -> int | None:
    """Smallest S in [s_lo, s_hi] where b2 >= b1, assuming a single sign
    change of (b1 - b2) over the range; None when there is none."""

    def diff(s: int) -> float:
        e = dict(env)
        e["S"] = s
        return _value(b1, e) - _value(b2, e)

    lo, hi = s_lo, s_hi
    if diff(lo) <= 0:
        return lo
    if diff(hi) > 0:
        return None
    while lo + 1 < hi:
        mid = (lo + hi) // 2
        if diff(mid) > 0:
            lo = mid
        else:
            hi = mid
    return hi


def regime_table(
    report: DerivationReport,
    env: Mapping[str, int],
    s_values: Sequence[int],
) -> list[Regime]:
    """Which method binds at each S, compressed into contiguous regimes."""
    out: list[Regime] = []
    for s in sorted(s_values):
        e = dict(env)
        e["S"] = s
        best, val = report.best(e)
        if out and out[-1].method == best.method:
            out[-1].s_hi = s
        else:
            out.append(Regime(s_lo=s, s_hi=s, method=best.method, value_at_lo=val))
    return out
