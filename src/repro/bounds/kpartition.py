"""Classical K-partition lower bounds (Theorem 1 + Brascamp–Lieb).

Given the dominant statement's projections, the classical derivation bounds
any convex K-bounded set E by ``U(K) = prod |phi_j(E)|**s_j`` with
``|phi_j(E)| <= K``, then applies Theorem 1 with the T maximising
``T * |V| / U(S+T)``.

Two refinements, both present in IOLB (§6 of the paper):

* **disjoint insets** — when the projections' direct producers are pairwise
  distinct statements (or distinct input arrays), the inset parts they map to
  are disjoint, so ``sum_j |phi_j(E)| <= K`` replaces the per-projection
  bound; this improves the constant (e.g. MGS's classical bound becomes
  ``M N (N-1) / sqrt(S)``, the Figure 5 "old bound" leading term).
* continuous optimisation over T (floors dropped, as in the paper's own
  statements of Theorems 5-9).
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from fractions import Fraction
from typing import Mapping, Sequence

from ..symbolic import Poly, Rational, Sym, as_rational
from .brascamp_lieb import BLSolution, bl_exponents
from .projections import Projection

__all__ = ["BoundResult", "classical_bound", "optimize_T_numeric"]

S = Sym("S")


@dataclass
class BoundResult:
    """A derived parametric I/O lower bound ``coeff * expr``.

    ``expr`` is an exact symbolic rational function of the program parameters
    and the cache size S (Puiseux exponents allowed, e.g. S**(-1/2));
    ``coeff`` is a scalar for the irrational constants that continuous
    K-optimisation introduces (1.0 whenever the bound is exact).
    """

    kernel: str
    method: str
    expr: Rational
    coeff: float = 1.0
    sigma: Fraction | None = None
    k_choice: str = ""
    notes: str = ""
    #: validity condition on parameters, as text (documentation)
    condition: str = ""
    #: proof ingredients captured at derivation time (BL exponents or the
    #: hourglass lemma chain), consumed by :mod:`repro.cert`; None for
    #: bounds constructed outside the certificate-emitting paths
    witness: dict | None = None

    def evaluate(self, params: Mapping[str, int]) -> float:
        """Numeric value of the bound at concrete parameters (incl. S)."""
        return self.coeff * float(self.expr.eval(params))

    def __repr__(self) -> str:
        c = f"{self.coeff:g} * " if self.coeff != 1.0 else ""
        return f"Q >= {c}{self.expr!r}   [{self.method}, {self.kernel}]"


def classical_bound(
    kernel_name: str,
    dims: Sequence[str],
    projections: Sequence[Projection],
    v_count: Poly,
    *,
    disjoint: bool | None = None,
) -> BoundResult:
    """The classical K-partition bound for one dominant statement.

    ``v_count`` is the symbolic instance count of the statement.  When
    ``disjoint`` is None it is auto-detected from the projections' producer
    classes.
    """
    dimsets = [p.dims for p in projections]
    sol: BLSolution = bl_exponents(dims, dimsets)
    if not sol.feasible:
        raise ValueError(
            f"projections {dimsets} do not cover dims {dims}; no bound"
        )
    sigma = sol.sigma
    if sigma <= 1:
        raise ValueError(f"sigma={sigma} <= 1: K-partition bound degenerates")

    if disjoint is None:
        producers = [p.producer or p.origin for p in projections]
        disjoint = len(set(producers)) == len(producers)

    sf = float(sigma)
    # optimal continuous T = S/(sigma-1); K = sigma*S/(sigma-1)
    # U(K) = K**sigma                      (plain)
    # U(K) = K**sigma * prod (s_j/sigma)**s_j   (disjoint insets)
    # Q >= T*|V|/U(K) = coeff * |V| * S**(1-sigma)
    coeff = (sf - 1.0) ** (sf - 1.0) / sf**sf
    if disjoint:
        for s_j in sol.exponents:
            if s_j > 0:
                coeff *= (sf / float(s_j)) ** float(s_j)
    expr = as_rational(v_count) * as_rational(S ** (1 - sigma))
    witness = {
        "kind": "classical",
        "exponents": [str(s_j) for s_j in sol.exponents],
        "sigma": str(sigma),
        "disjoint": bool(disjoint),
        "projections": [sorted(p.dims) for p in projections],
        "dims": list(dims),
        "v_count": v_count,
    }
    return BoundResult(
        kernel=kernel_name,
        method="classical-disjoint" if disjoint else "classical",
        expr=expr,
        coeff=coeff,
        sigma=sigma,
        k_choice=f"K = {sf/(sf-1.0):g} * S (continuous optimum)",
        notes=f"BL exponents {tuple(map(str, sol.exponents))} over {dimsets}",
        witness=witness,
    )


def optimize_T_numeric(
    u_of_k,
    v_count: float,
    s: int,
    t_grid: Sequence[int] | None = None,
) -> tuple[int, float]:
    """Numerically maximise ``T * floor(|V| / U(S+T))`` over integer T.

    ``u_of_k`` maps a concrete K to the set-size bound U(K).  Returns the
    best (T, bound) pair — the exact Theorem 1 statement, floors included,
    for cross-checking the continuous formulas.
    """
    if t_grid is None:
        t_grid = sorted(
            {max(1, int(s * f)) for f in (0.25, 0.5, 1.0, 1.5, 2.0, 3.0, 4.0, 8.0)}
        )
    best_t, best = 1, 0.0
    for t in t_grid:
        u = u_of_k(s + t)
        if u <= 0:
            continue
        val = t * math.floor(v_count / u)
        if val > best:
            best, best_t = val, t
    return best_t, best
