"""The paper's published bounds, transcribed exactly.

Three layers of reference data:

* ``FIG4`` — the asymptotic old/new lower bounds of Figure 4 (leading terms,
  transcribed in mathematically equivalent always-positive form: Figure 4
  prints the Householder denominators as ``N-M-S`` with ``N-M`` negative for
  M > N; we store ``(M-N)/(M-N+S)`` scalings, which is what Figure 5's full
  formulas expand to);
* ``FIG5_OLD`` / ``FIG5_NEW`` — the full parametric formulas of Figure 5,
  with every constant and lower-order term as printed;
* ``THEOREMS`` — the per-kernel bound statements of Theorems 5-9.

These are *data*, not derivations: the engine's own results are compared
against them in the benchmarks and EXPERIMENTS.md.
"""

from __future__ import annotations

from dataclasses import dataclass
from fractions import Fraction
from typing import Mapping

from ..symbolic import Rational, Sym, as_rational

__all__ = [
    "PaperBound",
    "FIG4",
    "FIG5_OLD",
    "FIG5_NEW",
    "THEOREMS",
    "paper_bound",
]

M, N, S = Sym("M"), Sym("N"), Sym("S")
_half = Fraction(1, 2)
SQRT_S = S**_half


@dataclass(frozen=True)
class PaperBound:
    """A published bound formula with provenance."""

    kernel: str
    label: str  # e.g. "fig5-new", "thm5-main"
    expr: Rational
    condition: str = ""
    source: str = ""

    def evaluate(self, params: Mapping[str, int]) -> float:
        return float(self.expr.eval(params))


def _pb(kernel, label, expr, condition="", source=""):
    return PaperBound(kernel, label, as_rational(expr), condition, source)


# --------------------------------------------------------------------------
# Figure 4: asymptotic leading terms (old = classical, new = hourglass)
# --------------------------------------------------------------------------

FIG4: dict[str, dict[str, PaperBound]] = {
    "mgs": {
        "old": _pb("mgs", "fig4-old", M * N**2 / SQRT_S, source="Figure 4"),
        "new": _pb(
            "mgs", "fig4-new", M**2 * N * (N - 1) / (S + M), source="Figure 4"
        ),
    },
    "qr_a2v": {
        "old": _pb("qr_a2v", "fig4-old", M * N**2 / SQRT_S, source="Figure 4"),
        # printed as M N^2 (N-M)/(N-M-S); equals M N^2 (M-N)/(M-N+S)
        "new": _pb(
            "qr_a2v",
            "fig4-new",
            M * N**2 * (M - N) / (M - N + S),
            condition="M > N",
            source="Figure 4 (sign-normalised)",
        ),
    },
    "qr_v2q": {
        "old": _pb("qr_v2q", "fig4-old", M * N**2 / SQRT_S, source="Figure 4"),
        "new": _pb(
            "qr_v2q",
            "fig4-new",
            M * N**2 * (M - N) / (M - N + S),
            condition="M > N",
            source="Figure 4 (sign-normalised)",
        ),
    },
    "gebd2": {
        "old": _pb("gebd2", "fig4-old", M * N**2 / SQRT_S, source="Figure 4"),
        "new": _pb(
            "gebd2",
            "fig4-new",
            M * N**2 * (M - N + 1) / (8 * (S + M - N + 1)),
            condition="M >= N",
            source="Figure 4",
        ),
    },
    "gehd2": {
        "old": _pb("gehd2", "fig4-old", N**3 / SQRT_S, source="Figure 4"),
        "new": _pb("gehd2", "fig4-new", N**4 / (N + 2 * S), source="Figure 4"),
    },
}


# --------------------------------------------------------------------------
# Figure 5: full formulas with constants
# --------------------------------------------------------------------------

FIG5_OLD: dict[str, PaperBound] = {
    "mgs": _pb(
        "mgs",
        "fig5-old",
        (2 * M + 3 * M * N + M * N**2) / SQRT_S
        + 5 * M
        - M * N
        + (7 * N - N**2) * _half
        - S
        - 6,
        source="Figure 5 (IOLB without hourglass)",
    ),
    "qr_a2v": _pb(
        "qr_a2v",
        "fig5-old",
        (3 * M * N**2 + 6 * M + 7 * N - N**3 - 9 * M * N - 6) / (3 * SQRT_S)
        + 5 * M
        - M * N
        + 5 * N
        - S
        - 13,
        source="Figure 5",
    ),
    "qr_v2q": _pb(
        "qr_v2q",
        "fig5-old",
        (3 * M * N**2 - N**3 + 6 * M + 7 * N - 9 * M * N - 6) / (3 * SQRT_S)
        + 2 * M
        + 2 * N
        + (N - N**2) * _half
        - S
        - 4,
        source="Figure 5",
    ),
    "gebd2": _pb(
        "gebd2",
        "fig5-old",
        (3 * M * N**2 - N**3 - 9 * M * N + 6 * M + 7 * N - 6) / (3 * SQRT_S)
        + 5 * N
        + 5 * M
        - M * N
        - S
        - 13,
        source="Figure 5",
    ),
    "gehd2": _pb(
        "gehd2",
        "fig5-old",
        (5 * N**3 - 30 * N**2 + 55 * N - 30) / (3 * SQRT_S)
        + (69 * N - 9 * N**2) * _half
        - 3 * S
        - 56,
        source="Figure 5",
    ),
}

# Figure 5 new bounds.  The Householder/GEBD2 denominators are printed as
# 24*(1 - S/(N-M)) etc.; expanded to polynomial quotients below.
FIG5_NEW: dict[str, PaperBound] = {
    "mgs": _pb(
        "mgs",
        "fig5-new",
        (N**2 * M**2 + 2 * M**2 - 3 * N * M**2) / (8 * (M + S))
        + 5 * M
        - M * N
        + (7 * N - N**2) * _half
        - S
        - 6,
        source="Figure 5 (hourglass)",
    ),
    "qr_a2v": _pb(
        "qr_a2v",
        "fig5-new",
        (3 * M * N**2 - 9 * M * N + 7 * N + 6 * M - 6 - N**3)
        * (M - N)
        / (24 * (M - N + S))
        + 5 * M
        - M * N
        + 5 * N
        - S
        - 13,
        condition="M > N",
        source="Figure 5 (1 - S/(N-M) = (M-N+S)/(M-N))",
    ),
    "qr_v2q": _pb(
        "qr_v2q",
        "fig5-new",
        (3 * M * N**2 - N**3 + 6 * M + 7 * N - 9 * M * N - 6)
        * (M - N)
        / (24 * (M - N + S))
        + 2 * M
        + 2 * N
        + (N - N**2) * _half
        - S
        - 4,
        condition="M > N",
        source="Figure 5",
    ),
    "gebd2": _pb(
        "gebd2",
        "fig5-new",
        (3 * M * N**2 - N**3 + 3 * N**2 - 15 * M * N + 4 * N + 18 * M - 12)
        * (1 + M - N)
        / (24 * (1 + M - N + S))
        + 5 * N
        + 7 * M
        - M * N
        - S
        - 18,
        condition="M >= N",
        source="Figure 5",
    ),
    # GEHD2's printed formula carries the split parameter M (the split point);
    # with the paper's M = N/2 - 1 instantiation N-M-1 = N/2.
    "gehd2": _pb(
        "gehd2",
        "fig5-new",
        (N**3 - 6 * N**2 + 11 * N - 6) * (N * _half) / (12 * (N * _half + S))
        - N**2
        + 12 * N
        - S
        - 19,
        source="Figure 5 (split parameter M = N/2 - 1)",
    ),
}


# --------------------------------------------------------------------------
# Theorems 5-9 (the clean theorem statements)
# --------------------------------------------------------------------------

THEOREMS: dict[str, PaperBound] = {
    "thm5-mgs-main": _pb(
        "mgs", "thm5-main", M**2 * N * (N - 1) / (8 * (S + M)), source="Theorem 5"
    ),
    "thm5-mgs-small": _pb(
        "mgs",
        "thm5-small",
        (M - S) * N * (N - 1) / 4,
        condition="S <= M",
        source="Theorem 5",
    ),
    "thm6-a2v": _pb(
        "qr_a2v",
        "thm6",
        (3 * M - N) * N**2 * (M - N) ** 2 / (24 * (M * S + (M - N) ** 2)),
        condition="M > N",
        source="Theorem 6",
    ),
    "thm7-v2q": _pb(
        "qr_v2q",
        "thm7",
        N * (N - 1) * (3 * M - N - 1) * (M - N) ** 2
        / (24 * ((M - N) ** 2 + S * M)),
        condition="M > N",
        source="Theorem 7",
    ),
    "thm8-gebd2": _pb(
        "gebd2",
        "thm8",
        M * N**2 * (M - N + 1) / (8 * (S + M - N + 1)),
        condition="M >= N",
        source="Theorem 8",
    ),
    "thm9-gehd2": _pb(
        "gehd2", "thm9", N**4 / (12 * (N + 2 * S)), source="Theorem 9"
    ),
    "thm9-gehd2-small": _pb(
        "gehd2",
        "thm9-small",
        N**3 / 24,
        condition="N >> S",
        source="Theorem 9",
    ),
}


def paper_bound(kernel: str, which: str) -> PaperBound:
    """Look up a published bound: which in {fig4-old, fig4-new, fig5-old,
    fig5-new} or a THEOREMS key."""
    if which == "fig4-old":
        return FIG4[kernel]["old"]
    if which == "fig4-new":
        return FIG4[kernel]["new"]
    if which == "fig5-old":
        return FIG5_OLD[kernel]
    if which == "fig5-new":
        return FIG5_NEW[kernel]
    if which in THEOREMS:
        return THEOREMS[which]
    raise KeyError(f"unknown bound {which!r} for kernel {kernel!r}")
