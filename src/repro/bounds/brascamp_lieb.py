"""Brascamp–Lieb exponent optimization for coordinate projections.

For coordinate-subspace projections (the only kind affine dependence paths
produce here), the subgroup condition of Theorem 2 reduces to per-coordinate
coverage: for every dimension ``d``, the exponents of the projections whose
dim-set contains ``d`` must sum to at least 1 (take H = the axis subgroup of
``d``: rank 1 on the left, and ``rank(phi_j(H))`` is 1 when ``d`` is kept by
``phi_j`` and 0 otherwise; conversely coordinate coverage implies the general
condition for products of axis subgroups, which generate all the rank
inequalities for coordinate projections).

Two LPs are provided:

* :func:`bl_exponents` — minimise ``sum(s_j)`` (the classical K-partition
  setting where every projection is bounded by the same K, so U = K**sigma);
* :func:`bl_exponents_weighted` — minimise ``sum(s_j * log bound_j)`` for
  heterogeneous per-projection bounds (the hourglass-modified setting of
  §4.2, where some projections are bounded by W or K/W instead of K).
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from fractions import Fraction
from typing import Sequence

import numpy as np
from scipy.optimize import linprog

__all__ = ["BLSolution", "bl_exponents", "bl_exponents_weighted"]


@dataclass
class BLSolution:
    """Result of a Brascamp–Lieb exponent LP."""

    exponents: tuple[Fraction, ...]
    sigma: Fraction  # sum of exponents
    feasible: bool

    def __repr__(self) -> str:
        return f"BLSolution(s={self.exponents}, sigma={self.sigma})"


def _solve(
    dims: Sequence[str],
    projections: Sequence[frozenset[str]],
    costs: Sequence[float],
) -> BLSolution:
    n = len(projections)
    if n == 0:
        return BLSolution((), Fraction(0), False)
    # coverage: for each dim d: -sum_{j: d in phi_j} s_j <= -1
    a_ub = []
    b_ub = []
    for d in dims:
        row = [-1.0 if d in p else 0.0 for p in projections]
        if not any(row):
            return BLSolution(tuple(Fraction(0) for _ in range(n)), Fraction(0), False)
        a_ub.append(row)
        b_ub.append(-1.0)
    res = linprog(
        c=list(costs),
        A_ub=a_ub,
        b_ub=b_ub,
        bounds=[(0.0, 1.0)] * n,
        method="highs",
    )
    if not res.success:
        return BLSolution(tuple(Fraction(0) for _ in range(n)), Fraction(0), False)
    exps = tuple(Fraction(float(x)).limit_denominator(24) for x in res.x)
    return BLSolution(exps, sum(exps, Fraction(0)), True)


def bl_exponents(
    dims: Sequence[str], projections: Sequence[frozenset[str]]
) -> BLSolution:
    """Minimise sigma = sum(s_j) subject to coordinate coverage."""
    return _solve(dims, projections, [1.0] * len(projections))


def bl_exponents_weighted(
    dims: Sequence[str],
    projections: Sequence[frozenset[str]],
    log_bounds: Sequence[float],
) -> BLSolution:
    """Minimise ``sum(s_j * log_bounds_j)``: the tightest product bound
    ``prod bound_j**s_j`` over valid exponent vectors.

    ``log_bounds`` are evaluated at representative parameter values; the
    optimal vertex is then reused symbolically (LP vertices are parameter-
    independent for the generic parameter ordering).
    """
    if len(log_bounds) != len(projections):
        raise ValueError("one log-bound per projection required")
    return _solve(dims, projections, list(log_bounds))
